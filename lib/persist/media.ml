(* Simulated durable medium: a process-global path -> bytes table.

   Everything else in this repository that must survive a simulated
   daemon crash lives in a process-global table (Netsim addresses,
   Qemu_proc process lists, ...); the "disk" is no different.  Files
   written here outlive `Drvnode.reset_nodes` and `Daemon.kill`, which
   is exactly the property the journal needs.

   Crash-point injection: a per-path *write limit* caps how many bytes
   the medium will ever persist for that path.  Appends beyond the
   limit are silently cut, modelling a torn write followed by a crash —
   the writer believes the append succeeded, the disk kept a prefix. *)

type file = { mutable data : string; mutable write_limit : int option }

let mutex = Mutex.create ()
let files : (string, file) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let get_file path =
  match Hashtbl.find_opt files path with
  | Some f -> f
  | None ->
    let f = { data = ""; write_limit = None } in
    Hashtbl.add files path f;
    f

let clip f s =
  match f.write_limit with
  | None -> s
  | Some limit ->
    let room = max 0 (limit - String.length f.data) in
    if room >= String.length s then s else String.sub s 0 room

let read path =
  with_lock (fun () ->
      Option.map (fun f -> f.data) (Hashtbl.find_opt files path))

let exists path = with_lock (fun () -> Hashtbl.mem files path)

let size path =
  with_lock (fun () ->
      match Hashtbl.find_opt files path with
      | Some f -> String.length f.data
      | None -> 0)

let write path s =
  with_lock (fun () ->
      let f = get_file path in
      f.data <- clip { f with data = "" } s)

let append path s =
  with_lock (fun () ->
      let f = get_file path in
      f.data <- f.data ^ clip f s)

let truncate path n =
  with_lock (fun () ->
      match Hashtbl.find_opt files path with
      | Some f when String.length f.data > n ->
        f.data <- String.sub f.data 0 (max 0 n)
      | Some _ | None -> ())

let remove path = with_lock (fun () -> Hashtbl.remove files path)

let list ~prefix =
  with_lock (fun () ->
      Hashtbl.fold
        (fun path _ acc ->
          if String.length path >= String.length prefix
             && String.sub path 0 (String.length prefix) = prefix
          then path :: acc
          else acc)
        files []
      |> List.sort compare)

let set_write_limit path limit =
  with_lock (fun () ->
      let f = get_file path in
      f.write_limit <- limit)

let reset () = with_lock (fun () -> Hashtbl.reset files)
