(* Length-prefixed, checksummed write-ahead journal on {!Media}.

   Record framing:  [len:u32be] [sum:u32be] [payload:len bytes]
   where [sum] is a 32-bit mix of the payload (same finalizer family as
   lib/transport/faults.ml).  Replay consumes records until the first
   frame that is short or fails its checksum; everything after that
   point is a torn tail from a crash mid-write and is truncated so the
   next append starts from a clean boundary. *)

let mix x =
  let x = x + 0x9e3779b9 in
  let x = (x lxor (x lsr 30)) * 0x4f6cdd1d in
  let x = (x lxor (x lsr 27)) * 0x2545f491 in
  (x lxor (x lsr 31)) land max_int

let checksum s =
  let h = ref (String.length s) in
  String.iter (fun c -> h := mix ((!h * 31) + Char.code c)) s;
  !h land 0xffffffff

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_record payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (checksum payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type t = { path : string; mutable records : int; mutable bytes : int }

type replay = { rp_records : string list; rp_torn_bytes : int }

(* Test hook: per-record delay during replay, to make the recovery
   window wide enough to observe (keepalive-during-recovery test). *)
let replay_throttle = ref 0.0

let decode data =
  let len = String.length data in
  let rec loop off acc count =
    if off + 8 > len then (List.rev acc, off, count)
    else
      let plen = get_u32 data off in
      let sum = get_u32 data (off + 4) in
      if off + 8 + plen > len then (List.rev acc, off, count)
      else
        let payload = String.sub data (off + 8) plen in
        if checksum payload <> sum then (List.rev acc, off, count)
        else loop (off + 8 + plen) (payload :: acc) (count + 1)
  in
  loop 0 [] 0

let open_ path =
  let data = Option.value (Media.read path) ~default:"" in
  let records, consumed, count = decode data in
  let torn = String.length data - consumed in
  if torn > 0 then Media.truncate path consumed;
  if !replay_throttle > 0.0 then
    List.iter (fun _ -> Thread.delay !replay_throttle) records;
  ({ path; records = count; bytes = consumed },
   { rp_records = records; rp_torn_bytes = torn })

let append t payload =
  let frame = encode_record payload in
  Media.append t.path frame;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + String.length frame

let rewrite t payloads =
  let buf = Buffer.create 256 in
  List.iter (fun p -> Buffer.add_string buf (encode_record p)) payloads;
  let data = Buffer.contents buf in
  Media.write t.path data;
  t.records <- List.length payloads;
  t.bytes <- String.length data

let path t = t.path
let record_count t = t.records
let size_bytes t = t.bytes
