(** Write-ahead journal: length-prefixed, checksummed records on
    {!Media}, with torn-tail truncation on replay and atomic rewrite
    for snapshot compaction. *)

type t

type replay = {
  rp_records : string list;  (** complete records, in append order *)
  rp_torn_bytes : int;  (** bytes of torn tail truncated on open *)
}

val open_ : string -> t * replay
(** Open (creating if absent) the journal at a media path, replaying
    the record prefix and truncating any torn tail. *)

val append : t -> string -> unit
val rewrite : t -> string list -> unit
(** Atomically replace the journal contents with the given records
    (snapshot compaction). *)

val path : t -> string
val record_count : t -> int
val size_bytes : t -> int

val encode_record : string -> string
(** Wire frame for one record (exposed for crash-sweep tests that need
    record boundaries). *)

val checksum : string -> int

val replay_throttle : float ref
(** Test hook: seconds of delay per replayed record in {!open_}. *)
