(** Simulated durable medium (process-global path -> bytes table).

    Contents survive driver-node resets and daemon kills — this is the
    "disk" under the write-ahead journal.  A per-path write limit
    provides deterministic crash-point injection: bytes past the limit
    are dropped at append time, producing a torn tail exactly like a
    crash in the middle of a write. *)

val read : string -> string option
val exists : string -> bool
val size : string -> int

val write : string -> string -> unit
(** Atomic whole-file replace (used for snapshot compaction). *)

val append : string -> string -> unit
val truncate : string -> int -> unit
val remove : string -> unit

val list : prefix:string -> string list
(** Paths under [prefix], sorted. *)

val set_write_limit : string -> int option -> unit
(** Cap the persisted size of [path]; appends beyond the cap are cut.
    [None] removes the cap (already-cut bytes stay lost). *)

val reset : unit -> unit
(** Wipe the medium (test isolation). *)
