(* Event-invalidated client-side cache.

   The correctness problem this module solves is the window between
   sending a read RPC and installing its reply: a lifecycle event that
   arrives inside that window describes a state change the in-flight
   reply may or may not reflect, so installing the reply afterwards
   could resurrect stale data forever (no further event will come).

   The fix is the classic fill protocol: a reader captures a token
   ({!begin_fill}) before issuing the RPC and installs the reply only if
   nothing relevant was invalidated since ({!install}).  Concretely the
   cache keeps a monotonically increasing invalidation sequence; every
   {!invalidate} stamps the name with the current sequence, and a fill
   token older than a name's stamp is refused for that name.  A bulk
   reply (one token, many installs) therefore degrades per name: only
   the rows raced by an event are dropped.

   Reconnects change epoch: the daemon may have restarted with different
   state and the event stream has a gap, so every entry and every
   outstanding fill from the previous connection is worthless.  {!clear}
   bumps the epoch, which also voids older tokens.

   Entries are optionally TTL-bounded for connections without an event
   stream (events=0): freshness then decays by wall clock instead of
   being maintained by pushes.  Time is always passed in by the caller,
   which keeps the module deterministic under test. *)

type 'a entry = { e_value : 'a; e_stamp : float; e_uuid : string option }

type 'a t = {
  mutex : Mutex.t;
  ttl : float option;  (* None: event-maintained, entries never expire *)
  entries : (string, 'a entry) Hashtbl.t;  (* keyed by domain name *)
  by_uuid : (string, string) Hashtbl.t;  (* uuid -> name *)
  inval : (string, int) Hashtbl.t;  (* name -> seq of last invalidation *)
  mutable seq : int;
  mutable epoch : int;
  mutable hits : int;
  mutable misses : int;
}

type fill = { f_epoch : int; f_seq : int }

let create ?ttl () =
  {
    mutex = Mutex.create ();
    ttl;
    entries = Hashtbl.create 64;
    by_uuid = Hashtbl.create 64;
    inval = Hashtbl.create 64;
    seq = 0;
    epoch = 0;
    hits = 0;
    misses = 0;
  }

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let begin_fill c = locked c (fun () -> { f_epoch = c.epoch; f_seq = c.seq })

let install c fill name ?uuid value ~now =
  locked c (fun () ->
      let invalidated_since =
        match Hashtbl.find_opt c.inval name with
        | Some s -> s > fill.f_seq
        | None -> false
      in
      if fill.f_epoch <> c.epoch || invalidated_since then false
      else begin
        (match Hashtbl.find_opt c.entries name with
        | Some { e_uuid = Some u; _ } -> Hashtbl.remove c.by_uuid u
        | _ -> ());
        Hashtbl.replace c.entries name { e_value = value; e_stamp = now; e_uuid = uuid };
        (match uuid with Some u -> Hashtbl.replace c.by_uuid u name | None -> ());
        true
      end)

let fresh c entry ~now =
  match c.ttl with None -> true | Some ttl -> now -. entry.e_stamp <= ttl

(* Assumes [c.mutex] held. *)
let find_locked c name ~now =
  match Hashtbl.find_opt c.entries name with
  | Some e when fresh c e ~now ->
    c.hits <- c.hits + 1;
    Some e.e_value
  | Some _ | None ->
    c.misses <- c.misses + 1;
    None

let find c name ~now = locked c (fun () -> find_locked c name ~now)

let find_by_uuid c uuid ~now =
  locked c (fun () ->
      match Hashtbl.find_opt c.by_uuid uuid with
      | Some name -> find_locked c name ~now
      | None ->
        c.misses <- c.misses + 1;
        None)

let invalidate c name =
  locked c (fun () ->
      c.seq <- c.seq + 1;
      Hashtbl.replace c.inval name c.seq;
      match Hashtbl.find_opt c.entries name with
      | Some { e_uuid = Some u; _ } ->
        Hashtbl.remove c.by_uuid u;
        Hashtbl.remove c.entries name
      | Some _ -> Hashtbl.remove c.entries name
      | None -> ())

let clear c =
  locked c (fun () ->
      c.epoch <- c.epoch + 1;
      Hashtbl.reset c.entries;
      Hashtbl.reset c.by_uuid;
      Hashtbl.reset c.inval)

let epoch c = locked c (fun () -> c.epoch)
let size c = locked c (fun () -> Hashtbl.length c.entries)
let hits c = locked c (fun () -> c.hits)
let misses c = locked c (fun () -> c.misses)
