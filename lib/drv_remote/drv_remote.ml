open Ovirt_core
module Rp = Protocol.Remote_protocol
module Transport = Ovnet.Transport
module Cache = Remote_cache

let ( let* ) = Result.bind

let default_daemon = "ovirtd"

let kind_of_transport = function
  | "unix" | "ssh" | "libssh2" -> Ok Transport.Unix_sock
  | "tcp" -> Ok Transport.Tcp
  | "tls" -> Ok Transport.Tls
  | t -> Verror.error Verror.Invalid_arg "unsupported transport %S" t

(* Local (client-side) URI parameters, stripped before forwarding. *)
let local_params =
  [
    "daemon"; "keepalive"; "keepalive_count"; "reconnect"; "reconnect_delay";
    "reconnect_max_delay"; "reconnect_seed"; "cache"; "cache_ttl"; "events";
    "timeout"; "breaker"; "resume"; "resume_from";
  ]

(* The URI handed to the daemon: transport stripped, local parameters
   removed. *)
let daemon_side_uri uri =
  {
    uri with
    Vuri.transport = None;
    params = List.filter (fun (k, _) -> not (List.mem k local_params)) uri.Vuri.params;
  }

(* ------------------------------------------------------------------ *)
(* Resilience policy and statistics                                    *)
(* ------------------------------------------------------------------ *)

type resilience = {
  res_budget : int;  (** reconnect attempts per outage before giving up *)
  res_base_delay : float;
  res_max_delay : float;
  res_jitter : float;  (** fraction of the delay, +/- *)
  res_seed : int;
}

type stats = {
  st_calls : int;
  st_reconnect_attempts : int;
  st_reconnects : int;
  st_retried_calls : int;
  st_giveups : int;
  st_recovery_latencies : float list;  (** seconds, most recent first *)
  st_overloaded : int;  (** calls the daemon shed with [Overloaded] *)
  st_breaker_opens : int;  (** circuit-breaker open transitions *)
  st_breaker_fastfails : int;  (** calls failed locally while open *)
  st_sub_errors : int;  (** failed sub-replies inside multi-calls *)
  st_events_replayed : int;
      (** events recovered through resume replays after reconnects *)
  st_event_gaps : int;  (** gap verdicts (each forced a cache flush + resync) *)
}

(* Counters live per connection: concurrent connections (a chaos run
   against several daemons, the recovery bench) must not smear each
   other's numbers.  Every connection registers its record — keyed by
   its event bus, the one connection-identifying value visible through
   [Driver.ops] — so [stats] can still aggregate process-wide and
   [conn_stats] can single one connection out. *)
type counters = {
  cn_bus : Events.bus;
  mutable cn_calls : int;
  mutable cn_attempts : int;
  mutable cn_reconnects : int;
  mutable cn_retried : int;
  mutable cn_giveups : int;
  mutable cn_latencies : float list;
  mutable cn_overloaded : int;
  mutable cn_breaker_opens : int;
  mutable cn_breaker_fastfails : int;
  mutable cn_sub_errors : int;
  mutable cn_ev_replayed : int;
  mutable cn_ev_gaps : int;
}

let stats_mutex = Mutex.create ()
let all_counters : counters list ref = ref []

let with_stats f =
  Mutex.lock stats_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock stats_mutex) f

(* Closed connections stay registered: the aggregate keeps its history,
   exactly as the former process-global counters did. *)
let fresh_counters bus =
  with_stats (fun () ->
      let c =
        {
          cn_bus = bus;
          cn_calls = 0;
          cn_attempts = 0;
          cn_reconnects = 0;
          cn_retried = 0;
          cn_giveups = 0;
          cn_latencies = [];
          cn_overloaded = 0;
          cn_breaker_opens = 0;
          cn_breaker_fastfails = 0;
          cn_sub_errors = 0;
          cn_ev_replayed = 0;
          cn_ev_gaps = 0;
        }
      in
      all_counters := c :: !all_counters;
      c)

let reset_stats () =
  with_stats (fun () ->
      List.iter
        (fun c ->
          c.cn_calls <- 0;
          c.cn_attempts <- 0;
          c.cn_reconnects <- 0;
          c.cn_retried <- 0;
          c.cn_giveups <- 0;
          c.cn_latencies <- [];
          c.cn_overloaded <- 0;
          c.cn_breaker_opens <- 0;
          c.cn_breaker_fastfails <- 0;
          c.cn_sub_errors <- 0;
          c.cn_ev_replayed <- 0;
          c.cn_ev_gaps <- 0)
        !all_counters)

let snapshot c =
  {
    st_calls = c.cn_calls;
    st_reconnect_attempts = c.cn_attempts;
    st_reconnects = c.cn_reconnects;
    st_retried_calls = c.cn_retried;
    st_giveups = c.cn_giveups;
    st_recovery_latencies = c.cn_latencies;
    st_overloaded = c.cn_overloaded;
    st_breaker_opens = c.cn_breaker_opens;
    st_breaker_fastfails = c.cn_breaker_fastfails;
    st_sub_errors = c.cn_sub_errors;
    st_events_replayed = c.cn_ev_replayed;
    st_event_gaps = c.cn_ev_gaps;
  }

let stats () =
  with_stats (fun () ->
      List.fold_left
        (fun acc c ->
          {
            st_calls = acc.st_calls + c.cn_calls;
            st_reconnect_attempts = acc.st_reconnect_attempts + c.cn_attempts;
            st_reconnects = acc.st_reconnects + c.cn_reconnects;
            st_retried_calls = acc.st_retried_calls + c.cn_retried;
            st_giveups = acc.st_giveups + c.cn_giveups;
            st_recovery_latencies = c.cn_latencies @ acc.st_recovery_latencies;
            st_overloaded = acc.st_overloaded + c.cn_overloaded;
            st_breaker_opens = acc.st_breaker_opens + c.cn_breaker_opens;
            st_breaker_fastfails =
              acc.st_breaker_fastfails + c.cn_breaker_fastfails;
            st_sub_errors = acc.st_sub_errors + c.cn_sub_errors;
            st_events_replayed = acc.st_events_replayed + c.cn_ev_replayed;
            st_event_gaps = acc.st_event_gaps + c.cn_ev_gaps;
          })
        {
          st_calls = 0;
          st_reconnect_attempts = 0;
          st_reconnects = 0;
          st_retried_calls = 0;
          st_giveups = 0;
          st_recovery_latencies = [];
          st_overloaded = 0;
          st_breaker_opens = 0;
          st_breaker_fastfails = 0;
          st_sub_errors = 0;
          st_events_replayed = 0;
          st_event_gaps = 0;
        }
        !all_counters)

let conn_stats (ops : Driver.ops) =
  with_stats (fun () ->
      List.find_opt (fun c -> c.cn_bus == ops.Driver.events) !all_counters
      |> Option.map snapshot)

(* ------------------------------------------------------------------ *)
(* Connection state                                                    *)
(* ------------------------------------------------------------------ *)

(* One generation-counted cache per metadata kind: the three are filled
   and consulted independently (a listing knows all three, a point read
   only one) while sharing the same invalidation events. *)
type caches = {
  c_ref : Driver.domain_ref Cache.t;
  c_info : Driver.domain_info Cache.t;
  c_autostart : bool Cache.t;
  c_xml : string Cache.t;
}

let invalidate_caches cs name =
  Cache.invalidate cs.c_ref name;
  Cache.invalidate cs.c_info name;
  Cache.invalidate cs.c_autostart name;
  Cache.invalidate cs.c_xml name

let clear_caches cs =
  Cache.clear cs.c_ref;
  Cache.clear cs.c_info;
  Cache.clear cs.c_autostart;
  Cache.clear cs.c_xml

(* Client-side position in the daemon's sequence-numbered event stream
   (protocol v1.6).  Guarded by its own mutex, never [rc_mutex]: the
   receiver thread delivering pushed events must be able to advance the
   position while a reconnecting caller holds [rc_mutex] awaiting a
   reply that same receiver thread delivers. *)
type seq_state = {
  sq_mutex : Mutex.t;
  mutable sq_last : int;  (** last seq processed; -1 = no position yet *)
  mutable sq_buffering : bool;
      (** a resume is in flight: park live pushes until the replay is
          applied, preserving seq order across the boundary *)
  sq_pending : Events.event Queue.t;
}

let with_sq sq f =
  Mutex.lock sq.sq_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sq.sq_mutex) f

(* What the event half of a completed handshake yielded.  [`Plain] is the
   pre-v1.6 registration (or [resume=0]): the stream restarts with no
   replay.  [`Seq reply] is a v1.6 resume. *)
type event_mode =
  [ `No_events | `Plain | `Seq of Rp.resume_reply ]

(* Cache side of a freshly (re)established event stream.  Runs with
   [rc_mutex] held (or before the connection is shared, on the initial
   open) so no caller can read the caches between the connection swap and
   this reconciliation — but performs only cache-lock work, no user
   callbacks.  Returns the events to re-emit once [rc_mutex] is
   released: subscriber callbacks may re-enter the driver. *)
let absorb_event_mode ~caches ~counters sq (mode : event_mode) =
  match mode with
  | `No_events | `Plain ->
    (* No replay on this path: the stream has a silent gap and nothing
       cached survives — exactly the pre-v1.6 behavior. *)
    with_sq sq (fun () ->
        sq.sq_last <- -1;
        sq.sq_buffering <- false;
        Queue.clear sq.sq_pending);
    Option.iter clear_caches caches;
    []
  | `Seq reply ->
    let to_emit =
      if reply.Rp.rr_gap then begin
        (* The ring wrapped past our position (or the daemon is a new
           incarnation): flush everything and tell subscribers to
           resync.  The position jumps to the head — the flush covers
           all state up to it, the live stream everything after. *)
        Option.iter clear_caches caches;
        with_stats (fun () -> counters.cn_ev_gaps <- counters.cn_ev_gaps + 1);
        [ Events.{ domain_name = ""; lifecycle = Ev_resync; seq = reply.Rp.rr_head } ]
      end
      else begin
        (* Replayed events run through the normal pipeline: invalidate
           here (cache locks only), emit after the release. *)
        List.iter
          (fun ev ->
            Option.iter
              (fun cs -> invalidate_caches cs ev.Events.domain_name)
              caches)
          reply.Rp.rr_events;
        (match List.length reply.Rp.rr_events with
         | 0 -> ()
         | n ->
           with_stats (fun () -> counters.cn_ev_replayed <- counters.cn_ev_replayed + n));
        reply.Rp.rr_events
      end
    in
    with_sq sq (fun () -> sq.sq_last <- max sq.sq_last reply.Rp.rr_head);
    to_emit

(* Runs outside [rc_mutex]: re-emit the replay, then hand the stream back
   to the receiver thread — drain pushes parked while the resume was in
   flight until a pass finds none, and only then stop parking new ones.
   Subscribers thus observe strict seq order with no duplicates. *)
let replay_and_release ~caches ~events sq to_emit =
  List.iter
    (fun ev ->
      Events.emit events ~seq:ev.Events.seq ~domain_name:ev.Events.domain_name
        ev.Events.lifecycle)
    to_emit;
  let rec drain () =
    let batch =
      with_sq sq (fun () ->
          if Queue.is_empty sq.sq_pending then begin
            sq.sq_buffering <- false;
            None
          end
          else begin
            let all =
              Queue.fold (fun acc e -> e :: acc) [] sq.sq_pending |> List.rev
            in
            Queue.clear sq.sq_pending;
            (* Advance the position under the lock; deliver outside.
               Entries at or below the position are duplicates the
               replay already covered. *)
            Some
              (List.filter
                 (fun ev ->
                   if ev.Events.seq > sq.sq_last then begin
                     sq.sq_last <- ev.Events.seq;
                     true
                   end
                   else false)
                 all)
          end)
    in
    match batch with
    | None -> ()
    | Some fresh ->
      List.iter
        (fun ev ->
          Option.iter (fun cs -> invalidate_caches cs ev.Events.domain_name) caches;
          Events.emit events ~seq:ev.Events.seq ~domain_name:ev.Events.domain_name
            ev.Events.lifecycle)
        fresh;
      drain ()
  in
  drain ()

type remote_conn = {
  rc_mutex : Mutex.t;
  mutable rpc : Rpc_client.t;
  mutable defunct : bool;  (** closed, or reconnect budget exhausted *)
  mutable rc_minor : int;  (** negotiated protocol minor, re-probed on reconnect *)
  events : Events.bus;
  rc_cache : caches option;
  rc_address : string;
  rc_kind : Transport.kind;
  rc_forwarded : string;  (** URI replayed as Proc_open on reconnect *)
  rc_keepalive : Rpc_client.keepalive option;
  rc_register_events : bool;
  rc_use_resume : bool;  (** v1.6 resumable subscription wanted ([resume=1]) *)
  rc_seq : seq_state;
  rc_resilience : resilience option;
  rc_on_event : procedure:int -> string -> unit;
  rc_stats : counters;
  mutable rc_prng : int;
  rc_timeout_s : float option;
      (** default per-call budget; wrapped as a deadline envelope when
          the daemon speaks v1.4, and always bounds the client-side wait *)
  rc_breaker_k : int;  (** consecutive sheds that open the breaker; 0 = off *)
  mutable rc_consec_rejects : int;
  mutable rc_breaker_until : float;  (** 0. = breaker closed *)
  mutable rc_probing : bool;  (** a half-open probe is in flight *)
}

let with_conn conn f =
  Mutex.lock conn.rc_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.rc_mutex) f

let negotiated_minor conn = with_conn conn (fun () -> conn.rc_minor)

let tick ?(n = 1) conn =
  with_stats (fun () -> conn.rc_stats.cn_calls <- conn.rc_stats.cn_calls + n)

let raw_call rpc proc body =
  Rpc_client.call rpc ~procedure:(Rp.proc_to_int proc) ~body ()

let raw_call_unit rpc proc body =
  let* reply = raw_call rpc proc body in
  match Rp.dec_unit_body reply with
  | () -> Ok ()
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

(* Version probe.  A daemon predating [Proc_proto_minor] rejects it as an
   unknown procedure — indistinguishable from any other pre-negotiation
   build — which pins the peer at minor 2, the newest protocol shipped
   before the probe existed. *)
let negotiate rpc =
  match raw_call rpc Rp.Proc_proto_minor Rp.enc_unit_body with
  | Ok reply -> (
    match Rp.dec_int_body reply with
    | m -> Ok (min m Rp.minor)
    | exception Xdr.Error msg ->
      Verror.error Verror.Rpc_failure "bad reply: %s" msg)
  | Error _ when not (Rpc_client.is_closed rpc) -> Ok 2
  | Error e -> Error e

(* Transport + handshake: what both the initial open and every reconnect
   perform — establish, Proc_open the forwarded URI, probe the protocol
   minor the daemon speaks, then re-arm the event stream (the daemon
   side starts from a clean slate each time): against a v1.6 daemon a
   single Proc_event_resume atomically re-subscribes and replays what we
   missed; otherwise the old registration, which replays nothing.  The
   negotiation moved ahead of the registration (same frame count) so the
   right variant can be chosen. *)
let establish ~address ~kind ~keepalive ~on_event ~register_events ~use_resume
    ~sq ~forwarded =
  let* rpc =
    Rpc_client.connect ~address ~kind ~program:Rp.program ~version:Rp.version
      ?keepalive ~on_event ()
  in
  let handshake =
    let* () = raw_call_unit rpc Rp.Proc_open (Rp.enc_string_body forwarded) in
    let* minor = negotiate rpc in
    let* mode =
      if not register_events then Ok `No_events
      else if use_resume && minor >= Rp.proc_min_minor Rp.Proc_event_resume then begin
        (* Park live pushes before the daemon can arm the subscription: a
           push may hit the wire ahead of the resume reply. *)
        let last =
          with_sq sq (fun () ->
              sq.sq_buffering <- true;
              sq.sq_last)
        in
        let* reply = raw_call rpc Rp.Proc_event_resume (Rp.enc_event_resume last) in
        match Rp.dec_resume_reply reply with
        | r -> Ok (`Seq r)
        | exception Xdr.Error msg ->
          Verror.error Verror.Rpc_failure "bad reply: %s" msg
      end
      else
        let* () = raw_call_unit rpc Rp.Proc_event_register Rp.enc_unit_body in
        Ok `Plain
    in
    Ok (minor, (mode : event_mode))
  in
  match handshake with
  | Ok (minor, mode) -> Ok (rpc, minor, mode)
  | Error e ->
    Rpc_client.close rpc;
    Error e

let next_unit_float conn =
  (* Same mixer family as Faults: deterministic jitter under a seed. *)
  let x = conn.rc_prng + 0x9e3779b9 in
  let x = (x lxor (x lsr 30)) * 0x4f6cdd1d in
  let x = (x lxor (x lsr 27)) * 0x2545f491 in
  let x = (x lxor (x lsr 31)) land max_int in
  conn.rc_prng <- x;
  float_of_int (x land 0xffffff) /. float_of_int 0x1000000

let backoff_delay conn r attempt =
  let d = min r.res_max_delay (r.res_base_delay *. (2. ** float_of_int (attempt - 1))) in
  let j = (2. *. next_unit_float conn) -. 1. in
  Float.max 0. (d *. (1. +. (r.res_jitter *. j)))

(* Single-flight reconnect: callers that lost the race to a dead [rpc]
   block on the mutex while the first one rebuilds the connection, then
   observe the fresh client (or the defunct mark).  Exponential backoff
   with jitter between attempts; the budget bounds the outage.

   The cache reconciliation ([absorb_event_mode]) runs inside the same
   critical section that swaps [conn.rpc]: no caller can read the caches
   between the swap and the flush/replay-invalidation.  Re-emitting the
   replay happens after the lock is released — subscriber callbacks may
   re-enter the driver.  Only the winning reconnector carries a batch to
   emit ([Ok (Some _)]); losers observe [Ok None] and must not touch the
   stream, or they would release the buffering latch prematurely. *)
let ensure_connected conn ~dead =
  let outcome =
    with_conn conn (fun () ->
        if conn.defunct then
          Verror.error Verror.Rpc_failure "remote connection is closed"
        else if conn.rpc != dead then Ok None (* somebody already reconnected *)
        else begin
          let r = Option.get conn.rc_resilience in
          let outage_start = Unix.gettimeofday () in
          let rec attempt i =
            if i > r.res_budget then begin
              conn.defunct <- true;
              with_stats (fun () ->
                  conn.rc_stats.cn_giveups <- conn.rc_stats.cn_giveups + 1);
              Verror.error Verror.Rpc_failure
                "reconnect budget of %d attempts exhausted" r.res_budget
            end
            else begin
              with_stats (fun () ->
                  conn.rc_stats.cn_attempts <- conn.rc_stats.cn_attempts + 1);
              Thread.delay (backoff_delay conn r i);
              match
                establish ~address:conn.rc_address ~kind:conn.rc_kind
                  ~keepalive:conn.rc_keepalive ~on_event:conn.rc_on_event
                  ~register_events:conn.rc_register_events
                  ~use_resume:conn.rc_use_resume ~sq:conn.rc_seq
                  ~forwarded:conn.rc_forwarded
              with
              | Ok (rpc, minor, mode) ->
                conn.rpc <- rpc;
                conn.rc_minor <- minor;
                let to_emit =
                  absorb_event_mode ~caches:conn.rc_cache
                    ~counters:conn.rc_stats conn.rc_seq mode
                in
                with_stats (fun () ->
                    let c = conn.rc_stats in
                    c.cn_reconnects <- c.cn_reconnects + 1;
                    c.cn_latencies <-
                      (Unix.gettimeofday () -. outage_start) :: c.cn_latencies);
                Ok (Some to_emit)
              | Error _ -> attempt (i + 1)
            end
          in
          attempt 1
        end)
  in
  match outcome with
  | Ok (Some to_emit) ->
    replay_and_release ~caches:conn.rc_cache ~events:conn.events conn.rc_seq
      to_emit;
    Ok ()
  | Ok None -> Ok ()
  | Error _ as err -> err

(* ------------------------------------------------------------------ *)
(* Overload handling: shed replies and the circuit breaker             *)
(* ------------------------------------------------------------------ *)

(* When the daemon's retry_after hint fails to parse. *)
let default_retry_after_ms = 50

(* Fail fast while the breaker is open; once the retry_after window has
   passed, exactly one call goes through as the half-open probe while
   everyone else keeps failing fast until it reports back. *)
let breaker_admit conn =
  if conn.rc_breaker_k = 0 then Ok ()
  else
    with_conn conn (fun () ->
        if conn.rc_breaker_until = 0. then Ok ()
        else
          let now = Unix.gettimeofday () in
          if now >= conn.rc_breaker_until && not conn.rc_probing then begin
            conn.rc_probing <- true;
            Ok ()
          end
          else begin
            with_stats (fun () ->
                conn.rc_stats.cn_breaker_fastfails <-
                  conn.rc_stats.cn_breaker_fastfails + 1);
            let remaining_ms =
              int_of_float
                (Float.max 1. ((conn.rc_breaker_until -. now) *. 1000.))
            in
            Verror.overloaded ~retry_after_ms:remaining_ms
              "circuit breaker open (server overloaded)"
          end)

(* The server answered (successfully or with an application error):
   it is responsive, so the breaker closes and the reject streak ends. *)
let breaker_responsive conn =
  if conn.rc_breaker_k > 0 then
    with_conn conn (fun () ->
        conn.rc_consec_rejects <- 0;
        conn.rc_breaker_until <- 0.;
        conn.rc_probing <- false)

(* A transport failure proves nothing about overload either way: the
   probe slot is released, the breaker state kept. *)
let breaker_inconclusive conn =
  if conn.rc_breaker_k > 0 then
    with_conn conn (fun () -> conn.rc_probing <- false)

let breaker_shed conn err =
  with_stats (fun () ->
      conn.rc_stats.cn_overloaded <- conn.rc_stats.cn_overloaded + 1);
  if conn.rc_breaker_k > 0 then
    with_conn conn (fun () ->
        conn.rc_probing <- false;
        conn.rc_consec_rejects <- conn.rc_consec_rejects + 1;
        if conn.rc_consec_rejects >= conn.rc_breaker_k then begin
          let retry_ms =
            Option.value (Verror.retry_after_ms err)
              ~default:default_retry_after_ms
          in
          let was_closed = conn.rc_breaker_until = 0. in
          (* Jittered: clients whose breakers all opened on the same shed
             wave must not close and re-stampede in lockstep. *)
          let jitter = 1. +. (0.5 *. next_unit_float conn) in
          conn.rc_breaker_until <-
            Unix.gettimeofday () +. (float_of_int retry_ms /. 1000. *. jitter);
          if was_closed then
            with_stats (fun () ->
                conn.rc_stats.cn_breaker_opens <-
                  conn.rc_stats.cn_breaker_opens + 1)
        end)

(* Resilient call: a connection-death failure triggers reconnection (any
   call type pays for the rebuild), but only idempotent procedures are
   re-issued; a mutating call surfaces the failure, leaving the restored
   connection for its caller's own retry decision.  [?idempotent]
   overrides the per-procedure table — a batch is exactly as idempotent
   as its least idempotent sub-call, which only the caller knows.

   With a [timeout=<s>] URI parameter each call carries its budget to the
   daemon as a v1.4 deadline envelope (old daemons: client-side wait
   bound only) so the server can drop it if it expires while queued.
   [Overloaded] shed replies are handled distinctly: never auto-retried,
   never treated as a transport failure, and K consecutive ones open the
   per-connection circuit breaker. *)
let call ?idempotent conn proc body =
  let idempotent =
    match idempotent with Some v -> v | None -> Rp.is_idempotent proc
  in
  let timeout = conn.rc_timeout_s in
  (* Client-side wait generously outlasts the server budget: the
     daemon's authoritative "expired in queue" reply (sent when a worker
     finally pops the stale job) should win over the local timeout
     whenever the connection is alive; the local bound only covers a
     server that never answers at all. *)
  let timeout_s = Option.map (fun t -> t +. 1.0) timeout in
  let wire_call rpc =
    let wproc, wbody =
      match timeout with
      | Some t
        when with_conn conn (fun () -> conn.rc_minor)
             >= Rp.proc_min_minor Rp.Proc_call_deadline ->
        ( Rp.Proc_call_deadline,
          Rp.enc_deadline_call
            ~budget_ms:(max 1 (int_of_float (t *. 1000.)))
            ~proc:(Rp.proc_to_int proc) body )
      | _ -> (proc, body)
    in
    Rpc_client.call rpc ~procedure:(Rp.proc_to_int wproc) ~body:wbody
      ?timeout_s ()
  in
  let rec go attempt =
    match breaker_admit conn with
    | Error _ as err -> err
    | Ok () -> (
      let rpc = with_conn conn (fun () -> conn.rpc) in
      tick conn;
      match wire_call rpc with
      | Ok _ as ok ->
        breaker_responsive conn;
        ok
      | Error e when e.Verror.code = Verror.Overloaded ->
        breaker_shed conn e;
        Error e
      | Error e
        when e.Verror.code = Verror.Rpc_failure
             && conn.rc_resilience <> None
             && Rpc_client.is_closed rpc -> begin
          breaker_inconclusive conn;
          match ensure_connected conn ~dead:rpc with
          | Error _ as err -> err
          | Ok () ->
            let budget = (Option.get conn.rc_resilience).res_budget in
            if idempotent && attempt <= budget then begin
              with_stats (fun () ->
                  conn.rc_stats.cn_retried <- conn.rc_stats.cn_retried + 1);
              go (attempt + 1)
            end
            else if idempotent then Error e
            else
              Verror.error Verror.Rpc_failure
                "connection dropped during non-idempotent call %d (reconnected, \
                 not retried): %s"
                (Rp.proc_to_int proc) e.Verror.message
        end
      | Error e as err ->
        if e.Verror.code = Verror.Rpc_failure then breaker_inconclusive conn
        else breaker_responsive conn;
        err)
  in
  go 1

let call_unit conn proc body =
  let* reply = call conn proc body in
  match Rp.dec_unit_body reply with
  | () -> Ok ()
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

let decode decoder reply =
  match decoder reply with
  | v -> Ok v
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

let call_dec conn proc body decoder =
  let* reply = call conn proc body in
  decode decoder reply

(* N sub-calls, one logical exchange.  Against a v1.3 daemon the whole
   list travels as a single [Proc_call_batch] frame (one round trip);
   against an older daemon every request is written back-to-back with
   [call_async] before any reply is awaited, so the exchange costs one
   request convoy and one reply convoy instead of N ping-pongs.  Either
   way each sub-call gets its own result. *)
let multi_call_raw conn subs =
  if subs = [] then []
  else if negotiated_minor conn >= 3 then begin
    let idempotent = List.for_all (fun (p, _) -> Rp.is_idempotent p) subs in
    let body =
      Rp.enc_batch_call (List.map (fun (p, b) -> (Rp.proc_to_int p, b)) subs)
    in
    match call ~idempotent conn Rp.Proc_call_batch body with
    | Error _ as err -> List.map (fun _ -> err) subs
    | Ok reply -> (
      match Rp.dec_batch_reply reply with
      | replies when List.length replies = List.length subs ->
        List.map
          (fun (ok, body) -> if ok then Ok body else Error (Rp.dec_error body))
          replies
      | _ ->
        List.map
          (fun _ ->
            Verror.error Verror.Rpc_failure
              "batch reply count does not match request")
          subs
      | exception Xdr.Error msg ->
        List.map
          (fun _ -> Verror.error Verror.Rpc_failure "bad reply: %s" msg)
          subs)
  end
  else begin
    tick ~n:(List.length subs) conn;
    let rpc = with_conn conn (fun () -> conn.rpc) in
    subs
    |> List.map (fun (p, b) ->
           Rpc_client.call_async rpc ~procedure:(Rp.proc_to_int p) ~body:b ())
    |> List.map (function
         | Ok fut -> Rpc_client.await fut
         | Error _ as err -> err)
  end

let multi_call conn subs =
  let results = multi_call_raw conn subs in
  (* Bulk emulations drop failed sub-replies from their output (matching
     [Driver.list_all_fallback]), which would otherwise make a partial
     failure invisible; the counter lets callers (ovirsh) detect one and
     exit non-zero. *)
  let errs =
    List.fold_left (fun n -> function Error _ -> n + 1 | Ok _ -> n) 0 results
  in
  if errs > 0 then
    with_stats (fun () ->
        conn.rc_stats.cn_sub_errors <- conn.rc_stats.cn_sub_errors + errs);
  results

(* ------------------------------------------------------------------ *)
(* Cached point reads                                                  *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* An entry is only trustworthy while the event stream (or TTL clock)
   that maintains it is live: once the connection is known dead, bypass
   the cache so the read forces a reconnect — which clears it — instead
   of serving values no event can invalidate any more.  Likewise while a
   resume replay is still being applied ([sq_buffering]): invalidations
   for parked events have not fired yet. *)
let live_cache conn =
  match conn.rc_cache with
  | Some cs
    when (not (Rpc_client.is_closed (with_conn conn (fun () -> conn.rpc))))
         && not (with_sq conn.rc_seq (fun () -> conn.rc_seq.sq_buffering)) ->
    Some cs
  | Some _ | None -> None

(* The fill protocol in one place: consult the cache, otherwise take a
   token {e before} the wire call and install only if no event raced the
   reply (see {!Remote_cache}). *)
let cached_read conn pick name proc body decoder =
  match live_cache conn with
  | None -> call_dec conn proc body decoder
  | Some cs -> (
    let c = pick cs in
    match Cache.find c name ~now:(now ()) with
    | Some v -> Ok v
    | None ->
      let fill = Cache.begin_fill c in
      let* v = call_dec conn proc body decoder in
      ignore (Cache.install c fill name v ~now:(now ()));
      Ok v)

let dom_get_info conn name =
  cached_read conn
    (fun cs -> cs.c_info)
    name Rp.Proc_dom_get_info (Rp.enc_string_body name) Rp.dec_domain_info

let dom_get_autostart conn name =
  cached_read conn
    (fun cs -> cs.c_autostart)
    name Rp.Proc_dom_get_autostart (Rp.enc_string_body name) Rp.dec_bool_body

let dom_get_xml conn name =
  cached_read conn
    (fun cs -> cs.c_xml)
    name Rp.Proc_dom_get_xml (Rp.enc_string_body name) Rp.dec_string_body

let lookup_by_name conn name =
  match live_cache conn with
  | None ->
    call_dec conn Rp.Proc_lookup_by_name (Rp.enc_string_body name)
      Rp.dec_domain_ref
  | Some cs -> (
    match Cache.find cs.c_ref name ~now:(now ()) with
    | Some r -> Ok r
    | None ->
      let fill = Cache.begin_fill cs.c_ref in
      let* r =
        call_dec conn Rp.Proc_lookup_by_name (Rp.enc_string_body name)
          Rp.dec_domain_ref
      in
      ignore
        (Cache.install cs.c_ref fill name
           ~uuid:(Vmm.Uuid.to_string r.Driver.dom_uuid)
           r ~now:(now ()));
      Ok r)

let lookup_by_uuid conn uuid =
  let uuid_s = Vmm.Uuid.to_string uuid in
  let wire () =
    call_dec conn Rp.Proc_lookup_by_uuid (Rp.enc_string_body uuid_s)
      Rp.dec_domain_ref
  in
  match live_cache conn with
  | None -> wire ()
  | Some cs -> (
    match Cache.find_by_uuid cs.c_ref uuid_s ~now:(now ()) with
    | Some r -> Ok r
    | None ->
      let fill = Cache.begin_fill cs.c_ref in
      let* r = wire () in
      ignore
        (Cache.install cs.c_ref fill r.Driver.dom_name ~uuid:uuid_s r
           ~now:(now ()));
      Ok r)

(* Writes the daemon acknowledges without a lifecycle event (autostart,
   balloon) must invalidate locally, or our own mutation would be masked
   by our own cache. *)
let invalidate_domain conn name =
  Option.iter (fun cs -> invalidate_caches cs name) conn.rc_cache

(* ------------------------------------------------------------------ *)
(* Bulk domain listing                                                 *)
(* ------------------------------------------------------------------ *)

type list_fills = {
  lf_ref : Cache.fill;
  lf_info : Cache.fill;
  lf_auto : Cache.fill;
}

let begin_list_fills conn =
  Option.map
    (fun cs ->
      {
        lf_ref = Cache.begin_fill cs.c_ref;
        lf_info = Cache.begin_fill cs.c_info;
        lf_auto = Cache.begin_fill cs.c_autostart;
      })
    conn.rc_cache

let install_records conn fills records =
  match (conn.rc_cache, fills) with
  | Some cs, Some f ->
    let t = now () in
    List.iter
      (fun r ->
        let name = r.Driver.rec_ref.Driver.dom_name in
        let uuid = Vmm.Uuid.to_string r.Driver.rec_ref.Driver.dom_uuid in
        ignore (Cache.install cs.c_ref f.lf_ref name ~uuid r.Driver.rec_ref ~now:t);
        ignore (Cache.install cs.c_info f.lf_info name r.Driver.rec_info ~now:t);
        Option.iter
          (fun a ->
            ignore (Cache.install cs.c_autostart f.lf_auto name a ~now:t))
          r.Driver.rec_autostart)
      records
  | _ -> ()

(* Pre-bulk daemons: reproduce [Proc_dom_list_all] client-side, but
   pipelined — two listing calls, then every lookup/info/autostart
   fetched through {!multi_call} so the wire sees request and reply
   convoys rather than the N+1 ping-pong this path replaces.  Rows that
   vanish between listing and inspection are dropped, matching
   [Driver.list_all_fallback]. *)
let list_all_emulated conn =
  let* active =
    call_dec conn Rp.Proc_list_domains Rp.enc_unit_body Rp.dec_domain_ref_list
  in
  let* defined =
    call_dec conn Rp.Proc_list_defined Rp.enc_unit_body Rp.dec_string_list
  in
  let defined_refs =
    multi_call conn
      (List.map (fun n -> (Rp.Proc_lookup_by_name, Rp.enc_string_body n)) defined)
    |> List.filter_map (function
         | Ok body -> (
           match Rp.dec_domain_ref body with
           | r -> Some r
           | exception Xdr.Error _ -> None)
         | Error _ -> None)
  in
  let refs = active @ defined_refs in
  let subs =
    List.concat_map
      (fun r ->
        let body = Rp.enc_string_body r.Driver.dom_name in
        [ (Rp.Proc_dom_get_info, body); (Rp.Proc_dom_get_autostart, body) ])
      refs
  in
  let replies = multi_call conn subs in
  let rec assemble refs replies acc =
    match (refs, replies) with
    | r :: refs, info_r :: auto_r :: replies ->
      let acc =
        match info_r with
        | Error _ -> acc
        | Ok body -> (
          match Rp.dec_domain_info body with
          | exception Xdr.Error _ -> acc
          | info ->
            let autostart =
              match auto_r with
              | Ok b -> (
                match Rp.dec_bool_body b with
                | v -> Some v
                | exception Xdr.Error _ -> None)
              | Error _ -> None
            in
            Driver.{ rec_ref = r; rec_info = info; rec_autostart = autostart }
            :: acc)
      in
      assemble refs replies acc
    | _ -> List.rev acc
  in
  Ok (assemble refs replies [])

(* v1.7 bulk listing: the annotated variant.  A plain daemon answers
   with its own rows and no shard errors; a fleet controller may return
   a degraded listing whose shard errors are folded into the
   connection's sub-error counter, so the CLI's partial-failure exit
   code covers fleet-wide listings for free. *)
let fleet_list_all conn () =
  let fills = begin_list_fills conn in
  let* listing =
    call_dec conn Rp.Proc_fleet_list_all Rp.enc_unit_body Rp.dec_fleet_listing
  in
  let errs = List.length listing.Driver.fl_shard_errors in
  if errs > 0 then
    with_stats (fun () ->
        conn.rc_stats.cn_sub_errors <- conn.rc_stats.cn_sub_errors + errs);
  install_records conn fills listing.Driver.fl_records;
  Ok listing

let dom_list_all conn () =
  if negotiated_minor conn >= 7 then
    let* listing = fleet_list_all conn () in
    Ok listing.Driver.fl_records
  else
    let fills = begin_list_fills conn in
    let* records =
      if negotiated_minor conn >= 3 then
        call_dec conn Rp.Proc_dom_list_all Rp.enc_unit_body
          Rp.dec_domain_record_list
      else list_all_emulated conn
    in
    install_records conn fills records;
    Ok records

(* ------------------------------------------------------------------ *)
(* Connection establishment                                            *)
(* ------------------------------------------------------------------ *)

let float_param uri name =
  Option.bind (Vuri.param uri name) float_of_string_opt

let int_param uri name = Option.bind (Vuri.param uri name) int_of_string_opt

let keepalive_of_uri uri =
  match float_param uri "keepalive" with
  | Some interval when interval > 0. ->
    Some
      {
        Rpc_client.ka_interval = interval;
        ka_count =
          Option.value (int_param uri "keepalive_count")
            ~default:Protocol.Keepalive_protocol.default_count;
      }
  | Some _ | None -> None

let resilience_of_uri uri =
  match int_param uri "reconnect" with
  | Some budget when budget > 0 ->
    let base = Option.value (float_param uri "reconnect_delay") ~default:0.05 in
    Some
      {
        res_budget = budget;
        res_base_delay = base;
        res_max_delay =
          Option.value (float_param uri "reconnect_max_delay") ~default:2.0;
        res_jitter = 0.25;
        res_seed = Option.value (int_param uri "reconnect_seed") ~default:1;
      }
  | Some _ | None -> None

(* Default TTL when the cache runs without an event stream: short enough
   that a remote writer's change is seen promptly, long enough to absorb
   a monitoring loop's burst of reads. *)
let default_eventless_ttl = 1.0

let caches_of_uri uri ~register_events =
  if Option.value (int_param uri "cache") ~default:1 = 0 then None
  else
    let ttl =
      match float_param uri "cache_ttl" with
      | Some t -> Some t
      | None -> if register_events then None else Some default_eventless_ttl
    in
    Some
      {
        c_ref = Cache.create ?ttl ();
        c_info = Cache.create ?ttl ();
        c_autostart = Cache.create ?ttl ();
        c_xml = Cache.create ?ttl ();
      }

let open_conn uri =
  let* transport =
    match uri.Vuri.transport with
    | Some t -> Ok t
    | None -> Verror.error Verror.Internal_error "remote driver probed without transport"
  in
  let* kind = kind_of_transport transport in
  let daemon = Option.value (Vuri.param uri "daemon") ~default:default_daemon in
  let register_events = Option.value (int_param uri "events") ~default:1 <> 0 in
  let use_resume = Option.value (int_param uri "resume") ~default:1 <> 0 in
  let caches = caches_of_uri uri ~register_events in
  let events = Events.create_bus () in
  let sq =
    {
      sq_mutex = Mutex.create ();
      (* [resume_from] lets a fresh process resume a predecessor's
         position (ovirsh event --since); the default -1 asks for a
         subscription starting at the head, no replay. *)
      sq_last = Option.value (int_param uri "resume_from") ~default:(-1);
      sq_buffering = false;
      sq_pending = Queue.create ();
    }
  in
  let on_event ~procedure body =
    if procedure = Rp.proc_to_int Rp.Proc_event_lifecycle then begin
      match Rp.dec_lifecycle_event body with
      | ev ->
        (* Invalidate before the local re-emit: a subscriber reacting to
           the event must never read the pre-event cache entry. *)
        Option.iter (fun cs -> invalidate_caches cs ev.Events.domain_name) caches;
        Events.emit events ~domain_name:ev.Events.domain_name ev.Events.lifecycle
      | exception Xdr.Error _ -> ()
    end
    else if procedure = Rp.proc_to_int Rp.Proc_event_lifecycle_seq then begin
      match Rp.dec_seq_event body with
      | ev ->
        let deliver =
          with_sq sq (fun () ->
              if sq.sq_buffering then begin
                (* A resume is applying its replay: park the push so it is
                   delivered after the replay, in seq order. *)
                Queue.push ev sq.sq_pending;
                false
              end
              else if ev.Events.seq > sq.sq_last then begin
                sq.sq_last <- ev.Events.seq;
                true
              end
              else false (* duplicate of a replayed event *))
        in
        if deliver then begin
          Option.iter (fun cs -> invalidate_caches cs ev.Events.domain_name) caches;
          Events.emit events ~seq:ev.Events.seq
            ~domain_name:ev.Events.domain_name ev.Events.lifecycle
        end
      | exception Xdr.Error _ -> ()
    end
  in
  let address = daemon ^ "-sock" in
  let keepalive = keepalive_of_uri uri in
  let resilience = resilience_of_uri uri in
  let forwarded = Vuri.to_string (daemon_side_uri uri) in
  let* rpc, minor, mode =
    establish ~address ~kind ~keepalive ~on_event ~register_events ~use_resume
      ~sq ~forwarded
  in
  let conn =
    {
      rc_mutex = Mutex.create ();
      rpc;
      defunct = false;
      rc_minor = minor;
      events;
      rc_cache = caches;
      rc_address = address;
      rc_kind = kind;
      rc_forwarded = forwarded;
      rc_keepalive = keepalive;
      rc_register_events = register_events;
      rc_use_resume = use_resume;
      rc_seq = sq;
      rc_resilience = resilience;
      rc_on_event = on_event;
      rc_stats = fresh_counters events;
      rc_prng =
        (match resilience with Some r -> r.res_seed | None -> 1);
      rc_timeout_s =
        (match float_param uri "timeout" with
         | Some t when t > 0. -> Some t
         | Some _ | None -> None);
      rc_breaker_k = Option.value (int_param uri "breaker") ~default:3;
      rc_consec_rejects = 0;
      rc_breaker_until = 0.;
      rc_probing = false;
    }
  in
  (* The connection is not shared yet, so no lock is needed for the
     cache side; an initial resume_from may still carry a replay (or a
     gap verdict) that must reach subscribers-to-be via the bus history. *)
  let to_emit = absorb_event_mode ~caches ~counters:conn.rc_stats sq mode in
  replay_and_release ~caches ~events sq to_emit;
  Ok conn

let close_conn conn =
  let rpc =
    with_conn conn (fun () ->
        conn.defunct <- true;
        conn.rpc)
  in
  (* Best effort: the daemon also cleans up on disconnect. *)
  ignore (raw_call rpc Rp.Proc_close Rp.enc_unit_body);
  Rpc_client.close rpc

(* ------------------------------------------------------------------ *)
(* Driver operations over the wire                                     *)
(* ------------------------------------------------------------------ *)

let get_capabilities conn () =
  match call_dec conn Rp.Proc_get_capabilities Rp.enc_unit_body Rp.dec_string_body with
  | Ok xml ->
    (match Capabilities.of_xml xml with
     | Ok caps -> caps
     | Error msg ->
       Verror.raise_err Verror.Rpc_failure "bad capabilities from daemon: %s" msg)
  | Error err -> raise (Verror.Virt_error err)

let get_hostname conn () =
  match call_dec conn Rp.Proc_get_hostname Rp.enc_unit_body Rp.dec_string_body with
  | Ok hostname -> hostname
  | Error err -> raise (Verror.Virt_error err)

let remote_net_ops conn =
  Driver.
    {
      net_define =
        (fun ~name ~bridge ~ip_range ->
          call_dec conn Rp.Proc_net_define
            (Rp.enc_net_define ~name ~bridge ~ip_range)
            Rp.dec_net_info);
      net_undefine =
        (fun name -> call_unit conn Rp.Proc_net_undefine (Rp.enc_string_body name));
      net_start =
        (fun name -> call_unit conn Rp.Proc_net_start (Rp.enc_string_body name));
      net_stop =
        (fun name -> call_unit conn Rp.Proc_net_stop (Rp.enc_string_body name));
      net_set_autostart =
        (fun name v ->
          call_unit conn Rp.Proc_net_set_autostart (Rp.enc_name_and_bool name v));
      net_lookup =
        (fun name ->
          call_dec conn Rp.Proc_net_lookup (Rp.enc_string_body name) Rp.dec_net_info);
      net_list =
        (fun () ->
          call_dec conn Rp.Proc_net_list Rp.enc_unit_body Rp.dec_net_info_list);
    }

(* Pre-v1.3 daemons have no path-indexed lookup; emulate with listings,
   pipelining the per-pool volume listings instead of ping-ponging. *)
let vol_by_path_emulated conn path =
  let* pools =
    call_dec conn Rp.Proc_pool_list Rp.enc_unit_body Rp.dec_pool_info_list
  in
  let vol_lists =
    multi_call conn
      (List.map
         (fun p ->
           (Rp.Proc_vol_list, Rp.enc_string_body p.Storage_backend.pool_name))
         pools)
  in
  let found =
    List.find_map
      (function
        | Ok body -> (
          match Rp.dec_vol_info_list body with
          | vols -> List.find_opt (fun v -> v.Storage_backend.vol_key = path) vols
          | exception Xdr.Error _ -> None)
        | Error _ -> None)
      vol_lists
  in
  match found with
  | Some v -> Ok v
  | None -> Verror.error Verror.No_storage_vol "no volume backs path %S" path

let remote_storage_ops conn =
  Driver.
    {
      pool_define =
        (fun ~name ~target_path ~capacity_b ->
          call_dec conn Rp.Proc_pool_define
            (Rp.enc_pool_define ~name ~target_path ~capacity_b)
            Rp.dec_pool_info);
      pool_undefine =
        (fun name -> call_unit conn Rp.Proc_pool_undefine (Rp.enc_string_body name));
      pool_start =
        (fun name -> call_unit conn Rp.Proc_pool_start (Rp.enc_string_body name));
      pool_stop =
        (fun name -> call_unit conn Rp.Proc_pool_stop (Rp.enc_string_body name));
      pool_lookup =
        (fun name ->
          call_dec conn Rp.Proc_pool_lookup (Rp.enc_string_body name) Rp.dec_pool_info);
      pool_list =
        (fun () ->
          call_dec conn Rp.Proc_pool_list Rp.enc_unit_body Rp.dec_pool_info_list);
      vol_create =
        (fun ~pool ~name ~capacity_b ~format ->
          call_dec conn Rp.Proc_vol_create
            (Rp.enc_vol_create ~pool ~name ~capacity_b ~format)
            Rp.dec_vol_info);
      vol_delete =
        (fun ~pool ~name ->
          call_unit conn Rp.Proc_vol_delete (Rp.enc_vol_ref ~pool ~name));
      vol_list =
        (fun ~pool ->
          call_dec conn Rp.Proc_vol_list (Rp.enc_string_body pool)
            Rp.dec_vol_info_list);
      vol_by_path =
        (fun path ->
          if negotiated_minor conn >= 3 then
            call_dec conn Rp.Proc_vol_lookup (Rp.enc_string_body path)
              Rp.dec_vol_info
          else vol_by_path_emulated conn path);
    }

(* The federation view over the wire (daemon serves these at minor ≥ 7).
   Owner lookup stays controller-side: placement is the controller's
   secret, and nothing client-side needs it. *)
let remote_fleet_view conn =
  Driver.
    {
      fleet_list_all = (fun () -> fleet_list_all conn ());
      fleet_status =
        (fun () ->
          call_dec conn Rp.Proc_fleet_status Rp.enc_unit_body
            Rp.dec_fleet_status);
      fleet_migrate =
        (fun ~domain ~dest ->
          call_unit conn Rp.Proc_fleet_migrate
            (Rp.enc_fleet_migrate ~domain ~dest));
      fleet_owner =
        (fun _ -> Driver.unsupported ~drv:"remote" ~op:"fleet owner lookup");
    }

let make_ops uri conn =
  let name_call proc name = call_unit conn proc (Rp.enc_string_body name) in
  (* Lifecycle mutations are also invalidated by the pushed event, but
     writes without one (autostart, balloon) — and event-less
     connections — need the local invalidation. *)
  let name_call_inval proc name =
    let r = name_call proc name in
    if Result.is_ok r then invalidate_domain conn name;
    r
  in
  Driver.make_ops ~drv_name:"remote"
    ~get_capabilities:(get_capabilities conn)
    ~get_hostname:(get_hostname conn)
    ~close:(fun () -> close_conn conn)
    ~list_domains:(fun () ->
      call_dec conn Rp.Proc_list_domains Rp.enc_unit_body Rp.dec_domain_ref_list)
    ~list_defined:(fun () ->
      call_dec conn Rp.Proc_list_defined Rp.enc_unit_body Rp.dec_string_list)
    ~lookup_by_name:(lookup_by_name conn)
    ~lookup_by_uuid:(lookup_by_uuid conn)
    ~define_xml:(fun xml ->
      let* r =
        call_dec conn Rp.Proc_define_xml (Rp.enc_string_body xml)
          Rp.dec_domain_ref
      in
      invalidate_domain conn r.Driver.dom_name;
      Ok r)
    ~undefine:(name_call_inval Rp.Proc_undefine)
    ~dom_create:(name_call_inval Rp.Proc_dom_create)
    ~dom_suspend:(name_call_inval Rp.Proc_dom_suspend)
    ~dom_resume:(name_call_inval Rp.Proc_dom_resume)
    ~dom_shutdown:(name_call_inval Rp.Proc_dom_shutdown)
    ~dom_destroy:(name_call_inval Rp.Proc_dom_destroy)
    ~dom_get_info:(dom_get_info conn)
    ~dom_get_xml:(dom_get_xml conn)
    ~dom_set_memory:(fun name kib ->
      let r = call_unit conn Rp.Proc_dom_set_memory (Rp.enc_name_and_kib name kib) in
      if Result.is_ok r then invalidate_domain conn name;
      r)
    ~dom_save:(name_call_inval Rp.Proc_dom_save)
    ~dom_restore:(name_call_inval Rp.Proc_dom_restore)
    ~dom_has_managed_save:(fun name ->
      call_dec conn Rp.Proc_dom_has_managed_save (Rp.enc_string_body name)
        Rp.dec_bool_body)
    ~dom_set_autostart:(fun name v ->
      let r = call_unit conn Rp.Proc_dom_set_autostart (Rp.enc_name_and_bool name v) in
      if Result.is_ok r then invalidate_domain conn name;
      r)
    ~dom_get_autostart:(dom_get_autostart conn)
    ~dom_set_policy:(fun name p ->
      call_unit conn Rp.Proc_dom_set_policy (Rp.enc_set_policy name p))
    ~dom_get_policy:(fun name ->
      call_dec conn Rp.Proc_dom_get_policy (Rp.enc_string_body name)
        Rp.dec_policy)
    ~dom_list_all:(dom_list_all conn)
    ~net:(remote_net_ops conn) ~storage:(remote_storage_ops conn)
    ?fleet:
      (if negotiated_minor conn >= 7 then Some (remote_fleet_view conn)
       else None)
    ~events:conn.events ()
  |> fun ops -> { ops with Driver.drv_name = "remote(" ^ uri.Vuri.scheme ^ ")" }

let probe uri =
  uri.Vuri.transport <> None
  && uri.Vuri.scheme <> "esx" (* ESX manages its own remote protocol *)

let register () =
  Driver.register
    {
      Driver.reg_name = "remote";
      probe;
      open_conn =
        (fun uri ->
          let* conn = open_conn uri in
          Ok (make_ops uri conn));
    }
