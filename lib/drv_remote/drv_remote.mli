(** Remote driver: the hypervisor-agnostic tunnel through the daemon.

    Selected when a connection URI carries a [+transport] suffix
    ([qemu+tls://node/system], [xen+unix:///]) — exactly libvirt's rule
    that the remote driver accepts what no client-side driver claimed.
    Supported transports: [unix] (default for local daemons), [tcp],
    [tls], and [ssh] (modelled as a tunnel terminating at the daemon's
    unix socket).

    The daemon to contact is named by the [?daemon=<name>] URI parameter
    (default ["ovirtd"]); the URI forwarded to the daemon keeps its
    scheme, host and path, so the daemon opens the matching direct driver
    in-process.

    Lifecycle events stream back as RPC event packets and feed the
    connection's local event bus transparently.

    {1 Protocol negotiation}

    After the open handshake the driver probes the daemon's protocol
    minor ({!Protocol.Remote_protocol.minor}); daemons predating the
    probe answer "unknown procedure" and are pinned at minor 2.  Bulk
    listing ([Proc_dom_list_all]), batched calls ([Proc_call_batch]) and
    path-indexed volume lookup ([Proc_vol_lookup]) are only put on the
    wire when the daemon speaks minor 3; against older daemons the
    driver degrades transparently to per-operation calls — pipelined
    back-to-back on the connection, so even the fallback avoids the
    N+1 ping-pong — with identical results.

    {1 Client-side caching}

    Domain metadata (refs, info, autostart, XML) answered by the daemon is
    cached per connection and invalidated by pushed lifecycle events,
    with a fill protocol that drops any reply raced by an event (see
    {!Remote_cache}).  URI parameters (stripped before forwarding):
    - [cache=0] disables the cache;
    - [events=0] skips event registration, switching the cache to pure
      TTL freshness;
    - [cache_ttl=<seconds>] bounds entry lifetime (default: unbounded
      with events, 1s without).

    {1 Resumable event streams (protocol v1.6)}

    Against a v1.6 daemon the event subscription is sequence-numbered:
    the daemon stamps every pushed event with its position in a bounded
    per-node replay ring, and the client remembers the last position it
    processed.  A reconnect then {e resumes} rather than re-registers —
    one [Proc_event_resume] call atomically re-arms the subscription and
    replays every retained event the client missed, each running through
    the normal delivery pipeline (cache invalidation first, then the
    local re-emit), so the cache survives the outage {e consistently}
    instead of being cleared wholesale.  Live pushes racing the resume
    are parked and delivered after the replay, preserving seq order with
    no duplicates and no losses.

    When the daemon cannot bridge the outage — the ring wrapped past the
    client's position, or the daemon restarted — the resume reply says
    so explicitly: the driver flushes the caches wholesale and emits a
    single {!Ovirt_core.Events.Ev_resync} pseudo-event telling
    subscribers to re-list.  There is no silent loss in either case.

    Against older daemons (or with [resume=0]) reconnects keep the
    pre-v1.6 behavior: plain re-registration and a wholesale cache
    clear.  URI parameters (stripped before forwarding):
    - [resume=0] disables resume (plain re-registration on reconnect);
    - [resume_from=<seq>] starts the very first subscription at the
      given position, replaying what the daemon retains beyond it —
      lets a fresh process (e.g. [ovirsh event --since]) continue a
      predecessor's stream.

    {1 Resilience}

    URI parameters (all stripped before the URI is forwarded):
    - [keepalive=<seconds>] enables libvirt-style keepalive pings with
      the given interval; [keepalive_count=<n>] overrides the default
      miss count.
    - [reconnect=<n>] enables auto-reconnect with a budget of [n]
      attempts per outage.  On connection death the driver re-establishes
      the transport (exponential backoff with deterministic jitter,
      tunable via [reconnect_delay], [reconnect_max_delay] and
      [reconnect_seed]), replays the open handshake, re-probes the
      protocol minor, resumes the event stream (see above; older
      daemons: re-registers and drops the cache), and
      transparently retries the interrupted call iff it is idempotent
      ({!Protocol.Remote_protocol.is_idempotent}); mutating calls
      surface [Rpc_failure] for the caller to decide.  After the budget
      is exhausted the connection is defunct and every call fails
      fast.

    {1 Overload protection}

    - [timeout=<seconds>] gives every call an end-to-end deadline.
      Against a v1.4 daemon the budget travels with the call as a
      deadline envelope, so the daemon refuses to start work whose
      deadline expired while queued and driver operations stop waiting
      for node locks once the budget runs out; against older daemons the
      parameter only bounds the client-side wait.
    - A daemon that sheds a call under admission control answers
      [Verror.Overloaded] with a [retry_after_ms] hint.  Shed calls are
      {e never} auto-retried (the daemon explicitly asked us to back
      off) and never treated as a transport failure.
    - [breaker=<k>] (default 3, [0] disables): after [k] {e consecutive}
      shed replies the per-connection circuit breaker opens and calls
      fail fast locally — also with [Overloaded] and the remaining wait
      as the hint — for the daemon's advertised retry_after window
      (deterministically jittered).  After the window one call probes
      the daemon (half-open); a served probe closes the breaker, another
      shed reopens it. *)

module Cache = Remote_cache
(** The cache machinery, exposed for unit tests. *)

val register : unit -> unit
(** Register last: its probe accepts any transport-suffixed URI. *)

(** {1 Connection statistics}

    Counters are kept per connection so concurrent connections do not
    smear each other's numbers; {!stats} aggregates across every
    connection of the process (chaos experiments {!reset_stats} before a
    run and {!stats} after), while {!conn_stats} reads one connection's
    own counters. *)

type stats = {
  st_calls : int;
      (** request round trips put on the wire (pipelined sub-requests
          count one each; a batch frame counts one) *)
  st_reconnect_attempts : int;  (** establishment attempts during outages *)
  st_reconnects : int;  (** outages successfully recovered *)
  st_retried_calls : int;  (** idempotent calls transparently re-issued *)
  st_giveups : int;  (** outages that exhausted the budget *)
  st_recovery_latencies : float list;
      (** seconds from outage detection to restored connection, most
          recent first *)
  st_overloaded : int;
      (** calls the daemon shed with [Overloaded] (admission control) *)
  st_breaker_opens : int;  (** circuit-breaker open transitions *)
  st_breaker_fastfails : int;
      (** calls failed locally, without touching the wire, while the
          breaker was open *)
  st_sub_errors : int;
      (** failed sub-replies inside multi-calls (batched or pipelined);
          bulk emulations drop such rows from their output, so this is
          how a caller detects a partially-failed listing *)
  st_events_replayed : int;
      (** events recovered through v1.6 resume replays after reconnects *)
  st_event_gaps : int;
      (** resume gap verdicts — each forced a wholesale cache flush and
          an [Ev_resync] emission *)
}

val stats : unit -> stats
(** Sum over all connections ever opened by this process. *)

val reset_stats : unit -> unit
(** Zero every connection's counters (live ones included). *)

val conn_stats : Ovirt_core.Driver.ops -> stats option
(** The counters of the connection behind [ops], identified by its event
    bus; [None] if [ops] does not come from this driver. *)
