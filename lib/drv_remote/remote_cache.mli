(** Event-invalidated, generation-counted client-side cache.

    Values are keyed by domain name (what lifecycle events carry) with a
    secondary UUID index.  Correctness under concurrency comes from the
    fill protocol: capture a {!fill} token {e before} issuing the remote
    read, {!install} the reply only if the name was not invalidated (and
    the cache not cleared) in between — an event that races an in-flight
    reply thus wins, and the stale reply is dropped instead of cached.

    All timestamps are supplied by the caller ([~now]), so TTL behaviour
    is deterministic under test.  Thread-safe. *)

type 'a t

val create : ?ttl:float -> unit -> 'a t
(** [ttl] bounds entry freshness in seconds for connections without an
    event stream; omitted, entries stay fresh until invalidated. *)

type fill
(** Token capturing cache time (epoch + invalidation sequence) at the
    moment a remote read was issued. *)

val begin_fill : 'a t -> fill

val install :
  'a t -> fill -> string -> ?uuid:string -> 'a -> now:float -> bool
(** [install c fill name ?uuid v ~now] caches [v] for [name] unless
    [name] was invalidated or the cache cleared after [fill] was taken;
    returns whether the value was installed.  A bulk reply shares one
    token across many installs and degrades per name. *)

val find : 'a t -> string -> now:float -> 'a option
val find_by_uuid : 'a t -> string -> now:float -> 'a option

val invalidate : 'a t -> string -> unit
(** Drop [name]'s entry and refuse any fill begun before this point. *)

val clear : 'a t -> unit
(** Epoch bump: drop everything and void all outstanding fills — the
    reconnect path (event stream has a gap; nothing can be trusted). *)

val epoch : 'a t -> int
val size : 'a t -> int

val hits : 'a t -> int
(** Lookups served from cache (process lifetime). *)

val misses : 'a t -> int
(** Lookups that fell through to the wire. *)
