(** Administration client API (the [virAdm*] surface).

    Connects to a daemon's admin socket — root-only and local-only — and
    provides its runtime management: server enumeration, workerpool
    tuning, client limits/identity/disconnect, and logging control.  This
    is the interface whose absence motivated the runtime-management work:
    every setter here edits live state that the persistent configuration
    file can only seed at startup. *)

type conn
type server
(** A named server on the daemon (["libvirtd"] or ["admin"]). *)

val connect :
  ?daemon:string -> ?identity:Ovnet.Transport.unix_identity -> unit ->
  (conn, Ovirt_core.Verror.t) result
(** [daemon] defaults to ["ovirtd"].  Non-root identities are refused by
    the daemon (the socket is root-only). *)

val close : conn -> unit
val daemon_uptime_s : conn -> (int64, Ovirt_core.Verror.t) result

val drain : conn -> (unit, Ovirt_core.Verror.t) result
(** Ask the daemon to shut down gracefully: stop accepting, finish
    in-flight dispatches, then close.  Returns as soon as the daemon
    acknowledges; the drain itself runs in the background. *)

val reconcile_status :
  conn ->
  (Reconcile.summary * Reconcile.dom_status list, Ovirt_core.Verror.t) result
(** The reconciler's convergence summary and per-domain rows — the
    administrator's view of whether the declared fleet state holds. *)

(** Aggregate replay-ring counters across the daemon's per-node event
    rings (v1.6 resumable subscriptions). *)
type event_stats = {
  es_rings : int;  (** rings created (one per distinct node opened) *)
  es_emitted : int;  (** events appended to rings since startup *)
  es_replayed : int;  (** events re-sent through resume replays *)
  es_gapped : int;  (** resumes answered with a gap verdict *)
  es_resumes : int;  (** resume calls served *)
  es_ring_occupancy : int;  (** retained events, summed over rings *)
  es_ring_capacity : int;  (** ring capacity, summed over rings *)
  es_subscribers : int;  (** live seq-tagged subscriptions *)
  es_head_seq : int;  (** highest stream position across rings *)
}

val event_stats : conn -> (event_stats, Ovirt_core.Verror.t) result
(** The administrator's view of event-stream health: a growing
    [es_gapped] means rings are undersized for the observed outages
    (raise [event_ring] in the daemon configuration). *)

(** Aggregate reply-cache counters across the daemon's per-node caches
    (the zero-work read fast path). *)
type reply_cache_stats = {
  rc_caches : int;  (** caches created (one per distinct node opened) *)
  rc_hits : int;  (** lookups answered from cached frames *)
  rc_misses : int;  (** lookups that fell through to the handler *)
  rc_insertions : int;  (** frames stored *)
  rc_invalidations : int;  (** entries dropped by events or stale stamps *)
  rc_evictions : int;  (** entries dropped by the LRU capacity bound *)
  rc_patched_sends : int;  (** cached frames sent with a patched serial *)
  rc_entries : int;  (** currently cached frames, summed over caches *)
  rc_bytes : int;  (** currently cached frame bytes, summed over caches *)
  rc_enabled : bool;  (** the daemon-level [reply_cache] knob *)
}

val reply_cache_stats : conn -> (reply_cache_stats, Ovirt_core.Verror.t) result
(** The administrator's view of read fast-path health: a hit ratio near
    zero under a read-heavy load means writes are churning the caches or
    [reply_cache_entries] is too small. *)

val fleet_status :
  conn -> (Ovirt_core.Driver.fleet_status list, Ovirt_core.Verror.t) result
(** One status per fleet hosted in the daemon's process (empty if it
    hosts none): member health as the controller's prober sees it,
    probe/failure counters, last known domain counts and migration
    totals. *)

(** {1 Servers} *)

val list_servers : conn -> (string list, Ovirt_core.Verror.t) result
val lookup_server : conn -> string -> (server, Ovirt_core.Verror.t) result
val server_name : server -> string

(** {1 Workerpool} *)

type threadpool_info = {
  tp_min_workers : int;
  tp_max_workers : int;
  tp_n_workers : int;
  tp_free_workers : int;
  tp_prio_workers : int;
  tp_job_queue_depth : int;
  tp_job_queue_limit : int;  (** admission bound; 0 = unbounded *)
  tp_wall_limit_ms : int;  (** stuck-worker watchdog; 0 = off *)
}

(** Overload counters since pool creation, plus the live limits. *)
type pool_stats = {
  ps_jobs_done : int;
  ps_jobs_failed : int;  (** handler raised *)
  ps_jobs_shed : int;  (** rejected by admission control *)
  ps_jobs_expired : int;  (** deadline passed while queued *)
  ps_workers_stuck : int;  (** ever written off by the watchdog *)
  ps_workers_stuck_now : int;  (** still wedged *)
  ps_job_queue_depth : int;
  ps_job_queue_limit : int;
  ps_wall_limit_ms : int;
}

val threadpool_info : server -> (threadpool_info, Ovirt_core.Verror.t) result
val pool_stats : server -> (pool_stats, Ovirt_core.Verror.t) result

val set_threadpool :
  server ->
  ?min_workers:int ->
  ?max_workers:int ->
  ?prio_workers:int ->
  ?job_queue_limit:int ->
  ?wall_limit_ms:int ->
  unit ->
  (unit, Ovirt_core.Verror.t) result

val set_threadpool_params :
  server -> Ovrpc.Typed_params.t -> (unit, Ovirt_core.Verror.t) result
(** Raw typed-parameter variant (lets tests exercise read-only/unknown
    field rejection). *)

(** {1 Client management} *)

type client_info = {
  cl_id : int64;
  cl_transport : Ovnet.Transport.kind;
  cl_connected_since : int64;
}

type client_limits = {
  nclients_max : int;
  nclients_current : int;
  nclients_unauth_max : int;
  nclients_unauth_current : int;
}

val list_clients : server -> (client_info list, Ovirt_core.Verror.t) result
val client_limits : server -> (client_limits, Ovirt_core.Verror.t) result

val set_client_limits :
  server -> ?max_clients:int -> ?max_unauth:int -> unit ->
  (unit, Ovirt_core.Verror.t) result

val set_client_limits_params :
  server -> Ovrpc.Typed_params.t -> (unit, Ovirt_core.Verror.t) result

val client_identity :
  server -> int64 -> (Ovrpc.Typed_params.t, Ovirt_core.Verror.t) result
(** Transport-dependent identity fields; see
    {!Protocol.Admin_protocol.client_info_readonly} and friends. *)

val client_disconnect : server -> int64 -> (unit, Ovirt_core.Verror.t) result

(** {1 Logging} *)

val get_logging_level : conn -> (Vlog.priority, Ovirt_core.Verror.t) result
val set_logging_level : conn -> Vlog.priority -> (unit, Ovirt_core.Verror.t) result

val set_logging_level_raw : conn -> int -> (unit, Ovirt_core.Verror.t) result
(** Send an arbitrary numeric level (tests exercise range rejection). *)

val get_logging_filters : conn -> (string, Ovirt_core.Verror.t) result
val set_logging_filters : conn -> string -> (unit, Ovirt_core.Verror.t) result
val get_logging_outputs : conn -> (string, Ovirt_core.Verror.t) result
val set_logging_outputs : conn -> string -> (unit, Ovirt_core.Verror.t) result
