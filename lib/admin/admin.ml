module Verror = Ovirt_core.Verror
module Ap = Protocol.Admin_protocol
module Tp = Ovrpc.Typed_params
module Transport = Ovnet.Transport

type conn = { rpc : Rpc_client.t }
type server = { conn : conn; srv_name : string }

let ( let* ) = Result.bind

let connect ?(daemon = "ovirtd") ?identity () =
  let* rpc =
    Rpc_client.connect
      ~address:(daemon ^ "-admin-sock")
      ~kind:Transport.Unix_sock ~program:Ap.program ~version:Ap.version ?identity ()
  in
  let conn = { rpc } in
  (* Probe: a root-refused connection is closed server-side; surface that
     now rather than on the first real call. *)
  match
    Rpc_client.call rpc ~procedure:(Ap.proc_to_int Ap.Proc_list_servers) ~body:""
      ~timeout_s:5.0 ()
  with
  | Ok _ -> Ok conn
  | Error err ->
    Rpc_client.close rpc;
    if err.Verror.code = Verror.Rpc_failure then
      Verror.error Verror.Auth_failed
        "admin socket refused the connection (root only): %s" err.Verror.message
    else Error err

let close conn = Rpc_client.close conn.rpc

let call conn proc body =
  Rpc_client.call conn.rpc ~procedure:(Ap.proc_to_int proc) ~body ()

let decode decoder reply =
  match decoder reply with
  | v -> Ok v
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg
  | exception Tp.Invalid msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

let call_dec conn proc body decoder =
  let* reply = call conn proc body in
  decode decoder reply

let call_unit conn proc body =
  let* reply = call conn proc body in
  decode Protocol.Remote_protocol.dec_unit_body reply

let daemon_uptime_s conn = call_dec conn Ap.Proc_daemon_uptime "" Ap.dec_hyper_body
let drain conn = call_unit conn Ap.Proc_daemon_drain ""

let reconcile_status conn =
  call_dec conn Ap.Proc_daemon_reconcile_status ""
    Protocol.Remote_protocol.dec_reconcile_status

let fleet_status conn =
  call_dec conn Ap.Proc_daemon_fleet_status "" Ap.dec_fleet_statuses

(* ------------------------------------------------------------------ *)
(* Servers                                                             *)
(* ------------------------------------------------------------------ *)

let list_servers conn =
  call_dec conn Ap.Proc_list_servers "" Protocol.Remote_protocol.dec_string_list

let lookup_server conn name =
  let* () = call_unit conn Ap.Proc_lookup_server (Ap.enc_server_name name) in
  Ok { conn; srv_name = name }

let server_name srv = srv.srv_name

(* ------------------------------------------------------------------ *)
(* Workerpool                                                          *)
(* ------------------------------------------------------------------ *)

type threadpool_info = {
  tp_min_workers : int;
  tp_max_workers : int;
  tp_n_workers : int;
  tp_free_workers : int;
  tp_prio_workers : int;
  tp_job_queue_depth : int;
  tp_job_queue_limit : int;
  tp_wall_limit_ms : int;
}

type pool_stats = {
  ps_jobs_done : int;
  ps_jobs_failed : int;
  ps_jobs_shed : int;
  ps_jobs_expired : int;
  ps_workers_stuck : int;
  ps_workers_stuck_now : int;
  ps_job_queue_depth : int;
  ps_job_queue_limit : int;
  ps_wall_limit_ms : int;
}

let required params field =
  match Tp.find_uint params field with
  | Some v -> Ok v
  | None -> Verror.error Verror.Rpc_failure "reply lacks field %S" field

let threadpool_info srv =
  let* params =
    call_dec srv.conn Ap.Proc_get_threadpool
      (Ap.enc_server_name srv.srv_name)
      Ap.dec_params
  in
  let* tp_min_workers = required params Ap.threadpool_workers_min in
  let* tp_max_workers = required params Ap.threadpool_workers_max in
  let* tp_n_workers = required params Ap.threadpool_workers_current in
  let* tp_free_workers = required params Ap.threadpool_workers_free in
  let* tp_prio_workers = required params Ap.threadpool_workers_priority in
  let* tp_job_queue_depth = required params Ap.threadpool_job_queue_depth in
  let* tp_job_queue_limit = required params Ap.threadpool_job_queue_limit in
  let* tp_wall_limit_ms = required params Ap.threadpool_wall_limit_ms in
  Ok
    {
      tp_min_workers;
      tp_max_workers;
      tp_n_workers;
      tp_free_workers;
      tp_prio_workers;
      tp_job_queue_depth;
      tp_job_queue_limit;
      tp_wall_limit_ms;
    }

let pool_stats srv =
  let* params =
    call_dec srv.conn Ap.Proc_daemon_pool_stats
      (Ap.enc_server_name srv.srv_name)
      Ap.dec_params
  in
  let* ps_jobs_done = required params Ap.pool_jobs_done in
  let* ps_jobs_failed = required params Ap.pool_jobs_failed in
  let* ps_jobs_shed = required params Ap.pool_jobs_shed in
  let* ps_jobs_expired = required params Ap.pool_jobs_expired in
  let* ps_workers_stuck = required params Ap.pool_workers_stuck in
  let* ps_workers_stuck_now = required params Ap.pool_workers_stuck_now in
  let* ps_job_queue_depth = required params Ap.threadpool_job_queue_depth in
  let* ps_job_queue_limit = required params Ap.threadpool_job_queue_limit in
  let* ps_wall_limit_ms = required params Ap.threadpool_wall_limit_ms in
  Ok
    {
      ps_jobs_done;
      ps_jobs_failed;
      ps_jobs_shed;
      ps_jobs_expired;
      ps_workers_stuck;
      ps_workers_stuck_now;
      ps_job_queue_depth;
      ps_job_queue_limit;
      ps_wall_limit_ms;
    }

type event_stats = {
  es_rings : int;
  es_emitted : int;
  es_replayed : int;
  es_gapped : int;
  es_resumes : int;
  es_ring_occupancy : int;
  es_ring_capacity : int;
  es_subscribers : int;
  es_head_seq : int;
}

let event_stats conn =
  let* params = call_dec conn Ap.Proc_daemon_event_stats "" Ap.dec_params in
  let* es_rings = required params Ap.event_rings in
  let* es_emitted = required params Ap.event_emitted in
  let* es_replayed = required params Ap.event_replayed in
  let* es_gapped = required params Ap.event_gapped in
  let* es_resumes = required params Ap.event_resumes in
  let* es_ring_occupancy = required params Ap.event_ring_occupancy in
  let* es_ring_capacity = required params Ap.event_ring_capacity in
  let* es_subscribers = required params Ap.event_subscribers in
  let* es_head_seq = required params Ap.event_head_seq in
  Ok
    {
      es_rings;
      es_emitted;
      es_replayed;
      es_gapped;
      es_resumes;
      es_ring_occupancy;
      es_ring_capacity;
      es_subscribers;
      es_head_seq;
    }

type reply_cache_stats = {
  rc_caches : int;
  rc_hits : int;
  rc_misses : int;
  rc_insertions : int;
  rc_invalidations : int;
  rc_evictions : int;
  rc_patched_sends : int;
  rc_entries : int;
  rc_bytes : int;
  rc_enabled : bool;
}

let reply_cache_stats conn =
  let* params = call_dec conn Ap.Proc_daemon_reply_cache_stats "" Ap.dec_params in
  let* rc_caches = required params Ap.reply_cache_caches in
  let* rc_hits = required params Ap.reply_cache_hits in
  let* rc_misses = required params Ap.reply_cache_misses in
  let* rc_insertions = required params Ap.reply_cache_insertions in
  let* rc_invalidations = required params Ap.reply_cache_invalidations in
  let* rc_evictions = required params Ap.reply_cache_evictions in
  let* rc_patched_sends = required params Ap.reply_cache_patched_sends in
  let* rc_entries = required params Ap.reply_cache_entries in
  let* rc_bytes = required params Ap.reply_cache_bytes in
  let* enabled = required params Ap.reply_cache_enabled in
  Ok
    {
      rc_caches;
      rc_hits;
      rc_misses;
      rc_insertions;
      rc_invalidations;
      rc_evictions;
      rc_patched_sends;
      rc_entries;
      rc_bytes;
      rc_enabled = enabled <> 0;
    }

let set_threadpool_params srv params =
  call_unit srv.conn Ap.Proc_set_threadpool
    (Ap.enc_server_params ~server:srv.srv_name params)

let set_threadpool srv ?min_workers ?max_workers ?prio_workers ?job_queue_limit
    ?wall_limit_ms () =
  let params =
    List.filter_map Fun.id
      [
        Option.map (Tp.uint Ap.threadpool_workers_min) min_workers;
        Option.map (Tp.uint Ap.threadpool_workers_max) max_workers;
        Option.map (Tp.uint Ap.threadpool_workers_priority) prio_workers;
        Option.map (Tp.uint Ap.threadpool_job_queue_limit) job_queue_limit;
        Option.map (Tp.uint Ap.threadpool_wall_limit_ms) wall_limit_ms;
      ]
  in
  set_threadpool_params srv params

(* ------------------------------------------------------------------ *)
(* Client management                                                   *)
(* ------------------------------------------------------------------ *)

type client_info = {
  cl_id : int64;
  cl_transport : Transport.kind;
  cl_connected_since : int64;
}

type client_limits = {
  nclients_max : int;
  nclients_current : int;
  nclients_unauth_max : int;
  nclients_unauth_current : int;
}

let list_clients srv =
  let* entries =
    call_dec srv.conn Ap.Proc_list_clients
      (Ap.enc_server_name srv.srv_name)
      Ap.dec_client_list
  in
  let kind_of = function
    | 0 -> Ok Transport.Unix_sock
    | 1 -> Ok Transport.Tcp
    | 2 -> Ok Transport.Tls
    | n -> Verror.error Verror.Rpc_failure "unknown transport code %d" n
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      let* cl_transport = kind_of e.Ap.client_transport in
      build
        ({
           cl_id = e.Ap.client_id;
           cl_transport;
           cl_connected_since = e.Ap.connected_since;
         }
        :: acc)
        rest
  in
  build [] entries

let client_limits srv =
  let* params =
    call_dec srv.conn Ap.Proc_get_client_limits
      (Ap.enc_server_name srv.srv_name)
      Ap.dec_params
  in
  let* nclients_max = required params Ap.server_clients_max in
  let* nclients_current = required params Ap.server_clients_current in
  let* nclients_unauth_max = required params Ap.server_clients_unauth_max in
  let* nclients_unauth_current = required params Ap.server_clients_unauth_current in
  Ok { nclients_max; nclients_current; nclients_unauth_max; nclients_unauth_current }

let set_client_limits_params srv params =
  call_unit srv.conn Ap.Proc_set_client_limits
    (Ap.enc_server_params ~server:srv.srv_name params)

let set_client_limits srv ?max_clients ?max_unauth () =
  let params =
    List.filter_map Fun.id
      [
        Option.map (Tp.uint Ap.server_clients_max) max_clients;
        Option.map (Tp.uint Ap.server_clients_unauth_max) max_unauth;
      ]
  in
  set_client_limits_params srv params

let client_identity srv id =
  call_dec srv.conn Ap.Proc_get_client_info
    (Ap.enc_client_ref ~server:srv.srv_name ~id)
    Ap.dec_params

let client_disconnect srv id =
  call_unit srv.conn Ap.Proc_client_close
    (Ap.enc_client_ref ~server:srv.srv_name ~id)

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let get_logging_level conn =
  let* n = call_dec conn Ap.Proc_get_log_level "" Ap.dec_uint_body in
  Result.map_error (Verror.make Verror.Rpc_failure) (Vlog.priority_of_int n)

let set_logging_level_raw conn n =
  call_unit conn Ap.Proc_set_log_level (Ap.enc_uint_body n)

let set_logging_level conn level =
  set_logging_level_raw conn (Vlog.priority_to_int level)

let get_logging_filters conn =
  call_dec conn Ap.Proc_get_log_filters "" Protocol.Remote_protocol.dec_string_body

let set_logging_filters conn filters =
  call_unit conn Ap.Proc_set_log_filters
    (Protocol.Remote_protocol.enc_string_body filters)

let get_logging_outputs conn =
  call_dec conn Ap.Proc_get_log_outputs "" Protocol.Remote_protocol.dec_string_body

let set_logging_outputs conn outputs =
  call_unit conn Ap.Proc_set_log_outputs
    (Protocol.Remote_protocol.enc_string_body outputs)
