(** Domain handles and lifecycle operations.

    A handle pairs a connection with the domain's identity; operations
    resolve through the connection's driver at call time, so a handle
    stays valid across state changes (and reports [No_domain] once the
    domain is gone). *)

type t

val name : t -> string
val uuid : t -> Vmm.Uuid.t
val connection : t -> Connect.t

val lookup_by_name : Connect.t -> string -> (t, Verror.t) result
val lookup_by_uuid : Connect.t -> Vmm.Uuid.t -> (t, Verror.t) result

val define_xml : Connect.t -> string -> (t, Verror.t) result
(** Define (or on stateless hypervisors, register) a persistent domain
    from its XML description. *)

val undefine : t -> (unit, Verror.t) result

val create : t -> (unit, Verror.t) result
(** Start the domain. *)

val suspend : t -> (unit, Verror.t) result
val resume : t -> (unit, Verror.t) result

val shutdown : t -> (unit, Verror.t) result
(** Guest-cooperative shutdown. *)

val destroy : t -> (unit, Verror.t) result
(** Hard power-off. *)

val get_info : t -> (Driver.domain_info, Verror.t) result
val get_state : t -> (Vmm.Vm_state.state, Verror.t) result
val xml_desc : t -> (string, Verror.t) result
val set_memory : t -> int -> (unit, Verror.t) result
(** Balloon target in KiB. *)

val is_active : t -> (bool, Verror.t) result

(** {1 Managed save}

    [save] checkpoints a running domain's memory into the driver's state
    directory and stops it; [restore] brings it back exactly where it
    was, consuming the checkpoint.  [has_managed_save] reports whether a
    checkpoint exists.  Drivers without a live memory image answer
    [Operation_unsupported]. *)

val save : t -> (unit, Verror.t) result
val restore : t -> (unit, Verror.t) result
val has_managed_save : t -> (bool, Verror.t) result

(** {1 Autostart}

    An autostarted domain is started by its driver when the node is
    recovered after a daemon restart, if it is not already running —
    the persistent-domain analogue of [Network.set_autostart]. *)

val set_autostart : t -> bool -> (unit, Verror.t) result
val get_autostart : t -> (bool, Verror.t) result

(** {1 Lifecycle policy}

    A declared {!Dompolicy.t} generalizes the autostart flag: the
    daemon-side reconciler continuously converges the domain toward its
    declared run-state and applies the boot/shutdown knobs at daemon
    start and drain.  Only remote connections support this (the policy
    engine lives in the daemon). *)

val set_policy : t -> Dompolicy.t -> (unit, Verror.t) result
val get_policy : t -> (Dompolicy.t, Verror.t) result

(** {1 Live migration}

    Precopy algorithm over driver-provided memory images: a full first
    round, then dirty-page rounds until the remainder is small (or
    [max_rounds] hit), then stop-and-copy.  [dirty_hook round] runs
    between rounds so callers (benchmarks, tests) can model guest load
    dirtying pages mid-migration. *)

type migrate_stats = {
  rounds : int;  (** precopy rounds actually executed *)
  pages_transferred : int;
  bytes_transferred : int;
  downtime_pages : int;  (** pages copied during stop-and-copy *)
}

val migrate :
  t ->
  dest:Connect.t ->
  ?max_rounds:int ->
  ?stopcopy_threshold_pages:int ->
  ?dirty_hook:(int -> unit) ->
  unit ->
  (t * migrate_stats, Verror.t) result
(** Returns the destination handle.  On failure the source is resumed and
    the half-built destination is destroyed. *)
