type lifecycle =
  | Ev_defined
  | Ev_undefined
  | Ev_started
  | Ev_suspended
  | Ev_resumed
  | Ev_shutdown
  | Ev_stopped
  | Ev_crashed
  | Ev_migrated
  | Ev_adopted
  | Ev_diverged
  | Ev_resync

let lifecycle_name = function
  | Ev_defined -> "defined"
  | Ev_undefined -> "undefined"
  | Ev_started -> "started"
  | Ev_suspended -> "suspended"
  | Ev_resumed -> "resumed"
  | Ev_shutdown -> "shutdown"
  | Ev_stopped -> "stopped"
  | Ev_crashed -> "crashed"
  | Ev_migrated -> "migrated"
  | Ev_adopted -> "adopted"
  | Ev_diverged -> "diverged"
  | Ev_resync -> "resync"

(* Wire codes are list positions: append-only. *)
let all =
  [
    Ev_defined; Ev_undefined; Ev_started; Ev_suspended; Ev_resumed; Ev_shutdown;
    Ev_stopped; Ev_crashed; Ev_migrated; Ev_adopted; Ev_diverged;
    (* v1.6 addition *)
    Ev_resync;
  ]

let lifecycle_to_int ev =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = ev then i else index (i + 1) rest
  in
  index 0 all

let lifecycle_of_int n =
  match List.nth_opt all n with
  | Some ev -> Ok ev
  | None -> Error (Printf.sprintf "unknown lifecycle event %d" n)

(* [seq] is the daemon-assigned stream position for events that arrived
   over a sequence-numbered remote subscription; 0 for local (driver-bus)
   events, which have no wire position. *)
type event = { domain_name : string; lifecycle : lifecycle; seq : int }
type subscription = int

type bus = {
  mutex : Mutex.t;
  mutable subscribers : (int * (event -> unit)) list;
  mutable next_id : int;
  recent : event Queue.t;
}

let history_bound = 4096

let create_bus () =
  { mutex = Mutex.create (); subscribers = []; next_id = 0; recent = Queue.create () }

let with_lock bus f =
  Mutex.lock bus.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock bus.mutex) f

let emit ?(seq = 0) bus ~domain_name lifecycle =
  let event = { domain_name; lifecycle; seq } in
  let callbacks =
    with_lock bus (fun () ->
        Queue.push event bus.recent;
        if Queue.length bus.recent > history_bound then ignore (Queue.pop bus.recent);
        List.map snd bus.subscribers)
  in
  List.iter (fun f -> f event) callbacks

let subscribe bus f =
  with_lock bus (fun () ->
      let id = bus.next_id in
      bus.next_id <- id + 1;
      bus.subscribers <- bus.subscribers @ [ (id, f) ];
      id)

let unsubscribe bus id =
  with_lock bus (fun () ->
      bus.subscribers <- List.filter (fun (i, _) -> i <> id) bus.subscribers)

let subscriber_count bus = with_lock bus (fun () -> List.length bus.subscribers)

let history bus =
  with_lock bus (fun () -> Queue.fold (fun acc e -> e :: acc) [] bus.recent |> List.rev)
