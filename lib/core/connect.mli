(** Connections: the public API entry point.

    [open_uri "qemu:///system"] selects a driver through the registry and
    yields a connection handle; every other public object ([Domain.t],
    [Network.t], ...) hangs off one.  Closed connections answer
    [Invalid_conn] to everything, matching libvirt's behaviour for
    operations on a closed [virConnectPtr]. *)

type t

val open_uri : string -> (t, Verror.t) result
val close : t -> unit
(** Idempotent. *)

val is_closed : t -> bool
val uri : t -> Vuri.t
val driver_name : t -> string

val capabilities : t -> (Capabilities.t, Verror.t) result
val hostname : t -> (string, Verror.t) result

val num_of_domains : t -> (int, Verror.t) result
(** Active domains. *)

val list_domains : t -> (Driver.domain_ref list, Verror.t) result
val list_defined_domains : t -> (string list, Verror.t) result

val list_all_domains : t -> (Driver.domain_record list, Verror.t) result
(** Every domain (active and defined) with ref + info + autostart in one
    pass: one RPC on remote connections ([Proc_dom_list_all]), a native
    single-lock snapshot where the driver has one, per-op emulation
    otherwise. *)

val subscribe_events : t -> (Events.event -> unit) -> (Events.subscription, Verror.t) result
val unsubscribe_events : t -> Events.subscription -> unit

val event_history : t -> (Events.event list, Verror.t) result
(** The connection bus's bounded recent-event log, oldest first.  Events
    replayed by a resumable subscription during [open_uri] land here
    before any subscriber can attach, so a tailing client reads the
    replay from the history and the rest from a subscription. *)

(**/**)

val ops : t -> (Driver.ops, Verror.t) result
(** Internal: checked access for sibling modules ([Domain], [Network],
    [Storage]) and the daemon dispatcher. *)
