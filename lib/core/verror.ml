type code =
  | Internal_error
  | No_connect
  | Invalid_conn
  | Invalid_arg
  | Operation_invalid
  | Operation_failed
  | Operation_unsupported
  | No_domain
  | Dup_name
  | No_network
  | No_storage_pool
  | No_storage_vol
  | Auth_failed
  | Rpc_failure
  | No_client
  | No_server
  | Resource_exhausted
  | Overloaded

type t = { code : code; message : string }

exception Virt_error of t

(* Wire codes are frozen: appending only, never renumbering. *)
let all_codes =
  [
    (Internal_error, 1);
    (No_connect, 2);
    (Invalid_conn, 3);
    (Invalid_arg, 4);
    (Operation_invalid, 5);
    (Operation_failed, 6);
    (Operation_unsupported, 7);
    (No_domain, 8);
    (Dup_name, 9);
    (No_network, 10);
    (No_storage_pool, 11);
    (No_storage_vol, 12);
    (Auth_failed, 13);
    (Rpc_failure, 14);
    (No_client, 15);
    (No_server, 16);
    (Resource_exhausted, 17);
    (Overloaded, 18);
  ]

let code_to_int code = List.assoc code all_codes

let code_of_int n =
  match List.find_opt (fun (_, i) -> i = n) all_codes with
  | Some (code, _) -> code
  | None -> Internal_error

let code_name = function
  | Internal_error -> "internal error"
  | No_connect -> "no connection driver available"
  | Invalid_conn -> "invalid connection"
  | Invalid_arg -> "invalid argument"
  | Operation_invalid -> "operation invalid"
  | Operation_failed -> "operation failed"
  | Operation_unsupported -> "operation unsupported"
  | No_domain -> "domain not found"
  | Dup_name -> "name already in use"
  | No_network -> "network not found"
  | No_storage_pool -> "storage pool not found"
  | No_storage_vol -> "storage volume not found"
  | Auth_failed -> "authentication failed"
  | Rpc_failure -> "RPC failure"
  | No_client -> "client not found"
  | No_server -> "server not found"
  | Resource_exhausted -> "resource limit exceeded"
  | Overloaded -> "server overloaded"

(* The wire error model is code + message; the retry-after hint for
   [Overloaded] rides in the message as a parseable prefix. *)
let overloaded_prefix = "retry_after_ms="

let overloaded ~retry_after_ms fmt =
  Format.kasprintf
    (fun message ->
      Stdlib.Error
        {
          code = Overloaded;
          message =
            Printf.sprintf "%s%d: %s" overloaded_prefix retry_after_ms message;
        })
    fmt

let retry_after_ms e =
  if e.code <> Overloaded then None
  else
    let plen = String.length overloaded_prefix in
    if String.length e.message <= plen
       || not (String.starts_with ~prefix:overloaded_prefix e.message)
    then None
    else
      let rest = String.sub e.message plen (String.length e.message - plen) in
      match String.index_opt rest ':' with
      | None -> int_of_string_opt rest
      | Some i -> int_of_string_opt (String.sub rest 0 i)

let to_string e = Printf.sprintf "%s: %s" (code_name e.code) e.message
let pp fmt e = Format.pp_print_string fmt (to_string e)
let make code message = { code; message }

let error code fmt =
  Format.kasprintf (fun message -> Stdlib.Error { code; message }) fmt

let raise_err code fmt =
  Format.kasprintf (fun message -> raise (Virt_error { code; message })) fmt

let of_message code message = Stdlib.Error { code; message }
