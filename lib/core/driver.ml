type domain_ref = {
  dom_name : string;
  dom_uuid : Vmm.Uuid.t;
  dom_id : int option;
}

type domain_info = {
  di_state : Vmm.Vm_state.state;
  di_max_mem_kib : int;
  di_memory_kib : int;
  di_vcpus : int;
  di_cpu_time_ns : int64;
}

(* One row of a bulk listing: everything a fleet-inventory pass needs,
   so remote clients can fetch the whole host in one round trip. *)
type domain_record = {
  rec_ref : domain_ref;
  rec_info : domain_info;
  rec_autostart : bool option;
}

type migrate_source = {
  mig_config_xml : string;
  mig_image : Vmm.Guest_image.t;
  mig_enter_stopcopy : unit -> (unit, Verror.t) result;
  mig_confirm : unit -> (unit, Verror.t) result;
  mig_abort : unit -> unit;
}

type migrate_dest = {
  mig_dest_image : Vmm.Guest_image.t;
  mig_finish : unit -> (unit, Verror.t) result;
  mig_cancel : unit -> unit;
}

type net_ops = {
  net_define :
    name:string -> bridge:string -> ip_range:string ->
    (Net_backend.info, Verror.t) result;
  net_undefine : string -> (unit, Verror.t) result;
  net_start : string -> (unit, Verror.t) result;
  net_stop : string -> (unit, Verror.t) result;
  net_set_autostart : string -> bool -> (unit, Verror.t) result;
  net_lookup : string -> (Net_backend.info, Verror.t) result;
  net_list : unit -> (Net_backend.info list, Verror.t) result;
}

type storage_ops = {
  pool_define :
    name:string -> target_path:string -> capacity_b:int ->
    (Storage_backend.pool_info, Verror.t) result;
  pool_undefine : string -> (unit, Verror.t) result;
  pool_start : string -> (unit, Verror.t) result;
  pool_stop : string -> (unit, Verror.t) result;
  pool_lookup : string -> (Storage_backend.pool_info, Verror.t) result;
  pool_list : unit -> (Storage_backend.pool_info list, Verror.t) result;
  vol_create :
    pool:string -> name:string -> capacity_b:int -> format:string ->
    (Storage_backend.vol_info, Verror.t) result;
  vol_delete : pool:string -> name:string -> (unit, Verror.t) result;
  vol_list : pool:string -> (Storage_backend.vol_info list, Verror.t) result;
  vol_by_path : string -> (Storage_backend.vol_info, Verror.t) result;
}

let net_ops_of_backend b =
  {
    net_define = (fun ~name ~bridge ~ip_range -> Net_backend.define b ~name ~bridge ~ip_range);
    net_undefine = Net_backend.undefine b;
    net_start = Net_backend.start b;
    net_stop = Net_backend.stop b;
    net_set_autostart = Net_backend.set_autostart b;
    net_lookup = Net_backend.lookup b;
    net_list = (fun () -> Ok (Net_backend.list b));
  }

let storage_ops_of_backend b =
  {
    pool_define =
      (fun ~name ~target_path ~capacity_b ->
        Storage_backend.define_pool b ~name ~target_path ~capacity_b);
    pool_undefine = Storage_backend.undefine_pool b;
    pool_start = Storage_backend.start_pool b;
    pool_stop = Storage_backend.stop_pool b;
    pool_lookup = Storage_backend.lookup_pool b;
    pool_list = (fun () -> Ok (Storage_backend.list_pools b));
    vol_create =
      (fun ~pool ~name ~capacity_b ~format ->
        Storage_backend.create_volume b ~pool ~name ~capacity_b ~format);
    vol_delete = (fun ~pool ~name -> Storage_backend.delete_volume b ~pool ~name);
    vol_list = (fun ~pool -> Storage_backend.list_volumes b ~pool);
    vol_by_path = Storage_backend.volume_by_path b;
  }

(* Federation (protocol v1.7): a fleet controller aggregates many member
   daemons behind one connection.  Listings are scatter-gathered with
   per-shard error isolation, so a reply is annotated with which members
   could not contribute rather than failing outright. *)

type shard_error = {
  se_member : string;
  se_error : Verror.t;
}

type fleet_listing = {
  fl_records : domain_record list;
  fl_shard_errors : shard_error list;
  fl_members : int;
}

type member_health = Mh_up | Mh_degraded | Mh_down

let member_health_name = function
  | Mh_up -> "up"
  | Mh_degraded -> "degraded"
  | Mh_down -> "down"

type member_status = {
  ms_name : string;
  ms_health : member_health;
  ms_consec_failures : int;
  ms_probes : int;
  ms_failures : int;
  ms_domains : int;
}

type fleet_status = {
  fs_fleet : string;
  fs_members : member_status list;
  fs_migrations_active : int;
  fs_migrations_recovered : int;
  fs_migrations_rolled_back : int;
}

type fleet_view = {
  fleet_list_all : unit -> (fleet_listing, Verror.t) result;
  fleet_status : unit -> (fleet_status, Verror.t) result;
  fleet_migrate : domain:string -> dest:string -> (unit, Verror.t) result;
  fleet_owner : string -> (string, Verror.t) result;
}

type ops = {
  drv_name : string;
  close : unit -> unit;
  get_capabilities : unit -> Capabilities.t;
  get_hostname : unit -> string;
  list_domains : unit -> (domain_ref list, Verror.t) result;
  list_defined : unit -> (string list, Verror.t) result;
  lookup_by_name : string -> (domain_ref, Verror.t) result;
  lookup_by_uuid : Vmm.Uuid.t -> (domain_ref, Verror.t) result;
  define_xml : string -> (domain_ref, Verror.t) result;
  undefine : string -> (unit, Verror.t) result;
  dom_create : string -> (unit, Verror.t) result;
  dom_suspend : string -> (unit, Verror.t) result;
  dom_resume : string -> (unit, Verror.t) result;
  dom_shutdown : string -> (unit, Verror.t) result;
  dom_destroy : string -> (unit, Verror.t) result;
  dom_get_info : string -> (domain_info, Verror.t) result;
  dom_get_xml : string -> (string, Verror.t) result;
  dom_set_memory : string -> int -> (unit, Verror.t) result;
  dom_save : (string -> (unit, Verror.t) result) option;
  dom_restore : (string -> (unit, Verror.t) result) option;
  dom_has_managed_save : (string -> (bool, Verror.t) result) option;
  dom_set_autostart : (string -> bool -> (unit, Verror.t) result) option;
  dom_get_autostart : (string -> (bool, Verror.t) result) option;
  dom_set_policy : (string -> Dompolicy.t -> (unit, Verror.t) result) option;
  dom_get_policy : (string -> (Dompolicy.t, Verror.t) result) option;
  dom_list_all : (unit -> (domain_record list, Verror.t) result) option;
  migrate_begin : (string -> (migrate_source, Verror.t) result) option;
  migrate_prepare : (string -> (migrate_dest, Verror.t) result) option;
  guest_agent_install : (string -> (unit, Verror.t) result) option;
  guest_agent_exec : (string -> string -> (string, Verror.t) result) option;
  net : net_ops option;
  storage : storage_ops option;
  fleet : fleet_view option;
  events : Events.bus;
  generation : (unit -> int) option;
}

let unsupported ~drv ~op =
  Verror.error Verror.Operation_unsupported "driver %s does not implement %s" drv op

let make_ops ~drv_name ~get_capabilities ~get_hostname ?(close = fun () -> ())
    ?list_domains ?list_defined ?lookup_by_name ?lookup_by_uuid ?define_xml
    ?undefine ?dom_create ?dom_suspend ?dom_resume ?dom_shutdown ?dom_destroy
    ?dom_get_info ?dom_get_xml ?dom_set_memory ?dom_save ?dom_restore
    ?dom_has_managed_save ?dom_set_autostart ?dom_get_autostart ?dom_set_policy
    ?dom_get_policy ?dom_list_all ?migrate_begin ?migrate_prepare
    ?guest_agent_install ?guest_agent_exec ?net ?storage ?fleet ?events
    ?generation () =
  let missing op _ = unsupported ~drv:drv_name ~op in
  let missing0 op () = unsupported ~drv:drv_name ~op in
  {
    drv_name;
    close;
    get_capabilities;
    get_hostname;
    list_domains = Option.value list_domains ~default:(missing0 "list_domains");
    list_defined = Option.value list_defined ~default:(missing0 "list_defined");
    lookup_by_name = Option.value lookup_by_name ~default:(missing "lookup_by_name");
    lookup_by_uuid = Option.value lookup_by_uuid ~default:(missing "lookup_by_uuid");
    define_xml = Option.value define_xml ~default:(missing "define_xml");
    undefine = Option.value undefine ~default:(missing "undefine");
    dom_create = Option.value dom_create ~default:(missing "create");
    dom_suspend = Option.value dom_suspend ~default:(missing "suspend");
    dom_resume = Option.value dom_resume ~default:(missing "resume");
    dom_shutdown = Option.value dom_shutdown ~default:(missing "shutdown");
    dom_destroy = Option.value dom_destroy ~default:(missing "destroy");
    dom_get_info = Option.value dom_get_info ~default:(missing "get_info");
    dom_get_xml = Option.value dom_get_xml ~default:(missing "get_xml");
    dom_set_memory =
      (match dom_set_memory with
       | Some f -> f
       | None -> fun _ _ -> unsupported ~drv:drv_name ~op:"set_memory");
    dom_save;
    dom_restore;
    dom_has_managed_save;
    dom_set_autostart;
    dom_get_autostart;
    dom_set_policy;
    dom_get_policy;
    dom_list_all;
    migrate_begin;
    migrate_prepare;
    guest_agent_install;
    guest_agent_exec;
    net;
    storage;
    fleet;
    events = (match events with Some bus -> bus | None -> Events.create_bus ());
    generation;
  }

(* ------------------------------------------------------------------ *)
(* Fleet status hook                                                   *)
(* ------------------------------------------------------------------ *)

(* Set by the fleet subsystem (which depends on this library, not the
   other way round) so the admin service can report every in-process
   fleet without a dependency cycle. *)
let fleet_status_hook : (unit -> fleet_status list) ref = ref (fun () -> [])
let set_fleet_status_hook f = fleet_status_hook := f
let fleet_statuses () = !fleet_status_hook ()

(* ------------------------------------------------------------------ *)
(* Bulk listing                                                        *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Per-op emulation of [dom_list_all] for drivers without a native
   snapshot: list + per-domain lookup/info/autostart.  Not race-free
   (a domain may vanish between the listing and its info call — such
   rows are dropped rather than failing the whole listing), which is
   exactly why the native single-lock path exists. *)
let list_all_fallback ops =
  let* active = ops.list_domains () in
  let* defined = ops.list_defined () in
  let defined_refs =
    List.filter_map
      (fun name -> Result.to_option (ops.lookup_by_name name))
      defined
  in
  let record r =
    match ops.dom_get_info r.dom_name with
    | Error _ -> None
    | Ok info ->
      let autostart =
        match ops.dom_get_autostart with
        | Some f -> Result.to_option (f r.dom_name)
        | None -> None
      in
      Some { rec_ref = r; rec_info = info; rec_autostart = autostart }
  in
  Ok (List.filter_map record (active @ defined_refs))

let list_all ops =
  match ops.dom_list_all with Some f -> f () | None -> list_all_fallback ops

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type registration = {
  reg_name : string;
  probe : Vuri.t -> bool;
  open_conn : Vuri.t -> (ops, Verror.t) result;
}

let registry : registration list ref = ref []
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Single-pass ordered upsert: re-registering replaces in place (probe
   order is load-bearing — the remote driver registers last as the
   catch-all), a new name appends. *)
let register reg =
  with_registry (fun () ->
      let rec upsert = function
        | [] -> [ reg ]
        | r :: rest -> if r.reg_name = reg.reg_name then reg :: rest else r :: upsert rest
      in
      registry := upsert !registry)

let registered () = with_registry (fun () -> List.map (fun r -> r.reg_name) !registry)
let clear_registry () = with_registry (fun () -> registry := [])

let open_uri uri =
  let regs = with_registry (fun () -> !registry) in
  match List.find_opt (fun r -> r.probe uri) regs with
  | Some r -> r.open_conn uri
  | None ->
    Verror.error Verror.No_connect "no driver accepts URI %S" (Vuri.to_string uri)
