(** Virtual network backend.

    In libvirt, networks are handled by a dedicated driver living beside
    the hypervisor drivers in the daemon.  Each stateful driver here
    embeds one of these backends, created with the conventional
    ["default"] NAT network already defined and started. *)

type info = {
  net_name : string;
  net_uuid : Vmm.Uuid.t;
  bridge : string;
  ip_range : string;  (** CIDR, e.g. "192.168.122.0/24" *)
  active : bool;
  autostart : bool;
  connected_ifaces : int;  (** NICs of running domains on this network *)
}

type t

val create : unit -> t

val define : t -> name:string -> bridge:string -> ip_range:string -> (info, Verror.t) result
val undefine : t -> string -> (unit, Verror.t) result
(** Refused while active or while interfaces are connected. *)

val start : t -> string -> (unit, Verror.t) result
val stop : t -> string -> (unit, Verror.t) result
val set_autostart : t -> string -> bool -> (unit, Verror.t) result
val lookup : t -> string -> (info, Verror.t) result
val list : t -> info list
(** Sorted by name. *)

val connect_iface : t -> string -> (unit, Verror.t) result
(** A domain NIC attaches (domain start); the network must be active. *)

val disconnect_iface : t -> string -> unit
(** A domain NIC detaches (domain stop); unknown networks are ignored so
    teardown never fails. *)

val generation : t -> int
(** Monotonic count of completed mutations, bumped inside the locked
    section of every successful state change.  Readers that snapshot it
    before a read and observe the same value afterwards know the read saw
    current state — the validity stamp the daemon's reply cache uses. *)
