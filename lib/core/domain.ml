module Guest_image = Vmm.Guest_image

type t = { conn : Connect.t; dom_name : string; dom_uuid : Vmm.Uuid.t }

let ( let* ) = Result.bind

let name dom = dom.dom_name
let uuid dom = dom.dom_uuid
let connection dom = dom.conn

let of_ref conn (r : Driver.domain_ref) =
  { conn; dom_name = r.Driver.dom_name; dom_uuid = r.Driver.dom_uuid }

let lookup_by_name conn name =
  let* ops = Connect.ops conn in
  Result.map (of_ref conn) (ops.Driver.lookup_by_name name)

let lookup_by_uuid conn uuid =
  let* ops = Connect.ops conn in
  Result.map (of_ref conn) (ops.Driver.lookup_by_uuid uuid)

let define_xml conn xml =
  let* ops = Connect.ops conn in
  Result.map (of_ref conn) (ops.Driver.define_xml xml)

(* All simple lifecycle calls share the resolve-then-dispatch shape. *)
let on_ops dom f =
  let* ops = Connect.ops dom.conn in
  f ops

let undefine dom = on_ops dom (fun ops -> ops.Driver.undefine dom.dom_name)
let create dom = on_ops dom (fun ops -> ops.Driver.dom_create dom.dom_name)
let suspend dom = on_ops dom (fun ops -> ops.Driver.dom_suspend dom.dom_name)
let resume dom = on_ops dom (fun ops -> ops.Driver.dom_resume dom.dom_name)
let shutdown dom = on_ops dom (fun ops -> ops.Driver.dom_shutdown dom.dom_name)
let destroy dom = on_ops dom (fun ops -> ops.Driver.dom_destroy dom.dom_name)
let get_info dom = on_ops dom (fun ops -> ops.Driver.dom_get_info dom.dom_name)

let get_state dom =
  Result.map (fun info -> info.Driver.di_state) (get_info dom)

let xml_desc dom = on_ops dom (fun ops -> ops.Driver.dom_get_xml dom.dom_name)

let set_memory dom kib =
  on_ops dom (fun ops -> ops.Driver.dom_set_memory dom.dom_name kib)

let is_active dom =
  Result.map (fun s -> Vmm.Vm_state.is_active s) (get_state dom)

let optional_op dom select op_name =
  on_ops dom (fun ops ->
      match select ops with
      | Some f -> f dom.dom_name
      | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:op_name)

let save dom = optional_op dom (fun ops -> ops.Driver.dom_save) "managed save"
let restore dom = optional_op dom (fun ops -> ops.Driver.dom_restore) "managed restore"

let has_managed_save dom =
  optional_op dom (fun ops -> ops.Driver.dom_has_managed_save) "managed save"

let set_autostart dom flag =
  on_ops dom (fun ops ->
      match ops.Driver.dom_set_autostart with
      | Some f -> f dom.dom_name flag
      | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"autostart")

let get_autostart dom =
  optional_op dom (fun ops -> ops.Driver.dom_get_autostart) "autostart"

let set_policy dom policy =
  on_ops dom (fun ops ->
      match ops.Driver.dom_set_policy with
      | Some f -> f dom.dom_name policy
      | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"policy")

let get_policy dom =
  optional_op dom (fun ops -> ops.Driver.dom_get_policy) "policy"

(* ------------------------------------------------------------------ *)
(* Live migration: generic precopy over driver-provided images         *)
(* ------------------------------------------------------------------ *)

type migrate_stats = {
  rounds : int;
  pages_transferred : int;
  bytes_transferred : int;
  downtime_pages : int;
}

let transfer_pages ~src ~dst pages stats_pages stats_bytes =
  List.iter
    (fun i ->
      let data = Guest_image.transfer_page src i in
      Guest_image.install_page dst i data;
      incr stats_pages;
      stats_bytes := !stats_bytes + String.length data)
    pages

let migrate dom ~dest ?(max_rounds = 8) ?(stopcopy_threshold_pages = 64)
    ?(dirty_hook = fun _ -> ()) () =
  let* src_ops = Connect.ops dom.conn in
  let* dst_ops = Connect.ops dest in
  let* begin_ =
    match src_ops.Driver.migrate_begin with
    | Some f -> Ok f
    | None -> Driver.unsupported ~drv:src_ops.Driver.drv_name ~op:"migrate (source)"
  in
  let* prepare =
    match dst_ops.Driver.migrate_prepare with
    | Some f -> Ok f
    | None ->
      Driver.unsupported ~drv:dst_ops.Driver.drv_name ~op:"migrate (destination)"
  in
  let* ms = begin_ dom.dom_name in
  match prepare ms.Driver.mig_config_xml with
  | Error e ->
    ms.Driver.mig_abort ();
    Error e
  | Ok md ->
    let src_img = ms.Driver.mig_image and dst_img = md.Driver.mig_dest_image in
    let pages = ref 0 and bytes = ref 0 in
    let fail e =
      md.Driver.mig_cancel ();
      ms.Driver.mig_abort ();
      Error e
    in
    if Guest_image.page_count src_img <> Guest_image.page_count dst_img then
      fail
        (Verror.make Verror.Operation_failed
           "source and destination images differ in size")
    else begin
      (* Round 0: everything. *)
      transfer_pages ~src:src_img ~dst:dst_img
        (List.init (Guest_image.page_count src_img) Fun.id)
        pages bytes;
      (* Iterative precopy on whatever the guest dirtied meanwhile. *)
      let rec precopy round =
        dirty_hook round;
        let dirty = Guest_image.dirty_pages src_img in
        if List.length dirty <= stopcopy_threshold_pages || round >= max_rounds
        then Ok round
        else begin
          transfer_pages ~src:src_img ~dst:dst_img dirty pages bytes;
          precopy (round + 1)
        end
      in
      let* rounds = precopy 1 in
      (* Stop-and-copy: pause the source, move the remainder. *)
      match ms.Driver.mig_enter_stopcopy () with
      | Error e -> fail e
      | Ok () ->
        let remainder = Guest_image.dirty_pages src_img in
        let downtime_pages = List.length remainder in
        transfer_pages ~src:src_img ~dst:dst_img remainder pages bytes;
        (match md.Driver.mig_finish () with
         | Error e -> fail e
         | Ok () ->
           (match ms.Driver.mig_confirm () with
            | Error e ->
              (* Destination is live; report but do not cancel it. *)
              Error e
            | Ok () ->
              let* dest_dom = lookup_by_name dest dom.dom_name in
              Events.emit src_ops.Driver.events ~domain_name:dom.dom_name
                Events.Ev_migrated;
              Ok
                ( dest_dom,
                  {
                    rounds;
                    pages_transferred = !pages;
                    bytes_transferred = !bytes;
                    downtime_pages;
                  } )))
    end
