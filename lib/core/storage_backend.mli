(** Storage pool/volume backend.

    Mirrors libvirt's storage driver with a directory-pool-like backend:
    pools have a capacity budget, volumes allocate from it, and domain
    disks reference volumes by path.  Each stateful driver embeds one,
    pre-provisioned with the conventional ["default"] pool. *)

type pool_info = {
  pool_name : string;
  pool_uuid : Vmm.Uuid.t;
  target_path : string;
  capacity_b : int;  (** bytes *)
  allocation_b : int;  (** bytes currently allocated to volumes *)
  pool_active : bool;
  volume_count : int;
}

type vol_info = {
  vol_name : string;
  vol_key : string;  (** full path: <target_path>/<name> *)
  vol_capacity_b : int;
  vol_format : string;
}

type t

val create : unit -> t

val define_pool :
  t -> name:string -> target_path:string -> capacity_b:int -> (pool_info, Verror.t) result

val undefine_pool : t -> string -> (unit, Verror.t) result
(** Refused while active or non-empty. *)

val start_pool : t -> string -> (unit, Verror.t) result
val stop_pool : t -> string -> (unit, Verror.t) result
val lookup_pool : t -> string -> (pool_info, Verror.t) result
val list_pools : t -> pool_info list

val create_volume :
  t -> pool:string -> name:string -> capacity_b:int -> format:string ->
  (vol_info, Verror.t) result
(** Fails with [Resource_exhausted] when the pool budget is exceeded. *)

val delete_volume : t -> pool:string -> name:string -> (unit, Verror.t) result
val lookup_volume : t -> pool:string -> name:string -> (vol_info, Verror.t) result
val list_volumes : t -> pool:string -> (vol_info list, Verror.t) result

val volume_by_path : t -> string -> (vol_info, Verror.t) result
(** Resolve a disk's [source_path] to its volume across all pools. *)

val generation : t -> int
(** Monotonic count of completed mutations (pool and volume), bumped
    inside the locked section of every successful state change; see
    {!Net_backend.generation}. *)
