(** Domain lifecycle events.

    Drivers publish lifecycle changes to a per-connection bus; management
    applications subscribe with callbacks (the "notify a third-party
    application when something happens" extension the thesis lists as
    future work — implemented here).  Callbacks run synchronously on the
    publishing thread; subscribers must not block. *)

type lifecycle =
  | Ev_defined
  | Ev_undefined
  | Ev_started
  | Ev_suspended
  | Ev_resumed
  | Ev_shutdown
  | Ev_stopped
  | Ev_crashed
  | Ev_migrated
  | Ev_adopted  (** running domain re-adopted after a manager restart *)
  | Ev_diverged
      (** hypervisor state found to disagree with the journal on recovery
          (guest died or appeared while the manager was down) *)
  | Ev_resync
      (** the remote event stream had a gap (the daemon's replay ring
          wrapped past this client's position, or the daemon was
          replaced): cached state was flushed and subscribers must
          re-read anything they track.  [domain_name] is [""]. *)

val lifecycle_name : lifecycle -> string
val lifecycle_of_int : int -> (lifecycle, string) result
val lifecycle_to_int : lifecycle -> int

type event = { domain_name : string; lifecycle : lifecycle; seq : int }
(** [seq] is the daemon-assigned position in a sequence-numbered remote
    event stream, or 0 for local (driver-bus) events. *)

type bus
type subscription

val create_bus : unit -> bus

val emit : ?seq:int -> bus -> domain_name:string -> lifecycle -> unit
(** [?seq] defaults to 0 (unsequenced). *)

val subscribe : bus -> (event -> unit) -> subscription
val unsubscribe : bus -> subscription -> unit
val subscriber_count : bus -> int
val history : bus -> event list
(** All events emitted so far, oldest first (bounded at 4096; older
    entries are discarded).  Lets late tools inspect recent activity. *)
