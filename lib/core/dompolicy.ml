(* Declarative per-domain lifecycle policy.

   The reconciler holds one [t] per spec'd domain and converges the
   actual run-state toward it.  The knobs mirror the declarative
   surface of distribution libvirtd modules: [on_boot] generalizes the
   autostart flag, [on_shutdown] declares what the daemon does to a
   running guest when it drains, and [run_state] is the continuously
   enforced desired state. *)

type on_boot = Boot_start | Boot_ignore

type on_shutdown = Shut_suspend | Shut_shutdown | Shut_ignore

type run_state = Rs_running | Rs_stopped | Rs_any

type t = {
  on_boot : on_boot;
  on_shutdown : on_shutdown;
  run_state : run_state;
}

let default = { on_boot = Boot_ignore; on_shutdown = Shut_ignore; run_state = Rs_any }

(* ---- string forms (CLI and journal) ---- *)

let on_boot_name = function Boot_start -> "start" | Boot_ignore -> "ignore"

let on_boot_of_name = function
  | "start" -> Ok Boot_start
  | "ignore" -> Ok Boot_ignore
  | s -> Verror.error Verror.Invalid_arg "bad on_boot %S (start|ignore)" s

let on_shutdown_name = function
  | Shut_suspend -> "suspend"
  | Shut_shutdown -> "shutdown"
  | Shut_ignore -> "ignore"

let on_shutdown_of_name = function
  | "suspend" -> Ok Shut_suspend
  | "shutdown" -> Ok Shut_shutdown
  | "ignore" -> Ok Shut_ignore
  | s ->
    Verror.error Verror.Invalid_arg "bad on_shutdown %S (suspend|shutdown|ignore)" s

let run_state_name = function
  | Rs_running -> "running"
  | Rs_stopped -> "stopped"
  | Rs_any -> "any"

let run_state_of_name = function
  | "running" -> Ok Rs_running
  | "stopped" -> Ok Rs_stopped
  | "any" -> Ok Rs_any
  | s -> Verror.error Verror.Invalid_arg "bad run_state %S (running|stopped|any)" s

let to_string p =
  Printf.sprintf "on_boot=%s on_shutdown=%s run_state=%s"
    (on_boot_name p.on_boot) (on_shutdown_name p.on_shutdown)
    (run_state_name p.run_state)

(* ---- compact integer forms (wire protocol and journal records) ---- *)

let on_boot_to_int = function Boot_ignore -> 0 | Boot_start -> 1

let on_boot_of_int = function
  | 0 -> Ok Boot_ignore
  | 1 -> Ok Boot_start
  | n -> Verror.error Verror.Rpc_failure "bad on_boot code %d" n

let on_shutdown_to_int = function
  | Shut_ignore -> 0
  | Shut_suspend -> 1
  | Shut_shutdown -> 2

let on_shutdown_of_int = function
  | 0 -> Ok Shut_ignore
  | 1 -> Ok Shut_suspend
  | 2 -> Ok Shut_shutdown
  | n -> Verror.error Verror.Rpc_failure "bad on_shutdown code %d" n

let run_state_to_int = function Rs_any -> 0 | Rs_running -> 1 | Rs_stopped -> 2

let run_state_of_int = function
  | 0 -> Ok Rs_any
  | 1 -> Ok Rs_running
  | 2 -> Ok Rs_stopped
  | n -> Verror.error Verror.Rpc_failure "bad run_state code %d" n

let ( let* ) = Result.bind

let to_ints p =
  (on_boot_to_int p.on_boot, on_shutdown_to_int p.on_shutdown,
   run_state_to_int p.run_state)

let of_ints (b, s, r) =
  let* on_boot = on_boot_of_int b in
  let* on_shutdown = on_shutdown_of_int s in
  let* run_state = run_state_of_int r in
  Ok { on_boot; on_shutdown; run_state }
