(** Declarative per-domain lifecycle policy — the spec the reconciler
    converges actual state toward.

    [on_boot] generalizes the autostart flag (what happens when the
    daemon boots or recovers the domain's node), [on_shutdown] declares
    how a running guest is treated when the daemon drains, and
    [run_state] is the continuously enforced desired run-state. *)

type on_boot = Boot_start | Boot_ignore

type on_shutdown = Shut_suspend | Shut_shutdown | Shut_ignore

type run_state = Rs_running | Rs_stopped | Rs_any

type t = {
  on_boot : on_boot;
  on_shutdown : on_shutdown;
  run_state : run_state;
}

val default : t
(** [on_boot=ignore on_shutdown=ignore run_state=any] — a no-op spec. *)

val on_boot_name : on_boot -> string
val on_boot_of_name : string -> (on_boot, Verror.t) result
val on_shutdown_name : on_shutdown -> string
val on_shutdown_of_name : string -> (on_shutdown, Verror.t) result
val run_state_name : run_state -> string
val run_state_of_name : string -> (run_state, Verror.t) result

val to_string : t -> string
(** ["on_boot=... on_shutdown=... run_state=..."]. *)

val to_ints : t -> int * int * int
(** Compact codes for the wire protocol and journal records. *)

val of_ints : int * int * int -> (t, Verror.t) result
