(** The driver architecture: libvirt's core design.

    A {e driver} supplies an {!ops} record per open connection — the
    uniform internal interface every hypervisor backend implements.  The
    public API ([Connect]/[Domain]/[Network]/[Storage]) only ever talks to
    an [ops] record, so adding a hypervisor never changes the API.

    Drivers register a {!registration} (a URI probe plus an opener) in a
    global {e registry}; {!open_uri} walks registrations in order and the
    first probe that accepts wins — the remote driver registers last and
    accepts what no client-side driver claimed, exactly libvirt's
    selection rule. *)

type domain_ref = {
  dom_name : string;
  dom_uuid : Vmm.Uuid.t;
  dom_id : int option;  (** hypervisor id while active (Xen domid, pid) *)
}

type domain_info = {
  di_state : Vmm.Vm_state.state;
  di_max_mem_kib : int;
  di_memory_kib : int;  (** current (ballooned) memory *)
  di_vcpus : int;
  di_cpu_time_ns : int64;
}

type domain_record = {
  rec_ref : domain_ref;
  rec_info : domain_info;
  rec_autostart : bool option;  (** [None] when the driver lacks autostart *)
}
(** One row of a bulk listing ({!ops.dom_list_all}): ref + info +
    autostart in a single snapshot, the unit of the wire protocol's
    [Proc_dom_list_all]. *)

(** Migration session handles (source and destination halves).  The
    generic precopy loop in [Domain.migrate] drives these; only drivers
    whose hypervisor exposes a live memory image provide them. *)

type migrate_source = {
  mig_config_xml : string;
  mig_image : Vmm.Guest_image.t;
  mig_enter_stopcopy : unit -> (unit, Verror.t) result;
      (** pause the source for the final copy round *)
  mig_confirm : unit -> (unit, Verror.t) result;
      (** migration succeeded: tear the source domain down *)
  mig_abort : unit -> unit;  (** migration failed: resume the source *)
}

type migrate_dest = {
  mig_dest_image : Vmm.Guest_image.t;  (** paused destination's memory *)
  mig_finish : unit -> (unit, Verror.t) result;  (** resume at destination *)
  mig_cancel : unit -> unit;  (** failure: destroy the half-built domain *)
}

(** Network and storage sub-driver interfaces.  Local drivers wrap their
    embedded backends ({!net_ops_of_backend}); the remote driver
    implements the same records over RPC, so the public [Network] and
    [Storage] APIs work identically through the daemon. *)

type net_ops = {
  net_define :
    name:string -> bridge:string -> ip_range:string ->
    (Net_backend.info, Verror.t) result;
  net_undefine : string -> (unit, Verror.t) result;
  net_start : string -> (unit, Verror.t) result;
  net_stop : string -> (unit, Verror.t) result;
  net_set_autostart : string -> bool -> (unit, Verror.t) result;
  net_lookup : string -> (Net_backend.info, Verror.t) result;
  net_list : unit -> (Net_backend.info list, Verror.t) result;
}

type storage_ops = {
  pool_define :
    name:string -> target_path:string -> capacity_b:int ->
    (Storage_backend.pool_info, Verror.t) result;
  pool_undefine : string -> (unit, Verror.t) result;
  pool_start : string -> (unit, Verror.t) result;
  pool_stop : string -> (unit, Verror.t) result;
  pool_lookup : string -> (Storage_backend.pool_info, Verror.t) result;
  pool_list : unit -> (Storage_backend.pool_info list, Verror.t) result;
  vol_create :
    pool:string -> name:string -> capacity_b:int -> format:string ->
    (Storage_backend.vol_info, Verror.t) result;
  vol_delete : pool:string -> name:string -> (unit, Verror.t) result;
  vol_list : pool:string -> (Storage_backend.vol_info list, Verror.t) result;
  vol_by_path : string -> (Storage_backend.vol_info, Verror.t) result;
}

val net_ops_of_backend : Net_backend.t -> net_ops
val storage_ops_of_backend : Storage_backend.t -> storage_ops

(** {1 Federation (protocol v1.7)}

    A fleet controller aggregates many member daemons behind a single
    connection.  Listings are scatter-gathered with per-shard error
    isolation: a dead member degrades the reply instead of failing it,
    and the reply says exactly which members could not contribute. *)

type shard_error = {
  se_member : string;  (** member (shard) name *)
  se_error : Verror.t;  (** why it could not contribute *)
}

type fleet_listing = {
  fl_records : domain_record list;  (** rows from reachable members *)
  fl_shard_errors : shard_error list;
      (** one marker per member that failed or timed out; empty means the
          listing is complete and fresh *)
  fl_members : int;  (** members queried ([1] for a plain daemon) *)
}

(** Member health as seen by the controller's prober: [Mh_degraded] means
    recent failures (or a recovering member) — still queried, but
    suspect; [Mh_down] members are skipped by the data path and probed
    with backoff. *)
type member_health = Mh_up | Mh_degraded | Mh_down

val member_health_name : member_health -> string

type member_status = {
  ms_name : string;
  ms_health : member_health;
  ms_consec_failures : int;
  ms_probes : int;  (** probes attempted since the member joined *)
  ms_failures : int;  (** probe + data-path failures, lifetime *)
  ms_domains : int;  (** last known domain count; [-1] = never listed *)
}

type fleet_status = {
  fs_fleet : string;  (** fleet (controller) name *)
  fs_members : member_status list;
  fs_migrations_active : int;
  fs_migrations_recovered : int;  (** journal replays rolled forward *)
  fs_migrations_rolled_back : int;  (** aborted back to a running source *)
}

(** The controller surface a fleet connection exposes on top of the
    ordinary {!ops} operations (which it serves by scatter-gather or
    placement-routed forwarding). *)
type fleet_view = {
  fleet_list_all : unit -> (fleet_listing, Verror.t) result;
  fleet_status : unit -> (fleet_status, Verror.t) result;
  fleet_migrate : domain:string -> dest:string -> (unit, Verror.t) result;
      (** journaled two-phase cross-daemon migration; [dest] is a member
          name *)
  fleet_owner : string -> (string, Verror.t) result;
      (** member name owning a domain (placement + learned locations) *)
}

type ops = {
  drv_name : string;
  close : unit -> unit;
  get_capabilities : unit -> Capabilities.t;
  get_hostname : unit -> string;
  list_domains : unit -> (domain_ref list, Verror.t) result;  (** active *)
  list_defined : unit -> (string list, Verror.t) result;  (** inactive *)
  lookup_by_name : string -> (domain_ref, Verror.t) result;
  lookup_by_uuid : Vmm.Uuid.t -> (domain_ref, Verror.t) result;
  define_xml : string -> (domain_ref, Verror.t) result;
  undefine : string -> (unit, Verror.t) result;
  dom_create : string -> (unit, Verror.t) result;
  dom_suspend : string -> (unit, Verror.t) result;
  dom_resume : string -> (unit, Verror.t) result;
  dom_shutdown : string -> (unit, Verror.t) result;
  dom_destroy : string -> (unit, Verror.t) result;
  dom_get_info : string -> (domain_info, Verror.t) result;
  dom_get_xml : string -> (string, Verror.t) result;
  dom_set_memory : string -> int -> (unit, Verror.t) result;
  dom_save : (string -> (unit, Verror.t) result) option;
      (** managed save: checkpoint a running domain's memory to the
          driver's state directory and stop it *)
  dom_restore : (string -> (unit, Verror.t) result) option;
      (** resume a domain from its managed-save image (consumes it) *)
  dom_has_managed_save : (string -> (bool, Verror.t) result) option;
  dom_set_autostart : (string -> bool -> (unit, Verror.t) result) option;
      (** mark a domain to be started when the driver recovers a node
          after a daemon restart (cf. [net_set_autostart]) *)
  dom_get_autostart : (string -> (bool, Verror.t) result) option;
  dom_set_policy : (string -> Dompolicy.t -> (unit, Verror.t) result) option;
      (** declare the domain's lifecycle policy to the daemon-side
          reconciler; only the remote driver implements this (policy is
          a daemon concept, local drivers have no reconciler) *)
  dom_get_policy : (string -> (Dompolicy.t, Verror.t) result) option;
  dom_list_all : (unit -> (domain_record list, Verror.t) result) option;
      (** bulk listing of all domains (active and defined), snapshotted
          under one driver read lock when implemented natively; absent
          drivers are served by {!list_all_fallback} *)
  migrate_begin : (string -> (migrate_source, Verror.t) result) option;
  migrate_prepare : (string -> (migrate_dest, Verror.t) result) option;
  guest_agent_install : (string -> (unit, Verror.t) result) option;
      (** intrusive baseline: install the in-guest agent of a domain *)
  guest_agent_exec : (string -> string -> (string, Verror.t) result) option;
      (** [exec domain json_line] over the guest-agent channel *)
  net : net_ops option;
  storage : storage_ops option;
  fleet : fleet_view option;
      (** present only on fleet-controller connections: the federation
          surface (scatter-gather listing with shard errors, member
          health, cross-daemon migration) *)
  events : Events.bus;
  generation : (unit -> int) option;
      (** monotonic write stamp over the connection's whole visible
          state (node plus network/storage backends); present only for
          local stateful drivers.  The daemon's reply cache declines to
          cache when absent; see {!Drvnode.generation} *)
}

val unsupported : drv:string -> op:string -> ('a, Verror.t) result
(** The canonical [Operation_unsupported] error. *)

val make_ops :
  drv_name:string ->
  get_capabilities:(unit -> Capabilities.t) ->
  get_hostname:(unit -> string) ->
  ?close:(unit -> unit) ->
  ?list_domains:(unit -> (domain_ref list, Verror.t) result) ->
  ?list_defined:(unit -> (string list, Verror.t) result) ->
  ?lookup_by_name:(string -> (domain_ref, Verror.t) result) ->
  ?lookup_by_uuid:(Vmm.Uuid.t -> (domain_ref, Verror.t) result) ->
  ?define_xml:(string -> (domain_ref, Verror.t) result) ->
  ?undefine:(string -> (unit, Verror.t) result) ->
  ?dom_create:(string -> (unit, Verror.t) result) ->
  ?dom_suspend:(string -> (unit, Verror.t) result) ->
  ?dom_resume:(string -> (unit, Verror.t) result) ->
  ?dom_shutdown:(string -> (unit, Verror.t) result) ->
  ?dom_destroy:(string -> (unit, Verror.t) result) ->
  ?dom_get_info:(string -> (domain_info, Verror.t) result) ->
  ?dom_get_xml:(string -> (string, Verror.t) result) ->
  ?dom_set_memory:(string -> int -> (unit, Verror.t) result) ->
  ?dom_save:(string -> (unit, Verror.t) result) ->
  ?dom_restore:(string -> (unit, Verror.t) result) ->
  ?dom_has_managed_save:(string -> (bool, Verror.t) result) ->
  ?dom_set_autostart:(string -> bool -> (unit, Verror.t) result) ->
  ?dom_get_autostart:(string -> (bool, Verror.t) result) ->
  ?dom_set_policy:(string -> Dompolicy.t -> (unit, Verror.t) result) ->
  ?dom_get_policy:(string -> (Dompolicy.t, Verror.t) result) ->
  ?dom_list_all:(unit -> (domain_record list, Verror.t) result) ->
  ?migrate_begin:(string -> (migrate_source, Verror.t) result) ->
  ?migrate_prepare:(string -> (migrate_dest, Verror.t) result) ->
  ?guest_agent_install:(string -> (unit, Verror.t) result) ->
  ?guest_agent_exec:(string -> string -> (string, Verror.t) result) ->
  ?net:net_ops ->
  ?storage:storage_ops ->
  ?fleet:fleet_view ->
  ?events:Events.bus ->
  ?generation:(unit -> int) ->
  unit ->
  ops
(** Omitted operations answer {!unsupported}. *)

val list_all_fallback : ops -> (domain_record list, Verror.t) result
(** Emulate a bulk listing with per-op calls (list + lookup + info +
    autostart).  Not race-free: rows that vanish mid-walk are dropped. *)

val list_all : ops -> (domain_record list, Verror.t) result
(** [dom_list_all] when the driver has one, {!list_all_fallback}
    otherwise. *)

(** {1 Registry} *)

type registration = {
  reg_name : string;
  probe : Vuri.t -> bool;
  open_conn : Vuri.t -> (ops, Verror.t) result;
}

val register : registration -> unit
(** Appends; re-registering a [reg_name] replaces the old entry in place
    (keeps ordering stable across re-initialization in tests). *)

val registered : unit -> string list
val clear_registry : unit -> unit

val open_uri : Vuri.t -> (ops, Verror.t) result
(** First accepting probe wins; [No_connect] if none accepts. *)

(** {1 Fleet status hook} *)

val set_fleet_status_hook : (unit -> fleet_status list) -> unit
(** Installed by the fleet subsystem (which depends on this library) so
    the admin service can enumerate in-process fleets without a
    dependency cycle. *)

val fleet_statuses : unit -> fleet_status list
(** Status of every live in-process fleet; empty when the fleet
    subsystem is absent or no fleet exists. *)
