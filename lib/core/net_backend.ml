type info = {
  net_name : string;
  net_uuid : Vmm.Uuid.t;
  bridge : string;
  ip_range : string;
  active : bool;
  autostart : bool;
  connected_ifaces : int;
}

type net = {
  uuid : Vmm.Uuid.t;
  bridge : string;
  ip_range : string;
  mutable active : bool;
  mutable autostart : bool;
  mutable ifaces : int;
}

(* [gen] counts completed mutations.  It is bumped inside the locked
   section of every state-changing operation, so a reader that snapshots
   the generation before reading and sees the same value afterwards knows
   the data it read is current — the validity check behind the daemon's
   reply cache. *)
type t = { mutex : Mutex.t; nets : (string, net) Hashtbl.t; gen : int Atomic.t }

let with_lock b f =
  Mutex.lock b.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.mutex) f

let generation b = Atomic.get b.gen

(* Bump on success only: a rejected operation changed nothing, so cached
   views of the old state remain valid. *)
let bumping b result =
  (match result with Ok _ -> Atomic.incr b.gen | Error _ -> ());
  result

let valid_cidr s =
  match String.split_on_char '/' s with
  | [ addr; prefix ] ->
    (match int_of_string_opt prefix with
     | Some p when p >= 0 && p <= 32 ->
       let octets = String.split_on_char '.' addr in
       List.length octets = 4
       && List.for_all
            (fun o ->
              match int_of_string_opt o with
              | Some v -> v >= 0 && v <= 255
              | None -> false)
            octets
     | Some _ | None -> false)
  | _ -> false

let define_unlocked b ~name ~bridge ~ip_range =
  if name = "" then Verror.error Verror.Invalid_arg "network name must not be empty"
  else if Hashtbl.mem b.nets name then
    Verror.error Verror.Dup_name "network %S already defined" name
  else if not (valid_cidr ip_range) then
    Verror.error Verror.Invalid_arg "bad CIDR %S" ip_range
  else begin
    let net =
      {
        uuid = Vmm.Uuid.generate ();
        bridge;
        ip_range;
        active = false;
        autostart = false;
        ifaces = 0;
      }
    in
    Hashtbl.replace b.nets name net;
    Ok
      {
        net_name = name;
        net_uuid = net.uuid;
        bridge;
        ip_range;
        active = false;
        autostart = false;
        connected_ifaces = 0;
      }
  end

let create () =
  let b = { mutex = Mutex.create (); nets = Hashtbl.create 4; gen = Atomic.make 0 } in
  (match
     define_unlocked b ~name:"default" ~bridge:"virbr0" ~ip_range:"192.168.122.0/24"
   with
   | Ok _ -> ()
   | Error _ -> assert false);
  (Hashtbl.find b.nets "default").active <- true;
  (Hashtbl.find b.nets "default").autostart <- true;
  b

let define b ~name ~bridge ~ip_range =
  with_lock b (fun () -> bumping b (define_unlocked b ~name ~bridge ~ip_range))

let find b name =
  match Hashtbl.find_opt b.nets name with
  | Some net -> Ok net
  | None -> Verror.error Verror.No_network "no network named %S" name

let ( let* ) = Result.bind

let undefine b name =
  with_lock b (fun () ->
    bumping b @@
      let* net = find b name in
      if net.active then
        Verror.error Verror.Operation_invalid "network %S is active" name
      else begin
        Hashtbl.remove b.nets name;
        Ok ()
      end)

let start b name =
  with_lock b (fun () ->
    bumping b @@
      let* net = find b name in
      if net.active then
        Verror.error Verror.Operation_invalid "network %S is already active" name
      else begin
        net.active <- true;
        Ok ()
      end)

let stop b name =
  with_lock b (fun () ->
    bumping b @@
      let* net = find b name in
      if not net.active then
        Verror.error Verror.Operation_invalid "network %S is not active" name
      else if net.ifaces > 0 then
        Verror.error Verror.Operation_invalid
          "network %S has %d connected interfaces" name net.ifaces
      else begin
        net.active <- false;
        Ok ()
      end)

let set_autostart b name autostart =
  with_lock b (fun () ->
    bumping b @@
      let* net = find b name in
      net.autostart <- autostart;
      Ok ())

let info_of name net =
  {
    net_name = name;
    net_uuid = net.uuid;
    bridge = net.bridge;
    ip_range = net.ip_range;
    active = net.active;
    autostart = net.autostart;
    connected_ifaces = net.ifaces;
  }

let lookup b name = with_lock b (fun () -> Result.map (info_of name) (find b name))

let list b =
  with_lock b (fun () ->
      Hashtbl.fold (fun name net acc -> info_of name net :: acc) b.nets []
      |> List.sort (fun a b -> compare a.net_name b.net_name))

let connect_iface b name =
  with_lock b (fun () ->
    bumping b @@
      let* net = find b name in
      if not net.active then
        Verror.error Verror.Operation_invalid
          "network %S is not active; cannot connect interface" name
      else begin
        net.ifaces <- net.ifaces + 1;
        Ok ()
      end)

let disconnect_iface b name =
  with_lock b (fun () ->
      match Hashtbl.find_opt b.nets name with
      | Some net when net.ifaces > 0 ->
        net.ifaces <- net.ifaces - 1;
        Atomic.incr b.gen
      | Some _ | None -> ())
