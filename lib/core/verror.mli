(** Library error model.

    Every public operation reports failures as a [t]: a stable numeric
    code (so errors survive the RPC boundary unchanged) plus a message.
    Codes follow libvirt's [VIR_ERR_*] granularity for the operations this
    toolkit implements. *)

type code =
  | Internal_error
  | No_connect  (** no driver accepted the URI *)
  | Invalid_conn  (** connection object already closed *)
  | Invalid_arg
  | Operation_invalid  (** wrong domain state for the request *)
  | Operation_failed
  | Operation_unsupported  (** driver does not implement the call *)
  | No_domain  (** domain lookup failed *)
  | Dup_name
  | No_network
  | No_storage_pool
  | No_storage_vol
  | Auth_failed
  | Rpc_failure  (** transport / protocol level failure *)
  | No_client  (** admin: client id not found *)
  | No_server  (** admin: server name not found *)
  | Resource_exhausted  (** host capacity, client limits *)
  | Overloaded  (** admission control shed the request; retry later *)

type t = { code : code; message : string }

exception Virt_error of t

val code_to_int : code -> int
val code_of_int : int -> code
(** Unknown ints map to [Internal_error] (forward compatibility on the
    wire, like libvirt's remote driver). *)

val code_name : code -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val make : code -> string -> t
val error : code -> ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a
(** [error code fmt ...] builds [Error { code; message }]. *)

val raise_err : code -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise [Virt_error] directly (used at API boundaries that raise). *)

val of_message : code -> string -> ('a, t) result
(** [Error (make code msg)] — adapts [(_, string) result] substrates. *)

val overloaded :
  retry_after_ms:int -> ('a, Format.formatter, unit, ('b, t) result) format4 -> 'a
(** Build an [Overloaded] error carrying a retry-after hint.  The wire
    error model is code + message, so the hint is encoded as a parseable
    ["retry_after_ms=N: "] message prefix. *)

val retry_after_ms : t -> int option
(** Recover the hint from an [Overloaded] error ([None] for other codes
    or unparseable messages). *)
