type t = {
  uri : Vuri.t;
  conn_ops : Driver.ops;
  mutable closed : bool;
}

let ( let* ) = Result.bind

let open_uri uri_string =
  let* uri = Vuri.parse uri_string in
  let* conn_ops = Driver.open_uri uri in
  Ok { uri; conn_ops; closed = false }

let close conn =
  if not conn.closed then begin
    conn.closed <- true;
    conn.conn_ops.Driver.close ()
  end

let is_closed conn = conn.closed
let uri conn = conn.uri
let driver_name conn = conn.conn_ops.Driver.drv_name

let ops conn =
  if conn.closed then
    Verror.error Verror.Invalid_conn "connection to %S is closed"
      (Vuri.to_string conn.uri)
  else Ok conn.conn_ops

let capabilities conn =
  let* ops = ops conn in
  Ok (ops.Driver.get_capabilities ())

let hostname conn =
  let* ops = ops conn in
  Ok (ops.Driver.get_hostname ())

let list_domains conn =
  let* ops = ops conn in
  ops.Driver.list_domains ()

let num_of_domains conn = Result.map List.length (list_domains conn)

let list_defined_domains conn =
  let* ops = ops conn in
  ops.Driver.list_defined ()

let list_all_domains conn =
  let* ops = ops conn in
  Driver.list_all ops

let subscribe_events conn f =
  let* ops = ops conn in
  Ok (Events.subscribe ops.Driver.events f)

let event_history conn =
  let* ops = ops conn in
  Ok (Events.history ops.Driver.events)

let unsubscribe_events conn sub =
  match ops conn with
  | Ok ops -> Events.unsubscribe ops.Driver.events sub
  | Error _ -> ()
