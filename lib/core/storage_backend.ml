type pool_info = {
  pool_name : string;
  pool_uuid : Vmm.Uuid.t;
  target_path : string;
  capacity_b : int;
  allocation_b : int;
  pool_active : bool;
  volume_count : int;
}

type vol_info = {
  vol_name : string;
  vol_key : string;
  vol_capacity_b : int;
  vol_format : string;
}

type volume = { capacity_b : int; format : string }

type pool = {
  uuid : Vmm.Uuid.t;
  target_path : string;
  capacity_b : int;
  mutable allocation_b : int;
  mutable active : bool;
  volumes : (string, volume) Hashtbl.t;
}

(* [gen] mirrors {!Net_backend.gen}: completed mutations, bumped inside
   the locked section, read lock-free as the reply cache validity stamp. *)
type t = { mutex : Mutex.t; pools : (string, pool) Hashtbl.t; gen : int Atomic.t }

let with_lock b f =
  Mutex.lock b.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.mutex) f

let generation b = Atomic.get b.gen

let bumping b result =
  (match result with Ok _ -> Atomic.incr b.gen | Error _ -> ());
  result

let ( let* ) = Result.bind

let define_pool_unlocked b ~name ~target_path ~capacity_b =
  if name = "" then Verror.error Verror.Invalid_arg "pool name must not be empty"
  else if Hashtbl.mem b.pools name then
    Verror.error Verror.Dup_name "pool %S already defined" name
  else if capacity_b <= 0 then
    Verror.error Verror.Invalid_arg "pool capacity must be positive"
  else if String.length target_path = 0 || target_path.[0] <> '/' then
    Verror.error Verror.Invalid_arg "pool path %S must be absolute" target_path
  else begin
    let pool =
      {
        uuid = Vmm.Uuid.generate ();
        target_path;
        capacity_b;
        allocation_b = 0;
        active = false;
        volumes = Hashtbl.create 8;
      }
    in
    Hashtbl.replace b.pools name pool;
    Ok
      {
        pool_name = name;
        pool_uuid = pool.uuid;
        target_path;
        capacity_b;
        allocation_b = 0;
        pool_active = false;
        volume_count = 0;
      }
  end

let create () =
  let b = { mutex = Mutex.create (); pools = Hashtbl.create 4; gen = Atomic.make 0 } in
  (match
     define_pool_unlocked b ~name:"default" ~target_path:"/var/lib/ovirt/images"
       ~capacity_b:(100 * 1024 * 1024 * 1024)
   with
   | Ok _ -> ()
   | Error _ -> assert false);
  (Hashtbl.find b.pools "default").active <- true;
  b

let define_pool b ~name ~target_path ~capacity_b =
  with_lock b (fun () ->
      bumping b (define_pool_unlocked b ~name ~target_path ~capacity_b))

let find b name =
  match Hashtbl.find_opt b.pools name with
  | Some pool -> Ok pool
  | None -> Verror.error Verror.No_storage_pool "no storage pool named %S" name

let undefine_pool b name =
  with_lock b (fun () ->
    bumping b @@
      let* pool = find b name in
      if pool.active then Verror.error Verror.Operation_invalid "pool %S is active" name
      else if Hashtbl.length pool.volumes > 0 then
        Verror.error Verror.Operation_invalid "pool %S still holds %d volumes" name
          (Hashtbl.length pool.volumes)
      else begin
        Hashtbl.remove b.pools name;
        Ok ()
      end)

let start_pool b name =
  with_lock b (fun () ->
    bumping b @@
      let* pool = find b name in
      if pool.active then
        Verror.error Verror.Operation_invalid "pool %S is already active" name
      else begin
        pool.active <- true;
        Ok ()
      end)

let stop_pool b name =
  with_lock b (fun () ->
    bumping b @@
      let* pool = find b name in
      if not pool.active then
        Verror.error Verror.Operation_invalid "pool %S is not active" name
      else begin
        pool.active <- false;
        Ok ()
      end)

let pool_info_of name pool =
  {
    pool_name = name;
    pool_uuid = pool.uuid;
    target_path = pool.target_path;
    capacity_b = pool.capacity_b;
    allocation_b = pool.allocation_b;
    pool_active = pool.active;
    volume_count = Hashtbl.length pool.volumes;
  }

let lookup_pool b name =
  with_lock b (fun () -> Result.map (pool_info_of name) (find b name))

let list_pools b =
  with_lock b (fun () ->
      Hashtbl.fold (fun name pool acc -> pool_info_of name pool :: acc) b.pools []
      |> List.sort (fun a b -> compare a.pool_name b.pool_name))

let vol_info_of pool name (v : volume) =
  {
    vol_name = name;
    vol_key = pool.target_path ^ "/" ^ name;
    vol_capacity_b = v.capacity_b;
    vol_format = v.format;
  }

let create_volume b ~pool:pool_name ~name ~capacity_b ~format =
  with_lock b (fun () ->
    bumping b @@
      let* pool = find b pool_name in
      if not pool.active then
        Verror.error Verror.Operation_invalid "pool %S is not active" pool_name
      else if name = "" || String.contains name '/' then
        Verror.error Verror.Invalid_arg "bad volume name %S" name
      else if Hashtbl.mem pool.volumes name then
        Verror.error Verror.Dup_name "volume %S already exists in pool %S" name pool_name
      else if capacity_b <= 0 then
        Verror.error Verror.Invalid_arg "volume capacity must be positive"
      else if pool.allocation_b + capacity_b > pool.capacity_b then
        Verror.error Verror.Resource_exhausted
          "pool %S: %d bytes requested, %d available" pool_name capacity_b
          (pool.capacity_b - pool.allocation_b)
      else begin
        let vol = { capacity_b; format } in
        Hashtbl.replace pool.volumes name vol;
        pool.allocation_b <- pool.allocation_b + capacity_b;
        Ok (vol_info_of pool name vol)
      end)

let delete_volume b ~pool:pool_name ~name =
  with_lock b (fun () ->
    bumping b @@
      let* pool = find b pool_name in
      match Hashtbl.find_opt pool.volumes name with
      | None ->
        Verror.error Verror.No_storage_vol "no volume %S in pool %S" name pool_name
      | Some vol ->
        Hashtbl.remove pool.volumes name;
        pool.allocation_b <- pool.allocation_b - vol.capacity_b;
        Ok ())

let lookup_volume b ~pool:pool_name ~name =
  with_lock b (fun () ->
      let* pool = find b pool_name in
      match Hashtbl.find_opt pool.volumes name with
      | Some vol -> Ok (vol_info_of pool name vol)
      | None ->
        Verror.error Verror.No_storage_vol "no volume %S in pool %S" name pool_name)

let list_volumes b ~pool:pool_name =
  with_lock b (fun () ->
      let* pool = find b pool_name in
      Ok
        (Hashtbl.fold (fun name vol acc -> vol_info_of pool name vol :: acc)
           pool.volumes []
        |> List.sort (fun a b -> compare a.vol_name b.vol_name)))

let volume_by_path b path =
  with_lock b (fun () ->
      let found =
        Hashtbl.fold
          (fun _pool_name pool acc ->
            match acc with
            | Some _ -> acc
            | None ->
              Hashtbl.fold
                (fun name vol acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    if pool.target_path ^ "/" ^ name = path then
                      Some (vol_info_of pool name vol)
                    else None)
                pool.volumes None)
          b.pools None
      in
      match found with
      | Some info -> Ok info
      | None -> Verror.error Verror.No_storage_vol "no volume backs path %S" path)
