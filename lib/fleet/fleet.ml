(* The federated control plane: one controller, many member daemons.

   A fleet owns a registry of member daemons and answers the ordinary
   driver surface by scatter-gather (reads) or placement-routed
   forwarding (writes).  Partial failure is the normal case at fleet
   scale, so the layer is built robustness-first:

   - every member carries a health state (Up/Degraded/Down) fed by a
     single shared prober thread and by data-path outcomes, with probe
     backoff while Down and hysteresis on recovery;
   - a scatter gives each shard its own slice of the request deadline;
     a failed or timed-out shard contributes a structured shard_error
     marker instead of poisoning the reply;
   - mutating operations route to exactly one member by consistent-hash
     placement (pluggable) plus a learned location table;
   - cross-daemon migration is a journaled two-phase handshake that
     rolls back to a running source on any failure before the
     switchover record, and rolls forward after it — a controller kill
     at any journaled boundary converges on recovery. *)

open Ovirt_core
module Rp = Protocol.Remote_protocol
module Journal = Persist.Journal
module Uuid = Vmm.Uuid

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Members and fleets                                                  *)
(* ------------------------------------------------------------------ *)

type member = {
  m_name : string;
  m_uri : string;  (** driver URI the controller opens for data calls *)
  m_probe_address : string;
  m_probe_kind : Ovnet.Transport.kind;
  mutable m_ops : Driver.ops option;  (** lazily opened member connection *)
  mutable m_health : Driver.member_health;
  mutable m_consec_failures : int;
  mutable m_consec_successes : int;
  mutable m_probes : int;
  mutable m_failures : int;
  mutable m_domains : int;  (** last known count; -1 = never listed *)
  mutable m_next_probe : float;  (** absolute *)
  mutable m_backoff_s : float;  (** probe interval while Down *)
}

type t = {
  f_name : string;
  f_mutex : Mutex.t;
  mutable f_members : member list;  (** join order *)
  f_place : Uuid.t -> string list -> string;
  f_shard_slice_s : float;
  f_probe_interval_s : float;
  f_probe_timeout_s : float;
  f_down_threshold : int;
  f_locations : (string, string) Hashtbl.t;  (** domain name -> member *)
  f_events : Events.bus;
  f_journal : Journal.t;
  mutable f_sub_errors : int;  (** shard errors surfaced to this fleet's users *)
  mutable f_migrations_active : int;
  mutable f_migrations_recovered : int;
  mutable f_migrations_rolled_back : int;
}

let with_lock t f =
  Mutex.lock t.f_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.f_mutex) f

(* ------------------------------------------------------------------ *)
(* Placement: consistent-hash ring                                     *)
(* ------------------------------------------------------------------ *)

(* Default placement: each member contributes [vnodes] points on a hash
   ring; a UUID lands on the first point clockwise.  Adding or removing
   one member only moves the keys adjacent to its points — the property
   that makes rebalancing a per-shard, not per-fleet, affair. *)
let ring_vnodes = 64

let consistent_hash_place uuid member_names =
  match member_names with
  | [] -> invalid_arg "consistent_hash_place: no members"
  | [ only ] -> only
  | names ->
    let points =
      List.concat_map
        (fun name ->
          List.init ring_vnodes (fun i ->
              (Hashtbl.hash (name ^ "#" ^ string_of_int i), name)))
        names
    in
    let points = List.sort compare points in
    let key = Hashtbl.hash (Uuid.to_string uuid) in
    (match List.find_opt (fun (h, _) -> h >= key) points with
     | Some (_, name) -> name
     | None -> snd (List.hd points))

(* ------------------------------------------------------------------ *)
(* Health state machine                                                *)
(* ------------------------------------------------------------------ *)

(* Callers hold [f_mutex].  Transitions:
     Up --failure--> Degraded --(threshold consecutive)--> Down
     Down --success--> Degraded --(2nd consecutive success)--> Up
   The Down->Up path deliberately passes through Degraded (hysteresis):
   one lucky probe against a flapping daemon must not flip the member
   straight back into full rotation. *)
let note_success_locked t m =
  m.m_consec_failures <- 0;
  m.m_consec_successes <- m.m_consec_successes + 1;
  m.m_backoff_s <- t.f_probe_interval_s;
  m.m_next_probe <- Unix.gettimeofday () +. t.f_probe_interval_s;
  match m.m_health with
  | Driver.Mh_up -> ()
  | Driver.Mh_down ->
    m.m_health <- Driver.Mh_degraded;
    m.m_consec_successes <- 1
  | Driver.Mh_degraded ->
    if m.m_consec_successes >= 2 then m.m_health <- Driver.Mh_up

let note_failure_locked t m =
  m.m_failures <- m.m_failures + 1;
  m.m_consec_failures <- m.m_consec_failures + 1;
  m.m_consec_successes <- 0;
  let now = Unix.gettimeofday () in
  if m.m_consec_failures >= t.f_down_threshold then begin
    (if m.m_health <> Driver.Mh_down then begin
       m.m_health <- Driver.Mh_down;
       (* Fleet-level gap marker: subscribers tracking fleet state must
          resync — a member's events are lost while it is down. *)
       Events.emit t.f_events ~domain_name:"" Events.Ev_resync
     end);
    (* Exponential probe backoff while Down, capped at 16 intervals. *)
    m.m_backoff_s <-
      Float.min (m.m_backoff_s *. 2.) (t.f_probe_interval_s *. 16.);
    m.m_next_probe <- now +. m.m_backoff_s
  end
  else begin
    m.m_health <- Driver.Mh_degraded;
    m.m_next_probe <- now +. t.f_probe_interval_s
  end

(* ------------------------------------------------------------------ *)
(* Global fleet registry and the shared prober thread                  *)
(* ------------------------------------------------------------------ *)

let fleets : (string, t) Hashtbl.t = Hashtbl.create 4
let fleets_mutex = Mutex.create ()
let prober_cond = Condition.create ()
let prober_spawned = ref 0

let with_fleets f =
  Mutex.lock fleets_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock fleets_mutex) f

let prober_thread_count () = !prober_spawned

(* Wake the prober (membership changed, or the data path wants a member
   re-probed now).  Never called with [f_mutex] held. *)
let poke_prober () =
  with_fleets (fun () -> Condition.broadcast prober_cond)

let probe_member t m =
  let outcome =
    match
      Rpc_client.connect ~address:m.m_probe_address ~kind:m.m_probe_kind
        ~program:Rp.program ~version:Rp.version ()
    with
    | Error e -> Error e
    | Ok rpc ->
      let r =
        Rpc_client.call rpc
          ~procedure:(Rp.proc_to_int Rp.Proc_ping)
          ~body:Rp.enc_unit_body ~timeout_s:t.f_probe_timeout_s ()
      in
      Rpc_client.close rpc;
      Result.map (fun (_ : string) -> ()) r
  in
  with_lock t (fun () ->
      m.m_probes <- m.m_probes + 1;
      match outcome with
      | Ok () -> note_success_locked t m
      | Error _ -> note_failure_locked t m)

(* One prober thread for every fleet in the process (keepalive-style
   liveness without a poll thread per member): sleep on the shared
   timekeeper until the earliest scheduled probe, run every due probe,
   repeat.  Spawned on first fleet creation, never again. *)
let prober_loop () =
  while true do
    let now = Unix.gettimeofday () in
    let all = with_fleets (fun () -> Hashtbl.fold (fun _ t acc -> t :: acc) fleets []) in
    let due = ref [] in
    let next = ref (now +. 5.) in
    List.iter
      (fun t ->
        with_lock t (fun () ->
            List.iter
              (fun m ->
                if m.m_next_probe <= now then due := (t, m) :: !due
                else next := Float.min !next m.m_next_probe)
              t.f_members))
      all;
    List.iter (fun (t, m) -> probe_member t m) !due;
    if !due = [] then
      with_fleets (fun () ->
          Ovsync.Timedwait.wait fleets_mutex prober_cond ~until:!next)
  done

(* Synchronously probe every member once, regardless of schedule.  The
   prober thread does this on its own clock; tests call it to advance
   the health machine deterministically. *)
let probe_now t =
  List.iter
    (fun m -> probe_member t m)
    (with_lock t (fun () -> t.f_members))

let ensure_prober () =
  with_fleets (fun () ->
      if !prober_spawned = 0 then begin
        incr prober_spawned;
        ignore (Thread.create prober_loop ())
      end)

(* ------------------------------------------------------------------ *)
(* Member connections                                                  *)
(* ------------------------------------------------------------------ *)

let member_ops t m =
  match with_lock t (fun () -> m.m_ops) with
  | Some ops -> Ok ops
  | None ->
    let* uri = Vuri.parse m.m_uri in
    let* ops = Driver.open_uri uri in
    let keep =
      with_lock t (fun () ->
          match m.m_ops with
          | Some existing -> `Lost existing
          | None ->
            m.m_ops <- Some ops;
            `Won)
    in
    (match keep with
     | `Lost existing ->
       ops.Driver.close ();
       Ok existing
     | `Won ->
       (* Forward member lifecycle events onto the fleet bus, so one
          subscription on the controller observes the whole fleet. *)
       let (_ : Events.subscription) =
         Events.subscribe ops.Driver.events (fun ev ->
             Events.emit t.f_events ~domain_name:ev.Events.domain_name
               ev.Events.lifecycle)
       in
       Ok ops)

let find_member t name =
  with_lock t (fun () ->
      List.find_opt (fun m -> m.m_name = name) t.f_members)

let member_names t = with_lock t (fun () -> List.map (fun m -> m.m_name) t.f_members)

(* ------------------------------------------------------------------ *)
(* Scatter-gather with per-shard deadline slices                       *)
(* ------------------------------------------------------------------ *)

(* Each shard's slice: the configured per-shard budget, clamped to
   whatever remains of the request deadline when the call arrived
   through a daemon dispatch (reqctx installed it on this thread).
   Shards run in parallel, so every shard shares the same absolute
   sub-deadline — a slow shard can burn its slice without extending the
   caller's wait past one slice. *)
let slice_deadline t =
  let now = Unix.gettimeofday () in
  let slice =
    match Ovdaemon.Reqctx.remaining_s () with
    | Some r -> Float.min t.f_shard_slice_s (Float.max 0. r)
    | None -> t.f_shard_slice_s
  in
  now +. slice

let shard_err member code fmt =
  Printf.ksprintf
    (fun msg -> Driver.{ se_member = member; se_error = Verror.make code msg })
    fmt

(* Run [job] against every non-Down member in parallel and gather until
   every shard answered or the slice deadline passed.  Down members are
   skipped instantly (their breaker is open — re-probing them is the
   prober's job, not the data path's).  A worker that outlives the
   deadline is abandoned: its late result lands in a cell nobody reads,
   and its member is charged a failure. *)
let scatter t job =
  let members = with_lock t (fun () -> t.f_members) in
  let deadline = slice_deadline t in
  let gm = Mutex.create () in
  let gc = Condition.create () in
  let arrived : (string * ('a, Verror.t) result) list ref = ref [] in
  let pending = ref 0 in
  let live, down =
    List.partition
      (fun m -> with_lock t (fun () -> m.m_health <> Driver.Mh_down))
      members
  in
  List.iter
    (fun m ->
      incr pending;
      ignore
        (Thread.create
           (fun () ->
             let r =
               try
                 match member_ops t m with
                 | Ok ops -> job m ops
                 | Error e -> Error e
               with
               | Verror.Virt_error e -> Error e
               | exn ->
                 Verror.error Verror.Internal_error "member %s: %s" m.m_name
                   (Printexc.to_string exn)
             in
             Mutex.lock gm;
             arrived := (m.m_name, r) :: !arrived;
             decr pending;
             Condition.broadcast gc;
             Mutex.unlock gm)
           ()))
    live;
  Mutex.lock gm;
  while !pending > 0 && Unix.gettimeofday () < deadline do
    Ovsync.Timedwait.wait gm gc ~until:deadline
  done;
  let got = !arrived in
  Mutex.unlock gm;
  let ok, errors =
    List.fold_left
      (fun (ok, errors) m ->
        match List.assoc_opt m.m_name got with
        | Some (Ok v) ->
          with_lock t (fun () -> note_success_locked t m);
          ((m.m_name, v) :: ok, errors)
        | Some (Error e) ->
          with_lock t (fun () -> note_failure_locked t m);
          (ok, Driver.{ se_member = m.m_name; se_error = e } :: errors)
        | None ->
          (* Timed out: the shard gets its slice and no more. *)
          with_lock t (fun () -> note_failure_locked t m);
          ( ok,
            shard_err m.m_name Verror.Operation_failed
              "per-shard deadline slice (%.3fs) exceeded" t.f_shard_slice_s
            :: errors ))
      ([], []) live
  in
  let errors =
    List.fold_left
      (fun errors m ->
        shard_err m.m_name Verror.No_connect "member down (probe circuit open)"
        :: errors)
      errors down
  in
  poke_prober ();
  (List.rev ok, errors, List.length members)

let is_active = function Vmm.Vm_state.Shutoff -> false | _ -> true

(* Merge per-member listings, deduplicating by UUID.  A domain may be
   momentarily defined on two members mid-migration (reserved on the
   destination while still running on the source); the running row wins,
   so nothing is ever double-counted. *)
let merge_records per_member =
  let seen : (string, Driver.domain_record) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (_member, records) ->
      List.iter
        (fun (r : Driver.domain_record) ->
          let key = Uuid.to_string r.Driver.rec_ref.Driver.dom_uuid in
          match Hashtbl.find_opt seen key with
          | None ->
            Hashtbl.replace seen key r;
            order := key :: !order
          | Some prev ->
            if
              is_active r.Driver.rec_info.Driver.di_state
              && not (is_active prev.Driver.rec_info.Driver.di_state)
            then Hashtbl.replace seen key r)
        records)
    per_member;
  List.rev_map (fun key -> Hashtbl.find seen key) !order

let scatter_list t =
  let per_member, errors, members =
    scatter t (fun _m ops -> Driver.list_all ops)
  in
  (* Learn locations and per-member domain counts from what answered. *)
  with_lock t (fun () ->
      List.iter
        (fun (name, records) ->
          (match List.find_opt (fun m -> m.m_name = name) t.f_members with
           | Some m -> m.m_domains <- List.length records
           | None -> ());
          List.iter
            (fun (r : Driver.domain_record) ->
              Hashtbl.replace t.f_locations r.Driver.rec_ref.Driver.dom_name name)
            records)
        per_member);
  Driver.
    {
      fl_records = merge_records per_member;
      fl_shard_errors = errors;
      fl_members = members;
    }

(* Listing through the driver surface: shard errors degrade the reply
   and are counted so partial-failure exit codes surface in the CLI. *)
let listing_counted t =
  let listing = scatter_list t in
  with_lock t (fun () ->
      t.f_sub_errors <-
        t.f_sub_errors + List.length listing.Driver.fl_shard_errors);
  listing

(* ------------------------------------------------------------------ *)
(* Ownership and routing                                               *)
(* ------------------------------------------------------------------ *)

let owner_of t name =
  match
    with_lock t (fun () ->
        match Hashtbl.find_opt t.f_locations name with
        | Some member when List.exists (fun m -> m.m_name = member) t.f_members
          ->
          Some member
        | _ -> None)
  with
  | Some member -> Ok member
  | None -> (
    (* Location unknown: refresh the table with one scatter. *)
    let (_ : Driver.fleet_listing) = scatter_list t in
    match with_lock t (fun () -> Hashtbl.find_opt t.f_locations name) with
    | Some member -> Ok member
    | None ->
      Verror.error Verror.No_domain "no domain with name %S on any member" name)

let routed t name f =
  let* owner = owner_of t name in
  match find_member t owner with
  | None ->
    Verror.error Verror.No_connect "member %s left the fleet" owner
  | Some m ->
    if with_lock t (fun () -> m.m_health = Driver.Mh_down) then
      Verror.error Verror.No_connect
        "domain %S is owned by member %s, which is down" name m.m_name
    else
      let* ops = member_ops t m in
      let r =
        try f m ops
        with Verror.Virt_error e -> Error e
      in
      (match r with
       | Ok _ -> with_lock t (fun () -> note_success_locked t m)
       | Error err ->
         (* The domain genuinely not being there is a stale location, not
            a sick member. *)
         (match err.Verror.code with
          | Verror.No_domain ->
            with_lock t (fun () -> Hashtbl.remove t.f_locations name)
          | _ -> with_lock t (fun () -> note_failure_locked t m)));
      r

(* Define routes by placement: the domain does not exist yet, so its
   UUID (from the XML) decides the member. *)
let fleet_define t xml =
  match Vmm.Domxml.of_xml xml with
  | Error msg -> Verror.error Verror.Invalid_arg "bad domain XML: %s" msg
  | Ok (cfg, _) -> (
    let names = member_names t in
    if names = [] then
      Verror.error Verror.Operation_failed "fleet %s has no members" t.f_name
    else
      let owner = t.f_place cfg.Vmm.Vm_config.uuid names in
      match find_member t owner with
      | None ->
        Verror.error Verror.Internal_error
          "placement chose %S, which is not a member" owner
      | Some m ->
        if with_lock t (fun () -> m.m_health = Driver.Mh_down) then
          Verror.error Verror.No_connect
            "placement owner %s is down; refusing to define elsewhere (a \
             second copy would split-brain on recovery)"
            m.m_name
        else
          let* ops = member_ops t m in
          let* dref = ops.Driver.define_xml xml in
          with_lock t (fun () ->
              note_success_locked t m;
              Hashtbl.replace t.f_locations dref.Driver.dom_name m.m_name);
          Ok dref)

(* ------------------------------------------------------------------ *)
(* Journaled cross-daemon migration                                    *)
(* ------------------------------------------------------------------ *)

(* Journal records: phase-tagged, '\x1f'-separated fields.  The begin
   record carries everything recovery needs (domain, source,
   destination, run state, config XML); later records only advance the
   phase.  Phases, in order:

     begin      -> destination may or may not hold a reservation
     reserved   -> destination holds a defined (stopped) copy
     switchover -> THE COMMIT POINT: roll forward from here
     finished   -> domain runs on the destination; source may linger
     end        -> source released; migration complete
     abort      -> rolled back; source untouched and authoritative

   Crash before [switchover]: roll back (undefine the reservation; the
   source was never stopped).  Crash at/after: roll forward (stop and
   release the source, ensure the destination runs).  Every recovery
   step is idempotent, so recovering a recovery converges too. *)

let sep = '\x1f'

let enc_rec fields = String.concat (String.make 1 sep) fields
let dec_rec record = String.split_on_char sep record

type mig = {
  mutable g_phase : string;
  g_domain : string;
  g_src : string;
  g_dest : string;
  g_running : bool;
  g_xml : string;
}

(* Crash injection seam: called at every journaled boundary with the
   phase just made durable.  The crash-point sweep makes it raise,
   simulating a controller death mid-handshake — the exception escapes
   without running the in-process rollback, exactly as a kill would. *)
let crash_hook : (string -> unit) ref = ref (fun _ -> ())

let phase_rank = function
  | "begin" -> 0
  | "reserved" -> 1
  | "switchover" -> 2
  | "finished" -> 3
  | _ -> 4

(* Replay the journal into the set of unfinished migrations. *)
let unfinished_migrations records =
  let tbl : (string, mig) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun record ->
      match dec_rec record with
      | [ "begin"; domain; src; dest; running; xml ] ->
        Hashtbl.replace tbl domain
          {
            g_phase = "begin";
            g_domain = domain;
            g_src = src;
            g_dest = dest;
            g_running = running = "1";
            g_xml = xml;
          }
      | [ ("reserved" | "switchover" | "finished") as phase; domain ] -> (
        match Hashtbl.find_opt tbl domain with
        | Some g when phase_rank phase > phase_rank g.g_phase ->
          g.g_phase <- phase
        | _ -> ())
      | [ ("end" | "abort"); domain ] -> Hashtbl.remove tbl domain
      | _ -> ())
    records;
  Hashtbl.fold (fun _ g acc -> g :: acc) tbl []

let dom_state ops name =
  match ops.Driver.dom_get_info name with
  | Ok info -> Some info.Driver.di_state
  | Error _ -> None

(* Idempotent recovery primitives: each checks before acting, so a
   half-applied step re-applies cleanly. *)
let ensure_stopped ops name =
  match dom_state ops name with
  | Some s when is_active s -> ignore (ops.Driver.dom_destroy name)
  | _ -> ()

let ensure_running ops name =
  match dom_state ops name with
  | Some Vmm.Vm_state.Shutoff -> ignore (ops.Driver.dom_create name)
  | _ -> ()

let ensure_defined ops name xml =
  match dom_state ops name with
  | None -> ignore (ops.Driver.define_xml xml)
  | Some _ -> ()

let ensure_absent ops name =
  ensure_stopped ops name;
  match dom_state ops name with
  | Some _ -> ignore (ops.Driver.undefine name)
  | None -> ()

let member_ops_by_name t name =
  match find_member t name with
  | None -> Error (Verror.make Verror.No_connect ("member left the fleet: " ^ name))
  | Some m -> member_ops t m

(* Roll one unfinished migration to a safe state.  Pre-switchover the
   source is authoritative: drop any reservation and keep the source as
   it was.  Post-switchover the destination is authoritative: finish
   the handshake.  Either way exactly one member ends up owning the
   domain — the no-lost-domain / no-split-brain invariant. *)
let recover_migration t (g : mig) =
  let src = member_ops_by_name t g.g_src in
  let dest = member_ops_by_name t g.g_dest in
  match (src, dest) with
  | Error _, _ | _, Error _ ->
    (* A member is gone entirely; leave the record for the next
       recovery rather than guess. *)
    ()
  | Ok src, Ok dest ->
    if phase_rank g.g_phase >= phase_rank "switchover" then begin
      (* Roll forward. *)
      ensure_stopped src g.g_domain;
      ensure_absent src g.g_domain;
      ensure_defined dest g.g_domain g.g_xml;
      if g.g_running then ensure_running dest g.g_domain;
      with_lock t (fun () ->
          Hashtbl.replace t.f_locations g.g_domain g.g_dest;
          t.f_migrations_recovered <- t.f_migrations_recovered + 1);
      Journal.append t.f_journal (enc_rec [ "end"; g.g_domain ])
    end
    else begin
      (* Roll back: the reservation (if any) is the only thing to undo.
         The source was never stopped before the switchover record, so
         it is still running if it was. *)
      ensure_absent dest g.g_domain;
      if g.g_running then ensure_running src g.g_domain;
      with_lock t (fun () ->
          Hashtbl.replace t.f_locations g.g_domain g.g_src;
          t.f_migrations_rolled_back <- t.f_migrations_rolled_back + 1);
      Journal.append t.f_journal (enc_rec [ "abort"; g.g_domain ])
    end

let recover t records =
  List.iter (fun g -> recover_migration t g) (unfinished_migrations records)

let fleet_migrate t ~domain ~dest =
  let* src_name = owner_of t domain in
  if src_name = dest then
    Verror.error Verror.Operation_invalid "domain %S is already on member %s"
      domain dest
  else
    let* src = member_ops_by_name t src_name in
    let* dst = member_ops_by_name t dest in
    let* info = src.Driver.dom_get_info domain in
    let* xml = src.Driver.dom_get_xml domain in
    let was_running = is_active info.Driver.di_state in
    with_lock t (fun () ->
        t.f_migrations_active <- t.f_migrations_active + 1);
    let finish_active () =
      with_lock t (fun () ->
          t.f_migrations_active <- t.f_migrations_active - 1)
    in
    let rollback err =
      ensure_absent dst domain;
      if was_running then ensure_running src domain;
      with_lock t (fun () ->
          Hashtbl.replace t.f_locations domain src_name;
          t.f_migrations_rolled_back <- t.f_migrations_rolled_back + 1);
      Journal.append t.f_journal (enc_rec [ "abort"; domain ]);
      finish_active ();
      Error err
    in
    Journal.append t.f_journal
      (enc_rec
         [ "begin"; domain; src_name; dest; (if was_running then "1" else "0");
           xml ]);
    !crash_hook "begin";
    (* Phase 1: reserve on the destination.  The copy travels with the
       reservation — config XML now, the managed-save image model is the
       same "define first, animate later" shape. *)
    match dst.Driver.define_xml xml with
    | Error err -> rollback err
    | Ok _ -> (
      Journal.append t.f_journal (enc_rec [ "reserved"; domain ]);
      !crash_hook "reserved";
      (* Phase 2: switchover.  Writing the record IS the commit point:
         from here recovery rolls forward, so the stop/start below can
         crash anywhere without losing the domain. *)
      Journal.append t.f_journal (enc_rec [ "switchover"; domain ]);
      !crash_hook "switchover";
      ensure_stopped src domain;
      let started =
        if was_running then dst.Driver.dom_create domain else Ok ()
      in
      match started with
      | Error err ->
        (* Past the commit point a destination start failure still rolls
           forward (recovery would): retry via the idempotent path. *)
        ensure_running dst domain;
        (match dom_state dst domain with
         | Some s when is_active s ->
           Journal.append t.f_journal (enc_rec [ "finished"; domain ]);
           !crash_hook "finished";
           ensure_absent src domain;
           !crash_hook "released";
           with_lock t (fun () ->
               Hashtbl.replace t.f_locations domain dest);
           Journal.append t.f_journal (enc_rec [ "end"; domain ]);
           !crash_hook "end";
           finish_active ();
           Events.emit t.f_events ~domain_name:domain Events.Ev_migrated;
           Ok ()
         | _ ->
           finish_active ();
           Error err)
      | Ok () ->
        Journal.append t.f_journal (enc_rec [ "finished"; domain ]);
        !crash_hook "finished";
        (* Release: the source copy is now just a stale definition. *)
        ensure_absent src domain;
        !crash_hook "released";
        with_lock t (fun () -> Hashtbl.replace t.f_locations domain dest);
        Journal.append t.f_journal (enc_rec [ "end"; domain ]);
        !crash_hook "end";
        finish_active ();
        Events.emit t.f_events ~domain_name:domain Events.Ev_migrated;
        Ok ())

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

let status t =
  with_lock t (fun () ->
      Driver.
        {
          fs_fleet = t.f_name;
          fs_members =
            List.map
              (fun m ->
                {
                  ms_name = m.m_name;
                  ms_health = m.m_health;
                  ms_consec_failures = m.m_consec_failures;
                  ms_probes = m.m_probes;
                  ms_failures = m.m_failures;
                  ms_domains = m.m_domains;
                })
              t.f_members;
          fs_migrations_active = t.f_migrations_active;
          fs_migrations_recovered = t.f_migrations_recovered;
          fs_migrations_rolled_back = t.f_migrations_rolled_back;
        })

(* ------------------------------------------------------------------ *)
(* The fleet's driver surface                                          *)
(* ------------------------------------------------------------------ *)

let capabilities t =
  Capabilities.
    {
      driver_name = "fleet";
      virt_kind = "federated";
      stateful = false;
      guest_os_kinds = [];
      features = [ Feat_define; Feat_start; Feat_destroy; Feat_shutdown ];
      host =
        {
          host_name = t.f_name;
          host_memory_kib = 0;
          host_cpus = 0;
          host_mhz = 0;
          host_arch = "fleet";
        };
    }

let fleet_view t =
  Driver.
    {
      fleet_list_all = (fun () -> Ok (listing_counted t));
      fleet_status = (fun () -> Ok (status t));
      fleet_migrate = (fun ~domain ~dest -> fleet_migrate t ~domain ~dest);
      fleet_owner = (fun name -> owner_of t name);
    }

let ops_of t =
  let list_refs pred () =
    let listing = listing_counted t in
    Ok
      (List.filter_map
         (fun (r : Driver.domain_record) ->
           if pred r.Driver.rec_info.Driver.di_state then
             Some r.Driver.rec_ref
           else None)
         listing.Driver.fl_records)
  in
  Driver.make_ops ~drv_name:"fleet"
    ~get_capabilities:(fun () -> capabilities t)
    ~get_hostname:(fun () -> t.f_name)
    ~list_domains:(list_refs is_active)
    ~list_defined:(fun () ->
      let* refs = list_refs (fun s -> not (is_active s)) () in
      Ok (List.map (fun r -> r.Driver.dom_name) refs))
    ~lookup_by_name:(fun name ->
      routed t name (fun _ ops -> ops.Driver.lookup_by_name name))
    ~lookup_by_uuid:(fun uuid ->
      let listing = listing_counted t in
      match
        List.find_opt
          (fun (r : Driver.domain_record) ->
            Uuid.to_string r.Driver.rec_ref.Driver.dom_uuid
            = Uuid.to_string uuid)
          listing.Driver.fl_records
      with
      | Some r -> Ok r.Driver.rec_ref
      | None ->
        Verror.error Verror.No_domain "no domain with uuid %s on any member"
          (Uuid.to_string uuid))
    ~define_xml:(fun xml -> fleet_define t xml)
    ~undefine:(fun name ->
      let* () = routed t name (fun _ ops -> ops.Driver.undefine name) in
      with_lock t (fun () -> Hashtbl.remove t.f_locations name);
      Ok ())
    ~dom_create:(fun name -> routed t name (fun _ ops -> ops.Driver.dom_create name))
    ~dom_suspend:(fun name ->
      routed t name (fun _ ops -> ops.Driver.dom_suspend name))
    ~dom_resume:(fun name -> routed t name (fun _ ops -> ops.Driver.dom_resume name))
    ~dom_shutdown:(fun name ->
      routed t name (fun _ ops -> ops.Driver.dom_shutdown name))
    ~dom_destroy:(fun name ->
      routed t name (fun _ ops -> ops.Driver.dom_destroy name))
    ~dom_get_info:(fun name ->
      routed t name (fun _ ops -> ops.Driver.dom_get_info name))
    ~dom_get_xml:(fun name ->
      routed t name (fun _ ops -> ops.Driver.dom_get_xml name))
    ~dom_set_memory:(fun name kib ->
      routed t name (fun _ ops -> ops.Driver.dom_set_memory name kib))
    ~dom_set_autostart:(fun name flag ->
      routed t name (fun _ ops ->
          match ops.Driver.dom_set_autostart with
          | Some f -> f name flag
          | None -> Driver.unsupported ~drv:"fleet" ~op:"autostart"))
    ~dom_get_autostart:(fun name ->
      routed t name (fun _ ops ->
          match ops.Driver.dom_get_autostart with
          | Some f -> f name
          | None -> Driver.unsupported ~drv:"fleet" ~op:"autostart"))
    ~dom_list_all:(fun () ->
      Ok (listing_counted t).Driver.fl_records)
    ~fleet:(fleet_view t) ~events:t.f_events ()

(* ------------------------------------------------------------------ *)
(* Stats for direct fleet:// connections                               *)
(* ------------------------------------------------------------------ *)

type stats = { st_sub_errors : int }

(* The CLI's partial-failure accounting: a fleet connection is matched
   by its event bus (the one physical token every ops built from this
   fleet shares), mirroring the remote driver's [conn_stats]. *)
let conn_stats (ops : Driver.ops) =
  with_fleets (fun () ->
      Hashtbl.fold
        (fun _ t acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if t.f_events == ops.Driver.events then
              Some { st_sub_errors = with_lock t (fun () -> t.f_sub_errors) }
            else None)
        fleets None)

(* ------------------------------------------------------------------ *)
(* Fleet lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let journal_dir = "/var/lib/ovirt/fleet/"

(* Probe endpoint for a member URI: the daemon's management socket, by
   the same naming rule the remote driver uses. *)
let probe_endpoint uri_string =
  match Vuri.parse uri_string with
  | Error _ -> ("ovirtd-sock", Ovnet.Transport.Unix_sock)
  | Ok uri ->
    let daemon = Option.value (Vuri.param uri "daemon") ~default:"ovirtd" in
    let kind =
      match uri.Vuri.transport with
      | Some "tcp" -> Ovnet.Transport.Tcp
      | Some "tls" -> Ovnet.Transport.Tls
      | Some _ | None -> Ovnet.Transport.Unix_sock
    in
    (daemon ^ "-sock", kind)

let make_member t ~name ~uri =
  let address, kind = probe_endpoint uri in
  {
    m_name = name;
    m_uri = uri;
    m_probe_address = address;
    m_probe_kind = kind;
    m_ops = None;
    m_health = Driver.Mh_up;
    m_consec_failures = 0;
    m_consec_successes = 0;
    m_probes = 0;
    m_failures = 0;
    m_domains = -1;
    m_next_probe = Unix.gettimeofday () +. t.f_probe_interval_s;
    m_backoff_s = t.f_probe_interval_s;
  }

let add_member t ~name ~uri =
  with_lock t (fun () ->
      if List.exists (fun m -> m.m_name = name) t.f_members then
        Verror.error Verror.Dup_name "member %S already in fleet %s" name
          t.f_name
      else begin
        t.f_members <- t.f_members @ [ make_member t ~name ~uri ];
        Ok ()
      end)
  |> fun r ->
  poke_prober ();
  r

let remove_member t name =
  with_lock t (fun () ->
      t.f_members <- List.filter (fun m -> m.m_name <> name) t.f_members;
      Hashtbl.iter
        (fun dom owner -> if owner = name then Hashtbl.remove t.f_locations dom)
        (Hashtbl.copy t.f_locations))

let find name = with_fleets (fun () -> Hashtbl.find_opt fleets name)

let install_status_hook () =
  Driver.set_fleet_status_hook (fun () ->
      let all =
        with_fleets (fun () -> Hashtbl.fold (fun _ t acc -> t :: acc) fleets [])
      in
      List.map status
        (List.sort (fun a b -> compare a.f_name b.f_name) all))

(* Create (or re-create) a fleet.  Re-creating under the same name
   models a controller restart: the new instance replays the journal
   and converges every migration the old one left mid-flight, then
   replaces the old instance in the registry (latest wins). *)
let create ~name ?(members = []) ?place ?(shard_slice_s = 1.0)
    ?(probe_interval_s = 0.5) ?(probe_timeout_s = 0.25) ?(down_threshold = 3)
    () =
  let journal, replay = Journal.open_ (journal_dir ^ name ^ ".journal") in
  let t =
    {
      f_name = name;
      f_mutex = Mutex.create ();
      f_members = [];
      f_place = Option.value place ~default:consistent_hash_place;
      f_shard_slice_s = shard_slice_s;
      f_probe_interval_s = probe_interval_s;
      f_probe_timeout_s = probe_timeout_s;
      f_down_threshold = down_threshold;
      f_locations = Hashtbl.create 64;
      f_events = Events.create_bus ();
      f_journal = journal;
      f_sub_errors = 0;
      f_migrations_active = 0;
      f_migrations_recovered = 0;
      f_migrations_rolled_back = 0;
    }
  in
  List.iter
    (fun (mname, uri) ->
      t.f_members <- t.f_members @ [ make_member t ~name:mname ~uri ])
    members;
  recover t replay.Journal.rp_records;
  with_fleets (fun () ->
      Hashtbl.replace fleets name t;
      Condition.broadcast prober_cond);
  install_status_hook ();
  ensure_prober ();
  t

let name t = t.f_name

let dissolve name =
  with_fleets (fun () -> Hashtbl.remove fleets name)

(* ------------------------------------------------------------------ *)
(* Driver registration                                                 *)
(* ------------------------------------------------------------------ *)

let fleet_of_uri uri =
  match uri.Vuri.host with
  | Some host when host <> "" -> host
  | _ -> (
    match uri.Vuri.path with
    | "" | "/" -> ""
    | path -> String.sub path 1 (String.length path - 1))

(* fleet:///NAME opens the named in-process fleet.  Through a daemon the
   client says fleet+unix:///NAME?daemon=X: the remote driver forwards
   it, the daemon strips the transport and lands back here — the
   controller is just a daemon whose driver happens to federate. *)
let register () =
  Driver.register
    {
      Driver.reg_name = "fleet";
      probe =
        (fun uri -> uri.Vuri.scheme = "fleet" && uri.Vuri.transport = None);
      open_conn =
        (fun uri ->
          let fname = fleet_of_uri uri in
          match find fname with
          | Some t -> Ok (ops_of t)
          | None ->
            Verror.error Verror.No_connect "no fleet named %S in this process"
              fname);
    }
