(** Federated control plane: a health-checked shard fleet behind the
    ordinary driver surface.

    A fleet is a named, process-global registry of member daemons.
    Reads scatter-gather across every live member with a per-shard
    slice of the request deadline; a failed or timed-out shard
    contributes a structured {!Ovirt_core.Driver.shard_error} marker
    instead of failing the whole reply.  Writes route to exactly one
    member — by consistent-hash placement for new domains, by a learned
    location table afterwards.  Cross-daemon migration is a journaled
    two-phase handshake (reserve → switchover → release) that rolls
    back to a running source on any crash before the switchover record
    and rolls forward after it. *)

open Ovirt_core

type t

val create :
  name:string ->
  ?members:(string * string) list ->
  ?place:(Vmm.Uuid.t -> string list -> string) ->
  ?shard_slice_s:float ->
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?down_threshold:int ->
  unit ->
  t
(** Create (or re-create) the fleet [name] with [members] given as
    [(member name, driver URI)] pairs.  Opens the migration journal at
    [/var/lib/ovirt/fleet/<name>.journal] (a {!Persist.Media} path) and
    replays it, converging any migration a previous controller
    incarnation left mid-flight — re-creating under the same name IS
    the controller-restart recovery path.  Registers the fleet in the
    process-global table (latest wins) and spawns the shared prober
    thread if it is not already running.

    [shard_slice_s] bounds each shard's share of a scatter (default
    1s); [probe_interval_s]/[probe_timeout_s] drive the keepalive
    prober; [down_threshold] consecutive failures open a member's
    breaker.  [place] overrides consistent-hash placement. *)

val name : t -> string

val find : string -> t option
(** Look up a fleet in the process-global registry. *)

val dissolve : string -> unit
(** Drop the fleet from the registry.  Open connections built from it
    keep working; the prober stops watching its members. *)

val add_member : t -> name:string -> uri:string -> (unit, Verror.t) result
(** [Dup_name] if a member with that name already exists. *)

val remove_member : t -> string -> unit
(** Also forgets every domain location owned by the member. *)

val consistent_hash_place : Vmm.Uuid.t -> string list -> string
(** Default placement: 64 virtual nodes per member on a hash ring;
    adding or removing a member only moves the keys adjacent to its
    points.  @raise Invalid_argument on an empty member list. *)

val status : t -> Driver.fleet_status
(** Member health, probe/failure counters, last known domain counts and
    migration totals, as seen by the controller right now. *)

val probe_now : t -> unit
(** Synchronously probe every member once, off-schedule.  The shared
    prober thread does this on its own clock; tests call it to advance
    the health state machine deterministically. *)

val prober_thread_count : unit -> int
(** Number of prober threads ever spawned in this process — by design
    at most 1, shared by every fleet (the satellite invariant). *)

val ops_of : t -> Driver.ops
(** The fleet as an ordinary driver connection: listings
    scatter-gather, mutations route by placement, [ops.fleet] carries
    the federation view ({!Ovirt_core.Driver.fleet_view}). *)

val fleet_migrate :
  t -> domain:string -> dest:string -> (unit, Verror.t) result
(** Journaled two-phase migration of [domain] to member [dest].  Any
    failure or crash before the switchover journal record rolls back to
    a running source; after it, recovery rolls forward to the
    destination.  [Operation_invalid] if the domain is already there. *)

val crash_hook : (string -> unit) ref
(** Crash-injection seam for the migration sweep: called with the phase
    label ("begin" | "reserved" | "switchover" | "finished" |
    "released" | "end") immediately after each journal append.  Raising
    from it aborts the handshake without rollback, exactly like a
    controller kill at that boundary. *)

type stats = { st_sub_errors : int }

val conn_stats : Driver.ops -> stats option
(** Cumulative shard errors surfaced through a fleet connection's
    listings, or [None] if [ops] is not a fleet connection.  Feeds the
    CLI's partial-failure exit code, mirroring the remote driver's
    [conn_stats]. *)

val register : unit -> unit
(** Register the [fleet://] scheme with the driver registry:
    [fleet:///NAME] (no transport) opens the named in-process fleet.
    [fleet+unix:///NAME] is NOT matched here — the transport sends it
    through the remote driver to a daemon, which strips the transport
    and lands back on this driver controller-side. *)
