(** Declarative desired-state reconciliation.

    The engine holds one declared {!Ovirt_core.Dompolicy.t} per
    (uri, domain) and converges actual run-state toward it: each pass
    diffs spec against actual, journals the resulting plan through
    {!Persist.Journal} {e before} applying it, applies ops bounded by
    the [parallel_shutdown] semaphore, and checkpoints per-op — so a
    daemon kill at any point resumes the plan on restart with
    exactly-once side effects (a postcondition precheck skips ops whose
    effect landed before the crash cut the checkpoint off).

    Domains that refuse to converge are marked diverged and retried
    under per-domain exponential backoff; they never wedge the loop for
    the rest of the fleet. *)

open Ovirt_core

(** {1 Operations} *)

type op_kind = Op_start | Op_resume | Op_shutdown | Op_save

type op = { op_uri : string; op_name : string; op_kind : op_kind }

val op_kind_name : op_kind -> string

val op_satisfied : op_kind -> Vmm.Vm_state.state option -> bool
(** Does the op's postcondition already hold?  ([None] = undefined.) *)

(** {1 IO surface}

    The engine never touches a driver directly; the daemon supplies
    listing (drvnode registry) and application (batch dispatch under a
    reqctx deadline); tests supply stubs. *)

type io = {
  io_actual :
    string -> ((string * Vmm.Vm_state.state) list, Verror.t) result;
  io_state :
    string -> string -> (Vmm.Vm_state.state option, Verror.t) result;
  io_apply : string -> op -> (unit, Verror.t) result;
  io_log : string -> unit;
}

type config = {
  rcfg_interval_s : float;  (** convergence loop period *)
  rcfg_parallel : int;  (** parallel_shutdown: concurrent op bound *)
  rcfg_diverged_after : int;  (** failed attempts before Diverged *)
  rcfg_backoff_base_s : float;
  rcfg_backoff_cap_s : float;
  rcfg_compact_factor : int;  (** journal compaction: factor·live+slack *)
  rcfg_compact_slack : int;
}

val default_config : config

(** {1 Status} *)

type status = St_converged | St_pending | St_diverged

val status_name : status -> string

type dom_status = {
  ds_uri : string;
  ds_name : string;
  ds_policy : Dompolicy.t;
  ds_status : status;
  ds_attempts : int;
  ds_retry_in_s : float;  (** 0. when no retry is scheduled *)
  ds_last_error : string;  (** "" when none *)
}

type summary = {
  sum_specs : int;
  sum_converged : int;
  sum_pending : int;
  sum_diverged : int;
  sum_plans : int;
  sum_ops_applied : int;  (** side effects actually performed *)
  sum_ops_skipped : int;  (** postcondition already held *)
  sum_ops_failed : int;
  sum_resumed : bool;  (** this incarnation resumed a journaled plan *)
}

(** {1 Engine} *)

type t

val create : journal_path:string -> io:io -> config:config -> unit -> t
(** Attach the plan journal at [journal_path] (a {!Persist.Media}
    path), replaying declared specs, attempt counters, and any plan a
    dead incarnation left pending. *)

val set_policy : t -> uri:string -> name:string -> Dompolicy.t -> unit
val get_policy : t -> uri:string -> name:string -> Dompolicy.t
(** {!Dompolicy.default} when the domain has no declared policy. *)

val clear_policy : t -> uri:string -> name:string -> unit

val converge_now : t -> summary
(** One synchronous pass: resume any interrupted plan, then diff, plan,
    journal, apply.  The loop thread calls this; tests and benchmarks
    drive it directly for determinism. *)

val shutdown_pass : t -> unit
(** Apply [on_shutdown] to every running spec'd guest (daemon drain),
    bounded by [parallel_shutdown].  A crash mid-pass does {e not}
    replay shutdowns at next boot: drain plans are abandoned on
    restart, boot semantics take over. *)

val status : t -> summary * dom_status list
val kick : t -> unit
(** Wake the loop for an immediate pass (policy just changed). *)

val journal_records : t -> int

val start : t -> unit
(** Spawn the periodic convergence thread. *)

val stop : t -> unit
(** Stop and join the thread (idempotent). *)

val crash_hook : (string -> unit) ref
(** Chaos-test hook, called at sites ["plan_journaled"], ["pre_apply"],
    ["post_apply"], ["post_checkpoint"]; raising aborts the pass
    exactly as a daemon kill would. *)
