(* Declarative desired-state reconciliation.

   The engine holds one declared {!Dompolicy.t} per (uri, domain) and a
   convergence loop that diffs spec against actual run-state, plans the
   minimal set of lifecycle operations, and applies them under a
   [parallel_shutdown] concurrency bound.  Every plan is journaled
   through {!Persist.Journal} *before* application and checkpointed
   per-op, so a daemon kill at any point resumes (or safely skips) the
   plan on restart: the invariant is "spec eventually holds despite
   kills at any point", with exactly-once side effects guaranteed by a
   per-op precondition check on resume.

   Journal record formats (tag byte + length-prefixed fields):
     'P' uri name b s r      policy declared (b/s/r = Dompolicy codes)
     'X' uri name            policy cleared
     'B' id kind n op*       plan begin, ops = (uri, name, op_kind)*
     'C' id idx ok applied   per-op checkpoint (applied=1: side effect ran)
     'E' id                  plan complete
     'F' uri name n          divergence attempt counter (n=0 resets)

   A 'B' without its 'E' is a plan interrupted by a crash.  Convergence
   plans are resumed op-by-op (skipping checkpointed ops and ops whose
   postcondition already holds — the kill-between-apply-and-checkpoint
   window).  Drain plans (kind=1, the on_shutdown pass) are abandoned on
   replay instead: after a restart the boot semantics take over, and
   finishing a half-done shutdown sweep would fight them. *)

open Ovirt_core
module Journal = Persist.Journal

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

type op_kind = Op_start | Op_resume | Op_shutdown | Op_save

type op = { op_uri : string; op_name : string; op_kind : op_kind }

let op_kind_name = function
  | Op_start -> "start"
  | Op_resume -> "resume"
  | Op_shutdown -> "shutdown"
  | Op_save -> "save"

let op_kind_to_int = function
  | Op_start -> 0
  | Op_resume -> 1
  | Op_shutdown -> 2
  | Op_save -> 3

let op_kind_of_int = function
  | 0 -> Some Op_start
  | 1 -> Some Op_resume
  | 2 -> Some Op_shutdown
  | 3 -> Some Op_save
  | _ -> None

(* The postcondition the op establishes.  Checked before applying — on
   plan resume this is what makes re-application safe: if the crash fell
   between the side effect and its checkpoint, the state already holds
   and the op is skipped, never duplicated. *)
let op_satisfied kind (state : Vmm.Vm_state.state option) =
  match kind, state with
  | Op_start, Some s -> Vmm.Vm_state.is_active s
  | Op_start, None -> false
  | Op_resume, Some (Running | Blocked) -> true
  | Op_resume, _ -> false
  | Op_shutdown, Some s -> not (Vmm.Vm_state.is_active s)
  | Op_shutdown, None -> true
  | Op_save, Some Running -> false
  | Op_save, _ -> true

(* ------------------------------------------------------------------ *)
(* IO surface                                                          *)
(* ------------------------------------------------------------------ *)

(* The engine never touches a driver directly; the daemon supplies the
   IO surface (listing via the drvnode registry, application through
   the batch-proc dispatch path under a reqctx deadline budget).  Tests
   supply stubs. *)
type io = {
  io_actual :
    string -> ((string * Vmm.Vm_state.state) list, Verror.t) result;
      (** all domains and their states on [uri] *)
  io_state :
    string -> string -> (Vmm.Vm_state.state option, Verror.t) result;
      (** one domain's state; [Ok None] when undefined *)
  io_apply : string -> op -> (unit, Verror.t) result;
      (** apply one lifecycle op (daemon: through the batch dispatch
          path, bounded by a per-op deadline) *)
  io_log : string -> unit;
}

type config = {
  rcfg_interval_s : float;
  rcfg_parallel : int;  (** parallel_shutdown: concurrent op bound *)
  rcfg_diverged_after : int;  (** failed attempts before Diverged *)
  rcfg_backoff_base_s : float;
  rcfg_backoff_cap_s : float;
  rcfg_compact_factor : int;  (** journal compaction: factor·|specs|+slack *)
  rcfg_compact_slack : int;
}

let default_config =
  {
    rcfg_interval_s = 2.0;
    rcfg_parallel = 4;
    rcfg_diverged_after = 3;
    rcfg_backoff_base_s = 0.25;
    rcfg_backoff_cap_s = 30.0;
    rcfg_compact_factor = 4;
    rcfg_compact_slack = 16;
  }

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

type status = St_converged | St_pending | St_diverged

let status_name = function
  | St_converged -> "converged"
  | St_pending -> "pending"
  | St_diverged -> "diverged"

type dom_status = {
  ds_uri : string;
  ds_name : string;
  ds_policy : Dompolicy.t;
  ds_status : status;
  ds_attempts : int;
  ds_retry_in_s : float;  (** 0. when no retry is scheduled *)
  ds_last_error : string;  (** "" when none *)
}

type summary = {
  sum_specs : int;
  sum_converged : int;
  sum_pending : int;
  sum_diverged : int;
  sum_plans : int;  (** plans journaled by this incarnation *)
  sum_ops_applied : int;  (** side effects actually performed *)
  sum_ops_skipped : int;  (** postcondition already held *)
  sum_ops_failed : int;
  sum_resumed : bool;  (** this incarnation resumed a journaled plan *)
}

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type attempt = {
  mutable at_count : int;
  mutable at_next : float;  (** absolute; 0. = retry immediately *)
  mutable at_err : string;
}

type plan_kind = Pk_converge | Pk_drain

type plan = {
  pl_id : int;
  pl_kind : plan_kind;
  pl_ops : op array;
  pl_done : bool array;
}

type t = {
  io : io;
  cfg : config;
  j : Journal.t;
  m : Mutex.t;
  specs : (string * string, Dompolicy.t) Hashtbl.t;
  attempts : (string * string, attempt) Hashtbl.t;
  unconverged : (string * string, unit) Hashtbl.t;
      (* keys that had a planned op or failure at the last pass *)
  mutable pending : plan option;
  mutable next_id : int;
  mutable booted : bool;  (* on_boot pass done this incarnation *)
  mutable stopping : bool;
  mutable kicked : bool;
  mutable thread : Thread.t option;
  mutable plans : int;
  mutable ops_applied : int;
  mutable ops_skipped : int;
  mutable ops_failed : int;
  mutable resumed : bool;
}

(* Crash-injection hook for the chaos sweeps: called at the named sites;
   raising aborts the pass exactly as a daemon kill would (journal and
   hypervisor state left as they are). *)
let crash_hook : (string -> unit) ref = ref (fun _ -> ())

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)
(* ------------------------------------------------------------------ *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

(* Decoders return [None] on any malformed field: a record that does
   not parse is skipped, the Domstore forward-compatibility rule. *)
let get_u32 s pos =
  if !pos + 4 > String.length s then None
  else begin
    let v =
      (Char.code s.[!pos] lsl 24)
      lor (Char.code s.[!pos + 1] lsl 16)
      lor (Char.code s.[!pos + 2] lsl 8)
      lor Char.code s.[!pos + 3]
    in
    pos := !pos + 4;
    Some v
  end

let get_str s pos =
  match get_u32 s pos with
  | None -> None
  | Some len ->
    if !pos + len > String.length s then None
    else begin
      let v = String.sub s !pos len in
      pos := !pos + len;
      Some v
    end

let get_byte s pos =
  if !pos >= String.length s then None
  else begin
    let v = Char.code s.[!pos] in
    incr pos;
    Some v
  end

let enc_policy uri name (p : Dompolicy.t) =
  let b, s, r = Dompolicy.to_ints p in
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'P';
  put_str buf uri;
  put_str buf name;
  Buffer.add_char buf (Char.chr b);
  Buffer.add_char buf (Char.chr s);
  Buffer.add_char buf (Char.chr r);
  Buffer.contents buf

let enc_clear uri name =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'X';
  put_str buf uri;
  put_str buf name;
  Buffer.contents buf

let enc_plan_begin id kind ops =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'B';
  put_u32 buf id;
  Buffer.add_char buf (match kind with Pk_converge -> '\000' | Pk_drain -> '\001');
  put_u32 buf (Array.length ops);
  Array.iter
    (fun o ->
      put_str buf o.op_uri;
      put_str buf o.op_name;
      Buffer.add_char buf (Char.chr (op_kind_to_int o.op_kind)))
    ops;
  Buffer.contents buf

let enc_checkpoint id idx ~ok ~applied =
  let buf = Buffer.create 16 in
  Buffer.add_char buf 'C';
  put_u32 buf id;
  put_u32 buf idx;
  Buffer.add_char buf (if ok then '\001' else '\000');
  Buffer.add_char buf (if applied then '\001' else '\000');
  Buffer.contents buf

let enc_plan_end id =
  let buf = Buffer.create 8 in
  Buffer.add_char buf 'E';
  put_u32 buf id;
  Buffer.contents buf

let enc_attempts uri name n =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'F';
  put_str buf uri;
  put_str buf name;
  put_u32 buf n;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

(* Same finalizer family as the journal checksum; the jitter must be a
   pure function of (key, attempt) so replayed backoff state matches
   what the dead incarnation had. *)
let mix x =
  let x = x + 0x9e3779b9 in
  let x = (x lxor (x lsr 30)) * 0x4f6cdd1d in
  let x = (x lxor (x lsr 27)) * 0x2545f491 in
  (x lxor (x lsr 31)) land max_int

let backoff_delay cfg (uri, name) n =
  let base = cfg.rcfg_backoff_base_s *. (2. ** float_of_int (min 16 (n - 1))) in
  let capped = Float.min cfg.rcfg_backoff_cap_s base in
  let h = mix (Hashtbl.hash (uri, name, n)) in
  (* +/- 12.5% deterministic jitter, desynchronizing retry herds *)
  capped *. (1.0 +. ((float_of_int (h mod 256) /. 256.0) -. 0.5) /. 4.0)

(* ------------------------------------------------------------------ *)
(* Journal maintenance (call with the lock held)                       *)
(* ------------------------------------------------------------------ *)

let snapshot_locked t =
  let acc = ref [] in
  Hashtbl.iter (fun (uri, name) p -> acc := enc_policy uri name p :: !acc) t.specs;
  Hashtbl.iter
    (fun (uri, name) a ->
      if a.at_count > 0 then acc := enc_attempts uri name a.at_count :: !acc)
    t.attempts;
  !acc

(* Live set = one 'P' per spec plus the nonzero attempt counters.  A
   pending plan pins the journal: its 'B'/'C' records must survive a
   crash, so compaction waits for the 'E'. *)
let maybe_compact_locked t =
  if t.pending = None then begin
    let live = Hashtbl.length t.specs + Hashtbl.length t.attempts in
    if
      Journal.record_count t.j
      > (t.cfg.rcfg_compact_factor * live) + t.cfg.rcfg_compact_slack
    then Journal.rewrite t.j (snapshot_locked t)
  end

let bump_attempts_locked t key err =
  let a =
    match Hashtbl.find_opt t.attempts key with
    | Some a -> a
    | None ->
      let a = { at_count = 0; at_next = 0.; at_err = "" } in
      Hashtbl.replace t.attempts key a;
      a
  in
  a.at_count <- a.at_count + 1;
  a.at_next <- Unix.gettimeofday () +. backoff_delay t.cfg key a.at_count;
  a.at_err <- err;
  let uri, name = key in
  Journal.append t.j (enc_attempts uri name a.at_count)

let reset_attempts_locked t key =
  if Hashtbl.mem t.attempts key then begin
    Hashtbl.remove t.attempts key;
    let uri, name = key in
    Journal.append t.j (enc_attempts uri name 0)
  end

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_record t now payload =
  if String.length payload = 0 then ()
  else
    let pos = ref 1 in
    match payload.[0] with
    | 'P' ->
      (match get_str payload pos, get_str payload pos with
       | Some uri, Some name ->
         (match get_byte payload pos, get_byte payload pos, get_byte payload pos with
          | Some b, Some s, Some r ->
            (match Dompolicy.of_ints (b, s, r) with
             | Ok p -> Hashtbl.replace t.specs (uri, name) p
             | Error _ -> ())
          | _ -> ())
       | _ -> ())
    | 'X' ->
      (match get_str payload pos, get_str payload pos with
       | Some uri, Some name ->
         Hashtbl.remove t.specs (uri, name);
         Hashtbl.remove t.attempts (uri, name)
       | _ -> ())
    | 'F' ->
      (match get_str payload pos, get_str payload pos with
       | Some uri, Some name ->
         (match get_u32 payload pos with
          | Some 0 | None -> Hashtbl.remove t.attempts (uri, name)
          | Some n ->
            Hashtbl.replace t.attempts (uri, name)
              {
                at_count = n;
                at_next = now +. backoff_delay t.cfg (uri, name) n;
                at_err = "restored from journal";
              })
       | _ -> ())
    | 'B' ->
      (match get_u32 payload pos, get_byte payload pos, get_u32 payload pos with
       | Some id, Some kind, Some n when n <= 1_000_000 ->
         let ops = ref [] in
         let broken = ref false in
         for _ = 1 to n do
           match get_str payload pos, get_str payload pos, get_byte payload pos with
           | Some uri, Some name, Some k ->
             (match op_kind_of_int k with
              | Some op_kind ->
                ops := { op_uri = uri; op_name = name; op_kind } :: !ops
              | None -> broken := true)
           | _ -> broken := true
         done;
         if not !broken then begin
           let pl_ops = Array.of_list (List.rev !ops) in
           let pl_kind = if kind = 1 then Pk_drain else Pk_converge in
           t.pending <-
             Some
               {
                 pl_id = id;
                 pl_kind;
                 pl_ops;
                 pl_done = Array.make (Array.length pl_ops) false;
               };
           if id >= t.next_id then t.next_id <- id + 1
         end
       | _ -> ())
    | 'C' ->
      (match get_u32 payload pos, get_u32 payload pos with
       | Some id, Some idx ->
         (match t.pending with
          | Some pl when pl.pl_id = id && idx < Array.length pl.pl_done ->
            pl.pl_done.(idx) <- true
          | _ -> ())
       | _ -> ())
    | 'E' ->
      (match get_u32 payload pos with
       | Some id ->
         (match t.pending with
          | Some pl when pl.pl_id = id -> t.pending <- None
          | _ -> ())
       | None -> ())
    | _ -> ()  (* unknown tag: a newer build's record, skip *)

(* ------------------------------------------------------------------ *)
(* Plan application                                                    *)
(* ------------------------------------------------------------------ *)

(* Counting semaphore bounding concurrent lifecycle applications — the
   [parallel_shutdown] knob. *)
module Sem = struct
  type s = { sm : Mutex.t; sc : Condition.t; mutable avail : int }

  let make n = { sm = Mutex.create (); sc = Condition.create (); avail = max 1 n }

  let acquire s =
    Mutex.lock s.sm;
    while s.avail = 0 do
      Condition.wait s.sc s.sm
    done;
    s.avail <- s.avail - 1;
    Mutex.unlock s.sm

  let release s =
    Mutex.lock s.sm;
    s.avail <- s.avail + 1;
    Condition.signal s.sc;
    Mutex.unlock s.sm
end

(* Apply one op of [pl]: postcondition precheck (the exactly-once
   guard), side effect, checkpoint, attempt accounting.  Any exception
   (notably an injected crash) propagates — the checkpoint simply never
   happens, which is the crash being modelled. *)
let apply_one t pl idx =
  let o = pl.pl_ops.(idx) in
  let key = (o.op_uri, o.op_name) in
  !crash_hook "pre_apply";
  let already =
    match t.io.io_state o.op_uri o.op_name with
    | Ok st -> op_satisfied o.op_kind st
    | Error _ -> false
  in
  if already then begin
    with_lock t (fun () ->
        Journal.append t.j (enc_checkpoint pl.pl_id idx ~ok:true ~applied:false);
        pl.pl_done.(idx) <- true;
        t.ops_skipped <- t.ops_skipped + 1;
        reset_attempts_locked t key)
  end
  else begin
    let result = t.io.io_apply o.op_uri o in
    !crash_hook "post_apply";
    match result with
    | Ok () ->
      with_lock t (fun () ->
          Journal.append t.j (enc_checkpoint pl.pl_id idx ~ok:true ~applied:true);
          pl.pl_done.(idx) <- true;
          t.ops_applied <- t.ops_applied + 1;
          reset_attempts_locked t key)
    | Error e ->
      t.io.io_log
        (Printf.sprintf "reconcile: %s %s on %s failed: %s"
           (op_kind_name o.op_kind) o.op_name o.op_uri (Verror.to_string e));
      with_lock t (fun () ->
          Journal.append t.j (enc_checkpoint pl.pl_id idx ~ok:false ~applied:false);
          pl.pl_done.(idx) <- true;
          t.ops_failed <- t.ops_failed + 1;
          bump_attempts_locked t key (Verror.to_string e))
  end;
  !crash_hook "post_checkpoint"

(* Run every not-yet-checkpointed op of [pl], bounded by the semaphore.
   Single-threaded when the bound is 1 (the deterministic mode the
   crash sweeps rely on); otherwise a small worker pool drains a shared
   index queue.  The first exception aborts the pool and is re-raised:
   the plan stays pending in the journal, exactly as a kill would leave
   it. *)
let run_plan t pl =
  let todo =
    Array.to_list (Array.mapi (fun i _ -> i) pl.pl_ops)
    |> List.filter (fun i -> not pl.pl_done.(i))
  in
  let parallel = max 1 t.cfg.rcfg_parallel in
  if parallel = 1 || List.length todo <= 1 then
    List.iter (fun idx -> apply_one t pl idx) todo
  else begin
    let sem = Sem.make parallel in
    let qm = Mutex.create () in
    let queue = ref todo in
    let failure = ref None in
    let next () =
      Mutex.lock qm;
      let item =
        match !queue, !failure with
        | _, Some _ | [], _ -> None
        | idx :: rest, None ->
          queue := rest;
          Some idx
      in
      Mutex.unlock qm;
      item
    in
    let worker () =
      let rec loop () =
        match next () with
        | None -> ()
        | Some idx ->
          Sem.acquire sem;
          (try
             Fun.protect ~finally:(fun () -> Sem.release sem) (fun () ->
                 apply_one t pl idx)
           with exn ->
             Mutex.lock qm;
             if !failure = None then failure := Some exn;
             Mutex.unlock qm);
          loop ()
      in
      loop ()
    in
    let n = min parallel (List.length todo) in
    let threads = List.init n (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    match !failure with Some exn -> raise exn | None -> ()
  end

let finish_plan t pl =
  with_lock t (fun () ->
      Journal.append t.j (enc_plan_end pl.pl_id);
      t.pending <- None;
      maybe_compact_locked t)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

(* One pass of the diff: what op, if any, does [key] need right now?
   [boot] selects the on_boot semantics of the first pass after (re)start. *)
let plan_op ~boot (p : Dompolicy.t) (state : Vmm.Vm_state.state option) =
  let want_running =
    p.run_state = Dompolicy.Rs_running
    || (boot && p.on_boot = Dompolicy.Boot_start && p.run_state <> Dompolicy.Rs_stopped)
  in
  if want_running then
    match state with
    | Some (Running | Blocked) -> None
    | Some Paused -> Some Op_resume
    | Some (Shutdown | Shutoff | Crashed) | None -> Some Op_start
  else if p.run_state = Dompolicy.Rs_stopped then
    match state with
    | Some s when Vmm.Vm_state.is_active s -> Some Op_shutdown
    | _ -> None
  else None

let build_plan_locked t ~now ~boot =
  (* group spec'd uris, fetch each node's actual state once *)
  let uris = Hashtbl.create 7 in
  Hashtbl.iter (fun (uri, _) _ -> Hashtbl.replace uris uri ()) t.specs;
  let actual = Hashtbl.create 7 in
  Hashtbl.iter
    (fun uri () ->
      match t.io.io_actual uri with
      | Ok l -> Hashtbl.replace actual uri l
      | Error e ->
        t.io.io_log
          (Printf.sprintf "reconcile: listing %s failed: %s" uri
             (Verror.to_string e)))
    uris;
  Hashtbl.reset t.unconverged;
  let ops = ref [] in
  Hashtbl.iter
    (fun (uri, name) p ->
      match Hashtbl.find_opt actual uri with
      | None -> Hashtbl.replace t.unconverged (uri, name) ()  (* node listing failed *)
      | Some listing ->
        let in_backoff =
          match Hashtbl.find_opt t.attempts (uri, name) with
          | Some a -> a.at_next > now
          | None -> false
        in
        let state = List.assoc_opt name listing in
        (match plan_op ~boot p state with
         | None -> ()
         | Some kind ->
           Hashtbl.replace t.unconverged (uri, name) ();
           if not in_backoff then
             ops := { op_uri = uri; op_name = name; op_kind = kind } :: !ops))
    t.specs;
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* Convergence pass                                                    *)
(* ------------------------------------------------------------------ *)

let summary_locked t =
  let converged = ref 0 and pending = ref 0 and diverged = ref 0 in
  Hashtbl.iter
    (fun key _ ->
      let att =
        match Hashtbl.find_opt t.attempts key with Some a -> a.at_count | None -> 0
      in
      if att >= t.cfg.rcfg_diverged_after then incr diverged
      else if att > 0 || Hashtbl.mem t.unconverged key then incr pending
      else incr converged)
    t.specs;
  {
    sum_specs = Hashtbl.length t.specs;
    sum_converged = !converged;
    sum_pending = !pending;
    sum_diverged = !diverged;
    sum_plans = t.plans;
    sum_ops_applied = t.ops_applied;
    sum_ops_skipped = t.ops_skipped;
    sum_ops_failed = t.ops_failed;
    sum_resumed = t.resumed;
  }

let converge_now t =
  (* 1. a plan interrupted by a crash is finished first *)
  let resume =
    with_lock t (fun () ->
        match t.pending with
        | Some pl when pl.pl_kind = Pk_drain ->
          (* half-done drain sweep: moot after restart, abandon it *)
          Journal.append t.j (enc_plan_end pl.pl_id);
          t.pending <- None;
          None
        | other -> other)
  in
  (match resume with
   | Some pl ->
     t.io.io_log
       (Printf.sprintf "reconcile: resuming interrupted plan %d (%d ops)"
          pl.pl_id (Array.length pl.pl_ops));
     t.resumed <- true;
     run_plan t pl;
     finish_plan t pl
   | None -> ());
  (* 2. diff and apply *)
  let now = Unix.gettimeofday () in
  let boot = not t.booted in
  let plan =
    with_lock t (fun () ->
        let ops = build_plan_locked t ~now ~boot in
        t.booted <- true;
        match ops with
        | [] -> None
        | ops ->
          let pl =
            {
              pl_id = t.next_id;
              pl_kind = Pk_converge;
              pl_ops = Array.of_list ops;
              pl_done = Array.make (List.length ops) false;
            }
          in
          t.next_id <- t.next_id + 1;
          (* journal the plan BEFORE any side effect *)
          Journal.append t.j (enc_plan_begin pl.pl_id pl.pl_kind pl.pl_ops);
          t.pending <- Some pl;
          t.plans <- t.plans + 1;
          Some pl)
  in
  !crash_hook "plan_journaled";
  (match plan with
   | Some pl ->
     run_plan t pl;
     finish_plan t pl
   | None -> ());
  with_lock t (fun () -> summary_locked t)

(* The drain pass: apply on_shutdown to every running spec'd guest,
   bounded by parallel_shutdown.  Journaled like any plan so status is
   honest, but marked Pk_drain so a crash mid-drain does not replay
   shutdowns at the next boot. *)
let shutdown_pass t =
  let plan =
    with_lock t (fun () ->
        let ops = ref [] in
        Hashtbl.iter
          (fun (uri, name) (p : Dompolicy.t) ->
            let kind =
              match p.Dompolicy.on_shutdown with
              | Dompolicy.Shut_suspend -> Some Op_save
              | Dompolicy.Shut_shutdown -> Some Op_shutdown
              | Dompolicy.Shut_ignore -> None
            in
            match kind with
            | None -> ()
            | Some k ->
              (match t.io.io_state uri name with
               | Ok st when not (op_satisfied k st) ->
                 ops := { op_uri = uri; op_name = name; op_kind = k } :: !ops
               | _ -> ()))
          t.specs;
        match !ops with
        | [] -> None
        | ops ->
          let pl =
            {
              pl_id = t.next_id;
              pl_kind = Pk_drain;
              pl_ops = Array.of_list ops;
              pl_done = Array.make (List.length ops) false;
            }
          in
          t.next_id <- t.next_id + 1;
          Journal.append t.j (enc_plan_begin pl.pl_id pl.pl_kind pl.pl_ops);
          t.pending <- Some pl;
          t.plans <- t.plans + 1;
          Some pl)
  in
  match plan with
  | Some pl ->
    run_plan t pl;
    finish_plan t pl
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create ~journal_path ~io ~config () =
  let j, replay = Journal.open_ journal_path in
  let t =
    {
      io;
      cfg = config;
      j;
      m = Mutex.create ();
      specs = Hashtbl.create 64;
      attempts = Hashtbl.create 16;
      unconverged = Hashtbl.create 16;
      pending = None;
      next_id = 1;
      booted = false;
      stopping = false;
      kicked = false;
      thread = None;
      plans = 0;
      ops_applied = 0;
      ops_skipped = 0;
      ops_failed = 0;
      resumed = false;
    }
  in
  let now = Unix.gettimeofday () in
  List.iter (replay_record t now) replay.Journal.rp_records;
  (* every spec is unconverged until the first diff says otherwise *)
  Hashtbl.iter (fun key _ -> Hashtbl.replace t.unconverged key ()) t.specs;
  t

let set_policy t ~uri ~name policy =
  with_lock t (fun () ->
      Journal.append t.j (enc_policy uri name policy);
      Hashtbl.replace t.specs (uri, name) policy;
      Hashtbl.remove t.attempts (uri, name);
      Hashtbl.replace t.unconverged (uri, name) ();
      t.kicked <- true;
      maybe_compact_locked t)

let get_policy t ~uri ~name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.specs (uri, name) with
      | Some p -> p
      | None -> Dompolicy.default)

let clear_policy t ~uri ~name =
  with_lock t (fun () ->
      Journal.append t.j (enc_clear uri name);
      Hashtbl.remove t.specs (uri, name);
      Hashtbl.remove t.attempts (uri, name);
      Hashtbl.remove t.unconverged (uri, name);
      maybe_compact_locked t)

let kick t = with_lock t (fun () -> t.kicked <- true)

let status t =
  with_lock t (fun () ->
      let now = Unix.gettimeofday () in
      let rows =
        Hashtbl.fold
          (fun (uri, name) p acc ->
            let att = Hashtbl.find_opt t.attempts (uri, name) in
            let count = match att with Some a -> a.at_count | None -> 0 in
            let st =
              if count >= t.cfg.rcfg_diverged_after then St_diverged
              else if count > 0 || Hashtbl.mem t.unconverged (uri, name) then
                St_pending
              else St_converged
            in
            {
              ds_uri = uri;
              ds_name = name;
              ds_policy = p;
              ds_status = st;
              ds_attempts = count;
              ds_retry_in_s =
                (match att with
                 | Some a -> Float.max 0. (a.at_next -. now)
                 | None -> 0.);
              ds_last_error = (match att with Some a -> a.at_err | None -> "");
            }
            :: acc)
          t.specs []
      in
      let rows =
        List.sort
          (fun a b ->
            match compare a.ds_uri b.ds_uri with
            | 0 -> compare a.ds_name b.ds_name
            | c -> c)
          rows
      in
      (summary_locked t, rows))

let journal_records t = Journal.record_count t.j

(* ------------------------------------------------------------------ *)
(* Loop thread                                                         *)
(* ------------------------------------------------------------------ *)

let loop t =
  let rec sleep until =
    let stop_or_kicked =
      with_lock t (fun () ->
          if t.kicked then begin
            t.kicked <- false;
            true
          end
          else t.stopping)
    in
    if (not stop_or_kicked) && Unix.gettimeofday () < until then begin
      Thread.delay 0.02;
      sleep until
    end
  in
  while not (with_lock t (fun () -> t.stopping)) do
    (try ignore (converge_now t)
     with exn ->
       t.io.io_log
         (Printf.sprintf "reconcile: pass failed: %s" (Printexc.to_string exn)));
    sleep (Unix.gettimeofday () +. t.cfg.rcfg_interval_s)
  done

let start t =
  with_lock t (fun () ->
      if t.thread = None && not t.stopping then
        t.thread <- Some (Thread.create loop t))

let stop t =
  let th =
    with_lock t (fun () ->
        t.stopping <- true;
        let th = t.thread in
        t.thread <- None;
        th)
  in
  Option.iter Thread.join th
