type node_info = {
  model : string;
  memory_kib : int;
  cpus : int;
  mhz : int;
  nodes : int;
  sockets : int;
  cores : int;
  threads : int;
}

type t = {
  hostname : string;
  info : node_info;
  mutex : Mutex.t;
  mutable reserved_memory : int;
  mutable reserved_vcpus : int;
}

let create ?(hostname = "node01") ?(memory_kib = 16 * 1024 * 1024) ?(cpus = 8) () =
  if memory_kib <= 0 || cpus <= 0 then
    invalid_arg "Hostinfo.create: capacity must be positive";
  {
    hostname;
    info =
      {
        model = "x86_64";
        memory_kib;
        cpus;
        mhz = 2600;
        nodes = 1;
        sockets = 1;
        cores = cpus;
        threads = 1;
      };
    mutex = Mutex.create ();
    reserved_memory = 0;
    reserved_vcpus = 0;
  }

let with_lock host f =
  Mutex.lock host.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock host.mutex) f

(* Shared instances: one host per hostname, process-global.  Hardware
   does not reboot when the management daemon dies, so reservations made
   on a shared host survive a simulated manager crash — drivers that
   support restart recovery attach here instead of creating. *)
let shared_mutex = Mutex.create ()
let shared_hosts : (string, t) Hashtbl.t = Hashtbl.create 8

let shared hostname =
  Mutex.lock shared_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock shared_mutex)
    (fun () ->
      match Hashtbl.find_opt shared_hosts hostname with
      | Some host -> host
      | None ->
        let host = create ~hostname () in
        Hashtbl.add shared_hosts hostname host;
        host)

let hostname host = host.hostname
let node_info host = host.info

let free_memory_kib host =
  with_lock host (fun () -> host.info.memory_kib - host.reserved_memory)

let reserved_memory_kib host = with_lock host (fun () -> host.reserved_memory)

let vcpu_oversubscription = 8

let reserve host ~memory_kib ~vcpus =
  with_lock host (fun () ->
      if host.reserved_memory + memory_kib > host.info.memory_kib then
        Error
          (Printf.sprintf
             "cannot allocate %d KiB: only %d KiB free on host %s" memory_kib
             (host.info.memory_kib - host.reserved_memory)
             host.hostname)
      else if host.reserved_vcpus + vcpus > vcpu_oversubscription * host.info.cpus
      then
        Error
          (Printf.sprintf "vCPU limit exceeded on host %s (%d reserved, %d max)"
             host.hostname host.reserved_vcpus
             (vcpu_oversubscription * host.info.cpus))
      else begin
        host.reserved_memory <- host.reserved_memory + memory_kib;
        host.reserved_vcpus <- host.reserved_vcpus + vcpus;
        Ok ()
      end)

let release host ~memory_kib ~vcpus =
  with_lock host (fun () ->
      if memory_kib > host.reserved_memory || vcpus > host.reserved_vcpus then
        invalid_arg "Hostinfo.release: releasing more than was reserved";
      host.reserved_memory <- host.reserved_memory - memory_kib;
      host.reserved_vcpus <- host.reserved_vcpus - vcpus)
