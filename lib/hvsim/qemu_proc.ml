module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image
module J = Mini_json

type t = {
  pid : int;
  argv : string list;
  config : Vm_config.t;
  host : Hostinfo.t;
  image : Guest_image.t;
  mutex : Mutex.t;
  mutable state : Vm_state.state;
  mutable alive : bool;
  mutable capabilities_negotiated : bool;
}

let pid_counter = Atomic.make 1000

let with_lock p f =
  Mutex.lock p.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.mutex) f

(* Process table: hostname -> domain name -> process, process-global.
   Emulator processes belong to the host, not to the manager, so they
   survive a manager crash; a restarted QEMU driver re-discovers its
   guests here ("ps" + the -name argv convention, in effect).  Dead
   processes are filtered on listing rather than removed, which keeps
   the table free of lock-ordering entanglements with [p.mutex]. *)
let table_mutex = Mutex.create ()
let table : (string, (string, t) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let table_register p =
  Mutex.lock table_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock table_mutex)
    (fun () ->
      let hostname = Hostinfo.hostname p.host in
      let procs =
        match Hashtbl.find_opt table hostname with
        | Some procs -> procs
        | None ->
          let procs = Hashtbl.create 16 in
          Hashtbl.add table hostname procs;
          procs
      in
      Hashtbl.replace procs p.config.Vm_config.name p)

let spawn host ~argv config =
  if not (List.mem "-S" argv) then
    Error "refusing to spawn without -S (must start paused)"
  else if not (List.mem config.Vm_config.name argv) then
    Error "argv does not name the domain (-name missing)"
  else
    match
      Hostinfo.reserve host ~memory_kib:config.Vm_config.memory_kib
        ~vcpus:config.Vm_config.vcpus
    with
    | Error msg -> Error msg
    | Ok () ->
      let p =
        {
          pid = Atomic.fetch_and_add pid_counter 1;
          argv;
          config;
          host;
          image = Guest_image.create ~memory_kib:config.Vm_config.memory_kib;
          mutex = Mutex.create ();
          state = Vm_state.Paused;
          alive = true;
          capabilities_negotiated = false;
        }
      in
      table_register p;
      Ok p

let pid p = p.pid
let argv p = p.argv
let config p = p.config
let state p = with_lock p (fun () -> p.state)
let is_alive p = with_lock p (fun () -> p.alive)
let image p = p.image

(* Process exit: release resources exactly once. *)
let exit_process p =
  if p.alive then begin
    p.alive <- false;
    p.state <- Vm_state.Shutoff;
    Hostinfo.release p.host ~memory_kib:p.config.Vm_config.memory_kib
      ~vcpus:p.config.Vm_config.vcpus
  end

(* ------------------------------------------------------------------ *)
(* QMP monitor                                                         *)
(* ------------------------------------------------------------------ *)

let reply_return v = J.to_string (J.Obj [ ("return", v) ])

let reply_error cls desc =
  J.to_string
    (J.Obj
       [ ("error", J.Obj [ ("class", J.String cls); ("desc", J.String desc) ]) ])

let status_name = function
  | Vm_state.Running | Vm_state.Blocked -> "running"
  | Vm_state.Paused -> "paused"
  | Vm_state.Shutdown -> "shutdown"
  | Vm_state.Shutoff -> "shutdown"
  | Vm_state.Crashed -> "guest-panicked"

let apply_transition p event =
  match Vm_state.transition p.state event with
  | Ok next ->
    p.state <- next;
    Ok ()
  | Error msg -> Error msg

let handle_command p cmd =
  match cmd with
  | "qmp_capabilities" ->
    p.capabilities_negotiated <- true;
    reply_return (J.Obj [])
  | _ when not p.capabilities_negotiated ->
    reply_error "CommandNotFound" "capabilities negotiation required first"
  | "query-status" ->
    reply_return
      (J.Obj
         [
           ("status", J.String (status_name p.state));
           ("running", J.Bool (p.state = Vm_state.Running));
         ])
  | "cont" ->
    (match apply_transition p Vm_state.Ev_resume with
     | Ok () -> reply_return (J.Obj [])
     | Error msg -> reply_error "GenericError" msg)
  | "stop" ->
    (match apply_transition p Vm_state.Ev_suspend with
     | Ok () -> reply_return (J.Obj [])
     | Error msg -> reply_error "GenericError" msg)
  | "system_powerdown" ->
    (match apply_transition p Vm_state.Ev_shutdown_request with
     | Ok () ->
       (* The simulated guest acknowledges ACPI immediately. *)
       (match apply_transition p Vm_state.Ev_shutdown_complete with
        | Ok () ->
          exit_process p;
          reply_return (J.Obj [])
        | Error msg -> reply_error "GenericError" msg)
     | Error msg -> reply_error "GenericError" msg)
  | "quit" ->
    exit_process p;
    reply_return (J.Obj [])
  | "query-migrate" ->
    reply_return
      (J.Obj
         [
           ("status", J.String "none");
           ("dirty-pages", J.Int (Guest_image.dirty_count p.image));
           ("ram-total-kib", J.Int (Guest_image.memory_kib p.image));
         ])
  | "inject-crash" ->
    (match apply_transition p Vm_state.Ev_crash with
     | Ok () -> reply_return (J.Obj [])
     | Error msg -> reply_error "GenericError" msg)
  | other -> reply_error "CommandNotFound" (Printf.sprintf "command %S not found" other)

let monitor_command p line =
  with_lock p (fun () ->
      if not p.alive then reply_error "GenericError" "process has exited"
      else
        match J.of_string line with
        | exception J.Parse_error msg -> reply_error "JSONParsing" msg
        | request ->
          (match J.member_opt "execute" request with
           | Some (J.String cmd) -> handle_command p cmd
           | Some _ | None -> reply_error "GenericError" "missing execute key"))

let qmp p ~cmd ?(args = []) () =
  let request =
    J.Obj
      (("execute", J.String cmd)
      :: (if args = [] then [] else [ ("arguments", J.Obj args) ]))
  in
  let reply = monitor_command p (J.to_string request) in
  match J.of_string reply with
  | exception J.Parse_error msg -> Error ("unparseable monitor reply: " ^ msg)
  | parsed ->
    (match J.member_opt "return" parsed with
     | Some v -> Ok v
     | None ->
       (match J.member_opt "error" parsed with
        | Some err -> Error (J.get_string (J.member "desc" err))
        | None -> Error "monitor reply has neither return nor error"))

let wait_exit p = with_lock p (fun () -> ())

let running_on hostname =
  let candidates =
    Mutex.lock table_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock table_mutex)
      (fun () ->
        match Hashtbl.find_opt table hostname with
        | Some procs -> Hashtbl.fold (fun name p acc -> (name, p) :: acc) procs []
        | None -> [])
  in
  (* Liveness checked outside the table lock (is_alive takes p.mutex). *)
  List.filter (fun (_, p) -> is_alive p) candidates
  |> List.sort (fun (a, _) (b, _) -> compare a b)
