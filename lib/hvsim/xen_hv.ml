module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image
module Uuid = Vmm.Uuid

type domid = int

type dominfo = {
  domid : domid;
  dom_uuid : Uuid.t;
  dom_state : Vm_state.state;
  memory_kib : int;
  vcpus : int;
  cpu_time_ns : int64;
}

type domain = {
  id : domid;
  config : Vm_config.t;
  image : Guest_image.t option; (* Domain0 has no image *)
  mutable state : Vm_state.state;
  mutable cpu_time_ns : int64;
}

type t = {
  host : Hostinfo.t;
  xenstore : Xenstore.t;
  mutex : Mutex.t;
  domains : (domid, domain) Hashtbl.t;
  mutable next_domid : domid;
  mutable event_channels : int;
}

let dom0_memory_kib = 512 * 1024

let store hv = hv.xenstore
let host hv = hv.host

let with_lock hv f =
  Mutex.lock hv.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock hv.mutex) f

let dom_path id = Printf.sprintf "/local/domain/%d" id

let publish hv dom =
  let base = dom_path dom.id in
  Xenstore.write hv.xenstore (base ^ "/name") dom.config.Vm_config.name;
  Xenstore.write hv.xenstore (base ^ "/uuid") (Uuid.to_string dom.config.Vm_config.uuid);
  Xenstore.write hv.xenstore (base ^ "/memory/target")
    (string_of_int dom.config.Vm_config.memory_kib);
  Xenstore.write hv.xenstore (base ^ "/state") (Vm_state.state_name dom.state)

let boot hostinfo =
  let hv =
    {
      host = hostinfo;
      xenstore = Xenstore.create ();
      mutex = Mutex.create ();
      domains = Hashtbl.create 16;
      next_domid = 1;
      event_channels = 0;
    }
  in
  (match Hostinfo.reserve hostinfo ~memory_kib:dom0_memory_kib ~vcpus:1 with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Xen_hv.boot: host too small for Domain0: " ^ msg));
  let dom0 =
    {
      id = 0;
      config =
        Vm_config.make ~memory_kib:dom0_memory_kib ~vcpus:1 ~os:Vm_config.Paravirt
          ~disks:[] ~nics:[] "Domain-0";
      image = None;
      state = Vm_state.Running;
      cpu_time_ns = 0L;
    }
  in
  Hashtbl.add hv.domains 0 dom0;
  publish hv dom0;
  hv

(* The hypervisor outlives the toolstack: one instance per hostname,
   process-global, so active domains survive a manager crash.  [attach]
   is what a restarted Xen driver calls instead of booting. *)
let attached_mutex = Mutex.create ()
let attached : (string, t) Hashtbl.t = Hashtbl.create 4

let attach hostname =
  Mutex.lock attached_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock attached_mutex)
    (fun () ->
      match Hashtbl.find_opt attached hostname with
      | Some hv -> hv
      | None ->
        let hv = boot (Hostinfo.shared hostname) in
        Hashtbl.add attached hostname hv;
        hv)

let find hv id =
  match Hashtbl.find_opt hv.domains id with
  | Some dom -> Ok dom
  | None -> Error (Printf.sprintf "no domain with id %d" id)

let ( let* ) = Result.bind

let tick dom =
  dom.cpu_time_ns <- Int64.add dom.cpu_time_ns 1_000_000L

let domctl_create hv config =
  with_lock hv (fun () ->
      let clash =
        Hashtbl.fold
          (fun _ d acc -> acc || d.config.Vm_config.name = config.Vm_config.name)
          hv.domains false
      in
      if clash then
        Error (Printf.sprintf "domain %S already exists" config.Vm_config.name)
      else
        let* () =
          Hostinfo.reserve hv.host ~memory_kib:config.Vm_config.memory_kib
            ~vcpus:config.Vm_config.vcpus
        in
        let id = hv.next_domid in
        hv.next_domid <- id + 1;
        let dom =
          {
            id;
            config;
            image = Some (Guest_image.create ~memory_kib:config.Vm_config.memory_kib);
            state = Vm_state.Paused;
            cpu_time_ns = 0L;
          }
        in
        Hashtbl.add hv.domains id dom;
        hv.event_channels <- hv.event_channels + 2 (* store + console *);
        publish hv dom;
        Ok id)

let apply_event hv id event =
  with_lock hv (fun () ->
      let* dom = find hv id in
      if id = 0 then Error "cannot modify Domain-0"
      else
        let* next = Vm_state.transition dom.state event in
        dom.state <- next;
        tick dom;
        Xenstore.write hv.xenstore (dom_path id ^ "/state") (Vm_state.state_name next);
        Ok dom)

(* Idempotent: a concurrent shutdown/destroy pair must release host
   resources exactly once. *)
let teardown hv dom =
  if Hashtbl.mem hv.domains dom.id then begin
    Hostinfo.release hv.host ~memory_kib:dom.config.Vm_config.memory_kib
      ~vcpus:dom.config.Vm_config.vcpus;
    Hashtbl.remove hv.domains dom.id;
    hv.event_channels <- max 0 (hv.event_channels - 2);
    Xenstore.rm hv.xenstore (dom_path dom.id)
  end

(* The hypervisor drops a domain entirely when it stops being active:
   creating paused then unpausing is the only way in. *)
let domctl_unpause hv id =
  let* _dom = apply_event hv id Vm_state.Ev_resume in
  Ok ()

let domctl_pause hv id =
  let* _dom = apply_event hv id Vm_state.Ev_suspend in
  Ok ()

let domctl_shutdown hv id =
  let* _dom = apply_event hv id Vm_state.Ev_shutdown_request in
  (* The simulated guest acknowledges immediately. *)
  let* dom = apply_event hv id Vm_state.Ev_shutdown_complete in
  with_lock hv (fun () ->
      teardown hv dom;
      Ok ())

let domctl_destroy hv id =
  let* dom = apply_event hv id Vm_state.Ev_destroy in
  with_lock hv (fun () ->
      teardown hv dom;
      Ok ())

let domain_info hv id =
  with_lock hv (fun () ->
      let* dom = find hv id in
      Ok
        {
          domid = dom.id;
          dom_uuid = dom.config.Vm_config.uuid;
          dom_state = dom.state;
          memory_kib = dom.config.Vm_config.memory_kib;
          vcpus = dom.config.Vm_config.vcpus;
          cpu_time_ns = dom.cpu_time_ns;
        })

let list_domains hv =
  with_lock hv (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) hv.domains [] |> List.sort compare)

let lookup_by_name hv name =
  with_lock hv (fun () ->
      Hashtbl.fold
        (fun id dom acc ->
          if dom.config.Vm_config.name = name then Some id else acc)
        hv.domains None)

let lookup_by_uuid hv uuid =
  with_lock hv (fun () ->
      Hashtbl.fold
        (fun id dom acc ->
          if Uuid.equal dom.config.Vm_config.uuid uuid then Some id else acc)
        hv.domains None)

let guest_image hv id =
  with_lock hv (fun () ->
      let* dom = find hv id in
      match dom.image with
      | Some img -> Ok img
      | None -> Error "Domain-0 has no transferable image")

let event_channel_count hv = with_lock hv (fun () -> hv.event_channels)
