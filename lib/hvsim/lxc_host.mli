(** Container host: shared-kernel virtualization substrate.

    Models the kernel facilities the LXC driver manipulates — a cgroup
    tree (hierarchical parameters under [/machine/<name>]) and per-
    container namespace sets — rather than a hypervisor.  Freezing uses
    the freezer cgroup, resource limits are plain cgroup parameters, and
    "starting" a container is assigning an init PID, exactly the
    management surface the driver needs. *)

type t

type container_state = Stopped | Running | Frozen

type container_info = {
  name : string;
  info_state : container_state;
  init_pid : int option;
  memory_limit_kib : int;
  namespaces : string list;  (** e.g. ["pid"; "net"; "ipc"; "uts"; "mnt"] *)
}

val create : Hostinfo.t -> t
val host : t -> Hostinfo.t

val attach : string -> t
(** The process-global container host for a hostname (created on the
    {!Hostinfo.shared} host on first use).  Kernel state — containers,
    cgroups — survives a simulated manager crash; a restarted LXC
    driver attaches instead of creating. *)

(** {1 Cgroup tree} *)

val cgroup_set : t -> string -> string -> string -> unit
(** [cgroup_set host cgroup_path param value]; creates the group.
    @raise Invalid_argument on a relative path. *)

val cgroup_get : t -> string -> string -> string option
val cgroup_exists : t -> string -> bool
val cgroup_remove : t -> string -> unit

(** {1 Containers} *)

val define : t -> Vmm.Vm_config.t -> (unit, string) result
(** Register a container config (must be [Container_exe]); creates its
    cgroup with the memory limit parameter. *)

val undefine : t -> string -> (unit, string) result
val start : t -> string -> (unit, string) result
(** Clones namespaces, assigns an init PID, reserves host memory. *)

val stop : t -> string -> (unit, string) result
val freeze : t -> string -> (unit, string) result
val thaw : t -> string -> (unit, string) result

val info : t -> string -> (container_info, string) result
val list : t -> string list
(** All defined container names, sorted. *)

val set_memory_limit : t -> string -> int -> (unit, string) result
(** Live resize via the cgroup parameter; only the cgroup changes, the
    definition keeps its configured value (like cgroup edits do). *)
