module Vm_config = Vmm.Vm_config

type container_state = Stopped | Running | Frozen

type container_info = {
  name : string;
  info_state : container_state;
  init_pid : int option;
  memory_limit_kib : int;
  namespaces : string list;
}

type container = {
  config : Vm_config.t;
  mutable c_state : container_state;
  mutable c_init_pid : int option;
  mutable c_namespaces : string list;
}

type t = {
  hostinfo : Hostinfo.t;
  mutex : Mutex.t;
  (* cgroup path -> (param -> value) *)
  cgroups : (string, (string, string) Hashtbl.t) Hashtbl.t;
  containers : (string, container) Hashtbl.t;
  mutable next_pid : int;
}

let create hostinfo =
  {
    hostinfo;
    mutex = Mutex.create ();
    cgroups = Hashtbl.create 16;
    containers = Hashtbl.create 16;
    next_pid = 2000;
  }

let host lxc = lxc.hostinfo

(* Kernel state outlives the manager: one container host per hostname,
   process-global, so running containers survive a manager crash. *)
let attached_mutex = Mutex.create ()
let attached : (string, t) Hashtbl.t = Hashtbl.create 4

let attach hostname =
  Mutex.lock attached_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock attached_mutex)
    (fun () ->
      match Hashtbl.find_opt attached hostname with
      | Some lxc -> lxc
      | None ->
        let lxc = create (Hostinfo.shared hostname) in
        Hashtbl.add attached hostname lxc;
        lxc)

let with_lock lxc f =
  Mutex.lock lxc.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock lxc.mutex) f

(* ------------------------------------------------------------------ *)
(* Cgroup tree                                                         *)
(* ------------------------------------------------------------------ *)

let check_path path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Lxc_host: cgroup path %S must be absolute" path)

let cgroup_table lxc path =
  match Hashtbl.find_opt lxc.cgroups path with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 4 in
    Hashtbl.add lxc.cgroups path tbl;
    tbl

let cgroup_set lxc path param value =
  check_path path;
  with_lock lxc (fun () -> Hashtbl.replace (cgroup_table lxc path) param value)

let cgroup_get lxc path param =
  check_path path;
  with_lock lxc (fun () ->
      Option.bind (Hashtbl.find_opt lxc.cgroups path) (fun tbl ->
          Hashtbl.find_opt tbl param))

let cgroup_exists lxc path =
  check_path path;
  with_lock lxc (fun () -> Hashtbl.mem lxc.cgroups path)

let cgroup_remove lxc path =
  check_path path;
  with_lock lxc (fun () -> Hashtbl.remove lxc.cgroups path)

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)
(* ------------------------------------------------------------------ *)

let machine_cgroup name = "/machine/" ^ name

let find lxc name =
  match Hashtbl.find_opt lxc.containers name with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "no container named %S" name)

let ( let* ) = Result.bind

let define lxc config =
  with_lock lxc (fun () ->
      if config.Vm_config.os <> Vm_config.Container_exe then
        Error "container definitions must use <os><type>exe</type></os>"
      else if Hashtbl.mem lxc.containers config.Vm_config.name then
        Error (Printf.sprintf "container %S already defined" config.Vm_config.name)
      else begin
        let name = config.Vm_config.name in
        Hashtbl.replace lxc.containers name
          { config; c_state = Stopped; c_init_pid = None; c_namespaces = [] };
        let tbl = cgroup_table lxc (machine_cgroup name) in
        Hashtbl.replace tbl "memory.limit_in_bytes"
          (string_of_int (config.Vm_config.memory_kib * 1024));
        Hashtbl.replace tbl "cpu.shares" "1024";
        Hashtbl.replace tbl "freezer.state" "THAWED";
        Ok ()
      end)

let undefine lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      if c.c_state <> Stopped then
        Error (Printf.sprintf "container %S is active" name)
      else begin
        Hashtbl.remove lxc.containers name;
        Hashtbl.remove lxc.cgroups (machine_cgroup name);
        Ok ()
      end)

let start lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      match c.c_state with
      | Running | Frozen -> Error (Printf.sprintf "container %S is already active" name)
      | Stopped ->
        let* () =
          Hostinfo.reserve lxc.hostinfo ~memory_kib:c.config.Vm_config.memory_kib
            ~vcpus:c.config.Vm_config.vcpus
        in
        c.c_state <- Running;
        c.c_init_pid <- Some lxc.next_pid;
        lxc.next_pid <- lxc.next_pid + 1;
        c.c_namespaces <- [ "pid"; "net"; "ipc"; "uts"; "mnt" ];
        Hashtbl.replace (cgroup_table lxc (machine_cgroup name)) "freezer.state" "THAWED";
        Ok ())

let stop lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      match c.c_state with
      | Stopped -> Error (Printf.sprintf "container %S is not running" name)
      | Running | Frozen ->
        Hostinfo.release lxc.hostinfo ~memory_kib:c.config.Vm_config.memory_kib
          ~vcpus:c.config.Vm_config.vcpus;
        c.c_state <- Stopped;
        c.c_init_pid <- None;
        c.c_namespaces <- [];
        Ok ())

let freeze lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      match c.c_state with
      | Running ->
        c.c_state <- Frozen;
        Hashtbl.replace (cgroup_table lxc (machine_cgroup name)) "freezer.state" "FROZEN";
        Ok ()
      | Frozen -> Error (Printf.sprintf "container %S is already frozen" name)
      | Stopped -> Error (Printf.sprintf "container %S is not running" name))

let thaw lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      match c.c_state with
      | Frozen ->
        c.c_state <- Running;
        Hashtbl.replace (cgroup_table lxc (machine_cgroup name)) "freezer.state" "THAWED";
        Ok ()
      | Running | Stopped -> Error (Printf.sprintf "container %S is not frozen" name))

let info lxc name =
  with_lock lxc (fun () ->
      let* c = find lxc name in
      let memory_limit_kib =
        match
          Option.bind
            (Hashtbl.find_opt lxc.cgroups (machine_cgroup name))
            (fun tbl -> Hashtbl.find_opt tbl "memory.limit_in_bytes")
        with
        | Some bytes ->
          (match int_of_string_opt bytes with
           | Some b -> b / 1024
           | None -> c.config.Vm_config.memory_kib)
        | None -> c.config.Vm_config.memory_kib
      in
      Ok
        {
          name;
          info_state = c.c_state;
          init_pid = c.c_init_pid;
          memory_limit_kib;
          namespaces = c.c_namespaces;
        })

let list lxc =
  with_lock lxc (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) lxc.containers []
      |> List.sort compare)

let set_memory_limit lxc name kib =
  with_lock lxc (fun () ->
      let* _c = find lxc name in
      if kib <= 0 then Error "memory limit must be positive"
      else begin
        Hashtbl.replace (cgroup_table lxc (machine_cgroup name))
          "memory.limit_in_bytes"
          (string_of_int (kib * 1024));
        Ok ()
      end)
