(** Physical-host model: the hardware every simulated hypervisor runs on.

    Tracks capacity (memory, logical CPUs) and current reservations so the
    simulators can refuse to start guests that would not fit — the same
    failure mode a real host exhibits. *)

type t

type node_info = {
  model : string;  (** CPU model string *)
  memory_kib : int;  (** total host memory *)
  cpus : int;  (** logical CPUs *)
  mhz : int;
  nodes : int;  (** NUMA cells *)
  sockets : int;
  cores : int;
  threads : int;
}

val create : ?hostname:string -> ?memory_kib:int -> ?cpus:int -> unit -> t
(** Defaults: 16 GiB, 8 CPUs, hostname "node01". *)

val shared : string -> t
(** The process-global host for a hostname (created with default
    capacity on first use).  Shared hosts — and their reservations —
    survive a simulated management-daemon crash, the way hardware
    survives a daemon restart. *)

val hostname : t -> string
val node_info : t -> node_info

val free_memory_kib : t -> int
val reserved_memory_kib : t -> int

val reserve : t -> memory_kib:int -> vcpus:int -> (unit, string) result
(** Claim resources for a starting guest.  Memory is strictly accounted;
    vCPUs may oversubscribe up to 8× the physical CPUs (the usual
    hypervisor default) before being refused. *)

val release : t -> memory_kib:int -> vcpus:int -> unit
(** Return resources on guest stop.  Over-release is a programming error
    and raises [Invalid_argument]. *)
