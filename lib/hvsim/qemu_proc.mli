(** QEMU-like emulator process simulator with a QMP (JSON) monitor.

    The QEMU driver never touches "KVM" directly: it formats a command
    line, spawns one of these per domain, and drives it exclusively
    through the monitor — the same control path libvirt uses.  Monitor
    traffic is real JSON text both ways, so every command pays genuine
    encode/parse cost.

    Processes start {e paused} (the [-S] flag is mandatory in the argv)
    and need a ["cont"] command, mirroring how libvirt starts QEMU. *)

type t

val spawn :
  Hostinfo.t -> argv:string list -> Vmm.Vm_config.t -> (t, string) result
(** Reserves host resources and allocates the guest memory image.
    Refused if the host lacks capacity, if [-S] is missing from [argv],
    or if the argv names no [-name] matching the config. *)

val pid : t -> int
val argv : t -> string list
val config : t -> Vmm.Vm_config.t
val state : t -> Vmm.Vm_state.state
val is_alive : t -> bool
(** False once the process has exited (powerdown/quit/destroy). *)

val image : t -> Vmm.Guest_image.t
(** Live memory image; migration transfers pages from/to it. *)

val monitor_command : t -> string -> string
(** One QMP exchange: a JSON line in, a JSON line out.  Replies are
    [{"return": ...}] or [{"error": {"class": ..., "desc": ...}}].
    Supported commands: [qmp_capabilities], [query-status], [cont],
    [stop], [system_powerdown], [quit], [query-migrate],
    [inject-crash] (testing aid). *)

val qmp : t -> cmd:string -> ?args:(string * Mini_json.t) list -> unit -> (Mini_json.t, string) result
(** Convenience wrapper over {!monitor_command}: builds the execute
    envelope, parses the reply, maps QMP errors to [Error desc]. *)

val wait_exit : t -> unit
(** No-op once dead; releases nothing extra (resources are released at
    exit time).  Exposed so drivers can express "reap the process". *)

val running_on : string -> (string * t) list
(** Live emulator processes on a host, [(domain name, process)] sorted
    by name.  Processes belong to the host and survive a simulated
    manager crash; a restarted driver re-discovers its guests here the
    way libvirt scans for orphaned QEMU processes. *)
