(** Xen-like bare-metal hypervisor simulator.

    The control path is the real one: the toolstack (our Xen driver) makes
    {e hypercalls} against the domain table and mirrors control data into
    {!Xenstore}, where frontend/backend information lives.  Domain0 exists
    from boot and cannot be touched.  The hypervisor only knows {e active}
    domains — persistence of configurations is the toolstack's job, which
    is exactly why the libvirt Xen driver is stateful. *)

type t
type domid = int

type dominfo = {
  domid : domid;
  dom_uuid : Vmm.Uuid.t;
  dom_state : Vmm.Vm_state.state;
  memory_kib : int;
  vcpus : int;
  cpu_time_ns : int64;  (** accumulated fake CPU time *)
}

val boot : Hostinfo.t -> t
(** Brings up the hypervisor with Domain0 occupying 512 MiB. *)

val attach : string -> t
(** The process-global hypervisor for a hostname (booted on the
    {!Hostinfo.shared} host on first use).  Active domains survive a
    simulated manager crash — a restarted toolstack attaches instead of
    booting. *)

val store : t -> Xenstore.t
val host : t -> Hostinfo.t

(** {1 Hypercalls}

    All return [Error msg] in the style of hypercall failures; [Ok]
    results have already updated the store. *)

val domctl_create : t -> Vmm.Vm_config.t -> (domid, string) result
(** Builds the domain {e paused}, allocates its memory image, reserves
    host resources, populates [/local/domain/<id>/...]. *)

val domctl_unpause : t -> domid -> (unit, string) result
val domctl_pause : t -> domid -> (unit, string) result

val domctl_shutdown : t -> domid -> (unit, string) result
(** Cooperative shutdown; the simulated guest completes it immediately,
    after which the domain is torn down. *)

val domctl_destroy : t -> domid -> (unit, string) result
(** Hard destroy: releases resources, clears the store subtree. *)

val domain_info : t -> domid -> (dominfo, string) result
val list_domains : t -> domid list
(** Ascending domids of active domains, Domain0 included. *)

val lookup_by_name : t -> string -> domid option
val lookup_by_uuid : t -> Vmm.Uuid.t -> domid option

val guest_image : t -> domid -> (Vmm.Guest_image.t, string) result
(** The live memory image (migration source/destination handle).
    Domain0 refuses. *)

val event_channel_count : t -> int
(** Grows with domain activity; exposed for introspection tests. *)
