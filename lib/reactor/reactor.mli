(** Readiness-driven event loop — the simulated-epoll core of the
    daemon's [io_model=reactor] front end.

    One reactor owns one thread.  Channels are registered as watches;
    {!Ovnet.Chan} readiness hooks enqueue the watch on the ready list
    whenever the channel gains a message or closes, and a self-pipe pokes
    the loop out of its [Unix.select] park.  A deadline wheel (min-heap
    of timers) shares the same loop.  Callbacks run on the reactor
    thread with no reactor lock held: they may watch, unwatch, arm and
    cancel timers, and even {!stop} the reactor. *)

type t

(** [Edge]: the callback runs once per hook event (send/close) — the
    callback must drain the channel completely or it will stall.
    [Level]: after the callback returns, the watch re-queues itself while
    the channel still has pending messages (or is closed), like a
    level-triggered poller re-reporting readiness. *)
type mode = Edge | Level

type watch

type timer_id

type stats = {
  loops : int;  (** loop iterations (dispatches + parks) *)
  dispatches : int;  (** watch callbacks run *)
  timer_fires : int;
  wakeups : int;  (** self-pipe pokes while parked *)
  watches_active : int;
  timers_armed : int;
}

val create : ?name:string -> unit -> t
(** Spawns the loop thread immediately. *)

val name : t -> string

val watch_chan : t -> Ovnet.Chan.t -> mode:mode -> (unit -> unit) -> watch
(** Register interest.  Registration itself reports no readiness — data
    already queued does not fire the callback until {!kick}; this lets
    the caller finish its own bookkeeping before the first dispatch. *)

val kick : t -> watch -> unit
(** Enqueue the watch as if its channel had just become ready (used right
    after {!watch_chan} when the channel may already hold data, and safe
    any time — callbacks tolerate spurious readiness by construction). *)

val unwatch : t -> watch -> unit
(** Deregister.  The callback will not run again (a queued-but-undispatched
    readiness event is discarded).  Idempotent. *)

val after : t -> float -> (unit -> unit) -> timer_id
(** Arm a one-shot timer [delay] seconds from now, fired on the reactor
    thread. *)

val cancel : t -> timer_id -> bool
(** Disarm; [false] when already fired or cancelled.  Lazy: the heap
    entry dies in place. *)

val stats : t -> stats

val stop : t -> unit
(** Drain already-queued readiness events, then stop and join the loop
    thread.  Pending timers never fire.  Safe to call from a callback
    (the join is skipped on the reactor's own thread).  Idempotent. *)

val set_logger : Vlog.t -> unit
(** Replace the logger used when callbacks raise (default: warn-level
    stderr). *)
