(** Pooled receive buffers for reactor connections.

    Connections borrow a buffer only while a partial packet must be
    stashed across readiness callbacks; idle connections hold none, so a
    pool of tens of buffers serves tens of thousands of connections.
    Thread-safe. *)

type t

type stats = {
  s_buf_size : int;
  s_available : int;  (** buffers currently pooled *)
  s_hits : int;  (** takes served from the pool *)
  s_misses : int;  (** takes that had to allocate *)
  s_returns : int;  (** gives that re-pooled the buffer *)
  s_drops : int;  (** gives discarded (pool full, or wrong size) *)
}

val create : buf_size:int -> max_pooled:int -> t
(** Buffers are [buf_size] bytes; at most [max_pooled] are retained. *)

val buf_size : t -> int

val take : t -> Bytes.t
(** A [buf_size]-byte buffer — pooled if available, fresh otherwise.
    Contents are unspecified. *)

val give : t -> Bytes.t -> unit
(** Return a buffer.  Only exact [buf_size] buffers re-pool (a connection
    may have grown its buffer for an oversized packet; grown buffers are
    dropped), and only while under [max_pooled]. *)

val stats : t -> stats
