(* A readiness-driven event loop over simulated channels — the in-process
   analogue of an epoll-based reactor thread.  Channels register a watch;
   Chan readiness hooks (fired on every send/close) enqueue the watch on
   the ready list and, if the loop is parked in [Unix.select] on the
   wakeup pipe, poke it awake.  Callbacks run on the reactor thread with
   no reactor lock held, so they may freely watch/unwatch/arm timers. *)

type mode = Edge | Level

type watch = {
  w_id : int;
  w_chan : Ovnet.Chan.t;
  w_mode : mode;
  w_fn : unit -> unit;
  mutable w_hook : Ovnet.Chan.hook option;
  mutable w_active : bool;
  mutable w_queued : bool; (* already on the ready queue *)
}

type timer = {
  t_id : int;
  t_at : float;
  t_fn : unit -> unit;
  mutable t_cancelled : bool;
}

type timer_id = int

(* Binary min-heap by deadline; cancellation is lazy (entries stay heaped,
   marked dead, and are skipped when they surface). *)
module Heap = struct
  type t = { mutable a : timer array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let rec up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if h.a.(i).t_at < h.a.(p).t_at then begin
        swap h i p;
        up h p
      end
    end

  let rec down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.n && h.a.(l).t_at < h.a.(!m).t_at then m := l;
    if r < h.n && h.a.(r).t_at < h.a.(!m).t_at then m := r;
    if !m <> i then begin
      swap h i !m;
      down h !m
    end

  let push h t =
    if h.n = Array.length h.a then begin
      let cap = max 8 (2 * h.n) in
      let a = Array.make cap t in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- t;
    h.n <- h.n + 1;
    up h (h.n - 1)

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let t = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    down h 0;
    t
end

type t = {
  mutex : Mutex.t;
  ready : watch Queue.t;
  watches : (int, watch) Hashtbl.t;
  timers : Heap.t;
  live_timers : (int, timer) Hashtbl.t; (* armed and not yet fired/cancelled *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable waiting : bool; (* loop parked in select *)
  mutable running : bool;
  mutable thread : Thread.t option;
  name : string;
  (* stats, guarded by [mutex] *)
  mutable s_loops : int;
  mutable s_dispatches : int;
  mutable s_timer_fires : int;
  mutable s_wakeups : int;
}

type stats = {
  loops : int;
  dispatches : int;
  timer_fires : int;
  wakeups : int;
  watches_active : int;
  timers_armed : int;
}

let logger = ref (Vlog.create ~level:Vlog.Warn ())
let set_logger l = logger := l

let ids = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add ids 1

let with_lock r f =
  Mutex.lock r.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mutex) f

(* Wake the loop out of select.  Only writes when the loop is actually
   parked — clearing [waiting] here collapses a burst of readiness
   events into one pipe byte. *)
let wake_locked r =
  if r.waiting then begin
    r.waiting <- false;
    r.s_wakeups <- r.s_wakeups + 1;
    match Unix.write r.wake_w (Bytes.make 1 '!') 0 1 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  end

let drain_pipe fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let mark_ready r w =
  with_lock r (fun () ->
      if w.w_active && not w.w_queued then begin
        w.w_queued <- true;
        Queue.push w r.ready;
        wake_locked r
      end)

let pop_due_timers r now =
  (* caller holds the lock *)
  let due = ref [] in
  let continue = ref true in
  while !continue do
    match Heap.peek r.timers with
    | Some t when t.t_cancelled ->
      ignore (Heap.pop r.timers);
      Hashtbl.remove r.live_timers t.t_id
    | Some t when t.t_at <= now ->
      ignore (Heap.pop r.timers);
      Hashtbl.remove r.live_timers t.t_id;
      due := t :: !due
    | Some _ | None -> continue := false
  done;
  List.rev !due

let dispatch r w =
  (try w.w_fn ()
   with exn ->
     Vlog.logf !logger ~module_:"reactor" Vlog.Warn
       "%s: watch callback raised %s" r.name (Printexc.to_string exn));
  (* Level-triggered watches stay hot while the channel stays readable;
     edge-triggered ones wait for the next hook event. *)
  if
    w.w_mode = Level && w.w_active
    && (Ovnet.Chan.pending w.w_chan > 0 || Ovnet.Chan.is_closed w.w_chan)
  then mark_ready r w

let fire_timer r t =
  if not t.t_cancelled then begin
    with_lock r (fun () -> r.s_timer_fires <- r.s_timer_fires + 1);
    try t.t_fn ()
    with exn ->
      Vlog.logf !logger ~module_:"reactor" Vlog.Warn
        "%s: timer callback raised %s" r.name (Printexc.to_string exn)
  end

let loop r =
  let continue = ref true in
  while !continue do
    Mutex.lock r.mutex;
    r.s_loops <- r.s_loops + 1;
    let now = Unix.gettimeofday () in
    let due = pop_due_timers r now in
    let next_watch =
      if due <> [] then None
      else
        (* skip watches unwatched while queued *)
        let rec take () =
          match Queue.take_opt r.ready with
          | Some w when not w.w_active -> take ()
          | Some w ->
            w.w_queued <- false;
            r.s_dispatches <- r.s_dispatches + 1;
            Some w
          | None -> None
        in
        take ()
    in
    if due = [] && next_watch = None then
      if not r.running then begin
        Mutex.unlock r.mutex;
        continue := false
      end
      else begin
        let timeout =
          match Heap.peek r.timers with
          | Some t -> Float.max 0.0 (t.t_at -. now)
          | None -> 3600.0
        in
        r.waiting <- true;
        Mutex.unlock r.mutex;
        (match Unix.select [ r.wake_r ] [] [] timeout with
         | [], _, _ -> ()
         | _ :: _, _, _ -> drain_pipe r.wake_r
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        Mutex.lock r.mutex;
        r.waiting <- false;
        Mutex.unlock r.mutex
      end
    else begin
      Mutex.unlock r.mutex;
      List.iter (fire_timer r) due;
      match next_watch with Some w -> dispatch r w | None -> ()
    end
  done

let create ?(name = "reactor") () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let r =
    {
      mutex = Mutex.create ();
      ready = Queue.create ();
      watches = Hashtbl.create 64;
      timers = Heap.create ();
      live_timers = Hashtbl.create 16;
      wake_r;
      wake_w;
      waiting = false;
      running = true;
      thread = None;
      name;
      s_loops = 0;
      s_dispatches = 0;
      s_timer_fires = 0;
      s_wakeups = 0;
    }
  in
  r.thread <- Some (Thread.create loop r);
  r

let name r = r.name

let watch_chan r chan ~mode fn =
  let w =
    {
      w_id = fresh_id ();
      w_chan = chan;
      w_mode = mode;
      w_fn = fn;
      w_hook = None;
      w_active = true;
      w_queued = false;
    }
  in
  with_lock r (fun () -> Hashtbl.replace r.watches w.w_id w);
  (* Registration does not report initial readiness: the caller decides
     (via [kick]) once its own bookkeeping for the watch is in place, so
     no callback can run before the caller is ready for it. *)
  w.w_hook <- Some (Ovnet.Chan.add_ready_hook chan (fun () -> mark_ready r w));
  w

let kick r w = mark_ready r w

let unwatch r w =
  (match w.w_hook with
   | Some h ->
     w.w_hook <- None;
     Ovnet.Chan.remove_ready_hook w.w_chan h
   | None -> ());
  with_lock r (fun () ->
      w.w_active <- false;
      Hashtbl.remove r.watches w.w_id)

let after r delay fn =
  let t =
    {
      t_id = fresh_id ();
      t_at = Unix.gettimeofday () +. Float.max 0.0 delay;
      t_fn = fn;
      t_cancelled = false;
    }
  in
  with_lock r (fun () ->
      let earlier =
        match Heap.peek r.timers with Some top -> t.t_at < top.t_at | None -> true
      in
      Heap.push r.timers t;
      Hashtbl.replace r.live_timers t.t_id t;
      (* a new earliest deadline shortens the select timeout *)
      if earlier then wake_locked r);
  t.t_id

let cancel r tid =
  with_lock r (fun () ->
      match Hashtbl.find_opt r.live_timers tid with
      | Some t ->
        t.t_cancelled <- true;
        Hashtbl.remove r.live_timers tid;
        true
      | None -> false)

let stats r =
  with_lock r (fun () ->
      {
        loops = r.s_loops;
        dispatches = r.s_dispatches;
        timer_fires = r.s_timer_fires;
        wakeups = r.s_wakeups;
        watches_active = Hashtbl.length r.watches;
        timers_armed = Hashtbl.length r.live_timers;
      })

let stop r =
  let thread =
    with_lock r (fun () ->
        if r.running then begin
          r.running <- false;
          wake_locked r;
          r.thread
        end
        else None)
  in
  (match thread with
   | Some th when Thread.id th <> Thread.id (Thread.self ()) -> Thread.join th
   | Some _ | None -> ());
  (* close the pipe only once the loop has exited (or when stopping from
     inside a callback, where the loop is past its select) *)
  with_lock r (fun () ->
      match r.thread with
      | Some _ ->
        r.thread <- None;
        (try Unix.close r.wake_r with Unix.Unix_error _ -> ());
        (try Unix.close r.wake_w with Unix.Unix_error _ -> ())
      | None -> ())
