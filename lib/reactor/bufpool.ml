(* Receive buffers for reactor connections.  A connection only holds a
   buffer while a partial packet is stashed in it — the common case
   (whole packets arriving aligned) never takes one — so a small pool
   serves many thousands of connections. *)

type t = {
  mutex : Mutex.t;
  free : Bytes.t Queue.t;
  buf_size : int;
  max_pooled : int;
  mutable hits : int;
  mutable misses : int;
  mutable returns : int;
  mutable drops : int;
}

type stats = {
  s_buf_size : int;
  s_available : int;
  s_hits : int;
  s_misses : int;
  s_returns : int;
  s_drops : int;
}

let create ~buf_size ~max_pooled =
  if buf_size < 1 then invalid_arg "Bufpool.create: buf_size must be >= 1";
  if max_pooled < 0 then invalid_arg "Bufpool.create: max_pooled must be >= 0";
  {
    mutex = Mutex.create ();
    free = Queue.create ();
    buf_size;
    max_pooled;
    hits = 0;
    misses = 0;
    returns = 0;
    drops = 0;
  }

let with_lock p f =
  Mutex.lock p.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.mutex) f

let buf_size p = p.buf_size

let take p =
  match
    with_lock p (fun () ->
        match Queue.take_opt p.free with
        | Some b ->
          p.hits <- p.hits + 1;
          Some b
        | None ->
          p.misses <- p.misses + 1;
          None)
  with
  | Some b -> b
  | None -> Bytes.create p.buf_size

(* Only exact-size buffers re-pool: a connection that outgrew its buffer
   (a packet bigger than buf_size) returns the grown copy here too, and
   pooling those would bloat every later borrower. *)
let give p b =
  with_lock p (fun () ->
      if Bytes.length b = p.buf_size && Queue.length p.free < p.max_pooled
      then begin
        p.returns <- p.returns + 1;
        Queue.push b p.free
      end
      else p.drops <- p.drops + 1)

let stats p =
  with_lock p (fun () ->
      {
        s_buf_size = p.buf_size;
        s_available = Queue.length p.free;
        s_hits = p.hits;
        s_misses = p.misses;
        s_returns = p.returns;
        s_drops = p.drops;
      })
