type priority = Debug | Info | Warn | Error

let priority_to_int = function Debug -> 1 | Info -> 2 | Warn -> 3 | Error -> 4

let priority_of_int = function
  | 1 -> Ok Debug
  | 2 -> Ok Info
  | 3 -> Ok Warn
  | 4 -> Ok Error
  | n -> Stdlib.Error (Printf.sprintf "invalid logging level %d (expected 1-4)" n)

let priority_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warning"
  | Error -> "error"

type sink =
  | Stderr
  | File of string
  | Syslog of string
  | Journald
  | Null

type output = { min_priority : priority; sink : sink }
type filter = { match_string : string; max_verbosity : priority }

(* The whole configuration lives in one immutable record swapped under
   [define_mutex]; loggers read it with a single dereference, which gives
   the read-copy-update atomicity the daemon's runtime redefinition needs. *)
type settings = {
  level : priority;
  filters : filter list;
  outputs : output list;
}

type t = {
  mutable settings : settings;
  define_mutex : Mutex.t;
  emit_mutex : Mutex.t; (* serializes the write-to-outputs section *)
  files : (string, Buffer.t) Hashtbl.t;
  mutable syslog : string list; (* newest first *)
  mutable journal : string list;
  mutable emitted : int;
  mutable dropped : int;
}

let create ?(level = Error) ?(filters = []) ?(outputs = [ { min_priority = Debug; sink = Stderr } ])
    () =
  {
    settings = { level; filters; outputs };
    define_mutex = Mutex.create ();
    emit_mutex = Mutex.create ();
    files = Hashtbl.create 4;
    syslog = [];
    journal = [];
    emitted = 0;
    dropped = 0;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Filter decision                                                     *)
(* ------------------------------------------------------------------ *)

let matches ~module_ filter =
  (* libvirt filters are substring matches against the source name. *)
  let f = filter.match_string in
  let fl = String.length f and ml = String.length module_ in
  let rec search i =
    if i + fl > ml then false
    else if String.sub module_ i fl = f then true
    else search (i + 1)
  in
  fl > 0 && fl <= ml && search 0

(* Effective threshold for a module: the most specific (longest) matching
   filter overrides the global level. *)
let effective_level settings ~module_ =
  let best =
    List.fold_left
      (fun acc f ->
        if matches ~module_ f then
          match acc with
          | Some prev when String.length prev.match_string >= String.length f.match_string
            ->
            acc
          | _ -> Some f
        else acc)
      None settings.filters
  in
  match best with Some f -> f.max_verbosity | None -> settings.level

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let timestamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d.%03d+0000" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (int_of_float (Float.rem t 1.0 *. 1000.))

let format_message ~module_ priority msg =
  Printf.sprintf "%s: %s : %s : %s" (timestamp ()) (priority_name priority)
    module_ msg

let deliver t output line =
  match output.sink with
  | Null -> ()
  | Stderr ->
    prerr_string (line ^ "\n")
  | File path ->
    let buf =
      match Hashtbl.find_opt t.files path with
      | Some b -> b
      | None ->
        let b = Buffer.create 256 in
        Hashtbl.add t.files path b;
        b
    in
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  | Syslog ident -> t.syslog <- (ident ^ ": " ^ line) :: t.syslog
  | Journald -> t.journal <- line :: t.journal

(* Cheap admission probe for hot paths: one settings dereference and the
   same filter walk [log] performs, but no formatting, no output scan and
   no counter update.  Callers use it to skip [logf]'s kasprintf cost
   entirely when the message would be dropped anyway. *)
let would_log t ~module_ priority =
  let settings = t.settings in
  priority_to_int priority >= priority_to_int (effective_level settings ~module_)
  && settings.outputs <> []

let log t ~module_ priority msg =
  let settings = t.settings in
  let threshold = effective_level settings ~module_ in
  if priority_to_int priority < priority_to_int threshold then
    t.dropped <- t.dropped + 1
  else begin
    let admitted =
      List.filter
        (fun o -> priority_to_int priority >= priority_to_int o.min_priority)
        settings.outputs
    in
    match admitted with
    | [] -> t.dropped <- t.dropped + 1
    | outputs ->
      let line = format_message ~module_ priority msg in
      with_lock t.emit_mutex (fun () ->
          List.iter (fun o -> deliver t o line) outputs;
          t.emitted <- t.emitted + 1)
  end

let logf t ~module_ priority fmt =
  Format.kasprintf (fun s -> log t ~module_ priority s) fmt

(* ------------------------------------------------------------------ *)
(* Runtime (re)configuration                                           *)
(* ------------------------------------------------------------------ *)

let get_level t = t.settings.level

let set_level t level =
  with_lock t.define_mutex (fun () -> t.settings <- { t.settings with level })

let get_filters t = t.settings.filters

let define_filters t filters =
  with_lock t.define_mutex (fun () -> t.settings <- { t.settings with filters })

let get_outputs t = t.settings.outputs

let define_outputs t outputs =
  with_lock t.define_mutex (fun () ->
      (* Deferred syslog "reopen": the new set only takes effect once it is
         fully built, so an error cannot leave a half-updated mix. *)
      t.settings <- { t.settings with outputs })

(* ------------------------------------------------------------------ *)
(* Textual syntax                                                      *)
(* ------------------------------------------------------------------ *)

let split_items s =
  String.split_on_char ' ' s |> List.filter (fun item -> item <> "")

let parse_level_prefix item =
  match String.index_opt item ':' with
  | None -> Stdlib.Error (Printf.sprintf "%S: missing ':' separator" item)
  | Some i ->
    let level_str = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    (match int_of_string_opt level_str with
     | None -> Stdlib.Error (Printf.sprintf "%S: level is not numeric" item)
     | Some n ->
       (match priority_of_int n with
        | Ok p -> Ok (p, rest)
        | Stdlib.Error e -> Stdlib.Error (Printf.sprintf "%S: %s" item e)))

let parse_filters s =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      (match parse_level_prefix item with
       | Stdlib.Error e -> Stdlib.Error e
       | Ok (_, "") -> Stdlib.Error (Printf.sprintf "%S: empty match string" item)
       | Ok (max_verbosity, match_string) ->
         build ({ match_string; max_verbosity } :: acc) rest)
  in
  build [] (split_items s)

let format_filters filters =
  filters
  |> List.map (fun f ->
         Printf.sprintf "%d:%s" (priority_to_int f.max_verbosity) f.match_string)
  |> String.concat " "

let parse_one_output item =
  match parse_level_prefix item with
  | Stdlib.Error e -> Stdlib.Error e
  | Ok (min_priority, rest) ->
    let kind, extra =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some i ->
        ( String.sub rest 0 i,
          Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    in
    (match kind, extra with
     | "stderr", None -> Ok { min_priority; sink = Stderr }
     | "journald", None -> Ok { min_priority; sink = Journald }
     | "null", None -> Ok { min_priority; sink = Null }
     | ("stderr" | "journald" | "null"), Some _ ->
       Stdlib.Error (Printf.sprintf "%S: output takes no additional data" item)
     | "file", Some path when path <> "" && path.[0] = '/' ->
       Ok { min_priority; sink = File path }
     | "file", Some path ->
       Stdlib.Error (Printf.sprintf "%S: %S is not an absolute path" item path)
     | "file", None -> Stdlib.Error (Printf.sprintf "%S: file output requires a path" item)
     | "syslog", Some ident when ident <> "" ->
       Ok { min_priority; sink = Syslog ident }
     | "syslog", _ ->
       Stdlib.Error (Printf.sprintf "%S: syslog output requires an identifier" item)
     | other, _ -> Stdlib.Error (Printf.sprintf "%S: unknown output kind %S" item other))

let parse_outputs s =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      (match parse_one_output item with
       | Stdlib.Error e -> Stdlib.Error e
       | Ok o -> build (o :: acc) rest)
  in
  build [] (split_items s)

let format_outputs outputs =
  outputs
  |> List.map (fun o ->
         let lvl = priority_to_int o.min_priority in
         match o.sink with
         | Stderr -> Printf.sprintf "%d:stderr" lvl
         | Journald -> Printf.sprintf "%d:journald" lvl
         | Null -> Printf.sprintf "%d:null" lvl
         | File path -> Printf.sprintf "%d:file:%s" lvl path
         | Syslog ident -> Printf.sprintf "%d:syslog:%s" lvl ident)
  |> String.concat " "

(* ------------------------------------------------------------------ *)
(* Sinks and counters                                                  *)
(* ------------------------------------------------------------------ *)

let file_contents t path =
  with_lock t.emit_mutex (fun () ->
      match Hashtbl.find_opt t.files path with
      | Some b -> Buffer.contents b
      | None -> "")

let syslog_contents t = with_lock t.emit_mutex (fun () -> List.rev t.syslog)
let journal_contents t = with_lock t.emit_mutex (fun () -> List.rev t.journal)
let emitted_count t = t.emitted
let dropped_count t = t.dropped

let reset_counters t =
  with_lock t.emit_mutex (fun () ->
      t.emitted <- 0;
      t.dropped <- 0)
