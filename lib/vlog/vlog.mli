(** Daemon logging subsystem: levels, per-module filters, outputs.

    Faithful to libvirt's logger: four priorities forming an inclusive
    hierarchy ([Debug] logs everything, [Error] only errors), per-module
    {e filters} that override the global level for sources whose name
    matches, and a set of {e outputs} each with its own minimum priority.

    Filters and outputs use libvirt's textual syntax so they can be carried
    over the administration interface:

    - filter: ["level:match"], e.g. ["3:util.object 4:rpc"]
    - output: ["level:stderr"], ["level:file:/path"], ["level:syslog:ident"],
      ["level:journald"]

    Redefinition is read-copy-update: a new settings value is fully built
    (parsing included) before being swapped in, so concurrent loggers see
    either the old or the new configuration, never a torn mix — the
    atomicity property the daemon needs for runtime reconfiguration. *)

(** {1 Priorities} *)

type priority = Debug | Info | Warn | Error

val priority_to_int : priority -> int
(** Numeric representation: 1=debug … 4=error (wire format). *)

val priority_of_int : int -> (priority, string) result
val priority_name : priority -> string

(** {1 Outputs} *)

type sink =
  | Stderr
  | File of string  (** append to the named in-memory file sink *)
  | Syslog of string  (** simulated syslog with message identifier *)
  | Journald  (** simulated journal *)
  | Null  (** drop (used by benchmarks to isolate filter cost) *)

type output = { min_priority : priority; sink : sink }
type filter = { match_string : string; max_verbosity : priority }

(** {1 Logger} *)

type t
(** A logger instance.  The daemon owns one; tests create their own. *)

val create :
  ?level:priority -> ?filters:filter list -> ?outputs:output list -> unit -> t
(** Default: level [Error], no filters, single [Stderr] output. *)

val log : t -> module_:string -> priority -> string -> unit
(** Emit one message.  The decision path is: filters matching [module_]
    first (most specific wins: longest match), else global level; then the
    message is formatted once and forwarded to every output whose
    [min_priority] admits it. *)

val logf :
  t -> module_:string -> priority -> ('a, Format.formatter, unit, unit) format4 -> 'a

val would_log : t -> module_:string -> priority -> bool
(** [would_log t ~module_ priority] is [true] iff a message at this
    priority would pass the level/filter decision and at least one output
    exists.  Costs one settings dereference plus the filter walk — no
    formatting — so hot paths can guard [logf] calls whose argument
    formatting would otherwise run even for dropped messages.  (It does
    not check per-output [min_priority] admission, and unlike a dropped
    [log] call it leaves the dropped counter untouched.) *)

(** {1 Runtime (re)configuration} *)

val get_level : t -> priority
val set_level : t -> priority -> unit

val get_filters : t -> filter list
val define_filters : t -> filter list -> unit
(** Replace the whole filter set atomically. *)

val get_outputs : t -> output list
val define_outputs : t -> output list -> unit
(** Replace the whole output set atomically.  Syslog reopen semantics:
    the simulated syslog connection is re-established only after the new
    set is validated, mirroring the deferred-reopen fix. *)

(** {1 Textual syntax} *)

val parse_filters : string -> (filter list, string) result
(** Space-separated ["level:match"] items.  The empty string is the empty
    filter set. *)

val format_filters : filter list -> string

val parse_outputs : string -> (output list, string) result
val format_outputs : output list -> string

(** {1 Sinks and counters (test/bench support)} *)

val file_contents : t -> string -> string
(** Contents of the named in-memory file sink ("" if never written). *)

val syslog_contents : t -> string list
val journal_contents : t -> string list

val emitted_count : t -> int
(** Messages that reached at least one output. *)

val dropped_count : t -> int
(** Messages rejected by level/filter before formatting. *)

val reset_counters : t -> unit
