open Ovirt_core

let program = 0x20008086
let version = 1

(* Highest protocol minor this build speaks.  The wire [version] above
   never changes (append-only numbering keeps every frame compatible);
   the minor only gates which procedures a daemon is willing to serve
   and is negotiated per connection via [Proc_proto_minor]. *)
let minor = 7

type procedure =
  | Proc_open
  | Proc_close
  | Proc_get_capabilities
  | Proc_get_hostname
  | Proc_list_domains
  | Proc_list_defined
  | Proc_lookup_by_name
  | Proc_lookup_by_uuid
  | Proc_define_xml
  | Proc_undefine
  | Proc_dom_create
  | Proc_dom_suspend
  | Proc_dom_resume
  | Proc_dom_shutdown
  | Proc_dom_destroy
  | Proc_dom_get_info
  | Proc_dom_get_xml
  | Proc_dom_set_memory
  | Proc_net_list
  | Proc_net_define
  | Proc_net_start
  | Proc_net_stop
  | Proc_net_undefine
  | Proc_net_set_autostart
  | Proc_net_lookup
  | Proc_pool_list
  | Proc_pool_define
  | Proc_pool_start
  | Proc_pool_stop
  | Proc_pool_undefine
  | Proc_pool_lookup
  | Proc_vol_create
  | Proc_vol_delete
  | Proc_vol_list
  | Proc_event_register
  | Proc_event_deregister
  | Proc_event_lifecycle
  | Proc_echo
  | Proc_ping
  | Proc_dom_save
  | Proc_dom_restore
  | Proc_dom_has_managed_save
  | Proc_dom_set_autostart
  | Proc_dom_get_autostart
  | Proc_proto_minor
  | Proc_dom_list_all
  | Proc_call_batch
  | Proc_vol_lookup
  | Proc_call_deadline
  | Proc_dom_set_policy
  | Proc_dom_get_policy
  | Proc_daemon_reconcile_status
  | Proc_event_resume
  | Proc_event_lifecycle_seq
  | Proc_fleet_list_all
  | Proc_fleet_status
  | Proc_fleet_migrate

(* Append-only: the list position IS the wire number (1-based). *)
let all_procedures =
  [
    Proc_open; Proc_close; Proc_get_capabilities; Proc_get_hostname;
    Proc_list_domains; Proc_list_defined; Proc_lookup_by_name;
    Proc_lookup_by_uuid; Proc_define_xml; Proc_undefine; Proc_dom_create;
    Proc_dom_suspend; Proc_dom_resume; Proc_dom_shutdown; Proc_dom_destroy;
    Proc_dom_get_info; Proc_dom_get_xml; Proc_dom_set_memory; Proc_net_list;
    Proc_net_define; Proc_net_start; Proc_net_stop; Proc_net_undefine;
    Proc_net_set_autostart; Proc_net_lookup; Proc_pool_list; Proc_pool_define;
    Proc_pool_start; Proc_pool_stop; Proc_pool_undefine; Proc_pool_lookup;
    Proc_vol_create; Proc_vol_delete; Proc_vol_list; Proc_event_register;
    Proc_event_deregister; Proc_event_lifecycle; Proc_echo; Proc_ping;
    (* v1.1 additions: numbers are append-only *)
    Proc_dom_save; Proc_dom_restore; Proc_dom_has_managed_save;
    (* v1.2 additions *)
    Proc_dom_set_autostart; Proc_dom_get_autostart;
    (* v1.3 additions: negotiation + bulk/batch *)
    Proc_proto_minor; Proc_dom_list_all; Proc_call_batch; Proc_vol_lookup;
    (* v1.4 additions: per-call deadline envelope *)
    Proc_call_deadline;
    (* v1.5 additions: declarative lifecycle policy / reconciler *)
    Proc_dom_set_policy; Proc_dom_get_policy; Proc_daemon_reconcile_status;
    (* v1.6 additions: resumable sequence-numbered event streams *)
    Proc_event_resume; Proc_event_lifecycle_seq;
    (* v1.7 additions: federation *)
    Proc_fleet_list_all; Proc_fleet_status; Proc_fleet_migrate;
  ]

(* Number↔procedure mapping is on the per-packet hot path: precomputed
   tables instead of a list walk per call. *)
let proc_table = Array.of_list all_procedures
let proc_count = Array.length proc_table

let proc_index =
  let h = Hashtbl.create (2 * proc_count) in
  Array.iteri (fun i p -> Hashtbl.replace h p (i + 1)) proc_table;
  h

let proc_to_int proc = Hashtbl.find proc_index proc

let proc_of_int n =
  if n >= 1 && n <= proc_count then Ok proc_table.(n - 1)
  else Error (Printf.sprintf "unknown remote procedure %d" n)

(* Protocol minor each procedure first appeared in.  A daemon serving
   minor [m] answers procedures with [proc_min_minor p <= m] and rejects
   the rest exactly as a build that predates them would ("unknown remote
   procedure N"), so clients cannot tell a gated daemon from an old one. *)
let proc_min_minor = function
  | Proc_dom_save | Proc_dom_restore | Proc_dom_has_managed_save -> 1
  | Proc_dom_set_autostart | Proc_dom_get_autostart -> 2
  | Proc_proto_minor | Proc_dom_list_all | Proc_call_batch | Proc_vol_lookup -> 3
  | Proc_call_deadline -> 4
  | Proc_dom_set_policy | Proc_dom_get_policy | Proc_daemon_reconcile_status -> 5
  | Proc_event_resume | Proc_event_lifecycle_seq -> 6
  | Proc_fleet_list_all | Proc_fleet_status | Proc_fleet_migrate -> 7
  | _ -> 0

let is_high_priority = function
  | Proc_open | Proc_close | Proc_get_capabilities | Proc_get_hostname
  | Proc_list_domains | Proc_list_defined | Proc_lookup_by_name
  | Proc_lookup_by_uuid | Proc_dom_get_info | Proc_dom_get_xml | Proc_echo
  | Proc_ping | Proc_event_register | Proc_event_deregister
  | Proc_dom_has_managed_save | Proc_dom_get_autostart | Proc_proto_minor
  | Proc_dom_list_all | Proc_dom_get_policy | Proc_daemon_reconcile_status
  (* part of the reconnect handshake, like event_register *)
  | Proc_event_resume
  (* answered from controller-local health state, never touches a member *)
  | Proc_fleet_status ->
    true
  | Proc_define_xml | Proc_undefine | Proc_dom_create | Proc_dom_suspend
  | Proc_dom_resume | Proc_dom_shutdown | Proc_dom_destroy | Proc_dom_set_memory
  | Proc_net_list | Proc_net_define | Proc_net_start | Proc_net_stop
  | Proc_net_undefine | Proc_net_set_autostart | Proc_net_lookup | Proc_pool_list
  | Proc_pool_define | Proc_pool_start | Proc_pool_stop | Proc_pool_undefine
  | Proc_pool_lookup | Proc_vol_create | Proc_vol_delete | Proc_vol_list
  | Proc_event_lifecycle | Proc_event_lifecycle_seq | Proc_dom_save
  | Proc_dom_restore | Proc_dom_set_autostart | Proc_dom_set_policy
  (* batch sub-calls may be arbitrary, vol_lookup walks pools; a
     deadline envelope's priority follows its inner call, resolved by
     the dispatcher after peeking into the body *)
  | Proc_call_batch | Proc_vol_lookup | Proc_call_deadline
  (* a fleet listing scatters to member daemons, a fleet migration
     drives two of them through a multi-step handshake *)
  | Proc_fleet_list_all | Proc_fleet_migrate ->
    false

(* Idempotent = safe to re-issue after a connection death when the client
   cannot know whether the daemon processed the lost call.  Strictly the
   read-only procedures plus echo/ping; registration calls re-run as part
   of the reconnect handshake instead.  Everything mutating stays out: a
   lost Proc_dom_create may well have started the domain. *)
let is_idempotent = function
  | Proc_get_capabilities | Proc_get_hostname | Proc_list_domains
  | Proc_list_defined | Proc_lookup_by_name | Proc_lookup_by_uuid
  | Proc_dom_get_info | Proc_dom_get_xml | Proc_dom_has_managed_save
  | Proc_dom_get_autostart | Proc_net_list | Proc_net_lookup | Proc_pool_list
  | Proc_pool_lookup | Proc_vol_list | Proc_echo | Proc_ping | Proc_proto_minor
  | Proc_dom_list_all | Proc_vol_lookup | Proc_dom_get_policy
  | Proc_daemon_reconcile_status | Proc_fleet_list_all | Proc_fleet_status ->
    true
  | Proc_open | Proc_close | Proc_define_xml | Proc_undefine | Proc_dom_create
  | Proc_dom_suspend | Proc_dom_resume | Proc_dom_shutdown | Proc_dom_destroy
  | Proc_dom_set_memory | Proc_net_define | Proc_net_start | Proc_net_stop
  | Proc_net_undefine | Proc_net_set_autostart | Proc_pool_define
  | Proc_pool_start | Proc_pool_stop | Proc_pool_undefine | Proc_vol_create
  | Proc_vol_delete | Proc_event_register | Proc_event_deregister
  | Proc_event_lifecycle | Proc_event_resume | Proc_event_lifecycle_seq
  | Proc_dom_save | Proc_dom_restore
  (* set_policy is a journaled last-writer-wins upsert — replaying it
     is harmless — but it stays out so retry behaviour matches
     set_autostart, its v1.2 sibling *)
  | Proc_dom_set_autostart | Proc_dom_set_policy
  (* a batch is as idempotent as its least idempotent sub-call, a
     deadline envelope exactly as idempotent as its inner call; the
     client computes both per call and overrides retry eligibility *)
  | Proc_call_batch | Proc_call_deadline
  (* a lost fleet_migrate may have passed its commit point *)
  | Proc_fleet_migrate ->
    false

(* ------------------------------------------------------------------ *)
(* Body codecs                                                         *)
(* ------------------------------------------------------------------ *)

let enc_error_into e (err : Verror.t) =
  Xdr.enc_int e (Verror.code_to_int err.Verror.code);
  Xdr.enc_string e err.Verror.message

let enc_error (err : Verror.t) =
  Xdr.encode (fun e () -> enc_error_into e err) ()

let dec_error body =
  Xdr.decode
    (fun d ->
      let code = Verror.code_of_int (Xdr.dec_int d) in
      let message = Xdr.dec_string d in
      Verror.make code message)
    body

let enc_string_body s = Xdr.encode Xdr.enc_string s
let dec_string_body body = Xdr.decode Xdr.dec_string body
let enc_unit_body = ""

let dec_unit_body body =
  if body <> "" then raise (Xdr.Error "expected empty body")

let enc_bool_body b = Xdr.encode Xdr.enc_bool b
let dec_bool_body body = Xdr.decode Xdr.dec_bool body

let enc_string_list l = Xdr.encode (fun e -> Xdr.enc_array e Xdr.enc_string) l
let dec_string_list body = Xdr.decode (fun d -> Xdr.dec_array d Xdr.dec_string) body

let enc_uuid e uuid = Xdr.enc_fixed_opaque e 36 (Vmm.Uuid.to_string uuid)

let dec_uuid d =
  match Vmm.Uuid.of_string (Xdr.dec_fixed_opaque d 36) with
  | Ok uuid -> uuid
  | Error msg -> raise (Xdr.Error msg)

let enc_domain_ref_into e (r : Driver.domain_ref) =
  Xdr.enc_string e r.Driver.dom_name;
  enc_uuid e r.Driver.dom_uuid;
  Xdr.enc_option e Xdr.enc_int r.Driver.dom_id

let dec_domain_ref_from d =
  let dom_name = Xdr.dec_string d in
  let dom_uuid = dec_uuid d in
  let dom_id = Xdr.dec_option d Xdr.dec_int in
  Driver.{ dom_name; dom_uuid; dom_id }

let enc_domain_ref r = Xdr.encode enc_domain_ref_into r
let dec_domain_ref body = Xdr.decode dec_domain_ref_from body

let enc_domain_ref_list l =
  Xdr.encode (fun e -> Xdr.enc_array e enc_domain_ref_into) l

let dec_domain_ref_list body =
  Xdr.decode (fun d -> Xdr.dec_array d dec_domain_ref_from) body

let enc_domain_info_into e (i : Driver.domain_info) =
  Xdr.enc_int e
    (match i.Driver.di_state with
     | Vmm.Vm_state.Running -> 0
     | Vmm.Vm_state.Blocked -> 1
     | Vmm.Vm_state.Paused -> 2
     | Vmm.Vm_state.Shutdown -> 3
     | Vmm.Vm_state.Shutoff -> 4
     | Vmm.Vm_state.Crashed -> 5);
  Xdr.enc_uint e i.Driver.di_max_mem_kib;
  Xdr.enc_uint e i.Driver.di_memory_kib;
  Xdr.enc_uint e i.Driver.di_vcpus;
  Xdr.enc_hyper e i.Driver.di_cpu_time_ns

let dec_domain_info_from d =
  let di_state =
    match Xdr.dec_int d with
    | 0 -> Vmm.Vm_state.Running
    | 1 -> Vmm.Vm_state.Blocked
    | 2 -> Vmm.Vm_state.Paused
    | 3 -> Vmm.Vm_state.Shutdown
    | 4 -> Vmm.Vm_state.Shutoff
    | 5 -> Vmm.Vm_state.Crashed
    | n -> raise (Xdr.Error (Printf.sprintf "unknown domain state %d" n))
  in
  let di_max_mem_kib = Xdr.dec_uint d in
  let di_memory_kib = Xdr.dec_uint d in
  let di_vcpus = Xdr.dec_uint d in
  let di_cpu_time_ns = Xdr.dec_hyper d in
  Driver.{ di_state; di_max_mem_kib; di_memory_kib; di_vcpus; di_cpu_time_ns }

let enc_domain_info i = Xdr.encode enc_domain_info_into i
let dec_domain_info body = Xdr.decode dec_domain_info_from body

let enc_domain_record_into e (r : Driver.domain_record) =
  enc_domain_ref_into e r.Driver.rec_ref;
  enc_domain_info_into e r.Driver.rec_info;
  Xdr.enc_option e Xdr.enc_bool r.Driver.rec_autostart

let dec_domain_record_from d =
  let rec_ref = dec_domain_ref_from d in
  let rec_info = dec_domain_info_from d in
  let rec_autostart = Xdr.dec_option d Xdr.dec_bool in
  Driver.{ rec_ref; rec_info; rec_autostart }

let enc_domain_record_list l =
  Xdr.encode (fun e -> Xdr.enc_array e enc_domain_record_into) l

let dec_domain_record_list body =
  Xdr.decode (fun d -> Xdr.dec_array d dec_domain_record_from) body

let enc_int_body n = Xdr.encode Xdr.enc_int n
let dec_int_body body = Xdr.decode Xdr.dec_int body

(* Batch container: N (procedure, body) sub-calls in one frame, N
   (ok, body) sub-replies in the other — an error sub-reply's body is an
   {!enc_error}.  Sub-call bodies travel as XDR strings (length-prefixed
   opaques), so the container never inspects them. *)
let enc_batch_call subs =
  Xdr.encode
    (fun e ->
      Xdr.enc_array e (fun e (proc, body) ->
          Xdr.enc_uint e proc;
          Xdr.enc_string e body))
    subs

let dec_batch_call body =
  Xdr.decode
    (fun d ->
      Xdr.dec_array d (fun d ->
          let proc = Xdr.dec_uint d in
          let body = Xdr.dec_string d in
          (proc, body)))
    body

let enc_batch_reply subs =
  Xdr.encode
    (fun e ->
      Xdr.enc_array e (fun e (ok, body) ->
          Xdr.enc_bool e ok;
          Xdr.enc_string e body))
    subs

let dec_batch_reply body =
  Xdr.decode
    (fun d ->
      Xdr.dec_array d (fun d ->
          let ok = Xdr.dec_bool d in
          let body = Xdr.dec_string d in
          (ok, body)))
    body

(* Deadline envelope: [budget_ms (u32)][inner procedure (u32)][inner
   body (opaque)].  The budget is {e relative} — milliseconds left when
   the client sent the frame — so client and daemon clocks never need to
   agree; the daemon anchors the deadline at receive time.  The reply is
   the inner call's reply, so the envelope adds no round trip. *)
let enc_deadline_call ~budget_ms ~proc body =
  Xdr.encode
    (fun e () ->
      Xdr.enc_uint e budget_ms;
      Xdr.enc_uint e proc;
      Xdr.enc_string e body)
    ()

let dec_deadline_call body =
  Xdr.decode
    (fun d ->
      let budget_ms = Xdr.dec_uint d in
      let proc = Xdr.dec_uint d in
      let body = Xdr.dec_string d in
      (budget_ms, proc, body))
    body

let enc_name_and_kib name kib =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e name;
      Xdr.enc_uint e kib)
    ()

let dec_name_and_kib body =
  Xdr.decode
    (fun d ->
      let name = Xdr.dec_string d in
      let kib = Xdr.dec_uint d in
      (name, kib))
    body

let enc_net_define ~name ~bridge ~ip_range =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e name;
      Xdr.enc_string e bridge;
      Xdr.enc_string e ip_range)
    ()

let dec_net_define body =
  Xdr.decode
    (fun d ->
      let name = Xdr.dec_string d in
      let bridge = Xdr.dec_string d in
      let ip_range = Xdr.dec_string d in
      (name, bridge, ip_range))
    body

let enc_net_info_into e (i : Net_backend.info) =
  Xdr.enc_string e i.Net_backend.net_name;
  enc_uuid e i.Net_backend.net_uuid;
  Xdr.enc_string e i.Net_backend.bridge;
  Xdr.enc_string e i.Net_backend.ip_range;
  Xdr.enc_bool e i.Net_backend.active;
  Xdr.enc_bool e i.Net_backend.autostart;
  Xdr.enc_uint e i.Net_backend.connected_ifaces

let dec_net_info_from d =
  let net_name = Xdr.dec_string d in
  let net_uuid = dec_uuid d in
  let bridge = Xdr.dec_string d in
  let ip_range = Xdr.dec_string d in
  let active = Xdr.dec_bool d in
  let autostart = Xdr.dec_bool d in
  let connected_ifaces = Xdr.dec_uint d in
  Net_backend.
    { net_name; net_uuid; bridge; ip_range; active; autostart; connected_ifaces }

let enc_net_info i = Xdr.encode enc_net_info_into i
let dec_net_info body = Xdr.decode dec_net_info_from body
let enc_net_info_list l = Xdr.encode (fun e -> Xdr.enc_array e enc_net_info_into) l

let dec_net_info_list body =
  Xdr.decode (fun d -> Xdr.dec_array d dec_net_info_from) body

let enc_name_and_bool name b =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e name;
      Xdr.enc_bool e b)
    ()

let dec_name_and_bool body =
  Xdr.decode
    (fun d ->
      let name = Xdr.dec_string d in
      let b = Xdr.dec_bool d in
      (name, b))
    body

let enc_pool_define ~name ~target_path ~capacity_b =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e name;
      Xdr.enc_string e target_path;
      Xdr.enc_hyper e (Int64.of_int capacity_b))
    ()

let dec_pool_define body =
  Xdr.decode
    (fun d ->
      let name = Xdr.dec_string d in
      let target_path = Xdr.dec_string d in
      let capacity_b = Int64.to_int (Xdr.dec_hyper d) in
      (name, target_path, capacity_b))
    body

let enc_pool_info_into e (i : Storage_backend.pool_info) =
  Xdr.enc_string e i.Storage_backend.pool_name;
  enc_uuid e i.Storage_backend.pool_uuid;
  Xdr.enc_string e i.Storage_backend.target_path;
  Xdr.enc_hyper e (Int64.of_int i.Storage_backend.capacity_b);
  Xdr.enc_hyper e (Int64.of_int i.Storage_backend.allocation_b);
  Xdr.enc_bool e i.Storage_backend.pool_active;
  Xdr.enc_uint e i.Storage_backend.volume_count

let dec_pool_info_from d =
  let pool_name = Xdr.dec_string d in
  let pool_uuid = dec_uuid d in
  let target_path = Xdr.dec_string d in
  let capacity_b = Int64.to_int (Xdr.dec_hyper d) in
  let allocation_b = Int64.to_int (Xdr.dec_hyper d) in
  let pool_active = Xdr.dec_bool d in
  let volume_count = Xdr.dec_uint d in
  Storage_backend.
    {
      pool_name;
      pool_uuid;
      target_path;
      capacity_b;
      allocation_b;
      pool_active;
      volume_count;
    }

let enc_pool_info i = Xdr.encode enc_pool_info_into i
let dec_pool_info body = Xdr.decode dec_pool_info_from body
let enc_pool_info_list l = Xdr.encode (fun e -> Xdr.enc_array e enc_pool_info_into) l

let dec_pool_info_list body =
  Xdr.decode (fun d -> Xdr.dec_array d dec_pool_info_from) body

let enc_vol_create ~pool ~name ~capacity_b ~format =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e pool;
      Xdr.enc_string e name;
      Xdr.enc_hyper e (Int64.of_int capacity_b);
      Xdr.enc_string e format)
    ()

let dec_vol_create body =
  Xdr.decode
    (fun d ->
      let pool = Xdr.dec_string d in
      let name = Xdr.dec_string d in
      let capacity_b = Int64.to_int (Xdr.dec_hyper d) in
      let format = Xdr.dec_string d in
      (pool, name, capacity_b, format))
    body

let enc_vol_ref ~pool ~name =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e pool;
      Xdr.enc_string e name)
    ()

let dec_vol_ref body =
  Xdr.decode
    (fun d ->
      let pool = Xdr.dec_string d in
      let name = Xdr.dec_string d in
      (pool, name))
    body

let enc_vol_info_into e (i : Storage_backend.vol_info) =
  Xdr.enc_string e i.Storage_backend.vol_name;
  Xdr.enc_string e i.Storage_backend.vol_key;
  Xdr.enc_hyper e (Int64.of_int i.Storage_backend.vol_capacity_b);
  Xdr.enc_string e i.Storage_backend.vol_format

let dec_vol_info_from d =
  let vol_name = Xdr.dec_string d in
  let vol_key = Xdr.dec_string d in
  let vol_capacity_b = Int64.to_int (Xdr.dec_hyper d) in
  let vol_format = Xdr.dec_string d in
  Storage_backend.{ vol_name; vol_key; vol_capacity_b; vol_format }

let enc_vol_info i = Xdr.encode enc_vol_info_into i
let dec_vol_info body = Xdr.decode dec_vol_info_from body
let enc_vol_info_list l = Xdr.encode (fun e -> Xdr.enc_array e enc_vol_info_into) l

let dec_vol_info_list body =
  Xdr.decode (fun d -> Xdr.dec_array d dec_vol_info_from) body

let enc_lifecycle_event (ev : Events.event) =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e ev.Events.domain_name;
      Xdr.enc_int e (Events.lifecycle_to_int ev.Events.lifecycle))
    ()

let dec_lifecycle_event body =
  Xdr.decode
    (fun d ->
      let domain_name = Xdr.dec_string d in
      match Events.lifecycle_of_int (Xdr.dec_int d) with
      | Ok lifecycle -> Events.{ domain_name; lifecycle; seq = 0 }
      | Error msg -> raise (Xdr.Error msg))
    body

(* ---- v1.5: lifecycle policy and reconciler status ---- *)

let enc_policy_into e (p : Dompolicy.t) =
  let b, s, r = Dompolicy.to_ints p in
  Xdr.enc_uint e b;
  Xdr.enc_uint e s;
  Xdr.enc_uint e r

let dec_policy_from d =
  let b = Xdr.dec_uint d in
  let s = Xdr.dec_uint d in
  let r = Xdr.dec_uint d in
  match Dompolicy.of_ints (b, s, r) with
  | Ok p -> p
  | Error e -> raise (Xdr.Error e.Verror.message)

let enc_policy p = Xdr.encode enc_policy_into p
let dec_policy body = Xdr.decode dec_policy_from body

let enc_set_policy name p =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e name;
      enc_policy_into e p)
    ()

let dec_set_policy body =
  Xdr.decode
    (fun d ->
      let name = Xdr.dec_string d in
      let p = dec_policy_from d in
      (name, p))
    body

let reconcile_status_to_int = function
  | Reconcile.St_converged -> 0
  | Reconcile.St_pending -> 1
  | Reconcile.St_diverged -> 2

let reconcile_status_of_int = function
  | 0 -> Reconcile.St_converged
  | 1 -> Reconcile.St_pending
  | 2 -> Reconcile.St_diverged
  | n -> raise (Xdr.Error (Printf.sprintf "unknown reconcile status %d" n))

(* Retry countdowns travel as milliseconds (uints); fractional seconds
   are a host-local detail. *)
let enc_reconcile_status ((s : Reconcile.summary), rows) =
  Xdr.encode
    (fun e () ->
      Xdr.enc_uint e s.Reconcile.sum_specs;
      Xdr.enc_uint e s.Reconcile.sum_converged;
      Xdr.enc_uint e s.Reconcile.sum_pending;
      Xdr.enc_uint e s.Reconcile.sum_diverged;
      Xdr.enc_uint e s.Reconcile.sum_plans;
      Xdr.enc_uint e s.Reconcile.sum_ops_applied;
      Xdr.enc_uint e s.Reconcile.sum_ops_skipped;
      Xdr.enc_uint e s.Reconcile.sum_ops_failed;
      Xdr.enc_bool e s.Reconcile.sum_resumed;
      Xdr.enc_array e
        (fun e (r : Reconcile.dom_status) ->
          Xdr.enc_string e r.Reconcile.ds_uri;
          Xdr.enc_string e r.Reconcile.ds_name;
          enc_policy_into e r.Reconcile.ds_policy;
          Xdr.enc_uint e (reconcile_status_to_int r.Reconcile.ds_status);
          Xdr.enc_uint e r.Reconcile.ds_attempts;
          Xdr.enc_uint e
            (int_of_float (Float.round (r.Reconcile.ds_retry_in_s *. 1000.)));
          Xdr.enc_string e r.Reconcile.ds_last_error)
        rows)
    ()

let dec_reconcile_status body =
  Xdr.decode
    (fun d ->
      let sum_specs = Xdr.dec_uint d in
      let sum_converged = Xdr.dec_uint d in
      let sum_pending = Xdr.dec_uint d in
      let sum_diverged = Xdr.dec_uint d in
      let sum_plans = Xdr.dec_uint d in
      let sum_ops_applied = Xdr.dec_uint d in
      let sum_ops_skipped = Xdr.dec_uint d in
      let sum_ops_failed = Xdr.dec_uint d in
      let sum_resumed = Xdr.dec_bool d in
      let rows =
        Xdr.dec_array d (fun d ->
            let ds_uri = Xdr.dec_string d in
            let ds_name = Xdr.dec_string d in
            let ds_policy = dec_policy_from d in
            let ds_status = reconcile_status_of_int (Xdr.dec_uint d) in
            let ds_attempts = Xdr.dec_uint d in
            let ds_retry_in_s = float_of_int (Xdr.dec_uint d) /. 1000. in
            let ds_last_error = Xdr.dec_string d in
            Reconcile.
              {
                ds_uri;
                ds_name;
                ds_policy;
                ds_status;
                ds_attempts;
                ds_retry_in_s;
                ds_last_error;
              })
      in
      ( Reconcile.
          {
            sum_specs;
            sum_converged;
            sum_pending;
            sum_diverged;
            sum_plans;
            sum_ops_applied;
            sum_ops_skipped;
            sum_ops_failed;
            sum_resumed;
          },
        rows ))
    body

(* ---- v1.6: resumable sequence-numbered event streams ---- *)

(* A resume call carries the last stream position the client processed;
   [-1] means "fresh subscription" (arm at the current head, replay
   nothing).  Positions are hypers on the wire: a busy daemon outlives
   2^31 events. *)
let enc_event_resume last_seq =
  Xdr.encode (fun e () -> Xdr.enc_hyper e (Int64.of_int last_seq)) ()

let dec_event_resume body = Xdr.decode (fun d -> Int64.to_int (Xdr.dec_hyper d)) body

type resume_reply = {
  rr_gap : bool;
  rr_head : int;
  rr_oldest : int;
  rr_events : Events.event list;
}

let enc_seq_event_into e (ev : Events.event) =
  Xdr.enc_hyper e (Int64.of_int ev.Events.seq);
  Xdr.enc_string e ev.Events.domain_name;
  Xdr.enc_int e (Events.lifecycle_to_int ev.Events.lifecycle)

let dec_seq_event_from d =
  let seq = Int64.to_int (Xdr.dec_hyper d) in
  let domain_name = Xdr.dec_string d in
  match Events.lifecycle_of_int (Xdr.dec_int d) with
  | Ok lifecycle -> Events.{ domain_name; lifecycle; seq }
  | Error msg -> raise (Xdr.Error msg)

let enc_seq_event (ev : Events.event) = Xdr.encode (fun e -> enc_seq_event_into e) ev
let dec_seq_event body = Xdr.decode dec_seq_event_from body

let enc_resume_reply r =
  Xdr.encode
    (fun e () ->
      Xdr.enc_bool e r.rr_gap;
      Xdr.enc_hyper e (Int64.of_int r.rr_head);
      Xdr.enc_hyper e (Int64.of_int r.rr_oldest);
      Xdr.enc_array e enc_seq_event_into r.rr_events)
    ()

let dec_resume_reply body =
  Xdr.decode
    (fun d ->
      let rr_gap = Xdr.dec_bool d in
      let rr_head = Int64.to_int (Xdr.dec_hyper d) in
      let rr_oldest = Int64.to_int (Xdr.dec_hyper d) in
      let rr_events = Xdr.dec_array d dec_seq_event_from in
      { rr_gap; rr_head; rr_oldest; rr_events })
    body

(* ---- v1.7: federation ---- *)

(* A fleet listing is a bulk listing plus the degradation markers: rows
   from the members that answered, one (member, error) pair per member
   that could not contribute, and the member count so a client can state
   completeness ("47 rows from 7/8 shards"). *)
let enc_fleet_listing (l : Driver.fleet_listing) =
  Xdr.encode
    (fun e () ->
      Xdr.enc_array e enc_domain_record_into l.Driver.fl_records;
      Xdr.enc_array e
        (fun e (se : Driver.shard_error) ->
          Xdr.enc_string e se.Driver.se_member;
          enc_error_into e se.Driver.se_error)
        l.Driver.fl_shard_errors;
      Xdr.enc_uint e l.Driver.fl_members)
    ()

let dec_fleet_listing body =
  Xdr.decode
    (fun d ->
      let fl_records = Xdr.dec_array d dec_domain_record_from in
      let fl_shard_errors =
        Xdr.dec_array d (fun d ->
            let se_member = Xdr.dec_string d in
            let code = Verror.code_of_int (Xdr.dec_int d) in
            let message = Xdr.dec_string d in
            Driver.{ se_member; se_error = Verror.make code message })
      in
      let fl_members = Xdr.dec_uint d in
      Driver.{ fl_records; fl_shard_errors; fl_members })
    body

let member_health_to_int = function
  | Driver.Mh_up -> 0
  | Driver.Mh_degraded -> 1
  | Driver.Mh_down -> 2

let member_health_of_int = function
  | 0 -> Driver.Mh_up
  | 1 -> Driver.Mh_degraded
  | 2 -> Driver.Mh_down
  | n -> raise (Xdr.Error (Printf.sprintf "unknown member health %d" n))

(* Domain counts travel as ints, not uints: [-1] = never listed. *)
let enc_fleet_status (s : Driver.fleet_status) =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e s.Driver.fs_fleet;
      Xdr.enc_array e
        (fun e (m : Driver.member_status) ->
          Xdr.enc_string e m.Driver.ms_name;
          Xdr.enc_uint e (member_health_to_int m.Driver.ms_health);
          Xdr.enc_uint e m.Driver.ms_consec_failures;
          Xdr.enc_uint e m.Driver.ms_probes;
          Xdr.enc_uint e m.Driver.ms_failures;
          Xdr.enc_int e m.Driver.ms_domains)
        s.Driver.fs_members;
      Xdr.enc_uint e s.Driver.fs_migrations_active;
      Xdr.enc_uint e s.Driver.fs_migrations_recovered;
      Xdr.enc_uint e s.Driver.fs_migrations_rolled_back)
    ()

let dec_fleet_status body =
  Xdr.decode
    (fun d ->
      let fs_fleet = Xdr.dec_string d in
      let fs_members =
        Xdr.dec_array d (fun d ->
            let ms_name = Xdr.dec_string d in
            let ms_health = member_health_of_int (Xdr.dec_uint d) in
            let ms_consec_failures = Xdr.dec_uint d in
            let ms_probes = Xdr.dec_uint d in
            let ms_failures = Xdr.dec_uint d in
            let ms_domains = Xdr.dec_int d in
            Driver.
              {
                ms_name;
                ms_health;
                ms_consec_failures;
                ms_probes;
                ms_failures;
                ms_domains;
              })
      in
      let fs_migrations_active = Xdr.dec_uint d in
      let fs_migrations_recovered = Xdr.dec_uint d in
      let fs_migrations_rolled_back = Xdr.dec_uint d in
      Driver.
        {
          fs_fleet;
          fs_members;
          fs_migrations_active;
          fs_migrations_recovered;
          fs_migrations_rolled_back;
        })
    body

let enc_fleet_migrate ~domain ~dest =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e domain;
      Xdr.enc_string e dest)
    ()

let dec_fleet_migrate body =
  Xdr.decode
    (fun d ->
      let domain = Xdr.dec_string d in
      let dest = Xdr.dec_string d in
      (domain, dest))
    body
