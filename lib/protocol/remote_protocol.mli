(** The remote program: procedure numbers and body codecs shared by the
    remote driver (client) and the daemon (server).

    Wire stability rules as in libvirt: procedure numbers are append-only;
    bodies are XDR; every reply with [Status_error] carries a serialized
    {!Ovirt_core.Verror.t}. *)

val program : int
val version : int

val minor : int
(** Highest protocol minor this build speaks.  The wire [version] never
    changes; the minor gates which procedures a daemon serves and is
    negotiated per connection with [Proc_proto_minor] (an old daemon
    answers it with "unknown remote procedure", which a client reads as
    minor 2). *)

type procedure =
  | Proc_open  (** args: URI string; ret: none *)
  | Proc_close
  | Proc_get_capabilities  (** ret: capabilities XML *)
  | Proc_get_hostname
  | Proc_list_domains  (** ret: domain_ref array *)
  | Proc_list_defined  (** ret: string array *)
  | Proc_lookup_by_name
  | Proc_lookup_by_uuid
  | Proc_define_xml
  | Proc_undefine
  | Proc_dom_create
  | Proc_dom_suspend
  | Proc_dom_resume
  | Proc_dom_shutdown
  | Proc_dom_destroy
  | Proc_dom_get_info
  | Proc_dom_get_xml
  | Proc_dom_set_memory
  | Proc_net_list
  | Proc_net_define
  | Proc_net_start
  | Proc_net_stop
  | Proc_net_undefine
  | Proc_net_set_autostart
  | Proc_net_lookup
  | Proc_pool_list
  | Proc_pool_define
  | Proc_pool_start
  | Proc_pool_stop
  | Proc_pool_undefine
  | Proc_pool_lookup
  | Proc_vol_create
  | Proc_vol_delete
  | Proc_vol_list
  | Proc_event_register
  | Proc_event_deregister
  | Proc_event_lifecycle  (** server → client event *)
  | Proc_echo  (** benchmark aid: body echoed back verbatim *)
  | Proc_ping
  | Proc_dom_save  (** appended in protocol v1.1: managed save *)
  | Proc_dom_restore
  | Proc_dom_has_managed_save
  | Proc_dom_set_autostart  (** appended in protocol v1.2: autostart *)
  | Proc_dom_get_autostart
  | Proc_proto_minor  (** appended in v1.3: ret: server's minor (int) *)
  | Proc_dom_list_all  (** ret: domain_record array, one-lock snapshot *)
  | Proc_call_batch  (** args: (proc, body) array; ret: (ok, body) array *)
  | Proc_vol_lookup  (** args: volume path; ret: vol_info *)
  | Proc_call_deadline
      (** appended in v1.4: deadline envelope — args:
          [(budget_ms, inner proc, inner body)]; ret: the inner reply *)
  | Proc_dom_set_policy
      (** appended in v1.5: args: (name, policy); ret: none — declares
          the domain's lifecycle policy to the daemon-side reconciler *)
  | Proc_dom_get_policy  (** args: name; ret: policy *)
  | Proc_daemon_reconcile_status
      (** ret: reconciler summary + per-domain rows *)
  | Proc_event_resume
      (** appended in v1.6: args: last processed stream position (hyper,
          [-1] = fresh subscription); ret: {!resume_reply}.  Atomically
          arms a sequence-numbered event subscription and replays every
          retained event newer than the given position — or reports a
          gap when the daemon's ring has wrapped past it. *)
  | Proc_event_lifecycle_seq
      (** server → client event tagged with its stream position *)
  | Proc_fleet_list_all
      (** appended in v1.7: ret: {!Ovirt_core.Driver.fleet_listing} — a
          bulk listing annotated with per-shard errors.  A plain daemon
          answers with its own rows and [fl_members = 1]; a fleet
          controller scatter-gathers its members. *)
  | Proc_fleet_status
      (** ret: {!Ovirt_core.Driver.fleet_status} — member health as seen
          by the controller's prober.  [Operation_unsupported] on a
          non-fleet connection. *)
  | Proc_fleet_migrate
      (** args: (domain, destination member); ret: none — journaled
          two-phase cross-daemon migration through the controller *)

val enc_bool_body : bool -> string
val dec_bool_body : string -> bool

val proc_to_int : procedure -> int
val proc_of_int : int -> (procedure, string) result

val proc_min_minor : procedure -> int
(** Protocol minor the procedure first appeared in; a daemon serving
    minor [m] rejects procedures above [m] as unknown. *)

val is_high_priority : procedure -> bool
(** High-priority procedures are guaranteed to finish without talking to a
    hypervisor, so priority workers may run them. *)

val is_idempotent : procedure -> bool
(** Safe to re-issue after a connection death (the read-only set): the
    remote driver's auto-reconnect transparently retries exactly these.
    Mutating procedures are never blindly retried — a lost call may have
    been applied. *)

(** {1 Body codecs} *)

val enc_error : Ovirt_core.Verror.t -> string

val enc_error_into : Xdr.encoder -> Ovirt_core.Verror.t -> unit
(** As {!enc_error}, appended to an existing encoder (the zero-copy reply
    framing path). *)

val dec_error : string -> Ovirt_core.Verror.t
(** @raise Xdr.Error on corruption. *)

val enc_string_body : string -> string
val dec_string_body : string -> string
val enc_unit_body : string
val dec_unit_body : string -> unit

val enc_string_list : string list -> string
val dec_string_list : string -> string list

val enc_domain_ref : Ovirt_core.Driver.domain_ref -> string
val dec_domain_ref : string -> Ovirt_core.Driver.domain_ref
val enc_domain_ref_list : Ovirt_core.Driver.domain_ref list -> string
val dec_domain_ref_list : string -> Ovirt_core.Driver.domain_ref list

val enc_domain_info : Ovirt_core.Driver.domain_info -> string
val dec_domain_info : string -> Ovirt_core.Driver.domain_info

val enc_domain_record_list : Ovirt_core.Driver.domain_record list -> string
val dec_domain_record_list : string -> Ovirt_core.Driver.domain_record list

val enc_int_body : int -> string
val dec_int_body : string -> int

val enc_batch_call : (int * string) list -> string
val dec_batch_call : string -> (int * string) list
(** Sub-calls as (wire procedure number, encoded args body). *)

val enc_batch_reply : (bool * string) list -> string
val dec_batch_reply : string -> (bool * string) list
(** Sub-replies as (ok, body); a [false] body is an {!enc_error}. *)

val enc_deadline_call : budget_ms:int -> proc:int -> string -> string
val dec_deadline_call : string -> int * int * string
(** Deadline envelope (v1.4): the {e relative} budget in milliseconds
    plus the wrapped (procedure, body).  Relative so client and daemon
    clocks need not agree; the daemon anchors the absolute deadline at
    receive time.  @raise Xdr.Error on corruption. *)

val enc_name_and_kib : string -> int -> string
val dec_name_and_kib : string -> string * int

val enc_net_define : name:string -> bridge:string -> ip_range:string -> string
val dec_net_define : string -> string * string * string

val enc_net_info : Ovirt_core.Net_backend.info -> string
val dec_net_info : string -> Ovirt_core.Net_backend.info
val enc_net_info_list : Ovirt_core.Net_backend.info list -> string
val dec_net_info_list : string -> Ovirt_core.Net_backend.info list

val enc_name_and_bool : string -> bool -> string
val dec_name_and_bool : string -> string * bool

val enc_pool_define : name:string -> target_path:string -> capacity_b:int -> string
val dec_pool_define : string -> string * string * int

val enc_pool_info : Ovirt_core.Storage_backend.pool_info -> string
val dec_pool_info : string -> Ovirt_core.Storage_backend.pool_info
val enc_pool_info_list : Ovirt_core.Storage_backend.pool_info list -> string
val dec_pool_info_list : string -> Ovirt_core.Storage_backend.pool_info list

val enc_vol_create :
  pool:string -> name:string -> capacity_b:int -> format:string -> string
val dec_vol_create : string -> string * string * int * string

val enc_vol_ref : pool:string -> name:string -> string
val dec_vol_ref : string -> string * string

val enc_vol_info : Ovirt_core.Storage_backend.vol_info -> string
val dec_vol_info : string -> Ovirt_core.Storage_backend.vol_info
val enc_vol_info_list : Ovirt_core.Storage_backend.vol_info list -> string
val dec_vol_info_list : string -> Ovirt_core.Storage_backend.vol_info list

val enc_lifecycle_event : Ovirt_core.Events.event -> string
val dec_lifecycle_event : string -> Ovirt_core.Events.event

(** {1 v1.5: lifecycle policy / reconciler status} *)

val enc_policy : Ovirt_core.Dompolicy.t -> string
val dec_policy : string -> Ovirt_core.Dompolicy.t

val enc_set_policy : string -> Ovirt_core.Dompolicy.t -> string
val dec_set_policy : string -> string * Ovirt_core.Dompolicy.t

val enc_reconcile_status : Reconcile.summary * Reconcile.dom_status list -> string
val dec_reconcile_status : string -> Reconcile.summary * Reconcile.dom_status list
(** Per-row retry countdowns are rounded to milliseconds on the wire. *)

(** {1 v1.6: resumable sequence-numbered event streams} *)

val enc_event_resume : int -> string
val dec_event_resume : string -> int
(** Last stream position the client processed; [-1] = fresh subscription
    (arm at the current head, replay nothing). *)

type resume_reply = {
  rr_gap : bool;
      (** the ring wrapped past the client's position (or the position is
          from a different daemon incarnation): the replay is incomplete
          and the client must flush cached state and resync *)
  rr_head : int;  (** newest seq assigned at the subscription snapshot *)
  rr_oldest : int;  (** lowest seq still retained in the ring *)
  rr_events : Ovirt_core.Events.event list;
      (** retained events newer than the client's position, oldest first;
          empty on gap or fresh subscription *)
}

val enc_resume_reply : resume_reply -> string
val dec_resume_reply : string -> resume_reply

val enc_seq_event : Ovirt_core.Events.event -> string
val dec_seq_event : string -> Ovirt_core.Events.event
(** Body of a [Proc_event_lifecycle_seq] push: (seq, domain, lifecycle). *)

(** {1 v1.7: federation} *)

val enc_fleet_listing : Ovirt_core.Driver.fleet_listing -> string
val dec_fleet_listing : string -> Ovirt_core.Driver.fleet_listing
(** Bulk listing + per-shard degradation markers + member count. *)

val enc_fleet_status : Ovirt_core.Driver.fleet_status -> string
val dec_fleet_status : string -> Ovirt_core.Driver.fleet_status
(** Member health rows; domain counts travel as signed ints ([-1] =
    never listed). *)

val enc_fleet_migrate : domain:string -> dest:string -> string
val dec_fleet_migrate : string -> string * string
