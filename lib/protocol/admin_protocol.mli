(** The administration program: runtime management of the daemon itself.

    Mirrors the libvirt-admin interface: per-server threadpool tuning,
    client limits, client listing/identity/disconnect, and daemon-global
    logging level/filters/outputs.  Typed-parameter field names are the
    exact strings the admin API documents. *)

val program : int
val version : int

type procedure =
  | Proc_list_servers  (** ret: server-name array *)
  | Proc_lookup_server  (** args: name; ret: none (existence check) *)
  | Proc_get_threadpool  (** args: server; ret: typed params *)
  | Proc_set_threadpool  (** args: server + typed params *)
  | Proc_get_client_limits
  | Proc_set_client_limits
  | Proc_list_clients  (** args: server; ret: client entries *)
  | Proc_get_client_info  (** args: server + id; ret: typed params *)
  | Proc_client_close  (** args: server + id *)
  | Proc_get_log_level  (** ret: uint *)
  | Proc_set_log_level  (** args: uint *)
  | Proc_get_log_filters  (** ret: string *)
  | Proc_set_log_filters
  | Proc_get_log_outputs
  | Proc_set_log_outputs
  | Proc_daemon_uptime  (** ret: hyper seconds (monitoring aid) *)
  | Proc_daemon_drain
      (** graceful shutdown: stop accepting connections, finish in-flight
          dispatches, then close.  Replies before the drain completes. *)
  | Proc_daemon_pool_stats
      (** args: server; ret: typed params — overload counters
          (jobs done/failed/shed/expired, stuck workers) plus the live
          queue/wall limits *)
  | Proc_daemon_reconcile_status
      (** ret: the reconciler summary + per-domain rows, encoded exactly
          as the remote program's [Proc_daemon_reconcile_status] reply *)
  | Proc_daemon_event_stats
      (** appended in v1.4 — ret: typed params: aggregate replay-ring
          counters for the v1.6 resumable event streams (events
          emitted/replayed/gapped, resumes, ring occupancy/capacity,
          live subscribers, highest stream position) *)
  | Proc_daemon_reply_cache_stats
      (** appended in v1.5 — ret: typed params: aggregate server
          reply-cache counters across every per-node-URI cache (hits,
          misses, insertions, invalidations, evictions, patched-serial
          sends, live entries/bytes, enabled flag) *)
  | Proc_daemon_fleet_status
      (** appended in v1.6 — ret: one
          {!Ovirt_core.Driver.fleet_status} per fleet hosted in the
          daemon's process (empty array if it hosts none): member
          health, probe/failure counters, migration totals *)

val proc_to_int : procedure -> int
val proc_of_int : int -> (procedure, string) result

val is_high_priority : procedure -> bool
(** Every admin procedure is high-priority: the whole point is that
    administration works when ordinary workers are wedged. *)

(** {1 Typed-parameter field names} *)

val threadpool_workers_min : string
val threadpool_workers_max : string
val threadpool_workers_priority : string
val threadpool_workers_free : string
val threadpool_workers_current : string
val threadpool_job_queue_depth : string
val threadpool_job_queue_limit : string
val threadpool_wall_limit_ms : string

val pool_jobs_done : string
val pool_jobs_failed : string
val pool_jobs_shed : string
val pool_jobs_expired : string
val pool_workers_stuck : string
val pool_workers_stuck_now : string

val server_clients_max : string
val server_clients_current : string
val server_clients_unauth_max : string
val server_clients_unauth_current : string

val client_info_readonly : string
val client_info_sock_addr : string
val client_info_x509_dname : string
val client_info_unix_user_id : string
val client_info_unix_user_name : string
val client_info_unix_group_id : string
val client_info_unix_group_name : string
val client_info_unix_process_id : string

val event_rings : string
val event_emitted : string
val event_replayed : string
val event_gapped : string
val event_resumes : string
val event_ring_occupancy : string
val event_ring_capacity : string
val event_subscribers : string
val event_head_seq : string

val reply_cache_caches : string
val reply_cache_hits : string
val reply_cache_misses : string
val reply_cache_insertions : string
val reply_cache_invalidations : string
val reply_cache_evictions : string
val reply_cache_patched_sends : string
val reply_cache_entries : string
val reply_cache_bytes : string
val reply_cache_enabled : string

(** {1 Client list entries} *)

type client_entry = {
  client_id : int64;
  client_transport : int;  (** 0 unix, 1 tcp, 2 tls *)
  connected_since : int64;  (** seconds since epoch *)
}

(** {1 Body codecs} *)

val enc_server_name : string -> string
val dec_server_name : string -> string

val enc_server_params : server:string -> Ovrpc.Typed_params.t -> string
val dec_server_params : string -> string * Ovrpc.Typed_params.t

val enc_params : Ovrpc.Typed_params.t -> string
val dec_params : string -> Ovrpc.Typed_params.t

val enc_client_ref : server:string -> id:int64 -> string
val dec_client_ref : string -> string * int64

val enc_client_list : client_entry list -> string
val dec_client_list : string -> client_entry list

val enc_uint_body : int -> string
val dec_uint_body : string -> int

val enc_hyper_body : int64 -> string
val dec_hyper_body : string -> int64

val enc_fleet_statuses : Ovirt_core.Driver.fleet_status list -> string
val dec_fleet_statuses : string -> Ovirt_core.Driver.fleet_status list
(** v1.6: array of per-fleet statuses, each body encoded with
    {!Remote_protocol.enc_fleet_status} (one wire format for fleet
    health across both programs). *)
