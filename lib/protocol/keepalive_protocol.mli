(** The keepalive program (libvirt's virKeepAlive).

    Rides the ordinary {!Ovrpc.Rpc_packet} framing on an established
    connection under its own program number: the client sends a [PING]
    call whenever the connection has been silent for an interval, and the
    peer answers with the Status_ok reply ([PONG]).  After
    [interval × count] seconds with no traffic at all the peer is
    declared dead and the connection torn down — the signal the
    auto-reconnect logic in the remote driver acts on.  Bodies are
    empty. *)

val program : int
(** 0x6b656570, "keep". *)

val version : int
val proc_ping : int
val proc_pong : int

val default_interval_s : float
val default_count : int
