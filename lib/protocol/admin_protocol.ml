let program = 0x06900690
let version = 1

type procedure =
  | Proc_list_servers
  | Proc_lookup_server
  | Proc_get_threadpool
  | Proc_set_threadpool
  | Proc_get_client_limits
  | Proc_set_client_limits
  | Proc_list_clients
  | Proc_get_client_info
  | Proc_client_close
  | Proc_get_log_level
  | Proc_set_log_level
  | Proc_get_log_filters
  | Proc_set_log_filters
  | Proc_get_log_outputs
  | Proc_set_log_outputs
  | Proc_daemon_uptime
  | Proc_daemon_drain
  | Proc_daemon_pool_stats
  | Proc_daemon_reconcile_status
  | Proc_daemon_event_stats
  | Proc_daemon_reply_cache_stats
  | Proc_daemon_fleet_status

let all_procedures =
  [
    Proc_list_servers; Proc_lookup_server; Proc_get_threadpool;
    Proc_set_threadpool; Proc_get_client_limits; Proc_set_client_limits;
    Proc_list_clients; Proc_get_client_info; Proc_client_close;
    Proc_get_log_level; Proc_set_log_level; Proc_get_log_filters;
    Proc_set_log_filters; Proc_get_log_outputs; Proc_set_log_outputs;
    Proc_daemon_uptime;
    (* v1.1 additions: numbers are append-only *)
    Proc_daemon_drain;
    (* v1.2 additions *)
    Proc_daemon_pool_stats;
    (* v1.3 additions *)
    Proc_daemon_reconcile_status;
    (* v1.4 additions *)
    Proc_daemon_event_stats;
    (* v1.5 additions *)
    Proc_daemon_reply_cache_stats;
    (* v1.6 additions *)
    Proc_daemon_fleet_status;
  ]

let proc_to_int proc =
  let rec index i = function
    | [] -> assert false
    | p :: rest -> if p = proc then i else index (i + 1) rest
  in
  index 1 all_procedures

let proc_of_int n =
  if n >= 1 && n <= List.length all_procedures then Ok (List.nth all_procedures (n - 1))
  else Error (Printf.sprintf "unknown admin procedure %d" n)

let is_high_priority (_ : procedure) = true

(* Field names exactly as the admin API documents them. *)
let threadpool_workers_min = "minWorkers"
let threadpool_workers_max = "maxWorkers"
let threadpool_workers_priority = "prioWorkers"
let threadpool_workers_free = "freeWorkers"
let threadpool_workers_current = "nWorkers"
let threadpool_job_queue_depth = "jobQueueDepth"
let threadpool_job_queue_limit = "jobQueueLimit"
let threadpool_wall_limit_ms = "wallLimitMs"
let pool_jobs_done = "jobsDone"
let pool_jobs_failed = "jobsFailed"
let pool_jobs_shed = "jobsShed"
let pool_jobs_expired = "jobsExpired"
let pool_workers_stuck = "workersStuck"
let pool_workers_stuck_now = "workersStuckNow"
let server_clients_max = "nclients_max"
let server_clients_current = "nclients"
let server_clients_unauth_max = "nclients_unauth_max"
let server_clients_unauth_current = "nclients_unauth"
let client_info_readonly = "readonly"
let client_info_sock_addr = "sock_addr"
let client_info_x509_dname = "x509_dname"
let client_info_unix_user_id = "unix_user_id"
let client_info_unix_user_name = "unix_user_name"
let client_info_unix_group_id = "unix_group_id"
let client_info_unix_group_name = "unix_group_name"
let client_info_unix_process_id = "unix_process_id"
let event_rings = "nRings"
let event_emitted = "eventsEmitted"
let event_replayed = "eventsReplayed"
let event_gapped = "eventsGapped"
let event_resumes = "eventResumes"
let event_ring_occupancy = "ringOccupancy"
let event_ring_capacity = "ringCapacity"
let event_subscribers = "nSubscribers"
let event_head_seq = "headSeq"
let reply_cache_caches = "nCaches"
let reply_cache_hits = "replyCacheHits"
let reply_cache_misses = "replyCacheMisses"
let reply_cache_insertions = "replyCacheInsertions"
let reply_cache_invalidations = "replyCacheInvalidations"
let reply_cache_evictions = "replyCacheEvictions"
let reply_cache_patched_sends = "replyCachePatchedSends"
let reply_cache_entries = "replyCacheEntries"
let reply_cache_bytes = "replyCacheBytes"
let reply_cache_enabled = "replyCacheEnabled"

type client_entry = {
  client_id : int64;
  client_transport : int;
  connected_since : int64;
}

(* ------------------------------------------------------------------ *)
(* Body codecs                                                         *)
(* ------------------------------------------------------------------ *)

let enc_server_name name = Xdr.encode Xdr.enc_string name
let dec_server_name body = Xdr.decode Xdr.dec_string body

let enc_server_params ~server params =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e server;
      Ovrpc.Typed_params.encode e params)
    ()

let dec_server_params body =
  Xdr.decode
    (fun d ->
      let server = Xdr.dec_string d in
      let params = Ovrpc.Typed_params.decode d in
      (server, params))
    body

let enc_params params = Xdr.encode Ovrpc.Typed_params.encode params
let dec_params body = Xdr.decode Ovrpc.Typed_params.decode body

let enc_client_ref ~server ~id =
  Xdr.encode
    (fun e () ->
      Xdr.enc_string e server;
      Xdr.enc_uhyper e id)
    ()

let dec_client_ref body =
  Xdr.decode
    (fun d ->
      let server = Xdr.dec_string d in
      let id = Xdr.dec_uhyper d in
      (server, id))
    body

let enc_client_entry e entry =
  Xdr.enc_uhyper e entry.client_id;
  Xdr.enc_int e entry.client_transport;
  Xdr.enc_hyper e entry.connected_since

let dec_client_entry d =
  let client_id = Xdr.dec_uhyper d in
  let client_transport = Xdr.dec_int d in
  let connected_since = Xdr.dec_hyper d in
  { client_id; client_transport; connected_since }

let enc_client_list l = Xdr.encode (fun e -> Xdr.enc_array e enc_client_entry) l
let dec_client_list body = Xdr.decode (fun d -> Xdr.dec_array d dec_client_entry) body

let enc_uint_body n = Xdr.encode Xdr.enc_uint n
let dec_uint_body body = Xdr.decode Xdr.dec_uint body
let enc_hyper_body n = Xdr.encode Xdr.enc_hyper n
let dec_hyper_body body = Xdr.decode Xdr.dec_hyper body

(* v1.6: every fleet hosted by the daemon's process, each status encoded
   with the remote program's codec (one wire format for fleet health). *)
let enc_fleet_statuses l =
  Xdr.encode
    (fun e ->
      Xdr.enc_array e (fun e s ->
          Xdr.enc_string e (Remote_protocol.enc_fleet_status s)))
    l

let dec_fleet_statuses body =
  Xdr.decode
    (fun d ->
      Xdr.dec_array d (fun d -> Remote_protocol.dec_fleet_status (Xdr.dec_string d)))
    body
