(* The keepalive program, modelled on libvirt's virKeepAlive: its own
   program number (never colliding with REMOTE or ADMIN), two messages,
   empty bodies.  A PING is sent as a Call; the PONG is the Status_ok
   Reply to it.  Clients that stay silent are not probed by the daemon;
   like virsh, it is the client that measures the connection. *)

let program = 0x6b656570 (* "keep" *)
let version = 1
let proc_ping = 1
let proc_pong = 2

let default_interval_s = 5.0
let default_count = 5
