(** Daemon configuration: the persistent settings normally read from
    [ovirtd.conf] at startup.  Everything here has a runtime counterpart
    on the administration interface; this module is only the {e initial}
    state (the distinction the admin interface exists to fix).

    File syntax is the libvirtd.conf subset: [key = value] lines, [#]
    comments, integers or double-quoted strings. *)

type io_model =
  | Io_threaded  (** one reader thread per connection (classic accept loop) *)
  | Io_reactor
      (** readiness-driven: a few {!Reactor} threads multiplex every
          connection; decoded calls still dispatch on the workerpool *)

val io_model_name : io_model -> string
(** ["threaded"] / ["reactor"]. *)

val io_model_of_name : string -> (io_model, string) result

type t = {
  io_model : io_model;
      (** connection front end (default: [Io_reactor], overridable for a
          whole run with the [OVIRT_IO_MODEL] environment variable —
          ["threaded"] keeps the classic model as a baseline) *)
  reactor_threads : int;
      (** reactor loops to spread connections over (default 2) *)
  reactor_buf_kb : int;
      (** receive-buffer size per pooled buffer, KiB (default 16) *)
  reactor_pool_bufs : int;
      (** buffers retained in the shared pool (default 64) *)
  min_workers : int;
  max_workers : int;
  prio_workers : int;
  max_clients : int;
  max_anonymous_clients : int;  (** pending-auth connection cap *)
  admin_min_workers : int;
  admin_max_workers : int;
  admin_max_clients : int;
  log_level : Vlog.priority;
  log_filters : Vlog.filter list;
  log_outputs : Vlog.output list;
  proto_minor : int;
      (** protocol minor served on the remote program (default: this
          build's maximum); lowering it makes the daemon behave like an
          older release for version-negotiation testing *)
  event_ring : int;
      (** capacity of each per-node event replay ring backing v1.6
          resumable subscriptions (default 1024, minimum 1): a
          reconnecting client further behind than this receives a gap
          verdict and must resync *)
  reply_cache : int;
      (** server reply cache for hot read procedures: nonzero (default 1)
          enables it; 0 disables it daemon-wide (clients can also opt a
          single connection out with a [replycache=0] URI parameter) *)
  reply_cache_entries : int;
      (** LRU capacity of each per-node-URI reply cache (default 512,
          minimum 1) *)
  job_queue_limit : int;
      (** admission bound on the mgmt pool's normal-class job queue;
          0 (default) = unbounded.  Overflow is rejected with
          [Overloaded], never blocked on. *)
  wall_limit_ms : int;
      (** stuck-worker watchdog: jobs running longer than this are
          declared stuck, their worker retired and replaced; 0 (default)
          disables the watchdog *)
  journal_compact_factor : int;
      (** domain-store journal compaction trigger: rewrite when the
          record count exceeds [factor * live_domains + slack]
          (default 4) *)
  journal_compact_slack : int;  (** the additive slack term (default 16) *)
  reconcile_interval_ms : int;
      (** reconciler convergence-loop period (default 2000) *)
  parallel_shutdown : int;
      (** bound on lifecycle operations the reconciler applies
          concurrently — both the convergence loop and the drain-time
          shutdown pass (default 4) *)
  reconcile_diverged_after : int;
      (** consecutive per-domain failures before the reconciler reports
          the domain diverged (it keeps retrying under backoff either
          way; default 3) *)
}

val default : t
(** libvirtd's shipped defaults: 5/20 workers, 5 priority, 120 clients,
    20 anonymous, error level, journald-less stderr output. *)

val parse : string -> (t, string) result
(** Parse file contents over {!default}; unknown keys are errors (typos in
    a daemon config should not pass silently). *)

val to_file : t -> string
(** Render back in file syntax. *)
