(** The remote program's daemon-side implementation.

    Each client may hold one open hypervisor connection (established by
    [Proc_open] with a URI whose transport suffix the daemon strips before
    handing it to the in-process driver registry — the "daemon invokes the
    very same library call with a stateful driver" step).  Lifecycle
    events of that connection can be streamed back as [Event] packets
    after [Proc_event_register]. *)

val program :
  ?minor:int -> ?reconcile:Reconcile.t -> logger:Vlog.t -> unit -> Dispatch.program
(** [minor] caps the protocol minor this daemon serves (default: the
    build's {!Protocol.Remote_protocol.minor}); procedures newer than it
    are rejected as unknown, making the daemon indistinguishable from an
    older build — the lever version-negotiation tests pull.  [reconcile]
    is the daemon's policy reconciler; without it the v1.5 policy
    procedures answer [Operation_unsupported]. *)

val dispatch_ops :
  Ovirt_core.Driver.ops ->
  Protocol.Remote_protocol.procedure ->
  string ->
  (string, Ovirt_core.Verror.t) result
(** Run one connection-scoped procedure directly against an open [ops]
    handle — the same dispatch tail batch sub-calls use.  The daemon's
    reconciler applies its planned lifecycle operations through here, so
    a reconciled start/shutdown is byte-for-byte the RPC the client
    would have issued. *)
