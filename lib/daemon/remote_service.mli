(** The remote program's daemon-side implementation.

    Each client may hold one open hypervisor connection (established by
    [Proc_open] with a URI whose transport suffix the daemon strips before
    handing it to the in-process driver registry — the "daemon invokes the
    very same library call with a stateful driver" step).  Lifecycle
    events of that connection can be streamed back as [Event] packets
    after [Proc_event_register]. *)

type t
(** Service state: per-client connections plus the per-node event replay
    rings (v1.6 resumable streams). *)

type event_totals = {
  evt_rings : int;
  evt_emitted : int;
  evt_replayed : int;
  evt_gaps : int;
  evt_resumes : int;
  evt_occupancy : int;
  evt_capacity : int;
  evt_subscribers : int;
  evt_head : int;  (** highest stream position across rings *)
}

type cache_totals = {
  rct_caches : int;
  rct_hits : int;
  rct_misses : int;
  rct_insertions : int;
  rct_invalidations : int;
  rct_evictions : int;
  rct_patched_sends : int;
  rct_entries : int;
  rct_bytes : int;
  rct_enabled : bool;  (** the daemon-level [reply_cache] knob *)
}

val make :
  ?minor:int ->
  ?event_ring_capacity:int ->
  ?reply_cache:bool ->
  ?reply_cache_entries:int ->
  ?reconcile:Reconcile.t ->
  logger:Vlog.t ->
  unit ->
  t
(** [minor] caps the protocol minor this daemon serves (default: the
    build's {!Protocol.Remote_protocol.minor}); procedures newer than it
    are rejected as unknown, making the daemon indistinguishable from an
    older build — the lever version-negotiation tests pull.
    [event_ring_capacity] bounds each per-node replay ring (default
    1024).  [reply_cache] (default [true]) enables the server reply
    cache for hot read procedures — pre-framed replies keyed by
    (procedure, argument bytes), validated against the driver write
    generation, served from the receiving thread with only the serial
    word patched; [reply_cache_entries] (default 512) bounds each
    per-node-URI cache (LRU).  Clients can opt a single connection out
    with a [replycache=0] URI parameter.  [reconcile] is the daemon's
    policy reconciler; without it the v1.5 policy procedures answer
    [Operation_unsupported]. *)

val program_of : t -> Dispatch.program

val event_totals : t -> event_totals
(** Aggregated replay-ring counters, for the admin event-stats proc. *)

val reply_cache_totals : t -> cache_totals
(** Aggregated reply-cache counters across every per-URI cache, for the
    admin reply-cache-stats proc. *)

val program :
  ?minor:int ->
  ?event_ring_capacity:int ->
  ?reply_cache:bool ->
  ?reply_cache_entries:int ->
  ?reconcile:Reconcile.t ->
  logger:Vlog.t ->
  unit ->
  Dispatch.program
(** [make] + [program_of] for callers that don't need the stats handle. *)

val dispatch_ops :
  Ovirt_core.Driver.ops ->
  Protocol.Remote_protocol.procedure ->
  string ->
  (string, Ovirt_core.Verror.t) result
(** Run one connection-scoped procedure directly against an open [ops]
    handle — the same dispatch tail batch sub-calls use.  The daemon's
    reconciler applies its planned lifecycle operations through here, so
    a reconciled start/shutdown is byte-for-byte the RPC the client
    would have issued. *)
