(** The remote program's daemon-side implementation.

    Each client may hold one open hypervisor connection (established by
    [Proc_open] with a URI whose transport suffix the daemon strips before
    handing it to the in-process driver registry — the "daemon invokes the
    very same library call with a stateful driver" step).  Lifecycle
    events of that connection can be streamed back as [Event] packets
    after [Proc_event_register]. *)

val program : ?minor:int -> logger:Vlog.t -> unit -> Dispatch.program
(** [minor] caps the protocol minor this daemon serves (default: the
    build's {!Protocol.Remote_protocol.minor}); procedures newer than it
    are rejected as unknown, making the daemon indistinguishable from an
    older build — the lever version-negotiation tests pull. *)
