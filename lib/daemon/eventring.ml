(* Bounded, sequence-numbered replay ring for lifecycle events.

   One ring exists per driver node URI served by the daemon.  It taps the
   node's event bus once, for the daemon's lifetime, so events emitted
   while no client is connected are still captured and can be replayed
   when a client resumes.  Every captured event is stamped with a
   monotonically increasing stream position ([seq], from 1) and pushed to
   the ring's own subscribers tagged with that position.

   The correctness invariant the resume protocol rests on: stamping an
   event + snapshotting the subscriber list (in [append]) and computing a
   replay + arming a new subscriber (in [resume]) are both critical
   sections of the same mutex.  Any event is therefore either at most
   [head] at the resume snapshot — included in the replay, not pushed to
   the new subscriber — or newer — pushed, not replayed.  Exactly once at
   the boundary, with callbacks still run outside the lock. *)

open Ovirt_core

type stats = {
  er_capacity : int;
  er_occupancy : int;
  er_head : int;  (** newest seq assigned; 0 = nothing captured yet *)
  er_oldest : int;  (** lowest seq retained; head + 1 when empty *)
  er_emitted : int;
  er_replayed : int;
  er_gaps : int;
  er_resumes : int;
  er_subscribers : int;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  ring : Events.event Queue.t;  (* events carry their seq; oldest first *)
  mutable next_seq : int;
  mutable subscribers : (int * (Events.event -> unit)) list;
  mutable next_sub : int;
  mutable n_emitted : int;
  mutable n_replayed : int;
  mutable n_gaps : int;
  mutable n_resumes : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let append t (ev : Events.event) =
  let stamped, callbacks =
    with_lock t (fun () ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.n_emitted <- t.n_emitted + 1;
        let stamped = { ev with Events.seq } in
        Queue.push stamped t.ring;
        if Queue.length t.ring > t.capacity then ignore (Queue.pop t.ring);
        (stamped, List.map snd t.subscribers))
  in
  List.iter (fun f -> f stamped) callbacks

let create ~capacity ~bus =
  let t =
    {
      mutex = Mutex.create ();
      capacity = max 1 capacity;
      ring = Queue.create ();
      next_seq = 1;
      subscribers = [];
      next_sub = 0;
      n_emitted = 0;
      n_replayed = 0;
      n_gaps = 0;
      n_resumes = 0;
    }
  in
  (* Never unsubscribed: the ring must keep capturing while clients are
     away — that is the whole point. *)
  ignore (Events.subscribe bus (fun ev -> append t ev) : Events.subscription);
  t

(* Resume-or-subscribe: arms [push] as a subscriber and, in the same
   critical section, computes what the client missed.  [last_seq = -1]
   means fresh subscription (no replay).  On a gap the subscriber is
   still armed — the caller flushes its caches up to [rr_head] and the
   live stream covers everything after. *)
let resume t ~last_seq push =
  with_lock t (fun () ->
      let id = t.next_sub in
      t.next_sub <- id + 1;
      t.subscribers <- t.subscribers @ [ (id, push) ];
      t.n_resumes <- t.n_resumes + 1;
      let head = t.next_seq - 1 in
      let oldest = t.next_seq - Queue.length t.ring in
      let reply =
        if last_seq < 0 then
          Protocol.Remote_protocol.
            { rr_gap = false; rr_head = head; rr_oldest = oldest; rr_events = [] }
        else if last_seq > head || last_seq < oldest - 1 then begin
          (* Position from a previous daemon incarnation, or the ring
             wrapped past it: the client must resync. *)
          t.n_gaps <- t.n_gaps + 1;
          Protocol.Remote_protocol.
            { rr_gap = true; rr_head = head; rr_oldest = oldest; rr_events = [] }
        end
        else begin
          let missed =
            Queue.fold
              (fun acc ev -> if ev.Events.seq > last_seq then ev :: acc else acc)
              [] t.ring
            |> List.rev
          in
          t.n_replayed <- t.n_replayed + List.length missed;
          Protocol.Remote_protocol.
            { rr_gap = false; rr_head = head; rr_oldest = oldest; rr_events = missed }
        end
      in
      (id, reply))

let unsubscribe t id =
  with_lock t (fun () ->
      t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers)

let stats t =
  with_lock t (fun () ->
      {
        er_capacity = t.capacity;
        er_occupancy = Queue.length t.ring;
        er_head = t.next_seq - 1;
        er_oldest = t.next_seq - Queue.length t.ring;
        er_emitted = t.n_emitted;
        er_replayed = t.n_replayed;
        er_gaps = t.n_gaps;
        er_resumes = t.n_resumes;
        er_subscribers = List.length t.subscribers;
      })
