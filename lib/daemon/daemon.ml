(* The connection front end: [Threaded] spawns one reader thread per
   accepted connection (the classic accept loop); [Reactor_fe] spreads
   every connection over a small fixed set of readiness-driven loops
   which share one receive-buffer pool.  Decoded calls dispatch on the
   workerpools identically in both. *)
type frontend =
  | Threaded
  | Reactor_fe of {
      reactors : Ovreactor.Reactor.t array;
      bufpool : Ovreactor.Bufpool.t;
      next : int Atomic.t; (* round-robin connection placement *)
    }

type t = {
  name : string;
  logger : Vlog.t;
  servers : (string * Server_obj.t) list;
  listeners : Ovnet.Netsim.listener list;
  frontend : frontend;
  started_at : float;
  reconciler : Reconcile.t;
  recon_conns : (string, Ovirt_core.Driver.ops) Hashtbl.t;
  recon_conns_mutex : Mutex.t;
  (* Lifecycle flags are only touched under [lifecycle]: stop and drain
     race from different threads (tests tear down while the admin drain
     thread runs) and must not double-close listeners or shut a pool down
     twice. *)
  lifecycle : Mutex.t;
  lifecycle_cv : Condition.t;
  mutable stopped : bool;
  mutable draining : bool;
  mutable drain_thread : Thread.t option;
      (* background drain in flight (admin-triggered); [stop] joins it so
         the drain thread never outlives the daemon's teardown *)
}

let mgmt_address_of name = name ^ "-sock"
let admin_address_of name = name ^ "-admin-sock"

let with_lifecycle daemon f =
  Mutex.lock daemon.lifecycle;
  Fun.protect ~finally:(fun () -> Mutex.unlock daemon.lifecycle) f

(* Assumes [lifecycle] is held. *)
let stop_locked daemon =
  if not daemon.stopped then begin
    daemon.stopped <- true;
    Reconcile.stop daemon.reconciler;
    Mutex.lock daemon.recon_conns_mutex;
    Hashtbl.iter
      (fun _ ops -> try ops.Ovirt_core.Driver.close () with _ -> ())
      daemon.recon_conns;
    Hashtbl.reset daemon.recon_conns;
    Mutex.unlock daemon.recon_conns_mutex;
    List.iter Ovnet.Netsim.close_listener daemon.listeners;
    List.iter
      (fun (_, srv) ->
        Server_obj.close_all_clients srv;
        Threadpool.shutdown (Server_obj.pool srv))
      daemon.servers;
    (match daemon.frontend with
     | Threaded -> ()
     | Reactor_fe { reactors; _ } ->
       Array.iter Ovreactor.Reactor.stop reactors);
    Vlog.logf daemon.logger ~module_:"daemon" Vlog.Info "daemon %s stopped"
      daemon.name
  end

(* A stop issued while a drain is running waits for the drain to finish
   (which itself ends in a stop), so stop keeps its synchronous meaning:
   when it returns, the daemon is down — including the background drain
   thread, which is joined (not abandoned) once draining clears. *)
let stop daemon =
  let drain_thread =
    with_lifecycle daemon (fun () ->
        while daemon.draining do
          Condition.wait daemon.lifecycle_cv daemon.lifecycle
        done;
        stop_locked daemon;
        let t = daemon.drain_thread in
        daemon.drain_thread <- None;
        t)
  in
  match drain_thread with
  | Some th when Thread.id th <> Thread.id (Thread.self ()) -> Thread.join th
  | Some _ | None -> ()

(* Simulated crash: tear down immediately, never waiting for a drain —
   in-flight work is abandoned exactly as a SIGKILL would leave it.  The
   in-memory driver state dies with the process; only what lives in
   [Persist.Media] and the hypervisor sims survives for recovery. *)
let kill daemon =
  Vlog.logf daemon.logger ~module_:"daemon" Vlog.Warn "daemon %s killed"
    daemon.name;
  with_lifecycle daemon (fun () -> stop_locked daemon)

(* Graceful shutdown: stop accepting (listeners closed, servers marked
   draining so the dispatcher refuses new calls), let every queued and
   in-flight dispatch finish, then tear down.  Only one thread gets to
   run the drain; the blocking waits happen outside the mutex. *)
let drain_impl daemon =
  let claimed =
    with_lifecycle daemon (fun () ->
        if daemon.stopped || daemon.draining then false
        else begin
          daemon.draining <- true;
          true
        end)
  in
  if claimed then begin
    Vlog.logf daemon.logger ~module_:"daemon" Vlog.Info "daemon %s draining"
      daemon.name;
    List.iter Ovnet.Netsim.close_listener daemon.listeners;
    List.iter (fun (_, srv) -> Server_obj.set_draining srv true) daemon.servers;
    (* Stop the convergence loop, then honor each spec's [on_shutdown]:
       suspend/shutdown running guests bounded by parallel_shutdown.
       These ops go through the direct dispatch path, not the (now
       draining) mgmt pool. *)
    Reconcile.stop daemon.reconciler;
    Reconcile.shutdown_pass daemon.reconciler;
    List.iter
      (fun (_, srv) -> Threadpool.drain (Server_obj.pool srv))
      daemon.servers;
    with_lifecycle daemon (fun () ->
        stop_locked daemon;
        daemon.draining <- false;
        Condition.broadcast daemon.lifecycle_cv)
  end

(* The admin program's drain: runs in the background (a synchronous
   Threadpool.drain would deadlock waiting for the very admin job that
   requested it), but the thread handle is kept so [stop] can join it. *)
let drain_background daemon =
  with_lifecycle daemon (fun () ->
      if not (daemon.stopped || daemon.draining) then
        match daemon.drain_thread with
        | Some _ -> ()
        | None ->
          daemon.drain_thread <-
            Some (Thread.create (fun () -> drain_impl daemon) ()))

let start ?(name = "ovirtd") ?(config = Daemon_config.default) () =
  let logger =
    Vlog.create ~level:config.Daemon_config.log_level
      ~filters:config.Daemon_config.log_filters
      ~outputs:config.Daemon_config.log_outputs ()
  in
  (* Driver code learns about per-call deadlines through the request
     context; install it before any dispatch can run. *)
  Reqctx.install ();
  Drivers.Domstore.set_compaction
    ~factor:config.Daemon_config.journal_compact_factor
    ~slack:config.Daemon_config.journal_compact_slack;
  (* Autostart boots run outside any RPC dispatch, so no deadline rides
     on the thread; give them the same wall-clock budget dispatched jobs
     get from the stuck-worker watchdog. *)
  let wall_budget f =
    if config.Daemon_config.wall_limit_ms <= 0 then f ()
    else
      Reqctx.with_deadline
        (Some
           (Unix.gettimeofday ()
           +. (float_of_int config.Daemon_config.wall_limit_ms /. 1000.)))
        f
  in
  Drivers.Drvnode.set_start_budget_hook wall_budget;
  let recon_conns = Hashtbl.create 8 in
  let recon_conns_mutex = Mutex.create () in
  (* The reconciler's private driver handles, one per distinct spec URI,
     opened exactly as [Proc_open] would (the URIs it sees are already
     transport-stripped). *)
  let recon_ops uri_string =
    Mutex.lock recon_conns_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock recon_conns_mutex)
      (fun () ->
        match Hashtbl.find_opt recon_conns uri_string with
        | Some ops -> Ok ops
        | None ->
          Result.bind (Ovirt_core.Vuri.parse uri_string) (fun uri ->
              Result.map
                (fun ops ->
                  Hashtbl.replace recon_conns uri_string ops;
                  ops)
                (Ovirt_core.Driver.open_uri
                   { uri with Ovirt_core.Vuri.transport = None })))
  in
  let reconcile_io =
    {
      Reconcile.io_actual =
        (fun uri ->
          Result.bind (recon_ops uri) (fun ops ->
              Result.map
                (List.map (fun r ->
                     ( r.Ovirt_core.Driver.rec_ref.Ovirt_core.Driver.dom_name,
                       r.Ovirt_core.Driver.rec_info.Ovirt_core.Driver.di_state )))
                (Ovirt_core.Driver.list_all ops)));
      io_state =
        (fun uri name ->
          Result.bind (recon_ops uri) (fun ops ->
              match ops.Ovirt_core.Driver.dom_get_info name with
              | Ok info -> Ok (Some info.Ovirt_core.Driver.di_state)
              | Error { Ovirt_core.Verror.code = Ovirt_core.Verror.No_domain; _ }
                -> Ok None
              | Error e -> Error e));
      io_apply =
        (fun uri op ->
          let module Rp = Protocol.Remote_protocol in
          Result.bind (recon_ops uri) (fun ops ->
              let proc =
                match op.Reconcile.op_kind with
                | Reconcile.Op_start -> Rp.Proc_dom_create
                | Reconcile.Op_resume -> Rp.Proc_dom_resume
                | Reconcile.Op_shutdown -> Rp.Proc_dom_shutdown
                | Reconcile.Op_save -> Rp.Proc_dom_save
              in
              let body = Rp.enc_string_body op.Reconcile.op_name in
              (* Same dispatch tail a batch sub-call takes, under the
                 same per-op wall-clock budget. *)
              Result.map
                (fun (_ : string) -> ())
                (wall_budget (fun () ->
                     Remote_service.dispatch_ops ops proc body))));
      io_log =
        (fun msg ->
          Vlog.logf logger ~module_:"daemon.reconcile" Vlog.Info "%s" msg);
    }
  in
  let reconciler =
    Reconcile.create
      ~journal_path:("/var/lib/ovirt/reconcile/" ^ name ^ ".journal")
      ~io:reconcile_io
      ~config:
        {
          Reconcile.rcfg_interval_s =
            float_of_int config.Daemon_config.reconcile_interval_ms /. 1000.;
          rcfg_parallel = config.Daemon_config.parallel_shutdown;
          rcfg_diverged_after = config.Daemon_config.reconcile_diverged_after;
          rcfg_backoff_base_s = Reconcile.default_config.Reconcile.rcfg_backoff_base_s;
          rcfg_backoff_cap_s = Reconcile.default_config.Reconcile.rcfg_backoff_cap_s;
          rcfg_compact_factor = config.Daemon_config.journal_compact_factor;
          rcfg_compact_slack = config.Daemon_config.journal_compact_slack;
        }
      ()
  in
  let mgmt_server =
    Server_obj.create ~name:"libvirtd" ~logger
      ~job_queue_limit:config.Daemon_config.job_queue_limit
      ~wall_limit_ms:config.Daemon_config.wall_limit_ms
      ~min_workers:config.Daemon_config.min_workers
      ~max_workers:config.Daemon_config.max_workers
      ~prio_workers:config.Daemon_config.prio_workers
      ~limits:
        {
          Server_obj.max_clients = config.Daemon_config.max_clients;
          max_anonymous = config.Daemon_config.max_anonymous_clients;
        }
      ()
  in
  let admin_server =
    Server_obj.create ~name:"admin" ~logger
      ~min_workers:config.Daemon_config.admin_min_workers
      ~max_workers:config.Daemon_config.admin_max_workers ~prio_workers:1
      ~limits:
        {
          Server_obj.max_clients = config.Daemon_config.admin_max_clients;
          max_anonymous = config.Daemon_config.admin_max_clients;
        }
      ()
  in
  let servers = [ ("libvirtd", mgmt_server); ("admin", admin_server) ] in
  let started_at = Unix.gettimeofday () in
  let remote_service =
    Remote_service.make ~minor:config.Daemon_config.proto_minor
      ~event_ring_capacity:config.Daemon_config.event_ring
      ~reply_cache:(config.Daemon_config.reply_cache <> 0)
      ~reply_cache_entries:config.Daemon_config.reply_cache_entries
      ~reconcile:reconciler ~logger ()
  in
  let remote_program = Remote_service.program_of remote_service in
  (* The admin program needs to trigger a drain of the daemon that hosts
     it; the daemon record does not exist yet, so route through a
     forward reference filled in below. *)
  let self = ref None in
  let admin_program =
    Admin_service.program
      {
        Admin_service.view_servers = (fun () -> servers);
        view_logger = logger;
        view_started_at = started_at;
        view_drain =
          (fun () ->
            match !self with
            | None -> ()
            | Some daemon -> drain_background daemon);
        view_reconcile = (fun () -> Some reconciler);
        view_event_totals = (fun () -> Remote_service.event_totals remote_service);
        view_reply_cache_totals =
          (fun () -> Remote_service.reply_cache_totals remote_service);
      }
  in
  let mgmt_programs = [ remote_program; Dispatch.keepalive_program ] in
  let admin_programs = [ admin_program; Dispatch.keepalive_program ] in
  (* Admin is root-only: refuse non-root unix peers and any remote
     transport, mirroring the admin socket's 0700 permissions. *)
  let admin_authorized conn =
    match Ovnet.Transport.peer conn with
    | Ovnet.Transport.Local id when id.Ovnet.Transport.uid = 0 -> true
    | Ovnet.Transport.Local _ | Ovnet.Transport.Remote _ ->
      Vlog.logf logger ~module_:"daemon.admin" Vlog.Warn
        "refusing non-root connection to admin socket";
      false
  in
  let frontend =
    match config.Daemon_config.io_model with
    | Daemon_config.Io_threaded -> Threaded
    | Daemon_config.Io_reactor ->
      let n = max 1 config.Daemon_config.reactor_threads in
      Reactor_fe
        {
          reactors =
            Array.init n (fun i ->
                Ovreactor.Reactor.create
                  ~name:(Printf.sprintf "%s-reactor-%d" name i) ());
          bufpool =
            Ovreactor.Bufpool.create
              ~buf_size:(1024 * max 1 config.Daemon_config.reactor_buf_kb)
              ~max_pooled:config.Daemon_config.reactor_pool_bufs;
          next = Atomic.make 0;
        }
  in
  let mgmt_listener, admin_listener =
    match frontend with
    | Threaded ->
      ( Ovnet.Netsim.listen (mgmt_address_of name) (fun conn ->
            Dispatch.attach_client mgmt_server mgmt_programs conn),
        Ovnet.Netsim.listen (admin_address_of name) (fun conn ->
            if admin_authorized conn then
              Dispatch.attach_client admin_server admin_programs conn
            else Ovnet.Transport.close conn) )
    | Reactor_fe { reactors; bufpool; next } ->
      (* Connections are spread round-robin over the reactor loops; the
         sink only registers the endpoint and returns, so accepting is
         O(1) with no thread spawned. *)
      let pick () =
        reactors.(Atomic.fetch_and_add next 1 mod Array.length reactors)
      in
      ( Ovnet.Netsim.listen_direct (mgmt_address_of name) (fun ~kind ep ->
            Dispatch.attach_endpoint mgmt_server mgmt_programs
              ~reactor:(pick ()) ~pool:bufpool ~kind ep),
        Ovnet.Netsim.listen_direct (admin_address_of name) (fun ~kind ep ->
            Dispatch.attach_endpoint admin_server admin_programs
              ~reactor:(pick ()) ~pool:bufpool ~authorize:admin_authorized
              ~kind ep) )
  in
  Vlog.logf logger ~module_:"daemon" Vlog.Info "daemon %s started (io_model=%s)"
    name
    (Daemon_config.io_model_name config.Daemon_config.io_model);
  let daemon =
    {
      name;
      logger;
      servers;
      listeners = [ mgmt_listener; admin_listener ];
      frontend;
      started_at;
      reconciler;
      recon_conns;
      recon_conns_mutex;
      lifecycle = Mutex.create ();
      lifecycle_cv = Condition.create ();
      stopped = false;
      draining = false;
      drain_thread = None;
    }
  in
  self := Some daemon;
  Reconcile.start reconciler;
  daemon

let drain = drain_impl

let io_model daemon =
  match daemon.frontend with
  | Threaded -> Daemon_config.Io_threaded
  | Reactor_fe _ -> Daemon_config.Io_reactor

let reactors daemon =
  match daemon.frontend with
  | Threaded -> [||]
  | Reactor_fe { reactors; _ } -> reactors

let buffer_pool daemon =
  match daemon.frontend with
  | Threaded -> None
  | Reactor_fe { bufpool; _ } -> Some bufpool

let name daemon = daemon.name
let mgmt_address daemon = mgmt_address_of daemon.name
let admin_address daemon = admin_address_of daemon.name
let logger daemon = daemon.logger
let servers daemon = daemon.servers
let find_server daemon name = List.assoc_opt name daemon.servers
let uptime_s daemon = Unix.gettimeofday () -. daemon.started_at
let reconciler daemon = daemon.reconciler
