(** Server object: one named server inside the daemon.

    Owns a workerpool, a client table with limits, and the services bound
    to transports.  The daemon hosts two: ["libvirtd"] (the hypervisor
    program) and ["admin"] (the administration program) — the structure
    the administration interface introspects. *)

type t

type client_limits = {
  max_clients : int;
  max_anonymous : int;  (** connected but not yet authenticated *)
}

val create :
  name:string ->
  logger:Vlog.t ->
  ?job_queue_limit:int ->
  ?wall_limit_ms:int ->
  min_workers:int ->
  max_workers:int ->
  prio_workers:int ->
  limits:client_limits ->
  unit ->
  t
(** [job_queue_limit] and [wall_limit_ms] (both default 0 = disabled)
    seed the pool's admission bound and stuck-worker watchdog; see
    {!Threadpool.create}. *)

val name : t -> string
val pool : t -> Threadpool.t
val logger : t -> Vlog.t

val accept_client : t -> Ovnet.Transport.t -> (Client_obj.t, Ovirt_core.Verror.t) result
(** Registers a fresh client, enforcing both limits ([Resource_exhausted]
    on refusal, after which the connection is closed).  A draining server
    refuses every new client ([Operation_invalid]).  O(1) in the number
    of connected clients: the limit checks read maintained counters
    instead of recounting the table, so a connect storm costs linear
    rather than quadratic work. *)

val note_authenticated : t -> Client_obj.t -> unit
(** Mark a client authenticated (any successfully processed non-keepalive
    call), keeping the server's unauthenticated-client count in step. *)

val set_draining : t -> bool -> unit
(** Draining servers accept no new clients; connected clients get error
    replies for new calls (keepalive pings excepted) while in-flight
    dispatches finish. *)

val is_draining : t -> bool

val remove_client : t -> int64 -> unit
val find_client : t -> int64 -> (Client_obj.t, Ovirt_core.Verror.t) result
val list_clients : t -> Client_obj.t list
(** Ascending id. *)

val client_counts : t -> int * int
(** (total connected, of which unauthenticated). *)

val limits : t -> client_limits
val set_limits : t -> ?max_clients:int -> ?max_anonymous:int -> unit -> (unit, Ovirt_core.Verror.t) result

val close_all_clients : t -> unit
