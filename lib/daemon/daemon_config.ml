type io_model = Io_threaded | Io_reactor

let io_model_name = function Io_threaded -> "threaded" | Io_reactor -> "reactor"

let io_model_of_name = function
  | "threaded" -> Ok Io_threaded
  | "reactor" -> Ok Io_reactor
  | s -> Error (Printf.sprintf "io_model: unknown model %S (threaded|reactor)" s)

(* The suite runs once per io_model in CI; the env override flips the
   whole default without touching every test's config literal. *)
let default_io_model =
  match Sys.getenv_opt "OVIRT_IO_MODEL" with
  | Some s ->
    (match io_model_of_name (String.trim s) with
     | Ok m -> m
     | Error _ -> Io_reactor)
  | None -> Io_reactor

(* Same idea for the server reply cache: CI re-runs smokes with the
   cache force-disabled to prove it never changes observable behaviour. *)
let default_reply_cache =
  match Sys.getenv_opt "OVIRT_REPLY_CACHE" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some n -> n | None -> 1)
  | None -> 1

type t = {
  io_model : io_model;
  reactor_threads : int;
  reactor_buf_kb : int;
  reactor_pool_bufs : int;
  min_workers : int;
  max_workers : int;
  prio_workers : int;
  max_clients : int;
  max_anonymous_clients : int;
  admin_min_workers : int;
  admin_max_workers : int;
  admin_max_clients : int;
  log_level : Vlog.priority;
  log_filters : Vlog.filter list;
  log_outputs : Vlog.output list;
  proto_minor : int;
  event_ring : int;
  reply_cache : int;
  reply_cache_entries : int;
  job_queue_limit : int;
  wall_limit_ms : int;
  journal_compact_factor : int;
  journal_compact_slack : int;
  reconcile_interval_ms : int;
  parallel_shutdown : int;
  reconcile_diverged_after : int;
}

let default =
  {
    io_model = default_io_model;
    reactor_threads = 2;
    reactor_buf_kb = 16;
    reactor_pool_bufs = 64;
    min_workers = 5;
    max_workers = 20;
    prio_workers = 5;
    max_clients = 120;
    max_anonymous_clients = 20;
    admin_min_workers = 1;
    admin_max_workers = 5;
    admin_max_clients = 5;
    log_level = Vlog.Error;
    log_filters = [];
    log_outputs = [ { Vlog.min_priority = Vlog.Debug; sink = Vlog.Stderr } ];
    proto_minor = Protocol.Remote_protocol.minor;
    event_ring = 1024;
    reply_cache = default_reply_cache;
    reply_cache_entries = 512;
    job_queue_limit = 0;
    wall_limit_ms = 0;
    journal_compact_factor = 4;
    journal_compact_slack = 16;
    reconcile_interval_ms = 2000;
    parallel_shutdown = 4;
    reconcile_diverged_after = 3;
  }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type raw_value = V_int of int | V_string of string

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "line %d: expected 'key = value'" lineno)
    | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if key = "" then Error (Printf.sprintf "line %d: empty key" lineno)
      else if String.length value >= 2 && value.[0] = '"' then
        if value.[String.length value - 1] = '"' then
          Ok (Some (key, V_string (String.sub value 1 (String.length value - 2))))
        else Error (Printf.sprintf "line %d: unterminated string" lineno)
      else
        (match int_of_string_opt value with
         | Some n -> Ok (Some (key, V_int n))
         | None -> Error (Printf.sprintf "line %d: bad value %S" lineno value))

let ( let* ) = Result.bind

let want_int key = function
  | V_int n when n >= 0 -> Ok n
  | V_int _ -> Error (Printf.sprintf "%s: must be non-negative" key)
  | V_string _ -> Error (Printf.sprintf "%s: expected an integer" key)

let want_string key = function
  | V_string s -> Ok s
  | V_int _ -> Error (Printf.sprintf "%s: expected a quoted string" key)

let apply cfg key value =
  match key with
  | "io_model" ->
    let* s = want_string key value in
    let* m = io_model_of_name s in
    Ok { cfg with io_model = m }
  | "reactor_threads" ->
    let* n = want_int key value in
    if n < 1 then Error "reactor_threads: must be at least 1"
    else Ok { cfg with reactor_threads = n }
  | "reactor_buf_kb" ->
    let* n = want_int key value in
    if n < 1 then Error "reactor_buf_kb: must be at least 1"
    else Ok { cfg with reactor_buf_kb = n }
  | "reactor_pool_bufs" ->
    let* n = want_int key value in
    Ok { cfg with reactor_pool_bufs = n }
  | "min_workers" ->
    let* n = want_int key value in
    Ok { cfg with min_workers = n }
  | "max_workers" ->
    let* n = want_int key value in
    Ok { cfg with max_workers = n }
  | "prio_workers" ->
    let* n = want_int key value in
    Ok { cfg with prio_workers = n }
  | "max_clients" ->
    let* n = want_int key value in
    Ok { cfg with max_clients = n }
  | "max_anonymous_clients" ->
    let* n = want_int key value in
    Ok { cfg with max_anonymous_clients = n }
  | "admin_min_workers" ->
    let* n = want_int key value in
    Ok { cfg with admin_min_workers = n }
  | "admin_max_workers" ->
    let* n = want_int key value in
    Ok { cfg with admin_max_workers = n }
  | "admin_max_clients" ->
    let* n = want_int key value in
    Ok { cfg with admin_max_clients = n }
  | "log_level" ->
    let* n = want_int key value in
    let* level = Vlog.priority_of_int n in
    Ok { cfg with log_level = level }
  | "log_filters" ->
    let* s = want_string key value in
    let* filters = Vlog.parse_filters s in
    Ok { cfg with log_filters = filters }
  | "log_outputs" ->
    let* s = want_string key value in
    let* outputs = Vlog.parse_outputs s in
    Ok { cfg with log_outputs = outputs }
  | "proto_minor" ->
    let* n = want_int key value in
    if n > Protocol.Remote_protocol.minor then
      Error
        (Printf.sprintf "proto_minor: this build speaks at most %d"
           Protocol.Remote_protocol.minor)
    else Ok { cfg with proto_minor = n }
  | "event_ring" ->
    let* n = want_int key value in
    if n < 1 then Error "event_ring: must be at least 1"
    else Ok { cfg with event_ring = n }
  | "reply_cache" ->
    let* n = want_int key value in
    Ok { cfg with reply_cache = n }
  | "reply_cache_entries" ->
    let* n = want_int key value in
    if n < 1 then Error "reply_cache_entries: must be at least 1"
    else Ok { cfg with reply_cache_entries = n }
  | "job_queue_limit" ->
    let* n = want_int key value in
    Ok { cfg with job_queue_limit = n }
  | "wall_limit_ms" ->
    let* n = want_int key value in
    Ok { cfg with wall_limit_ms = n }
  | "journal_compact_factor" ->
    let* n = want_int key value in
    if n < 1 then Error "journal_compact_factor: must be at least 1"
    else Ok { cfg with journal_compact_factor = n }
  | "journal_compact_slack" ->
    let* n = want_int key value in
    Ok { cfg with journal_compact_slack = n }
  | "reconcile_interval_ms" ->
    let* n = want_int key value in
    Ok { cfg with reconcile_interval_ms = n }
  | "parallel_shutdown" ->
    let* n = want_int key value in
    if n < 1 then Error "parallel_shutdown: must be at least 1"
    else Ok { cfg with parallel_shutdown = n }
  | "reconcile_diverged_after" ->
    let* n = want_int key value in
    if n < 1 then Error "reconcile_diverged_after: must be at least 1"
    else Ok { cfg with reconcile_diverged_after = n }
  | key -> Error (Printf.sprintf "unknown configuration key %S" key)

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go cfg lineno = function
    | [] -> Ok cfg
    | line :: rest ->
      let* parsed = parse_line lineno line in
      (match parsed with
       | None -> go cfg (lineno + 1) rest
       | Some (key, value) ->
         let* cfg = apply cfg key value in
         go cfg (lineno + 1) rest)
  in
  go default 1 lines

let to_file cfg =
  String.concat "\n"
    [
      Printf.sprintf "io_model = \"%s\"" (io_model_name cfg.io_model);
      Printf.sprintf "reactor_threads = %d" cfg.reactor_threads;
      Printf.sprintf "reactor_buf_kb = %d" cfg.reactor_buf_kb;
      Printf.sprintf "reactor_pool_bufs = %d" cfg.reactor_pool_bufs;
      Printf.sprintf "min_workers = %d" cfg.min_workers;
      Printf.sprintf "max_workers = %d" cfg.max_workers;
      Printf.sprintf "prio_workers = %d" cfg.prio_workers;
      Printf.sprintf "max_clients = %d" cfg.max_clients;
      Printf.sprintf "max_anonymous_clients = %d" cfg.max_anonymous_clients;
      Printf.sprintf "admin_min_workers = %d" cfg.admin_min_workers;
      Printf.sprintf "admin_max_workers = %d" cfg.admin_max_workers;
      Printf.sprintf "admin_max_clients = %d" cfg.admin_max_clients;
      Printf.sprintf "log_level = %d" (Vlog.priority_to_int cfg.log_level);
      Printf.sprintf "log_filters = \"%s\"" (Vlog.format_filters cfg.log_filters);
      Printf.sprintf "log_outputs = \"%s\"" (Vlog.format_outputs cfg.log_outputs);
      Printf.sprintf "proto_minor = %d" cfg.proto_minor;
      Printf.sprintf "event_ring = %d" cfg.event_ring;
      Printf.sprintf "reply_cache = %d" cfg.reply_cache;
      Printf.sprintf "reply_cache_entries = %d" cfg.reply_cache_entries;
      Printf.sprintf "job_queue_limit = %d" cfg.job_queue_limit;
      Printf.sprintf "wall_limit_ms = %d" cfg.wall_limit_ms;
      Printf.sprintf "journal_compact_factor = %d" cfg.journal_compact_factor;
      Printf.sprintf "journal_compact_slack = %d" cfg.journal_compact_slack;
      Printf.sprintf "reconcile_interval_ms = %d" cfg.reconcile_interval_ms;
      Printf.sprintf "parallel_shutdown = %d" cfg.parallel_shutdown;
      Printf.sprintf "reconcile_diverged_after = %d" cfg.reconcile_diverged_after;
      "";
    ]
