module Verror = Ovirt_core.Verror
module Ap = Protocol.Admin_protocol
module Tp = Ovrpc.Typed_params
module Rpc_packet = Ovrpc.Rpc_packet

type daemon_view = {
  view_servers : unit -> (string * Server_obj.t) list;
  view_logger : Vlog.t;
  view_started_at : float;
  view_drain : unit -> unit;
  view_reconcile : unit -> Reconcile.t option;
  view_event_totals : unit -> Remote_service.event_totals;
  view_reply_cache_totals : unit -> Remote_service.cache_totals;
}

let ( let* ) = Result.bind

let find_server view name =
  match List.assoc_opt name (view.view_servers ()) with
  | Some srv -> Ok srv
  | None -> Verror.error Verror.No_server "no server named %S" name

(* Reject unknown and read-only fields on setters: silently ignoring a
   typo'd tunable is how misconfigurations survive. *)
let check_fields ~writable ~readonly params =
  let rec go = function
    | [] -> Ok ()
    | (field, _) :: rest ->
      if List.mem field writable then go rest
      else if List.mem field readonly then
        Verror.error Verror.Invalid_arg "field %S is read-only" field
      else Verror.error Verror.Invalid_arg "unknown field %S" field
  in
  go params

let threadpool_params srv =
  let stats = Threadpool.stats (Server_obj.pool srv) in
  [
    Tp.uint Ap.threadpool_workers_min stats.Threadpool.min_workers;
    Tp.uint Ap.threadpool_workers_max stats.Threadpool.max_workers;
    Tp.uint Ap.threadpool_workers_current stats.Threadpool.n_workers;
    Tp.uint Ap.threadpool_workers_free stats.Threadpool.free_workers;
    Tp.uint Ap.threadpool_workers_priority stats.Threadpool.prio_workers;
    Tp.uint Ap.threadpool_job_queue_depth stats.Threadpool.job_queue_depth;
    Tp.uint Ap.threadpool_job_queue_limit stats.Threadpool.job_queue_limit;
    Tp.uint Ap.threadpool_wall_limit_ms stats.Threadpool.wall_limit_ms;
  ]

let pool_stats_params srv =
  let stats = Threadpool.stats (Server_obj.pool srv) in
  [
    Tp.uint Ap.pool_jobs_done stats.Threadpool.jobs_completed;
    Tp.uint Ap.pool_jobs_failed stats.Threadpool.jobs_failed;
    Tp.uint Ap.pool_jobs_shed stats.Threadpool.jobs_shed;
    Tp.uint Ap.pool_jobs_expired stats.Threadpool.jobs_expired;
    Tp.uint Ap.pool_workers_stuck stats.Threadpool.workers_stuck;
    Tp.uint Ap.pool_workers_stuck_now stats.Threadpool.workers_stuck_now;
    Tp.uint Ap.threadpool_job_queue_depth stats.Threadpool.job_queue_depth;
    Tp.uint Ap.threadpool_job_queue_limit stats.Threadpool.job_queue_limit;
    Tp.uint Ap.threadpool_wall_limit_ms stats.Threadpool.wall_limit_ms;
  ]

let set_threadpool srv params =
  let* () =
    check_fields
      ~writable:
        [
          Ap.threadpool_workers_min; Ap.threadpool_workers_max;
          Ap.threadpool_workers_priority; Ap.threadpool_job_queue_limit;
          Ap.threadpool_wall_limit_ms;
        ]
      ~readonly:
        [
          Ap.threadpool_workers_free; Ap.threadpool_workers_current;
          Ap.threadpool_job_queue_depth;
        ]
      params
  in
  let min_workers = Tp.find_uint params Ap.threadpool_workers_min in
  let max_workers = Tp.find_uint params Ap.threadpool_workers_max in
  let prio_workers = Tp.find_uint params Ap.threadpool_workers_priority in
  let job_queue_limit = Tp.find_uint params Ap.threadpool_job_queue_limit in
  let wall_limit_ms = Tp.find_uint params Ap.threadpool_wall_limit_ms in
  if
    min_workers = None && max_workers = None && prio_workers = None
    && job_queue_limit = None && wall_limit_ms = None
  then Verror.error Verror.Invalid_arg "no tunable fields supplied"
  else
    match
      Threadpool.set_limits (Server_obj.pool srv) ?min_workers ?max_workers
        ?prio_workers ?job_queue_limit ?wall_limit_ms ()
    with
    | () -> Ok ()
    | exception Threadpool.Invalid_limits msg ->
      Error (Verror.make Verror.Invalid_arg msg)

let client_limit_params srv =
  let limits = Server_obj.limits srv in
  let total, unauth = Server_obj.client_counts srv in
  [
    Tp.uint Ap.server_clients_max limits.Server_obj.max_clients;
    Tp.uint Ap.server_clients_current total;
    Tp.uint Ap.server_clients_unauth_max limits.Server_obj.max_anonymous;
    Tp.uint Ap.server_clients_unauth_current unauth;
  ]

let set_client_limits srv params =
  let* () =
    check_fields
      ~writable:[ Ap.server_clients_max; Ap.server_clients_unauth_max ]
      ~readonly:[ Ap.server_clients_current; Ap.server_clients_unauth_current ]
      params
  in
  let max_clients = Tp.find_uint params Ap.server_clients_max in
  let max_anonymous = Tp.find_uint params Ap.server_clients_unauth_max in
  if max_clients = None && max_anonymous = None then
    Verror.error Verror.Invalid_arg "no tunable fields supplied"
  else Server_obj.set_limits srv ?max_clients ?max_anonymous ()

let handle view _srv _client header body =
  let* proc =
    Result.map_error
      (Verror.make Verror.Rpc_failure)
      (Ap.proc_of_int header.Rpc_packet.procedure)
  in
  let logger = view.view_logger in
  match proc with
  | Ap.Proc_list_servers ->
    Ok (Protocol.Remote_protocol.enc_string_list (List.map fst (view.view_servers ())))
  | Ap.Proc_lookup_server ->
    let* _srv = find_server view (Ap.dec_server_name body) in
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_get_threadpool ->
    let* srv = find_server view (Ap.dec_server_name body) in
    Ok (Ap.enc_params (threadpool_params srv))
  | Ap.Proc_set_threadpool ->
    let server, params = Ap.dec_server_params body in
    let* srv = find_server view server in
    let* () = set_threadpool srv params in
    Vlog.logf logger ~module_:"daemon.admin" Vlog.Info
      "threadpool limits of server %s changed" server;
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_get_client_limits ->
    let* srv = find_server view (Ap.dec_server_name body) in
    Ok (Ap.enc_params (client_limit_params srv))
  | Ap.Proc_set_client_limits ->
    let server, params = Ap.dec_server_params body in
    let* srv = find_server view server in
    let* () = set_client_limits srv params in
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_list_clients ->
    let* srv = find_server view (Ap.dec_server_name body) in
    let entries =
      Server_obj.list_clients srv
      |> List.map (fun client ->
             Ap.
               {
                 client_id = Client_obj.id client;
                 client_transport = Client_obj.transport_int client;
                 connected_since =
                   Int64.of_float (Client_obj.connected_since client);
               })
    in
    Ok (Ap.enc_client_list entries)
  | Ap.Proc_get_client_info ->
    let server, id = Ap.dec_client_ref body in
    let* srv = find_server view server in
    let* client = Server_obj.find_client srv id in
    Ok (Ap.enc_params (Client_obj.identity_params client))
  | Ap.Proc_client_close ->
    let server, id = Ap.dec_client_ref body in
    let* srv = find_server view server in
    let* client = Server_obj.find_client srv id in
    Client_obj.close client;
    Vlog.logf logger ~module_:"daemon.admin" Vlog.Info
      "client %Ld of server %s disconnected by administrator" id server;
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_get_log_level ->
    Ok (Ap.enc_uint_body (Vlog.priority_to_int (Vlog.get_level logger)))
  | Ap.Proc_set_log_level ->
    let* level =
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Vlog.priority_of_int (Ap.dec_uint_body body))
    in
    Vlog.set_level logger level;
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_get_log_filters ->
    Ok (Protocol.Remote_protocol.enc_string_body (Vlog.format_filters (Vlog.get_filters logger)))
  | Ap.Proc_set_log_filters ->
    let* filters =
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Vlog.parse_filters (Protocol.Remote_protocol.dec_string_body body))
    in
    Vlog.define_filters logger filters;
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_get_log_outputs ->
    Ok (Protocol.Remote_protocol.enc_string_body (Vlog.format_outputs (Vlog.get_outputs logger)))
  | Ap.Proc_set_log_outputs ->
    let* outputs =
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Vlog.parse_outputs (Protocol.Remote_protocol.dec_string_body body))
    in
    Vlog.define_outputs logger outputs;
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_daemon_uptime ->
    Ok (Ap.enc_hyper_body (Int64.of_float (Unix.gettimeofday () -. view.view_started_at)))
  | Ap.Proc_daemon_drain ->
    Vlog.logf logger ~module_:"daemon.admin" Vlog.Info
      "daemon drain requested by administrator";
    view.view_drain ();
    Ok Protocol.Remote_protocol.enc_unit_body
  | Ap.Proc_daemon_pool_stats ->
    let* srv = find_server view (Ap.dec_server_name body) in
    Ok (Ap.enc_params (pool_stats_params srv))
  | Ap.Proc_daemon_reconcile_status ->
    (match view.view_reconcile () with
     | None ->
       Verror.error Verror.Operation_unsupported "this daemon has no reconciler"
     | Some r ->
       Ok (Protocol.Remote_protocol.enc_reconcile_status (Reconcile.status r)))
  | Ap.Proc_daemon_event_stats ->
    let t = view.view_event_totals () in
    Ok
      (Ap.enc_params
         [
           Tp.uint Ap.event_rings t.Remote_service.evt_rings;
           Tp.uint Ap.event_emitted t.Remote_service.evt_emitted;
           Tp.uint Ap.event_replayed t.Remote_service.evt_replayed;
           Tp.uint Ap.event_gapped t.Remote_service.evt_gaps;
           Tp.uint Ap.event_resumes t.Remote_service.evt_resumes;
           Tp.uint Ap.event_ring_occupancy t.Remote_service.evt_occupancy;
           Tp.uint Ap.event_ring_capacity t.Remote_service.evt_capacity;
           Tp.uint Ap.event_subscribers t.Remote_service.evt_subscribers;
           Tp.uint Ap.event_head_seq t.Remote_service.evt_head;
         ])
  | Ap.Proc_daemon_reply_cache_stats ->
    let t = view.view_reply_cache_totals () in
    Ok
      (Ap.enc_params
         [
           Tp.uint Ap.reply_cache_caches t.Remote_service.rct_caches;
           Tp.uint Ap.reply_cache_hits t.Remote_service.rct_hits;
           Tp.uint Ap.reply_cache_misses t.Remote_service.rct_misses;
           Tp.uint Ap.reply_cache_insertions t.Remote_service.rct_insertions;
           Tp.uint Ap.reply_cache_invalidations t.Remote_service.rct_invalidations;
           Tp.uint Ap.reply_cache_evictions t.Remote_service.rct_evictions;
           Tp.uint Ap.reply_cache_patched_sends t.Remote_service.rct_patched_sends;
           Tp.uint Ap.reply_cache_entries t.Remote_service.rct_entries;
           Tp.uint Ap.reply_cache_bytes t.Remote_service.rct_bytes;
           Tp.uint Ap.reply_cache_enabled (if t.Remote_service.rct_enabled then 1 else 0);
         ])
  | Ap.Proc_daemon_fleet_status ->
    (* Every fleet hosted in this process, via the hook the fleet layer
       installs — the daemon library never links against it. *)
    Ok (Ap.enc_fleet_statuses (Ovirt_core.Driver.fleet_statuses ()))

let program view =
  Dispatch.
    {
      prog_number = Ap.program;
      prog_version = Ap.version;
      high_priority =
        (fun proc ->
          match Ap.proc_of_int proc with
          | Ok p -> Ap.is_high_priority p
          | Error _ -> false);
      peek_deadline = (fun ~procedure:_ ~body:_ -> None);
      try_fast_reply = None;
      handle = (fun srv client header body -> handle view srv client header body);
      on_disconnect = (fun _client -> ());
    }
