(** Bounded, sequence-numbered replay ring for lifecycle events.

    One ring per driver-node URI, created on first subscription and kept
    for the daemon's lifetime: it taps the node's event bus once so that
    events emitted while no client is connected are captured, stamps each
    with a monotonically increasing stream position ([seq], from 1), and
    retains the newest [capacity] of them for replay.  Subscriber arming
    and replay computation share the stamping critical section, so a
    resuming client observes every event exactly once at the replay/live
    boundary. *)

type t

type stats = {
  er_capacity : int;
  er_occupancy : int;
  er_head : int;  (** newest seq assigned; 0 = nothing captured yet *)
  er_oldest : int;  (** lowest seq retained; [er_head + 1] when empty *)
  er_emitted : int;
  er_replayed : int;
  er_gaps : int;
  er_resumes : int;
  er_subscribers : int;
}

val create : capacity:int -> bus:Ovirt_core.Events.bus -> t
(** Taps [bus] permanently (capacity is clamped to at least 1). *)

val resume :
  t ->
  last_seq:int ->
  (Ovirt_core.Events.event -> unit) ->
  int * Protocol.Remote_protocol.resume_reply
(** Atomically arm the callback as a subscriber (events it receives carry
    their seq) and compute the replay for a client that last processed
    [last_seq] ([-1] = fresh, no replay).  Returns the subscriber id and
    the wire reply; [rr_gap = true] when the ring wrapped past the
    client's position (the subscriber is still armed — the caller is
    expected to resync to [rr_head]). *)

val unsubscribe : t -> int -> unit
val stats : t -> stats
