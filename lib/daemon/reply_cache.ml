(* Server-side reply cache: pre-framed encoded replies for hot read
   procedures, keyed by (procedure, canonical argument bytes) and stamped
   with the driver generation current when the reply was computed.  A hit
   returns the stored frame (serial word = 0; callers patch a copy) and
   skips the read lock, body decode, handler and encode entirely.

   Validity: an entry whose stamp differs from the driver's current
   generation is dead — it is removed on lookup and counted as an
   invalidation.  Proactive invalidation (the event-bus subscription in
   Remote_service) empties the cache early; the generation check is the
   correctness backstop for writes that emit no event.

   Concurrency: one mutex per cache.  Both the receiving threads (fast
   path) and pool workers (fills) touch it, but every section is a few
   pointer moves — no allocation beyond the entry on insert, no I/O. *)

type key = int * string

type entry = {
  e_key : key;
  mutable e_gen : int;
  mutable e_frame : string;
  mutable e_prev : entry;
  mutable e_next : entry;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  invalidations : int;
  evictions : int;
  patched_sends : int;
  entries : int;
  bytes : int;
}

type t = {
  mutex : Mutex.t;
  table : (key, entry) Hashtbl.t;
  max_entries : int;
  root : entry; (* sentinel of the circular LRU list; root.next is MRU *)
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable patched_sends : int;
  mutable bytes : int;
}

let create ~max_entries =
  let rec root =
    { e_key = (-1, ""); e_gen = 0; e_frame = ""; e_prev = root; e_next = root }
  in
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * max 1 max_entries);
    max_entries = max 1 max_entries;
    root;
    hits = 0;
    misses = 0;
    insertions = 0;
    invalidations = 0;
    evictions = 0;
    patched_sends = 0;
    bytes = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Intrusive circular list: O(1) unlink / push-front. *)

let unlink e =
  e.e_prev.e_next <- e.e_next;
  e.e_next.e_prev <- e.e_prev;
  e.e_prev <- e;
  e.e_next <- e

let push_front t e =
  e.e_next <- t.root.e_next;
  e.e_prev <- t.root;
  t.root.e_next.e_prev <- e;
  t.root.e_next <- e

let drop t e =
  unlink e;
  Hashtbl.remove t.table e.e_key;
  t.bytes <- t.bytes - String.length e.e_frame

let find t ~proc ~args ~gen =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table (proc, args) with
      | Some e when e.e_gen = gen ->
        t.hits <- t.hits + 1;
        unlink e;
        push_front t e;
        Some e.e_frame
      | Some e ->
        (* Stale stamp: the state moved under the entry. *)
        t.invalidations <- t.invalidations + 1;
        drop t e;
        t.misses <- t.misses + 1;
        None
      | None ->
        t.misses <- t.misses + 1;
        None)

let insert t ~proc ~args ~gen frame =
  with_lock t (fun () ->
      let key = (proc, args) in
      (match Hashtbl.find_opt t.table key with
       | Some e ->
         (* Refill of an existing key (e.g. a fill raced another fill):
            keep the newer stamp. *)
         t.bytes <- t.bytes - String.length e.e_frame + String.length frame;
         e.e_gen <- gen;
         e.e_frame <- frame;
         unlink e;
         push_front t e
       | None ->
         if Hashtbl.length t.table >= t.max_entries then begin
           let lru = t.root.e_prev in
           if lru != t.root then begin
             drop t lru;
             t.evictions <- t.evictions + 1
           end
         end;
         let e =
           {
             e_key = key;
             e_gen = gen;
             e_frame = frame;
             e_prev = t.root;
             e_next = t.root;
           }
         in
         push_front t e;
         Hashtbl.add t.table key e;
         t.bytes <- t.bytes + String.length frame);
      t.insertions <- t.insertions + 1)

let invalidate_all t =
  with_lock t (fun () ->
      let n = Hashtbl.length t.table in
      if n > 0 then begin
        Hashtbl.reset t.table;
        t.root.e_next <- t.root;
        t.root.e_prev <- t.root;
        t.bytes <- 0;
        t.invalidations <- t.invalidations + n
      end)

let note_patched_send t =
  with_lock t (fun () -> t.patched_sends <- t.patched_sends + 1)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        invalidations = t.invalidations;
        evictions = t.evictions;
        patched_sends = t.patched_sends;
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
      })
