(** Daemon assembly: ovirtd.

    Hosts two servers, exactly as libvirtd does once the administration
    interface exists:

    - ["libvirtd"]: the hypervisor management server, reachable over
      unix/tcp/tls at the address {!mgmt_address};
    - ["admin"]: the administration server, unix-socket only (root-only
      in spirit) at {!admin_address}.

    Initial settings come from a {!Daemon_config.t}; everything the admin
    interface covers can then be changed at runtime. *)

type t

val start : ?name:string -> ?config:Daemon_config.t -> unit -> t
(** [name] defaults to ["ovirtd"]; it prefixes the simulated socket
    addresses, so tests can run isolated daemons.
    @raise Ovnet.Netsim.Address_in_use if a daemon of that name runs. *)

val stop : t -> unit
(** Close listeners and clients, stop workerpools.  Idempotent. *)

val kill : t -> unit
(** Simulated crash (SIGKILL): like {!stop} but never waits for a running
    drain and abandons in-flight work.  Pair with the driver registries'
    [reset_nodes] to model a full manager crash; a subsequent {!start}
    plus reconnect exercises journal replay and reconciliation. *)

val drain : t -> unit
(** Graceful shutdown: close listeners, mark every server draining (new
    calls refused with [Operation_invalid], keepalive pings still
    answered), wait for queued and in-flight dispatches to finish, then
    {!stop}.  Blocks until done; also reachable over the admin program
    ([Proc_daemon_drain]), which runs it in the background. *)

val name : t -> string

val io_model : t -> Daemon_config.io_model
(** The connection front end this daemon was started with. *)

val reactors : t -> Ovreactor.Reactor.t array
(** The reactor loops (empty under [Io_threaded]) — for stats. *)

val buffer_pool : t -> Ovreactor.Bufpool.t option
(** The shared receive-buffer pool ([None] under [Io_threaded]). *)

val mgmt_address : t -> string
(** ["<name>-sock"] — connect here with any transport kind. *)

val admin_address : t -> string
(** ["<name>-admin-sock"]. *)

val logger : t -> Vlog.t
val servers : t -> (string * Server_obj.t) list
val find_server : t -> string -> Server_obj.t option
val uptime_s : t -> float

val reconciler : t -> Reconcile.t
(** The daemon's policy reconciler.  Its plan journal lives at
    [/var/lib/ovirt/reconcile/<name>.journal], so a restarted daemon of
    the same name resumes any plan its predecessor journaled but never
    finished applying. *)
