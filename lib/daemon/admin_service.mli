(** The administration program's daemon-side implementation.

    Operates on a {!daemon_view} handed over by the daemon assembly
    (avoiding a dependency cycle): the live server objects, the logging
    subsystem, and the start timestamp.  Setters validate read-only and
    unknown typed-parameter fields and reject them, as the admin API
    documents. *)

type daemon_view = {
  view_servers : unit -> (string * Server_obj.t) list;
  view_logger : Vlog.t;
  view_started_at : float;
  view_drain : unit -> unit;
      (** Trigger a graceful daemon drain; must return promptly (the
          daemon runs the drain in the background) so the reply reaches
          the administrator before the connection closes. *)
  view_reconcile : unit -> Reconcile.t option;
      (** The daemon's policy reconciler, when it has one. *)
  view_event_totals : unit -> Remote_service.event_totals;
      (** Aggregate replay-ring counters of the remote program. *)
  view_reply_cache_totals : unit -> Remote_service.cache_totals;
      (** Aggregate reply-cache counters of the remote program. *)
}

val program : daemon_view -> Dispatch.program
