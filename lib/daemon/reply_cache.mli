(** Server-side reply cache for hot read procedures.

    Stores {e pre-framed} reply packets (length prefix + header + XDR
    body, serial word 0) keyed by [(procedure, canonical argument
    bytes)], each stamped with the driver write generation current when
    the reply was computed.  A hit hands back bytes ready to send after
    one serial patch ({!Ovrpc.Rpc_packet.with_serial}) — no read lock,
    no body decode, no handler, no re-encode.

    Entry validity is the generation stamp: a lookup whose [gen]
    disagrees with the stored stamp removes the entry (counted as an
    invalidation) and reports a miss.  {!invalidate_all} is the
    proactive path, driven by the driver event bus; the stamp check is
    the correctness backstop for writes that emit no event.  Capacity is
    a strict LRU bound.

    All operations are thread-safe (one internal mutex per cache) and
    allocation-light; none of them block on anything but that mutex. *)

type t

type stats = {
  hits : int;
  misses : int;  (** includes stale-stamp lookups *)
  insertions : int;
  invalidations : int;  (** stale-stamp removals + proactive flush entries *)
  evictions : int;  (** LRU capacity evictions *)
  patched_sends : int;  (** cached frames actually sent with a patched serial *)
  entries : int;  (** current *)
  bytes : int;  (** current sum of cached frame lengths *)
}

val create : max_entries:int -> t
(** [max_entries] is clamped to at least 1. *)

val find : t -> proc:int -> args:string -> gen:int -> string option
(** Valid cached frame for this key at generation [gen], refreshing its
    LRU position.  A present-but-stale entry is dropped and [None]
    returned. *)

val insert : t -> proc:int -> args:string -> gen:int -> string -> unit
(** Store a frame (serial word must be 0) computed at generation [gen],
    evicting the LRU entry when full.  Re-inserting an existing key
    replaces its frame and stamp. *)

val invalidate_all : t -> unit
(** Drop everything (the event-bus invalidation path). *)

val note_patched_send : t -> unit
(** Count one cached frame actually sent with a patched serial. *)

val stats : t -> stats
