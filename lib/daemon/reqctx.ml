(* Per-request context: the deadline budget a dispatched call carries
   from the wire down into driver code.

   The dispatcher wraps every worker-side call in [with_deadline]; any
   code on that worker thread (remote_service handlers, driver ops,
   Drvnode lock waits) can then ask how much budget remains without the
   deadline being threaded through every signature.  Keyed by thread id:
   a worker runs exactly one call at a time, and the binding is removed
   when the call returns, so a pooled worker never leaks one call's
   deadline into the next. *)

module Verror = Ovirt_core.Verror

let mutex = Mutex.create ()
let table : (int, float) Hashtbl.t = Hashtbl.create 64

let self () = Thread.id (Thread.self ())

let deadline () =
  Mutex.lock mutex;
  let d = Hashtbl.find_opt table (self ()) in
  Mutex.unlock mutex;
  d

let with_deadline deadline f =
  match deadline with
  | None -> f ()
  | Some d ->
    let tid = self () in
    Mutex.lock mutex;
    Hashtbl.replace table tid d;
    Mutex.unlock mutex;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock mutex;
        Hashtbl.remove table tid;
        Mutex.unlock mutex)
      f

let remaining_s () =
  Option.map (fun d -> d -. Unix.gettimeofday ()) (deadline ())

let expired () =
  match deadline () with None -> false | Some d -> Unix.gettimeofday () > d

let check ~what () =
  if expired () then
    Verror.error Verror.Operation_failed "deadline expired before %s" what
  else Ok ()

(* Install this context as the driver layer's deadline provider.  Safe
   to call more than once (daemon restarts in-process during tests). *)
let install () = Drivers.Drvnode.set_deadline_hook deadline
