(** RPC dispatcher: the daemon's message-processing pipeline.

    Per connection: a reader thread receives framed packets, decodes the
    header, routes by program number and queues a job on the server's
    workerpool — high-priority procedures are eligible for priority
    workers.  The worker decodes the body, executes, and sends the reply
    (worker-side serialization through {!Client_obj.send_packet}).
    Malformed packets close the connection; handler exceptions become
    [Internal_error] replies. *)

type program = {
  prog_number : int;
  prog_version : int;
  high_priority : int -> bool;  (** by wire procedure number *)
  handle :
    Server_obj.t ->
    Client_obj.t ->
    Ovrpc.Rpc_packet.header ->
    string ->
    (string, Ovirt_core.Verror.t) result;
  on_disconnect : Client_obj.t -> unit;
}

val keepalive_program : program
(** {!Protocol.Keepalive_protocol}: answers PING with the empty Status_ok
    reply (the PONG).  Served even while the server drains, and never
    counts as authentication. *)

val attach_client : Server_obj.t -> program list -> Ovnet.Transport.t -> unit
(** Accept-loop body (use as the {!Ovnet.Netsim.listen} handler): register
    the connection with the server (limits enforced) and run the reader
    loop until the peer goes away.  Returns when the connection dies. *)
