(** RPC dispatcher: the daemon's message-processing pipeline.

    Per connection: a reader thread receives framed packets, decodes the
    header, routes by program number and queues a job on the server's
    workerpool — high-priority procedures are eligible for priority
    workers.  The worker decodes the body, executes, and sends the reply
    (worker-side serialization through {!Client_obj.send_packet}).
    Malformed packets close the connection; handler exceptions become
    [Internal_error] replies.

    {b Overload protection.}  The reader submits through
    {!Threadpool.submit}: when the pool's admission control sheds the
    call, the reader replies synchronously with [Verror.Overloaded]
    (carrying a [retry_after_ms] hint) and the handler never runs.
    Calls carrying a deadline envelope (see [peek_deadline]) are dropped
    with an "expired in queue" error if the deadline passes before a
    worker picks them up; while a worker runs the call, the deadline is
    installed in {!Reqctx} so driver code can observe the remaining
    budget. *)

type program = {
  prog_number : int;
  prog_version : int;
  high_priority : int -> bool;  (** by wire procedure number *)
  peek_deadline : procedure:int -> body:string -> (float * int) option;
      (** Peek at a call at receive time: when it is a deadline envelope,
          return the absolute deadline (anchored now from the relative
          wire budget) and the inner wire procedure number, used for
          priority classification.  Return [None] for ordinary calls. *)
  try_fast_reply :
    (Server_obj.t ->
    Client_obj.t ->
    Ovrpc.Rpc_packet.header ->
    string ->
    bool)
    option;
      (** Synchronous fast path, consulted on the receiving thread after
          the version and drain checks but before pool submission.
          Returning [true] means the hook already sent the reply (e.g. a
          cached pre-framed reply with the serial word patched) and the
          call is finished; [false] falls through to normal dispatch.
          Hooks must be cheap, non-blocking, and never raise.  [None]
          disables the fast path for the program. *)
  handle :
    Server_obj.t ->
    Client_obj.t ->
    Ovrpc.Rpc_packet.header ->
    string ->
    (string, Ovirt_core.Verror.t) result;
  on_disconnect : Client_obj.t -> unit;
}

val keepalive_program : program
(** {!Protocol.Keepalive_protocol}: answers PING with the empty Status_ok
    reply (the PONG).  Served even while the server drains, and never
    counts as authentication. *)

val attach_client : Server_obj.t -> program list -> Ovnet.Transport.t -> unit
(** Accept-loop body (use as the {!Ovnet.Netsim.listen} handler): register
    the connection with the server (limits enforced) and run the reader
    loop until the peer goes away.  Returns when the connection dies.
    This is the [io_model=threaded] front end. *)

val attach_endpoint :
  Server_obj.t ->
  program list ->
  reactor:Ovreactor.Reactor.t ->
  pool:Ovreactor.Bufpool.t ->
  ?authorize:(Ovnet.Transport.t -> bool) ->
  kind:Ovnet.Transport.kind ->
  Ovnet.Chan.endpoint ->
  unit
(** [io_model=reactor] front end (use from a {!Ovnet.Netsim.listen_direct}
    sink): register the raw accepted endpoint with [reactor] and return
    immediately.  The reactor drives a per-connection state machine —
    transport handshake, then header-read/payload-read packet framing
    with receive buffers borrowed from [pool] only while a partial packet
    is stashed — and decoded calls take the same workerpool submission
    path as the threaded reader (admission control, deadlines and drain
    semantics identical).  [authorize] runs once the handshake completes
    and the peer is known; returning [false] closes the connection before
    it is registered (the admin socket's root-only check). *)
