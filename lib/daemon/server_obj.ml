module Verror = Ovirt_core.Verror

type client_limits = { max_clients : int; max_anonymous : int }

type t = {
  name : string;
  logger : Vlog.t;
  pool : Threadpool.t;
  mutex : Mutex.t;
  clients : (int64, Client_obj.t) Hashtbl.t;
  mutable unauth_count : int;
      (* table entries not yet authenticated; moves with the flag via
         [note_authenticated] so the accept path never recounts *)
  mutable limits : client_limits;
  mutable next_client_id : int64;
  mutable draining : bool;
}

let create ~name ~logger ?(job_queue_limit = 0) ?(wall_limit_ms = 0) ~min_workers
    ~max_workers ~prio_workers ~limits () =
  {
    name;
    logger;
    pool =
      Threadpool.create ~name:(name ^ "-pool") ~logger ~job_queue_limit
        ~wall_limit_ms ~min_workers ~max_workers ~prio_workers ();
    mutex = Mutex.create ();
    clients = Hashtbl.create 32;
    unauth_count = 0;
    limits;
    next_client_id = 1L;
    draining = false;
  }

let with_lock srv f =
  Mutex.lock srv.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.mutex) f

let name srv = srv.name
let pool srv = srv.pool
let logger srv = srv.logger

(* Drop table entries whose transport died without a clean remove,
   keeping the unauthenticated count in step with the removals. *)
let reap_unlocked srv =
  let dead =
    Hashtbl.fold
      (fun id client acc ->
        if Client_obj.is_closed client then (id, client) :: acc else acc)
      srv.clients []
  in
  List.iter
    (fun (id, client) ->
      if not (Client_obj.is_authenticated client) then
        srv.unauth_count <- srv.unauth_count - 1;
      Hashtbl.remove srv.clients id)
    dead

let set_draining srv v = with_lock srv (fun () -> srv.draining <- v)
let is_draining srv = with_lock srv (fun () -> srv.draining)

let accept_client srv conn =
  with_lock srv (fun () ->
      (* O(1) on the hot path: the table length and the unauthenticated
         counter stand in for the former full-table recount, which made a
         connect storm quadratic.  Only when a limit looks exhausted is
         the table reaped — entries whose transport died without a clean
         remove must not hold the count at the limit and refuse a live
         client. *)
      if
        Hashtbl.length srv.clients >= srv.limits.max_clients
        || srv.unauth_count >= srv.limits.max_anonymous
      then reap_unlocked srv;
      let total = Hashtbl.length srv.clients in
      let unauth = srv.unauth_count in
      if srv.draining then begin
        Ovnet.Transport.close conn;
        Vlog.logf srv.logger ~module_:"daemon.server" Vlog.Info
          "server %s: refusing client, server is draining" srv.name;
        Verror.error Verror.Operation_invalid "server %s is draining" srv.name
      end
      else if total >= srv.limits.max_clients then begin
        Ovnet.Transport.close conn;
        Vlog.logf srv.logger ~module_:"daemon.server" Vlog.Warn
          "server %s: refusing client, limit of %d connections reached" srv.name
          srv.limits.max_clients;
        Verror.error Verror.Resource_exhausted
          "server %s: maximum of %d clients reached" srv.name srv.limits.max_clients
      end
      else if unauth >= srv.limits.max_anonymous then begin
        Ovnet.Transport.close conn;
        Verror.error Verror.Resource_exhausted
          "server %s: maximum of %d unauthenticated clients reached" srv.name
          srv.limits.max_anonymous
      end
      else begin
        let id = srv.next_client_id in
        srv.next_client_id <- Int64.add id 1L;
        let client = Client_obj.create ~id ~conn in
        Hashtbl.replace srv.clients id client;
        srv.unauth_count <- srv.unauth_count + 1;
        Vlog.logf srv.logger ~module_:"daemon.server" Vlog.Info
          "server %s: accepted client %Ld (%s)" srv.name id
          (Ovnet.Transport.kind_name (Ovnet.Transport.kind conn));
        Ok client
      end)

let remove_client srv id =
  with_lock srv (fun () ->
      match Hashtbl.find_opt srv.clients id with
      | Some client ->
        Client_obj.close client;
        if not (Client_obj.is_authenticated client) then
          srv.unauth_count <- srv.unauth_count - 1;
        Hashtbl.remove srv.clients id
      | None -> ())

(* Successfully processing a call authenticates the client.  Routed
   through the server so the counter moves atomically with the flag; a
   client already removed (or reaped) was subtracted at removal and must
   not be subtracted again. *)
let note_authenticated srv client =
  with_lock srv (fun () ->
      if not (Client_obj.is_authenticated client) then begin
        Client_obj.mark_authenticated client;
        if Hashtbl.mem srv.clients (Client_obj.id client) then
          srv.unauth_count <- srv.unauth_count - 1
      end)

let find_client srv id =
  with_lock srv (fun () ->
      match Hashtbl.find_opt srv.clients id with
      | Some client when not (Client_obj.is_closed client) -> Ok client
      | Some _ | None ->
        Verror.error Verror.No_client "server %s: no client with id %Ld" srv.name id)

let list_clients srv =
  with_lock srv (fun () ->
      reap_unlocked srv;
      Hashtbl.fold (fun _ client acc -> client :: acc) srv.clients []
      |> List.sort (fun a b -> Int64.compare (Client_obj.id a) (Client_obj.id b)))

let client_counts srv =
  with_lock srv (fun () ->
      reap_unlocked srv;
      (Hashtbl.length srv.clients, srv.unauth_count))

let limits srv = with_lock srv (fun () -> srv.limits)

let set_limits srv ?max_clients ?max_anonymous () =
  with_lock srv (fun () ->
      let max_clients = Option.value max_clients ~default:srv.limits.max_clients in
      let max_anonymous =
        Option.value max_anonymous ~default:srv.limits.max_anonymous
      in
      if max_clients < 1 then
        Verror.error Verror.Invalid_arg "max_clients must be >= 1"
      else if max_anonymous < 1 then
        Verror.error Verror.Invalid_arg "max_anonymous_clients must be >= 1"
      else if max_anonymous > max_clients then
        Verror.error Verror.Invalid_arg
          "max_anonymous_clients (%d) must not exceed max_clients (%d)" max_anonymous
          max_clients
      else begin
        srv.limits <- { max_clients; max_anonymous };
        Ok ()
      end)

let close_all_clients srv =
  with_lock srv (fun () ->
      Hashtbl.iter (fun _ client -> Client_obj.close client) srv.clients;
      Hashtbl.reset srv.clients;
      srv.unauth_count <- 0)
