module Transport = Ovnet.Transport
module Rpc_packet = Ovrpc.Rpc_packet
module Verror = Ovirt_core.Verror
module Ka = Protocol.Keepalive_protocol

type program = {
  prog_number : int;
  prog_version : int;
  high_priority : int -> bool;
  peek_deadline : procedure:int -> body:string -> (float * int) option;
      (* For calls carrying a deadline envelope: peek into the body at
         receive time and return (absolute deadline anchored now, inner
         procedure number).  The dispatcher uses the deadline to drop
         jobs that expire while queued, and the inner procedure to
         classify priority by the wrapped call rather than the envelope. *)
  try_fast_reply :
    (Server_obj.t -> Client_obj.t -> Rpc_packet.header -> string -> bool)
    option;
      (* Synchronous fast path consulted on the receiving thread before
         the call is submitted to the pool.  Returning [true] means the
         reply has already been sent (e.g. replayed from a reply cache
         with the serial patched) and the call must not be dispatched;
         [false] falls through to the normal path.  Must be cheap and
         non-blocking, and must never raise. *)
  handle :
    Server_obj.t ->
    Client_obj.t ->
    Rpc_packet.header ->
    string ->
    (string, Verror.t) result;
  on_disconnect : Client_obj.t -> unit;
}

(* Reply framing borrows scratch buffers from a shared pool: the body is
   spliced behind the reserved frame prefix in one pass
   ({!Rpc_packet.encode_into}), so the only allocation left on the reply
   send path is the final immutable frame.  Worker threads frame replies
   concurrently, hence a pool rather than one static buffer; encoders
   that outgrow the pooled size fall back to a private buffer and the
   original (still correctly sized) buffer re-pools. *)
let reply_scratch =
  Ovreactor.Bufpool.create ~buf_size:(16 * 1024) ~max_pooled:32

let frame_reply header result =
  let buf = Ovreactor.Bufpool.take reply_scratch in
  Fun.protect
    ~finally:(fun () -> Ovreactor.Bufpool.give reply_scratch buf)
    (fun () ->
      let enc = Xdr.encoder_of_bytes buf in
      match result with
      | Ok body ->
        Rpc_packet.encode_into enc (Rpc_packet.reply_ok header) (fun e ->
            Xdr.enc_raw e body)
      | Error err ->
        Rpc_packet.encode_into enc
          (Rpc_packet.reply_error header)
          (fun e -> Protocol.Remote_protocol.enc_error_into e err))

let send_reply client header result =
  Client_obj.send_packet client (frame_reply header result)

let run_call srv prog client header body ~deadline =
  Client_obj.touch client;
  let logger = Server_obj.logger srv in
  (* Guarded: this fires once per call, and with debug disabled the
     kasprintf formatting of five arguments would otherwise still run. *)
  if Vlog.would_log logger ~module_:"daemon.rpc" Vlog.Debug then
    Vlog.logf logger ~module_:"daemon.rpc" Vlog.Debug
      "client %Ld: dispatching program=0x%x procedure=%d serial=%d (%d body bytes)"
      (Client_obj.id client) header.Rpc_packet.program header.Rpc_packet.procedure
      header.Rpc_packet.serial (String.length body);
  let result =
    try Reqctx.with_deadline deadline (fun () -> prog.handle srv client header body)
    with
    | Verror.Virt_error err -> Error err
    | Xdr.Error msg -> Verror.error Verror.Rpc_failure "malformed call body: %s" msg
    | Ovrpc.Typed_params.Invalid msg ->
      Verror.error Verror.Rpc_failure "bad typed parameters: %s" msg
    | exn ->
      Verror.error Verror.Internal_error "unhandled exception: %s"
        (Printexc.to_string exn)
  in
  (match result with
   | Ok _ -> ()
   | Error err ->
     Vlog.logf logger ~module_:"daemon.rpc" Vlog.Error
       "client %Ld: procedure %d failed: %s" (Client_obj.id client)
       header.Rpc_packet.procedure (Verror.to_string err));
  send_reply client header result;
  (* Successfully processing any call authenticates the client (stand-in
     for the SASL/polkit handshake real services run) — except keepalive
     pings, which prove liveness, not identity. *)
  if Result.is_ok result && prog.prog_number <> Ka.program then
    Server_obj.note_authenticated srv client

(* The keepalive program: any server answers pings so clients can tell a
   live-but-busy daemon from a dead one.  The PONG is the plain Status_ok
   reply; its serial matches no pending call on the client, which is how
   the client recognises it. *)
let keepalive_program =
  {
    prog_number = Ka.program;
    prog_version = Ka.version;
    high_priority = (fun _ -> true);
    peek_deadline = (fun ~procedure:_ ~body:_ -> None);
    try_fast_reply = None;
    handle =
      (fun _srv _client header _body ->
        if header.Rpc_packet.procedure = Ka.proc_ping then Ok ""
        else
          Verror.error Verror.Rpc_failure "unknown keepalive procedure %d"
            header.Rpc_packet.procedure);
    on_disconnect = (fun _client -> ());
  }

(* Route one decoded call: program lookup, version check, drain check,
   deadline peek, pool submission.  Shared by both front ends (the
   per-connection reader thread and the reactor state machine); it never
   blocks — pool overflow is shed synchronously — and never raises. *)
let process_call srv prog_table client header body =
  match Hashtbl.find_opt prog_table header.Rpc_packet.program with
  | None ->
    send_reply client header
      (Verror.error Verror.Rpc_failure "unknown program 0x%x"
         header.Rpc_packet.program)
  | Some prog ->
    if header.Rpc_packet.version <> prog.prog_version then
      send_reply client header
        (Verror.error Verror.Rpc_failure "program 0x%x: unsupported version %d"
           prog.prog_number header.Rpc_packet.version)
    else if Server_obj.is_draining srv && prog.prog_number <> Ka.program then
      (* Graceful degradation: in-flight dispatches finish, new work is
         refused, pings still answered. *)
      send_reply client header
        (Verror.error Verror.Operation_invalid "server %s is draining"
           (Server_obj.name srv))
    else if
      (* Zero-work read path: a program-supplied hook may answer the call
         synchronously (replaying a cached pre-framed reply) without a
         pool round-trip.  Consulted after version and drain checks so
         cache hits observe the same admission rules as dispatched calls. *)
      match prog.try_fast_reply with
      | Some hook -> hook srv client header body
      | None -> false
    then ()
    else begin
      let peeked =
        prog.peek_deadline ~procedure:header.Rpc_packet.procedure ~body
      in
      let priority =
        match peeked with
        | Some (_, inner) -> prog.high_priority inner
        | None -> prog.high_priority header.Rpc_packet.procedure
      in
      let deadline = Option.map fst peeked in
      let on_expired () =
        (* The job's deadline passed while it sat in the pool queue:
           answer without ever running the handler. *)
        send_reply client header
          (Verror.error Verror.Operation_failed
             "deadline expired in queue (procedure %d)"
             header.Rpc_packet.procedure)
      in
      match
        Threadpool.submit (Server_obj.pool srv) ~priority
          ~source:(Client_obj.id client) ?deadline ~on_expired
          (fun () -> run_call srv prog client header body ~deadline)
      with
      | Ok () -> ()
      | Error { Threadpool.retry_after_ms } ->
        (* Admission control shed the call: reject synchronously on the
           receiving thread with a machine-readable hint. *)
        send_reply client header
          (Verror.overloaded ~retry_after_ms "server %s: job queue is full"
             (Server_obj.name srv))
    end

(* Program lookup runs once per packet: resolve the registered list into
   a table up front instead of scanning it per call. *)
let prog_table_of programs =
  let t = Hashtbl.create (2 * List.length programs) in
  List.iter (fun p -> Hashtbl.replace t p.prog_number p) programs;
  t

let reader_loop srv prog_table client =
  let logger = Server_obj.logger srv in
  let conn = Client_obj.conn client in
  let rec loop () =
    match Transport.recv conn with
    | exception (Transport.Closed | Transport.Corrupt _) -> ()
    | wire ->
      (match Rpc_packet.decode wire with
       | exception Rpc_packet.Bad_packet msg ->
         Vlog.logf logger ~module_:"daemon.rpc" Vlog.Error
           "client %Ld: dropping connection after bad packet: %s"
           (Client_obj.id client) msg;
         Client_obj.close client
       | header, body ->
         process_call srv prog_table client header body;
         loop ())
  in
  loop ()

let attach_client srv programs conn =
  let prog_table = prog_table_of programs in
  match Server_obj.accept_client srv conn with
  | Error _ -> () (* connection already closed by the limit check *)
  | Ok client ->
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> p.on_disconnect client) programs;
        Server_obj.remove_client srv (Client_obj.id client);
        Vlog.logf (Server_obj.logger srv) ~module_:"daemon.server" Vlog.Info
          "server %s: client %Ld disconnected" (Server_obj.name srv)
          (Client_obj.id client))
      (fun () -> reader_loop srv prog_table client)

(* ------------------------------------------------------------------ *)
(* Reactor front end                                                   *)
(* ------------------------------------------------------------------ *)

module Reactor = Ovreactor.Reactor
module Bufpool = Ovreactor.Bufpool
module Chan = Ovnet.Chan

(* Per-connection non-blocking state machine, run entirely on the
   reactor thread (its callbacks are the only code that touches the
   mutable state, so none of it needs a lock):

     Rc_accepting --(handshake frames)--> Rc_running --(EOF)--> Rc_closed

   In [Rc_running], each inbound chunk goes through header-read
   ({!Rpc_packet.frame_length}) and payload-read ({!Rpc_packet.decode_sub})
   and decoded calls enter the same {!process_call} pool submission the
   threaded reader uses.  A connection only borrows a pool buffer while a
   partial packet straddles chunks — idle connections hold none, and
   whole aligned packets (the common case over {!Chan}) decode zero-copy
   straight from the received chunk.  Unlike the per-thread reader, this
   path reassembles arbitrary byte-stream splits: frames coalesced or
   fragmented by the transport still decode. *)

type rc_running = {
  run_client : Client_obj.t;
  run_conn : Transport.t;
  mutable run_buf : Bytes.t option;  (* borrowed while a partial packet is stashed *)
  mutable run_len : int;  (* valid bytes in [run_buf] *)
}

type rc_state =
  | Rc_accepting of Transport.accept_state
  | Rc_running of rc_running
  | Rc_closed

type rc_conn = {
  rc_srv : Server_obj.t;
  rc_programs : program list;
  rc_table : (int, program) Hashtbl.t;
  rc_reactor : Reactor.t;
  rc_pool : Bufpool.t;
  rc_authorize : (Transport.t -> bool) option;
  rc_ep : Chan.endpoint;
  mutable rc_watch : Reactor.watch option;
  mutable rc_state : rc_state;
}

let rc_unwatch ctx =
  match ctx.rc_watch with
  | Some w ->
    ctx.rc_watch <- None;
    Reactor.unwatch ctx.rc_reactor w
  | None -> ()

let rc_teardown ctx =
  match ctx.rc_state with
  | Rc_closed -> ()
  | Rc_accepting _ ->
    ctx.rc_state <- Rc_closed;
    rc_unwatch ctx;
    Chan.close_endpoint ctx.rc_ep
  | Rc_running run ->
    ctx.rc_state <- Rc_closed;
    rc_unwatch ctx;
    (match run.run_buf with
     | Some b ->
       run.run_buf <- None;
       run.run_len <- 0;
       Bufpool.give ctx.rc_pool b
     | None -> ());
    List.iter (fun p -> p.on_disconnect run.run_client) ctx.rc_programs;
    Server_obj.remove_client ctx.rc_srv (Client_obj.id run.run_client);
    Vlog.logf (Server_obj.logger ctx.rc_srv) ~module_:"daemon.server" Vlog.Info
      "server %s: client %Ld disconnected" (Server_obj.name ctx.rc_srv)
      (Client_obj.id run.run_client)

(* Dispatch every complete frame in [s[pos, limit)]; returns the offset
   of the first byte of the trailing incomplete frame (= [limit] when
   frames were exactly aligned).  @raise Rpc_packet.Bad_packet. *)
let rc_dispatch_frames ctx run s ~pos ~limit =
  let p = ref pos in
  let continue = ref true in
  while !continue do
    match Rpc_packet.frame_length s ~pos:!p ~avail:(limit - !p) with
    | Some flen when limit - !p >= flen ->
      let header, body = Rpc_packet.decode_sub s ~pos:!p ~len:flen in
      p := !p + flen;
      process_call ctx.rc_srv ctx.rc_table run.run_client header body
    | Some _ | None -> continue := false
  done;
  !p

let rc_feed ctx run chunk =
  let clen = String.length chunk in
  match run.run_buf with
  | None ->
    (* Fast path: parse straight out of the chunk, zero-copy. *)
    let consumed = rc_dispatch_frames ctx run chunk ~pos:0 ~limit:clen in
    if consumed < clen then begin
      (* Partial tail: now (and only now) borrow a buffer. *)
      let need = clen - consumed in
      let b0 = Bufpool.take ctx.rc_pool in
      let b =
        if Bytes.length b0 >= need then b0
        else begin
          Bufpool.give ctx.rc_pool b0;
          Bytes.create need
        end
      in
      Bytes.blit_string chunk consumed b 0 need;
      run.run_buf <- Some b;
      run.run_len <- need
    end
  | Some b0 ->
    let need = run.run_len + clen in
    let b =
      if Bytes.length b0 >= need then b0
      else begin
        let nb = Bytes.create (max need (2 * Bytes.length b0)) in
        Bytes.blit b0 0 nb 0 run.run_len;
        Bufpool.give ctx.rc_pool b0;
        run.run_buf <- Some nb;
        nb
      end
    in
    Bytes.blit_string chunk 0 b run.run_len clen;
    run.run_len <- need;
    (* Peel reassembled frames: a 4-byte prefix copy per length peek and
       one copy per frame — only split packets pay this. *)
    let p = ref 0 in
    let continue = ref true in
    while !continue do
      let avail = run.run_len - !p in
      let peek = Bytes.sub_string b !p (min 4 avail) in
      match Rpc_packet.frame_length peek ~pos:0 ~avail with
      | Some flen when avail >= flen ->
        let header, body = Rpc_packet.decode (Bytes.sub_string b !p flen) in
        p := !p + flen;
        process_call ctx.rc_srv ctx.rc_table run.run_client header body
      | Some _ | None -> continue := false
    done;
    let leftover = run.run_len - !p in
    if leftover = 0 then begin
      run.run_buf <- None;
      run.run_len <- 0;
      Bufpool.give ctx.rc_pool b
    end
    else if !p > 0 then begin
      Bytes.blit b !p b 0 leftover;
      run.run_len <- leftover
    end

(* The Edge-mode readiness callback: drain the channel completely (one
   message per iteration), feeding the current phase of the machine. *)
let rec rc_on_ready ctx =
  match ctx.rc_state with
  | Rc_closed -> ()
  | Rc_accepting ast ->
    (match Chan.try_recv ctx.rc_ep.Chan.incoming with
     | exception Chan.Closed -> rc_teardown ctx
     | None -> ()
     | Some frame ->
       (match Transport.accept_feed ast frame with
        | exception exn ->
          Vlog.logf (Server_obj.logger ctx.rc_srv) ~module_:"daemon.server"
            Vlog.Warn "server %s: handshake failed: %s"
            (Server_obj.name ctx.rc_srv) (Printexc.to_string exn);
          rc_teardown ctx
        | `Again -> rc_on_ready ctx
        | `Conn conn -> rc_establish ctx conn))
  | Rc_running run ->
    (match Transport.try_recv run.run_conn with
     | exception (Transport.Closed | Transport.Corrupt _) -> rc_teardown ctx
     | None -> ()
     | Some chunk ->
       (match rc_feed ctx run chunk with
        | () -> rc_on_ready ctx
        | exception Rpc_packet.Bad_packet msg ->
          Vlog.logf (Server_obj.logger ctx.rc_srv) ~module_:"daemon.rpc"
            Vlog.Error "client %Ld: dropping connection after bad packet: %s"
            (Client_obj.id run.run_client) msg;
          rc_teardown ctx))

and rc_establish ctx conn =
  let authorized =
    match ctx.rc_authorize with Some f -> f conn | None -> true
  in
  if not authorized then begin
    ctx.rc_state <- Rc_closed;
    rc_unwatch ctx;
    Transport.close conn
  end
  else
    match Server_obj.accept_client ctx.rc_srv conn with
    | Error _ ->
      (* connection already closed by the limit check *)
      ctx.rc_state <- Rc_closed;
      rc_unwatch ctx
    | Ok client ->
      ctx.rc_state <-
        Rc_running { run_client = client; run_conn = conn; run_buf = None; run_len = 0 };
      (* frames behind the identity frame (pipelined calls) drain now *)
      rc_on_ready ctx

let attach_endpoint srv programs ~reactor ~pool ?authorize ~kind ep =
  let ctx =
    {
      rc_srv = srv;
      rc_programs = programs;
      rc_table = prog_table_of programs;
      rc_reactor = reactor;
      rc_pool = pool;
      rc_authorize = authorize;
      rc_ep = ep;
      rc_watch = None;
      rc_state = Rc_accepting (Transport.accept_start kind ep);
    }
  in
  let w =
    Reactor.watch_chan reactor ep.Chan.incoming ~mode:Reactor.Edge (fun () ->
        rc_on_ready ctx)
  in
  ctx.rc_watch <- Some w;
  (* the client's hello may already be queued: registration reports no
     initial readiness, so ask for one dispatch explicitly *)
  Reactor.kick reactor w
