module Transport = Ovnet.Transport
module Rpc_packet = Ovrpc.Rpc_packet
module Verror = Ovirt_core.Verror
module Ka = Protocol.Keepalive_protocol

type program = {
  prog_number : int;
  prog_version : int;
  high_priority : int -> bool;
  peek_deadline : procedure:int -> body:string -> (float * int) option;
      (* For calls carrying a deadline envelope: peek into the body at
         receive time and return (absolute deadline anchored now, inner
         procedure number).  The dispatcher uses the deadline to drop
         jobs that expire while queued, and the inner procedure to
         classify priority by the wrapped call rather than the envelope. *)
  handle :
    Server_obj.t ->
    Client_obj.t ->
    Rpc_packet.header ->
    string ->
    (string, Verror.t) result;
  on_disconnect : Client_obj.t -> unit;
}

let send_reply client header result =
  let packet =
    match result with
    | Ok body -> Rpc_packet.encode (Rpc_packet.reply_ok header) body
    | Error err ->
      Rpc_packet.encode
        (Rpc_packet.reply_error header)
        (Protocol.Remote_protocol.enc_error err)
  in
  Client_obj.send_packet client packet

let run_call srv prog client header body ~deadline =
  Client_obj.touch client;
  let logger = Server_obj.logger srv in
  Vlog.logf logger ~module_:"daemon.rpc" Vlog.Debug
    "client %Ld: dispatching program=0x%x procedure=%d serial=%d (%d body bytes)"
    (Client_obj.id client) header.Rpc_packet.program header.Rpc_packet.procedure
    header.Rpc_packet.serial (String.length body);
  let result =
    try Reqctx.with_deadline deadline (fun () -> prog.handle srv client header body)
    with
    | Verror.Virt_error err -> Error err
    | Xdr.Error msg -> Verror.error Verror.Rpc_failure "malformed call body: %s" msg
    | Ovrpc.Typed_params.Invalid msg ->
      Verror.error Verror.Rpc_failure "bad typed parameters: %s" msg
    | exn ->
      Verror.error Verror.Internal_error "unhandled exception: %s"
        (Printexc.to_string exn)
  in
  (match result with
   | Ok _ -> ()
   | Error err ->
     Vlog.logf logger ~module_:"daemon.rpc" Vlog.Error
       "client %Ld: procedure %d failed: %s" (Client_obj.id client)
       header.Rpc_packet.procedure (Verror.to_string err));
  send_reply client header result;
  (* Successfully processing any call authenticates the client (stand-in
     for the SASL/polkit handshake real services run) — except keepalive
     pings, which prove liveness, not identity. *)
  if Result.is_ok result && prog.prog_number <> Ka.program then
    Client_obj.mark_authenticated client

(* The keepalive program: any server answers pings so clients can tell a
   live-but-busy daemon from a dead one.  The PONG is the plain Status_ok
   reply; its serial matches no pending call on the client, which is how
   the client recognises it. *)
let keepalive_program =
  {
    prog_number = Ka.program;
    prog_version = Ka.version;
    high_priority = (fun _ -> true);
    peek_deadline = (fun ~procedure:_ ~body:_ -> None);
    handle =
      (fun _srv _client header _body ->
        if header.Rpc_packet.procedure = Ka.proc_ping then Ok ""
        else
          Verror.error Verror.Rpc_failure "unknown keepalive procedure %d"
            header.Rpc_packet.procedure);
    on_disconnect = (fun _client -> ());
  }

let reader_loop srv prog_table client =
  let logger = Server_obj.logger srv in
  let conn = Client_obj.conn client in
  let rec loop () =
    match Transport.recv conn with
    | exception (Transport.Closed | Transport.Corrupt _) -> ()
    | wire ->
      (match Rpc_packet.decode wire with
       | exception Rpc_packet.Bad_packet msg ->
         Vlog.logf logger ~module_:"daemon.rpc" Vlog.Error
           "client %Ld: dropping connection after bad packet: %s"
           (Client_obj.id client) msg;
         Client_obj.close client
       | header, body ->
         (match Hashtbl.find_opt prog_table header.Rpc_packet.program with
          | None ->
            send_reply client header
              (Verror.error Verror.Rpc_failure "unknown program 0x%x"
                 header.Rpc_packet.program);
            loop ()
          | Some prog ->
            if header.Rpc_packet.version <> prog.prog_version then begin
              send_reply client header
                (Verror.error Verror.Rpc_failure
                   "program 0x%x: unsupported version %d" prog.prog_number
                   header.Rpc_packet.version);
              loop ()
            end
            else if Server_obj.is_draining srv && prog.prog_number <> Ka.program
            then begin
              (* Graceful degradation: in-flight dispatches finish, new
                 work is refused, pings still answered. *)
              send_reply client header
                (Verror.error Verror.Operation_invalid "server %s is draining"
                   (Server_obj.name srv));
              loop ()
            end
            else begin
              let peeked =
                prog.peek_deadline ~procedure:header.Rpc_packet.procedure ~body
              in
              let priority =
                match peeked with
                | Some (_, inner) -> prog.high_priority inner
                | None -> prog.high_priority header.Rpc_packet.procedure
              in
              let deadline = Option.map fst peeked in
              let on_expired () =
                (* The job's deadline passed while it sat in the pool
                   queue: answer without ever running the handler. *)
                send_reply client header
                  (Verror.error Verror.Operation_failed
                     "deadline expired in queue (procedure %d)"
                     header.Rpc_packet.procedure)
              in
              (match
                 Threadpool.submit (Server_obj.pool srv) ~priority
                   ~source:(Client_obj.id client) ?deadline ~on_expired
                   (fun () -> run_call srv prog client header body ~deadline)
               with
               | Ok () -> ()
               | Error { Threadpool.retry_after_ms } ->
                 (* Admission control shed the call: reject synchronously
                    on the reader thread with a machine-readable hint. *)
                 send_reply client header
                   (Verror.overloaded ~retry_after_ms
                      "server %s: job queue is full" (Server_obj.name srv)));
              loop ()
            end))
  in
  loop ()

let attach_client srv programs conn =
  (* Program lookup runs once per packet: resolve the registered list
     into a table up front instead of scanning it in the reader loop. *)
  let prog_table = Hashtbl.create (2 * List.length programs) in
  List.iter (fun p -> Hashtbl.replace prog_table p.prog_number p) programs;
  match Server_obj.accept_client srv conn with
  | Error _ -> () (* connection already closed by the limit check *)
  | Ok client ->
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> p.on_disconnect client) programs;
        Server_obj.remove_client srv (Client_obj.id client);
        Vlog.logf (Server_obj.logger srv) ~module_:"daemon.server" Vlog.Info
          "server %s: client %Ld disconnected" (Server_obj.name srv)
          (Client_obj.id client))
      (fun () -> reader_loop srv prog_table client)
