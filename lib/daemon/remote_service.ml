open Ovirt_core
module Rp = Protocol.Remote_protocol
module Rpc_packet = Ovrpc.Rpc_packet

(* A v1.6 client subscribes through the node's replay ring (events carry
   stream positions); older clients tap the bus directly, as before. *)
type event_sub =
  | Sub_bus of Events.subscription
  | Sub_ring of Eventring.t * int

type conn_state = {
  ops : Driver.ops;
  uri : string;  (** the direct (transport-stripped) URI opened *)
  cache_ok : bool;
      (** false when the client's URI carried [replycache=0/off]; the
          per-connection lever to opt out of the server reply cache *)
  mutable event_sub : event_sub option;
}

(* Per-client open connections, keyed by client id.  One table per daemon
   process is enough: client ids are unique per server and the remote
   program is attached to exactly one server. *)
type state = {
  mutex : Mutex.t;
  conns : (int64, conn_state) Hashtbl.t;
  logger : Vlog.t;
  reconcile : Reconcile.t option;  (** the daemon's policy engine *)
  rings : (string, Eventring.t) Hashtbl.t;
      (** replay ring per driver-node URI, daemon-lifetime *)
  ring_capacity : int;
  caches : (string, Reply_cache.t) Hashtbl.t;
      (** reply cache per driver-node URI, daemon-lifetime (like rings) *)
  cache_enabled : bool;  (** the [reply_cache] config knob *)
  cache_entries : int;  (** per-cache LRU bound *)
}

let with_lock st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let ( let* ) = Result.bind

let get_conn st client =
  with_lock st (fun () ->
      match Hashtbl.find_opt st.conns (Client_obj.id client) with
      | Some cs -> Ok cs
      | None ->
        Verror.error Verror.No_connect "client has no open hypervisor connection")

(* The daemon opens the URI locally: strip the transport suffix so the
   registry resolves a direct (stateful) driver. *)
let do_open st client body =
  let uri_string = Rp.dec_string_body body in
  let* uri = Vuri.parse uri_string in
  let direct_uri = { uri with Vuri.transport = None } in
  (* Per-connection opt-out: clients append [?replycache=0] (forwarded by
     the remote driver, unlike its client-local [cache] params) to force
     every read through the live handler. *)
  let cache_ok =
    match Vuri.param uri "replycache" with
    | Some ("0" | "off" | "no") -> false
    | Some _ | None -> true
  in
  with_lock st (fun () ->
      if Hashtbl.mem st.conns (Client_obj.id client) then
        Verror.error Verror.Operation_invalid "connection already open"
      else
        let* ops = Driver.open_uri direct_uri in
        Hashtbl.replace st.conns (Client_obj.id client)
          { ops; uri = Vuri.to_string direct_uri; cache_ok; event_sub = None };
        Vlog.logf st.logger ~module_:"daemon.remote" Vlog.Info
          "client %Ld opened %s via driver %s" (Client_obj.id client) uri_string
          ops.Driver.drv_name;
        Ok Rp.enc_unit_body)

(* Callers hold [st.mutex].  Lock order is st.mutex > ring mutex
   everywhere; ring code never takes st.mutex back. *)
let drop_event_sub (cs : conn_state) =
  (match cs.event_sub with
   | Some (Sub_bus sub) -> Events.unsubscribe cs.ops.Driver.events sub
   | Some (Sub_ring (ring, id)) -> Eventring.unsubscribe ring id
   | None -> ());
  cs.event_sub <- None

let teardown_conn st id =
  with_lock st (fun () ->
      match Hashtbl.find_opt st.conns id with
      | None -> ()
      | Some cs ->
        drop_event_sub cs;
        cs.ops.Driver.close ();
        Hashtbl.remove st.conns id)

let do_close st client =
  teardown_conn st (Client_obj.id client);
  Ok Rp.enc_unit_body

let net_backend (cs : conn_state) =
  match cs.ops.Driver.net with
  | Some b -> Ok b
  | None -> Driver.unsupported ~drv:cs.ops.Driver.drv_name ~op:"networks"

let storage_backend (cs : conn_state) =
  match cs.ops.Driver.storage with
  | Some b -> Ok b
  | None -> Driver.unsupported ~drv:cs.ops.Driver.drv_name ~op:"storage pools"

(* Lookup and subscription must share one critical section: with the
   lookup under a separate lock acquisition, a disconnect arriving in
   between runs [teardown_conn] against a still-empty [event_sub], and
   the subscription installed afterwards leaks on the bus forever
   (delivering to a dead client). *)
let do_event_register st client =
  with_lock st (fun () ->
      match Hashtbl.find_opt st.conns (Client_obj.id client) with
      | None ->
        Verror.error Verror.No_connect "client has no open hypervisor connection"
      | Some cs -> (
        match cs.event_sub with
        | Some _ -> Ok Rp.enc_unit_body
        | None ->
          let sub =
            Events.subscribe cs.ops.Driver.events (fun event ->
                let header =
                  Rpc_packet.event_header ~program:Rp.program ~version:Rp.version
                    ~procedure:(Rp.proc_to_int Rp.Proc_event_lifecycle)
                in
                Client_obj.send_packet client
                  (Rpc_packet.encode header (Rp.enc_lifecycle_event event)))
          in
          cs.event_sub <- Some (Sub_bus sub);
          Ok Rp.enc_unit_body))

(* Caller holds [st.mutex]. *)
let ring_for st (cs : conn_state) =
  match Hashtbl.find_opt st.rings cs.uri with
  | Some ring -> ring
  | None ->
    let ring =
      Eventring.create ~capacity:st.ring_capacity ~bus:cs.ops.Driver.events
    in
    Hashtbl.replace st.rings cs.uri ring;
    ring

(* The same critical-section rule as [do_event_register] applies, and
   more: arming the subscription and computing the replay are one
   critical section of the ring mutex (inside [Eventring.resume]), so
   the client observes every event exactly once at the boundary. *)
let do_event_resume st client body =
  let last_seq = Rp.dec_event_resume body in
  with_lock st (fun () ->
      match Hashtbl.find_opt st.conns (Client_obj.id client) with
      | None ->
        Verror.error Verror.No_connect "client has no open hypervisor connection"
      | Some cs ->
        drop_event_sub cs;
        let ring = ring_for st cs in
        let push event =
          let header =
            Rpc_packet.event_header ~program:Rp.program ~version:Rp.version
              ~procedure:(Rp.proc_to_int Rp.Proc_event_lifecycle_seq)
          in
          Client_obj.send_packet client
            (Rpc_packet.encode header (Rp.enc_seq_event event))
        in
        let sub_id, reply = Eventring.resume ring ~last_seq push in
        cs.event_sub <- Some (Sub_ring (ring, sub_id));
        if reply.Rp.rr_gap then
          Vlog.logf st.logger ~module_:"daemon.remote" Vlog.Info
            "client %Ld resume at seq %d gapped (retained %d..%d)"
            (Client_obj.id client) last_seq reply.Rp.rr_oldest reply.Rp.rr_head;
        Ok (Rp.enc_resume_reply reply))

let do_event_deregister st client =
  with_lock st (fun () ->
      match Hashtbl.find_opt st.conns (Client_obj.id client) with
      | None ->
        Verror.error Verror.No_connect "client has no open hypervisor connection"
      | Some cs ->
        drop_event_sub cs;
        Ok Rp.enc_unit_body)

(* ------------------------------------------------------------------ *)
(* Reply cache plumbing                                                *)
(* ------------------------------------------------------------------ *)

(* The hot read set: procedures whose replies are pure functions of
   driver state (checked driver by driver — e.g. cpu_time only advances
   inside write sections) and whose argument bytes are canonical, so
   (proc, body) is a sound cache key. *)
let cacheable_proc = function
  | Rp.Proc_get_capabilities | Rp.Proc_dom_list_all | Rp.Proc_dom_get_info
  | Rp.Proc_dom_get_xml | Rp.Proc_lookup_by_name | Rp.Proc_lookup_by_uuid
  | Rp.Proc_vol_lookup ->
    true
  | _ -> false

(* Caller holds [st.mutex].  Caches are per driver-node URI and live for
   the daemon (like [rings]); creating one also arms the proactive
   invalidation path — any lifecycle event on the node's bus flushes the
   cache.  Writes that emit no event (set_memory, define, autostart …)
   are caught by the generation stamp instead. *)
let cache_for st (cs : conn_state) =
  match Hashtbl.find_opt st.caches cs.uri with
  | Some cache -> cache
  | None ->
    let cache = Reply_cache.create ~max_entries:st.cache_entries in
    let (_ : Events.subscription) =
      Events.subscribe cs.ops.Driver.events (fun _ ->
          Reply_cache.invalidate_all cache)
    in
    Hashtbl.replace st.caches cs.uri cache;
    cache

(* The cache serving this connection, or [None] when any layer opts out:
   the daemon knob, the connection's URI param, or a driver without a
   generation stamp. *)
let conn_cache st (cs : conn_state) =
  if st.cache_enabled && cs.cache_ok && Option.is_some cs.ops.Driver.generation
  then Some (with_lock st (fun () -> cache_for st cs))
  else None

(* Cached frames carry serial 0; reply bodies never encode the serial, so
   the body bytes are serial-independent and a hit is re-targeted to any
   call by patching the one serial word. *)
let cached_reply_header proc =
  Rpc_packet.
    {
      program = Rp.program;
      version = Rp.version;
      procedure = Rp.proc_to_int proc;
      msg_type = Reply;
      serial = 0;
      status = Status_ok;
    }

(* Dispatch a connection-scoped procedure against [cs]: the shared tail
   of the dispatcher and of every batch sub-call.  The daemon's
   reconciler feeds its plan ops through {!dispatch_ops} below, so a
   policy-driven lifecycle change takes exactly the path a client's
   v1.3 batch sub-call does. *)
let dispatch_conn (cs : conn_state) proc body =
  let ( let* ) = Result.bind in
  let ops = cs.ops in
  match proc with
  | Rp.Proc_open | Rp.Proc_close | Rp.Proc_ping | Rp.Proc_echo
  | Rp.Proc_event_register | Rp.Proc_event_deregister | Rp.Proc_event_lifecycle
  | Rp.Proc_event_resume | Rp.Proc_event_lifecycle_seq
  | Rp.Proc_proto_minor | Rp.Proc_call_batch | Rp.Proc_call_deadline
  | Rp.Proc_dom_set_policy | Rp.Proc_dom_get_policy
  | Rp.Proc_daemon_reconcile_status ->
    Verror.error Verror.Rpc_failure "procedure %d is not connection-scoped"
      (Rp.proc_to_int proc)
  | Rp.Proc_get_capabilities ->
    Ok (Rp.enc_string_body (Capabilities.to_xml (ops.Driver.get_capabilities ())))
  | Rp.Proc_get_hostname -> Ok (Rp.enc_string_body (ops.Driver.get_hostname ()))
  | Rp.Proc_list_domains ->
    let* refs = ops.Driver.list_domains () in
    Ok (Rp.enc_domain_ref_list refs)
  | Rp.Proc_list_defined ->
    let* names = ops.Driver.list_defined () in
    Ok (Rp.enc_string_list names)
  | Rp.Proc_lookup_by_name ->
    let* r = ops.Driver.lookup_by_name (Rp.dec_string_body body) in
    Ok (Rp.enc_domain_ref r)
  | Rp.Proc_lookup_by_uuid ->
    let* uuid =
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Vmm.Uuid.of_string (Rp.dec_string_body body))
    in
    let* r = ops.Driver.lookup_by_uuid uuid in
    Ok (Rp.enc_domain_ref r)
  | Rp.Proc_define_xml ->
    let* r = ops.Driver.define_xml (Rp.dec_string_body body) in
    Ok (Rp.enc_domain_ref r)
  | Rp.Proc_undefine ->
    let* () = ops.Driver.undefine (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_create ->
    let* () = ops.Driver.dom_create (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_suspend ->
    let* () = ops.Driver.dom_suspend (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_resume ->
    let* () = ops.Driver.dom_resume (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_shutdown ->
    let* () = ops.Driver.dom_shutdown (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_destroy ->
    let* () = ops.Driver.dom_destroy (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_get_info ->
    let* info = ops.Driver.dom_get_info (Rp.dec_string_body body) in
    Ok (Rp.enc_domain_info info)
  | Rp.Proc_dom_get_xml ->
    let* xml = ops.Driver.dom_get_xml (Rp.dec_string_body body) in
    Ok (Rp.enc_string_body xml)
  | Rp.Proc_dom_set_memory ->
    let name, kib = Rp.dec_name_and_kib body in
    let* () = ops.Driver.dom_set_memory name kib in
    Ok Rp.enc_unit_body
  | Rp.Proc_dom_save ->
    let name = Rp.dec_string_body body in
    (match ops.Driver.dom_save with
     | Some f ->
       let* () = f name in
       Ok Rp.enc_unit_body
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"managed save")
  | Rp.Proc_dom_restore ->
    let name = Rp.dec_string_body body in
    (match ops.Driver.dom_restore with
     | Some f ->
       let* () = f name in
       Ok Rp.enc_unit_body
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"managed restore")
  | Rp.Proc_dom_has_managed_save ->
    let name = Rp.dec_string_body body in
    (match ops.Driver.dom_has_managed_save with
     | Some f ->
       let* has = f name in
       Ok (Rp.enc_bool_body has)
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"managed save")
  | Rp.Proc_dom_set_autostart ->
    let name, autostart = Rp.dec_name_and_bool body in
    (match ops.Driver.dom_set_autostart with
     | Some f ->
       let* () = f name autostart in
       Ok Rp.enc_unit_body
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"autostart")
  | Rp.Proc_dom_get_autostart ->
    let name = Rp.dec_string_body body in
    (match ops.Driver.dom_get_autostart with
     | Some f ->
       let* flag = f name in
       Ok (Rp.enc_bool_body flag)
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"autostart")
  | Rp.Proc_net_list ->
    let* b = net_backend cs in
    let* infos = b.Driver.net_list () in
    Ok (Rp.enc_net_info_list infos)
  | Rp.Proc_net_define ->
    let name, bridge, ip_range = Rp.dec_net_define body in
    let* b = net_backend cs in
    let* info = b.Driver.net_define ~name ~bridge ~ip_range in
    Ok (Rp.enc_net_info info)
  | Rp.Proc_net_start ->
    let* b = net_backend cs in
    let* () = b.Driver.net_start (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_net_stop ->
    let* b = net_backend cs in
    let* () = b.Driver.net_stop (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_net_undefine ->
    let* b = net_backend cs in
    let* () = b.Driver.net_undefine (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_net_set_autostart ->
    let name, autostart = Rp.dec_name_and_bool body in
    let* b = net_backend cs in
    let* () = b.Driver.net_set_autostart name autostart in
    Ok Rp.enc_unit_body
  | Rp.Proc_net_lookup ->
    let* b = net_backend cs in
    let* info = b.Driver.net_lookup (Rp.dec_string_body body) in
    Ok (Rp.enc_net_info info)
  | Rp.Proc_pool_list ->
    let* b = storage_backend cs in
    let* infos = b.Driver.pool_list () in
    Ok (Rp.enc_pool_info_list infos)
  | Rp.Proc_pool_define ->
    let name, target_path, capacity_b = Rp.dec_pool_define body in
    let* b = storage_backend cs in
    let* info = b.Driver.pool_define ~name ~target_path ~capacity_b in
    Ok (Rp.enc_pool_info info)
  | Rp.Proc_pool_start ->
    let* b = storage_backend cs in
    let* () = b.Driver.pool_start (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_pool_stop ->
    let* b = storage_backend cs in
    let* () = b.Driver.pool_stop (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_pool_undefine ->
    let* b = storage_backend cs in
    let* () = b.Driver.pool_undefine (Rp.dec_string_body body) in
    Ok Rp.enc_unit_body
  | Rp.Proc_pool_lookup ->
    let* b = storage_backend cs in
    let* info = b.Driver.pool_lookup (Rp.dec_string_body body) in
    Ok (Rp.enc_pool_info info)
  | Rp.Proc_vol_create ->
    let pool, name, capacity_b, format = Rp.dec_vol_create body in
    let* b = storage_backend cs in
    let* info = b.Driver.vol_create ~pool ~name ~capacity_b ~format in
    Ok (Rp.enc_vol_info info)
  | Rp.Proc_vol_delete ->
    let pool, name = Rp.dec_vol_ref body in
    let* b = storage_backend cs in
    let* () = b.Driver.vol_delete ~pool ~name in
    Ok Rp.enc_unit_body
  | Rp.Proc_vol_list ->
    let* b = storage_backend cs in
    let* infos = b.Driver.vol_list ~pool:(Rp.dec_string_body body) in
    Ok (Rp.enc_vol_info_list infos)
  | Rp.Proc_dom_list_all ->
    let* records = Driver.list_all ops in
    Ok (Rp.enc_domain_record_list records)
  | Rp.Proc_vol_lookup ->
    let* b = storage_backend cs in
    let* info = b.Driver.vol_by_path (Rp.dec_string_body body) in
    Ok (Rp.enc_vol_info info)
  | Rp.Proc_fleet_list_all ->
    let () = Rp.dec_unit_body body in
    (match ops.Driver.fleet with
     | Some fv ->
       let* listing = fv.Driver.fleet_list_all () in
       Ok (Rp.enc_fleet_listing listing)
     | None ->
       (* A plain daemon is a fleet of one: its own rows, complete.  This
          lets a v1.7 client use the annotated listing unconditionally. *)
       let* records = Driver.list_all ops in
       Ok
         (Rp.enc_fleet_listing
            Driver.{ fl_records = records; fl_shard_errors = []; fl_members = 1 }))
  | Rp.Proc_fleet_status ->
    let () = Rp.dec_unit_body body in
    (match ops.Driver.fleet with
     | Some fv ->
       let* status = fv.Driver.fleet_status () in
       Ok (Rp.enc_fleet_status status)
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"fleet status")
  | Rp.Proc_fleet_migrate ->
    let domain, dest = Rp.dec_fleet_migrate body in
    (match ops.Driver.fleet with
     | Some fv ->
       let* () = fv.Driver.fleet_migrate ~domain ~dest in
       Ok Rp.enc_unit_body
     | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"fleet migration")

(* The reconciler's application path: a plan op arrives here already
   encoded as a (procedure, body) sub-call and dispatches against bare
   [ops] exactly as it would inside a [Proc_call_batch] frame. *)
let dispatch_ops ops proc body =
  dispatch_conn { ops; uri = ""; cache_ok = false; event_sub = None } proc body

(* ------------------------------------------------------------------ *)
(* Cross-shard batch isolation                                         *)
(* ------------------------------------------------------------------ *)

(* Which domain a mutating sub-call targets, for placement.  [`Read]
   sub-calls carry no isolation constraint; [`Opaque] ones mutate but
   cannot be placed by name (a [define_xml] creates the domain, so its
   owner is only decided by placement inside the fleet layer). *)
let batch_target proc body =
  match proc with
  | Rp.Proc_undefine | Rp.Proc_dom_create | Rp.Proc_dom_suspend
  | Rp.Proc_dom_resume | Rp.Proc_dom_shutdown | Rp.Proc_dom_destroy
  | Rp.Proc_dom_save | Rp.Proc_dom_restore -> (
    match Rp.dec_string_body body with
    | name -> `Domain name
    | exception _ -> `Opaque)
  | Rp.Proc_dom_set_memory -> (
    match Rp.dec_name_and_kib body with
    | name, _ -> `Domain name
    | exception _ -> `Opaque)
  | Rp.Proc_dom_set_autostart -> (
    match Rp.dec_name_and_bool body with
    | name, _ -> `Domain name
    | exception _ -> `Opaque)
  | Rp.Proc_dom_set_policy -> (
    match Rp.dec_set_policy body with
    | name, _ -> `Domain name
    | exception _ -> `Opaque)
  | Rp.Proc_define_xml | Rp.Proc_fleet_migrate -> `Opaque
  | _ -> `Read

(* A fleet connection refuses batches whose mutating sub-calls span more
   than one member: sub-calls execute with per-sub error isolation, so a
   multi-shard batch could half-apply across shards with no rollback.
   Whole-batch refusal keeps the invariant "one batch, one shard, one
   failure domain". *)
let batch_isolation st client subs =
  match
    with_lock st (fun () -> Hashtbl.find_opt st.conns (Client_obj.id client))
  with
  | None -> Ok ()
  | Some cs -> (
    match cs.ops.Driver.fleet with
    | None -> Ok ()
    | Some fv ->
      let rec owners acc i = function
        | [] -> Ok acc
        | (proc_num, sub_body) :: rest -> (
          match Rp.proc_of_int proc_num with
          | Error _ -> owners acc (i + 1) rest
          | Ok sub_proc -> (
            match batch_target sub_proc sub_body with
            | `Read -> owners acc (i + 1) rest
            | `Opaque ->
              Verror.error Verror.Operation_invalid
                "cross-shard batch refused: sub-call %d (procedure %d) cannot \
                 be placed on a single member"
                i proc_num
            | `Domain name -> (
              match fv.Driver.fleet_owner name with
              | Error err ->
                Verror.error Verror.Operation_invalid
                  "cross-shard batch refused: cannot place domain %S: %s" name
                  err.Verror.message
              | Ok owner ->
                if List.mem owner acc then owners acc (i + 1) rest
                else owners (owner :: acc) (i + 1) rest)))
      in
      let* distinct = owners [] 0 subs in
      if List.length distinct > 1 then
        Verror.error Verror.Operation_invalid
          "cross-shard batch refused: mutating sub-calls span members %s"
          (String.concat ", " (List.rev distinct))
      else Ok ())

(* Conn-scoped serving tail with the reply cache in front of the
   handler.  The generation is snapshotted {e before} the handler runs:
   if a write overlaps the fill, the write's bump (made while it still
   holds the write lock) leaves this snapshot stale, so the entry is
   discarded at its next lookup — the fill can never pin post-write data
   under a pre-write stamp, and serving a still-valid pre-write frame
   while a write is in flight is just a read ordered before the write.
   On a hit the pre-framed packet is unwrapped back to its body: batch
   sub-calls and the top-level dispatcher both consume bodies, and the
   top level re-frames with the caller's serial. *)
let serve_conn st (cs : conn_state) proc body =
  match (if cacheable_proc proc then conn_cache st cs else None) with
  | None -> dispatch_conn cs proc body
  | Some cache ->
    let pnum = Rp.proc_to_int proc in
    let gen_of = Option.get cs.ops.Driver.generation in
    let gen = gen_of () in
    (match Reply_cache.find cache ~proc:pnum ~args:body ~gen with
     | Some frame ->
       Ok
         (String.sub frame Rpc_packet.prefix_bytes
            (String.length frame - Rpc_packet.prefix_bytes))
     | None ->
       let result = dispatch_conn cs proc body in
       (match result with
        | Ok reply ->
          Reply_cache.insert cache ~proc:pnum ~args:body ~gen
            (Rpc_packet.encode (cached_reply_header proc) reply)
        | Error _ -> ());
       result)

(* [minor] is the protocol minor this daemon serves: procedures newer
   than it are rejected with the very error an old build produces for an
   unknown number, which is what clients key version negotiation on.
   [in_batch] guards against nested batch containers. *)
let rec handle_proc st ~minor ~in_batch client proc body =
  if Rp.proc_min_minor proc > minor then
    Verror.error Verror.Rpc_failure "unknown remote procedure %d"
      (Rp.proc_to_int proc)
  else
  match proc with
  | Rp.Proc_open -> do_open st client body
  | Rp.Proc_close -> do_close st client
  | Rp.Proc_ping ->
    let () = Rp.dec_unit_body body in
    Ok Rp.enc_unit_body
  | Rp.Proc_echo -> Ok body
  | Rp.Proc_proto_minor ->
    let () = Rp.dec_unit_body body in
    Ok (Rp.enc_int_body minor)
  | Rp.Proc_call_batch ->
    if in_batch then
      Verror.error Verror.Rpc_failure "nested batch calls are not allowed"
    else
      (* Sub-calls execute sequentially on the worker already running the
         batch (handing them back to the pool could deadlock a small
         pool) with per-sub-call error isolation mirroring the
         dispatcher's: one failing sub-call yields one error sub-reply
         and its siblings proceed. *)
      let subs = Rp.dec_batch_call body in
      let* () = batch_isolation st client subs in
      let replies =
        List.map
          (fun (proc_num, sub_body) ->
            let result =
              match Rp.proc_of_int proc_num with
              | Error msg -> Error (Verror.make Verror.Rpc_failure msg)
              | Ok sub_proc -> (
                try handle_proc st ~minor ~in_batch:true client sub_proc sub_body
                with
                | Verror.Virt_error err -> Error err
                | Xdr.Error msg ->
                  Verror.error Verror.Rpc_failure "malformed call body: %s" msg
                | exn ->
                  Verror.error Verror.Internal_error "unhandled exception: %s"
                    (Printexc.to_string exn))
            in
            match result with
            | Ok reply -> (true, reply)
            | Error err -> (false, Rp.enc_error err))
          subs
      in
      Ok (Rp.enc_batch_reply replies)
  | Rp.Proc_call_deadline ->
    if in_batch then
      Verror.error Verror.Rpc_failure
        "deadline envelopes are not allowed inside a batch"
    else
      let budget_ms, proc_num, inner_body = Rp.dec_deadline_call body in
      (match Rp.proc_of_int proc_num with
       | Error msg -> Error (Verror.make Verror.Rpc_failure msg)
       | Ok Rp.Proc_call_deadline ->
         Verror.error Verror.Rpc_failure "nested deadline envelopes are not allowed"
       | Ok inner_proc ->
         (* The dispatcher normally anchored the deadline at receive time
            and installed it in the request context before queueing; if
            this call arrived by another path (tests, direct handle), do
            the anchoring here so driver ops still see the budget. *)
         let run () =
           let* () = Reqctx.check ~what:"dispatch" () in
           handle_proc st ~minor ~in_batch:false client inner_proc inner_body
         in
         (match Reqctx.deadline () with
          | Some _ -> run ()
          | None ->
            Reqctx.with_deadline
              (Some (Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.)))
              run))
  | Rp.Proc_event_register -> do_event_register st client
  | Rp.Proc_event_deregister -> do_event_deregister st client
  | Rp.Proc_event_resume -> do_event_resume st client body
  | Rp.Proc_event_lifecycle | Rp.Proc_event_lifecycle_seq ->
    Verror.error Verror.Rpc_failure "lifecycle is a server-to-client event"
  | Rp.Proc_dom_set_policy ->
    let name, policy = Rp.dec_set_policy body in
    let* cs = get_conn st client in
    (match st.reconcile with
     | None ->
       Driver.unsupported ~drv:cs.ops.Driver.drv_name ~op:"lifecycle policy"
     | Some r ->
       (* the spec must name a defined domain on this node *)
       let* _ref = cs.ops.Driver.lookup_by_name name in
       Reconcile.set_policy r ~uri:cs.uri ~name policy;
       Ok Rp.enc_unit_body)
  | Rp.Proc_dom_get_policy ->
    let name = Rp.dec_string_body body in
    let* cs = get_conn st client in
    (match st.reconcile with
     | None ->
       Driver.unsupported ~drv:cs.ops.Driver.drv_name ~op:"lifecycle policy"
     | Some r ->
       let* _ref = cs.ops.Driver.lookup_by_name name in
       Ok (Rp.enc_policy (Reconcile.get_policy r ~uri:cs.uri ~name)))
  | Rp.Proc_daemon_reconcile_status ->
    let () = Rp.dec_unit_body body in
    (match st.reconcile with
     | None ->
       Verror.error Verror.Operation_unsupported "this daemon has no reconciler"
     | Some r -> Ok (Rp.enc_reconcile_status (Reconcile.status r)))
  | proc ->
    let* cs = get_conn st client in
    serve_conn st cs proc body

let handle st ~minor _srv client header body =
  let* proc =
    Result.map_error
      (Verror.make Verror.Rpc_failure)
      (Rp.proc_of_int header.Rpc_packet.procedure)
  in
  handle_proc st ~minor ~in_batch:false client proc body

type t = { st : state; svc_minor : int }

type event_totals = {
  evt_rings : int;
  evt_emitted : int;
  evt_replayed : int;
  evt_gaps : int;
  evt_resumes : int;
  evt_occupancy : int;
  evt_capacity : int;
  evt_subscribers : int;
  evt_head : int;  (** highest stream position across rings *)
}

type cache_totals = {
  rct_caches : int;
  rct_hits : int;
  rct_misses : int;
  rct_insertions : int;
  rct_invalidations : int;
  rct_evictions : int;
  rct_patched_sends : int;
  rct_entries : int;
  rct_bytes : int;
  rct_enabled : bool;
}

let make ?(minor = Rp.minor) ?(event_ring_capacity = 1024)
    ?(reply_cache = true) ?(reply_cache_entries = 512) ?reconcile ~logger () =
  let st =
    {
      mutex = Mutex.create ();
      conns = Hashtbl.create 32;
      logger;
      reconcile;
      rings = Hashtbl.create 8;
      ring_capacity = event_ring_capacity;
      caches = Hashtbl.create 8;
      cache_enabled = reply_cache;
      cache_entries = max 1 reply_cache_entries;
    }
  in
  { st; svc_minor = minor }

let reply_cache_totals t =
  let caches =
    with_lock t.st (fun () ->
        Hashtbl.fold (fun _ cache acc -> cache :: acc) t.st.caches [])
  in
  List.fold_left
    (fun acc cache ->
      let s = Reply_cache.stats cache in
      {
        acc with
        rct_caches = acc.rct_caches + 1;
        rct_hits = acc.rct_hits + s.Reply_cache.hits;
        rct_misses = acc.rct_misses + s.Reply_cache.misses;
        rct_insertions = acc.rct_insertions + s.Reply_cache.insertions;
        rct_invalidations = acc.rct_invalidations + s.Reply_cache.invalidations;
        rct_evictions = acc.rct_evictions + s.Reply_cache.evictions;
        rct_patched_sends = acc.rct_patched_sends + s.Reply_cache.patched_sends;
        rct_entries = acc.rct_entries + s.Reply_cache.entries;
        rct_bytes = acc.rct_bytes + s.Reply_cache.bytes;
      })
    {
      rct_caches = 0;
      rct_hits = 0;
      rct_misses = 0;
      rct_insertions = 0;
      rct_invalidations = 0;
      rct_evictions = 0;
      rct_patched_sends = 0;
      rct_entries = 0;
      rct_bytes = 0;
      rct_enabled = t.st.cache_enabled;
    }
    caches

let event_totals t =
  let rings =
    with_lock t.st (fun () ->
        Hashtbl.fold (fun _ ring acc -> ring :: acc) t.st.rings [])
  in
  List.fold_left
    (fun acc ring ->
      let s = Eventring.stats ring in
      {
        evt_rings = acc.evt_rings + 1;
        evt_emitted = acc.evt_emitted + s.Eventring.er_emitted;
        evt_replayed = acc.evt_replayed + s.Eventring.er_replayed;
        evt_gaps = acc.evt_gaps + s.Eventring.er_gaps;
        evt_resumes = acc.evt_resumes + s.Eventring.er_resumes;
        evt_occupancy = acc.evt_occupancy + s.Eventring.er_occupancy;
        evt_capacity = acc.evt_capacity + s.Eventring.er_capacity;
        evt_subscribers = acc.evt_subscribers + s.Eventring.er_subscribers;
        evt_head = max acc.evt_head s.Eventring.er_head;
      })
    {
      evt_rings = 0;
      evt_emitted = 0;
      evt_replayed = 0;
      evt_gaps = 0;
      evt_resumes = 0;
      evt_occupancy = 0;
      evt_capacity = 0;
      evt_subscribers = 0;
      evt_head = 0;
    }
    rings

let program_of { st; svc_minor = minor } =
  Dispatch.
    {
      prog_number = Rp.program;
      prog_version = Rp.version;
      high_priority =
        (fun proc ->
          match Rp.proc_of_int proc with
          | Ok p -> Rp.is_high_priority p
          | Error _ -> false);
      peek_deadline =
        (fun ~procedure ~body ->
          (* Only peek when this daemon actually serves v1.4 envelopes;
             a minor-pinned daemon must treat procedure 49 as unknown,
             so it must not gain deadline behavior either. *)
          if
            minor >= Rp.proc_min_minor Rp.Proc_call_deadline
            && procedure = Rp.proc_to_int Rp.Proc_call_deadline
          then
            match Rp.dec_deadline_call body with
            | budget_ms, inner, _ ->
              Some
                ( Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.),
                  inner )
            | exception _ -> None
          else None);
      try_fast_reply =
        (if not st.cache_enabled then None
         else
           Some
             (fun srv client header body ->
               (* Replay a cached pre-framed reply, patching the serial
                  word into a fresh copy (senders retain references to
                  transmitted strings, so the cached frame itself is
                  never mutated).  Runs on the receiving thread: a hit
                  skips pool submission, body decode, the driver read
                  lock, the handler and the re-encode. *)
               match Rp.proc_of_int header.Rpc_packet.procedure with
               | Error _ -> false
               | Ok proc -> (
                 (not (Rp.proc_min_minor proc > minor))
                 && cacheable_proc proc
                 &&
                 match
                   with_lock st (fun () ->
                       Hashtbl.find_opt st.conns (Client_obj.id client))
                 with
                 | None -> false
                 | Some cs -> (
                   match conn_cache st cs with
                   | None -> false
                   | Some cache -> (
                     let gen_of = Option.get cs.ops.Driver.generation in
                     match
                       Reply_cache.find cache
                         ~proc:header.Rpc_packet.procedure ~args:body
                         ~gen:(gen_of ())
                     with
                     | None -> false
                     | Some frame ->
                       Client_obj.touch client;
                       (try
                          Client_obj.send_packet client
                            (Rpc_packet.with_serial frame
                               header.Rpc_packet.serial)
                        with _ -> ());
                       Reply_cache.note_patched_send cache;
                       (* A served call authenticates the client exactly
                          as a dispatched one does. *)
                       Server_obj.note_authenticated srv client;
                       true)))));
      handle = (fun srv client header body -> handle st ~minor srv client header body);
      on_disconnect = (fun client -> teardown_conn st (Client_obj.id client));
    }

let program ?minor ?event_ring_capacity ?reply_cache ?reply_cache_entries
    ?reconcile ~logger () =
  program_of
    (make ?minor ?event_ring_capacity ?reply_cache ?reply_cache_entries
       ?reconcile ~logger ())
