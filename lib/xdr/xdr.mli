(** XDR (External Data Representation, RFC 4506 subset) codec.

    This is the wire serialization used by the daemon protocol, mirroring
    libvirt's use of XDR for every RPC body.  All quantities are big-endian
    and padded to 4-byte boundaries, as the standard requires.

    Encoding writes into a growable [Bytes.t] with an explicit position,
    so the backing storage can be reused ({!reset}) or supplied by the
    caller ({!encoder_of_bytes}), and fixed-width words written early can
    be patched in place ({!reserve} / {!patch_u32}).  Decoding reads from
    an immutable string with an explicit cursor.  Decoding failures raise
    {!Error} rather than returning options: a malformed packet aborts the
    whole message. *)

exception Error of string
(** Raised on malformed input: truncated data, out-of-range values,
    non-zero padding, or a trailing-garbage check failure. *)

(** {1 Encoding} *)

type encoder

val encoder : ?size:int -> unit -> encoder
(** Fresh encoder with an empty buffer of [size] (default 256) bytes
    initial capacity. *)

val encoder_of_bytes : Bytes.t -> encoder
(** Encoder writing into [buf] starting at position 0.  The encoder still
    grows (replacing its backing storage) if the encoded value outruns
    [buf]; callers lending pooled buffers should size them for the common
    case and treat growth as a graceful fallback. *)

val to_string : encoder -> string
(** Contents encoded so far (one copy). *)

val length : encoder -> int
(** Number of bytes encoded so far. *)

val reset : encoder -> unit
(** Rewind to position 0, keeping the backing buffer for reuse. *)

val reserve : encoder -> int -> int
(** [reserve e n] zero-fills and skips [n] bytes, returning their starting
    offset for a later {!patch_u32} (or out-of-band fill). *)

val patch_u32 : encoder -> int -> int -> unit
(** [patch_u32 e off v] overwrites the 4 bytes at [off] with [v] as a
    big-endian u32.  @raise Error if [off+4] exceeds the encoded length or
    [v] is out of u32 range. *)

val enc_int : encoder -> int -> unit
(** Signed 32-bit integer.  @raise Error if out of int32 range. *)

val enc_uint : encoder -> int -> unit
(** Unsigned 32-bit integer.  @raise Error if negative or >= 2^32. *)

val enc_hyper : encoder -> int64 -> unit
(** Signed 64-bit integer. *)

val enc_uhyper : encoder -> int64 -> unit
(** Unsigned 64-bit integer (carried as int64 bits). *)

val enc_bool : encoder -> bool -> unit
(** Boolean as 0/1 in a 32-bit word. *)

val enc_double : encoder -> float -> unit
(** IEEE-754 double, 8 bytes. *)

val enc_raw : encoder -> string -> unit
(** Append bytes verbatim — no length word, no padding.  For splicing an
    already-XDR-encoded body behind a reserved frame prefix. *)

val enc_string : encoder -> string -> unit
(** Variable-length string: u32 length, bytes, zero padding to 4. *)

val enc_opaque : encoder -> string -> unit
(** Variable-length opaque data; same wire form as {!enc_string}. *)

val enc_fixed_opaque : encoder -> int -> string -> unit
(** [enc_fixed_opaque e n s] writes exactly [n] bytes (padded to 4).
    @raise Error if [String.length s <> n]. *)

val enc_array : encoder -> (encoder -> 'a -> unit) -> 'a list -> unit
(** Counted array: u32 element count then each element. *)

val enc_option : encoder -> (encoder -> 'a -> unit) -> 'a option -> unit
(** XDR optional: bool discriminant then the payload if present. *)

(** {1 Decoding} *)

type decoder

val decoder : string -> decoder
(** Decoder positioned at the start of [s]. *)

val pos : decoder -> int
(** Current cursor position in bytes. *)

val remaining : decoder -> int
(** Bytes left to decode. *)

val dec_int : decoder -> int
val dec_uint : decoder -> int
val dec_hyper : decoder -> int64
val dec_uhyper : decoder -> int64
val dec_bool : decoder -> bool
val dec_double : decoder -> float
val dec_string : decoder -> string
val dec_opaque : decoder -> string
val dec_fixed_opaque : decoder -> int -> string

val dec_array : decoder -> (decoder -> 'a) -> 'a list
val dec_option : decoder -> (decoder -> 'a) -> 'a option

val check_consumed : decoder -> unit
(** @raise Error if bytes remain: every message must be fully consumed. *)

(** {1 Whole-value helpers} *)

val encode : (encoder -> 'a -> unit) -> 'a -> string
(** Encode a single value to a string. *)

val decode : (decoder -> 'a) -> string -> 'a
(** Decode a single value, checking full consumption. *)
