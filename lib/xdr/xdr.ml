exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Number of zero bytes needed to pad [n] bytes to a 4-byte boundary. *)
let padding n = (4 - (n land 3)) land 3

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* The writer targets a plain [Bytes.t] with an explicit position instead
   of a [Buffer.t].  This buys the hot reply path three things a Buffer
   cannot offer: the backing storage can be supplied by the caller (so the
   reactor can lend pooled buffers), the encoder can be [reset] and reused
   across packets without reallocating, and fixed-size words written early
   (array counts, frame headers) can be patched in place once the final
   value is known. *)
type encoder = { mutable buf : Bytes.t; mutable pos : int }

let encoder ?(size = 256) () = { buf = Bytes.create (max 8 size); pos = 0 }
let encoder_of_bytes buf = { buf; pos = 0 }
let to_string e = Bytes.sub_string e.buf 0 e.pos
let length e = e.pos
let reset e = e.pos <- 0

let ensure e n =
  let need = e.pos + n in
  let cap = Bytes.length e.buf in
  if need > cap then begin
    let cap' = ref (max 32 (cap * 2)) in
    while !cap' < need do
      cap' := !cap' * 2
    done;
    let buf = Bytes.create !cap' in
    Bytes.blit e.buf 0 buf 0 e.pos;
    e.buf <- buf
  end

let set_u32 buf off v =
  Bytes.unsafe_set buf off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (off + 3) (Char.unsafe_chr (v land 0xff))

let enc_raw_u32 e v =
  ensure e 4;
  set_u32 e.buf e.pos v;
  e.pos <- e.pos + 4

let reserve e n =
  ensure e n;
  let off = e.pos in
  Bytes.fill e.buf off n '\000';
  e.pos <- e.pos + n;
  off

let patch_u32 e off v =
  if off < 0 || off + 4 > e.pos then
    fail "patch_u32: offset %d outside encoded range [0,%d)" off e.pos;
  if v < 0 || v > 0xffff_ffff then fail "patch_u32: %d out of uint32 range" v;
  set_u32 e.buf off v

let enc_int e v =
  if v < -0x8000_0000 || v > 0x7fff_ffff then
    fail "enc_int: %d out of int32 range" v;
  enc_raw_u32 e (v land 0xffff_ffff)

let enc_uint e v =
  if v < 0 || v > 0xffff_ffff then fail "enc_uint: %d out of uint32 range" v;
  enc_raw_u32 e v

let enc_hyper e v =
  enc_raw_u32 e (Int64.to_int (Int64.shift_right_logical v 32) land 0xffff_ffff);
  enc_raw_u32 e (Int64.to_int (Int64.logand v 0xffff_ffffL))

let enc_uhyper = enc_hyper

let enc_bool e b = enc_raw_u32 e (if b then 1 else 0)
let enc_double e f = enc_hyper e (Int64.bits_of_float f)

let enc_pad e n =
  let p = padding n in
  if p > 0 then begin
    ensure e p;
    Bytes.fill e.buf e.pos p '\000';
    e.pos <- e.pos + p
  end

let add_string e s =
  let n = String.length s in
  ensure e n;
  Bytes.blit_string s 0 e.buf e.pos n;
  e.pos <- e.pos + n

let enc_raw = add_string

let enc_opaque e s =
  let n = String.length s in
  enc_uint e n;
  add_string e s;
  enc_pad e n

let enc_string = enc_opaque

let enc_fixed_opaque e n s =
  if String.length s <> n then
    fail "enc_fixed_opaque: expected %d bytes, got %d" n (String.length s);
  add_string e s;
  enc_pad e n

(* Single traversal: reserve the count word, encode while counting, then
   patch the count in place.  The old shape ([List.length] then
   [List.iter]) walked every list twice on the hot encode path. *)
let enc_array e enc_elt elts =
  let off = reserve e 4 in
  let n = List.fold_left (fun n elt -> enc_elt e elt; n + 1) 0 elts in
  patch_u32 e off n

let enc_option e enc_elt = function
  | None -> enc_bool e false
  | Some v ->
    enc_bool e true;
    enc_elt e v

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }
let pos d = d.pos
let remaining d = String.length d.data - d.pos

let need d n =
  if remaining d < n then
    fail "decode: need %d bytes at offset %d, only %d remain" n d.pos
      (remaining d)

let dec_raw_u32 d =
  need d 4;
  let b i = Char.code d.data.[d.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  d.pos <- d.pos + 4;
  v

let dec_uint = dec_raw_u32

let dec_int d =
  let v = dec_raw_u32 d in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let dec_hyper d =
  let hi = dec_raw_u32 d in
  let lo = dec_raw_u32 d in
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 32)
    (Int64.of_int lo)

let dec_uhyper = dec_hyper

let dec_bool d =
  match dec_raw_u32 d with
  | 0 -> false
  | 1 -> true
  | v -> fail "dec_bool: invalid boolean %d" v

let dec_double d = Int64.float_of_bits (dec_hyper d)

let dec_pad d n =
  let p = padding n in
  need d p;
  for i = 0 to p - 1 do
    if d.data.[d.pos + i] <> '\000' then
      fail "decode: non-zero padding at offset %d" (d.pos + i)
  done;
  d.pos <- d.pos + p

let dec_opaque d =
  let n = dec_uint d in
  need d n;
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  dec_pad d n;
  s

let dec_string = dec_opaque

let dec_fixed_opaque d n =
  need d n;
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  dec_pad d n;
  s

let dec_array d dec_elt =
  let n = dec_uint d in
  (* Sanity bound: each element needs at least one byte on the wire, so a
     count exceeding the remaining bytes is certainly malformed and would
     otherwise allocate an attacker-chosen amount of memory. *)
  if n > remaining d then fail "dec_array: count %d exceeds payload" n;
  if n = 0 then []
  else begin
    (* Pre-size through an array and decode in wire order with plain
       loops; [List.init n (fun _ -> dec_elt d)] allocated a closure and
       leaned on an unspecified evaluation order. *)
    let first = dec_elt d in
    let arr = Array.make n first in
    for i = 1 to n - 1 do
      Array.unsafe_set arr i (dec_elt d)
    done;
    Array.to_list arr
  end

let dec_option d dec_elt = if dec_bool d then Some (dec_elt d) else None

let check_consumed d =
  if remaining d <> 0 then
    fail "decode: %d trailing bytes at offset %d" (remaining d) d.pos

(* ------------------------------------------------------------------ *)
(* Whole-value helpers                                                 *)
(* ------------------------------------------------------------------ *)

let encode enc v =
  let e = encoder () in
  enc e v;
  to_string e

let decode dec s =
  let d = decoder s in
  let v = dec d in
  check_consumed d;
  v
