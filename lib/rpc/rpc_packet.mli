(** RPC packet framing, libvirt-style.

    Every message on a connection is one packet: a 4-byte big-endian
    length (covering header + body), an XDR header
    [(program:u32, version:u32, procedure:i32, type:i32, serial:u32,
    status:i32)], then the XDR-encoded body.  Replies echo the call's
    serial; [status = Error] means the body is a serialized error. *)

type msg_type = Call | Reply | Event

type status = Status_ok | Status_error

type header = {
  program : int;
  version : int;
  procedure : int;
  msg_type : msg_type;
  serial : int;
  status : status;
}

exception Bad_packet of string

val max_packet_size : int
(** Upper bound on accepted packet length (4 MiB, like libvirt's
    [VIR_NET_MESSAGE_MAX]); oversized packets raise {!Bad_packet}. *)

val encode : header -> string -> string
(** [encode header body] produces the full framed packet. *)

val encode_into : Xdr.encoder -> header -> (Xdr.encoder -> unit) -> string
(** [encode_into enc header enc_body] builds the same framed packet as
    {!encode} but XDR-encodes the body in place behind a reserved
    length+header prefix inside [enc] (which is {!Xdr.reset} first and may
    be reused, or borrow pooled backing bytes).  This skips the body
    string allocation and body→frame blit of the [encode] path; the one
    remaining copy extracts the final immutable frame. *)

val prefix_bytes : int
(** Length prefix + header: the byte offset where a frame's body starts
    (28). *)

val serial_offset : int
(** Absolute byte offset of the serial word inside a framed packet (20:
    after the length prefix and the program/version/procedure/type
    words).  Reply bodies never depend on the serial, so a cached frame
    can be replayed for a different call by rewriting this word alone. *)

val with_serial : string -> int -> string
(** [with_serial frame serial] is a copy of the framed packet with its
    serial word replaced.  A copy, not an in-place patch: senders retain
    references to transmitted strings, so cached frames must never be
    mutated.  @raise Bad_packet if [frame] is shorter than a header. *)

val decode : string -> header * string
(** Inverse of {!encode}.  @raise Bad_packet on any malformation:
    truncation, length mismatch, unknown type/status, oversize. *)

(** {2 Byte-stream framing} — the reactor's per-connection state machine
    peels packets out of an accumulation buffer wherever frame boundaries
    fall (split or coalesced arbitrarily, like a real TCP stream). *)

val frame_length : string -> pos:int -> avail:int -> int option
(** Header-read step: with [avail] bytes available at [pos], [None] means
    the 4-byte length prefix is still incomplete; [Some n] is the full
    frame length (prefix included) to wait for.  @raise Bad_packet when
    the prefix declares an oversized or impossibly short packet. *)

val decode_sub : string -> pos:int -> len:int -> header * string
(** Payload-read step: decode the complete frame spanning
    [\[pos, pos+len)].  [decode wire] is
    [decode_sub wire ~pos:0 ~len:(String.length wire)].
    @raise Bad_packet as {!decode}. *)

val call_header : program:int -> version:int -> procedure:int -> serial:int -> header

val reply_ok : header -> header
(** Reply header echoing a call's identity. *)

val reply_error : header -> header

val event_header : program:int -> version:int -> procedure:int -> header
(** Events carry serial 0: they answer no call. *)
