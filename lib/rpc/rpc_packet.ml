type msg_type = Call | Reply | Event
type status = Status_ok | Status_error

type header = {
  program : int;
  version : int;
  procedure : int;
  msg_type : msg_type;
  serial : int;
  status : status;
}

exception Bad_packet of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_packet s)) fmt

let max_packet_size = 4 * 1024 * 1024

let msg_type_to_int = function Call -> 0 | Reply -> 1 | Event -> 2

let msg_type_of_int = function
  | 0 -> Call
  | 1 -> Reply
  | 2 -> Event
  | n -> fail "unknown message type %d" n

let status_to_int = function Status_ok -> 0 | Status_error -> 1

let status_of_int = function
  | 0 -> Status_ok
  | 1 -> Status_error
  | n -> fail "unknown status %d" n

(* Framing runs once per RPC in both directions, so encode writes the
   length prefix and header straight into one exact-size buffer: no
   intermediate encoders, no string concatenation.  All six header
   fields are 4-byte XDR words. *)
let header_bytes = 24

let put_u32 buf off v =
  Bytes.set_uint8 buf off ((v lsr 24) land 0xff);
  Bytes.set_uint8 buf (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 buf (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 buf (off + 3) (v land 0xff)

let encode header body =
  let total = header_bytes + String.length body in
  if total > max_packet_size then fail "packet of %d bytes exceeds maximum" total;
  let buf = Bytes.create (4 + total) in
  put_u32 buf 0 total;
  put_u32 buf 4 header.program;
  put_u32 buf 8 header.version;
  put_u32 buf 12 header.procedure;
  put_u32 buf 16 (msg_type_to_int header.msg_type);
  put_u32 buf 20 header.serial;
  put_u32 buf 24 (status_to_int header.status);
  Bytes.blit_string body 0 buf 28 (String.length body);
  Bytes.unsafe_to_string buf

(* Zero-copy variant: the body is XDR-encoded directly behind a reserved
   length+header prefix in one (reusable, possibly pooled) encoder, then
   the prefix is patched once the body length is known.  This removes the
   body [string] allocation plus the body→frame blit that [encode] pays;
   the single remaining copy is [Xdr.to_string]'s extraction of the final
   immutable frame. *)
let prefix_bytes = 4 + header_bytes

let encode_into enc header enc_body =
  Xdr.reset enc;
  let off = Xdr.reserve enc prefix_bytes in
  enc_body enc;
  let total = Xdr.length enc - off - 4 in
  if total > max_packet_size then fail "packet of %d bytes exceeds maximum" total;
  Xdr.patch_u32 enc off total;
  Xdr.patch_u32 enc (off + 4) header.program;
  Xdr.patch_u32 enc (off + 8) header.version;
  Xdr.patch_u32 enc (off + 12) (header.procedure land 0xffff_ffff);
  Xdr.patch_u32 enc (off + 16) (msg_type_to_int header.msg_type);
  Xdr.patch_u32 enc (off + 20) header.serial;
  Xdr.patch_u32 enc (off + 24) (status_to_int header.status);
  Xdr.to_string enc

(* Absolute offset of the serial word in a framed packet: 4-byte length
   prefix, then program@4, version@8, procedure@12, type@16, serial@20. *)
let serial_offset = 20

let with_serial frame serial =
  if String.length frame < prefix_bytes then
    fail "with_serial: %d-byte frame is shorter than a header"
      (String.length frame);
  let buf = Bytes.of_string frame in
  put_u32 buf serial_offset serial;
  Bytes.unsafe_to_string buf

let u32_at s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* Byte-stream framing for the reactor path: a connection's inbound bytes
   accumulate in a buffer and packets are peeled off wherever frame
   boundaries happen to fall (coalesced, split — anything a real TCP
   stream does).  [frame_length] is the header-read step, [decode_sub]
   the payload-read step; [decode] is the aligned special case the
   threaded reader still uses. *)

let frame_length wire ~pos ~avail =
  if avail < 4 then None
  else begin
    let total = u32_at wire pos in
    if total > max_packet_size then
      fail "packet of %d bytes exceeds maximum" total;
    if total < header_bytes then
      fail "bad header: packet of %d bytes is shorter than a header" total;
    Some (4 + total)
  end

let decode_sub wire ~pos ~len =
  if len < 4 then fail "packet shorter than its length prefix";
  let total = u32_at wire pos in
  if total > max_packet_size then fail "packet of %d bytes exceeds maximum" total;
  if len - 4 <> total then
    fail "length prefix says %d bytes, packet carries %d" total (len - 4);
  if total < header_bytes then
    fail "bad header: packet of %d bytes is shorter than a header" total;
  let program = u32_at wire (pos + 4) in
  let version = u32_at wire (pos + 8) in
  let procedure =
    (* signed i32, as the XDR header declares it *)
    let v = u32_at wire (pos + 12) in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v
  in
  let msg_type = msg_type_of_int (u32_at wire (pos + 16)) in
  let serial = u32_at wire (pos + 20) in
  let status = status_of_int (u32_at wire (pos + 24)) in
  let body = String.sub wire (pos + 4 + header_bytes) (total - header_bytes) in
  ({ program; version; procedure; msg_type; serial; status }, body)

let decode wire = decode_sub wire ~pos:0 ~len:(String.length wire)

let call_header ~program ~version ~procedure ~serial =
  { program; version; procedure; msg_type = Call; serial; status = Status_ok }

let reply_ok header = { header with msg_type = Reply; status = Status_ok }
let reply_error header = { header with msg_type = Reply; status = Status_error }

let event_header ~program ~version ~procedure =
  { program; version; procedure; msg_type = Event; serial = 0; status = Status_ok }
