type t = {
  mutex : Mutex.t;
  readers_cv : Condition.t;  (* readers may enter *)
  writers_cv : Condition.t;  (* one writer may enter *)
  mutable active_readers : int;
  mutable active_writer : bool;
  mutable waiting_writers : int;
  mutable exclusive_mode : bool;
}

let create ?(exclusive = false) () =
  {
    mutex = Mutex.create ();
    readers_cv = Condition.create ();
    writers_cv = Condition.create ();
    active_readers = 0;
    active_writer = false;
    waiting_writers = 0;
    exclusive_mode = exclusive;
  }

let with_mutex t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_exclusive t flag = with_mutex t (fun () -> t.exclusive_mode <- flag)
let exclusive t = with_mutex t (fun () -> t.exclusive_mode)
let active_readers t = with_mutex t (fun () -> t.active_readers)
let waiting_writers t = with_mutex t (fun () -> t.waiting_writers)

(* Callers hold t.mutex for the *_locked variants. *)

let read_lock_locked t =
  (* Writer preference: a waiting writer bars new readers. *)
  while t.active_writer || t.waiting_writers > 0 do
    Condition.wait t.readers_cv t.mutex
  done;
  t.active_readers <- t.active_readers + 1

let read_unlock_locked t =
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.writers_cv

let write_lock_locked t =
  t.waiting_writers <- t.waiting_writers + 1;
  while t.active_writer || t.active_readers > 0 do
    Condition.wait t.writers_cv t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.active_writer <- true

let write_unlock_locked t =
  t.active_writer <- false;
  (* Hand off to the next queued writer; only when none are waiting do
     the readers get to flood back in. *)
  if t.waiting_writers > 0 then Condition.signal t.writers_cv
  else Condition.broadcast t.readers_cv

let read_lock t = with_mutex t (fun () -> read_lock_locked t)
let read_unlock t = with_mutex t (fun () -> read_unlock_locked t)
let write_lock t = with_mutex t (fun () -> write_lock_locked t)
let write_unlock t = with_mutex t (fun () -> write_unlock_locked t)

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

(* Bounded-wait acquisition: try-lock + short poll until [deadline].
   The Condition-based slow path cannot time out (no timed wait in the
   stdlib), so bounded waiters poll instead — and deliberately never
   register as waiting writers, so a waiter that will give up anyway
   cannot bar readers while it polls. *)
let poll_tick = 0.002

(* Try paths, caller holds t.mutex.  [`Read]/[`Write] says which release
   to use; exclusive mode (snapshotted per attempt) demotes reads. *)
let try_read_locked t =
  if t.exclusive_mode then
    if (not t.active_writer) && t.active_readers = 0 && t.waiting_writers = 0
    then begin
      t.active_writer <- true;
      Some `Write
    end
    else None
  else if (not t.active_writer) && t.waiting_writers = 0 then begin
    t.active_readers <- t.active_readers + 1;
    Some `Read
  end
  else None

let try_write_locked t =
  if (not t.active_writer) && t.active_readers = 0 then begin
    t.active_writer <- true;
    Some `Write
  end
  else None

let acquire_until t ~deadline try_locked =
  let rec attempt () =
    match with_mutex t (fun () -> try_locked t) with
    | Some mode -> Some mode
    | None ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Thread.delay poll_tick;
        attempt ()
      end
  in
  attempt ()

let release t = function
  | `Read -> with_mutex t (fun () -> read_unlock_locked t)
  | `Write -> with_mutex t (fun () -> write_unlock_locked t)

let with_read_until t ~deadline f =
  match acquire_until t ~deadline try_read_locked with
  | None -> Error `Timeout
  | Some mode -> Ok (Fun.protect ~finally:(fun () -> release t mode) f)

let with_write_until t ~deadline f =
  match acquire_until t ~deadline try_write_locked with
  | None -> Error `Timeout
  | Some mode -> Ok (Fun.protect ~finally:(fun () -> release t mode) f)

let with_read t f =
  (* Snapshot the mode under the mutex and acquire in the same critical
     section, so a concurrent [set_exclusive] cannot split the decision
     from the acquisition; remember which path we took for the release. *)
  let as_writer =
    with_mutex t (fun () ->
        if t.exclusive_mode then begin
          write_lock_locked t;
          true
        end
        else begin
          read_lock_locked t;
          false
        end)
  in
  Fun.protect
    ~finally:(fun () ->
      with_mutex t (fun () ->
          if as_writer then write_unlock_locked t else read_unlock_locked t))
    f
