(** Timed [Condition.wait], which the stdlib lacks.

    One shared timekeeper thread (heap of deadlines, woken through a
    self-pipe by [Unix.select]) broadcasts a caller's condition variable
    when its deadline passes, so waiters never poll.  Replaces the
    [Thread.delay] poll loops the transport and RPC-client timers used
    before the reactor refactor. *)

val wait : Mutex.t -> Condition.t -> until:float -> unit
(** [wait mutex cond ~until] must be called with [mutex] held, inside the
    caller's usual predicate loop.  Returns when [cond] is signalled, when
    [until] (absolute [Unix.gettimeofday] time) passes, or spuriously —
    the caller re-checks its predicate and the clock, exactly as with a
    plain [Condition.wait].  [~until:infinity] degrades to an untimed
    wait.  Returns immediately if [until] is already in the past. *)
