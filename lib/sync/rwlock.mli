(** Writer-preferring reader–writer lock.

    The management workload is read-mostly: monitoring clients poll
    [dom_get_info]/[list_domains] continuously while lifecycle changes are
    rare.  A coarse mutex serializes the readers behind each other; this
    lock lets any number of readers hold the lock together while writers
    get exclusive access.

    {b Preference.}  A reader that arrives while a writer is waiting
    blocks until that writer (and any writers queued behind it) has run:
    a continuous stream of readers therefore cannot starve a writer,
    which matters precisely because the workload is read-mostly.

    {b Non-reentrant.}  Acquiring the lock (in either mode) while the
    calling thread already holds it deadlocks, like [Mutex.t].  Section
    code must not re-enter the lock; run callbacks that may re-enter the
    owning subsystem outside the section.

    An {e exclusive} (coarse) compatibility mode demotes shared sections
    to exclusive ones at acquisition time, giving benchmarks a
    single-mutex baseline over the identical code path (experiment
    E14). *)

type t

val create : ?exclusive:bool -> unit -> t
(** A fresh, unheld lock.  [exclusive] defaults to [false]. *)

val set_exclusive : t -> bool -> unit
(** Toggle coarse mode.  Affects acquisitions that begin after the call;
    sections already running are unaffected (each section releases in the
    mode it acquired). *)

val exclusive : t -> bool

val with_read : t -> (unit -> 'a) -> 'a
(** Run a shared section: any number of [with_read] sections proceed
    together; mutually exclusive with [with_write] sections.  Releases on
    exception. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run an exclusive section.  Releases on exception. *)

val with_read_until :
  t -> deadline:float -> (unit -> 'a) -> ('a, [ `Timeout ]) result
(** Like {!with_read}, but give up (without running [f]) if the lock
    cannot be acquired by the absolute [deadline] ([Unix.gettimeofday]
    scale).  Bounded waiters poll rather than queue: while waiting they
    never bar other acquirers the way a queued writer would, so a caller
    that will give up anyway cannot worsen a pile-up behind a stuck
    writer.  Exclusive mode is honored like {!with_read}. *)

val with_write_until :
  t -> deadline:float -> (unit -> 'a) -> ('a, [ `Timeout ]) result
(** Exclusive-section counterpart of {!with_read_until}. *)

(** {2 Unpaired operations}

    For code that cannot use the section helpers (tests, hand-rolled
    acquisition orders).  [read_lock]/[read_unlock] always take the
    shared path; exclusive mode is honored by {!with_read} only, which
    snapshots the mode at entry so the release matches the
    acquisition. *)

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val active_readers : t -> int
(** Number of threads currently inside a shared section (diagnostics). *)

val waiting_writers : t -> int
(** Number of threads blocked waiting for exclusive access
    (diagnostics). *)
