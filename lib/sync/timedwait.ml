(* Timed condition wait.

   The stdlib's [Condition] has no timed wait, which is why older code
   polled ([Thread.delay] loops in Chan.recv_opt and the rpc_client timer
   thread).  This module supplies the missing primitive with one shared
   timekeeper thread: callers register (deadline, mutex, condition) and
   block in a plain [Condition.wait]; the timekeeper broadcasts the
   condition when the deadline passes.  The timekeeper itself sleeps in
   [Unix.select] on a self-pipe, so registering an earlier deadline wakes
   it immediately — no polling anywhere.

   Lock order: callers hold their own mutex and briefly take the
   timekeeper's; the timekeeper never takes a caller mutex while holding
   its own (due entries are popped first, fired after unlock), so the
   orders cannot deadlock. *)

type entry = { e_at : float; e_mutex : Mutex.t; e_cond : Condition.t }

(* Array-backed binary min-heap on [e_at]. *)
module Heap = struct
  type t = { mutable a : entry array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let swap h i j =
    let t = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- t

  let push h e =
    if h.n = Array.length h.a then begin
      let a = Array.make (max 8 (2 * h.n)) e in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && h.a.((!i - 1) / 2).e_at > h.a.(!i).e_at do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && h.a.(l).e_at < h.a.(!s).e_at then s := l;
      if r < h.n && h.a.(r).e_at < h.a.(!s).e_at then s := r;
      if !s <> !i then begin
        swap h !s !i;
        i := !s
      end
      else continue := false
    done;
    top
end

type tk = {
  tk_mutex : Mutex.t;
  tk_heap : Heap.t;
  tk_wake_rd : Unix.file_descr;
  tk_wake_wr : Unix.file_descr;
}

let poke tk =
  (* Nonblocking: a full pipe already guarantees a pending wakeup. *)
  try ignore (Unix.write tk.tk_wake_wr (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let drain_pipe tk =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read tk.tk_wake_rd buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let fire e =
  Mutex.lock e.e_mutex;
  Condition.broadcast e.e_cond;
  Mutex.unlock e.e_mutex

let rec tk_loop tk =
  Mutex.lock tk.tk_mutex;
  let now = Unix.gettimeofday () in
  let rec pop_due acc =
    match Heap.peek tk.tk_heap with
    | Some e when e.e_at <= now -> pop_due (Heap.pop tk.tk_heap :: acc)
    | _ -> acc
  in
  let due = pop_due [] in
  let timeout =
    match Heap.peek tk.tk_heap with
    | Some e -> max 0.0005 (e.e_at -. now)
    | None -> 3600.
  in
  Mutex.unlock tk.tk_mutex;
  List.iter fire due;
  if due = [] then begin
    (match Unix.select [ tk.tk_wake_rd ] [] [] timeout with
     | [ _ ], _, _ -> drain_pipe tk
     | _ -> ()
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  end;
  tk_loop tk

let timekeeper =
  lazy
    (let rd, wr = Unix.pipe () in
     Unix.set_nonblock rd;
     Unix.set_nonblock wr;
     let tk =
       { tk_mutex = Mutex.create (); tk_heap = Heap.create (); tk_wake_rd = rd; tk_wake_wr = wr }
     in
     ignore (Thread.create (fun () -> tk_loop tk) ());
     tk)

let wait mutex cond ~until =
  if until = infinity then Condition.wait cond mutex
  else begin
    let now = Unix.gettimeofday () in
    if until > now then begin
      let tk = Lazy.force timekeeper in
      Mutex.lock tk.tk_mutex;
      let was_earliest =
        match Heap.peek tk.tk_heap with
        | None -> true
        | Some e -> until < e.e_at
      in
      Heap.push tk.tk_heap { e_at = until; e_mutex = mutex; e_cond = cond };
      Mutex.unlock tk.tk_mutex;
      if was_earliest then poke tk;
      Condition.wait cond mutex
    end
  end
