(** Workerpool: the daemon's concurrent task-execution engine.

    Reproduces libvirt's threadpool semantics:

    - {e ordinary workers} execute any job; their count floats between
      [min_workers] and [max_workers], growing on demand (a job arrives and
      no worker is free) and shrinking cooperatively when [max_workers] is
      lowered — each worker re-checks the limit when it wakes up and when
      it finishes a job, and exits if the pool is over target.  This is the
      deadlock-free design: no "termination job" is ever queued, so no lock
      ordering problem with the pool lock arises;
    - {e priority workers} are a constant-size set that only executes jobs
      flagged high-priority, guaranteeing that critical control operations
      make progress even when every ordinary worker is stuck on a hanging
      hypervisor call.

    On top of that sits the overload-protection layer:

    - {e admission control}: [job_queue_limit] bounds the normal-class
      queue.  Over the bound, {!submit} {b rejects} the job immediately
      with a retry-after hint — it never blocks the submitter and never
      queues past the limit.  High-priority (control-plane) jobs bypass
      the bound.  [0] (the default) keeps the queue unbounded;
    - {e fair queuing}: normal-class jobs are kept in per-source queues
      served deficit-round-robin, so one connection with a deep backlog
      cannot starve the others;
    - {e deadlines}: a job whose absolute [deadline] passes while it is
      still queued is dropped at dequeue (its [on_expired] callback runs
      instead) — the client already gave up, executing it only adds load;
    - {e watchdog}: with a nonzero [wall_limit_ms], a watchdog thread
      writes off any worker whose current job exceeds the wall limit and
      spawns a replacement, so a wedged hypervisor call cannot silently
      eat pool capacity.  The written-off thread retires itself when (if)
      its job ever returns.

    All limits are runtime-adjustable ({!set_limits}), which is what the
    administration interface exposes. *)

type t

type reject = { retry_after_ms : int }
(** Admission-control rejection: how long the submitter should wait
    before retrying (backlog priced at the smoothed job duration). *)

type stats = {
  min_workers : int;
  max_workers : int;
  n_workers : int;  (** current ordinary workers, busy + free *)
  free_workers : int;  (** ordinary workers waiting for a job *)
  prio_workers : int;  (** current priority workers *)
  job_queue_depth : int;  (** jobs waiting (both classes) *)
  jobs_completed : int;  (** total jobs finished since creation *)
  jobs_failed : int;  (** jobs whose function raised *)
  jobs_shed : int;  (** jobs rejected by admission control *)
  jobs_expired : int;  (** jobs dropped because their deadline passed in queue *)
  workers_stuck : int;  (** workers ever written off by the watchdog *)
  workers_stuck_now : int;  (** written-off workers still wedged *)
  job_queue_limit : int;  (** normal-queue bound; 0 = unbounded *)
  wall_limit_ms : int;  (** watchdog wall limit; 0 = off *)
}

exception Invalid_limits of string
(** Raised by {!create} and {!set_limits} on inconsistent limits
    (e.g. [max_workers < min_workers], negative counts). *)

val create :
  ?name:string ->
  ?logger:Vlog.t ->
  ?job_queue_limit:int ->
  ?wall_limit_ms:int ->
  min_workers:int ->
  max_workers:int ->
  prio_workers:int ->
  unit ->
  t
(** Start a pool with [min_workers] ordinary workers and [prio_workers]
    priority workers already running.  [job_queue_limit] (default [0] =
    unbounded) bounds the normal-class queue — see {!submit} for the
    over-limit behaviour.  A nonzero [wall_limit_ms] starts the
    stuck-worker watchdog.  [logger] receives job-failure and
    stuck-worker reports (rate-limited). *)

val submit :
  t ->
  ?priority:bool ->
  ?source:int64 ->
  ?deadline:float ->
  ?on_expired:(unit -> unit) ->
  (unit -> unit) ->
  (unit, reject) result
(** Enqueue a job.  [~priority:true] jobs are eligible for priority
    workers (and are preferred by ordinary workers).  [source] is the
    fair-queuing key — pass the client-connection id so deficit round
    robin can arbitrate between connections.  [deadline] is absolute
    ([Unix.gettimeofday] scale); if it passes before a worker picks the
    job up, the job is dropped and [on_expired] runs in its place.

    Over-limit behaviour is {b reject, never block}: when the
    normal-class queue holds [job_queue_limit] jobs the call returns
    [Error { retry_after_ms }] immediately, without enqueueing and
    without waiting.  Exceptions escaping the job are logged and counted
    ({!failed_jobs}); they never kill the worker.
    @raise Invalid_limits if the pool has been shut down. *)

val push : t -> ?priority:bool -> (unit -> unit) -> unit
(** {!submit} for callers without a source or deadline; an
    admission-control rejection is counted but otherwise silent.
    @raise Invalid_limits if the pool has been shut down. *)

val set_limits :
  t ->
  ?min_workers:int ->
  ?max_workers:int ->
  ?prio_workers:int ->
  ?job_queue_limit:int ->
  ?wall_limit_ms:int ->
  unit ->
  unit
(** Adjust limits at runtime.  Raising [min_workers] spawns immediately;
    lowering [max_workers] retires surplus workers cooperatively; changing
    [prio_workers] grows or shrinks the priority set.  [job_queue_limit]
    and [wall_limit_ms] take effect for subsequent submissions/scans
    ([0] disables either). *)

val stats : t -> stats

val failed_jobs : t -> int
(** Jobs whose function raised. *)

val drain : t -> unit
(** Block until the queue is empty and every live worker is idle.
    Intended for tests and benchmarks. *)

val shutdown : t -> unit
(** Ask all workers to exit and wait for them.  Pending jobs are
    discarded.  Subsequent {!push} raises {!Invalid_limits}. *)
