type job = {
  run : unit -> unit;
  priority : bool;
  deadline : float option; (* absolute; expired-in-queue jobs are dropped *)
  on_expired : (unit -> unit) option;
}

type reject = { retry_after_ms : int }

(* One fair-queuing flow: jobs from a single submission source (one
   daemon client connection).  Deficit round robin: the scheduler visits
   active flows in ring order, topping up each flow's deficit by the
   quantum and serving jobs while the deficit covers their (unit) cost,
   so a source with a deep backlog cannot starve a light one. *)
type flow = {
  fkey : int64;
  fjobs : job Queue.t;
  mutable fdeficit : int;
  mutable factive : bool;
}

type stats = {
  min_workers : int;
  max_workers : int;
  n_workers : int;
  free_workers : int;
  prio_workers : int;
  job_queue_depth : int;
  jobs_completed : int;
  jobs_failed : int;
  jobs_shed : int;
  jobs_expired : int;
  workers_stuck : int;
  workers_stuck_now : int;
  job_queue_limit : int;
  wall_limit_ms : int;
}

type t = {
  name : string;
  logger : Vlog.t option;
  mutex : Mutex.t;
  cond : Condition.t; (* workers wait here for jobs / limit changes *)
  idle_cond : Condition.t; (* drain/shutdown wait here *)
  flows : (int64, flow) Hashtbl.t; (* normal-class jobs, one queue per source *)
  ring : int64 Queue.t; (* DRR visit order over active flows *)
  prio_queue : job Queue.t;
  mutable queued_normal : int;
  mutable min_workers : int;
  mutable max_workers : int;
  mutable prio_target : int;
  mutable n_workers : int; (* live ordinary workers *)
  mutable free_workers : int; (* ordinary workers blocked on [cond] *)
  mutable n_prio : int; (* live priority workers *)
  mutable free_prio : int;
  mutable quit : bool;
  mutable jobs_completed : int;
  mutable jobs_failed : int;
  (* overload protection *)
  mutable queue_limit : int; (* 0 = unbounded *)
  mutable wall_limit : float; (* seconds; 0. = watchdog off *)
  mutable jobs_shed : int;
  mutable jobs_expired : int;
  mutable workers_stuck_total : int;
  mutable ewma_job_ms : float; (* smoothed job wall time, retry-after hint *)
  mutable next_worker_id : int;
  running : (int, float * [ `Ordinary | `Priority ]) Hashtbl.t;
  (* worker id -> job start time, while a job is on that worker *)
  stuck : (int, unit) Hashtbl.t; (* workers written off by the watchdog *)
  mutable watchdog_live : bool;
  mutable last_stuck_log : float;
}

exception Invalid_limits of string

let drr_quantum = 1 (* unit job cost: DRR degenerates to per-source RR *)

let check_limits ~min_workers ~max_workers ~prio_workers =
  if min_workers < 0 then raise (Invalid_limits "min_workers must be >= 0");
  if prio_workers < 0 then raise (Invalid_limits "prio_workers must be >= 0");
  if max_workers < 1 then raise (Invalid_limits "max_workers must be >= 1");
  if max_workers < min_workers then
    raise (Invalid_limits "max_workers must be >= min_workers")

let with_lock pool f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

let log pool priority fmt =
  Printf.ksprintf
    (fun msg ->
      match pool.logger with
      | None -> ()
      | Some logger -> Vlog.log logger ~module_:"daemon.threadpool" priority msg)
    fmt

(* --- deficit-round-robin normal queue ------------------------------- *)

let enqueue_normal pool ~source job =
  let flow =
    match Hashtbl.find_opt pool.flows source with
    | Some f -> f
    | None ->
      let f = { fkey = source; fjobs = Queue.create (); fdeficit = 0; factive = false } in
      Hashtbl.replace pool.flows source f;
      f
  in
  Queue.push job flow.fjobs;
  pool.queued_normal <- pool.queued_normal + 1;
  if not flow.factive then begin
    flow.factive <- true;
    flow.fdeficit <- 0;
    Queue.push flow.fkey pool.ring
  end

let rec drr_pop pool =
  if pool.queued_normal = 0 || Queue.is_empty pool.ring then None
  else begin
    let key = Queue.pop pool.ring in
    match Hashtbl.find_opt pool.flows key with
    | None -> drr_pop pool
    | Some flow when Queue.is_empty flow.fjobs ->
      flow.factive <- false;
      flow.fdeficit <- 0;
      Hashtbl.remove pool.flows key;
      drr_pop pool
    | Some flow ->
      flow.fdeficit <- flow.fdeficit + drr_quantum;
      let job = Queue.pop flow.fjobs in
      flow.fdeficit <- flow.fdeficit - 1;
      pool.queued_normal <- pool.queued_normal - 1;
      if Queue.is_empty flow.fjobs then begin
        flow.factive <- false;
        flow.fdeficit <- 0;
        Hashtbl.remove pool.flows key
      end
      else Queue.push key pool.ring;
      Some job
  end

let clear_normal pool =
  Hashtbl.reset pool.flows;
  Queue.clear pool.ring;
  pool.queued_normal <- 0

(* --- job execution --------------------------------------------------- *)

(* Execute one job outside the pool lock; the caller holds the lock on
   entry and regains it before returning.  A raising job is counted,
   logged, and never unwinds the worker loop. *)
let run_job pool wid kind job =
  let started = Unix.gettimeofday () in
  Hashtbl.replace pool.running wid (started, kind);
  Mutex.unlock pool.mutex;
  let error = (try job.run (); None with exn -> Some (Printexc.to_string exn)) in
  Mutex.lock pool.mutex;
  Hashtbl.remove pool.running wid;
  let elapsed_ms = (Unix.gettimeofday () -. started) *. 1000. in
  pool.ewma_job_ms <-
    (if pool.jobs_completed = 0 then elapsed_ms
     else (0.8 *. pool.ewma_job_ms) +. (0.2 *. elapsed_ms));
  pool.jobs_completed <- pool.jobs_completed + 1;
  match error with
  | None -> ()
  | Some msg ->
    pool.jobs_failed <- pool.jobs_failed + 1;
    log pool Vlog.Warn "%s: job raised %s (worker kept)" pool.name msg

(* A dequeued job whose deadline already passed is dropped before it
   touches a driver: the client gave up, executing it only adds load. *)
let dispatch_job pool wid kind job =
  match job.deadline with
  | Some d when Unix.gettimeofday () > d ->
    pool.jobs_expired <- pool.jobs_expired + 1;
    (match job.on_expired with
     | None -> ()
     | Some f ->
       Mutex.unlock pool.mutex;
       (try f () with _ -> ());
       Mutex.lock pool.mutex)
  | _ -> run_job pool wid kind job

(* The quit-helper check from the thesis: performed after waking up and
   after finishing a job, never via a queued "poison" task. *)
let ordinary_should_quit pool = pool.quit || pool.n_workers > pool.max_workers
let priority_should_quit pool = pool.quit || pool.n_prio > pool.prio_target

(* A worker the watchdog wrote off finishes its wedged job eventually;
   its replacement is already running, so it retires without touching
   the worker accounting (the watchdog removed it when marking). *)
let retired_stuck pool wid =
  if Hashtbl.mem pool.stuck wid then begin
    Hashtbl.remove pool.stuck wid;
    Condition.broadcast pool.idle_cond;
    true
  end
  else false

let rec ordinary_loop pool wid =
  if retired_stuck pool wid then ()
  else if ordinary_should_quit pool then begin
    pool.n_workers <- pool.n_workers - 1;
    Condition.broadcast pool.idle_cond
  end
  else if not (Queue.is_empty pool.prio_queue) then begin
    dispatch_job pool wid `Ordinary (Queue.pop pool.prio_queue);
    ordinary_loop pool wid
  end
  else if pool.queued_normal > 0 then begin
    (match drr_pop pool with
     | Some job -> dispatch_job pool wid `Ordinary job
     | None -> ());
    ordinary_loop pool wid
  end
  else begin
    pool.free_workers <- pool.free_workers + 1;
    Condition.broadcast pool.idle_cond;
    Condition.wait pool.cond pool.mutex;
    pool.free_workers <- pool.free_workers - 1;
    ordinary_loop pool wid
  end

let rec priority_loop pool wid =
  if retired_stuck pool wid then ()
  else if priority_should_quit pool then begin
    pool.n_prio <- pool.n_prio - 1;
    Condition.broadcast pool.idle_cond
  end
  else if not (Queue.is_empty pool.prio_queue) then begin
    dispatch_job pool wid `Priority (Queue.pop pool.prio_queue);
    priority_loop pool wid
  end
  else begin
    pool.free_prio <- pool.free_prio + 1;
    Condition.broadcast pool.idle_cond;
    Condition.wait pool.cond pool.mutex;
    pool.free_prio <- pool.free_prio - 1;
    priority_loop pool wid
  end

(* Spawn helpers: called with the pool lock held.  The worker increments
   were already done by the caller so the accounting is correct even
   before the thread is scheduled. *)
let spawn_ordinary pool =
  pool.n_workers <- pool.n_workers + 1;
  let wid = pool.next_worker_id in
  pool.next_worker_id <- wid + 1;
  ignore
    (Thread.create
       (fun () ->
         Mutex.lock pool.mutex;
         ordinary_loop pool wid;
         Mutex.unlock pool.mutex)
       ())

let spawn_priority pool =
  pool.n_prio <- pool.n_prio + 1;
  let wid = pool.next_worker_id in
  pool.next_worker_id <- wid + 1;
  ignore
    (Thread.create
       (fun () ->
         Mutex.lock pool.mutex;
         priority_loop pool wid;
         Mutex.unlock pool.mutex)
       ())

(* --- watchdog --------------------------------------------------------- *)

(* Scan with the pool lock held: any worker whose current job has been
   running past the wall limit is written off — removed from the live
   count and replaced immediately, so a wedged hypervisor call cannot
   silently eat pool capacity.  The stuck thread itself cannot be
   killed; it retires when (if) its job ever returns. *)
let watchdog_scan pool now =
  Hashtbl.iter
    (fun wid (started, kind) ->
      if now -. started > pool.wall_limit && not (Hashtbl.mem pool.stuck wid)
      then begin
        Hashtbl.replace pool.stuck wid ();
        pool.workers_stuck_total <- pool.workers_stuck_total + 1;
        (match kind with
         | `Ordinary ->
           pool.n_workers <- pool.n_workers - 1;
           if not pool.quit then spawn_ordinary pool
         | `Priority ->
           pool.n_prio <- pool.n_prio - 1;
           if not pool.quit then spawn_priority pool);
        if now -. pool.last_stuck_log >= 1.0 then begin
          pool.last_stuck_log <- now;
          log pool Vlog.Warn
            "%s: worker stuck for > %.0f ms (%d written off so far), replacement spawned"
            pool.name (pool.wall_limit *. 1000.) pool.workers_stuck_total
        end
      end)
    pool.running

let watchdog_loop pool =
  Mutex.lock pool.mutex;
  while (not pool.quit) && pool.wall_limit > 0. do
    watchdog_scan pool (Unix.gettimeofday ());
    let tick = Float.max 0.002 (Float.min 0.02 (pool.wall_limit /. 4.)) in
    Mutex.unlock pool.mutex;
    Thread.delay tick;
    Mutex.lock pool.mutex
  done;
  pool.watchdog_live <- false;
  Condition.broadcast pool.idle_cond;
  Mutex.unlock pool.mutex

(* Called with the lock held whenever the wall limit may have turned on. *)
let ensure_watchdog pool =
  if pool.wall_limit > 0. && (not pool.watchdog_live) && not pool.quit then begin
    pool.watchdog_live <- true;
    ignore (Thread.create (fun () -> watchdog_loop pool) ())
  end

(* --------------------------------------------------------------------- *)

let create ?(name = "pool") ?logger ?(job_queue_limit = 0) ?(wall_limit_ms = 0)
    ~min_workers ~max_workers ~prio_workers () =
  check_limits ~min_workers ~max_workers ~prio_workers;
  if job_queue_limit < 0 then
    raise (Invalid_limits "job_queue_limit must be >= 0");
  if wall_limit_ms < 0 then raise (Invalid_limits "wall_limit_ms must be >= 0");
  let pool =
    {
      name;
      logger;
      mutex = Mutex.create ();
      cond = Condition.create ();
      idle_cond = Condition.create ();
      flows = Hashtbl.create 16;
      ring = Queue.create ();
      prio_queue = Queue.create ();
      queued_normal = 0;
      min_workers;
      max_workers;
      prio_target = prio_workers;
      n_workers = 0;
      free_workers = 0;
      n_prio = 0;
      free_prio = 0;
      quit = false;
      jobs_completed = 0;
      jobs_failed = 0;
      queue_limit = job_queue_limit;
      wall_limit = float_of_int wall_limit_ms /. 1000.;
      jobs_shed = 0;
      jobs_expired = 0;
      workers_stuck_total = 0;
      ewma_job_ms = 0.;
      next_worker_id = 0;
      running = Hashtbl.create 32;
      stuck = Hashtbl.create 4;
      watchdog_live = false;
      last_stuck_log = 0.;
    }
  in
  with_lock pool (fun () ->
      for _ = 1 to min_workers do
        spawn_ordinary pool
      done;
      for _ = 1 to prio_workers do
        spawn_priority pool
      done;
      ensure_watchdog pool);
  pool

(* How long an overloaded submitter should wait before trying again:
   the backlog ahead of it, priced at the smoothed job duration, spread
   over the worker set.  Clamped so the hint is always actionable. *)
let retry_after_ms pool =
  let per_job = if pool.ewma_job_ms <= 0. then 5. else pool.ewma_job_ms in
  let backlog =
    float_of_int (pool.queued_normal + 1) /. float_of_int (max 1 pool.max_workers)
  in
  int_of_float (Float.min 5000. (Float.max 1. (per_job *. backlog)))

let submit pool ?(priority = false) ?(source = 0L) ?deadline ?on_expired run =
  with_lock pool (fun () ->
      if pool.quit then
        raise (Invalid_limits (pool.name ^ ": pool has been shut down"));
      if (not priority) && pool.queue_limit > 0
         && pool.queued_normal >= pool.queue_limit
      then begin
        (* Admission control: the queue is at its bound — shed the job
           now rather than let the backlog (and every client's latency)
           grow without limit.  The submitter is never blocked. *)
        pool.jobs_shed <- pool.jobs_shed + 1;
        Error { retry_after_ms = retry_after_ms pool }
      end
      else begin
        let job = { run; priority; deadline; on_expired } in
        if priority then Queue.push job pool.prio_queue
        else enqueue_normal pool ~source job;
        (* Grow on demand: a job just arrived with nobody free to take it. *)
        let nobody_free =
          if priority then pool.free_workers = 0 && pool.free_prio = 0
          else pool.free_workers = 0
        in
        if nobody_free && pool.n_workers < pool.max_workers then
          spawn_ordinary pool;
        Condition.broadcast pool.cond;
        Ok ()
      end)

let push pool ?(priority = false) run =
  match submit pool ~priority run with Ok () -> () | Error _ -> ()

let set_limits pool ?min_workers ?max_workers ?prio_workers ?job_queue_limit
    ?wall_limit_ms () =
  with_lock pool (fun () ->
      let min_workers = Option.value min_workers ~default:pool.min_workers in
      let max_workers = Option.value max_workers ~default:pool.max_workers in
      let prio_workers = Option.value prio_workers ~default:pool.prio_target in
      check_limits ~min_workers ~max_workers ~prio_workers;
      (match job_queue_limit with
       | Some l when l < 0 -> raise (Invalid_limits "job_queue_limit must be >= 0")
       | Some l -> pool.queue_limit <- l
       | None -> ());
      (match wall_limit_ms with
       | Some l when l < 0 -> raise (Invalid_limits "wall_limit_ms must be >= 0")
       | Some l ->
         pool.wall_limit <- float_of_int l /. 1000.;
         ensure_watchdog pool
       | None -> ());
      pool.min_workers <- min_workers;
      pool.max_workers <- max_workers;
      pool.prio_target <- prio_workers;
      while pool.n_workers < pool.min_workers do
        spawn_ordinary pool
      done;
      while pool.n_prio < pool.prio_target do
        spawn_priority pool
      done;
      (* Surplus workers (n > max) retire themselves on wakeup. *)
      Condition.broadcast pool.cond)

let stats pool =
  with_lock pool (fun () ->
      {
        min_workers = pool.min_workers;
        max_workers = pool.max_workers;
        n_workers = pool.n_workers;
        free_workers = pool.free_workers;
        prio_workers = pool.n_prio;
        job_queue_depth = pool.queued_normal + Queue.length pool.prio_queue;
        jobs_completed = pool.jobs_completed;
        jobs_failed = pool.jobs_failed;
        jobs_shed = pool.jobs_shed;
        jobs_expired = pool.jobs_expired;
        workers_stuck = pool.workers_stuck_total;
        workers_stuck_now = Hashtbl.length pool.stuck;
        job_queue_limit = pool.queue_limit;
        wall_limit_ms = int_of_float (pool.wall_limit *. 1000.);
      })

let failed_jobs pool = with_lock pool (fun () -> pool.jobs_failed)

let drain pool =
  with_lock pool (fun () ->
      while
        pool.queued_normal > 0
        || (not (Queue.is_empty pool.prio_queue))
        || pool.free_workers < pool.n_workers
        || pool.free_prio < pool.n_prio
      do
        Condition.wait pool.idle_cond pool.mutex
      done)

let shutdown pool =
  with_lock pool (fun () ->
      pool.quit <- true;
      clear_normal pool;
      Queue.clear pool.prio_queue;
      Condition.broadcast pool.cond;
      while pool.n_workers > 0 || pool.n_prio > 0 || pool.watchdog_live do
        Condition.broadcast pool.cond;
        Condition.wait pool.idle_cond pool.mutex
      done)
