module X = Mini_xml
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Esx_host = Hvsim.Esx_host
open Ovirt_core

(* Substrate state: the simulated ESX server itself.  The driver is
   stateless — VM registrations live server-side — so the node's
   Domstore goes unused; the node still provides the shared rwlock that
   orders concurrent sessions against one host. *)
type payload = Esx_host.t

type node = payload Drvnode.node

let nodes : payload Drvnode.registry =
  Drvnode.registry (fun ~node_name ->
      Esx_host.create (Hvsim.Hostinfo.create ~hostname:node_name ()))

let get_node name : node = Drvnode.get_node nodes name
let get_host name = (get_node name).Drvnode.payload
let reset_hosts () = Drvnode.reset_nodes nodes

(* A connection is a logged-in session against one host. *)
type session = { node : node; token : string }

let esx session = session.node.Drvnode.payload
let esx_name session = session.node.Drvnode.node_name

let ( let* ) = Result.bind

(* One protocol exchange: build the <request>, send, classify the reply. *)
let call session ~op ?name ?(body = []) () =
  let attrs =
    [ ("op", op); ("session", session.token) ]
    @ match name with Some n -> [ ("name", n) ] | None -> []
  in
  let request = X.to_string (X.elt "request" ~attrs body) in
  let reply = Esx_host.endpoint_request (esx session) request in
  match X.of_string reply with
  | exception X.Parse_error msg ->
    Verror.error Verror.Rpc_failure "unparseable ESX response: %s" msg
  | root when root.X.tag = "response" -> Ok root
  | root when root.X.tag = "fault" ->
    let msg = X.text_content root in
    let code =
      if String.length msg >= 2 && String.sub msg 0 2 = "no" then Verror.No_domain
      else if msg = "invalid session token" then Verror.Auth_failed
      else Verror.Operation_invalid
    in
    Error (Verror.make code msg)
  | root -> Verror.error Verror.Rpc_failure "unexpected ESX reply <%s>" root.X.tag

let login (node : node) ~username ~password =
  let request =
    X.to_string
      (X.elt "request" ~attrs:[ ("op", "Login") ]
         [ X.leaf "username" username; X.leaf "password" password ])
  in
  let reply = Esx_host.endpoint_request node.Drvnode.payload request in
  match X.of_string reply with
  | exception X.Parse_error msg ->
    Verror.error Verror.Rpc_failure "unparseable ESX response: %s" msg
  | root when root.X.tag = "fault" ->
    Error (Verror.make Verror.Auth_failed (X.text_content root))
  | root ->
    (try
       let token = X.attr_exn (X.child_exn root "session") "token" in
       Ok { node; token }
     with X.Parse_error msg ->
       Verror.error Verror.Rpc_failure "bad login reply: %s" msg)

(* ------------------------------------------------------------------ *)
(* Response decoding                                                   *)
(* ------------------------------------------------------------------ *)

let vm_ref_of_summary elt =
  let* uuid =
    Result.map_error (Verror.make Verror.Rpc_failure)
      (Vmm.Uuid.of_string (X.attr_exn elt "uuid"))
  in
  Ok Driver.{ dom_name = X.attr_exn elt "name"; dom_uuid = uuid; dom_id = None }

let vm_state_of_summary elt =
  Result.map_error (Verror.make Verror.Rpc_failure)
    (Vm_state.state_of_name (X.attr_exn elt "state"))

let get_summary session name =
  let* resp = call session ~op:"GetVM" ~name () in
  match X.child resp "vm" with
  | Some vm -> Ok vm
  | None -> Verror.error Verror.Rpc_failure "GetVM reply lacks <vm>"

(* ------------------------------------------------------------------ *)
(* Driver operations                                                   *)
(*                                                                     *)
(* Sessions against one host share its node lock: query exchanges run  *)
(* under the read section, state-changing ones under the write section.*)
(* ------------------------------------------------------------------ *)

let with_read session f = Drvnode.with_read session.node f
let with_write session f = Drvnode.with_write session.node f

let list_domains session =
  with_read session (fun () ->
      let* resp = call session ~op:"ListVMs" () in
      X.children_named resp "vm"
      |> List.filter_map (fun vm ->
             match vm_state_of_summary vm with
             | Ok state when Vm_state.is_active state ->
               (match vm_ref_of_summary vm with Ok r -> Some r | Error _ -> None)
             | Ok _ | Error _ -> None)
      |> List.sort (fun a b -> compare a.Driver.dom_name b.Driver.dom_name)
      |> Result.ok)

let list_defined session =
  with_read session (fun () ->
      let* resp = call session ~op:"ListVMs" () in
      X.children_named resp "vm"
      |> List.filter_map (fun vm ->
             match vm_state_of_summary vm with
             | Ok Vm_state.Shutoff -> X.attr vm "name"
             | Ok _ | Error _ -> None)
      |> List.sort compare
      |> Result.ok)

let lookup_by_name session name =
  with_read session (fun () ->
      let* vm = get_summary session name in
      vm_ref_of_summary vm)

let lookup_by_uuid session uuid =
  with_read session (fun () ->
      let* resp = call session ~op:"ListVMs" () in
      let matching =
        X.children_named resp "vm"
        |> List.find_opt (fun vm ->
               X.attr vm "uuid" = Some (Vmm.Uuid.to_string uuid))
      in
      match matching with
      | Some vm -> vm_ref_of_summary vm
      | None ->
        Verror.error Verror.No_domain "no domain with UUID %s"
          (Vmm.Uuid.to_string uuid))

let define_xml session xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Hvm ] xml in
  with_write session (fun () ->
      let body = [ X.node (Vmm.Domxml.to_element ~virt_type:"vmware" cfg) ] in
      let* resp = call session ~op:"RegisterVM" ~body () in
      match X.child resp "vm" with
      | Some vm -> vm_ref_of_summary vm
      | None -> Verror.error Verror.Rpc_failure "RegisterVM reply lacks <vm>")

let undefine session name =
  with_write session (fun () ->
      let* _ = call session ~op:"UnregisterVM" ~name () in
      Ok ())

let power_op op session name =
  with_write session (fun () ->
      let* _ = call session ~op ~name () in
      Ok ())

let dom_create = power_op "PowerOnVM"
let dom_suspend = power_op "SuspendVM"
let dom_resume = power_op "ResumeVM"
let dom_destroy = power_op "PowerOffVM"

(* ESX exposes no guest-cooperative shutdown without in-guest tools — the
   exact intrusiveness gap E7 measures. *)
let dom_shutdown session name =
  ignore session;
  ignore name;
  Driver.unsupported ~drv:"esx" ~op:"shutdown (requires in-guest tools)"

let dom_get_info session name =
  with_read session (fun () ->
      let* vm = get_summary session name in
      let* state = vm_state_of_summary vm in
      let memory = X.int_attr_exn vm "memoryKiB" in
      Ok
        Driver.
          {
            di_state = state;
            di_max_mem_kib = memory;
            di_memory_kib = memory;
            di_vcpus = X.int_attr_exn vm "vcpus";
            di_cpu_time_ns = 0L;
          })

let dom_get_xml session name =
  with_read session (fun () ->
      let* resp = call session ~op:"GetVM" ~name () in
      match X.child resp "domain" with
      | Some dom -> Ok (X.to_string dom)
      | None -> Verror.error Verror.Rpc_failure "GetVM reply lacks <domain>")

(* Native bulk listing: the ListVMs summaries already carry everything a
   domain_record needs, so the whole inventory costs one endpoint
   exchange instead of a GetVM per domain (the N+1 the per-op fallback
   would pay).  ESX has no autostart concept here: [rec_autostart=None]. *)
let dom_list_all session =
  with_read session (fun () ->
      let* resp = call session ~op:"ListVMs" () in
      X.children_named resp "vm"
      |> List.filter_map (fun vm ->
             match (vm_ref_of_summary vm, vm_state_of_summary vm) with
             | Ok rec_ref, Ok state ->
               let memory = X.int_attr_exn vm "memoryKiB" in
               Some
                 Driver.
                   {
                     rec_ref;
                     rec_info =
                       {
                         di_state = state;
                         di_max_mem_kib = memory;
                         di_memory_kib = memory;
                         di_vcpus = X.int_attr_exn vm "vcpus";
                         di_cpu_time_ns = 0L;
                       };
                     rec_autostart = None;
                   }
             | (Error _ | Ok _), _ -> None)
      |> List.sort (fun a b ->
             compare a.Driver.rec_ref.Driver.dom_name b.Driver.rec_ref.Driver.dom_name)
      |> Result.ok)

let capabilities session =
  with_read session (fun () ->
      Capabilities.
        {
          driver_name = "esx";
          virt_kind = "full-virt";
          stateful = false;
          guest_os_kinds = [ Vm_config.Hvm ];
          features =
            [
              Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_destroy;
              Feat_remote_native;
            ];
          host =
            Drvutil.host_summary ~node_name:(esx_name session)
              (Esx_host.host (esx session));
        })

let close session = ignore (call session ~op:"Logout" ())

let open_conn uri =
  let node = get_node (Option.value uri.Vuri.host ~default:"esx01") in
  let username = Option.value uri.Vuri.user ~default:"root" in
  let password = Option.value (Vuri.param uri "password") ~default:"esx" in
  let* session = login node ~username ~password in
  Ok
    (Driver.make_ops ~drv_name:"esx"
       ~get_capabilities:(fun () -> capabilities session)
       ~get_hostname:(fun () -> esx_name session)
       ~close:(fun () -> close session)
       ~list_domains:(fun () -> list_domains session)
       ~list_defined:(fun () -> list_defined session)
       ~lookup_by_name:(lookup_by_name session)
       ~lookup_by_uuid:(lookup_by_uuid session) ~define_xml:(define_xml session)
       ~undefine:(undefine session) ~dom_create:(dom_create session)
       ~dom_suspend:(dom_suspend session) ~dom_resume:(dom_resume session)
       ~dom_shutdown:(dom_shutdown session) ~dom_destroy:(dom_destroy session)
       ~dom_get_info:(dom_get_info session) ~dom_get_xml:(dom_get_xml session)
       ~dom_list_all:(fun () -> dom_list_all session)
       ~generation:(fun () -> Drvnode.generation session.node)
       ())

let register () =
  (* Custom probe: the hypervisor carries its own remote endpoint, so
     esx:// URIs never route to the remote driver, transport or not. *)
  Drvnode.register ~name:"esx"
    ~probe:(fun uri -> uri.Vuri.scheme = "esx")
    ~open_conn ()
