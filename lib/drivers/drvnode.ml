open Ovirt_core
module Rwlock = Ovsync.Rwlock

type 'p node = {
  node_name : string;
  store : Domstore.t;
  lock : Rwlock.t;
  net : Net_backend.t;
  storage : Storage_backend.t;
  events : Events.bus;
  payload : 'p;
}

type 'p registry = {
  reg_mutex : Mutex.t;
  reg_nodes : (string, 'p node) Hashtbl.t;
  reg_make : node_name:string -> 'p;
  reg_init : 'p node -> unit;
}

let registry ?(init = fun _ -> ()) make =
  {
    reg_mutex = Mutex.create ();
    reg_nodes = Hashtbl.create 4;
    reg_make = make;
    reg_init = init;
  }

let with_registry reg f =
  Mutex.lock reg.reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.reg_mutex) f

let get_node reg name =
  with_registry reg (fun () ->
      match Hashtbl.find_opt reg.reg_nodes name with
      | Some node -> node
      | None ->
        let node =
          {
            node_name = name;
            store = Domstore.create ();
            lock = Rwlock.create ();
            net = Net_backend.create ();
            storage = Storage_backend.create ();
            events = Events.create_bus ();
            payload = reg.reg_make ~node_name:name;
          }
        in
        Hashtbl.add reg.reg_nodes name node;
        reg.reg_init node;
        node)

let reset_nodes reg = with_registry reg (fun () -> Hashtbl.reset reg.reg_nodes)

let with_read node f = Rwlock.with_read node.lock f
let with_write node f = Rwlock.with_write node.lock f

let emit node domain_name lifecycle =
  Events.emit node.events ~domain_name lifecycle

let ( let* ) = Result.bind

let require_config ?(what = "domain") node name =
  match Domstore.get node.store name with
  | Some cfg -> Ok cfg
  | None -> Verror.error Verror.No_domain "no %s named %S" what name

let domain_ref_of ?what node ~dom_id name =
  let* cfg = require_config ?what node name in
  Ok
    Driver.
      { dom_name = name; dom_uuid = cfg.Vmm.Vm_config.uuid; dom_id = dom_id name }

let lookup_by_name node ref_of name = with_read node (fun () -> ref_of name)

let lookup_by_uuid ?(what = "domain") node ref_of uuid =
  with_read node (fun () ->
      match Domstore.by_uuid node.store uuid with
      | Some cfg -> ref_of cfg.Vmm.Vm_config.name
      | None ->
        Verror.error Verror.No_domain "no %s with UUID %s" what
          (Vmm.Uuid.to_string uuid))

let list_defined node ~active =
  with_read node (fun () ->
      Domstore.names node.store
      |> List.filter (fun name -> not (active name))
      |> Result.ok)

let node_of_uri ?(default = "localhost") uri =
  match uri.Vuri.host with Some host -> host | None -> default

let register ~name ?schemes ?probe ~open_conn () =
  let schemes = Option.value schemes ~default:[ name ] in
  let probe =
    Option.value probe
      ~default:(fun uri ->
        List.mem uri.Vuri.scheme schemes && uri.Vuri.transport = None)
  in
  Driver.register { Driver.reg_name = name; probe; open_conn }
