open Ovirt_core
module Rwlock = Ovsync.Rwlock

type recovery = {
  rec_replayed : int;
  rec_torn_bytes : int;
  rec_adopted : string list;
  rec_autostarted : string list;
  rec_lost : string list;
  rec_appeared : string list;
  rec_unknown : string list;
}

type 'p node = {
  node_name : string;
  store : Domstore.t;
  lock : Rwlock.t;
  net : Net_backend.t;
  storage : Storage_backend.t;
  events : Events.bus;
  payload : 'p;
  gen : int Atomic.t;
  mutable recovered : recovery option;
}

type 'p registry = {
  reg_mutex : Mutex.t;
  reg_nodes : (string, 'p node) Hashtbl.t;
  reg_make : node_name:string -> 'p;
  reg_init : 'p node -> unit;
  reg_journal_dir : string option;
  reg_recover : ('p node -> Domstore.recovery -> unit) option;
}

let registry ?(init = fun _ -> ()) ?journal_dir ?recover make =
  {
    reg_mutex = Mutex.create ();
    reg_nodes = Hashtbl.create 4;
    reg_make = make;
    reg_init = init;
    reg_journal_dir = journal_dir;
    reg_recover = recover;
  }

let with_registry reg f =
  Mutex.lock reg.reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.reg_mutex) f

let get_node reg name =
  with_registry reg (fun () ->
      match Hashtbl.find_opt reg.reg_nodes name with
      | Some node -> node
      | None ->
        let store = Domstore.create () in
        (* Journal replay happens before the payload is built and before
           init: a restarted driver sees its pre-crash definitions, then
           reconciles them against whatever hypervisor state survived. *)
        let attach_info =
          Option.map
            (fun dir -> Domstore.attach store ~path:(dir ^ "/" ^ name ^ ".journal"))
            reg.reg_journal_dir
        in
        let node =
          {
            node_name = name;
            store;
            lock = Rwlock.create ();
            net = Net_backend.create ();
            storage = Storage_backend.create ();
            events = Events.create_bus ();
            payload = reg.reg_make ~node_name:name;
            gen = Atomic.make 0;
            recovered = None;
          }
        in
        Hashtbl.add reg.reg_nodes name node;
        reg.reg_init node;
        (match (attach_info, reg.reg_recover) with
         | Some info, Some recover -> recover node info
         | Some _, None | None, _ -> ());
        node)

let reset_nodes reg = with_registry reg (fun () -> Hashtbl.reset reg.reg_nodes)

(* Per-call deadline hook.  The daemon's request context (Reqctx)
   installs a provider at startup; outside a daemon dispatch it stays
   [None] and the lock paths below are exactly the unbounded ones.
   Drivers cannot depend on the daemon library, hence the inversion. *)
let deadline_hook : (unit -> float option) ref = ref (fun () -> None)
let set_deadline_hook f = deadline_hook := f
let current_deadline () = !deadline_hook ()

(* Boot-path budget hook.  Autostart (and reconciler-triggered) starts
   run outside any RPC dispatch, so no deadline is on the thread; the
   daemon installs a wrapper here that runs the start under a fresh
   reqctx budget derived from wall_limit_ms, putting boot-time starts
   under the same watchdog as every dispatched job.  Default: run
   as-is. *)
let start_budget_hook :
    ((unit -> (unit, Verror.t) result) -> (unit, Verror.t) result) ref =
  ref (fun f -> f ())

let set_start_budget_hook f = start_budget_hook := f

let lock_expired node =
  Verror.raise_err Verror.Operation_failed
    "deadline expired waiting for lock on node %S" node.node_name

(* Driver sections observe the caller's remaining budget: a waiter whose
   deadline passes gives up instead of piling onto a stuck writer.  The
   result type of [f] is opaque here, so expiry surfaces as the same
   [Virt_error] the dispatcher already maps to an error reply. *)
let with_read node f =
  match current_deadline () with
  | None -> Rwlock.with_read node.lock f
  | Some deadline -> (
    match Rwlock.with_read_until node.lock ~deadline f with
    | Ok v -> v
    | Error `Timeout -> lock_expired node)

(* Every write-classified section stamps the node: the generation is
   bumped in the [finally] of the section body, i.e. after the mutation
   but {e before} the write lock is released.  A cache fill that
   snapshots the generation and then takes the read lock therefore
   cannot capture post-write data under a pre-write stamp: any write
   that overlaps the fill leaves the fill's snapshot stale, and the
   stale stamp invalidates the entry on its next lookup.  Failed writes
   bump too — a spurious invalidation, never a missed one. *)
let with_write node f =
  let f () = Fun.protect ~finally:(fun () -> Atomic.incr node.gen) f in
  match current_deadline () with
  | None -> Rwlock.with_write node.lock f
  | Some deadline -> (
    match Rwlock.with_write_until node.lock ~deadline f with
    | Ok v -> v
    | Error `Timeout -> lock_expired node)

(* One write stamp for the whole node: driver writes ([with_write]) plus
   the network and storage backends, which carry their own locks and
   mutate outside the node lock.  Each addend is monotonic, so the sum
   is, and any single mutation changes it. *)
let generation node =
  Atomic.get node.gen
  + Net_backend.generation node.net
  + Storage_backend.generation node.storage

(* Lifecycle events double as durable run-state notes: every driver
   already emits at every lifecycle site, so routing emission through
   here keeps the journal's view of "which domains are running" in sync
   without touching each call site.  (Suspended/crashed guests still
   have a live process — only clean stops clear the flag.) *)
let emit node domain_name lifecycle =
  (match lifecycle with
   | Events.Ev_started | Events.Ev_resumed | Events.Ev_adopted ->
     Domstore.note_started node.store domain_name
   | Events.Ev_stopped | Events.Ev_shutdown ->
     Domstore.note_stopped node.store domain_name
   | _ -> ());
  Events.emit node.events ~domain_name lifecycle

let ( let* ) = Result.bind

let require_config ?(what = "domain") node name =
  match Domstore.get node.store name with
  | Some cfg -> Ok cfg
  | None -> Verror.error Verror.No_domain "no %s named %S" what name

let domain_ref_of ?what node ~dom_id name =
  let* cfg = require_config ?what node name in
  Ok
    Driver.
      { dom_name = name; dom_uuid = cfg.Vmm.Vm_config.uuid; dom_id = dom_id name }

let lookup_by_name node ref_of name = with_read node (fun () -> ref_of name)

let lookup_by_uuid ?(what = "domain") node ref_of uuid =
  with_read node (fun () ->
      match Domstore.by_uuid node.store uuid with
      | Some cfg -> ref_of cfg.Vmm.Vm_config.name
      | None ->
        Verror.error Verror.No_domain "no %s with UUID %s" what
          (Vmm.Uuid.to_string uuid))

let list_defined node ~active =
  with_read node (fun () ->
      Domstore.names node.store
      |> List.filter (fun name -> not (active name))
      |> Result.ok)

(* Native bulk listing: the whole store walked under ONE read section,
   so the returned records are a consistent snapshot — no domain can be
   started/undefined between rows, unlike a list + per-domain lookup
   sequence.  [info] runs with the lock already held and therefore must
   not re-enter [with_read] (the rwlock is not re-entrant); [prepare]
   models one hypervisor round per listing (vs one per domain). *)
let list_all node ?(prepare = fun () -> ()) ~dom_id ~info () =
  with_read node (fun () ->
      prepare ();
      Domstore.entries node.store
      |> List.filter_map (fun (name, cfg, autostart, _running) ->
             match info name cfg with
             | Error _ -> None (* row vanished from the substrate: skip *)
             | Ok rec_info ->
               Some
                 Driver.
                   {
                     rec_ref =
                       {
                         dom_name = name;
                         dom_uuid = cfg.Vmm.Vm_config.uuid;
                         dom_id = dom_id name;
                       };
                     rec_info;
                     rec_autostart = Some autostart;
                   })
      |> Result.ok)

let set_autostart node name flag =
  with_write node (fun () -> Domstore.set_autostart node.store name flag)

let get_autostart node name =
  with_read node (fun () -> Domstore.get_autostart node.store name)

(* Reconciliation: diff the replayed journal against the hypervisor
   state that survived the crash.  Running guests the journal expects
   are re-adopted in place — [adopt] rebuilds manager bookkeeping only
   and must issue no lifecycle commands.  Guests that died or appeared
   while the manager was down are divergences: reported as events,
   never silently repaired.  Inactive domains marked autostart are
   started through the driver's ordinary [start] path. *)
let reconcile node ~attach_info ~running ~adopt ~start =
  let live = running () in
  let live_tbl = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace live_tbl n ()) live;
  let adopted = ref [] in
  let lost = ref [] in
  let appeared = ref [] in
  let to_autostart = ref [] in
  List.iter
    (fun (name, cfg, autostart, was_running) ->
      if Hashtbl.mem live_tbl name then begin
        adopt name cfg;
        if not was_running then begin
          appeared := name :: !appeared;
          emit node name Events.Ev_diverged
        end;
        emit node name Events.Ev_adopted;
        adopted := name :: !adopted
      end
      else begin
        if was_running then begin
          lost := name :: !lost;
          Domstore.note_stopped node.store name;
          emit node name Events.Ev_diverged
        end;
        if autostart then to_autostart := name :: !to_autostart
      end)
    (Domstore.entries node.store);
  let unknown =
    List.filter (fun n -> not (Domstore.mem node.store n)) live
  in
  List.iter
    (fun n -> Events.emit node.events ~domain_name:n Events.Ev_diverged)
    unknown;
  let autostarted =
    List.filter
      (fun name ->
        match !start_budget_hook (fun () -> start name) with
        | Ok () -> true
        | Error _ -> false)
      (List.rev !to_autostart)
  in
  let report =
    {
      rec_replayed = attach_info.Domstore.rc_replayed;
      rec_torn_bytes = attach_info.Domstore.rc_torn_bytes;
      rec_adopted = List.rev !adopted;
      rec_autostarted = autostarted;
      rec_lost = List.rev !lost;
      rec_appeared = List.rev !appeared;
      rec_unknown = unknown;
    }
  in
  node.recovered <- Some report;
  Atomic.incr node.gen;
  report

let node_of_uri ?(default = "localhost") uri =
  match uri.Vuri.host with Some host -> host | None -> default

let register ~name ?schemes ?probe ~open_conn () =
  let schemes = Option.value schemes ~default:[ name ] in
  let probe =
    Option.value probe
      ~default:(fun uri ->
        List.mem uri.Vuri.scheme schemes && uri.Vuri.transport = None)
  in
  Driver.register { Driver.reg_name = name; probe; open_conn }
