(** Generic driver-node framework.

    Every local hypervisor driver manages a set of named {e nodes} (one
    simulated host each) and exposes the same plumbing around them: a
    process-global registry created on first use, a per-node lock, a
    {!Domstore} of persistent definitions, network/storage backends, an
    event bus, and the name/UUID lookup and listing helpers over the
    store.  The only thing that differs per driver is its substrate
    state — the {e payload} ([Qemu_proc] table, [Xen_hv] handle, …).

    This module factors all of that out, parameterized by the payload
    type, so a driver is reduced to its payload, its operation bodies,
    and a {!register} call.

    {b Locking.}  Each node carries an {!Ovsync.Rwlock.t}.  Operations
    classify themselves: read-only ones ([dom_get_info], [dom_get_xml],
    listings, lookups, capabilities) run under {!with_read} and proceed
    concurrently; mutating ones (lifecycle, define/undefine,
    save/restore, migration steps) run under {!with_write} and are
    exclusive.  The lock is not reentrant — code running inside a
    section must not call back into another locked operation of the same
    node (fetch what you need inside the section, call out after it, as
    the guest-agent paths do). *)

open Ovirt_core

(** What a restarted node found when it came back: journal replay
    figures plus the reconciliation verdict for every domain. *)
type recovery = {
  rec_replayed : int;  (** journal records replayed *)
  rec_torn_bytes : int;  (** torn-tail bytes truncated *)
  rec_adopted : string list;  (** running guests re-adopted untouched *)
  rec_autostarted : string list;  (** inactive autostart domains started *)
  rec_lost : string list;  (** expected running, found dead (diverged) *)
  rec_appeared : string list;  (** found running unexpectedly (diverged) *)
  rec_unknown : string list;  (** running but not defined (diverged) *)
}

type 'p node = {
  node_name : string;
  store : Domstore.t;  (** persistent definitions *)
  lock : Ovsync.Rwlock.t;  (** reader–writer section lock for driver ops *)
  net : Net_backend.t;
  storage : Storage_backend.t;
  events : Events.bus;
  payload : 'p;  (** driver-specific substrate state *)
  gen : int Atomic.t;
      (** node write generation; use {!generation} rather than reading
          this field (the public stamp also folds in the backends) *)
  mutable recovered : recovery option;
      (** set by {!reconcile} when the node was rebuilt from a journal *)
}

(** {1 Node registry} *)

type 'p registry

val registry :
  ?init:('p node -> unit) ->
  ?journal_dir:string ->
  ?recover:('p node -> Domstore.recovery -> unit) ->
  (node_name:string -> 'p) ->
  'p registry
(** [registry ?init ?journal_dir ?recover make] builds an (initially
    empty) named-node table.  [make ~node_name] creates the payload for
    a new node; [init] then runs exactly once on the assembled node,
    still under the registry lock, for post-creation seeding (e.g. the
    test driver's canonical ["test"] domain) — with a journal it must
    be idempotent, because it also runs after replay.

    With [journal_dir], each node's {!Domstore} is backed by the
    journal at [<journal_dir>/<node>.journal] ({!Domstore.attach} runs
    before [make] and [init]); [recover] then runs last on creation,
    where drivers redo half-completed operations and call {!reconcile}
    against surviving hypervisor state. *)

val get_node : 'p registry -> string -> 'p node
(** Find-or-create.  Thread-safe; creation is serialized. *)

val reset_nodes : 'p registry -> unit
(** Drop every node.  Test isolation — and the crash model: the manager
    forgets everything while journals ({!Persist.Media}) and shared
    hypervisor substrates survive, so the next {!get_node} replays and
    reconciles. *)

val reconcile :
  'p node ->
  attach_info:Domstore.recovery ->
  running:(unit -> string list) ->
  adopt:(string -> Vmm.Vm_config.t -> unit) ->
  start:(string -> (unit, Verror.t) result) ->
  recovery
(** Diff the replayed store against surviving hypervisor state.
    [running ()] lists guest names alive on the substrate; [adopt]
    rebuilds manager-side bookkeeping for one of them and must issue no
    lifecycle command; [start] is the driver's ordinary start path,
    used for inactive autostart domains.  Running guests the journal
    expects are re-adopted ([Ev_adopted]); guests that died, appeared,
    or are entirely unknown produce [Ev_diverged] events and are left
    alone.  Stores the report in [node.recovered] and returns it. *)

(** {1 Lock sections} *)

val with_read : 'p node -> (unit -> 'a) -> 'a
val with_write : 'p node -> (unit -> 'a) -> 'a
(** Shared / exclusive sections on the node lock.  When the installed
    deadline hook reports a per-call deadline, acquisition is bounded:
    a waiter whose deadline passes raises [Verror.Virt_error]
    ([Operation_failed], "deadline expired…") instead of queueing
    behind a stuck writer. *)

val generation : 'p node -> int
(** Monotonic write stamp covering the whole node: bumped while the
    write lock is still held at the end of every {!with_write} section
    (success or failure), plus the {!Net_backend} and {!Storage_backend}
    generations (those backends mutate under their own locks).  A reader
    that snapshots the stamp before reading and sees the same value
    afterwards read current state; the daemon's reply cache keys entry
    validity on it. *)

val set_deadline_hook : (unit -> float option) -> unit
(** Install the per-call deadline provider (absolute [Unix.gettimeofday]
    time).  The daemon's request context registers itself here at
    startup; the default provider reports no deadline, keeping direct
    (non-daemon) connections on the unbounded paths. *)

val current_deadline : unit -> float option

val set_start_budget_hook :
  ((unit -> (unit, Verror.t) result) -> (unit, Verror.t) result) -> unit
(** Install the boot-path budget wrapper.  Autostart (and
    reconciler-triggered) starts run outside any RPC dispatch, so no
    deadline rides on the thread; the daemon installs a wrapper that
    runs the start under a fresh reqctx budget derived from
    [wall_limit_ms], putting boot-time starts under the same watchdog
    as dispatched jobs.  The default wrapper runs the start as-is. *)

(** {1 Events} *)

val emit : 'p node -> string -> Events.lifecycle -> unit
(** [emit node domain_name lifecycle] on the node's bus.  Start/stop
    lifecycle events also update the store's durable run-state notes
    (the journal's record of which domains the manager believes are
    running — what reconciliation diffs against after a crash). *)

(** {1 Domstore plumbing}

    These helpers never take the node lock themselves (the store has its
    own), so they are safe to call from inside either section kind;
    [lookup_by_name]/[lookup_by_uuid]/[list_defined] are complete
    read-classified operations and take the read lock. *)

val require_config :
  ?what:string -> 'p node -> string -> (Vmm.Vm_config.t, Verror.t) result
(** The stored definition, or [No_domain "no <what> named ..."]; [what]
    defaults to ["domain"]. *)

val domain_ref_of :
  ?what:string ->
  'p node ->
  dom_id:(string -> int option) ->
  string ->
  (Driver.domain_ref, Verror.t) result
(** Build the public domain reference from the stored config, asking
    [dom_id] for the hypervisor id iff the domain is active. *)

val lookup_by_name :
  'p node ->
  (string -> (Driver.domain_ref, Verror.t) result) ->
  string ->
  (Driver.domain_ref, Verror.t) result
(** [lookup_by_name node ref_of name]: [ref_of name] under the read
    lock. *)

val lookup_by_uuid :
  ?what:string ->
  'p node ->
  (string -> (Driver.domain_ref, Verror.t) result) ->
  Vmm.Uuid.t ->
  (Driver.domain_ref, Verror.t) result
(** Resolve the UUID in the store under the read lock, then [ref_of] the
    matching name; [No_domain] otherwise. *)

val list_defined :
  'p node -> active:(string -> bool) -> (string list, Verror.t) result
(** Stored names for which [active] is false, under the read lock. *)

val list_all :
  'p node ->
  ?prepare:(unit -> unit) ->
  dom_id:(string -> int option) ->
  info:(string -> Vmm.Vm_config.t -> (Driver.domain_info, Verror.t) result) ->
  unit ->
  (Driver.domain_record list, Verror.t) result
(** Native bulk listing: walk every stored domain under ONE read section
    and build {!Driver.domain_record}s — a consistent snapshot, the
    driver-side half of the wire protocol's [Proc_dom_list_all].
    [prepare] (e.g. a simulated hypervisor round trip) and [info] run
    with the read lock held, so they must not re-enter a lock section;
    rows whose [info] fails are skipped. *)

val set_autostart : 'p node -> string -> bool -> (unit, Verror.t) result
(** Persist the autostart flag (write lock + store). *)

val get_autostart : 'p node -> string -> (bool, Verror.t) result

(** {1 Registration} *)

val node_of_uri : ?default:string -> Vuri.t -> string
(** The URI's host, or [default] (["localhost"]). *)

val register :
  name:string ->
  ?schemes:string list ->
  ?probe:(Vuri.t -> bool) ->
  open_conn:(Vuri.t -> (Driver.ops, Verror.t) result) ->
  unit ->
  unit
(** Build and install the {!Driver.registration}.  The default probe
    accepts [schemes] (default [[name]]) with no [+transport] suffix —
    transported URIs fall through to the remote driver. *)
