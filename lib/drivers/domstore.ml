module Vm_config = Vmm.Vm_config
module Verror = Ovirt_core.Verror
module Journal = Persist.Journal

type entry = {
  e_cfg : Vm_config.t;
  mutable e_autostart : bool;
  mutable e_running : bool;
}

type t = {
  mutex : Mutex.t;
  configs : (string, entry) Hashtbl.t;
  (* Secondary index: uuid string -> name.  Kept in sync with [configs]
     under [mutex] so define/by_uuid are O(1) instead of a full fold. *)
  uuids : (string, string) Hashtbl.t;
  mutable journal : Journal.t option;
}

type recovery = { rc_replayed : int; rc_torn_bytes : int; rc_compacted : bool }

let create () =
  {
    mutex = Mutex.create ();
    configs = Hashtbl.create 16;
    uuids = Hashtbl.create 16;
    journal = None;
  }

let with_lock store f =
  Mutex.lock store.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.mutex) f

(* --- journal records ----------------------------------------------------- *)
(* One record per mutation, [tag char ^ body]:
     'D' ^ domain XML      define / redefine
     'U' ^ name            undefine
     'A' ^ ('0'|'1') ^ name  autostart off/on
     'R' ^ name            domain started (running at crash time)
     'S' ^ name            domain stopped
   The 'R'/'S' pair is the analogue of libvirt's per-domain status XML:
   it records which domains the manager believes are running, which is
   what reconciliation diffs against the surviving hypervisor state. *)

let rec_define cfg = "D" ^ Vmm.Domxml.to_xml ~virt_type:"persist" cfg
let rec_undefine name = "U" ^ name
let rec_autostart name flag = "A" ^ (if flag then "1" else "0") ^ name
let rec_running name flag = (if flag then "R" else "S") ^ name

let journal_append store payload =
  match store.journal with None -> () | Some j -> Journal.append j payload

(* Snapshot: the minimal record sequence reproducing the live state. *)
let snapshot_records store =
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) store.configs []
  |> List.sort compare
  |> List.concat_map (fun (name, e) ->
         (rec_define e.e_cfg :: (if e.e_autostart then [ rec_autostart name true ] else []))
         @ if e.e_running then [ rec_running name true ] else [])

(* Compact when the log carries several times more records than a fresh
   snapshot would need; keeps replay O(live state), not O(history).
   The factor/slack knobs are process-wide (daemon_config:
   journal_compact_factor / journal_compact_slack): reconcile plans add
   journal traffic, so deployments can trade replay time for write
   amplification. *)
let compact_factor = ref 4
let compact_slack = ref 16

let set_compaction ~factor ~slack =
  compact_factor := max 1 factor;
  compact_slack := max 0 slack

let compaction () = (!compact_factor, !compact_slack)

let maybe_compact_locked store =
  match store.journal with
  | None -> false
  | Some j ->
    let snap = snapshot_records store in
    if Journal.record_count j > (!compact_factor * List.length snap) + !compact_slack
    then begin
      Journal.rewrite j snap;
      true
    end
    else false

(* --- core mutations (locked helpers) ------------------------------------- *)

let uuid_key u = Vmm.Uuid.to_string u

let define_locked store config =
  let name = config.Vm_config.name in
  let key = uuid_key config.Vm_config.uuid in
  let uuid_clash =
    match Hashtbl.find_opt store.uuids key with
    | Some owner -> owner <> name
    | None -> false
  in
  if uuid_clash then
    Verror.error Verror.Dup_name "UUID of %S already used by another domain" name
  else
    match Hashtbl.find_opt store.configs name with
    | Some existing
      when not (Vmm.Uuid.equal existing.e_cfg.Vm_config.uuid config.Vm_config.uuid)
      ->
      Verror.error Verror.Dup_name
        "domain %S already defined with a different UUID" name
    | Some existing ->
      Hashtbl.replace store.configs name { existing with e_cfg = config };
      Ok ()
    | None ->
      Hashtbl.replace store.configs name
        { e_cfg = config; e_autostart = false; e_running = false };
      Hashtbl.replace store.uuids key name;
      Ok ()

let undefine_locked store name =
  match Hashtbl.find_opt store.configs name with
  | Some e ->
    Hashtbl.remove store.configs name;
    Hashtbl.remove store.uuids (uuid_key e.e_cfg.Vm_config.uuid);
    Ok ()
  | None -> Verror.error Verror.No_domain "no persistent domain named %S" name

(* --- public API ----------------------------------------------------------- *)

let define store config =
  with_lock store (fun () ->
      match define_locked store config with
      | Ok () ->
        journal_append store (rec_define config);
        ignore (maybe_compact_locked store);
        Ok ()
      | Error _ as e -> e)

let undefine store name =
  with_lock store (fun () ->
      match undefine_locked store name with
      | Ok () ->
        journal_append store (rec_undefine name);
        ignore (maybe_compact_locked store);
        Ok ()
      | Error _ as e -> e)

let get store name =
  with_lock store (fun () ->
      Option.map (fun e -> e.e_cfg) (Hashtbl.find_opt store.configs name))

let by_uuid store uuid =
  with_lock store (fun () ->
      match Hashtbl.find_opt store.uuids (uuid_key uuid) with
      | Some name ->
        Option.map (fun e -> e.e_cfg) (Hashtbl.find_opt store.configs name)
      | None -> None)

let names store =
  with_lock store (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) store.configs []
      |> List.sort compare)

let mem store name = with_lock store (fun () -> Hashtbl.mem store.configs name)

let set_autostart store name flag =
  with_lock store (fun () ->
      match Hashtbl.find_opt store.configs name with
      | Some e ->
        if e.e_autostart <> flag then begin
          e.e_autostart <- flag;
          journal_append store (rec_autostart name flag)
        end;
        Ok ()
      | None ->
        Verror.error Verror.No_domain "no persistent domain named %S" name)

let get_autostart store name =
  with_lock store (fun () ->
      match Hashtbl.find_opt store.configs name with
      | Some e -> Ok e.e_autostart
      | None ->
        Verror.error Verror.No_domain "no persistent domain named %S" name)

let note_running store name flag =
  with_lock store (fun () ->
      match Hashtbl.find_opt store.configs name with
      | Some e when e.e_running <> flag ->
        e.e_running <- flag;
        journal_append store (rec_running name flag)
      | Some _ | None -> ())

let note_started store name = note_running store name true
let note_stopped store name = note_running store name false

let was_running store name =
  with_lock store (fun () ->
      match Hashtbl.find_opt store.configs name with
      | Some e -> e.e_running
      | None -> false)

let entries store =
  with_lock store (fun () ->
      Hashtbl.fold
        (fun name e acc -> (name, e.e_cfg, e.e_autostart, e.e_running) :: acc)
        store.configs []
      |> List.sort compare)

(* --- journal replay ------------------------------------------------------- *)

let apply_record store payload =
  if String.length payload = 0 then ()
  else
    let body = String.sub payload 1 (String.length payload - 1) in
    match payload.[0] with
    | 'D' -> (
      match Vmm.Domxml.of_xml body with
      | Ok (cfg, _virt_type) -> ignore (define_locked store cfg)
      | Error _ -> ())
    | 'U' -> ignore (undefine_locked store body)
    | 'A' when String.length body >= 1 -> (
      let flag = body.[0] = '1' in
      let name = String.sub body 1 (String.length body - 1) in
      match Hashtbl.find_opt store.configs name with
      | Some e -> e.e_autostart <- flag
      | None -> ())
    | 'R' | 'S' -> (
      match Hashtbl.find_opt store.configs body with
      | Some e -> e.e_running <- payload.[0] = 'R'
      | None -> ())
    | _ -> () (* unknown tag: forward compatibility, skip *)

let attach store ~path =
  with_lock store (fun () ->
      if store.journal <> None then invalid_arg "Domstore.attach: already attached";
      if Hashtbl.length store.configs > 0 then
        invalid_arg "Domstore.attach: store not empty";
      let j, replay = Journal.open_ path in
      List.iter (apply_record store) replay.Journal.rp_records;
      store.journal <- Some j;
      let compacted = maybe_compact_locked store in
      {
        rc_replayed = List.length replay.Journal.rp_records;
        rc_torn_bytes = replay.Journal.rp_torn_bytes;
        rc_compacted = compacted;
      })
