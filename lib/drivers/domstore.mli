(** Persistent-definition store shared by the stateful drivers.

    Stateful hypervisors (QEMU, Xen) forget domains the moment they stop;
    keeping the configuration so the domain can be started again is the
    driver's job.  This store holds those definitions, keyed by name, with
    the uniqueness rules libvirt enforces (unique name {e and} UUID); a
    secondary UUID index makes clash checks and [by_uuid] O(1).

    Optionally the store is backed by a {!Persist.Journal}: every
    define/undefine/autostart/run-state change appends a record, replay
    on {!attach} restores the pre-crash state (torn tails truncated),
    and the log is compacted to a snapshot when it outgrows the live
    state.  The run-state records ('R'/'S') are the analogue of
    libvirt's per-domain status XML — they tell a restarted manager
    which domains it {e believed} were running, which recovery then
    reconciles against the hypervisor state that survived the crash. *)

type t

type recovery = {
  rc_replayed : int;  (** journal records applied on attach *)
  rc_torn_bytes : int;  (** torn-tail bytes truncated on attach *)
  rc_compacted : bool;  (** whether attach rewrote a snapshot *)
}

val create : unit -> t

val attach : t -> path:string -> recovery
(** Back the (empty, unattached) store with the journal at [path],
    replaying whatever survived there.  @raise Invalid_argument if the
    store already holds entries or a journal. *)

val define : t -> Vmm.Vm_config.t -> (unit, Ovirt_core.Verror.t) result
(** Redefinition with the same name and UUID updates in place (keeping
    autostart and run-state flags); a name or UUID collision with a
    different identity is [Dup_name]. *)

val undefine : t -> string -> (unit, Ovirt_core.Verror.t) result
val get : t -> string -> Vmm.Vm_config.t option
val by_uuid : t -> Vmm.Uuid.t -> Vmm.Vm_config.t option
val names : t -> string list
(** Sorted. *)

val mem : t -> string -> bool

val set_autostart : t -> string -> bool -> (unit, Ovirt_core.Verror.t) result
(** [No_domain] for undefined names. *)

val get_autostart : t -> string -> (bool, Ovirt_core.Verror.t) result

val note_started : t -> string -> unit
(** Record that a defined domain is now running (durable; no-op for
    undefined names or when the flag is already set). *)

val note_stopped : t -> string -> unit
val was_running : t -> string -> bool

val entries : t -> (string * Vmm.Vm_config.t * bool * bool) list
(** [(name, cfg, autostart, was_running)] sorted by name — the
    recovery view. *)

val set_compaction : factor:int -> slack:int -> unit
(** Process-wide compaction threshold: the journal is rewritten to a
    snapshot once it holds more than [factor·|snapshot| + slack]
    records (default [4·|snapshot| + 16]).  Clamped to [factor ≥ 1],
    [slack ≥ 0].  Exposed through [daemon_config]'s
    [journal_compact_factor] / [journal_compact_slack] keys. *)

val compaction : unit -> int * int
(** Current [(factor, slack)]. *)
