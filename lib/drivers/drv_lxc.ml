module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Lxc_host = Hvsim.Lxc_host
open Ovirt_core

(* Substrate state: the container host.  The node's Domstore keeps the
   configs (for XML/uuid); live state lives in the host sim. *)
type payload = { lxc : Lxc_host.t }
type node = payload Drvnode.node

let ( let* ) = Result.bind
let lxc (node : node) = node.payload.lxc
let require_config (node : node) name = Drvnode.require_config ~what:"container" node name

let container_info (node : node) name =
  Result.map_error (Verror.make Verror.No_domain) (Lxc_host.info (lxc node) name)

let state_of = function
  | Lxc_host.Stopped -> Vm_state.Shutoff
  | Lxc_host.Running -> Vm_state.Running
  | Lxc_host.Frozen -> Vm_state.Paused

let domain_ref_of (node : node) name =
  let* cfg = require_config node name in
  let* info = container_info node name in
  Ok
    Driver.
      {
        dom_name = name;
        dom_uuid = cfg.Vm_config.uuid;
        dom_id = info.Lxc_host.init_pid;
      }

let define_xml (node : node) xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Container_exe ] xml in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      let* () =
        Result.map_error (Verror.make Verror.Operation_failed)
          (Lxc_host.define (lxc node) cfg)
      in
      Drvnode.emit node cfg.Vm_config.name Events.Ev_defined;
      domain_ref_of node cfg.Vm_config.name)

let host_op code (node : node) name call event =
  Drvnode.with_write node (fun () ->
      let* _cfg = require_config node name in
      let* () = Result.map_error (Verror.make code) (call (lxc node) name) in
      Drvnode.emit node name event;
      Ok ())

let undefine (node : node) name =
  Drvnode.with_write node (fun () ->
      let* _cfg = require_config node name in
      let* info = container_info node name in
      if info.Lxc_host.info_state <> Lxc_host.Stopped then
        Verror.error Verror.Operation_invalid "container %S is active" name
      else
        (* WAL order: journal the undefine before touching the kernel; a
           crash in between leaves a store-less kernel definition, which
           recovery reports as a divergence. *)
        let* () = Domstore.undefine node.store name in
        let* () =
          Result.map_error (Verror.make Verror.Operation_invalid)
            (Lxc_host.undefine (lxc node) name)
        in
        Drvnode.emit node name Events.Ev_undefined;
        Ok ())

let dom_create node name =
  host_op Verror.Operation_invalid node name Lxc_host.start Events.Ev_started

let dom_suspend node name =
  host_op Verror.Operation_invalid node name Lxc_host.freeze Events.Ev_suspended

let dom_resume node name =
  host_op Verror.Operation_invalid node name Lxc_host.thaw Events.Ev_resumed

(* Containers have no ACPI: both shutdown and destroy signal init. *)
let dom_shutdown node name =
  host_op Verror.Operation_invalid node name Lxc_host.stop Events.Ev_shutdown

let dom_destroy node name =
  host_op Verror.Operation_invalid node name Lxc_host.stop Events.Ev_stopped

(* Restart recovery.  Kernel state ({!Lxc_host.attach}) outlives the
   manager: running containers are still there and the driver keeps no
   per-container state, so adoption is pure reconciliation.  Two extra
   passes cover the define/undefine crash windows: the journaled store
   is authoritative for definitions, so defines it logged but the
   kernel never saw are redone, while kernel definitions the store does
   not know are reported as divergences, never removed. *)
let running_names (node : node) =
  Lxc_host.list (lxc node)
  |> List.filter (fun name ->
         match Lxc_host.info (lxc node) name with
         | Ok info -> info.Lxc_host.info_state <> Lxc_host.Stopped
         | Error _ -> false)

let recover (node : node) attach_info =
  List.iter
    (fun (name, cfg, _autostart, _was_running) ->
      match Lxc_host.info (lxc node) name with
      | Ok _ -> ()
      | Error _ -> ignore (Lxc_host.define (lxc node) cfg))
    (Domstore.entries node.store);
  List.iter
    (fun name ->
      if not (Domstore.mem node.store name) then
        match Lxc_host.info (lxc node) name with
        | Ok info when info.Lxc_host.info_state = Lxc_host.Stopped ->
          (* Running store-less containers are reported by reconcile. *)
          Events.emit node.events ~domain_name:name Events.Ev_diverged
        | Ok _ | Error _ -> ())
    (Lxc_host.list (lxc node));
  ignore
    (Drvnode.reconcile node ~attach_info
       ~running:(fun () -> running_names node)
       ~adopt:(fun _name _cfg -> ())
       ~start:(dom_create node))

let nodes : payload Drvnode.registry =
  Drvnode.registry ~journal_dir:"/var/lib/ovirt/lxc" ~recover
    (fun ~node_name -> { lxc = Lxc_host.attach node_name })

let get_node name = Drvnode.get_node nodes name
let reset_nodes () = Drvnode.reset_nodes nodes

let dom_get_info (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      let* info = container_info node name in
      Ok
        Driver.
          {
            di_state = state_of info.Lxc_host.info_state;
            di_max_mem_kib = cfg.Vm_config.memory_kib;
            di_memory_kib = info.Lxc_host.memory_limit_kib;
            di_vcpus = cfg.Vm_config.vcpus;
            di_cpu_time_ns =
              (match info.Lxc_host.init_pid with
               | Some pid -> Int64.of_int (pid * 100_000)
               | None -> 0L);
          })

let dom_get_xml (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      Ok (Vmm.Domxml.to_xml ~virt_type:"lxc" cfg))

(* Live resize through the cgroup: containers may grow past the definition
   (cgroups allow it), unlike a balloon. *)
let dom_set_memory (node : node) name kib =
  Drvnode.with_write node (fun () ->
      let* _cfg = require_config node name in
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Lxc_host.set_memory_limit (lxc node) name kib))

let list_domains (node : node) =
  Drvnode.with_read node (fun () ->
      Lxc_host.list (lxc node)
      |> List.filter_map (fun name ->
             match Lxc_host.info (lxc node) name with
             | Ok info when info.Lxc_host.info_state <> Lxc_host.Stopped ->
               (match domain_ref_of node name with Ok r -> Some r | Error _ -> None)
             | Ok _ | Error _ -> None)
      |> Result.ok)

(* Listing comes from the host sim, not the Domstore, so the generic
   list_defined helper does not apply. *)
let list_defined (node : node) =
  Drvnode.with_read node (fun () ->
      Lxc_host.list (lxc node)
      |> List.filter (fun name ->
             match Lxc_host.info (lxc node) name with
             | Ok info -> info.Lxc_host.info_state = Lxc_host.Stopped
             | Error _ -> false)
      |> Result.ok)

let lookup_by_name (node : node) name =
  Drvnode.lookup_by_name node (domain_ref_of node) name

let lookup_by_uuid (node : node) uuid =
  Drvnode.lookup_by_uuid ~what:"container" node (domain_ref_of node) uuid

let capabilities (node : node) =
  Drvnode.with_read node (fun () ->
      Capabilities.
        {
          driver_name = "lxc";
          virt_kind = "container";
          stateful = true;
          guest_os_kinds = [ Vm_config.Container_exe ];
          features =
            [
              Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
              Feat_destroy; Feat_set_memory; Feat_freeze; Feat_console;
              Feat_networks; Feat_storage_pools;
            ];
          host =
            Drvutil.host_summary ~node_name:node.node_name (Lxc_host.host (lxc node));
        })

let open_node (node : node) =
  Driver.make_ops ~drv_name:"lxc"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~dom_set_autostart:(Drvnode.set_autostart node)
    ~dom_get_autostart:(Drvnode.get_autostart node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events
    ~generation:(fun () -> Drvnode.generation node)
    ()

let register () =
  Drvnode.register ~name:"lxc"
    ~open_conn:(fun uri -> Ok (open_node (get_node (Drvnode.node_of_uri uri))))
    ()
