module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Qemu_proc = Hvsim.Qemu_proc
open Ovirt_core

(* Substrate state: the manager's view of its emulator processes —
   process handles, balloon targets, agent channels — like libvirt's
   qemu driver.  This bookkeeping dies with the manager; the processes
   themselves live in the host's process table ({!Qemu_proc.running_on})
   and are re-adopted on recovery.  Managed-save images live on the
   durable medium. *)
type payload = {
  host : Hvsim.Hostinfo.t;
  procs : (string, Qemu_proc.t) Hashtbl.t;
  balloon : (string, int) Hashtbl.t; (* current balloon targets, KiB *)
  agents : (string, Hvsim.Guest_agent.endpoint) Hashtbl.t;
}

type node = payload Drvnode.node

let ( let* ) = Result.bind

let save_path (node : node) name =
  "/var/lib/ovirt/qemu/save/" ^ node.node_name ^ "/" ^ name ^ ".save"

(* ------------------------------------------------------------------ *)
(* Command-line formatting                                             *)
(* ------------------------------------------------------------------ *)

let proc_argv (cfg : Vm_config.t) =
  let base =
    [
      "qemu-system-" ^ cfg.arch;
      "-name"; cfg.name;
      "-uuid"; Vmm.Uuid.to_string cfg.uuid;
      "-m"; string_of_int (cfg.memory_kib / 1024);
      "-smp"; string_of_int cfg.vcpus;
      "-S";
      "-qmp"; "unix:/var/run/ovirt/qemu/" ^ cfg.name ^ ".monitor";
    ]
  in
  let disks =
    List.concat_map
      (fun (d : Vm_config.disk) ->
        [
          "-drive";
          Printf.sprintf "file=%s,format=%s,if=virtio%s" d.source_path d.disk_format
            (if d.readonly then ",readonly=on" else "");
        ])
      cfg.disks
  in
  let nics =
    List.concat_map
      (fun (n : Vm_config.nic) ->
        [
          "-netdev"; Printf.sprintf "bridge,id=%s" n.network;
          "-device"; Printf.sprintf "%s,netdev=%s,mac=%s" n.nic_model n.network n.mac;
        ])
      cfg.nics
  in
  base @ disks @ nics

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let require_config (node : node) name = Drvnode.require_config node name

let live_proc (node : node) name =
  match Hashtbl.find_opt node.payload.procs name with
  | Some proc when Qemu_proc.is_alive proc -> Some proc
  | Some _ | None -> None

let require_proc (node : node) name =
  match live_proc node name with
  | Some proc -> Ok proc
  | None ->
    if Domstore.mem node.store name then
      Verror.error Verror.Operation_invalid "domain %S is not running" name
    else Verror.error Verror.No_domain "no domain named %S" name

let domain_ref_of (node : node) name =
  Drvnode.domain_ref_of node name ~dom_id:(fun name ->
      Option.map Qemu_proc.pid (live_proc node name))

let define_xml (node : node) xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Hvm ] xml in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      Drvnode.emit node cfg.Vm_config.name Events.Ev_defined;
      domain_ref_of node cfg.Vm_config.name)

let undefine (node : node) name =
  Drvnode.with_write node (fun () ->
      match live_proc node name with
      | Some _ ->
        Verror.error Verror.Operation_invalid "cannot undefine running domain %S" name
      | None ->
        let* () = Domstore.undefine node.store name in
        Hashtbl.remove node.payload.procs name;
        Persist.Media.remove (save_path node name);
        Drvnode.emit node name Events.Ev_undefined;
        Ok ())

let qmp proc ~cmd = Qemu_proc.qmp proc ~cmd ()

let connect_nics (node : node) (cfg : Vm_config.t) =
  let rec attach attached = function
    | [] -> Ok attached
    | (n : Vm_config.nic) :: rest ->
      (match Net_backend.connect_iface node.net n.network with
       | Ok () -> attach (n :: attached) rest
       | Error e ->
         List.iter
           (fun (a : Vm_config.nic) -> Net_backend.disconnect_iface node.net a.network)
           attached;
         Error e)
  in
  attach [] cfg.nics |> Result.map (fun (_ : Vm_config.nic list) -> ())

let disconnect_nics (node : node) (cfg : Vm_config.t) =
  List.iter
    (fun (n : Vm_config.nic) -> Net_backend.disconnect_iface node.net n.network)
    cfg.nics

(* Spawn, negotiate QMP and leave the domain paused.  Shared by start and
   by the migration-destination prepare step.  Caller holds the write
   lock. *)
let spawn_paused (node : node) cfg =
  if live_proc node cfg.Vm_config.name <> None then
    Verror.error Verror.Operation_invalid "domain %S is already running"
      cfg.Vm_config.name
  else
    let* () = connect_nics node cfg in
    match Qemu_proc.spawn node.payload.host ~argv:(proc_argv cfg) cfg with
    | Error msg ->
      disconnect_nics node cfg;
      Error (Verror.make Verror.Resource_exhausted msg)
    | Ok proc ->
      (match qmp proc ~cmd:"qmp_capabilities" with
       | Error msg ->
         disconnect_nics node cfg;
         Error (Verror.make Verror.Operation_failed msg)
       | Ok _ ->
         Hashtbl.replace node.payload.procs cfg.Vm_config.name proc;
         Hashtbl.replace node.payload.balloon cfg.Vm_config.name
           cfg.Vm_config.memory_kib;
         (* The guest ships an (uninstalled) agent channel, like a
            virtio-serial port waiting for qemu-guest-agent. *)
         Hashtbl.replace node.payload.agents cfg.Vm_config.name
           (Hvsim.Guest_agent.create ~image:(Qemu_proc.image proc)
              ~state:(fun () -> Qemu_proc.state proc)
              ~request_shutdown:(fun () ->
                ignore (qmp proc ~cmd:"system_powerdown")));
         Ok proc)

(* A process that exited needs its node-side bookkeeping cleared.  Caller
   holds the write lock. *)
let reap (node : node) name =
  match require_config node name with
  | Error _ -> ()
  | Ok cfg ->
    Hashtbl.remove node.payload.procs name;
    Hashtbl.remove node.payload.balloon name;
    Hashtbl.remove node.payload.agents name;
    disconnect_nics node cfg

let dom_create (node : node) name =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      let* proc = spawn_paused node cfg in
      match qmp proc ~cmd:"cont" with
      | Error msg ->
        ignore (qmp proc ~cmd:"quit");
        reap node name;
        Error (Verror.make Verror.Operation_failed msg)
      | Ok _ ->
        Drvnode.emit node name Events.Ev_started;
        Ok ())

let monitor_op (node : node) name cmd event =
  Drvnode.with_write node (fun () ->
      let* proc = require_proc node name in
      match qmp proc ~cmd with
      | Error msg -> Error (Verror.make Verror.Operation_invalid msg)
      | Ok _ ->
        if not (Qemu_proc.is_alive proc) then reap node name;
        Drvnode.emit node name event;
        Ok ())

let dom_suspend node name = monitor_op node name "stop" Events.Ev_suspended
let dom_resume node name = monitor_op node name "cont" Events.Ev_resumed
let dom_shutdown node name = monitor_op node name "system_powerdown" Events.Ev_shutdown
let dom_destroy node name = monitor_op node name "quit" Events.Ev_stopped

(* Runs with the node read lock already held (callers: dom_get_info,
   dom_list_all) — must not re-enter a lock section. *)
let info_locked (node : node) name (cfg : Vm_config.t) =
  let current_memory =
    Option.value
      (Hashtbl.find_opt node.payload.balloon name)
      ~default:cfg.Vm_config.memory_kib
  in
  match live_proc node name with
  | Some proc ->
    Ok
      Driver.
        {
          di_state = Qemu_proc.state proc;
          di_max_mem_kib = cfg.Vm_config.memory_kib;
          di_memory_kib = current_memory;
          di_vcpus = cfg.Vm_config.vcpus;
          di_cpu_time_ns = Int64.of_int (Qemu_proc.pid proc * 1_000_000);
        }
  | None ->
    Ok
      Driver.
        {
          di_state = Vm_state.Shutoff;
          di_max_mem_kib = cfg.Vm_config.memory_kib;
          di_memory_kib = cfg.Vm_config.memory_kib;
          di_vcpus = cfg.Vm_config.vcpus;
          di_cpu_time_ns = 0L;
        }

let dom_get_info (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      info_locked node name cfg)

let dom_list_all (node : node) =
  Drvnode.list_all node
    ~dom_id:(fun name -> Option.map Qemu_proc.pid (live_proc node name))
    ~info:(info_locked node) ()

let dom_get_xml (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      Ok (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg))

let dom_set_memory (node : node) name kib =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if kib <= 0 then Verror.error Verror.Invalid_arg "memory must be positive"
      else if kib > cfg.Vm_config.memory_kib then
        Verror.error Verror.Invalid_arg "balloon target %d exceeds maximum %d" kib
          cfg.Vm_config.memory_kib
      else begin
        let* _proc = require_proc node name in
        Hashtbl.replace node.payload.balloon name kib;
        Ok ()
      end)

let list_domains (node : node) =
  Drvnode.with_read node (fun () ->
      Hashtbl.fold
        (fun name proc acc ->
          if Qemu_proc.is_alive proc then
            match domain_ref_of node name with Ok r -> r :: acc | Error _ -> acc
          else acc)
        node.payload.procs []
      |> List.sort (fun a b -> compare a.Driver.dom_name b.Driver.dom_name)
      |> Result.ok)

let list_defined (node : node) =
  Drvnode.list_defined node ~active:(fun name -> live_proc node name <> None)

let lookup_by_name (node : node) name =
  Drvnode.lookup_by_name node (domain_ref_of node) name

let lookup_by_uuid (node : node) uuid =
  Drvnode.lookup_by_uuid node (domain_ref_of node) uuid

(* ------------------------------------------------------------------ *)
(* Managed save                                                        *)
(* ------------------------------------------------------------------ *)

let dom_save (node : node) name =
  Drvnode.with_write node (fun () ->
      let* proc = require_proc node name in
      match Qemu_proc.state proc with
      | Vmm.Vm_state.Running | Vmm.Vm_state.Paused ->
        Persist.Media.write (save_path node name)
          (Vmm.Guest_image.snapshot (Qemu_proc.image proc));
        ignore (qmp proc ~cmd:"quit");
        reap node name;
        Drvnode.emit node name Events.Ev_stopped;
        Ok ()
      | other ->
        Verror.error Verror.Operation_invalid "cannot save domain in state %s"
          (Vm_state.state_name other))

let dom_restore (node : node) name =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      match Persist.Media.read (save_path node name) with
      | None ->
        Verror.error Verror.Operation_invalid "domain %S has no managed-save image"
          name
      | Some bytes ->
        let* proc = spawn_paused node cfg in
        Vmm.Guest_image.restore_from (Qemu_proc.image proc) bytes;
        (match qmp proc ~cmd:"cont" with
         | Error msg ->
           ignore (qmp proc ~cmd:"quit");
           reap node name;
           Error (Verror.make Verror.Operation_failed msg)
         | Ok _ ->
           Persist.Media.remove (save_path node name);
           Drvnode.emit node name Events.Ev_started;
           Ok ()))

let dom_has_managed_save (node : node) name =
  Drvnode.with_read node (fun () ->
      let* _cfg = require_config node name in
      Ok (Persist.Media.exists (save_path node name)))

(* ------------------------------------------------------------------ *)
(* Guest agent (intrusive baseline)                                    *)
(* ------------------------------------------------------------------ *)

let agent_endpoint (node : node) name =
  Drvnode.with_read node (fun () ->
      let* _cfg = require_config node name in
      match Hashtbl.find_opt node.payload.agents name with
      | Some ep when live_proc node name <> None -> Ok ep
      | Some _ | None ->
        Verror.error Verror.Operation_invalid
          "guest agent unreachable: domain %S is not running" name)

(* Exec runs outside the node lock: a guest-shutdown command re-enters
   the monitor path. *)
let guest_agent_install node name =
  let* ep = agent_endpoint node name in
  Result.map_error (Verror.make Verror.Operation_invalid)
    (Hvsim.Guest_agent.install ep)

let guest_agent_exec node name line =
  let* ep = agent_endpoint node name in
  Ok (Hvsim.Guest_agent.exec ep line)

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let migrate_begin (node : node) name =
  Drvnode.with_write node (fun () ->
      let* proc = require_proc node name in
      if Qemu_proc.state proc <> Vm_state.Running then
        Verror.error Verror.Operation_invalid "domain %S is not running" name
      else
        let* cfg = require_config node name in
        Ok
          Driver.
            {
              mig_config_xml = Vmm.Domxml.to_xml ~virt_type:"kvm" cfg;
              mig_image = Qemu_proc.image proc;
              mig_enter_stopcopy = (fun () -> dom_suspend node name);
              mig_confirm =
                (fun () ->
                  Drvnode.with_write node (fun () ->
                      ignore (qmp proc ~cmd:"quit");
                      reap node name;
                      Drvnode.emit node name Events.Ev_stopped;
                      Ok ()));
              mig_abort = (fun () -> ignore (dom_resume node name));
            })

let migrate_prepare (node : node) config_xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Hvm ] config_xml in
  let name = cfg.Vm_config.name in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      let* proc = spawn_paused node cfg in
      Ok
        Driver.
          {
            mig_dest_image = Qemu_proc.image proc;
            mig_finish =
              (fun () ->
                let* () = dom_resume node name in
                Drvnode.emit node name Events.Ev_started;
                Ok ());
            mig_cancel = (fun () -> ignore (dom_destroy node name));
          })

(* ------------------------------------------------------------------ *)
(* Restart recovery                                                    *)
(* ------------------------------------------------------------------ *)

(* Re-adopt a live emulator process: rebuild the manager-side
   bookkeeping — process handle, balloon default, agent channel, NIC
   accounting — without issuing a single monitor command that could
   disturb the guest.  (The balloon target and agent install state were
   manager-side knowledge; they reset to their post-boot defaults, the
   same information loss libvirt accepts when it reconnects.) *)
let adopt_proc (node : node) name (cfg : Vm_config.t) proc =
  Hashtbl.replace node.payload.procs name proc;
  Hashtbl.replace node.payload.balloon name cfg.Vm_config.memory_kib;
  Hashtbl.replace node.payload.agents name
    (Hvsim.Guest_agent.create ~image:(Qemu_proc.image proc)
       ~state:(fun () -> Qemu_proc.state proc)
       ~request_shutdown:(fun () -> ignore (qmp proc ~cmd:"system_powerdown")));
  ignore (connect_nics node cfg)

let recover (node : node) attach_info =
  let surviving = Qemu_proc.running_on node.node_name in
  ignore
    (Drvnode.reconcile node ~attach_info
       ~running:(fun () -> List.map fst surviving)
       ~adopt:(fun name cfg ->
         match List.assoc_opt name surviving with
         | Some proc -> adopt_proc node name cfg proc
         | None -> ())
       ~start:(dom_create node))

let nodes : payload Drvnode.registry =
  Drvnode.registry ~journal_dir:"/var/lib/ovirt/qemu" ~recover (fun ~node_name ->
      {
        host = Hvsim.Hostinfo.shared node_name;
        procs = Hashtbl.create 16;
        balloon = Hashtbl.create 16;
        agents = Hashtbl.create 16;
      })

let get_node name = Drvnode.get_node nodes name
let reset_nodes () = Drvnode.reset_nodes nodes

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let capabilities (node : node) =
  Drvnode.with_read node (fun () ->
      Capabilities.
        {
          driver_name = "qemu";
          virt_kind = "full-virt";
          stateful = true;
          guest_os_kinds = [ Vm_config.Hvm ];
          features =
            [
              Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
              Feat_destroy; Feat_migrate_live; Feat_managed_save; Feat_set_memory;
              Feat_console; Feat_networks; Feat_storage_pools;
            ];
          host = Drvutil.host_summary ~node_name:node.node_name node.payload.host;
        })

let open_node (node : node) =
  Driver.make_ops ~drv_name:"qemu"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~dom_save:(dom_save node) ~dom_restore:(dom_restore node)
    ~dom_has_managed_save:(dom_has_managed_save node)
    ~dom_set_autostart:(Drvnode.set_autostart node)
    ~dom_get_autostart:(Drvnode.get_autostart node)
    ~dom_list_all:(fun () -> dom_list_all node)
    ~migrate_begin:(migrate_begin node) ~migrate_prepare:(migrate_prepare node)
    ~guest_agent_install:(guest_agent_install node)
    ~guest_agent_exec:(guest_agent_exec node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events
    ~generation:(fun () -> Drvnode.generation node)
    ()

let register () =
  Drvnode.register ~name:"qemu" ~schemes:[ "qemu"; "kvm" ]
    ~open_conn:(fun uri -> Ok (open_node (get_node (Drvnode.node_of_uri uri))))
    ()
