module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image
module Uuid = Vmm.Uuid
open Ovirt_core

type active = {
  image : Guest_image.t;
  agent : Hvsim.Guest_agent.endpoint;
  mutable cpu_time_ns : int64;
}

(* Substrate state: everything beyond what every driver node carries. *)
type payload = {
  (* Simulated hypervisor response latency: a real backend blocks the
     calling worker while the hypervisor answers; benchmarks set this via
     the ?latency_us= URI parameter to study workerpool sizing and the
     driver lock (E5/E6/E14).  Incurred *inside* the lock section, like a
     held monitor connection. *)
  mutable op_latency_s : float;
  host : Hvsim.Hostinfo.t;
  (* name -> (state, active resources); Shutoff domains are not here *)
  actives : (string, Vm_state.state ref * active) Hashtbl.t;
}

type node = payload Drvnode.node

let ( let* ) = Result.bind

(* Hypervisor-side state that survives a manager crash: the machine and
   its running guests belong to the (mock) hypervisor, not to the
   manager.  One substrate per node name, process-global; payloads alias
   it, so a node rebuilt after `reset_nodes` finds its guests intact. *)
type substrate = {
  sub_host : Hvsim.Hostinfo.t;
  sub_actives : (string, Vm_state.state ref * active) Hashtbl.t;
}

let substrates : (string, substrate) Hashtbl.t = Hashtbl.create 4
let substrates_mutex = Mutex.create ()

let substrate node_name =
  Mutex.lock substrates_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock substrates_mutex)
    (fun () ->
      match Hashtbl.find_opt substrates node_name with
      | Some s -> s
      | None ->
        let s =
          {
            sub_host = Hvsim.Hostinfo.shared node_name;
            sub_actives = Hashtbl.create 16;
          }
        in
        Hashtbl.add substrates node_name s;
        s)

(* Managed-save images live on the durable medium, like the state files
   libvirt keeps under /var/lib/libvirt/qemu/save. *)
let save_path (node : node) name =
  "/var/lib/ovirt/test/save/" ^ node.node_name ^ "/" ^ name ^ ".save"

(* A guest-shutdown agent command re-enters the driver's shutdown path;
   the hook is bound after [dom_shutdown] is defined.  It routes by node
   *name* so an agent created before a manager crash reaches the current
   node, not the pre-crash one it was created under. *)
let shutdown_hook : (string -> string -> unit) ref = ref (fun _ _ -> ())

(* Allocate the running-domain resources: memory image plus the guest's
   agent channel. *)
let add_active (node : node) name state (cfg : Vm_config.t) =
  let node_name = node.node_name in
  let image = Guest_image.create ~memory_kib:cfg.Vm_config.memory_kib in
  let active =
    {
      image;
      agent =
        Hvsim.Guest_agent.create ~image
          ~state:(fun () -> !state)
          ~request_shutdown:(fun () -> !shutdown_hook node_name name);
      cpu_time_ns = 0L;
    }
  in
  Hashtbl.replace node.payload.actives name (state, active)

(* The conventional pre-existing running domain of test:///default.
   Idempotent: after a crash the journal replays ["test"] and the
   substrate still runs it, so there is nothing to do. *)
let seed_default_domain (node : node) =
  if
    (not (Domstore.mem node.store "test"))
    && not (Hashtbl.mem node.payload.actives "test")
  then begin
    let cfg = Vm_config.make ~memory_kib:(8 * 1024) "test" in
    (match Domstore.define node.store cfg with Ok () -> () | Error _ -> assert false);
    (match
       Hvsim.Hostinfo.reserve node.payload.host
         ~memory_kib:cfg.Vm_config.memory_kib ~vcpus:1
     with
     | Ok () -> ()
     | Error _ -> assert false);
    add_active node "test" (ref Vm_state.Running) cfg;
    Domstore.note_started node.store "test"
  end

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let hypervisor_wait (node : node) =
  if node.payload.op_latency_s > 0.0 then Thread.delay node.payload.op_latency_s

let capabilities (node : node) =
  Drvnode.with_read node (fun () ->
      let info = Hvsim.Hostinfo.node_info node.payload.host in
      Capabilities.
        {
          driver_name = "test";
          virt_kind = "mock";
          stateful = true;
          guest_os_kinds =
            [ Vm_config.Hvm; Vm_config.Paravirt; Vm_config.Container_exe ];
          features =
            [
              Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
              Feat_destroy; Feat_migrate_live; Feat_managed_save; Feat_set_memory;
              Feat_console; Feat_networks; Feat_storage_pools;
            ];
          host =
            {
              host_name = node.node_name;
              host_memory_kib = info.Hvsim.Hostinfo.memory_kib;
              host_cpus = info.Hvsim.Hostinfo.cpus;
              host_mhz = info.Hvsim.Hostinfo.mhz;
              host_arch = info.Hvsim.Hostinfo.model;
            };
        })

let require_config (node : node) name = Drvnode.require_config node name

let domain_ref_of (node : node) name =
  Drvnode.domain_ref_of node name ~dom_id:(fun name ->
      if Hashtbl.mem node.payload.actives name then
        Some (Hashtbl.hash name land 0xffff)
      else None)

let define_xml (node : node) xml =
  let* cfg, _virt_type =
    Result.map_error (Verror.make Verror.Invalid_arg) (Vmm.Domxml.of_xml xml)
  in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      Drvnode.emit node cfg.Vm_config.name Events.Ev_defined;
      domain_ref_of node cfg.Vm_config.name)

let undefine (node : node) name =
  Drvnode.with_write node (fun () ->
      if Hashtbl.mem node.payload.actives name then
        Verror.error Verror.Operation_invalid "cannot undefine active domain %S" name
      else
        let* () = Domstore.undefine node.store name in
        Persist.Media.remove (save_path node name);
        Drvnode.emit node name Events.Ev_undefined;
        Ok ())

let dom_create (node : node) name =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if Hashtbl.mem node.payload.actives name then
        Verror.error Verror.Operation_invalid "domain %S is already running" name
      else
        let* () =
          Result.map_error
            (Verror.make Verror.Resource_exhausted)
            (Hvsim.Hostinfo.reserve node.payload.host
               ~memory_kib:cfg.Vm_config.memory_kib ~vcpus:cfg.Vm_config.vcpus)
        in
        add_active node name (ref Vm_state.Running) cfg;
        Drvnode.emit node name Events.Ev_started;
        Ok ())

let require_active (node : node) name =
  match Hashtbl.find_opt node.payload.actives name with
  | Some entry -> Ok entry
  | None ->
    if Domstore.mem node.store name then
      Verror.error Verror.Operation_invalid "domain %S is not running" name
    else Verror.error Verror.No_domain "no domain named %S" name

let stop_active (node : node) name =
  let* cfg = require_config node name in
  Hashtbl.remove node.payload.actives name;
  Hvsim.Hostinfo.release node.payload.host ~memory_kib:cfg.Vm_config.memory_kib
    ~vcpus:cfg.Vm_config.vcpus;
  Ok ()

let transition_active (node : node) name event success_event =
  Drvnode.with_write node (fun () ->
      (* Lifecycle transitions block on the "hypervisor" like the reads
         do — and being normal-priority on the wire, they are the ops
         that exercise the daemon's admission control under load. *)
      hypervisor_wait node;
      let* state, active = require_active node name in
      let* next =
        Result.map_error (Verror.make Verror.Operation_invalid)
          (Vm_state.transition !state event)
      in
      state := next;
      active.cpu_time_ns <- Int64.add active.cpu_time_ns 500_000L;
      let* () =
        if Vm_state.is_active next then Ok () else stop_active node name
      in
      Drvnode.emit node name success_event;
      Ok ())

let dom_suspend node name =
  transition_active node name Vm_state.Ev_suspend Events.Ev_suspended

let dom_resume node name = transition_active node name Vm_state.Ev_resume Events.Ev_resumed

let dom_shutdown (node : node) name =
  Drvnode.with_write node (fun () ->
      let* state, _ = require_active node name in
      let* s1 =
        Result.map_error (Verror.make Verror.Operation_invalid)
          (Vm_state.transition !state Vm_state.Ev_shutdown_request)
      in
      let* s2 =
        Result.map_error (Verror.make Verror.Operation_invalid)
          (Vm_state.transition s1 Vm_state.Ev_shutdown_complete)
      in
      state := s2;
      let* () = stop_active node name in
      Drvnode.emit node name Events.Ev_shutdown;
      Ok ())

let dom_destroy node name =
  transition_active node name Vm_state.Ev_destroy Events.Ev_stopped

(* Restart recovery: reconcile the replayed store against the guests
   still running on the substrate.  The payload aliases the surviving
   tables, so adoption needs no manager-side rebuilding. *)
let recover (node : node) attach_info =
  ignore
    (Drvnode.reconcile node ~attach_info
       ~running:(fun () ->
         Hashtbl.fold (fun name _ acc -> name :: acc) node.payload.actives []
         |> List.sort compare)
       ~adopt:(fun _name _cfg -> ())
       ~start:(dom_create node))

let nodes : payload Drvnode.registry =
  Drvnode.registry ~init:seed_default_domain ~journal_dir:"/var/lib/ovirt/test"
    ~recover (fun ~node_name ->
      let sub = substrate node_name in
      { op_latency_s = 0.0; host = sub.sub_host; actives = sub.sub_actives })

let get_node name = Drvnode.get_node nodes name
let reset_nodes () = Drvnode.reset_nodes nodes

let () =
  shutdown_hook :=
    fun node_name name -> ignore (dom_shutdown (get_node node_name) name)

(* Managed save: checkpoint the live memory, stop the domain, keep the
   bytes driver-side; restore is the exact inverse. *)
let dom_save (node : node) name =
  Drvnode.with_write node (fun () ->
      let* state, active = require_active node name in
      match !state with
      | Vm_state.Running | Vm_state.Paused ->
        Persist.Media.write (save_path node name) (Guest_image.snapshot active.image);
        let* () = stop_active node name in
        Drvnode.emit node name Events.Ev_stopped;
        Ok ()
      | other ->
        Verror.error Verror.Operation_invalid "cannot save domain in state %s"
          (Vm_state.state_name other))

let dom_restore (node : node) name =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if Hashtbl.mem node.payload.actives name then
        Verror.error Verror.Operation_invalid "domain %S is already running" name
      else
        match Persist.Media.read (save_path node name) with
        | None ->
          Verror.error Verror.Operation_invalid "domain %S has no managed-save image"
            name
        | Some bytes ->
          let* () =
            Result.map_error
              (Verror.make Verror.Resource_exhausted)
              (Hvsim.Hostinfo.reserve node.payload.host
                 ~memory_kib:cfg.Vm_config.memory_kib ~vcpus:cfg.Vm_config.vcpus)
          in
          add_active node name (ref Vm_state.Running) cfg;
          (match Hashtbl.find_opt node.payload.actives name with
           | Some (_, active) -> Guest_image.restore_from active.image bytes
           | None -> assert false);
          Persist.Media.remove (save_path node name);
          Drvnode.emit node name Events.Ev_started;
          Ok ())

let dom_has_managed_save (node : node) name =
  Drvnode.with_read node (fun () ->
      let* _cfg = require_config node name in
      Ok (Persist.Media.exists (save_path node name)))

(* Guest agent (intrusive baseline): endpoint fetched under the lock,
   executed outside it so guest-shutdown can re-enter the driver. *)
let agent_endpoint (node : node) name =
  Drvnode.with_read node (fun () ->
      let* _state, active = require_active node name in
      Ok active.agent)

let guest_agent_install node name =
  let* ep = agent_endpoint node name in
  Result.map_error (Verror.make Verror.Operation_invalid)
    (Hvsim.Guest_agent.install ep)

let guest_agent_exec node name line =
  let* ep = agent_endpoint node name in
  Ok (Hvsim.Guest_agent.exec ep line)

(* Runs with the node read lock already held (callers: dom_get_info,
   dom_list_all) — must not re-enter a lock section. *)
let info_locked (node : node) name (cfg : Vm_config.t) =
  match Hashtbl.find_opt node.payload.actives name with
  | Some (state, active) ->
    Ok
      Driver.
        {
          di_state = !state;
          di_max_mem_kib = cfg.Vm_config.memory_kib;
          di_memory_kib = cfg.Vm_config.memory_kib;
          di_vcpus = cfg.Vm_config.vcpus;
          di_cpu_time_ns = active.cpu_time_ns;
        }
  | None ->
    Ok
      Driver.
        {
          di_state = Vm_state.Shutoff;
          di_max_mem_kib = cfg.Vm_config.memory_kib;
          di_memory_kib = cfg.Vm_config.memory_kib;
          di_vcpus = cfg.Vm_config.vcpus;
          di_cpu_time_ns = 0L;
        }

let dom_get_info (node : node) name =
  Drvnode.with_read node (fun () ->
      hypervisor_wait node;
      let* cfg = require_config node name in
      info_locked node name cfg)

(* One lock section, one simulated hypervisor wait for the whole fleet:
   the native bulk listing the remote protocol's Proc_dom_list_all rides
   on (per-op inventory pays one wait per domain instead). *)
let dom_list_all (node : node) =
  Drvnode.list_all node
    ~prepare:(fun () -> hypervisor_wait node)
    ~dom_id:(fun name ->
      if Hashtbl.mem node.payload.actives name then
        Some (Hashtbl.hash name land 0xffff)
      else None)
    ~info:(info_locked node) ()

let dom_get_xml (node : node) name =
  Drvnode.with_read node (fun () ->
      hypervisor_wait node;
      let* cfg = require_config node name in
      Ok (Vmm.Domxml.to_xml ~virt_type:"test" cfg))

let dom_set_memory (node : node) name kib =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if kib <= 0 then Verror.error Verror.Invalid_arg "memory must be positive"
      else if kib > cfg.Vm_config.memory_kib then
        Verror.error Verror.Invalid_arg
          "balloon target %d exceeds maximum memory %d" kib cfg.Vm_config.memory_kib
      else Ok ())

let list_domains (node : node) =
  Drvnode.with_read node (fun () ->
      Hashtbl.fold
        (fun name _ acc ->
          match domain_ref_of node name with Ok r -> r :: acc | Error _ -> acc)
        node.payload.actives []
      |> List.sort (fun a b -> compare a.Driver.dom_name b.Driver.dom_name)
      |> Result.ok)

let list_defined (node : node) =
  Drvnode.list_defined node ~active:(Hashtbl.mem node.payload.actives)

let lookup_by_name (node : node) name =
  Drvnode.lookup_by_name node (domain_ref_of node) name

let lookup_by_uuid (node : node) uuid =
  Drvnode.lookup_by_uuid node (domain_ref_of node) uuid

(* Migration hooks: the generic precopy loop in [Domain.migrate] drives
   these.  The source keeps running until stop-copy. *)
let migrate_begin (node : node) name =
  Drvnode.with_write node (fun () ->
      let* state, active = require_active node name in
      if !state <> Vm_state.Running then
        Verror.error Verror.Operation_invalid "domain %S is not running" name
      else
        let* cfg = require_config node name in
        Ok
          Driver.
            {
              mig_config_xml = Vmm.Domxml.to_xml ~virt_type:"test" cfg;
              mig_image = active.image;
              mig_enter_stopcopy = (fun () -> dom_suspend node name);
              mig_confirm =
                (fun () ->
                  Drvnode.with_write node (fun () ->
                      let* () = stop_active node name in
                      Drvnode.emit node name Events.Ev_stopped;
                      Ok ()));
              mig_abort = (fun () -> ignore (dom_resume node name));
            })

let migrate_prepare (node : node) config_xml =
  let* cfg, _ =
    Result.map_error (Verror.make Verror.Invalid_arg) (Vmm.Domxml.of_xml config_xml)
  in
  let name = cfg.Vm_config.name in
  (* Start paused: create resources but hold in Paused until finish. *)
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      if Hashtbl.mem node.payload.actives name then
        Verror.error Verror.Operation_invalid
          "domain %S is already active on destination" name
      else
        let* () =
          Result.map_error
            (Verror.make Verror.Resource_exhausted)
            (Hvsim.Hostinfo.reserve node.payload.host
               ~memory_kib:cfg.Vm_config.memory_kib ~vcpus:cfg.Vm_config.vcpus)
        in
        let state = ref Vm_state.Paused in
        add_active node name state cfg;
        let image =
          match Hashtbl.find_opt node.payload.actives name with
          | Some (_, active) -> active.image
          | None -> assert false
        in
        Ok
          Driver.
            {
              mig_dest_image = image;
              mig_finish =
                (fun () ->
                  let* () = dom_resume node name in
                  Drvnode.emit node name Events.Ev_started;
                  Ok ());
              mig_cancel = (fun () -> ignore (dom_destroy node name));
            })

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let open_node (node : node) =
  Driver.make_ops ~drv_name:"test"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~dom_save:(dom_save node) ~dom_restore:(dom_restore node)
    ~dom_has_managed_save:(dom_has_managed_save node)
    ~dom_set_autostart:(Drvnode.set_autostart node)
    ~dom_get_autostart:(Drvnode.get_autostart node)
    ~dom_list_all:(fun () -> dom_list_all node)
    ~migrate_begin:(migrate_begin node) ~migrate_prepare:(migrate_prepare node)
    ~guest_agent_install:(guest_agent_install node)
    ~guest_agent_exec:(guest_agent_exec node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events
    ~generation:(fun () -> Drvnode.generation node)
    ()

let node_of_uri uri =
  match uri.Vuri.host with
  | Some host -> host
  | None -> (
    match uri.Vuri.path with
    | "/" | "/default" | "" -> "default"
    | path -> String.sub path 1 (String.length path - 1))

let register () =
  Drvnode.register ~name:"test"
    ~open_conn:(fun uri ->
      let node = get_node (node_of_uri uri) in
      (match Vuri.param uri "latency_us" with
       | Some us ->
         (match int_of_string_opt us with
          | Some us when us >= 0 ->
            node.payload.op_latency_s <- float_of_int us /. 1_000_000.0
          | Some _ | None -> ())
       | None -> ());
      (* ?coarse=1 demotes the node's rwlock to a plain mutex: the E14
         baseline, selectable per node from the URI. *)
      (match Vuri.param uri "coarse" with
       | Some ("1" | "true") -> Ovsync.Rwlock.set_exclusive node.lock true
       | Some _ | None -> ());
      Ok (open_node node))
    ()
