module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Xen_hv = Hvsim.Xen_hv
open Ovirt_core

(* Substrate state: the booted hypervisor handle is all the driver keeps
   — domain state lives hypervisor-side, reached via domctl hypercalls. *)
type payload = { hv : Xen_hv.t }
type node = payload Drvnode.node

let ( let* ) = Result.bind
let hv (node : node) = node.payload.hv
let op_invalid r = Result.map_error (Verror.make Verror.Operation_invalid) r
let active_domid (node : node) name = Xen_hv.lookup_by_name (hv node) name

(* Custom: Domain-0 exists hypervisor-side but never in the store, and
   gets its own error. *)
let require_config (node : node) name =
  match Domstore.get node.store name with
  | Some cfg -> Ok cfg
  | None ->
    if name = "Domain-0" then
      Verror.error Verror.Operation_invalid "Domain-0 cannot be managed"
    else Verror.error Verror.No_domain "no domain named %S" name

let require_domid (node : node) name =
  match active_domid node name with
  | Some id -> Ok id
  | None ->
    if Domstore.mem node.store name then
      Verror.error Verror.Operation_invalid "domain %S is not running" name
    else Verror.error Verror.No_domain "no domain named %S" name

let domain_ref_of (node : node) name =
  let* cfg = require_config node name in
  Ok
    Driver.
      { dom_name = name; dom_uuid = cfg.Vm_config.uuid; dom_id = active_domid node name }

let define_xml (node : node) xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Paravirt; Vm_config.Hvm ] xml in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      Drvnode.emit node cfg.Vm_config.name Events.Ev_defined;
      domain_ref_of node cfg.Vm_config.name)

let undefine (node : node) name =
  Drvnode.with_write node (fun () ->
      if active_domid node name <> None then
        Verror.error Verror.Operation_invalid "cannot undefine running domain %S" name
      else
        let* () = Domstore.undefine node.store name in
        Drvnode.emit node name Events.Ev_undefined;
        Ok ())

let dom_create (node : node) name =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if active_domid node name <> None then
        Verror.error Verror.Operation_invalid "domain %S is already running" name
      else
        let* id =
          Result.map_error (Verror.make Verror.Resource_exhausted)
            (Xen_hv.domctl_create (hv node) cfg)
        in
        let* () = op_invalid (Xen_hv.domctl_unpause (hv node) id) in
        Drvnode.emit node name Events.Ev_started;
        Ok ())

let hypercall_op (node : node) name call event =
  Drvnode.with_write node (fun () ->
      let* id = require_domid node name in
      let* () = op_invalid (call (hv node) id) in
      Drvnode.emit node name event;
      Ok ())

let dom_suspend node name =
  hypercall_op node name Xen_hv.domctl_pause Events.Ev_suspended

let dom_resume node name =
  hypercall_op node name Xen_hv.domctl_unpause Events.Ev_resumed

let dom_shutdown node name =
  hypercall_op node name Xen_hv.domctl_shutdown Events.Ev_shutdown

let dom_destroy node name =
  hypercall_op node name Xen_hv.domctl_destroy Events.Ev_stopped

(* Restart recovery.  The hypervisor outlives the toolstack
   ({!Xen_hv.attach}), so running domains are simply still there — the
   driver keeps no per-domain state, and adoption is pure
   reconciliation: diff the replayed store against the hypervisor's
   domain table (Domain-0 excluded — it is never store-managed). *)
let running_names (node : node) =
  Xen_hv.list_domains (hv node)
  |> List.filter (fun id -> id <> 0)
  |> List.filter_map (fun id ->
         Hvsim.Xenstore.read_opt (Xen_hv.store (hv node))
           (Printf.sprintf "/local/domain/%d/name" id))

let recover (node : node) attach_info =
  ignore
    (Drvnode.reconcile node ~attach_info
       ~running:(fun () -> running_names node)
       ~adopt:(fun _name _cfg -> ())
       ~start:(dom_create node))

let nodes : payload Drvnode.registry =
  Drvnode.registry ~journal_dir:"/var/lib/ovirt/xen" ~recover
    (fun ~node_name -> { hv = Xen_hv.attach node_name })

let get_node name = Drvnode.get_node nodes name
let reset_nodes () = Drvnode.reset_nodes nodes

let dom_get_info (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      match active_domid node name with
      | Some id ->
        let* info = op_invalid (Xen_hv.domain_info (hv node) id) in
        Ok
          Driver.
            {
              di_state = info.Xen_hv.dom_state;
              di_max_mem_kib = cfg.Vm_config.memory_kib;
              di_memory_kib = info.Xen_hv.memory_kib;
              di_vcpus = info.Xen_hv.vcpus;
              di_cpu_time_ns = info.Xen_hv.cpu_time_ns;
            }
      | None ->
        Ok
          Driver.
            {
              di_state = Vm_state.Shutoff;
              di_max_mem_kib = cfg.Vm_config.memory_kib;
              di_memory_kib = cfg.Vm_config.memory_kib;
              di_vcpus = cfg.Vm_config.vcpus;
              di_cpu_time_ns = 0L;
            })

let dom_get_xml (node : node) name =
  Drvnode.with_read node (fun () ->
      let* cfg = require_config node name in
      Ok (Vmm.Domxml.to_xml ~virt_type:"xen" cfg))

let dom_set_memory (node : node) name kib =
  Drvnode.with_write node (fun () ->
      let* cfg = require_config node name in
      if kib <= 0 || kib > cfg.Vm_config.memory_kib then
        Verror.error Verror.Invalid_arg "balloon target %d out of range (max %d)" kib
          cfg.Vm_config.memory_kib
      else
        let* id = require_domid node name in
        (* Balloon by updating the xenstore memory target, as xend did. *)
        Hvsim.Xenstore.write (Xen_hv.store (hv node))
          (Printf.sprintf "/local/domain/%d/memory/target" id)
          (string_of_int kib);
        Ok ())

(* Active listing reflects the hypervisor's view, Domain-0 included. *)
let list_domains (node : node) =
  Drvnode.with_read node (fun () ->
      Xen_hv.list_domains (hv node)
      |> List.filter_map (fun id ->
             match Xen_hv.domain_info (hv node) id with
             | Error _ -> None
             | Ok info ->
               let name =
                 match
                   Hvsim.Xenstore.read_opt (Xen_hv.store (hv node))
                     (Printf.sprintf "/local/domain/%d/name" id)
                 with
                 | Some name -> name
                 | None -> Printf.sprintf "domain-%d" id
               in
               Some
                 Driver.
                   { dom_name = name; dom_uuid = info.Xen_hv.dom_uuid; dom_id = Some id })
      |> Result.ok)

let list_defined (node : node) =
  Drvnode.list_defined node ~active:(fun name -> active_domid node name <> None)

let lookup_by_name (node : node) name =
  Drvnode.with_read node (fun () ->
      if name = "Domain-0" then
        match Xen_hv.domain_info (hv node) 0 with
        | Ok info ->
          Ok Driver.{ dom_name = name; dom_uuid = info.Xen_hv.dom_uuid; dom_id = Some 0 }
        | Error msg -> Error (Verror.make Verror.Internal_error msg)
      else domain_ref_of node name)

(* Custom: undefined-but-running domains (transient, Domain-0) resolve
   through the hypervisor when the store misses. *)
let lookup_by_uuid (node : node) uuid =
  Drvnode.with_read node (fun () ->
      match Domstore.by_uuid node.store uuid with
      | Some cfg -> domain_ref_of node cfg.Vm_config.name
      | None -> (
        match Xen_hv.lookup_by_uuid (hv node) uuid with
        | Some id -> (
          match
            Hvsim.Xenstore.read_opt (Xen_hv.store (hv node))
              (Printf.sprintf "/local/domain/%d/name" id)
          with
          | Some name ->
            Ok Driver.{ dom_name = name; dom_uuid = uuid; dom_id = Some id }
          | None ->
            Verror.error Verror.No_domain "domain %d lost its store entry" id)
        | None ->
          Verror.error Verror.No_domain "no domain with UUID %s"
            (Vmm.Uuid.to_string uuid)))

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let migrate_begin (node : node) name =
  Drvnode.with_write node (fun () ->
      let* id = require_domid node name in
      let* cfg = require_config node name in
      let* image =
        Result.map_error (Verror.make Verror.Operation_failed)
          (Xen_hv.guest_image (hv node) id)
      in
      Ok
        Driver.
          {
            mig_config_xml = Vmm.Domxml.to_xml ~virt_type:"xen" cfg;
            mig_image = image;
            mig_enter_stopcopy = (fun () -> dom_suspend node name);
            mig_confirm =
              (fun () ->
                Drvnode.with_write node (fun () ->
                    let* () = op_invalid (Xen_hv.domctl_destroy (hv node) id) in
                    Drvnode.emit node name Events.Ev_stopped;
                    Ok ()));
            mig_abort = (fun () -> ignore (dom_resume node name));
          })

let migrate_prepare (node : node) config_xml =
  let* cfg =
    Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Paravirt; Vm_config.Hvm ]
      config_xml
  in
  let name = cfg.Vm_config.name in
  Drvnode.with_write node (fun () ->
      let* () = Domstore.define node.store cfg in
      if active_domid node name <> None then
        Verror.error Verror.Operation_invalid
          "domain %S is already active on destination" name
      else
        let* id =
          Result.map_error (Verror.make Verror.Resource_exhausted)
            (Xen_hv.domctl_create (hv node) cfg)
        in
        let* image =
          Result.map_error (Verror.make Verror.Operation_failed)
            (Xen_hv.guest_image (hv node) id)
        in
        Ok
          Driver.
            {
              mig_dest_image = image;
              mig_finish =
                (fun () ->
                  let* () = dom_resume node name in
                  Drvnode.emit node name Events.Ev_started;
                  Ok ());
              mig_cancel =
                (fun () ->
                  ignore
                    (Drvnode.with_write node (fun () ->
                         Xen_hv.domctl_destroy (hv node) id)));
            })

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let capabilities (node : node) =
  Drvnode.with_read node (fun () ->
      Capabilities.
        {
          driver_name = "xen";
          virt_kind = "paravirt";
          stateful = true;
          guest_os_kinds = [ Vm_config.Paravirt; Vm_config.Hvm ];
          features =
            [
              Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
              Feat_destroy; Feat_migrate_live; Feat_set_memory; Feat_console;
              Feat_networks; Feat_storage_pools;
            ];
          host =
            Drvutil.host_summary ~node_name:node.node_name (Xen_hv.host (hv node));
        })

let open_node (node : node) =
  Driver.make_ops ~drv_name:"xen"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~dom_set_autostart:(Drvnode.set_autostart node)
    ~dom_get_autostart:(Drvnode.get_autostart node)
    ~migrate_begin:(migrate_begin node) ~migrate_prepare:(migrate_prepare node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events
    ~generation:(fun () -> Drvnode.generation node)
    ()

let register () =
  Drvnode.register ~name:"xen"
    ~open_conn:(fun uri -> Ok (open_node (get_node (Drvnode.node_of_uri uri))))
    ()
