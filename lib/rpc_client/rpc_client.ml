module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Rpc_packet = Ovrpc.Rpc_packet
module Verror = Ovirt_core.Verror
module Ka = Protocol.Keepalive_protocol

type slot = {
  slot_mutex : Mutex.t;
  slot_cond : Condition.t;
  mutable outcome : (string, Verror.t) result option;
}

(* Deadline heap: array-backed binary min-heap ordered by expiry time.
   One per client, owned by the shared timer thread; entries whose serial
   is no longer pending are skipped on expiry (lazy deletion), so a reply
   arriving before the deadline costs nothing extra. *)
module Heap = struct
  type entry = { at : float; serial : int; procedure : int; timeout : float }
  type t = { mutable a : entry array; mutable n : int }

  let dummy = { at = 0.; serial = 0; procedure = 0; timeout = 0. }
  let create () = { a = Array.make 8 dummy; n = 0 }

  let push h e =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- e;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      if h.a.(p).at > h.a.(!i).at then begin
        let t = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- t;
        i := p;
        true
      end
      else false
    do
      ()
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    h.a.(h.n) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && h.a.(l).at < h.a.(!smallest).at then smallest := l;
      if r < h.n && h.a.(r).at < h.a.(!smallest).at then smallest := r;
      if !smallest <> !i then begin
        let t = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- t;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type keepalive = { ka_interval : float; ka_count : int }

let default_keepalive =
  { ka_interval = Ka.default_interval_s; ka_count = Ka.default_count }

type t = {
  conn : Transport.t;
  program : int;
  version : int;
  on_event : procedure:int -> string -> unit;
  mutex : Mutex.t;
  pending : (int, slot) Hashtbl.t;
  deadlines : Heap.t; (* guarded by [mutex] *)
  keepalive : keepalive option;
  timer_cv : Condition.t;
      (* wakes the timer thread when its earliest event moves: a new
         front-of-heap deadline armed, or the client closed *)
  mutable next_serial : int;
  mutable free_slots : slot list; (* guarded by [mutex] *)
  mutable closed : bool;
  mutable last_rx : float; (* any packet counts as liveness *)
  mutable last_ping : float;
  mutable on_raw_reply : (string -> unit) option;
      (* test observer: every framed reply packet, exactly as received *)
}

(* A future: one in-flight call.  [await] blocks on the slot, caches the
   outcome (so awaiting twice is harmless) and recycles the slot. *)
type future = { fut_client : t; fut_slot : slot; mutable fut_result : (string, Verror.t) result option }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let deliver slot outcome =
  with_lock slot.slot_mutex (fun () ->
      slot.outcome <- Some outcome;
      Condition.broadcast slot.slot_cond)

(* Slot pool: a slot is a Mutex+Condition pair, allocated per call before
   this existed.  Pipelined fan-out makes that allocation hot, so consumed
   slots are recycled instead.  A slot is only ever released by the single
   consumer that removed it from circulation (await / failed send), never
   while it can still be delivered to. *)
let max_pooled_slots = 64

let alloc_slot_locked client =
  match client.free_slots with
  | slot :: rest ->
    client.free_slots <- rest;
    slot
  | [] ->
    { slot_mutex = Mutex.create (); slot_cond = Condition.create (); outcome = None }

let release_slot client slot =
  slot.outcome <- None;
  with_lock client.mutex (fun () ->
      if List.length client.free_slots < max_pooled_slots then
        client.free_slots <- slot :: client.free_slots)

(* Idempotent: the first closer (local close, receiver failure, keepalive
   death) delivers the error to every pending call and marks the client
   closed; later closers find nothing to do.  All under [client.mutex], so
   the close path cannot race a concurrent [call] registering a slot. *)
let fail_all_pending client err =
  let slots =
    with_lock client.mutex (fun () ->
        if client.closed then []
        else begin
          client.closed <- true;
          Condition.broadcast client.timer_cv;
          let slots =
            Hashtbl.fold (fun _ slot acc -> slot :: acc) client.pending []
          in
          Hashtbl.reset client.pending;
          slots
        end)
  in
  List.iter (fun slot -> deliver slot (Error err)) slots

let receiver_loop client =
  let rec loop () =
    match Transport.recv client.conn with
    | exception Transport.Closed ->
      fail_all_pending client (Verror.make Verror.Rpc_failure "connection closed")
    | exception Transport.Corrupt msg ->
      (* A corrupt frame poisons the stream: close the transport so the
         peer reaps its side, then fail every caller. *)
      Transport.close client.conn;
      fail_all_pending client
        (Verror.make Verror.Rpc_failure ("corrupt frame: " ^ msg))
    | wire ->
      client.last_rx <- Unix.gettimeofday ();
      (match Rpc_packet.decode wire with
       | exception Rpc_packet.Bad_packet msg ->
         Transport.close client.conn;
         fail_all_pending client
           (Verror.make Verror.Rpc_failure ("bad packet from server: " ^ msg))
       | header, body ->
         (match header.Rpc_packet.msg_type with
          | Rpc_packet.Event ->
            (try client.on_event ~procedure:header.Rpc_packet.procedure body
             with _ -> ());
            loop ()
          | Rpc_packet.Reply ->
            (match client.on_raw_reply with
             | None -> ()
             | Some observe -> (try observe wire with _ -> ()));
            let slot =
              with_lock client.mutex (fun () ->
                  let slot = Hashtbl.find_opt client.pending header.Rpc_packet.serial in
                  Hashtbl.remove client.pending header.Rpc_packet.serial;
                  slot)
            in
            (match slot with
             | None -> () (* timed-out call or keepalive pong: drop *)
             | Some slot ->
               let outcome =
                 match header.Rpc_packet.status with
                 | Rpc_packet.Status_ok -> Ok body
                 | Rpc_packet.Status_error ->
                   (match Protocol.Remote_protocol.dec_error body with
                    | err -> Error err
                    | exception Xdr.Error msg ->
                      Error
                        (Verror.make Verror.Rpc_failure
                           ("undecodable error reply: " ^ msg)))
               in
               deliver slot outcome);
            loop ()
          | Rpc_packet.Call ->
            (* Servers do not call clients; ignore and carry on. *)
            loop ()))
  in
  loop ()

let send_ping client =
  let serial =
    with_lock client.mutex (fun () ->
        let serial = client.next_serial in
        client.next_serial <- serial + 1;
        serial)
  in
  let header =
    Rpc_packet.call_header ~program:Ka.program ~version:Ka.version
      ~procedure:Ka.proc_ping ~serial
  in
  try Transport.send client.conn (Rpc_packet.encode header "") with
  | Transport.Closed -> ()

(* One timer thread per client replaces the per-call watchdog threads: it
   owns the deadline heap (call timeouts) and the keepalive ticker.  It
   sleeps ({!Ovsync.Timedwait.wait}) until the earliest armed event —
   front-of-heap deadline, keepalive death, next ping — and with no
   keepalive and no armed deadlines it blocks indefinitely until
   [call_async] or the close path signals [timer_cv]: zero wakeups on an
   idle connection. *)
let timer_loop client =
  let rec loop () =
    let todo =
      with_lock client.mutex (fun () ->
          let rec decide () =
            if client.closed then `Exit
            else begin
              let now = Unix.gettimeofday () in
              let heap_at =
                match Heap.peek client.deadlines with
                | Some e -> e.Heap.at
                | None -> infinity
              in
              let ka_death, ka_ping =
                match client.keepalive with
                | None -> (infinity, infinity)
                | Some ka ->
                  ( client.last_rx +. (ka.ka_interval *. float_of_int ka.ka_count),
                    Float.max client.last_rx client.last_ping +. ka.ka_interval )
              in
              let next = Float.min heap_at (Float.min ka_death ka_ping) in
              if next > now then begin
                Ovsync.Timedwait.wait client.mutex client.timer_cv ~until:next;
                decide ()
              end
              else begin
                let rec collect acc =
                  match Heap.peek client.deadlines with
                  | Some e when e.Heap.at <= now ->
                    let e = Heap.pop client.deadlines in
                    (match Hashtbl.find_opt client.pending e.Heap.serial with
                     | Some slot ->
                       Hashtbl.remove client.pending e.Heap.serial;
                       collect ((e, slot) :: acc)
                     | None -> collect acc (* reply won the race: stale entry *))
                  | _ -> acc
                in
                let expired = collect [] in
                let ka_action =
                  match client.keepalive with
                  | None -> `None
                  | Some ka ->
                    let silent = now -. client.last_rx in
                    if silent > ka.ka_interval *. float_of_int ka.ka_count then
                      `Die (silent, ka)
                    else if
                      silent >= ka.ka_interval
                      && now -. client.last_ping >= ka.ka_interval
                    then begin
                      client.last_ping <- now;
                      `Ping
                    end
                    else `None
                in
                `Work (expired, ka_action)
              end
            end
          in
          decide ())
    in
    (* Deliveries, pings and closes happen outside [client.mutex]. *)
    match todo with
    | `Exit -> ()
    | `Work (expired, ka_action) ->
      List.iter
        (fun ((e : Heap.entry), slot) ->
          deliver slot
            (Error
               (Verror.make Verror.Rpc_failure
                  (Printf.sprintf "call %d timed out after %.1fs" e.Heap.procedure
                     e.Heap.timeout))))
        expired;
      (match ka_action with
       | `None -> ()
       | `Ping -> send_ping client
       | `Die (silent, ka) ->
         (* Blame keepalive before closing the transport: closing first
            wakes the receiver, whose generic connection-closed error
            would race this one to the pending callers. *)
         fail_all_pending client
           (Verror.make Verror.Rpc_failure
              (Printf.sprintf
                 "keepalive: peer silent for %.2fs (interval %.2fs x %d)" silent
                 ka.ka_interval ka.ka_count));
         Transport.close client.conn);
      loop ()
  in
  loop ()

let connect ~address ~kind ~program ~version ?identity ?faults ?keepalive
    ?(on_event = fun ~procedure:_ _ -> ()) () =
  match Netsim.connect ?identity ?faults address kind with
  | exception Netsim.Connection_refused addr ->
    Verror.error Verror.Rpc_failure "connection refused at %S" addr
  | conn ->
    let now = Unix.gettimeofday () in
    let client =
      {
        conn;
        program;
        version;
        on_event;
        mutex = Mutex.create ();
        pending = Hashtbl.create 8;
        deadlines = Heap.create ();
        keepalive;
        timer_cv = Condition.create ();
        next_serial = 1;
        free_slots = [];
        closed = false;
        last_rx = now;
        last_ping = now;
        on_raw_reply = None;
      }
    in
    ignore (Thread.create (fun () -> receiver_loop client) ());
    ignore (Thread.create (fun () -> timer_loop client) ());
    Ok client

let set_raw_reply_hook client hook = client.on_raw_reply <- hook

(* Issue a call without waiting: the returned future lets one thread keep
   as many calls in flight on the connection as it likes (pipelining) —
   the receiver thread demultiplexes replies by serial as before. *)
let call_async client ~procedure ?(body = "") ?timeout_s () =
  let slot_or_err =
    with_lock client.mutex (fun () ->
        if client.closed then
          Verror.error Verror.Rpc_failure "connection is closed"
        else begin
          let serial = client.next_serial in
          client.next_serial <- serial + 1;
          let slot = alloc_slot_locked client in
          Hashtbl.replace client.pending serial slot;
          (match timeout_s with
           | None -> ()
           | Some t ->
             let at = Unix.gettimeofday () +. t in
             let was_earliest =
               match Heap.peek client.deadlines with
               | None -> true
               | Some e -> at < e.Heap.at
             in
             Heap.push client.deadlines
               { Heap.at; serial; procedure; timeout = t };
             (* a new front-of-heap deadline shortens the timer thread's
                sleep: wake it to re-derive its next event *)
             if was_earliest then Condition.signal client.timer_cv);
          Ok (serial, slot)
        end)
  in
  match slot_or_err with
  | Error e -> Error e
  | Ok (serial, slot) ->
    let header =
      Rpc_packet.call_header ~program:client.program ~version:client.version
        ~procedure ~serial
    in
    (match Transport.send client.conn (Rpc_packet.encode header body) with
     | exception Transport.Closed ->
       (* Nothing was sent: if the slot is still pending nobody else can
          deliver to it, so reclaim it directly.  When a concurrent
          [fail_all_pending] already took it, that closer delivers and an
          eventual await would consume — but we never built a future, so
          leave the slot to the GC in that (already-fatal) case. *)
       let reclaimed =
         with_lock client.mutex (fun () ->
             let present = Hashtbl.mem client.pending serial in
             Hashtbl.remove client.pending serial;
             present)
       in
       if reclaimed then release_slot client slot;
       Verror.error Verror.Rpc_failure "connection is closed"
     | () -> Ok { fut_client = client; fut_slot = slot; fut_result = None })

let await fut =
  match fut.fut_result with
  | Some outcome -> outcome
  | None ->
    let slot = fut.fut_slot in
    (* The receiver always delivers — a reply, or a failure when the
       connection dies — and the shared timer thread delivers the timeout
       error for calls registered in the deadline heap. *)
    let outcome =
      with_lock slot.slot_mutex (fun () ->
          let rec wait () =
            match slot.outcome with
            | Some outcome -> outcome
            | None ->
              Condition.wait slot.slot_cond slot.slot_mutex;
              wait ()
          in
          wait ())
    in
    fut.fut_result <- Some outcome;
    release_slot fut.fut_client slot;
    outcome

let call client ~procedure ?body ?timeout_s () =
  match call_async client ~procedure ?body ?timeout_s () with
  | Error e -> Error e
  | Ok fut -> await fut

let close client =
  (* Same ordering as the keepalive death: deliver the precise error,
     then close (the receiver's generic one must not win the race). *)
  fail_all_pending client (Verror.make Verror.Rpc_failure "connection closed locally");
  Transport.close client.conn

let is_closed client = with_lock client.mutex (fun () -> client.closed)
let pending_calls client = with_lock client.mutex (fun () -> Hashtbl.length client.pending)
let bytes_tx client = Transport.bytes_tx client.conn
let bytes_rx client = Transport.bytes_rx client.conn
