(** Client-side RPC engine shared by the remote driver and the admin
    library.

    One receiver thread demultiplexes the connection: replies are matched
    to blocked callers by serial, event packets are handed to the
    [on_event] callback.  A second, shared timer thread owns a deadline
    heap for call timeouts — no thread is spawned per timed call — and
    doubles as the keepalive ticker.  Multiple threads may issue {!call}s
    concurrently; sends are serialized by the transport layer. *)

type t

type keepalive = { ka_interval : float; ka_count : int }
(** libvirt-style keepalive: when the connection has been silent for
    [ka_interval] seconds a PING is sent ({!Protocol.Keepalive_protocol});
    after [ka_interval × ka_count] seconds with no traffic at all the peer
    is declared dead, the transport closed and every pending call failed
    with [Rpc_failure]. *)

val default_keepalive : keepalive
(** 5s × 5, the libvirt defaults. *)

val connect :
  address:string ->
  kind:Ovnet.Transport.kind ->
  program:int ->
  version:int ->
  ?identity:Ovnet.Transport.unix_identity ->
  ?faults:Ovnet.Faults.plan ->
  ?keepalive:keepalive ->
  ?on_event:(procedure:int -> string -> unit) ->
  unit ->
  (t, Ovirt_core.Verror.t) result
(** Establish the transport and start the receiver and timer threads.
    [Connection_refused] surfaces as a [Rpc_failure] error.  [faults]
    attaches a client-side fault plan (tests/chaos only).  Without
    [keepalive] a silent dead peer is only noticed when the transport
    closes. *)

val call :
  t -> procedure:int -> ?body:string -> ?timeout_s:float -> unit ->
  (string, Ovirt_core.Verror.t) result
(** Send one call and block for its reply (no timeout unless given;
    the receiver fails all pending calls when the connection dies).
    [Status_error] replies come back as their decoded error; a dead
    connection, keepalive death or timeout is [Rpc_failure]. *)

val set_raw_reply_hook : t -> (string -> unit) option -> unit
(** Observe every framed reply packet exactly as it came off the wire
    (length prefix, header, body), before demultiplexing.  A testing
    seam: the reply-cache byte-equality harness records raw frames from
    cache-on and cache-off connections and asserts they differ only in
    the serial word.  Runs on the receiver thread; exceptions are
    swallowed.  [None] removes the hook. *)

type future
(** One in-flight call issued with {!call_async}. *)

val call_async :
  t -> procedure:int -> ?body:string -> ?timeout_s:float -> unit ->
  (future, Ovirt_core.Verror.t) result
(** Send one call without waiting: a single thread can pipeline many
    calls on the connection and collect the replies with {!await}.
    Only the send itself can fail here; everything the blocking {!call}
    reports arrives through {!await}.  Slots behind futures come from a
    per-client pool, so pipelined fan-out allocates no Mutex+Condition
    pairs in steady state. *)

val await : future -> (string, Ovirt_core.Verror.t) result
(** Block until the call completes.  Idempotent: the outcome is cached
    on the future.  {!call} ≡ {!call_async} + {!await}. *)

val close : t -> unit
(** Idempotent; fails all in-flight calls (exactly once, whoever closes
    first — local close, receiver failure or keepalive — wins). *)

val is_closed : t -> bool

val pending_calls : t -> int
(** In-flight calls awaiting a reply (observability/tests). *)

val bytes_tx : t -> int
val bytes_rx : t -> int
