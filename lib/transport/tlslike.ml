exception Auth_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Auth_failure s)) fmt

(* FNV-1a 64-bit, used both as the MAC core and the key-derivation hash.
   Toy-grade on purpose; see the interface comment. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_update h byte =
  Int64.mul (Int64.logxor h (Int64.of_int byte)) fnv_prime

let fnv1a_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := fnv1a_update !acc (Char.code c)) s;
  !acc

(* Like TLS proper, each direction keeps its own record counter: the
   sender numbers what it seals ([seq_tx]), the receiver checks what it
   opens ([seq_rx]).  A single shared counter only works when traffic is
   strict request-reply ping-pong; pipelined calls and server-pushed
   events interleave the directions arbitrarily. *)
type session = {
  mutable key : int64;
  mutable seq_tx : int64; (* next record sequence number to seal *)
  mutable seq_rx : int64; (* next record sequence number expected *)
}

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

type hello = { client_nonce : int64 }

let nonce_counter = Atomic.make 0x5eed_0001

let fresh_nonce () =
  (* Mix a process-wide counter with the clock; uniqueness is all that
     matters here, not unpredictability. *)
  let c = Atomic.fetch_and_add nonce_counter 1 in
  let t = Int64.bits_of_float (Unix.gettimeofday ()) in
  fnv1a_string (fnv1a_update t c) "nonce"

let int64_to_wire v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff))

let int64_of_wire s off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !acc

let magic = "OTLS"

let client_hello () =
  let n = fresh_nonce () in
  ({ client_nonce = n }, magic ^ int64_to_wire n)

let derive_key client_nonce server_nonce =
  fnv1a_string (fnv1a_update (Int64.logxor client_nonce server_nonce) 0x42) "master"

let parse_hello what wire =
  if String.length wire <> String.length magic + 8 then
    fail "%s: bad length %d" what (String.length wire);
  if String.sub wire 0 4 <> magic then fail "%s: bad magic" what;
  int64_of_wire wire 4

let server_accept client_wire =
  let client_nonce = parse_hello "client hello" client_wire in
  let server_nonce = fresh_nonce () in
  let key = derive_key client_nonce server_nonce in
  ({ key; seq_tx = 0L; seq_rx = 0L }, magic ^ int64_to_wire server_nonce)

let client_finish hello server_wire =
  let server_nonce = parse_hello "server reply" server_wire in
  { key = derive_key hello.client_nonce server_nonce; seq_tx = 0L; seq_rx = 0L }

let handshake_pair () =
  let hello, hello_wire = client_hello () in
  let server, reply_wire = server_accept hello_wire in
  let client = client_finish hello reply_wire in
  (client, server)

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

(* Keystream: a 64-bit xorshift generator seeded from (key, seq); each
   step yields 8 keystream bytes.  One multiplication + shifts per 8
   bytes plus the MAC pass gives the per-byte cost profile we need. *)
let keystream_init key seq =
  let s = Int64.logxor key (Int64.mul seq 0x9e3779b97f4a7c15L) in
  if s = 0L then 0x1234_5678L else s

let keystream_next s =
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  Int64.logxor s (Int64.shift_left s 17)

let transform ~key ~seq payload =
  let n = String.length payload in
  let out = Bytes.create n in
  let state = ref (keystream_init key seq) in
  for i = 0 to n - 1 do
    if i land 7 = 0 then state := keystream_next !state;
    let ks_byte =
      Int64.to_int (Int64.shift_right_logical !state (8 * (i land 7))) land 0xff
    in
    Bytes.set out i (Char.chr (Char.code payload.[i] lxor ks_byte))
  done;
  Bytes.unsafe_to_string out

let mac ~key ~seq data =
  let h = fnv1a_update (Int64.logxor fnv_offset key) (Int64.to_int seq land 0xff) in
  int64_to_wire (fnv1a_string h data)

let seal session payload =
  let seq = session.seq_tx in
  session.seq_tx <- Int64.add seq 1L;
  let cipher = transform ~key:session.key ~seq payload in
  let tag = mac ~key:session.key ~seq cipher in
  int64_to_wire seq ^ tag ^ cipher

let open_ session record =
  if String.length record < 16 then fail "record too short (%d bytes)" (String.length record);
  let seq = int64_of_wire record 0 in
  if seq <> session.seq_rx then
    fail "out-of-order record: expected seq %Ld, got %Ld" session.seq_rx seq;
  let tag = String.sub record 8 8 in
  let cipher = String.sub record 16 (String.length record - 16) in
  if mac ~key:session.key ~seq cipher <> tag then fail "MAC mismatch on seq %Ld" seq;
  session.seq_rx <- Int64.add seq 1L;
  transform ~key:session.key ~seq cipher

let rekey a b =
  let next = fnv1a_string a.key "rekey" in
  if fnv1a_string b.key "rekey" <> next then
    fail "rekey: sessions do not share key material";
  a.key <- next;
  b.key <- next;
  a.seq_tx <- 0L;
  a.seq_rx <- 0L;
  b.seq_tx <- 0L;
  b.seq_rx <- 0L
