(** Transport connections: framing and per-transport costs over {!Chan}.

    Three transport classes, mirroring libvirt's main remote transports:

    - [Unix_sock] — local socket: messages cross the channel untouched and
      the peer carries UNIX credentials (SO_PEERCRED equivalent);
    - [Tcp] — remote, unencrypted: every message is integrity-checksummed
      (one real pass over the bytes, standing in for kernel checksum work)
      and the peer carries a network address;
    - [Tls] — remote, encrypted: a {!Tlslike} handshake at accept time and
      seal/open on every message (keyed stream transform + MAC).

    The cost ordering unix < tcp < tls is therefore physically incurred,
    which is what experiments E3/E4 measure. *)

type kind = Unix_sock | Tcp | Tls

val kind_name : kind -> string
(** ["unix"], ["tcp"], ["tls"]. *)

val kind_of_name : string -> (kind, string) result

(** Peer identity, as the server side sees it. *)

type unix_identity = {
  uid : int;
  gid : int;
  pid : int;
  username : string;
  groupname : string;
}

type peer =
  | Local of unix_identity  (** unix-socket peer credentials *)
  | Remote of { sock_addr : string; x509_dname : string option }
      (** network peer; [x509_dname] present on TLS connections *)

type t

exception Closed
(** The underlying channel was closed. *)

exception Corrupt of string
(** Checksum or TLS authentication failure on a received message. *)

val kind : t -> kind
val peer : t -> peer
val send : t -> string -> unit
val recv : t -> string
val recv_opt : t -> timeout_s:float -> string option

val try_recv : t -> string option
(** Non-blocking {!recv}: [None] when no frame is queued.  Raises as
    {!recv} does ([Closed], [Corrupt]).  The reactor's drain primitive. *)

val incoming_chan : t -> Chan.t
(** The receive-direction channel, for registering readiness hooks (the
    reactor watches this, then drains through {!try_recv}). *)

val close : t -> unit
val is_closed : t -> bool

val bytes_tx : t -> int
(** Total payload bytes sent on this end. *)

val bytes_rx : t -> int

val rekey : t -> t -> unit
(** Rotate TLS key material on both ends of one TLS connection (ablation
    hook).  No-op on other kinds. *)

(** {1 Establishment} — used by {!Netsim}; exposed for direct tests. *)

val initiate : kind -> peer_sends:peer -> Chan.endpoint -> t
(** Client side: performs the client half of any handshake, transmitting
    [peer_sends] (the identity this client presents) to the server. *)

val accept : kind -> Chan.endpoint -> t
(** Server side: blocks for the client's handshake/identity. *)

(** {2 Non-blocking accept} — the same establishment as {!accept}, run as
    a state machine fed one inbound frame at a time, so a reactor can
    multiplex many handshakes on one thread.  [accept] is this machine
    driven from a blocking [Chan.recv]. *)

type accept_state

val accept_start : kind -> Chan.endpoint -> accept_state

val accept_feed : accept_state -> string -> [ `Again | `Conn of t ]
(** Feed the next raw inbound frame.  [`Again] wants more frames (TLS
    hello consumed, reply already sent); [`Conn] is the established
    connection.  Raises {!Corrupt} (or a {!Tlslike} handshake failure) on
    a bad frame, as the blocking accept would. *)
