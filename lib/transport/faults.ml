type fault =
  | Refuse_connect
  | Drop_after of int
  | Delay of float
  | Corrupt_frame of int
  | Blackhole

type stats = {
  connects_refused : int;
  connections_killed : int;
  frames_corrupted : int;
  frames_delayed : int;
  frames_blackholed : int;
  frames_delivered : int;
}

type plan = {
  seed : int;
  plan_faults : fault list;
  mutex : Mutex.t;
  mutable next_conn : int;
  mutable st_refused : int;
  mutable st_killed : int;
  mutable st_corrupted : int;
  mutable st_delayed : int;
  mutable st_blackholed : int;
  mutable st_delivered : int;
}

let plan ?(seed = 1) faults =
  {
    seed;
    plan_faults = faults;
    mutex = Mutex.create ();
    next_conn = 0;
    st_refused = 0;
    st_killed = 0;
    st_corrupted = 0;
    st_delayed = 0;
    st_blackholed = 0;
    st_delivered = 0;
  }

let with_lock p f =
  Mutex.lock p.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.mutex) f

let faults p = p.plan_faults

let stats p =
  with_lock p (fun () ->
      {
        connects_refused = p.st_refused;
        connections_killed = p.st_killed;
        frames_corrupted = p.st_corrupted;
        frames_delayed = p.st_delayed;
        frames_blackholed = p.st_blackholed;
        frames_delivered = p.st_delivered;
      })

let refuses_connect p =
  if List.mem Refuse_connect p.plan_faults then begin
    with_lock p (fun () -> p.st_refused <- p.st_refused + 1);
    true
  end
  else false

(* SplitMix-style mixer; cheap, stateless, and good enough to pick bytes
   to flip.  Determinism matters more than quality here. *)
let mix x =
  let x = x + 0x9e3779b9 in
  let x = (x lxor (x lsr 30)) * 0x4f6cdd1d in
  let x = (x lxor (x lsr 27)) * 0x2545f491 in
  (x lxor (x lsr 31)) land max_int

(* Per-connection fault state: own PRNG stream and frame counter, so two
   directions or two connections never race over shared randomness. *)
type conn_state = { mutable prng : int; mutable frames : int }

let next_rand st =
  st.prng <- mix st.prng;
  st.prng

let flip_one_bit st wire =
  if String.length wire = 0 then wire
  else begin
    let pos = next_rand st mod String.length wire in
    let bit = next_rand st land 7 in
    let b = Bytes.of_string wire in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let pump p st ep proxy =
  let kill () =
    with_lock p (fun () -> p.st_killed <- p.st_killed + 1);
    Chan.close_endpoint ep;
    Chan.close proxy
  in
  let rec loop () =
    match Chan.recv ep.Chan.incoming with
    | exception Chan.Closed -> Chan.close proxy
    | wire ->
      st.frames <- st.frames + 1;
      let n = st.frames in
      if
        List.exists
          (function Drop_after k -> n >= k | _ -> false)
          p.plan_faults
      then kill ()
      else begin
        List.iter
          (function
            | Delay d ->
              with_lock p (fun () -> p.st_delayed <- p.st_delayed + 1);
              Thread.delay d
            | _ -> ())
          p.plan_faults;
        if List.mem Blackhole p.plan_faults then begin
          with_lock p (fun () -> p.st_blackholed <- p.st_blackholed + 1);
          loop ()
        end
        else begin
          let wire =
            if
              List.exists
                (function Corrupt_frame k -> k = n | _ -> false)
                p.plan_faults
            then begin
              with_lock p (fun () -> p.st_corrupted <- p.st_corrupted + 1);
              flip_one_bit st wire
            end
            else wire
          in
          with_lock p (fun () -> p.st_delivered <- p.st_delivered + 1);
          match Chan.send proxy wire with
          | () -> loop ()
          | exception Chan.Closed ->
            (* The attached side closed its endpoint; mirror the close to
               the peer, as a dead socket would. *)
            Chan.close_endpoint ep
        end
      end
  in
  loop ()

let wrap p ep =
  let conn_ix = with_lock p (fun () ->
      p.next_conn <- p.next_conn + 1;
      p.next_conn)
  in
  let st = { prng = mix (p.seed + (conn_ix * 0x10001)); frames = 0 } in
  let proxy = Chan.create () in
  ignore (Thread.create (fun () -> pump p st ep proxy) ());
  { Chan.incoming = proxy; outgoing = ep.Chan.outgoing }
