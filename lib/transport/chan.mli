(** Thread-safe in-memory message channels.

    The whole network is simulated in-process: a {!t} is one direction of a
    duplex link, carrying whole messages (the RPC layer above frames its
    packets, so message orientation loses nothing).  Channels substitute
    for kernel sockets — see DESIGN.md, substitution table. *)

type t

exception Closed
(** Raised by {!send} on a closed channel, and by {!recv} once a closed
    channel has been fully drained. *)

val create : ?capacity:int -> unit -> t
(** Unbounded by default; with [~capacity] senders block when full
    (back-pressure, like a socket buffer). *)

val send : t -> string -> unit
val recv : t -> string
(** Blocks until a message arrives or the channel is closed and empty. *)

val try_recv : t -> string option
(** Non-blocking {!recv}: [None] when nothing is queued.
    @raise Closed once the channel is closed and drained, as {!recv}
    does.  This is the primitive a reactor drains from its readiness
    callback. *)

val recv_opt : t -> timeout_s:float -> string option
(** [None] on timeout.  Waits on a timed condition
    ({!Ovsync.Timedwait.wait}), not a poll loop.  @raise Closed as
    {!recv} does. *)

val close : t -> unit
(** Idempotent.  Wakes all blocked senders and receivers. *)

val is_closed : t -> bool

val pending : t -> int
(** Messages queued but not yet received. *)

(** {1 Readiness hooks}

    The notification primitive under the reactor's simulated epoll: a
    hook fires after every enqueued message and on close — the moments
    a level-triggered poller would report the channel readable.  Hooks
    run outside the channel lock, may fire spuriously, and must not
    block; they should only mark readiness (e.g. enqueue a watch on a
    reactor's ready list). *)

type hook

val add_ready_hook : t -> (unit -> unit) -> hook
val remove_ready_hook : t -> hook -> unit

(** {1 Duplex endpoints} *)

type endpoint = { incoming : t; outgoing : t }

val pipe : unit -> endpoint * endpoint
(** A connected pair: what one side sends, the other receives. *)

val close_endpoint : endpoint -> unit
