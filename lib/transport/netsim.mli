(** Simulated network: a process-wide registry of named listeners.

    Daemon services bind addresses (e.g. ["ovirtd-admin-sock"]); clients
    connect by name, choosing a transport {!Transport.kind}.  Each accepted
    connection invokes the listener's handler in a fresh thread, exactly as
    an accept loop would.

    Fault injection: a {!Faults.plan} may ride on a listener (applied to
    every accepted connection, fresh per-connection state each time) or on
    a single {!connect} (applied to the client side).  See {!Faults} for
    the semantics. *)

type listener

exception Connection_refused of string
(** No listener bound at that address, the listener was closed, or a
    fault plan refused the attempt. *)

exception Address_in_use of string

val listen : ?faults:Faults.plan -> string -> (Transport.t -> unit) -> listener
(** Bind [addr]; [handler] runs in its own thread per accepted connection.
    [faults] applies to every accepted connection's server side.
    @raise Address_in_use if already bound. *)

val listen_direct :
  ?faults:Faults.plan ->
  string ->
  (kind:Transport.kind -> Chan.endpoint -> unit) ->
  listener
(** Bind [addr] without per-connection threads: each accepted raw server
    endpoint is handed to the sink synchronously on the connecting
    thread.  The sink must not block — it registers the endpoint with a
    reactor (which then drives the handshake and all reads) and returns.
    This is the daemon's [io_model=reactor] accept path.
    @raise Address_in_use if already bound. *)

val close_listener : listener -> unit
(** Unbind; established connections are unaffected. *)

val set_listener_faults : string -> Faults.plan option -> bool
(** Attach (or clear, with [None]) a fault plan on a bound listener at
    runtime — how chaos experiments reach into a daemon they did not
    start.  Affects connections accepted from now on; returns [false]
    when nothing listens at that address. *)

val connect :
  ?identity:Transport.unix_identity ->
  ?sock_addr:string ->
  ?faults:Faults.plan ->
  string ->
  Transport.kind ->
  Transport.t
(** Connect to a bound address.  For [Unix_sock] the presented peer is
    [identity] (default: root's); for [Tcp]/[Tls] it is [sock_addr]
    (default: a fresh synthetic address).  [faults] applies to the client
    side of this connection.
    @raise Connection_refused if nothing listens there. *)

val set_logger : Vlog.t -> unit
(** Replace the logger used for handler failures (default: warn-level
    stderr). *)

val bound_addresses : unit -> string list

val reset : unit -> unit
(** Drop all listeners (test isolation). *)
