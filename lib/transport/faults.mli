(** Deterministic fault injection for the simulated network.

    A {!plan} is a composable schedule of faults attached to a listener
    ({!Netsim.listen}) or a single connection ({!Netsim.connect}).  Frame
    faults apply to the frames {e delivered to} the side the plan is
    attached to (the wire bytes, after the sender's transport wrap and
    before the receiver's unwrap, so corruption exercises the real
    checksum/MAC paths in {!Transport}); [Refuse_connect] applies at
    establishment time; connection kills close both directions.

    Everything nondeterministic (which byte of a frame gets flipped) is
    driven by the plan's PRNG seed, and per-connection streams derive from
    the seed plus a connection index, so a chaos run replays identically:
    same seed + same traffic → same faults. *)

type fault =
  | Refuse_connect  (** refuse every connection attempt *)
  | Drop_after of int
      (** kill the connection when the Nth frame arrives (the frame is
          lost with the connection).  Attached to a listener, this models
          "the connection dies every N frames": each accepted connection
          gets a fresh counter. *)
  | Delay of float  (** added latency, seconds, on every delivered frame *)
  | Corrupt_frame of int
      (** flip one PRNG-chosen bit of the Nth frame, then deliver it *)
  | Blackhole  (** accept writes, deliver nothing: frames silently vanish *)

type plan

type stats = {
  connects_refused : int;
  connections_killed : int;
  frames_corrupted : int;
  frames_delayed : int;
  frames_blackholed : int;
  frames_delivered : int;  (** delivered intact or corrupted, not dropped *)
}

val plan : ?seed:int -> fault list -> plan
(** Faults compose: [[Delay 0.001; Drop_after 50]] delays every frame and
    kills the connection at the 50th.  [seed] defaults to [1]. *)

val faults : plan -> fault list
val stats : plan -> stats

val refuses_connect : plan -> bool
(** True iff the plan contains [Refuse_connect]; bumps
    [connects_refused] when it does (callers ask exactly once per
    attempt). *)

val wrap : plan -> Chan.endpoint -> Chan.endpoint
(** Interpose the plan on an endpoint's receive path: returns an endpoint
    whose [incoming] channel is fed by a pump thread applying the plan
    frame by frame.  The [outgoing] side is shared untouched.  Killing
    faults close the underlying endpoint (both directions) so the peer
    observes the death too. *)
