exception Closed

type hook = { h_id : int; h_fn : unit -> unit }

type t = {
  mutex : Mutex.t;
  readable : Condition.t;
  writable : Condition.t;
  queue : string Queue.t;
  capacity : int; (* max_int = unbounded *)
  mutable closed : bool;
  mutable hooks : hook list;
}

let hook_ids = Atomic.make 1

let create ?(capacity = max_int) () =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    readable = Condition.create ();
    writable = Condition.create ();
    queue = Queue.create ();
    capacity;
    closed = false;
    hooks = [];
  }

let with_lock c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

(* Hooks run after the channel mutex is released: a hook typically takes
   its own lock (the reactor's), and holding ours across that call would
   order the two locks both ways.  Hooks only mark readiness, so running
   them slightly after the state change is harmless. *)
let run_hooks hooks = List.iter (fun h -> h.h_fn ()) hooks

let send c msg =
  let hooks =
    with_lock c (fun () ->
        while (not c.closed) && Queue.length c.queue >= c.capacity do
          Condition.wait c.writable c.mutex
        done;
        if c.closed then raise Closed;
        Queue.push msg c.queue;
        Condition.signal c.readable;
        c.hooks)
  in
  run_hooks hooks

let recv c =
  with_lock c (fun () ->
      while Queue.is_empty c.queue && not c.closed do
        Condition.wait c.readable c.mutex
      done;
      if Queue.is_empty c.queue then raise Closed;
      let msg = Queue.pop c.queue in
      Condition.signal c.writable;
      msg)

let try_recv c =
  with_lock c (fun () ->
      if not (Queue.is_empty c.queue) then begin
        let msg = Queue.pop c.queue in
        Condition.signal c.writable;
        Some msg
      end
      else if c.closed then raise Closed
      else None)

let recv_opt c ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  with_lock c (fun () ->
      let rec wait_for_data () =
        if not (Queue.is_empty c.queue) then begin
          let msg = Queue.pop c.queue in
          Condition.signal c.writable;
          Some msg
        end
        else if c.closed then raise Closed
        else if Unix.gettimeofday () >= deadline then None
        else begin
          Ovsync.Timedwait.wait c.mutex c.readable ~until:deadline;
          wait_for_data ()
        end
      in
      wait_for_data ())

let close c =
  let hooks =
    with_lock c (fun () ->
        if not c.closed then begin
          c.closed <- true;
          Condition.broadcast c.readable;
          Condition.broadcast c.writable;
          c.hooks
        end
        else [])
  in
  run_hooks hooks

let is_closed c = with_lock c (fun () -> c.closed)
let pending c = with_lock c (fun () -> Queue.length c.queue)

let add_ready_hook c fn =
  let h = { h_id = Atomic.fetch_and_add hook_ids 1; h_fn = fn } in
  with_lock c (fun () -> c.hooks <- h :: c.hooks);
  h

let remove_ready_hook c h =
  with_lock c (fun () ->
      c.hooks <- List.filter (fun h' -> h'.h_id <> h.h_id) c.hooks)

type endpoint = { incoming : t; outgoing : t }

let pipe () =
  let a = create () and b = create () in
  ({ incoming = a; outgoing = b }, { incoming = b; outgoing = a })

let close_endpoint ep =
  close ep.incoming;
  close ep.outgoing
