exception Connection_refused of string
exception Address_in_use of string

(* Two accept disciplines: [Threaded] is the classic accept loop (one
   handler thread per connection, the handler may block for the life of
   the connection); [Direct] hands the raw server endpoint to the sink on
   the connecting thread — the sink must not block, it typically just
   registers the endpoint with a reactor and returns. *)
type sink =
  | Threaded of (Transport.t -> unit)
  | Direct of (kind:Transport.kind -> Chan.endpoint -> unit)

type listener = {
  addr : string;
  sink : sink;
  mutable open_ : bool;
  mutable faults : Faults.plan option;
}

let registry : (string, listener) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Chaos-test failures must be diagnosable: handler exceptions go here
   rather than vanishing.  Warn-level stderr by default; the daemon (or a
   test) may swap in its own logger. *)
let logger =
  ref (Vlog.create ~level:Vlog.Warn ())

let set_logger l = logger := l

let listen_sink ?faults addr sink =
  with_registry (fun () ->
      (match Hashtbl.find_opt registry addr with
       | Some l when l.open_ -> raise (Address_in_use addr)
       | Some _ | None -> ());
      let l = { addr; sink; open_ = true; faults } in
      Hashtbl.replace registry addr l;
      l)

let listen ?faults addr handler = listen_sink ?faults addr (Threaded handler)
let listen_direct ?faults addr f = listen_sink ?faults addr (Direct f)

let close_listener l =
  with_registry (fun () ->
      l.open_ <- false;
      match Hashtbl.find_opt registry l.addr with
      | Some current when current == l -> Hashtbl.remove registry l.addr
      | Some _ | None -> ())

let set_listener_faults addr faults =
  with_registry (fun () ->
      match Hashtbl.find_opt registry addr with
      | Some l when l.open_ ->
        l.faults <- faults;
        true
      | Some _ | None -> false)

let default_identity =
  Transport.{ uid = 0; gid = 0; pid = 1; username = "root"; groupname = "root" }

let addr_counter = Atomic.make 1

let fresh_sock_addr () =
  let n = Atomic.fetch_and_add addr_counter 1 in
  Printf.sprintf "192.168.%d.%d:%d" ((n lsr 8) land 0xff) (n land 0xff)
    (10000 + (n mod 50000))

let connect ?identity ?sock_addr ?faults addr kind =
  let l, listener_faults =
    with_registry (fun () ->
        match Hashtbl.find_opt registry addr with
        | Some l when l.open_ -> (l, l.faults)
        | Some _ | None -> raise (Connection_refused addr))
  in
  let refused plan =
    match plan with Some p -> Faults.refuses_connect p | None -> false
  in
  if refused listener_faults || refused faults then raise (Connection_refused addr);
  let client_ep, server_ep = Chan.pipe () in
  let server_ep =
    match listener_faults with Some p -> Faults.wrap p server_ep | None -> server_ep
  in
  let client_ep =
    match faults with Some p -> Faults.wrap p client_ep | None -> client_ep
  in
  (match l.sink with
   | Threaded handler ->
     (* The server half of the handshake runs in the per-connection
        thread, like an accept loop handing the socket to a worker. *)
     ignore
       (Thread.create
          (fun () ->
            match Transport.accept kind server_ep with
            | conn ->
              (try handler conn
               with exn ->
                 Vlog.logf !logger ~module_:"netsim" Vlog.Warn
                   "listener %s: connection handler raised %s" addr
                   (Printexc.to_string exn);
                 Transport.close conn)
            | exception _ -> Chan.close_endpoint server_ep)
          ())
   | Direct f ->
     (* No thread: the sink registers the endpoint (with its reactor) and
        returns; the server half of any handshake happens there, driven
        by readiness. *)
     (try f ~kind server_ep
      with exn ->
        Vlog.logf !logger ~module_:"netsim" Vlog.Warn
          "listener %s: direct sink raised %s" addr (Printexc.to_string exn);
        Chan.close_endpoint server_ep));
  let peer_sends =
    match kind with
    | Transport.Unix_sock ->
      Transport.Local (Option.value identity ~default:default_identity)
    | Transport.Tcp | Transport.Tls ->
      let sock_addr =
        match sock_addr with Some a -> a | None -> fresh_sock_addr ()
      in
      Transport.Remote { sock_addr; x509_dname = None }
  in
  Transport.initiate kind ~peer_sends client_ep

let bound_addresses () =
  with_registry (fun () ->
      Hashtbl.fold (fun addr _ acc -> addr :: acc) registry [] |> List.sort compare)

let reset () = with_registry (fun () -> Hashtbl.reset registry)
