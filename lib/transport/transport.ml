type kind = Unix_sock | Tcp | Tls

let kind_name = function Unix_sock -> "unix" | Tcp -> "tcp" | Tls -> "tls"

let kind_of_name = function
  | "unix" -> Ok Unix_sock
  | "tcp" -> Ok Tcp
  | "tls" -> Ok Tls
  | s -> Error (Printf.sprintf "unknown transport %S" s)

type unix_identity = {
  uid : int;
  gid : int;
  pid : int;
  username : string;
  groupname : string;
}

type peer =
  | Local of unix_identity
  | Remote of { sock_addr : string; x509_dname : string option }

type t = {
  kind : kind;
  ep : Chan.endpoint;
  tls : Tlslike.session option;
  peer : peer;
  tx_mutex : Mutex.t;
      (* TLS sealing is stateful (strict per-record sequence numbers), so
         seal order must equal wire order: wrap+send is one critical
         section.  Concurrent senders — pipelined replies from dispatcher
         workers, client keepalives — would otherwise interleave. *)
  mutable tx : int;
  mutable rx : int;
}

exception Closed
exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* Per-kind wire transforms                                            *)
(* ------------------------------------------------------------------ *)

(* Position-mixed additive checksum: one real pass over the payload,
   standing in for the kernel's TCP checksum work. *)
let checksum s =
  let acc = ref 0 in
  String.iteri (fun i c -> acc := (!acc + ((Char.code c + 1) * ((i land 0xff) + 1))) land 0x3fffffff) s;
  !acc

let checksum_to_wire v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let checksum_of_wire s =
  ((Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16) lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3])
  land 0x3fffffff

let wrap conn msg =
  match conn.kind, conn.tls with
  | Unix_sock, _ -> msg
  | Tcp, _ -> checksum_to_wire (checksum msg) ^ msg
  | Tls, Some session -> Tlslike.seal session msg
  | Tls, None -> assert false

let unwrap conn wire =
  match conn.kind, conn.tls with
  | Unix_sock, _ -> wire
  | Tcp, _ ->
    if String.length wire < 4 then raise (Corrupt "tcp frame too short");
    let expected = checksum_of_wire wire in
    let payload = String.sub wire 4 (String.length wire - 4) in
    if checksum payload <> expected then raise (Corrupt "tcp checksum mismatch");
    payload
  | Tls, Some session ->
    (try Tlslike.open_ session wire
     with Tlslike.Auth_failure msg -> raise (Corrupt ("tls: " ^ msg)))
  | Tls, None -> assert false

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let kind conn = conn.kind
let peer conn = conn.peer

let send conn msg =
  Mutex.lock conn.tx_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.tx_mutex)
    (fun () ->
      conn.tx <- conn.tx + String.length msg;
      try Chan.send conn.ep.Chan.outgoing (wrap conn msg)
      with Chan.Closed -> raise Closed)

let recv conn =
  let wire = try Chan.recv conn.ep.Chan.incoming with Chan.Closed -> raise Closed in
  let msg = unwrap conn wire in
  conn.rx <- conn.rx + String.length msg;
  msg

let recv_opt conn ~timeout_s =
  match
    try Chan.recv_opt conn.ep.Chan.incoming ~timeout_s with Chan.Closed -> raise Closed
  with
  | None -> None
  | Some wire ->
    let msg = unwrap conn wire in
    conn.rx <- conn.rx + String.length msg;
    Some msg

let try_recv conn =
  match
    try Chan.try_recv conn.ep.Chan.incoming with Chan.Closed -> raise Closed
  with
  | None -> None
  | Some wire ->
    let msg = unwrap conn wire in
    conn.rx <- conn.rx + String.length msg;
    Some msg

let incoming_chan conn = conn.ep.Chan.incoming

let close conn = Chan.close_endpoint conn.ep
let is_closed conn = Chan.is_closed conn.ep.Chan.outgoing
let bytes_tx conn = conn.tx
let bytes_rx conn = conn.rx

let rekey a b =
  match a.tls, b.tls with
  | Some sa, Some sb -> Tlslike.rekey sa sb
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Establishment                                                       *)
(* ------------------------------------------------------------------ *)

(* Identity is presented by the connecting client at establishment time,
   simulating SO_PEERCRED (unix) and getpeername (tcp/tls). *)

let peer_to_wire = function
  | Local id ->
    Printf.sprintf "L:%d:%d:%d:%s:%s" id.uid id.gid id.pid id.username id.groupname
  | Remote r -> Printf.sprintf "R:%s" r.sock_addr

let peer_of_wire ~kind s =
  let corrupt () = raise (Corrupt (Printf.sprintf "bad peer identity %S" s)) in
  match String.split_on_char ':' s with
  | [ "L"; uid; gid; pid; username; groupname ] ->
    (match int_of_string_opt uid, int_of_string_opt gid, int_of_string_opt pid with
     | Some uid, Some gid, Some pid -> Local { uid; gid; pid; username; groupname }
     | _ -> corrupt ())
  | "R" :: rest when rest <> [] ->
    let sock_addr = String.concat ":" rest in
    let x509_dname =
      match kind with
      | Tls -> Some (Printf.sprintf "CN=%s,O=ovirt" sock_addr)
      | Unix_sock | Tcp -> None
    in
    Remote { sock_addr; x509_dname }
  | _ -> corrupt ()

let initiate kind ~peer_sends ep =
  let tls =
    match kind with
    | Unix_sock | Tcp -> None
    | Tls ->
      let hello, hello_wire = Tlslike.client_hello () in
      Chan.send ep.Chan.outgoing hello_wire;
      let reply = try Chan.recv ep.Chan.incoming with Chan.Closed -> raise Closed in
      Some (Tlslike.client_finish hello reply)
  in
  (* The client's view of its peer is the server; servers have no
     interesting identity, so record a synthetic one. *)
  let conn =
    { kind; ep; tls; peer = Remote { sock_addr = "server"; x509_dname = None }; tx_mutex = Mutex.create (); tx = 0; rx = 0 }
  in
  send conn (peer_to_wire peer_sends);
  conn

(* Server-side establishment as an explicit state machine, so a reactor
   can drive it one inbound frame at a time without a blocked accept
   thread.  The blocking [accept] below is the same machine fed from
   [Chan.recv]. *)

type accept_phase =
  | A_hello (* TLS only: awaiting the client hello *)
  | A_identity of Tlslike.session option (* awaiting the peer identity frame *)

type accept_state = {
  as_kind : kind;
  as_ep : Chan.endpoint;
  mutable as_phase : accept_phase;
}

let accept_start kind ep =
  {
    as_kind = kind;
    as_ep = ep;
    as_phase = (match kind with Tls -> A_hello | Unix_sock | Tcp -> A_identity None);
  }

let accept_feed st frame =
  match st.as_phase with
  | A_hello ->
    let session, reply = Tlslike.server_accept frame in
    Chan.send st.as_ep.Chan.outgoing reply;
    st.as_phase <- A_identity (Some session);
    `Again
  | A_identity tls ->
    let conn =
      {
        kind = st.as_kind;
        ep = st.as_ep;
        tls;
        peer = Remote { sock_addr = "pending"; x509_dname = None };
        tx_mutex = Mutex.create ();
        tx = 0;
        rx = 0;
      }
    in
    let identity = unwrap conn frame in
    conn.rx <- conn.rx + String.length identity;
    `Conn { conn with peer = peer_of_wire ~kind:st.as_kind identity }

let accept kind ep =
  let st = accept_start kind ep in
  let rec go () =
    let frame = try Chan.recv ep.Chan.incoming with Chan.Closed -> raise Closed in
    match accept_feed st frame with `Again -> go () | `Conn conn -> conn
  in
  go ()
