(* Toolkit facade: single entry point that assembles the driver registry
   and re-exports the public surface.  [Connect.open_uri] initializes the
   registry on first use, so linking this library is all an application
   needs. *)

let initialized = ref false
let init_mutex = Mutex.create ()

(* Registration order is libvirt's selection order: client-side drivers
   first, the remote tunnel last as the catch-all. *)
let initialize () =
  Mutex.lock init_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock init_mutex)
    (fun () ->
      if not !initialized then begin
        Drivers.Drv_test.register ();
        Drivers.Drv_esx.register ();
        Drivers.Drv_qemu.register ();
        Drivers.Drv_xen.register ();
        Drivers.Drv_lxc.register ();
        (* Before the remote tunnel: fleet:// without a transport is
           in-process; fleet+unix:// still falls through to remote. *)
        Ovirt_fleet.Fleet.register ();
        Drv_remote.register ();
        initialized := true
      end)

module Verror = Ovirt_core.Verror
module Uri = Ovirt_core.Vuri
module Capabilities = Ovirt_core.Capabilities
module Driver = Ovirt_core.Driver
module Events = Ovirt_core.Events
module Net_backend = Ovirt_core.Net_backend
module Storage_backend = Ovirt_core.Storage_backend

module Connect = struct
  include Ovirt_core.Connect

  let open_uri uri =
    initialize ();
    Ovirt_core.Connect.open_uri uri
end

module Domain = Ovirt_core.Domain
module Network = Ovirt_core.Network
module Storage = Ovirt_core.Storage
module Guest_agent_client = Agent

(* Drop every driver node (in-memory stores, event buses, locks) as a
   process crash would.  Simulated hypervisor state — qemu process
   tables, attached Xen/LXC instances, shared host capacity, persisted
   journals — survives on purpose: it is what recovery reconciles
   against. *)
let crash_managers () =
  Drivers.Drv_test.reset_nodes ();
  Drivers.Drv_qemu.reset_nodes ();
  Drivers.Drv_xen.reset_nodes ();
  Drivers.Drv_lxc.reset_nodes ()

module Daemon = struct
  include Ovdaemon.Daemon

  let start ?name ?config () =
    initialize ();
    Ovdaemon.Daemon.start ?name ?config ()

  (* Manager crash: the daemon dies mid-flight and takes every driver
     node down with it.  The next [start] + connection replays journals
     and re-adopts running guests. *)
  let crash daemon =
    kill daemon;
    crash_managers ()
end

module Daemon_config = Ovdaemon.Daemon_config
module Server_obj = Ovdaemon.Server_obj
module Reactor = Ovreactor.Reactor
module Bufpool = Ovreactor.Bufpool
module Admin_client = Admin
module Logging = Vlog
module Dompolicy = Ovirt_core.Dompolicy
module Reconcile = Reconcile
module Remote = Drv_remote
module Fleet = Ovirt_fleet.Fleet
