(* ovirsh: the virsh-like management shell.
   Usage:  ovirsh [-c URI] [--timeout SECONDS] [command [args...]]
   With no command, enters an interactive shell.  A daemon named "ovirtd"
   is started in-process when a +transport URI asks for one (the whole
   network is simulated in-process; see DESIGN.md).  --timeout gives
   every call on the connection an end-to-end deadline (the remote
   driver's timeout= URI parameter). *)

let ( let* ) = Result.bind
let verr r = Result.map_error Ovirt.Verror.to_string r

type shell = { mutable conn : Ovirt.Connect.t option }

let require_conn shell =
  match shell.conn with
  | Some conn when not (Ovirt.Connect.is_closed conn) -> Ok conn
  | Some _ | None -> Error "no active connection (use: connect <uri>)"

let state_name = Vmm.Vm_state.state_name

let lookup shell name =
  let* conn = require_conn shell in
  verr (Ovirt.Domain.lookup_by_name conn name)

let one_positional args what =
  match args.Ovcli.positional with
  | [ v ] -> Ok v
  | _ -> Error (Printf.sprintf "expected exactly one argument: %s" what)

(* Failed sub-replies inside the connection's batched/pipelined
   multi-calls so far.  Bulk listings drop failed rows from their
   output, so comparing this before and after a listing is how the
   shell notices a partial failure and exits non-zero. *)
let ops_sub_errors ops =
  match Ovirt.Remote.conn_stats ops with
  | Some st -> st.Ovirt.Remote.st_sub_errors
  | None -> (
    match Ovirt.Fleet.conn_stats ops with
    | Some st -> st.Ovirt.Fleet.st_sub_errors
    | None -> 0)

let conn_sub_errors conn =
  match Ovirt.Connect.ops conn with
  | Error _ -> 0
  | Ok ops -> ops_sub_errors ops

let sub_errors shell =
  match shell.conn with None -> 0 | Some conn -> conn_sub_errors conn

(* Run a bulk listing and fail (after printing any partial output the
   caller assembled) when sub-calls inside it failed. *)
let checked_bulk shell f =
  let before = sub_errors shell in
  let* text = f () in
  let failed = sub_errors shell - before in
  if failed = 0 then Ok text
  else begin
    print_endline text;
    Error
      (Printf.sprintf
         "listing incomplete: %d sub-call%s failed (partial output above)"
         failed
         (if failed = 1 then "" else "s"))
  end

let event_line buf ev =
  Buffer.add_string buf
    (Printf.sprintf "%6d %-20s %s\n" ev.Ovirt.Events.seq
       (if ev.Ovirt.Events.domain_name = "" then "-"
        else ev.Ovirt.Events.domain_name)
       (Ovirt.Events.lifecycle_name ev.Ovirt.Events.lifecycle))

(* Tail [count] events from [conn], reading any resume replay from the
   bus history (it was emitted during the open, before a subscriber
   could attach) and the rest live.  An [Ev_resync] pseudo-event means
   the daemon could not replay from the requested position: the tail
   stops and the command fails so scripts notice the gap. *)
let tail_events conn ~since ~count ~timeout =
  let errs_before = conn_sub_errors conn in
  let mu = Mutex.create () in
  let events = ref [] in
  (* newest first *)
  let total = ref 0 in
  let gap = ref false in
  let note ev =
    Mutex.lock mu;
    if ev.Ovirt.Events.lifecycle = Ovirt.Events.Ev_resync then gap := true;
    events := ev :: !events;
    incr total;
    Mutex.unlock mu
  in
  let* () =
    match since with
    | None -> Ok ()
    | Some s ->
      let* past = verr (Ovirt.Connect.event_history conn) in
      List.iter
        (fun ev ->
          if
            ev.Ovirt.Events.seq > s
            || ev.Ovirt.Events.lifecycle = Ovirt.Events.Ev_resync
          then note ev)
        past;
      Ok ()
  in
  let* sub = verr (Ovirt.Connect.subscribe_events conn note) in
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. float_of_int t) timeout
  in
  let snapshot () =
    Mutex.lock mu;
    let r = (!total, !gap) in
    Mutex.unlock mu;
    r
  in
  let expired () =
    match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
  in
  let rec wait () =
    let n, g = snapshot () in
    if g || n >= count || expired () then ()
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ();
  Ovirt.Connect.unsubscribe_events conn sub;
  Mutex.lock mu;
  let collected = List.rev !events in
  let gapped = !gap in
  Mutex.unlock mu;
  let buf = Buffer.create 128 in
  List.iter (event_line buf) collected;
  if gapped then begin
    (* Partial output still goes out; the non-zero exit flags the gap. *)
    print_string (Buffer.contents buf);
    Error
      (match since with
       | Some s ->
         Printf.sprintf
           "event stream gap: daemon no longer retains events after seq %d \
            (full resynchronization required)"
           s
       | None -> "event stream gap: full resynchronization required")
  end
  else begin
    (* Same partial-failure contract as the bulk listings: sub-calls
       that failed underneath the tail (a degraded shard, a failed
       multi-call) turn the exit non-zero even though the events that
       did arrive were printed. *)
    let failed = conn_sub_errors conn - errs_before in
    if failed > 0 then begin
      print_string (Buffer.contents buf);
      Error
        (Printf.sprintf
           "event stream degraded: %d sub-call%s failed while tailing \
            (partial output above)"
           failed
           (if failed = 1 then "" else "s"))
    end
    else Ok (Buffer.contents buf)
  end

let commands shell =
  let connect_cmd =
    Ovcli.
      {
        name = "connect";
        group = "Connection";
        args_help = "<uri>";
        summary = "connect to a hypervisor URI";
        handler =
          (fun args ->
            let* uri = one_positional args "<uri>" in
            let* conn = verr (Ovirt.Connect.open_uri uri) in
            (match shell.conn with Some old -> Ovirt.Connect.close old | None -> ());
            shell.conn <- Some conn;
            Ok (Printf.sprintf "connected to %s (driver %s)" uri
                  (Ovirt.Connect.driver_name conn)));
      }
  in
  let simple name group args_help summary handler =
    Ovcli.{ name; group; args_help; summary; handler }
  in
  let dom_op name summary op =
    simple name "Domain management" "<domain>" summary (fun args ->
        let* name = one_positional args "<domain>" in
        let* dom = lookup shell name in
        let* () = verr (op dom) in
        Ok (Printf.sprintf "domain %s: %s" name summary))
  in
  [
    connect_cmd;
    simple "uri" "Connection" "" "print the current connection URI" (fun _ ->
        let* conn = require_conn shell in
        Ok (Ovirt.Uri.to_string (Ovirt.Connect.uri conn)));
    simple "hostname" "Connection" "" "print the node's hostname" (fun _ ->
        let* conn = require_conn shell in
        verr (Ovirt.Connect.hostname conn));
    simple "capabilities" "Connection" "" "print driver capabilities XML" (fun _ ->
        let* conn = require_conn shell in
        let* caps = verr (Ovirt.Connect.capabilities conn) in
        Ok (Ovirt.Capabilities.to_xml caps));
    simple "list" "Domain management" "[--all]" "list domains" (fun args ->
        let* conn = require_conn shell in
        checked_bulk shell @@ fun () ->
        (* One bulk listing gives refs, state and info in a single
           exchange; remote connections turn this into Proc_dom_list_all
           (or a pipelined emulation against older daemons).  A fleet
           connection additionally reports which shards degraded. *)
        let fleet_view =
          match Ovirt.Connect.ops conn with
          | Ok ops -> ops.Ovirt.Driver.fleet
          | Error _ -> None
        in
        let* records, shard_errors =
          match fleet_view with
          | Some fv ->
            let* l = verr (fv.Ovirt.Driver.fleet_list_all ()) in
            Ok (l.Ovirt.Driver.fl_records, l.Ovirt.Driver.fl_shard_errors)
          | None ->
            let* records = verr (Ovirt.Connect.list_all_domains conn) in
            Ok (records, [])
        in
        let records =
          if Ovcli.has_switch args "all" then records
          else
            List.filter
              (fun r ->
                r.Ovirt.Driver.rec_info.Ovirt.Driver.di_state
                <> Vmm.Vm_state.Shutoff)
              records
        in
        let buf = Buffer.create 128 in
        Buffer.add_string buf (Printf.sprintf " %-5s %-20s %s\n" "Id" "Name" "State");
        Buffer.add_string buf "---------------------------------------\n";
        List.iter
          (fun r ->
            let id =
              match r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_id with
              | Some id -> string_of_int id
              | None -> "-"
            in
            Buffer.add_string buf
              (Printf.sprintf " %-5s %-20s %s\n" id
                 r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_name
                 (state_name r.Ovirt.Driver.rec_info.Ovirt.Driver.di_state)))
          records;
        if shard_errors <> [] then begin
          Buffer.add_string buf
            (Printf.sprintf "\n%d shard%s degraded:\n"
               (List.length shard_errors)
               (if List.length shard_errors = 1 then "" else "s"));
          List.iter
            (fun se ->
              Buffer.add_string buf
                (Printf.sprintf " %-20s %s\n" se.Ovirt.Driver.se_member
                   se.Ovirt.Driver.se_error.Ovirt.Verror.message))
            shard_errors
        end;
        Ok (Buffer.contents buf));
    simple "define" "Domain management" "<xml-file>" "define a domain from XML"
      (fun args ->
        let* path = one_positional args "<xml-file>" in
        let* conn = require_conn shell in
        let* xml =
          try
            let ic = open_in path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Ok s
          with Sys_error msg -> Error msg
        in
        let* dom = verr (Ovirt.Domain.define_xml conn xml) in
        Ok (Printf.sprintf "domain %s defined" (Ovirt.Domain.name dom)));
    dom_op "start" "started" Ovirt.Domain.create;
    dom_op "suspend" "suspended" Ovirt.Domain.suspend;
    dom_op "resume" "resumed" Ovirt.Domain.resume;
    dom_op "shutdown" "shut down" Ovirt.Domain.shutdown;
    dom_op "destroy" "destroyed" Ovirt.Domain.destroy;
    dom_op "undefine" "undefined" Ovirt.Domain.undefine;
    dom_op "save" "saved (managed save)" Ovirt.Domain.save;
    dom_op "restore" "restored from managed save" Ovirt.Domain.restore;
    simple "autostart" "Domain management" "<domain> [--disable]"
      "start the domain on daemon restart" (fun args ->
        let* name = one_positional args "<domain>" in
        let* dom = lookup shell name in
        let flag = not (Ovcli.has_switch args "disable") in
        let* () = verr (Ovirt.Domain.set_autostart dom flag) in
        Ok
          (Printf.sprintf "domain %s: autostart %s" name
             (if flag then "enabled" else "disabled")));
    simple "policy" "Domain management"
      "<domain> [--on-boot start|ignore] [--on-shutdown \
       suspend|shutdown|ignore] [--run-state running|stopped|any]"
      "show or declare the domain's lifecycle policy" (fun args ->
        let* name = one_positional args "<domain>" in
        let* dom = lookup shell name in
        match
          ( Ovcli.flag args "on-boot",
            Ovcli.flag args "on-shutdown",
            Ovcli.flag args "run-state" )
        with
        | None, None, None ->
          let* p = verr (Ovirt.Domain.get_policy dom) in
          Ok (Printf.sprintf "domain %s: %s" name (Ovirt.Dompolicy.to_string p))
        | boot, shut, run ->
          (* Unmentioned knobs keep their declared value: read-modify-
             write against the daemon's current spec. *)
          let* p = verr (Ovirt.Domain.get_policy dom) in
          let* on_boot =
            match boot with
            | None -> Ok p.Ovirt.Dompolicy.on_boot
            | Some s -> verr (Ovirt.Dompolicy.on_boot_of_name s)
          in
          let* on_shutdown =
            match shut with
            | None -> Ok p.Ovirt.Dompolicy.on_shutdown
            | Some s -> verr (Ovirt.Dompolicy.on_shutdown_of_name s)
          in
          let* run_state =
            match run with
            | None -> Ok p.Ovirt.Dompolicy.run_state
            | Some s -> verr (Ovirt.Dompolicy.run_state_of_name s)
          in
          let p = { Ovirt.Dompolicy.on_boot; on_shutdown; run_state } in
          let* () = verr (Ovirt.Domain.set_policy dom p) in
          Ok
            (Printf.sprintf "domain %s: policy declared (%s)" name
               (Ovirt.Dompolicy.to_string p)));
    simple "dominfo" "Domain management" "<domain> | --all"
      "print domain information" (fun args ->
        let info_block name uuid info autostart =
          String.concat "\n"
            ([
              Printf.sprintf "%-15s %s" "Name:" name;
              Printf.sprintf "%-15s %s" "UUID:" (Vmm.Uuid.to_string uuid);
              Printf.sprintf "%-15s %s" "State:"
                (state_name info.Ovirt.Driver.di_state);
              Printf.sprintf "%-15s %d KiB" "Max memory:"
                info.Ovirt.Driver.di_max_mem_kib;
              Printf.sprintf "%-15s %d KiB" "Used memory:"
                info.Ovirt.Driver.di_memory_kib;
              Printf.sprintf "%-15s %d" "CPU(s):" info.Ovirt.Driver.di_vcpus;
            ]
            @
            match autostart with
            | Some flag ->
              [
                Printf.sprintf "%-15s %s" "Autostart:"
                  (if flag then "enable" else "disable");
              ]
            | None -> [])
        in
        if Ovcli.has_switch args "all" then begin
          (* Every domain's info in one bulk exchange instead of a
             lookup + info + autostart round trip per domain. *)
          let* conn = require_conn shell in
          checked_bulk shell @@ fun () ->
          let* records = verr (Ovirt.Connect.list_all_domains conn) in
          Ok
            (String.concat "\n\n"
               (List.map
                  (fun r ->
                    info_block r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_name
                      r.Ovirt.Driver.rec_ref.Ovirt.Driver.dom_uuid
                      r.Ovirt.Driver.rec_info r.Ovirt.Driver.rec_autostart)
                  records))
        end
        else
          let* name = one_positional args "<domain>" in
          let* dom = lookup shell name in
          let* info = verr (Ovirt.Domain.get_info dom) in
          Ok
            (info_block name (Ovirt.Domain.uuid dom) info
               (Result.to_option (Ovirt.Domain.get_autostart dom))));
    simple "dumpxml" "Domain management" "<domain>" "print the domain's XML"
      (fun args ->
        let* name = one_positional args "<domain>" in
        let* dom = lookup shell name in
        verr (Ovirt.Domain.xml_desc dom));
    simple "setmem" "Domain management" "<domain> <kib>"
      "set the domain's memory balloon" (fun args ->
        match args.Ovcli.positional with
        | [ name; kib_str ] ->
          (match int_of_string_opt kib_str with
           | None -> Error "memory must be an integer (KiB)"
           | Some kib ->
             let* dom = lookup shell name in
             let* () = verr (Ovirt.Domain.set_memory dom kib) in
             Ok (Printf.sprintf "domain %s: balloon set to %d KiB" name kib))
        | _ -> Error "expected: setmem <domain> <kib>");
    simple "migrate" "Domain management" "<domain> <dest-uri>"
      "live-migrate a domain" (fun args ->
        match args.Ovcli.positional with
        | [ name; dest_uri ] ->
          let* dom = lookup shell name in
          let* dest = verr (Ovirt.Connect.open_uri dest_uri) in
          let* _dest_dom, stats = verr (Ovirt.Domain.migrate dom ~dest ()) in
          Ok
            (Printf.sprintf
               "domain %s migrated: %d precopy rounds, %d pages (%d B), %d pages \
                during downtime"
               name stats.Ovirt.Domain.rounds stats.Ovirt.Domain.pages_transferred
               stats.Ovirt.Domain.bytes_transferred
               stats.Ovirt.Domain.downtime_pages)
        | _ -> Error "expected: migrate <domain> <dest-uri>");
    simple "fleet-migrate" "Domain management" "<domain> <member>"
      "migrate a domain to another fleet member (journaled two-phase handshake)"
      (fun args ->
        match args.Ovcli.positional with
        | [ name; dest ] -> (
          let* conn = require_conn shell in
          match Ovirt.Connect.ops conn with
          | Ok { Ovirt.Driver.fleet = Some fv; _ } ->
            let* () = verr (fv.Ovirt.Driver.fleet_migrate ~domain:name ~dest) in
            Ok (Printf.sprintf "domain %s migrated to member %s" name dest)
          | Ok _ | Error _ ->
            Error "fleet-migrate needs a fleet connection (-c fleet://...)")
        | _ -> Error "expected: fleet-migrate <domain> <member>");
    simple "fleet-status" "Monitoring" ""
      "fleet member health as the controller's prober sees it" (fun _ ->
        let* conn = require_conn shell in
        match Ovirt.Connect.ops conn with
        | Ok { Ovirt.Driver.fleet = Some fv; _ } ->
          let* fs = verr (fv.Ovirt.Driver.fleet_status ()) in
          let buf = Buffer.create 128 in
          Buffer.add_string buf
            (Printf.sprintf "fleet %s: migrations active %d, recovered %d, \
                             rolled back %d\n"
               fs.Ovirt.Driver.fs_fleet fs.Ovirt.Driver.fs_migrations_active
               fs.Ovirt.Driver.fs_migrations_recovered
               fs.Ovirt.Driver.fs_migrations_rolled_back);
          Buffer.add_string buf
            (Printf.sprintf " %-20s %-10s %-8s %-9s %s\n" "Member" "Health"
               "Probes" "Failures" "Domains");
          List.iter
            (fun m ->
              Buffer.add_string buf
                (Printf.sprintf " %-20s %-10s %-8d %-9d %s\n"
                   m.Ovirt.Driver.ms_name
                   (Ovirt.Driver.member_health_name m.Ovirt.Driver.ms_health)
                   m.Ovirt.Driver.ms_probes m.Ovirt.Driver.ms_failures
                   (if m.Ovirt.Driver.ms_domains < 0 then "-"
                    else string_of_int m.Ovirt.Driver.ms_domains)))
            fs.Ovirt.Driver.fs_members;
          Ok (Buffer.contents buf)
        | Ok _ | Error _ ->
          Error "fleet-status needs a fleet connection (-c fleet://...)");
    simple "event" "Monitoring" "[--since SEQ] [--count N] [--timeout S]"
      "tail lifecycle events; --since resumes the sequence-numbered stream"
      (fun args ->
        let* count = Ovcli.int_flag args "count" in
        let count = Option.value count ~default:1 in
        let* timeout = Ovcli.int_flag args "timeout" in
        let* since = Ovcli.int_flag args "since" in
        match since with
        | None ->
          let* conn = require_conn shell in
          tail_events conn ~since:None ~count ~timeout
        | Some s ->
          (* A dedicated connection whose first subscription resumes at
             the given position: the daemon replays what it retains
             beyond it (remote connections only — the resume_from knob
             belongs to the remote driver). *)
          let* base = require_conn shell in
          let uri = Ovirt.Connect.uri base in
          let keep (k, _) =
            k <> "events" && k <> "resume" && k <> "resume_from"
          in
          let uri =
            {
              uri with
              Ovirt.Uri.params =
                List.filter keep uri.Ovirt.Uri.params
                @ [
                    ("events", "1"); ("resume", "1");
                    ("resume_from", string_of_int s);
                  ];
            }
          in
          let* conn = verr (Ovirt.Connect.open_uri (Ovirt.Uri.to_string uri)) in
          Fun.protect
            ~finally:(fun () -> Ovirt.Connect.close conn)
            (fun () -> tail_events conn ~since:(Some s) ~count ~timeout));
    simple "net-list" "Network management" "" "list virtual networks" (fun _ ->
        let* conn = require_conn shell in
        let* nets = verr (Ovirt.Network.list conn) in
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf " %-16s %-10s %-10s %s\n" "Name" "State" "Autostart"
             "Bridge");
        List.iter
          (fun n ->
            Buffer.add_string buf
              (Printf.sprintf " %-16s %-10s %-10s %s\n" n.Ovirt.Net_backend.net_name
                 (if n.Ovirt.Net_backend.active then "active" else "inactive")
                 (if n.Ovirt.Net_backend.autostart then "yes" else "no")
                 n.Ovirt.Net_backend.bridge))
          nets;
        Ok (Buffer.contents buf));
    simple "pool-list" "Storage management" "" "list storage pools" (fun _ ->
        let* conn = require_conn shell in
        let* pools = verr (Ovirt.Storage.list_pools conn) in
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf " %-16s %-10s %-14s %s\n" "Name" "State" "Capacity"
             "Allocation");
        List.iter
          (fun p ->
            Buffer.add_string buf
              (Printf.sprintf " %-16s %-10s %-14d %d\n"
                 p.Ovirt.Storage_backend.pool_name
                 (if p.Ovirt.Storage_backend.pool_active then "active" else "inactive")
                 p.Ovirt.Storage_backend.capacity_b
                 p.Ovirt.Storage_backend.allocation_b))
          pools;
        Ok (Buffer.contents buf));
    simple "vol-list" "Storage management" "<pool>" "list volumes in a pool"
      (fun args ->
        let* pool_name = one_positional args "<pool>" in
        let* conn = require_conn shell in
        let* pool = verr (Ovirt.Storage.lookup_pool conn pool_name) in
        let* vols = verr (Ovirt.Storage.list_volumes pool) in
        let buf = Buffer.create 128 in
        Buffer.add_string buf (Printf.sprintf " %-16s %-12s %s\n" "Name" "Capacity" "Path");
        List.iter
          (fun v ->
            Buffer.add_string buf
              (Printf.sprintf " %-16s %-12d %s\n" v.Ovirt.Storage_backend.vol_name
                 v.Ovirt.Storage_backend.vol_capacity_b
                 v.Ovirt.Storage_backend.vol_key))
          vols;
        Ok (Buffer.contents buf));
  ]

(* Fold --timeout into the connection URI as the remote driver's
   timeout= parameter (local drivers just ignore it). *)
let with_timeout uri timeout =
  match timeout with
  | None -> uri
  | Some t ->
    uri ^ (if String.contains uri '?' then "&" else "?") ^ "timeout=" ^ t

let () =
  let argv = Array.to_list Sys.argv in
  let rec parse_opts uri timeout = function
    | "-c" :: u :: rest -> parse_opts (Some u) timeout rest
    | "--timeout" :: t :: rest -> parse_opts uri (Some t) rest
    | rest -> (uri, timeout, rest)
  in
  let uri, timeout, rest =
    match argv with _ :: rest -> parse_opts None None rest | [] -> (None, None, [])
  in
  (match timeout with
   | Some t when float_of_string_opt t = None || float_of_string t <= 0. ->
     Printf.eprintf "error: --timeout expects a positive number of seconds\n";
     exit 1
   | Some _ | None -> ());
  let uri = Option.map (fun u -> with_timeout u timeout) uri in
  let shell = { conn = None } in
  (match uri with
   | None -> ()
   | Some uri ->
     (match Ovirt.Connect.open_uri uri with
      | Ok conn -> shell.conn <- Some conn
      | Error err ->
        Printf.eprintf "error: failed to connect to %s: %s\n" uri
          (Ovirt.Verror.to_string err);
        exit 1));
  let commands = commands shell in
  match rest with
  | [] ->
    print_endline "Welcome to ovirsh, the virtualization interactive shell.";
    print_endline "Type 'help' for a command list, 'quit' to leave.\n";
    Ovcli.repl ~commands ~program:"ovirsh" ~prompt:"ovirsh # " stdin stdout
  | tokens ->
    (match Ovcli.run_one ~commands ~program:"ovirsh" tokens with
     | Ok text ->
       print_endline text;
       exit 0
     | Error msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1)
