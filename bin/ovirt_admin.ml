(* ovirt-admin: the virt-admin-like daemon administration shell.
   Usage:  ovirt-admin [-d daemon-name] [-e] [command [args...]]
   The simulated network lives in-process, so -d expects a daemon started
   by this process (as in ovirtd_demo); with -e an embedded demo daemon
   named "ovirtd" is started first, with a few clients connected, so the
   binary is explorable standalone. *)

let ( let* ) = Result.bind
let verr r = Result.map_error Ovirt.Verror.to_string r

type shell = { mutable conn : Ovirt.Admin_client.conn option; daemon : string }

let require_conn shell =
  match shell.conn with
  | Some conn -> Ok conn
  | None ->
    let* conn = verr (Ovirt.Admin_client.connect ~daemon:shell.daemon ()) in
    shell.conn <- Some conn;
    Ok conn

let one_positional args what =
  match args.Ovcli.positional with
  | [ v ] -> Ok v
  | _ -> Error (Printf.sprintf "expected exactly one argument: %s" what)

let server shell name =
  let* conn = require_conn shell in
  verr (Ovirt.Admin_client.lookup_server conn name)

let transport_name = function
  | Ovnet.Transport.Unix_sock -> "unix"
  | Ovnet.Transport.Tcp -> "tcp"
  | Ovnet.Transport.Tls -> "tls"

let format_timestamp seconds =
  let tm = Unix.gmtime (Int64.to_float seconds) in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d+0000" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let commands shell =
  let simple name group args_help summary handler =
    Ovcli.{ name; group; args_help; summary; handler }
  in
  [
    simple "uri" "Connection" "" "print the admin connection target" (fun _ ->
        Ok (Printf.sprintf "%s-admin-sock" shell.daemon));
    simple "uptime" "Monitoring commands" "" "daemon uptime in seconds" (fun _ ->
        let* conn = require_conn shell in
        let* seconds = verr (Ovirt.Admin_client.daemon_uptime_s conn) in
        Ok (Printf.sprintf "%Ld s" seconds));
    simple "srv-list" "Monitoring commands" "" "list available servers on the daemon"
      (fun _ ->
        let* conn = require_conn shell in
        let* servers = verr (Ovirt.Admin_client.list_servers conn) in
        let buf = Buffer.create 64 in
        Buffer.add_string buf " Id   Name\n---------------\n";
        List.iteri
          (fun i name -> Buffer.add_string buf (Printf.sprintf " %-4d %s\n" i name))
          servers;
        Ok (Buffer.contents buf));
    simple "srv-threadpool-info" "Monitoring commands" "<server>"
      "get server workerpool parameters" (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* tp = verr (Ovirt.Admin_client.threadpool_info srv) in
        Ok
          (String.concat "\n"
             [
               Printf.sprintf "%-15s: %d" "minWorkers" tp.Ovirt.Admin_client.tp_min_workers;
               Printf.sprintf "%-15s: %d" "maxWorkers" tp.Ovirt.Admin_client.tp_max_workers;
               Printf.sprintf "%-15s: %d" "nWorkers" tp.Ovirt.Admin_client.tp_n_workers;
               Printf.sprintf "%-15s: %d" "freeWorkers" tp.Ovirt.Admin_client.tp_free_workers;
               Printf.sprintf "%-15s: %d" "prioWorkers" tp.Ovirt.Admin_client.tp_prio_workers;
               Printf.sprintf "%-15s: %d" "jobQueueDepth"
                 tp.Ovirt.Admin_client.tp_job_queue_depth;
               Printf.sprintf "%-15s: %d" "jobQueueLimit"
                 tp.Ovirt.Admin_client.tp_job_queue_limit;
               Printf.sprintf "%-15s: %d" "wallLimitMs"
                 tp.Ovirt.Admin_client.tp_wall_limit_ms;
             ]));
    simple "pool-stats" "Monitoring commands" "<server>"
      "overload counters: shed/expired jobs, stuck workers, live limits"
      (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* ps = verr (Ovirt.Admin_client.pool_stats srv) in
        Ok
          (String.concat "\n"
             [
               Printf.sprintf "%-15s: %d" "jobsDone" ps.Ovirt.Admin_client.ps_jobs_done;
               Printf.sprintf "%-15s: %d" "jobsFailed" ps.Ovirt.Admin_client.ps_jobs_failed;
               Printf.sprintf "%-15s: %d" "jobsShed" ps.Ovirt.Admin_client.ps_jobs_shed;
               Printf.sprintf "%-15s: %d" "jobsExpired"
                 ps.Ovirt.Admin_client.ps_jobs_expired;
               Printf.sprintf "%-15s: %d" "workersStuck"
                 ps.Ovirt.Admin_client.ps_workers_stuck;
               Printf.sprintf "%-15s: %d" "workersStuckNow"
                 ps.Ovirt.Admin_client.ps_workers_stuck_now;
               Printf.sprintf "%-15s: %d" "jobQueueDepth"
                 ps.Ovirt.Admin_client.ps_job_queue_depth;
               Printf.sprintf "%-15s: %d" "jobQueueLimit"
                 ps.Ovirt.Admin_client.ps_job_queue_limit;
               Printf.sprintf "%-15s: %d" "wallLimitMs"
                 ps.Ovirt.Admin_client.ps_wall_limit_ms;
             ]));
    simple "event-stats" "Monitoring commands" ""
      "event replay-ring counters: emitted/replayed/gapped, resumes, occupancy"
      (fun _ ->
        let* conn = require_conn shell in
        let* es = verr (Ovirt.Admin_client.event_stats conn) in
        Ok
          (String.concat "\n"
             [
               Printf.sprintf "%-15s: %d" "nRings" es.Ovirt.Admin_client.es_rings;
               Printf.sprintf "%-15s: %d" "eventsEmitted"
                 es.Ovirt.Admin_client.es_emitted;
               Printf.sprintf "%-15s: %d" "eventsReplayed"
                 es.Ovirt.Admin_client.es_replayed;
               Printf.sprintf "%-15s: %d" "eventsGapped"
                 es.Ovirt.Admin_client.es_gapped;
               Printf.sprintf "%-15s: %d" "eventResumes"
                 es.Ovirt.Admin_client.es_resumes;
               Printf.sprintf "%-15s: %d" "ringOccupancy"
                 es.Ovirt.Admin_client.es_ring_occupancy;
               Printf.sprintf "%-15s: %d" "ringCapacity"
                 es.Ovirt.Admin_client.es_ring_capacity;
               Printf.sprintf "%-15s: %d" "nSubscribers"
                 es.Ovirt.Admin_client.es_subscribers;
               Printf.sprintf "%-15s: %d" "headSeq"
                 es.Ovirt.Admin_client.es_head_seq;
             ]));
    simple "reply-cache-stats" "Monitoring commands" ""
      "reply-cache counters: hits/misses, invalidations, evictions, bytes"
      (fun _ ->
        let* conn = require_conn shell in
        let* rc = verr (Ovirt.Admin_client.reply_cache_stats conn) in
        Ok
          (String.concat "\n"
             [
               Printf.sprintf "%-15s: %d" "nCaches"
                 rc.Ovirt.Admin_client.rc_caches;
               Printf.sprintf "%-15s: %d" "hits" rc.Ovirt.Admin_client.rc_hits;
               Printf.sprintf "%-15s: %d" "misses"
                 rc.Ovirt.Admin_client.rc_misses;
               Printf.sprintf "%-15s: %d" "insertions"
                 rc.Ovirt.Admin_client.rc_insertions;
               Printf.sprintf "%-15s: %d" "invalidations"
                 rc.Ovirt.Admin_client.rc_invalidations;
               Printf.sprintf "%-15s: %d" "evictions"
                 rc.Ovirt.Admin_client.rc_evictions;
               Printf.sprintf "%-15s: %d" "patchedSends"
                 rc.Ovirt.Admin_client.rc_patched_sends;
               Printf.sprintf "%-15s: %d" "entries"
                 rc.Ovirt.Admin_client.rc_entries;
               Printf.sprintf "%-15s: %d" "bytes" rc.Ovirt.Admin_client.rc_bytes;
               Printf.sprintf "%-15s: %s" "enabled"
                 (if rc.Ovirt.Admin_client.rc_enabled then "yes" else "no");
             ]));
    simple "fleet-status" "Monitoring commands" ""
      "federated control plane: member health, probes, migration totals"
      (fun _ ->
        let* conn = require_conn shell in
        let* fleets = verr (Ovirt.Admin_client.fleet_status conn) in
        if fleets = [] then Ok "no fleets hosted by this daemon"
        else begin
          let buf = Buffer.create 256 in
          List.iter
            (fun fs ->
              Buffer.add_string buf
                (Printf.sprintf
                   "fleet %s: %d member%s  migrations active: %d  recovered: \
                    %d  rolled back: %d\n"
                   fs.Ovirt.Driver.fs_fleet
                   (List.length fs.Ovirt.Driver.fs_members)
                   (if List.length fs.Ovirt.Driver.fs_members = 1 then ""
                    else "s")
                   fs.Ovirt.Driver.fs_migrations_active
                   fs.Ovirt.Driver.fs_migrations_recovered
                   fs.Ovirt.Driver.fs_migrations_rolled_back);
              Buffer.add_string buf
                (Printf.sprintf " %-20s %-10s %-8s %-9s %s\n" "Member" "Health"
                   "Probes" "Failures" "Domains");
              List.iter
                (fun m ->
                  Buffer.add_string buf
                    (Printf.sprintf " %-20s %-10s %-8d %-9d %s\n"
                       m.Ovirt.Driver.ms_name
                       (Ovirt.Driver.member_health_name m.Ovirt.Driver.ms_health)
                       m.Ovirt.Driver.ms_probes m.Ovirt.Driver.ms_failures
                       (if m.Ovirt.Driver.ms_domains < 0 then "-"
                        else string_of_int m.Ovirt.Driver.ms_domains)))
                fs.Ovirt.Driver.fs_members)
            fleets;
          Ok (Buffer.contents buf)
        end);
    simple "reconcile-status" "Monitoring commands" ""
      "reconciler convergence: declared specs vs actual fleet state"
      (fun _ ->
        let* conn = require_conn shell in
        let* summary, rows = verr (Ovirt.Admin_client.reconcile_status conn) in
        let buf = Buffer.create 256 in
        Buffer.add_string buf
          (Printf.sprintf
             "specs: %d  converged: %d  pending: %d  diverged: %d\n"
             summary.Ovirt.Reconcile.sum_specs
             summary.Ovirt.Reconcile.sum_converged
             summary.Ovirt.Reconcile.sum_pending
             summary.Ovirt.Reconcile.sum_diverged);
        Buffer.add_string buf
          (Printf.sprintf
             "plans: %d  ops applied: %d  skipped: %d  failed: %d%s\n"
             summary.Ovirt.Reconcile.sum_plans
             summary.Ovirt.Reconcile.sum_ops_applied
             summary.Ovirt.Reconcile.sum_ops_skipped
             summary.Ovirt.Reconcile.sum_ops_failed
             (if summary.Ovirt.Reconcile.sum_resumed then
                "  (resumed an interrupted plan)"
              else ""));
        if rows <> [] then begin
          Buffer.add_string buf
            (Printf.sprintf " %-20s %-10s %-8s %s\n" "Name" "Status" "Attempts"
               "Policy");
          List.iter
            (fun r ->
              Buffer.add_string buf
                (Printf.sprintf " %-20s %-10s %-8d %s%s\n"
                   r.Ovirt.Reconcile.ds_name
                   (Ovirt.Reconcile.status_name r.Ovirt.Reconcile.ds_status)
                   r.Ovirt.Reconcile.ds_attempts
                   (Ovirt.Dompolicy.to_string r.Ovirt.Reconcile.ds_policy)
                   (if r.Ovirt.Reconcile.ds_last_error = "" then ""
                    else " [" ^ r.Ovirt.Reconcile.ds_last_error ^ "]")))
            rows
        end;
        Ok (Buffer.contents buf));
    simple "pool-set" "Management commands"
      "<server> [--queue-limit N] [--wall-limit-ms N]"
      "tune overload protection: admission bound and stuck-worker wall limit"
      (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* job_queue_limit = Ovcli.int_flag args "queue-limit" in
        let* wall_limit_ms = Ovcli.int_flag args "wall-limit-ms" in
        let* () =
          verr
            (Ovirt.Admin_client.set_threadpool srv ?job_queue_limit ?wall_limit_ms
               ())
        in
        Ok "overload parameters updated");
    simple "srv-threadpool-set" "Management commands"
      "<server> [--min-workers N] [--max-workers N] [--prio-workers N]"
      "set server workerpool parameters" (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* min_workers = Ovcli.int_flag args "min-workers" in
        let* max_workers = Ovcli.int_flag args "max-workers" in
        let* prio_workers = Ovcli.int_flag args "prio-workers" in
        let* () =
          verr
            (Ovirt.Admin_client.set_threadpool srv ?min_workers ?max_workers
               ?prio_workers ())
        in
        Ok "threadpool parameters updated");
    simple "srv-clients-info" "Monitoring commands" "<server>"
      "get server client-processing controls" (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* cl = verr (Ovirt.Admin_client.client_limits srv) in
        Ok
          (String.concat "\n"
             [
               Printf.sprintf "%-24s: %d" "nclients_max" cl.Ovirt.Admin_client.nclients_max;
               Printf.sprintf "%-24s: %d" "nclients_current"
                 cl.Ovirt.Admin_client.nclients_current;
               Printf.sprintf "%-24s: %d" "nclients_unauth_max"
                 cl.Ovirt.Admin_client.nclients_unauth_max;
               Printf.sprintf "%-24s: %d" "nclients_unauth_current"
                 cl.Ovirt.Admin_client.nclients_unauth_current;
             ]));
    simple "srv-clients-set" "Management commands"
      "<server> [--max-clients N] [--max-unauth-clients N]"
      "set server client-processing controls" (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* max_clients = Ovcli.int_flag args "max-clients" in
        let* max_unauth = Ovcli.int_flag args "max-unauth-clients" in
        let* () =
          verr (Ovirt.Admin_client.set_client_limits srv ?max_clients ?max_unauth ())
        in
        Ok "client limits updated");
    simple "srv-clients-list" "Monitoring commands" "<server>"
      "list clients connected to a server" (fun args ->
        let* name = one_positional args "<server>" in
        let* srv = server shell name in
        let* clients = verr (Ovirt.Admin_client.list_clients srv) in
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf " %-5s %-10s %s\n" "Id" "Transport" "Connected since");
        Buffer.add_string buf "--------------------------------------------\n";
        List.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf " %-5Ld %-10s %s\n" c.Ovirt.Admin_client.cl_id
                 (transport_name c.Ovirt.Admin_client.cl_transport)
                 (format_timestamp c.Ovirt.Admin_client.cl_connected_since)))
          clients;
        Ok (Buffer.contents buf));
    simple "client-info" "Monitoring commands" "<id> --server <server>"
      "retrieve a client's identity from a server" (fun args ->
        let* id_str = one_positional args "<id>" in
        let* id =
          match Int64.of_string_opt id_str with
          | Some id -> Ok id
          | None -> Error "client id must be an integer"
        in
        let* server_name =
          match Ovcli.flag args "server" with
          | Some s -> Ok s
          | None -> Error "--server <server> is required"
        in
        let* srv = server shell server_name in
        let* params = verr (Ovirt.Admin_client.client_identity srv id) in
        let buf = Buffer.create 128 in
        List.iter
          (fun (field, value) ->
            let text =
              match value with
              | Ovrpc.Typed_params.P_int n | Ovrpc.Typed_params.P_uint n ->
                string_of_int n
              | Ovrpc.Typed_params.P_llong n | Ovrpc.Typed_params.P_ullong n ->
                Int64.to_string n
              | Ovrpc.Typed_params.P_double f -> string_of_float f
              | Ovrpc.Typed_params.P_bool b -> if b then "yes" else "no"
              | Ovrpc.Typed_params.P_string s -> s
            in
            Buffer.add_string buf (Printf.sprintf "%-18s: %s\n" field text))
          params;
        Ok (Buffer.contents buf));
    simple "client-disconnect" "Management commands" "<id> --server <server>"
      "forcefully disconnect a client" (fun args ->
        let* id_str = one_positional args "<id>" in
        let* id =
          match Int64.of_string_opt id_str with
          | Some id -> Ok id
          | None -> Error "client id must be an integer"
        in
        let* server_name =
          match Ovcli.flag args "server" with
          | Some s -> Ok s
          | None -> Error "--server <server> is required"
        in
        let* srv = server shell server_name in
        let* () = verr (Ovirt.Admin_client.client_disconnect srv id) in
        Ok (Printf.sprintf "client %Ld disconnected from %s" id server_name));
    simple "dmn-drain" "Management commands" ""
      "gracefully shut the daemon down (finish in-flight work, then stop)"
      (fun _ ->
        let* conn = require_conn shell in
        let* () = verr (Ovirt.Admin_client.drain conn) in
        shell.conn <- None;
        Ok "daemon draining: new connections refused, in-flight work finishing");
    simple "dmn-log-info" "Monitoring commands" "" "view daemon logging settings"
      (fun _ ->
        let* conn = require_conn shell in
        let* level = verr (Ovirt.Admin_client.get_logging_level conn) in
        let* filters = verr (Ovirt.Admin_client.get_logging_filters conn) in
        let* outputs = verr (Ovirt.Admin_client.get_logging_outputs conn) in
        Ok
          (String.concat "\n"
             [
               "Logging level: " ^ Vlog.priority_name level;
               "Logging filters: " ^ filters;
               "Logging outputs: " ^ outputs;
             ]));
    simple "dmn-log-define" "Management commands"
      "[--level N] [--filters \"...\"] [--outputs \"...\"]"
      "change daemon logging settings" (fun args ->
        let* conn = require_conn shell in
        let* level = Ovcli.int_flag args "level" in
        let* () =
          match level with
          | None -> Ok ()
          | Some n -> verr (Ovirt.Admin_client.set_logging_level_raw conn n)
        in
        let* () =
          match Ovcli.flag args "filters" with
          | None -> Ok ()
          | Some filters -> verr (Ovirt.Admin_client.set_logging_filters conn filters)
        in
        let* () =
          match Ovcli.flag args "outputs" with
          | None -> Ok ()
          | Some outputs -> verr (Ovirt.Admin_client.set_logging_outputs conn outputs)
        in
        Ok "logging settings updated");
  ]

let start_embedded_daemon () =
  let daemon = Ovirt.Daemon.start ~name:"ovirtd" () in
  (* A few clients so the monitoring commands have something to show. *)
  let open_client transport =
    match
      Ovirt.Connect.open_uri (Printf.sprintf "test+%s:///default" transport)
    with
    | Ok conn -> Some conn
    | Error _ -> None
  in
  let clients = List.filter_map open_client [ "unix"; "tls"; "tcp" ] in
  Printf.printf "embedded daemon %S started with %d demo clients\n\n" "ovirtd"
    (List.length clients);
  daemon

let () =
  let argv = Array.to_list Sys.argv in
  let daemon, embedded, rest =
    match argv with
    | _ :: "-d" :: name :: rest -> (name, false, rest)
    | _ :: "-e" :: rest -> ("ovirtd", true, rest)
    | _ :: rest -> ("ovirtd", false, rest)
    | [] -> ("ovirtd", false, [])
  in
  let _embedded_daemon = if embedded then Some (start_embedded_daemon ()) else None in
  let shell = { conn = None; daemon } in
  let commands = commands shell in
  match rest with
  | [] ->
    print_endline "Welcome to ovirt-admin, the daemon administration shell.";
    print_endline "Type 'help' for a command list, 'quit' to leave.\n";
    Ovcli.repl ~commands ~program:"ovirt-admin" ~prompt:"ovirt-admin # " stdin stdout
  | tokens ->
    (match Ovcli.run_one ~commands ~program:"ovirt-admin" tokens with
     | Ok text ->
       print_endline text;
       exit 0
     | Error msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1)
