(* Benchmark plumbing: a Bechamel-based point measurement (one
   Test.make per measured cell), wall-clock throughput runs for the
   concurrency figures, and paper-style table rendering. *)

open Bechamel
open Toolkit

(* Estimated ns/run for [f], via Bechamel OLS over monotonic-clock
   samples.  Each call creates its own [Test.make]. *)
let measure_ns ?(quota = 0.2) name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let elt =
    match Test.elements test with
    | [ elt ] -> elt
    | _ -> invalid_arg "measure_ns: single-element test expected"
  in
  let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
  let ols =
    Analyze.one
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  match Analyze.OLS.estimates ols with
  | Some [ estimate ] -> estimate
  | Some _ | None -> nan

(* Wall-clock throughput: run [n_threads] copies of [worker] (each gets
   its thread index) for [duration_s]; each worker bumps the shared
   counter once per completed operation.  Returns ops/second. *)
let measure_throughput ~n_threads ~duration_s worker =
  let ops = Atomic.make 0 in
  let stop = Atomic.make false in
  let threads =
    List.init n_threads (fun i ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              worker i;
              Atomic.incr ops
            done)
          ())
  in
  let t0 = Unix.gettimeofday () in
  Thread.delay duration_s;
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  float_of_int (Atomic.get ops) /. elapsed

(* Wall-clock duration of a single (non-repeatable) action, seconds. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* --- formatting -------------------------------------------------------- *)

let pp_ns ns =
  if Float.is_nan ns then "-"
  else if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
  else if ns < 1_000_000.0 then Printf.sprintf "%.2f us" (ns /. 1_000.0)
  else if ns < 1_000_000_000.0 then Printf.sprintf "%.2f ms" (ns /. 1_000_000.0)
  else Printf.sprintf "%.2f s" (ns /. 1_000_000_000.0)

let pp_ops ops =
  if ops >= 1_000_000.0 then Printf.sprintf "%.2fM" (ops /. 1_000_000.0)
  else if ops >= 1_000.0 then Printf.sprintf "%.1fk" (ops /. 1_000.0)
  else Printf.sprintf "%.0f" ops

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection text = Printf.printf "%s\n" text

(* Render rows of equal length under the given headers. *)
let table headers rows =
  let columns = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> columns then invalid_arg "table: ragged row")
    rows;
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length header) rows)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  print_newline ()

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Ovirt.Verror.to_string e)

let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  Printf.sprintf "%s%d" prefix !fresh_counter
