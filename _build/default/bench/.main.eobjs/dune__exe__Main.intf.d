bench/main.mli:
