bench/main.ml: Array Atomic Bench_util Char Hvsim List Option Ovirt Ovnet Ovrpc Printf Protocol Result Rpc_client String Sys Thread Vlog Vmm Xdr
