bench/bench_util.ml: Analyze Atomic Bechamel Benchmark Float Instance List Measure Ovirt Printf Staged String Test Thread Time Toolkit Unix
