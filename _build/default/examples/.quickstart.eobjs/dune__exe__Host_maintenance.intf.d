examples/host_maintenance.mli:
