examples/troubleshooting_logging.mli:
