examples/monitoring_autoscale.mli:
