examples/monitoring_autoscale.ml: List Ovirt Printf Thread
