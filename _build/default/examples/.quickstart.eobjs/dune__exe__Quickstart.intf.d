examples/quickstart.mli:
