examples/quickstart.ml: List Ovirt Printf String Vmm
