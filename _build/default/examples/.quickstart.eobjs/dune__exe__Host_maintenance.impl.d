examples/host_maintenance.ml: List Option Ovirt Printf String Vmm
