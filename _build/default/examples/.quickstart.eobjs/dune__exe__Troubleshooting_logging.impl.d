examples/troubleshooting_logging.ml: List Ovirt Printf String Vlog
