examples/datacenter_consolidation.ml: Hashtbl List Option Ovirt Printf String Vmm
