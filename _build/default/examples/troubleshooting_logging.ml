(* Troubleshooting a misbehaving domain with runtime logging control.

   A domain misbehaves; only errors are being logged.  Restarting the
   daemon to raise verbosity would destroy the very state being
   debugged — so the administrator raises the level, narrows it with
   filters, redirects output to a file, reproduces the problem, reads the
   log, and restores the original settings, all at runtime.

   Run with:  dune exec examples/troubleshooting_logging.exe *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

let () =
  (* Daemon starts with production logging: errors only, to a file. *)
  let config =
    {
      Ovirt.Daemon_config.default with
      Ovirt.Daemon_config.log_level = Vlog.Error;
      log_outputs =
        (match Vlog.parse_outputs "1:file:/var/log/ovirt/ovirtd.log" with
         | Ok o -> o
         | Error msg -> failwith msg);
    }
  in
  let daemon = Ovirt.Daemon.start ~name:"debugd" ~config () in
  let logger = Ovirt.Daemon.logger daemon in
  let admin = ok (Ovirt.Admin_client.connect ~daemon:"debugd" ()) in

  (* The domain "misbehaves": operations fail, but at level=error the log
     stays silent about the daemon's internal activity. *)
  let conn = ok (Ovirt.Connect.open_uri "test+unix:///default?daemon=debugd") in
  let dom = ok (Ovirt.Domain.lookup_by_name conn "test") in
  (match Ovirt.Domain.resume dom with
   | Ok () -> print_endline "unexpected: resume of a running domain succeeded"
   | Error e -> Printf.printf "domain misbehaves: %s\n" (Ovirt.Verror.to_string e));
  Printf.printf "log after failure at level=error: %d bytes\n"
    (String.length (Vlog.file_contents logger "/var/log/ovirt/ovirtd.log"));

  (* Step 1: inspect current settings. *)
  let level = ok (Ovirt.Admin_client.get_logging_level admin) in
  let outputs = ok (Ovirt.Admin_client.get_logging_outputs admin) in
  Printf.printf "current settings: level=%s outputs=%s\n" (Vlog.priority_name level)
    outputs;

  (* Step 2: raise verbosity, but filter the chatty RPC module down to
     warnings so the interesting subsystems stand out. *)
  ok (Ovirt.Admin_client.set_logging_level admin Vlog.Debug);
  ok (Ovirt.Admin_client.set_logging_filters admin "3:daemon.rpc");
  ok
    (Ovirt.Admin_client.set_logging_outputs admin
       "1:file:/var/log/ovirt/debug.log 3:syslog:ovirtd");
  print_endline "raised verbosity at runtime (no daemon restart)";

  (* Step 3: reproduce the problem. *)
  (match Ovirt.Domain.resume dom with
   | Ok () -> ()
   | Error _ -> ());
  ignore (ok (Ovirt.Connect.list_domains conn));

  (* Step 4: read the evidence from the newly attached output. *)
  let debug_log = Vlog.file_contents logger "/var/log/ovirt/debug.log" in
  Printf.printf "captured %d bytes of debug log; first lines:\n"
    (String.length debug_log);
  String.split_on_char '\n' debug_log
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun line -> if line <> "" then Printf.printf "  | %s\n" line);

  (* Step 5: restore production settings. *)
  ok (Ovirt.Admin_client.set_logging_level admin level);
  ok (Ovirt.Admin_client.set_logging_filters admin "");
  ok (Ovirt.Admin_client.set_logging_outputs admin outputs);
  Printf.printf "restored settings: level=%s filters=%S outputs=%s\n"
    (Vlog.priority_name (ok (Ovirt.Admin_client.get_logging_level admin)))
    (ok (Ovirt.Admin_client.get_logging_filters admin))
    (ok (Ovirt.Admin_client.get_logging_outputs admin));

  Ovirt.Connect.close conn;
  Ovirt.Admin_client.close admin;
  Ovirt.Daemon.stop daemon;
  print_endline "troubleshooting demo done."
