(* Host maintenance with managed save: checkpoint every running domain,
   take the host down for maintenance, bring every domain back exactly
   where it was.

   This is the "tell the management layer the host is shutting down, so
   all virtual machine states are saved and resumed afterwards" workflow —
   the upstream follow-up the administration work called for.  Managed
   save makes it a loop over `Domain.save` / `Domain.restore`; memory
   checksums prove the guests resumed bit-identically.

   Run with:  dune exec examples/host_maintenance.exe *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

let mib n = n * 1024

let guest_checksum conn name =
  (* Reach the live memory image through the migration hooks (the same
     handle migration uses) without moving the domain. *)
  let ops = ok (Ovirt.Connect.ops conn) in
  match ops.Ovirt.Driver.migrate_begin with
  | None -> failwith "driver has no live memory image"
  | Some begin_ ->
    let ms = ok (begin_ name) in
    let sum = Vmm.Guest_image.checksum ms.Ovirt.Driver.mig_image in
    ms.Ovirt.Driver.mig_abort ();
    sum

let () =
  let conn = ok (Ovirt.Connect.open_uri "qemu://maintenance-host/system") in

  (* The host runs a small production workload. *)
  let workload = [ ("web", mib 128); ("db", mib 256); ("cache", mib 64) ] in
  let domains =
    List.map
      (fun (name, memory_kib) ->
        let cfg = Vmm.Vm_config.make ~memory_kib name in
        let dom =
          ok (Ovirt.Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg))
        in
        ok (Ovirt.Domain.create dom);
        dom)
      workload
  in
  (* Let the guests do some work so their memory is distinguishable. *)
  List.iteri
    (fun i (name, _) ->
      let ops = ok (Ovirt.Connect.ops conn) in
      let ms = ok ((Option.get ops.Ovirt.Driver.migrate_begin) name) in
      Vmm.Guest_image.dirty_randomly ms.Ovirt.Driver.mig_image ~rate:0.2
        ~seed:(100 + i);
      ms.Ovirt.Driver.mig_abort ())
    workload;
  let checksums =
    List.map (fun (name, _) -> (name, guest_checksum conn name)) workload
  in
  Printf.printf "running: %s\n"
    (String.concat ", "
       (List.map (fun r -> r.Ovirt.Driver.dom_name) (ok (Ovirt.Connect.list_domains conn))));

  (* --- maintenance window opens: save everything ------------------- *)
  print_endline "maintenance window opens: saving all running domains...";
  List.iter
    (fun dom ->
      ok (Ovirt.Domain.save dom);
      Printf.printf "  saved %-8s (managed-save image: %b)\n"
        (Ovirt.Domain.name dom)
        (ok (Ovirt.Domain.has_managed_save dom)))
    domains;
  Printf.printf "active domains during maintenance: %d\n"
    (List.length (ok (Ovirt.Connect.list_domains conn)));

  (* ... kernel update, cable swap, reboot happens here ... *)
  print_endline "(host maintenance happens)";

  (* --- maintenance done: restore everything ------------------------- *)
  print_endline "restoring all domains...";
  List.iter
    (fun dom ->
      ok (Ovirt.Domain.restore dom);
      Printf.printf "  restored %-8s state=%s\n" (Ovirt.Domain.name dom)
        (Vmm.Vm_state.state_name (ok (Ovirt.Domain.get_state dom))))
    domains;

  (* Prove the guests are exactly where they were. *)
  List.iter
    (fun (name, before) ->
      let after = guest_checksum conn name in
      Printf.printf "  %-8s memory %s\n" name
        (if before = after then "bit-identical" else "CORRUPTED"))
    checksums;
  print_endline "maintenance complete."
