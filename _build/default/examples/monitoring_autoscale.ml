(* Monitoring and autoscaling the daemon itself — the exact scenario that
   motivated the administration interface: a management application wants
   to watch how close the daemon is to its client-connection limit and
   raise limits/workers *before* new clients start being refused, instead
   of editing the config file and restarting.

   Run with:  dune exec examples/monitoring_autoscale.exe *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

(* A deliberately small daemon so the limits are easy to hit. *)
let config =
  {
    Ovirt.Daemon_config.default with
    Ovirt.Daemon_config.max_clients = 8;
    max_anonymous_clients = 8;
    min_workers = 2;
    max_workers = 4;
  }

let watch srv =
  let cl = ok (Ovirt.Admin_client.client_limits srv) in
  let tp = ok (Ovirt.Admin_client.threadpool_info srv) in
  Printf.printf
    "  clients %d/%d (unauth %d/%d)   workers %d (free %d, queue %d)\n"
    cl.Ovirt.Admin_client.nclients_current cl.Ovirt.Admin_client.nclients_max
    cl.Ovirt.Admin_client.nclients_unauth_current
    cl.Ovirt.Admin_client.nclients_unauth_max tp.Ovirt.Admin_client.tp_n_workers
    tp.Ovirt.Admin_client.tp_free_workers tp.Ovirt.Admin_client.tp_job_queue_depth;
  (cl, tp)

let () =
  let daemon = Ovirt.Daemon.start ~name:"autoscaled" ~config () in
  let admin = ok (Ovirt.Admin_client.connect ~daemon:"autoscaled" ()) in
  let srv = ok (Ovirt.Admin_client.lookup_server admin "libvirtd") in

  print_endline "initial state:";
  let _ = watch srv in

  (* Load arrives: six management clients connect and start working. *)
  let clients =
    List.init 6 (fun i ->
        let conn =
          ok (Ovirt.Connect.open_uri "test+unix:///default?daemon=autoscaled")
        in
        Printf.printf "client %d connected\n" (i + 1);
        conn)
  in
  print_endline "under load:";
  let limits, _ = watch srv in

  (* The autoscaling policy: stay at most 75% full, or raise the cap. *)
  if
    limits.Ovirt.Admin_client.nclients_current * 4
    >= limits.Ovirt.Admin_client.nclients_max * 3
  then begin
    let new_max = limits.Ovirt.Admin_client.nclients_max * 2 in
    ok (Ovirt.Admin_client.set_client_limits srv ~max_clients:new_max ~max_unauth:new_max ());
    ok (Ovirt.Admin_client.set_threadpool srv ~max_workers:16 ());
    Printf.printf "autoscaled: max_clients -> %d, max_workers -> 16\n" new_max
  end;
  print_endline "after autoscaling:";
  let _ = watch srv in

  (* More clients now fit comfortably. *)
  let more =
    List.init 4 (fun _ ->
        ok (Ovirt.Connect.open_uri "test+unix:///default?daemon=autoscaled"))
  in
  print_endline "with the extra clients:";
  let _ = watch srv in

  (* An operator can also single out a client and disconnect it. *)
  let listed = ok (Ovirt.Admin_client.list_clients srv) in
  (match listed with
   | victim :: _ ->
     ok (Ovirt.Admin_client.client_disconnect srv victim.Ovirt.Admin_client.cl_id);
     Printf.printf "disconnected client %Ld by administrative action\n"
       victim.Ovirt.Admin_client.cl_id
   | [] -> ());
  Thread.delay 0.05;
  print_endline "after the disconnect:";
  let _ = watch srv in

  List.iter Ovirt.Connect.close (clients @ more);
  Ovirt.Admin_client.close admin;
  Ovirt.Daemon.stop daemon;
  print_endline "autoscale demo done."
