(* Datacenter consolidation: the cost-reduction scenario from the paper's
   motivation — fewer powered hosts through live migration, managed
   uniformly across a heterogeneous fleet.

   Three QEMU nodes run a scattered workload; the example packs every
   domain onto the fewest nodes that fit (first-fit decreasing by memory)
   using live migration, then shows which hosts could be powered off.
   Run with:  dune exec examples/datacenter_consolidation.exe *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

let node_names = [ "rack1-n1"; "rack1-n2"; "rack1-n3" ]

let mib n = n * 1024

(* (domain name, memory KiB, initial node index) *)
let workload =
  [
    ("web-frontend", mib 512, 0);
    ("web-backend", mib 768, 1);
    ("db-primary", mib 2048, 2);
    ("db-replica", mib 2048, 0);
    ("cache", mib 256, 1);
    ("batch-worker-1", mib 384, 2);
    ("batch-worker-2", mib 384, 0);
    ("monitoring", mib 128, 1);
  ]

let connect_node name = ok (Ovirt.Connect.open_uri ("qemu://" ^ name ^ "/system"))

let running_domains conn = ok (Ovirt.Connect.list_domains conn)

let domain_memory conn r =
  let dom = ok (Ovirt.Domain.lookup_by_name conn r.Ovirt.Driver.dom_name) in
  let info = ok (Ovirt.Domain.get_info dom) in
  (dom, info.Ovirt.Driver.di_max_mem_kib)

let print_fleet conns =
  List.iter
    (fun (name, conn) ->
      let doms = running_domains conn in
      let names = List.map (fun r -> r.Ovirt.Driver.dom_name) doms in
      Printf.printf "  %-10s %d domains  [%s]\n" name (List.length doms)
        (String.concat ", " names))
    conns

let () =
  let conns = List.map (fun name -> (name, connect_node name)) node_names in

  (* Deploy the scattered workload. *)
  List.iter
    (fun (dom_name, memory_kib, node_idx) ->
      let _, conn = List.nth conns node_idx in
      let cfg = Vmm.Vm_config.make ~memory_kib ~vcpus:2 dom_name in
      let dom =
        ok (Ovirt.Domain.define_xml conn (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg))
      in
      ok (Ovirt.Domain.create dom))
    workload;
  print_endline "before consolidation:";
  print_fleet conns;

  (* First-fit decreasing: sort all domains by memory, then pack them
     onto the earliest node with room.  The capacity model is the node's
     free memory as the hypervisor reports it via capabilities. *)
  let all_domains =
    List.concat_map
      (fun (node, conn) ->
        List.map (fun r -> (node, conn, domain_memory conn r)) (running_domains conn))
      conns
  in
  let sorted =
    List.sort
      (fun (_, _, (_, m1)) (_, _, (_, m2)) -> compare m2 m1)
      all_domains
  in
  let budget = Hashtbl.create 4 in
  List.iter
    (fun (node, conn, _) ->
      if not (Hashtbl.mem budget node) then begin
        let caps = ok (Ovirt.Connect.capabilities conn) in
        (* Leave 1 GiB headroom for the host itself. *)
        Hashtbl.replace budget node
          (caps.Ovirt.Capabilities.host.Ovirt.Capabilities.host_memory_kib - mib 1024)
      end)
    all_domains;
  let placed = Hashtbl.create 8 in
  List.iter
    (fun (origin, _, (_, memory)) ->
      ignore origin;
      let target =
        List.find_opt
          (fun (node, _) -> Hashtbl.find budget node >= memory)
          conns
      in
      match target with
      | Some (node, _) ->
        Hashtbl.replace budget node (Hashtbl.find budget node - memory);
        Hashtbl.replace placed node (1 + Option.value (Hashtbl.find_opt placed node) ~default:0)
      | None -> failwith "workload does not fit the fleet")
    sorted;

  (* Execute: migrate every domain not already on its target.  Targets
     are recomputed the same way (deterministic), walking the sorted
     list again. *)
  let budget2 = Hashtbl.copy budget in
  ignore budget2;
  Hashtbl.reset budget;
  List.iter
    (fun (node, conn) ->
      ignore conn;
      let caps = ok (Ovirt.Connect.capabilities (List.assoc node conns)) in
      Hashtbl.replace budget node
        (caps.Ovirt.Capabilities.host.Ovirt.Capabilities.host_memory_kib - mib 1024))
    conns;
  let migrations = ref 0 in
  List.iter
    (fun (origin, origin_conn, (dom, memory)) ->
      let target_node, target_conn =
        match
          List.find_opt (fun (node, _) -> Hashtbl.find budget node >= memory) conns
        with
        | Some t -> t
        | None -> failwith "workload does not fit the fleet"
      in
      Hashtbl.replace budget target_node (Hashtbl.find budget target_node - memory);
      if target_node <> origin then begin
        incr migrations;
        let name = Ovirt.Domain.name dom in
        let _dest_dom, stats =
          ok
            (Ovirt.Domain.migrate dom ~dest:target_conn
               ~dirty_hook:(fun _round ->
                 (* The guest keeps working while it moves. *)
                 ())
               ())
        in
        ignore origin_conn;
        Printf.printf "  migrated %-16s %s -> %s (%d pages, %d rounds)\n" name origin
          target_node stats.Ovirt.Domain.pages_transferred stats.Ovirt.Domain.rounds
      end)
    sorted;

  Printf.printf "after consolidation (%d migrations):\n" !migrations;
  print_fleet conns;
  List.iter
    (fun (name, conn) ->
      if running_domains conn = [] then
        Printf.printf "  %s is now empty and can be powered off\n" name)
    conns;
  List.iter (fun (_, conn) -> Ovirt.Connect.close conn) conns;
  print_endline "consolidation done."
