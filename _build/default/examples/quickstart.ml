(* Quickstart: the public API in one sitting.

   Opens a connection, defines a domain from XML, runs it through its
   lifecycle while watching events, and looks at networks and storage.
   Run with:  dune exec examples/quickstart.exe *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

let () =
  (* 1. Connect.  The URI selects the driver; "test" is the in-memory
     mock hypervisor, ideal for experimenting with the API. *)
  let conn = ok (Ovirt.Connect.open_uri "test:///default") in
  Printf.printf "connected via driver %S to host %S\n"
    (Ovirt.Connect.driver_name conn)
    (ok (Ovirt.Connect.hostname conn));

  (* 2. Watch lifecycle events while we work. *)
  let _sub =
    ok
      (Ovirt.Connect.subscribe_events conn (fun ev ->
           Printf.printf "  [event] domain %s: %s\n" ev.Ovirt.Events.domain_name
             (Ovirt.Events.lifecycle_name ev.Ovirt.Events.lifecycle)))
  in

  (* 3. Define a domain from its XML description. *)
  let xml =
    String.concat "\n"
      [
        "<domain type=\"test\">";
        "  <name>quickstart-vm</name>";
        "  <memory unit=\"KiB\">65536</memory>";
        "  <vcpu>2</vcpu>";
        "  <os><type arch=\"x86_64\">hvm</type></os>";
        "  <devices>";
        "    <disk type=\"file\" device=\"disk\">";
        "      <driver name=\"qemu\" type=\"qcow2\"/>";
        "      <source file=\"/var/lib/ovirt/images/quickstart.img\"/>";
        "      <target dev=\"vda\"/>";
        "    </disk>";
        "    <interface type=\"network\">";
        "      <source network=\"default\"/>";
        "      <model type=\"virtio\"/>";
        "    </interface>";
        "  </devices>";
        "</domain>";
      ]
  in
  let dom = ok (Ovirt.Domain.define_xml conn xml) in
  Printf.printf "defined %s (uuid %s)\n" (Ovirt.Domain.name dom)
    (Vmm.Uuid.to_string (Ovirt.Domain.uuid dom));

  (* 4. Lifecycle: start, inspect, suspend/resume, shut down. *)
  ok (Ovirt.Domain.create dom);
  let info = ok (Ovirt.Domain.get_info dom) in
  Printf.printf "running with %d vCPUs, %d KiB\n" info.Ovirt.Driver.di_vcpus
    info.Ovirt.Driver.di_memory_kib;
  ok (Ovirt.Domain.suspend dom);
  ok (Ovirt.Domain.resume dom);
  ok (Ovirt.Domain.shutdown dom);
  Printf.printf "state after shutdown: %s\n"
    (Vmm.Vm_state.state_name (ok (Ovirt.Domain.get_state dom)));

  (* 5. Networks and storage are managed through the same connection. *)
  let nets = ok (Ovirt.Network.list conn) in
  List.iter
    (fun n ->
      Printf.printf "network %-10s bridge=%s range=%s\n" n.Ovirt.Net_backend.net_name
        n.Ovirt.Net_backend.bridge n.Ovirt.Net_backend.ip_range)
    nets;
  let pool = ok (Ovirt.Storage.lookup_pool conn "default") in
  let vol =
    ok
      (Ovirt.Storage.create_volume pool ~name:"quickstart.img"
         ~capacity_b:(1 * 1024 * 1024 * 1024) ~format:"qcow2")
  in
  Printf.printf "created volume %s at %s\n" vol.Ovirt.Storage_backend.vol_name
    vol.Ovirt.Storage_backend.vol_key;

  (* 6. Clean up. *)
  ok (Ovirt.Domain.undefine dom);
  Ovirt.Connect.close conn;
  print_endline "quickstart done."
