(* ovirtd_demo: start the management daemon, exercise it from in-process
   clients (the network is simulated in-process; see DESIGN.md), and dump
   its state — a one-binary demonstration of daemon + remote driver +
   administration interface working together. *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Ovirt.Verror.to_string e)

let () =
  let daemon = Ovirt.Daemon.start ~name:"ovirtd" () in
  Printf.printf "ovirtd started: management at %s, admin at %s\n%!"
    (Ovirt.Daemon.mgmt_address daemon)
    (Ovirt.Daemon.admin_address daemon);

  (* A few clients connect over different transports and manage domains. *)
  let conn_unix = ok (Ovirt.Connect.open_uri "test+unix:///default") in
  let conn_tls = ok (Ovirt.Connect.open_uri "qemu+tls://demohost/system") in
  let cfg = Vmm.Vm_config.make ~memory_kib:(32 * 1024) "demo-vm" in
  let dom =
    ok (Ovirt.Domain.define_xml conn_tls (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg))
  in
  ok (Ovirt.Domain.create dom);
  Printf.printf "defined and started %s through the daemon (tls transport)\n%!"
    (Ovirt.Domain.name dom);

  (* The administrator inspects the daemon at runtime. *)
  let admin = ok (Ovirt.Admin_client.connect ~daemon:"ovirtd" ()) in
  let servers = ok (Ovirt.Admin_client.list_servers admin) in
  Printf.printf "servers on the daemon: %s\n" (String.concat ", " servers);
  let srv = ok (Ovirt.Admin_client.lookup_server admin "libvirtd") in
  let tp = ok (Ovirt.Admin_client.threadpool_info srv) in
  Printf.printf "libvirtd workerpool: min=%d max=%d current=%d free=%d prio=%d\n"
    tp.Ovirt.Admin_client.tp_min_workers tp.Ovirt.Admin_client.tp_max_workers
    tp.Ovirt.Admin_client.tp_n_workers tp.Ovirt.Admin_client.tp_free_workers
    tp.Ovirt.Admin_client.tp_prio_workers;
  let clients = ok (Ovirt.Admin_client.list_clients srv) in
  Printf.printf "connected clients: %d\n" (List.length clients);
  List.iter
    (fun c ->
      Printf.printf "  client %Ld via %s\n" c.Ovirt.Admin_client.cl_id
        (Ovnet.Transport.kind_name c.Ovirt.Admin_client.cl_transport))
    clients;

  (* Runtime reconfiguration: grow the pool, tighten logging. *)
  ok (Ovirt.Admin_client.set_threadpool srv ~max_workers:32 ());
  ok (Ovirt.Admin_client.set_logging_level admin Vlog.Warn);
  ok
    (Ovirt.Admin_client.set_logging_filters admin "1:daemon.admin 4:daemon.rpc");
  Printf.printf "reconfigured: max_workers=32, level=warning, filters=%s\n"
    (ok (Ovirt.Admin_client.get_logging_filters admin));

  Ovirt.Admin_client.close admin;
  Ovirt.Connect.close conn_unix;
  Ovirt.Connect.close conn_tls;
  Ovirt.Daemon.stop daemon;
  print_endline "ovirtd stopped."
