type t = string (* exactly 16 raw bytes *)

let counter = Atomic.make 1

let generate () =
  let n = Atomic.fetch_and_add counter 1 in
  let t = Int64.bits_of_float (Unix.gettimeofday ()) in
  let b = Bytes.create 16 in
  (* Spread counter and clock bits through the bytes with a multiplicative
     hash so consecutive UUIDs differ everywhere. *)
  let h = ref (Int64.logxor t (Int64.of_int (n * 0x9e3779b9))) in
  for i = 0 to 15 do
    h := Int64.add (Int64.mul !h 6364136223846793005L) 1442695040888963407L;
    Bytes.set b i (Char.chr (Int64.to_int (Int64.shift_right_logical !h 56) land 0xff))
  done;
  (* Stamp the version-4 and variant bits so the text form is a valid v4. *)
  Bytes.set b 6 (Char.chr (0x40 lor (Char.code (Bytes.get b 6) land 0x0f)));
  Bytes.set b 8 (Char.chr (0x80 lor (Char.code (Bytes.get b 8) land 0x3f)));
  Bytes.unsafe_to_string b

let to_string u =
  let hex i = Printf.sprintf "%02x" (Char.code u.[i]) in
  String.concat ""
    [ hex 0; hex 1; hex 2; hex 3; "-"; hex 4; hex 5; "-"; hex 6; hex 7; "-";
      hex 8; hex 9; "-"; hex 10; hex 11; hex 12; hex 13; hex 14; hex 15 ]

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_string s =
  let bad () = Error (Printf.sprintf "malformed UUID %S" s) in
  if String.length s <> 36 then bad ()
  else if s.[8] <> '-' || s.[13] <> '-' || s.[18] <> '-' || s.[23] <> '-' then bad ()
  else begin
    let b = Bytes.create 16 in
    let src = ref 0 in
    let ok = ref true in
    for dst = 0 to 15 do
      while !src < 36 && s.[!src] = '-' do incr src done;
      (match hex_value s.[!src], hex_value s.[!src + 1] with
       | Some hi, Some lo -> Bytes.set b dst (Char.chr ((hi lsl 4) lor lo))
       | _ -> ok := false);
      src := !src + 2
    done;
    if !ok then Ok (Bytes.unsafe_to_string b) else bad ()
  end

let equal = String.equal
let compare = String.compare
let pp fmt u = Format.pp_print_string fmt (to_string u)
