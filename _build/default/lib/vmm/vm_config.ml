type disk = {
  source_path : string;
  target_dev : string;
  disk_format : string;
  readonly : bool;
}

type nic = { network : string; mac : string; nic_model : string }
type os_kind = Hvm | Paravirt | Container_exe

type t = {
  name : string;
  uuid : Uuid.t;
  memory_kib : int;
  vcpus : int;
  os : os_kind;
  arch : string;
  disks : disk list;
  nics : nic list;
  features : string list;
}

let os_kind_name = function Hvm -> "hvm" | Paravirt -> "xen" | Container_exe -> "exe"

let os_kind_of_name = function
  | "hvm" -> Ok Hvm
  | "xen" | "linux" -> Ok Paravirt
  | "exe" -> Ok Container_exe
  | s -> Error (Printf.sprintf "unknown OS type %S" s)

let mac_counter = Atomic.make 1

let fresh_mac () =
  let n = Atomic.fetch_and_add mac_counter 1 in
  Printf.sprintf "52:54:00:%02x:%02x:%02x" ((n lsr 16) land 0xff)
    ((n lsr 8) land 0xff) (n land 0xff)

let valid_mac mac =
  let parts = String.split_on_char ':' mac in
  List.length parts = 6
  && List.for_all
       (fun p ->
         String.length p = 2
         && String.for_all
              (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
              p)
       parts

let validate cfg =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if cfg.name = "" then err "domain name must not be empty"
  else if String.exists (fun c -> c = '/' || c = '\n') cfg.name then
    err "domain name %S contains invalid characters" cfg.name
  else if cfg.memory_kib <= 0 then err "memory must be positive"
  else if cfg.vcpus <= 0 then err "vcpus must be positive"
  else if cfg.vcpus > 4096 then err "vcpus %d exceeds supported maximum" cfg.vcpus
  else
    match List.find_opt (fun n -> not (valid_mac n.mac)) cfg.nics with
    | Some n -> err "malformed MAC address %S" n.mac
    | None ->
      let targets = List.map (fun d -> d.target_dev) cfg.disks in
      let rec has_dup = function
        | [] -> None
        | x :: rest -> if List.mem x rest then Some x else has_dup rest
      in
      (match has_dup targets with
       | Some dev -> err "duplicate disk target %S" dev
       | None -> Ok ())

let make ?uuid ?(memory_kib = 64 * 1024) ?(vcpus = 1) ?(os = Hvm) ?(arch = "x86_64")
    ?disks ?nics ?(features = [ "acpi" ]) name =
  let uuid = match uuid with Some u -> u | None -> Uuid.generate () in
  let disks =
    match disks with
    | Some d -> d
    | None ->
      [
        {
          source_path = Printf.sprintf "/var/lib/ovirt/images/%s.img" name;
          target_dev = "vda";
          disk_format = "qcow2";
          readonly = false;
        };
      ]
  in
  let nics =
    match nics with
    | Some n -> n
    | None -> [ { network = "default"; mac = fresh_mac (); nic_model = "virtio" } ]
  in
  let cfg = { name; uuid; memory_kib; vcpus; os; arch; disks; nics; features } in
  match validate cfg with
  | Ok () -> cfg
  | Error msg -> invalid_arg ("Vm_config.make: " ^ msg)

let equal a b =
  a.name = b.name
  && Uuid.equal a.uuid b.uuid
  && a.memory_kib = b.memory_kib
  && a.vcpus = b.vcpus
  && a.os = b.os
  && a.arch = b.arch
  && a.disks = b.disks
  && a.nics = b.nics
  && a.features = b.features

let pp fmt cfg =
  Format.fprintf fmt "<domain %s uuid=%a mem=%dKiB vcpus=%d os=%s>" cfg.name Uuid.pp
    cfg.uuid cfg.memory_kib cfg.vcpus (os_kind_name cfg.os)
