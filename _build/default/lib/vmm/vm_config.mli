(** Domain (virtual machine) configuration.

    The hypervisor-neutral description every driver consumes; the XML form
    lives in [Core.Domxml].  Field names and units follow libvirt:
    memory in KiB, one [<disk>]/[<interface>] element per device. *)

type disk = {
  source_path : string;  (** backing file / volume path *)
  target_dev : string;  (** guest device name, e.g. "vda" *)
  disk_format : string;  (** "raw", "qcow2", ... *)
  readonly : bool;
}

type nic = {
  network : string;  (** virtual network name *)
  mac : string;  (** colon-separated MAC address *)
  nic_model : string;  (** "virtio", "e1000", ... *)
}

(** Guest OS class — decides which drivers can run the domain. *)
type os_kind =
  | Hvm  (** fully virtualized guest (QEMU/KVM, ESX) *)
  | Paravirt  (** paravirtualized kernel (Xen) *)
  | Container_exe  (** an init process, not a kernel (LXC) *)

type t = {
  name : string;
  uuid : Uuid.t;
  memory_kib : int;
  vcpus : int;
  os : os_kind;
  arch : string;
  disks : disk list;
  nics : nic list;
  features : string list;  (** e.g. ["acpi"; "apic"] *)
}

val os_kind_name : os_kind -> string
(** ["hvm"], ["xen"], ["exe"] — libvirt's [<os><type>] values. *)

val os_kind_of_name : string -> (os_kind, string) result

val validate : t -> (unit, string) result
(** Structural checks: non-empty name without path separators, positive
    memory and vcpus, well-formed MACs, unique disk targets. *)

val make :
  ?uuid:Uuid.t ->
  ?memory_kib:int ->
  ?vcpus:int ->
  ?os:os_kind ->
  ?arch:string ->
  ?disks:disk list ->
  ?nics:nic list ->
  ?features:string list ->
  string ->
  t
(** [make name] builds a valid small config (64 MiB, 1 vcpu, hvm, one
    disk, one NIC on network ["default"] with a generated MAC).
    @raise Invalid_argument if the result fails {!validate}. *)

val fresh_mac : unit -> string
(** Locally administered MAC, unique per process. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
