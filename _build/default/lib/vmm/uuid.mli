(** UUIDs in canonical 8-4-4-4-12 hex form, as used to identify domains,
    networks and storage pools. *)

type t

val generate : unit -> t
(** Fresh unique UUID (version-4 layout; uniqueness from a process-wide
    counter mixed with the clock — no cryptographic randomness needed for
    the simulation). *)

val of_string : string -> (t, string) result
(** Accepts canonical form, case-insensitive. *)

val to_string : t -> string
(** Canonical lowercase form. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
