module X = Mini_xml

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let disk_to_element (d : Vm_config.disk) =
  let children =
    [
      X.node (X.elt "driver" ~attrs:[ ("name", "qemu"); ("type", d.disk_format) ] []);
      X.node (X.elt "source" ~attrs:[ ("file", d.source_path) ] []);
      X.node (X.elt "target" ~attrs:[ ("dev", d.target_dev) ] []);
    ]
  in
  let children = if d.readonly then children @ [ X.node (X.elt "readonly" []) ] else children in
  X.elt "disk" ~attrs:[ ("type", "file"); ("device", "disk") ] children

let nic_to_element (n : Vm_config.nic) =
  X.elt "interface" ~attrs:[ ("type", "network") ]
    [
      X.node (X.elt "source" ~attrs:[ ("network", n.network) ] []);
      X.node (X.elt "mac" ~attrs:[ ("address", n.mac) ] []);
      X.node (X.elt "model" ~attrs:[ ("type", n.nic_model) ] []);
    ]

let to_element ~virt_type (cfg : Vm_config.t) =
  X.elt "domain" ~attrs:[ ("type", virt_type) ]
    [
      X.leaf "name" cfg.name;
      X.leaf "uuid" (Uuid.to_string cfg.uuid);
      X.leaf "memory" ~attrs:[ ("unit", "KiB") ] (string_of_int cfg.memory_kib);
      X.leaf "vcpu" (string_of_int cfg.vcpus);
      X.node
        (X.elt "os"
           [
             X.leaf "type"
               ~attrs:[ ("arch", cfg.arch) ]
               (Vm_config.os_kind_name cfg.os);
           ]);
      X.node (X.elt "features" (List.map (fun f -> X.node (X.elt f [])) cfg.features));
      X.node
        (X.elt "devices"
           (List.map (fun d -> X.node (disk_to_element d)) cfg.disks
           @ List.map (fun n -> X.node (nic_to_element n)) cfg.nics));
    ]

let to_xml ~virt_type cfg = X.to_string (to_element ~virt_type cfg)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let disk_of_element e =
  try
    let source = X.child_exn e "source" in
    let target = X.child_exn e "target" in
    let disk_format =
      match X.child e "driver" with
      | Some drv -> Option.value (X.attr drv "type") ~default:"raw"
      | None -> "raw"
    in
    Ok
      Vm_config.
        {
          source_path = X.attr_exn source "file";
          target_dev = X.attr_exn target "dev";
          disk_format;
          readonly = X.child e "readonly" <> None;
        }
  with X.Parse_error msg -> Error ("bad <disk>: " ^ msg)

let nic_of_element e =
  try
    let source = X.child_exn e "source" in
    let nic_model =
      match X.child e "model" with
      | Some m -> Option.value (X.attr m "type") ~default:"virtio"
      | None -> "virtio"
    in
    let mac =
      match X.child e "mac" with
      | Some m -> X.attr_exn m "address"
      | None -> Vm_config.fresh_mac ()
    in
    Ok Vm_config.{ network = X.attr_exn source "network"; mac; nic_model }
  with X.Parse_error msg -> Error ("bad <interface>: " ^ msg)

let rec collect_results = function
  | [] -> Ok []
  | Error e :: _ -> Error e
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)

let of_element root =
  if root.X.tag <> "domain" then
    Error (Printf.sprintf "root element is <%s>, expected <domain>" root.X.tag)
  else
    try
      let virt_type = X.attr_exn root "type" in
      let name = X.text_content (X.child_exn root "name") in
      let* uuid =
        match X.child root "uuid" with
        | Some u -> Uuid.of_string (X.text_content u)
        | None -> Ok (Uuid.generate ())
      in
      let mem_elt = X.child_exn root "memory" in
      let raw_memory = X.int_content_exn mem_elt in
      let memory_kib =
        match X.attr mem_elt "unit" with
        | None | Some "KiB" -> raw_memory
        | Some "MiB" -> raw_memory * 1024
        | Some "GiB" -> raw_memory * 1024 * 1024
        | Some u -> raise (X.Parse_error (Printf.sprintf "unknown memory unit %S" u))
      in
      let vcpus = X.int_content_exn (X.child_exn root "vcpu") in
      let os_elt = X.child_exn (X.child_exn root "os") "type" in
      let* os = Vm_config.os_kind_of_name (X.text_content os_elt) in
      let arch = Option.value (X.attr os_elt "arch") ~default:"x86_64" in
      let features =
        match X.child root "features" with
        | None -> []
        | Some f ->
          List.filter_map
            (function X.Element e -> Some e.X.tag | X.Text _ -> None)
            f.X.children
      in
      let devices = X.child root "devices" in
      let* disks =
        match devices with
        | None -> Ok []
        | Some d -> collect_results (List.map disk_of_element (X.children_named d "disk"))
      in
      let* nics =
        match devices with
        | None -> Ok []
        | Some d ->
          collect_results (List.map nic_of_element (X.children_named d "interface"))
      in
      let cfg =
        Vm_config.{ name; uuid; memory_kib; vcpus; os; arch; disks; nics; features }
      in
      let* () = Vm_config.validate cfg in
      Ok (cfg, virt_type)
    with X.Parse_error msg -> Error msg

let of_xml s =
  match X.of_string s with
  | root -> of_element root
  | exception X.Parse_error msg -> Error ("XML parse error: " ^ msg)
