type t = {
  memory_kib : int;
  pages : Bytes.t; (* page i occupies bytes [i*bpp, (i+1)*bpp) *)
  dirty : Bytes.t; (* one byte per page: 0 clean, 1 dirty *)
  mutable generation : int;
}

(* 1 image byte = 1 KiB of guest memory; a 4 KiB guest page = 4 bytes. *)
let bytes_per_page = 4

let create ~memory_kib =
  if memory_kib <= 0 then invalid_arg "Guest_image.create: memory must be positive";
  let n_pages = (memory_kib + bytes_per_page - 1) / bytes_per_page in
  {
    memory_kib;
    pages = Bytes.make (n_pages * bytes_per_page) '\000';
    dirty = Bytes.make n_pages '\000';
    generation = 0;
  }

let memory_kib img = img.memory_kib
let page_count img = Bytes.length img.dirty

let check_index img i =
  if i < 0 || i >= page_count img then
    invalid_arg (Printf.sprintf "Guest_image: page %d out of range [0,%d)" i (page_count img))

let write_page img i =
  check_index img i;
  img.generation <- img.generation + 1;
  let base = i * bytes_per_page in
  for off = 0 to bytes_per_page - 1 do
    Bytes.set img.pages (base + off)
      (Char.chr ((i + off + img.generation) land 0xff))
  done;
  Bytes.set img.dirty i '\001'

let dirty_pages img =
  let acc = ref [] in
  for i = page_count img - 1 downto 0 do
    if Bytes.get img.dirty i = '\001' then acc := i :: !acc
  done;
  !acc

let dirty_count img =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) img.dirty;
  !n

let dirty_randomly img ~rate ~seed =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  let target = int_of_float (rate *. float_of_int (page_count img)) in
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  let next () =
    (* xorshift32 *)
    let s = !state in
    let s = s lxor (s lsl 13) land 0xffffffff in
    let s = s lxor (s lsr 17) in
    let s = s lxor (s lsl 5) land 0xffffffff in
    state := s;
    s
  in
  let dirtied = ref 0 in
  (* Bounded probing: distinct pages until the target count is reached. *)
  let attempts = ref 0 in
  let max_attempts = 20 * (target + 1) in
  while !dirtied < target && !attempts < max_attempts do
    incr attempts;
    let i = next () mod page_count img in
    if Bytes.get img.dirty i = '\000' then begin
      write_page img i;
      incr dirtied
    end
  done

let read_page img i =
  check_index img i;
  Bytes.sub_string img.pages (i * bytes_per_page) bytes_per_page

let transfer_page img i =
  let data = read_page img i in
  Bytes.set img.dirty i '\000';
  data

let install_page img i data =
  check_index img i;
  if String.length data <> bytes_per_page then
    invalid_arg
      (Printf.sprintf "Guest_image.install_page: %d bytes, expected %d"
         (String.length data) bytes_per_page);
  Bytes.blit_string data 0 img.pages (i * bytes_per_page) bytes_per_page;
  Bytes.set img.dirty i '\000'

let snapshot img = Bytes.to_string img.pages

let restore_from img data =
  if String.length data <> Bytes.length img.pages then
    invalid_arg
      (Printf.sprintf "Guest_image.restore_from: %d bytes, image holds %d"
         (String.length data) (Bytes.length img.pages));
  Bytes.blit_string data 0 img.pages 0 (String.length data);
  Bytes.fill img.dirty 0 (Bytes.length img.dirty) '\000'

let checksum img =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    img.pages;
  !h

let equal_contents a b = Bytes.equal a.pages b.pages
