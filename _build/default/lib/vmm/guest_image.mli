(** Guest memory image: the thing live migration actually moves.

    A running domain owns an image of page-granular memory with dirty
    tracking.  Migration experiments copy these pages for real, so
    "migration time grows with memory size and dirty rate" is a measured
    property, not a modeled one.

    Scale: one image byte represents 1 KiB of guest memory (a 1 GiB guest
    allocates a 1 MiB image), so benchmark sweeps stay laptop-sized while
    preserving linear-in-memory behaviour.  Page size is 4 KiB of guest
    memory = 4 image bytes × {!bytes_per_page} — kept as a named constant
    so the scaling is auditable. *)

type t

val bytes_per_page : int
(** Image bytes per tracked page (4: a 4 KiB guest page at 1:1024). *)

val create : memory_kib:int -> t
(** Allocate and zero the image.  All pages start clean. *)

val memory_kib : t -> int
val page_count : t -> int

val write_page : t -> int -> unit
(** Guest-side write: fills the page with a pattern derived from its index
    and a generation counter, and marks it dirty.
    @raise Invalid_argument on out-of-range index. *)

val dirty_pages : t -> int list
(** Indexes of dirty pages, ascending. *)

val dirty_count : t -> int

val dirty_randomly : t -> rate:float -> seed:int -> unit
(** Deterministic workload: dirties [rate * page_count] distinct pages
    chosen by a seeded generator.  [rate] is clamped to [0, 1]. *)

val read_page : t -> int -> string
(** Copy of the page's bytes (does not clear the dirty bit). *)

val transfer_page : t -> int -> string
(** Copy the page's bytes {e and} clear its dirty bit — the migration
    source primitive. *)

val install_page : t -> int -> string -> unit
(** Migration destination primitive: write received bytes into the page.
    @raise Invalid_argument on size or index mismatch. *)

val snapshot : t -> string
(** All page bytes as one string — the managed-save serialization. *)

val restore_from : t -> string -> unit
(** Overwrite the image with a {!snapshot}'s bytes and mark every page
    clean.  @raise Invalid_argument on a size mismatch. *)

val checksum : t -> int64
(** Content hash of the whole image; equal checksums after migration show
    the copy was faithful. *)

val equal_contents : t -> t -> bool
