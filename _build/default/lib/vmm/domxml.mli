(** Domain XML: the textual interface users define domains with.

    The schema is a faithful subset of libvirt's:

    {v
    <domain type="kvm">
      <name>vm1</name>
      <uuid>aaaa...-....</uuid>
      <memory unit="KiB">65536</memory>
      <vcpu>2</vcpu>
      <os><type arch="x86_64">hvm</type></os>
      <features><acpi/></features>
      <devices>
        <disk type="file" device="disk">
          <driver name="qemu" type="qcow2"/>
          <source file="/var/lib/ovirt/images/vm1.img"/>
          <target dev="vda"/>
        </disk>
        <interface type="network">
          <source network="default"/>
          <mac address="52:54:00:00:00:01"/>
          <model type="virtio"/>
        </interface>
      </devices>
    </domain>
    v} *)

val to_xml : virt_type:string -> Vm_config.t -> string
(** Serialize; [virt_type] fills the [<domain type=...>] attribute
    ("kvm", "xen", "lxc", "vmware", "test"). *)

val of_xml : string -> (Vm_config.t * string, string) result
(** Parse; returns the config and the [type] attribute.  All structural
    and semantic errors (missing elements, bad integers, failed
    {!Vm_config.validate}) are reported as [Error]. *)

val of_element : Mini_xml.element -> (Vm_config.t * string, string) result
(** Same, from an already-parsed element (used by the ESX simulator whose
    SOAP body embeds the domain description). *)

val to_element : virt_type:string -> Vm_config.t -> Mini_xml.element
