(** Domain lifecycle state machine.

    States and transitions follow libvirt's domain model: a domain may
    exist as configuration only ([Shutoff] + defined), run, be paused, be
    in the middle of an orderly shutdown, or have crashed.  Every driver
    funnels its lifecycle changes through {!transition}, so illegal
    sequences (e.g. resuming a shutoff domain) are rejected uniformly. *)

type state =
  | Running
  | Blocked  (** runnable, waiting on a resource (Xen reports this) *)
  | Paused
  | Shutdown  (** orderly shutdown in progress *)
  | Shutoff
  | Crashed

type event =
  | Ev_start
  | Ev_suspend
  | Ev_resume
  | Ev_shutdown_request  (** guest-cooperative shutdown begins *)
  | Ev_shutdown_complete
  | Ev_destroy  (** hard power-off *)
  | Ev_crash
  | Ev_migrate_out  (** domain leaves this host (ends Shutoff) *)

val state_name : state -> string
val state_of_name : string -> (state, string) result
val event_name : event -> string

val transition : state -> event -> (state, string) result
(** [Error] carries an "operation is invalid in state ..." message in
    libvirt's style. *)

val is_active : state -> bool
(** Active = consuming host resources (everything but [Shutoff]). *)
