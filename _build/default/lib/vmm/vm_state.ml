type state = Running | Blocked | Paused | Shutdown | Shutoff | Crashed

type event =
  | Ev_start
  | Ev_suspend
  | Ev_resume
  | Ev_shutdown_request
  | Ev_shutdown_complete
  | Ev_destroy
  | Ev_crash
  | Ev_migrate_out

let state_name = function
  | Running -> "running"
  | Blocked -> "blocked"
  | Paused -> "paused"
  | Shutdown -> "in shutdown"
  | Shutoff -> "shut off"
  | Crashed -> "crashed"

let state_of_name = function
  | "running" -> Ok Running
  | "blocked" -> Ok Blocked
  | "paused" -> Ok Paused
  | "in shutdown" -> Ok Shutdown
  | "shut off" -> Ok Shutoff
  | "crashed" -> Ok Crashed
  | s -> Error (Printf.sprintf "unknown domain state %S" s)

let event_name = function
  | Ev_start -> "start"
  | Ev_suspend -> "suspend"
  | Ev_resume -> "resume"
  | Ev_shutdown_request -> "shutdown"
  | Ev_shutdown_complete -> "shutdown-complete"
  | Ev_destroy -> "destroy"
  | Ev_crash -> "crash"
  | Ev_migrate_out -> "migrate-out"

let invalid state event =
  Error
    (Printf.sprintf "operation %s is invalid: domain is %s" (event_name event)
       (state_name state))

let transition state event =
  match state, event with
  | (Shutoff | Crashed), Ev_start -> Ok Running
  | (Running | Blocked), Ev_suspend -> Ok Paused
  | Paused, Ev_resume -> Ok Running
  | (Running | Blocked), Ev_shutdown_request -> Ok Shutdown
  | (Running | Blocked | Shutdown), Ev_shutdown_complete -> Ok Shutoff
  | (Running | Blocked | Paused | Shutdown | Crashed), Ev_destroy -> Ok Shutoff
  | (Running | Blocked | Paused | Shutdown), Ev_crash -> Ok Crashed
  | (Running | Blocked | Paused), Ev_migrate_out -> Ok Shutoff
  | (Running | Blocked | Paused | Shutdown), Ev_start -> invalid state event
  | (Shutoff | Crashed | Paused | Shutdown), Ev_suspend -> invalid state event
  | (Running | Blocked | Shutoff | Crashed | Shutdown), Ev_resume ->
    invalid state event
  | (Shutoff | Crashed | Paused | Shutdown), Ev_shutdown_request ->
    invalid state event
  | (Shutoff | Crashed | Paused), Ev_shutdown_complete -> invalid state event
  | Shutoff, Ev_destroy -> invalid state event
  | (Shutoff | Crashed), Ev_crash -> invalid state event
  | (Shutoff | Crashed | Shutdown), Ev_migrate_out -> invalid state event

let is_active = function
  | Running | Blocked | Paused | Shutdown | Crashed -> true
  | Shutoff -> false
