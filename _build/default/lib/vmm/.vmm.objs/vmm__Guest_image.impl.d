lib/vmm/guest_image.ml: Bytes Char Float Int64 Printf String
