lib/vmm/uuid.mli: Format
