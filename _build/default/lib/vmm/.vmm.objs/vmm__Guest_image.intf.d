lib/vmm/guest_image.mli:
