lib/vmm/uuid.ml: Atomic Bytes Char Format Int64 Printf String Unix
