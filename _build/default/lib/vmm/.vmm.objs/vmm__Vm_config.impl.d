lib/vmm/vm_config.ml: Atomic Format List Printf String Uuid
