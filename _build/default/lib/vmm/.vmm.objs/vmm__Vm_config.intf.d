lib/vmm/vm_config.mli: Format Uuid
