lib/vmm/domxml.mli: Mini_xml Vm_config
