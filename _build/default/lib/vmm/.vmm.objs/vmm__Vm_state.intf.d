lib/vmm/vm_state.mli:
