lib/vmm/vm_state.ml: Printf
