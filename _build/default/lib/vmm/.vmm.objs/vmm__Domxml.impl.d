lib/vmm/domxml.ml: List Mini_xml Option Printf Result Uuid Vm_config
