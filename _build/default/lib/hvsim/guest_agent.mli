(** In-guest management agent: the {e intrusive} baseline (experiment E7).

    Models the approach the paper's title argues against: a software agent
    installed inside every guest, reached over a guest channel.  Three
    properties of intrusive management are captured physically:

    - {b deployment cost}: {!install} must run once per guest and does
      real work (writes the agent's footprint into guest memory);
    - {b availability}: commands fail unless the guest is {e running} —
      a paused, shut-off or crashed guest has no agent to talk to;
    - {b interference}: every command executes inside the guest, dirtying
      guest pages (visible to migration) — hypervisor-side management
      touches none.

    The wire protocol is QMP-flavoured JSON, parsed for real on both
    sides.  Supported commands: [guest-ping], [guest-info], [guest-exec]
    (arguments: [cmd]), [guest-shutdown]. *)

type endpoint

val create :
  image:Vmm.Guest_image.t ->
  state:(unit -> Vmm.Vm_state.state) ->
  request_shutdown:(unit -> unit) ->
  endpoint
(** Bind the channel to a guest's memory and state; [request_shutdown] is
    invoked when the guest processes [guest-shutdown]. *)

val installed : endpoint -> bool

val install : endpoint -> (unit, string) result
(** One-time in-guest installation; fails unless the guest is running.
    Writes {!install_footprint_pages} pages. *)

val install_footprint_pages : int
val pages_dirtied_per_command : int

val exec : endpoint -> string -> string
(** One agent exchange: JSON request in, JSON reply out.  Errors (agent
    not installed, guest not running, unknown command) come back as
    [{"error": {...}}] — the channel itself never fails. *)

val commands_served : endpoint -> int
