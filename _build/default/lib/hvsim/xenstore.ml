exception Noent of string

type node = {
  mutable value : string option;
  children : (string, node) Hashtbl.t;
}

type watch = { watch_path : string list; callback : string -> unit; id : int }

type t = {
  root : node;
  mutex : Mutex.t;
  mutable watches : watch list;
  mutable next_watch_id : int;
}

let make_node () = { value = None; children = Hashtbl.create 4 }

let create () =
  { root = make_node (); mutex = Mutex.create (); watches = []; next_watch_id = 0 }

let with_lock store f =
  Mutex.lock store.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.mutex) f

let split_path path =
  if path = "/" then []
  else if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Xenstore: path %S must be absolute" path)
  else begin
    let components = String.split_on_char '/' (String.sub path 1 (String.length path - 1)) in
    if List.exists (fun c -> c = "") components then
      invalid_arg (Printf.sprintf "Xenstore: path %S has empty components" path);
    components
  end

let rec find node = function
  | [] -> Some node
  | comp :: rest ->
    (match Hashtbl.find_opt node.children comp with
     | Some child -> find child rest
     | None -> None)

let rec find_or_create node = function
  | [] -> node
  | comp :: rest ->
    let child =
      match Hashtbl.find_opt node.children comp with
      | Some c -> c
      | None ->
        let c = make_node () in
        Hashtbl.add node.children comp c;
        c
    in
    find_or_create child rest

(* [prefix] is a watch path; a change at [path] fires the watch when the
   watch path is a prefix (component-wise) of the changed path. *)
let rec is_prefix prefix path =
  match prefix, path with
  | [], _ -> true
  | p :: ps, q :: qs -> p = q && is_prefix ps qs
  | _ :: _, [] -> false

(* Collect the callbacks under the lock, run them outside it so a watch
   handler may itself touch the store. *)
let fire_watches store changed_components changed_path =
  let to_fire =
    with_lock store (fun () ->
        List.filter (fun w -> is_prefix w.watch_path changed_components) store.watches)
  in
  List.iter (fun w -> w.callback changed_path) to_fire

let write store path value =
  let components = split_path path in
  with_lock store (fun () ->
      let node = find_or_create store.root components in
      node.value <- Some value);
  fire_watches store components path

let read_opt store path =
  let components = split_path path in
  with_lock store (fun () ->
      match find store.root components with
      | Some node -> node.value
      | None -> None)

let read store path =
  match read_opt store path with Some v -> v | None -> raise (Noent path)

let directory store path =
  let components = split_path path in
  with_lock store (fun () ->
      match find store.root components with
      | None -> raise (Noent path)
      | Some node ->
        Hashtbl.fold (fun name _ acc -> name :: acc) node.children []
        |> List.sort compare)

let exists store path =
  let components = split_path path in
  with_lock store (fun () -> find store.root components <> None)

let rm store path =
  let components = split_path path in
  let removed =
    with_lock store (fun () ->
        match List.rev components with
        | [] ->
          (* rm / clears everything *)
          Hashtbl.reset store.root.children;
          store.root.value <- None;
          true
        | last :: rev_parent ->
          let parent_path = List.rev rev_parent in
          (match find store.root parent_path with
           | Some parent when Hashtbl.mem parent.children last ->
             Hashtbl.remove parent.children last;
             true
           | Some _ | None -> false))
  in
  if removed then fire_watches store components path

let watch store path callback =
  let watch_path = split_path path in
  with_lock store (fun () ->
      let w = { watch_path; callback; id = store.next_watch_id } in
      store.next_watch_id <- store.next_watch_id + 1;
      store.watches <- w :: store.watches;
      w)

let unwatch store w =
  with_lock store (fun () ->
      store.watches <- List.filter (fun w' -> w'.id <> w.id) store.watches)

let node_count store =
  let rec count node =
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children 1
  in
  with_lock store (fun () -> count store.root - 1)
