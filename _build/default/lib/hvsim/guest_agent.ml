module J = Mini_json
module Guest_image = Vmm.Guest_image
module Vm_state = Vmm.Vm_state

type endpoint = {
  image : Guest_image.t;
  state : unit -> Vm_state.state;
  request_shutdown : unit -> unit;
  mutable installed : bool;
  mutable served : int;
  mutable next_page : int; (* round-robin page cursor for command work *)
}

let install_footprint_pages = 64
let pages_dirtied_per_command = 4

let create ~image ~state ~request_shutdown =
  { image; state; request_shutdown; installed = false; served = 0; next_page = 0 }

let installed ep = ep.installed

let dirty_pages ep n =
  let count = Guest_image.page_count ep.image in
  for _ = 1 to n do
    Guest_image.write_page ep.image (ep.next_page mod count);
    ep.next_page <- ep.next_page + 7 (* stride avoids re-dirtying one page *)
  done

let install ep =
  match ep.state () with
  | Vm_state.Running | Vm_state.Blocked ->
    if ep.installed then Error "agent is already installed"
    else begin
      dirty_pages ep install_footprint_pages;
      ep.installed <- true;
      Ok ()
    end
  | state ->
    Error
      (Printf.sprintf "cannot install agent: guest is %s" (Vm_state.state_name state))

let reply_ok v = J.to_string (J.Obj [ ("return", v) ])

let reply_error cls desc =
  J.to_string
    (J.Obj [ ("error", J.Obj [ ("class", J.String cls); ("desc", J.String desc) ]) ])

let handle ep cmd request =
  match cmd with
  | "guest-ping" -> reply_ok (J.Obj [])
  | "guest-info" ->
    reply_ok
      (J.Obj
         [
           ("memory-kib", J.Int (Guest_image.memory_kib ep.image));
           ("state", J.String (Vm_state.state_name (ep.state ())));
           ("agent-commands-served", J.Int ep.served);
         ])
  | "guest-exec" ->
    (match J.member_opt "arguments" request with
     | Some args ->
       (match J.member_opt "cmd" args with
        | Some (J.String cmd_line) ->
          (* The command "runs" in the guest: extra dirtying scaled by
             command size, on top of the per-command footprint. *)
          dirty_pages ep (1 + (String.length cmd_line / 32));
          reply_ok (J.Obj [ ("exitcode", J.Int 0); ("cmd", J.String cmd_line) ])
        | Some _ | None -> reply_error "GenericError" "guest-exec requires cmd")
     | None -> reply_error "GenericError" "guest-exec requires arguments")
  | "guest-shutdown" ->
    ep.request_shutdown ();
    reply_ok (J.Obj [])
  | other -> reply_error "CommandNotFound" (Printf.sprintf "command %S not found" other)

let exec ep line =
  match ep.state () with
  | Vm_state.Shutoff | Vm_state.Paused | Vm_state.Crashed | Vm_state.Shutdown ->
    reply_error "GuestUnavailable"
      (Printf.sprintf "guest is %s" (Vm_state.state_name (ep.state ())))
  | Vm_state.Running | Vm_state.Blocked ->
    if not ep.installed then
      reply_error "AgentNotInstalled" "no management agent in this guest"
    else (
      match J.of_string line with
      | exception J.Parse_error msg -> reply_error "JSONParsing" msg
      | request ->
        (match J.member_opt "execute" request with
         | Some (J.String cmd) ->
           ep.served <- ep.served + 1;
           dirty_pages ep pages_dirtied_per_command;
           handle ep cmd request
         | Some _ | None -> reply_error "GenericError" "missing execute key"))

let commands_served ep = ep.served
