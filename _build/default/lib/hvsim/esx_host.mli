(** ESX-like proprietary hypervisor host.

    Models the class of hypervisors that ship their {e own} remote
    management endpoint and keep VM configurations themselves — which is
    why libvirt's ESX driver is {e stateless} and client-side only.  The
    endpoint speaks a SOAP-flavoured XML request/response protocol with
    session authentication; every exchange is real XML text, parsed on
    both sides.

    Request shape: [<request op="..." session="..." name="...">...body...</request>].
    Responses are [<response>...</response>] or [<fault>message</fault>].

    Supported ops: [Login] (body: [<username>], [<password>]), [Logout],
    [ListVMs], [GetVM], [RegisterVM] (body: a [<domain>] document),
    [UnregisterVM], [PowerOnVM], [PowerOffVM], [SuspendVM], [ResumeVM],
    [HostInfo]. *)

type t

val create : ?username:string -> ?password:string -> Hostinfo.t -> t
(** Default credentials: root / "esx". *)

val endpoint_request : t -> string -> string
(** The remote endpoint: XML request in, XML response out.  Never raises;
    protocol errors come back as [<fault>]. *)

val host : t -> Hostinfo.t

val registered_count : t -> int
(** Number of registered VMs (for tests/benchmarks). *)

val session_count : t -> int
(** Currently open sessions. *)
