lib/hvsim/esx_host.ml: Format Fun Hashtbl Hostinfo Mini_xml Mutex Printf Vmm
