lib/hvsim/guest_agent.mli: Vmm
