lib/hvsim/xenstore.ml: Fun Hashtbl List Mutex Printf String
