lib/hvsim/esx_host.mli: Hostinfo
