lib/hvsim/hostinfo.ml: Fun Mutex Printf
