lib/hvsim/qemu_proc.mli: Hostinfo Mini_json Vmm
