lib/hvsim/lxc_host.ml: Fun Hashtbl Hostinfo List Mutex Option Printf Result String Vmm
