lib/hvsim/guest_agent.ml: Mini_json Printf String Vmm
