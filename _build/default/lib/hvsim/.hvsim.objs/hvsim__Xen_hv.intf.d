lib/hvsim/xen_hv.mli: Hostinfo Vmm Xenstore
