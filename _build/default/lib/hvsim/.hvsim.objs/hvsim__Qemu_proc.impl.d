lib/hvsim/qemu_proc.ml: Atomic Fun Hostinfo List Mini_json Mutex Printf Vmm
