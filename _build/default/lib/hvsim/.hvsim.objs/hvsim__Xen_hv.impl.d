lib/hvsim/xen_hv.ml: Fun Hashtbl Hostinfo Int64 List Mutex Printf Result Vmm Xenstore
