lib/hvsim/hostinfo.mli:
