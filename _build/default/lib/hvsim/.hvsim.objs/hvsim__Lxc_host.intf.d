lib/hvsim/lxc_host.mli: Hostinfo Vmm
