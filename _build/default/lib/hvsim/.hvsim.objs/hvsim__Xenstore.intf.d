lib/hvsim/xenstore.mli:
