module X = Mini_xml
module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Guest_image = Vmm.Guest_image

type vm = {
  config : Vm_config.t;
  mutable vm_state : Vm_state.state;
  mutable vm_image : Guest_image.t option; (* Some while active *)
}

type t = {
  hostinfo : Hostinfo.t;
  username : string;
  password : string;
  mutex : Mutex.t;
  vms : (string, vm) Hashtbl.t; (* keyed by name; ESX keeps registrations *)
  sessions : (string, unit) Hashtbl.t;
  mutable next_session : int;
}

let create ?(username = "root") ?(password = "esx") hostinfo =
  {
    hostinfo;
    username;
    password;
    mutex = Mutex.create ();
    vms = Hashtbl.create 16;
    sessions = Hashtbl.create 4;
    next_session = 1;
  }

let host esx = esx.hostinfo

let with_lock esx f =
  Mutex.lock esx.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock esx.mutex) f

let registered_count esx = with_lock esx (fun () -> Hashtbl.length esx.vms)
let session_count esx = with_lock esx (fun () -> Hashtbl.length esx.sessions)

(* ------------------------------------------------------------------ *)
(* Protocol plumbing                                                   *)
(* ------------------------------------------------------------------ *)

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

let state_name = Vm_state.state_name

let vm_summary name vm =
  X.elt "vm"
    ~attrs:
      [
        ("name", name);
        ("uuid", Vmm.Uuid.to_string vm.config.Vm_config.uuid);
        ("state", state_name vm.vm_state);
        ("memoryKiB", string_of_int vm.config.Vm_config.memory_kib);
        ("vcpus", string_of_int vm.config.Vm_config.vcpus);
      ]
    []

let require_session esx req =
  match X.attr req "session" with
  | None -> fault "missing session token"
  | Some token ->
    if not (Hashtbl.mem esx.sessions token) then fault "invalid session token"

let require_name req =
  match X.attr req "name" with
  | Some name -> name
  | None -> fault "missing vm name"

let find_vm esx name =
  match Hashtbl.find_opt esx.vms name with
  | Some vm -> vm
  | None -> fault "no VM named %S" name

let power_transition esx name event =
  let vm = find_vm esx name in
  match Vm_state.transition vm.vm_state event with
  | Error msg -> fault "%s" msg
  | Ok next ->
    (* Resource accounting happens on the activity edges. *)
    (match vm.vm_state, next with
     | Vm_state.Shutoff, _ ->
       (match
          Hostinfo.reserve esx.hostinfo ~memory_kib:vm.config.Vm_config.memory_kib
            ~vcpus:vm.config.Vm_config.vcpus
        with
        | Ok () ->
          vm.vm_image <-
            Some (Guest_image.create ~memory_kib:vm.config.Vm_config.memory_kib)
        | Error msg -> fault "%s" msg)
     | _, Vm_state.Shutoff ->
       Hostinfo.release esx.hostinfo ~memory_kib:vm.config.Vm_config.memory_kib
         ~vcpus:vm.config.Vm_config.vcpus;
       vm.vm_image <- None
     | _, _ -> ());
    vm.vm_state <- next

let handle esx req =
  let op = match X.attr req "op" with Some op -> op | None -> fault "missing op" in
  match op with
  | "Login" ->
    let username = X.text_content (X.child_exn req "username") in
    let password = X.text_content (X.child_exn req "password") in
    if username <> esx.username || password <> esx.password then
      fault "authentication failed for %S" username
    else begin
      let token = Printf.sprintf "sess-%d" esx.next_session in
      esx.next_session <- esx.next_session + 1;
      Hashtbl.replace esx.sessions token ();
      [ X.node (X.elt "session" ~attrs:[ ("token", token) ] []) ]
    end
  | "Logout" ->
    (match X.attr req "session" with
     | Some token -> Hashtbl.remove esx.sessions token
     | None -> fault "missing session token");
    []
  | "HostInfo" ->
    require_session esx req;
    let info = Hostinfo.node_info esx.hostinfo in
    [
      X.node
        (X.elt "host"
           ~attrs:
             [
               ("name", Hostinfo.hostname esx.hostinfo);
               ("memoryKiB", string_of_int info.Hostinfo.memory_kib);
               ("cpus", string_of_int info.Hostinfo.cpus);
             ]
           []);
    ]
  | "ListVMs" ->
    require_session esx req;
    Hashtbl.fold (fun name vm acc -> X.node (vm_summary name vm) :: acc) esx.vms []
  | "GetVM" ->
    require_session esx req;
    let name = require_name req in
    let vm = find_vm esx name in
    [
      X.node (vm_summary name vm);
      X.node (Vmm.Domxml.to_element ~virt_type:"vmware" vm.config);
    ]
  | "RegisterVM" ->
    require_session esx req;
    (match X.child req "domain" with
     | None -> fault "RegisterVM requires a <domain> body"
     | Some dom_elt ->
       (match Vmm.Domxml.of_element dom_elt with
        | Error msg -> fault "bad domain description: %s" msg
        | Ok (config, _virt_type) ->
          if Hashtbl.mem esx.vms config.Vm_config.name then
            fault "VM %S already registered" config.Vm_config.name
          else begin
            Hashtbl.replace esx.vms config.Vm_config.name
              { config; vm_state = Vm_state.Shutoff; vm_image = None };
            [ X.node (vm_summary config.Vm_config.name (find_vm esx config.Vm_config.name)) ]
          end))
  | "UnregisterVM" ->
    require_session esx req;
    let name = require_name req in
    let vm = find_vm esx name in
    if Vm_state.is_active vm.vm_state then
      fault "cannot unregister active VM %S" name
    else begin
      Hashtbl.remove esx.vms name;
      []
    end
  | "PowerOnVM" ->
    require_session esx req;
    power_transition esx (require_name req) Vm_state.Ev_start;
    []
  | "PowerOffVM" ->
    require_session esx req;
    power_transition esx (require_name req) Vm_state.Ev_destroy;
    []
  | "SuspendVM" ->
    require_session esx req;
    power_transition esx (require_name req) Vm_state.Ev_suspend;
    []
  | "ResumeVM" ->
    require_session esx req;
    power_transition esx (require_name req) Vm_state.Ev_resume;
    []
  | op -> fault "unknown operation %S" op

let endpoint_request esx request_xml =
  let response =
    with_lock esx (fun () ->
        match X.of_string request_xml with
        | exception X.Parse_error msg -> X.elt "fault" [ X.text ("XML: " ^ msg) ]
        | req ->
          (match handle esx req with
           | body -> X.elt "response" body
           | exception Fault msg -> X.elt "fault" [ X.text msg ]
           | exception X.Parse_error msg -> X.elt "fault" [ X.text msg ]))
  in
  X.to_string response
