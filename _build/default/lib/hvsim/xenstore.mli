(** Xenstore: the hierarchical key/value store the Xen toolstack uses as
    its control plane.

    Paths are slash-separated ["/local/domain/3/name"]; writing creates
    intermediate directories implicitly; watches fire a callback for every
    change at or below their path (including the firing path), exactly the
    semantics the real store provides. *)

type t

exception Noent of string
(** Path does not exist. *)

val create : unit -> t

val write : t -> string -> string -> unit
(** [write store path value]; creates intermediate nodes.
    @raise Invalid_argument on a malformed path (must start with '/',
    no empty components). *)

val read : t -> string -> string
(** @raise Noent if missing or a directory-only node. *)

val read_opt : t -> string -> string option

val directory : t -> string -> string list
(** Child component names, sorted.  @raise Noent if missing. *)

val rm : t -> string -> unit
(** Remove a subtree.  Removing a missing path is a no-op (real xenstore
    returns ENOENT; tolerating it simplifies teardown paths). *)

val exists : t -> string -> bool

type watch

val watch : t -> string -> (string -> unit) -> watch
(** [watch store path f]: [f changed_path] runs synchronously on every
    write/rm at or below [path]. *)

val unwatch : t -> watch -> unit

val node_count : t -> int
(** Total nodes in the store (metric used by the enumeration bench). *)
