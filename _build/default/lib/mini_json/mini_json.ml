type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail_at pos fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "%s at offset %d" s pos))) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* %.17g roundtrips doubles; strip a trailing "." ambiguity by always
       including enough precision.  Infinities/NaN are not valid JSON, so
       we refuse rather than emit garbage. *)
    if Float.is_nan f || Float.is_integer f && Float.abs f = Float.infinity
    then raise (Parse_error "cannot serialize non-finite float")
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  print_into buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  let rec loop () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      loop ()
    | _ -> ()
  in
  loop ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail_at p.pos "expected '%c', found '%c'" c c'
  | None -> fail_at p.pos "expected '%c', found end of input" c

let expect_keyword p kw =
  let n = String.length kw in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = kw then
    p.pos <- p.pos + n
  else fail_at p.pos "expected keyword %s" kw

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | c -> fail_at pos "invalid hex digit '%c'" c

(* Encode a BMP code point as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail_at p.pos "unterminated string"
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' ->
      advance p;
      (match peek p with
       | None -> fail_at p.pos "unterminated escape"
       | Some c ->
         advance p;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if p.pos + 4 > String.length p.src then
              fail_at p.pos "truncated \\u escape";
            let cp =
              (hex_digit p.pos p.src.[p.pos] lsl 12)
              lor (hex_digit p.pos p.src.[p.pos + 1] lsl 8)
              lor (hex_digit p.pos p.src.[p.pos + 2] lsl 4)
              lor hex_digit p.pos p.src.[p.pos + 3]
            in
            p.pos <- p.pos + 4;
            add_utf8 buf cp
          | c -> fail_at (p.pos - 1) "invalid escape '\\%c'" c));
      loop ()
    | Some c when Char.code c < 0x20 ->
      fail_at p.pos "unescaped control character"
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let accept_digits () =
    let seen = ref false in
    let rec loop () =
      match peek p with
      | Some '0' .. '9' ->
        seen := true;
        advance p;
        loop ()
      | _ -> ()
    in
    loop ();
    if not !seen then fail_at p.pos "expected digit"
  in
  (match peek p with Some '-' -> advance p | _ -> ());
  accept_digits ();
  (match peek p with
   | Some '.' ->
     is_float := true;
     advance p;
     accept_digits ()
   | _ -> ());
  (match peek p with
   | Some ('e' | 'E') ->
     is_float := true;
     advance p;
     (match peek p with Some ('+' | '-') -> advance p | _ -> ());
     accept_digits ()
   | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail_at p.pos "unexpected end of input"
  | Some '"' -> String (parse_string_body p)
  | Some '{' -> parse_obj p
  | Some '[' -> parse_list p
  | Some 't' ->
    expect_keyword p "true";
    Bool true
  | Some 'f' ->
    expect_keyword p "false";
    Bool false
  | Some 'n' ->
    expect_keyword p "null";
    Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail_at p.pos "unexpected character '%c'" c

and parse_obj p =
  expect p '{';
  skip_ws p;
  if peek p = Some '}' then begin
    advance p;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws p;
      let key = parse_string_body p in
      skip_ws p;
      expect p ':';
      let value = parse_value p in
      fields := (key, value) :: !fields;
      skip_ws p;
      match peek p with
      | Some ',' ->
        advance p;
        loop ()
      | Some '}' -> advance p
      | _ -> fail_at p.pos "expected ',' or '}' in object"
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list p =
  expect p '[';
  skip_ws p;
  if peek p = Some ']' then begin
    advance p;
    List []
  end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value p in
      items := v :: !items;
      skip_ws p;
      match peek p with
      | Some ',' ->
        advance p;
        loop ()
      | Some ']' -> advance p
      | _ -> fail_at p.pos "expected ',' or ']' in array"
    in
    loop ();
    List (List.rev !items)
  end

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail_at p.pos "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let shape_error what v =
  raise (Parse_error (Printf.sprintf "expected %s, got %s" what (to_string v)))

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member key v =
  match v with
  | Obj fields ->
    (match List.assoc_opt key fields with
     | Some x -> x
     | None -> raise (Parse_error (Printf.sprintf "missing key %S" key)))
  | v -> shape_error "object" v

let get_string = function String s -> s | v -> shape_error "string" v
let get_int = function Int n -> n | v -> shape_error "int" v
let get_bool = function Bool b -> b | v -> shape_error "bool" v
let get_list = function List l -> l | v -> shape_error "list" v
