(** Minimal JSON codec.

    The QEMU-like monitor protocol (QMP) speaks JSON; this module provides
    the small self-contained codec the simulator needs.  It supports the
    full JSON value grammar with the usual OCaml restrictions: numbers are
    [float] if fractional/exponent form, [int] otherwise; strings support
    the standard escapes plus [\uXXXX] for the BMP (encoded back as UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} on malformed input; the message includes the
    byte offset of the failure. *)

val of_string : string -> t
(** Parse a complete JSON document.  Trailing non-whitespace input is an
    error. *)

val to_string : t -> string
(** Compact (no-whitespace) serialization. *)

val pp : Format.formatter -> t -> unit
(** Same output as {!to_string}. *)

(** {1 Accessors}

    Lookup helpers used by the monitor implementations.  They raise
    {!Parse_error} on shape mismatches so protocol errors carry a message
    instead of a bare [Failure]. *)

val member : string -> t -> t
(** [member k (Obj _)] is the value bound to [k].
    @raise Parse_error if the key is absent or the value is not an object. *)

val member_opt : string -> t -> t option

val get_string : t -> string
val get_int : t -> int
val get_bool : t -> bool
val get_list : t -> t list
