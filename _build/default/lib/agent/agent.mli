(** Intrusive management client: drive guests through in-guest agents.

    The comparison baseline for experiment E7.  Where the non-intrusive
    path asks the {e hypervisor} about a domain, this path asks software
    {e inside} the guest — which first has to be installed, only answers
    while the guest runs, and perturbs the guest while answering.

    Only drivers whose hypervisor exposes a guest channel support it
    (QEMU and the test driver here); on others every call reports
    [Operation_unsupported], mirroring "no VMware-tools / qemu-ga
    available". *)

type guest_info = {
  gi_memory_kib : int;
  gi_state : string;
  gi_commands_served : int;
}

val supported : Ovirt_core.Connect.t -> bool

val install : Ovirt_core.Connect.t -> string -> (unit, Ovirt_core.Verror.t) result
(** One-time per-guest deployment; the cost non-intrusive management
    never pays. *)

val ping : Ovirt_core.Connect.t -> string -> (unit, Ovirt_core.Verror.t) result

val guest_info : Ovirt_core.Connect.t -> string -> (guest_info, Ovirt_core.Verror.t) result
(** The agent's answer to "how is this domain?" — compare with
    [Domain.get_info], the hypervisor's answer. *)

val exec : Ovirt_core.Connect.t -> string -> cmd:string -> (int, Ovirt_core.Verror.t) result
(** Run a command in the guest; returns the exit code. *)

val shutdown : Ovirt_core.Connect.t -> string -> (unit, Ovirt_core.Verror.t) result
(** Agent-mediated clean shutdown. *)

