open Ovirt_core
module J = Mini_json

type guest_info = {
  gi_memory_kib : int;
  gi_state : string;
  gi_commands_served : int;
}

let ( let* ) = Result.bind

let supported conn =
  match Connect.ops conn with
  | Ok ops -> ops.Driver.guest_agent_exec <> None
  | Error _ -> false

let install conn name =
  let* ops = Connect.ops conn in
  match ops.Driver.guest_agent_install with
  | Some f -> f name
  | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"guest agent"

(* One agent exchange: build the JSON envelope, send over the channel,
   classify the reply.  The agent's error classes map onto library error
   codes so callers see the same taxonomy as the non-intrusive path. *)
let agent_call conn name ~cmd ?(args = []) () =
  let* ops = Connect.ops conn in
  let* exec =
    match ops.Driver.guest_agent_exec with
    | Some f -> Ok f
    | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"guest agent"
  in
  let request =
    J.Obj
      (("execute", J.String cmd)
      :: (if args = [] then [] else [ ("arguments", J.Obj args) ]))
  in
  let* reply_line = exec name (J.to_string request) in
  match J.of_string reply_line with
  | exception J.Parse_error msg ->
    Verror.error Verror.Rpc_failure "unparseable agent reply: %s" msg
  | reply ->
    (match J.member_opt "return" reply with
     | Some v -> Ok v
     | None ->
       (match J.member_opt "error" reply with
        | Some err ->
          let desc = J.get_string (J.member "desc" err) in
          let code =
            match J.get_string (J.member "class" err) with
            | "GuestUnavailable" | "AgentNotInstalled" -> Verror.Operation_invalid
            | _ -> Verror.Operation_failed
          in
          Error (Verror.make code desc)
        | None ->
          Verror.error Verror.Rpc_failure "agent reply has neither return nor error"))

let ping conn name =
  let* _ = agent_call conn name ~cmd:"guest-ping" () in
  Ok ()

let guest_info conn name =
  let* ret = agent_call conn name ~cmd:"guest-info" () in
  match
    ( J.member_opt "memory-kib" ret,
      J.member_opt "state" ret,
      J.member_opt "agent-commands-served" ret )
  with
  | Some (J.Int mem), Some (J.String state), Some (J.Int served) ->
    Ok { gi_memory_kib = mem; gi_state = state; gi_commands_served = served }
  | _ -> Verror.error Verror.Rpc_failure "malformed guest-info reply"

let exec conn name ~cmd =
  let* ret = agent_call conn name ~cmd:"guest-exec" ~args:[ ("cmd", J.String cmd) ] () in
  match J.member_opt "exitcode" ret with
  | Some (J.Int code) -> Ok code
  | _ -> Verror.error Verror.Rpc_failure "malformed guest-exec reply"

let shutdown conn name =
  let* _ = agent_call conn name ~cmd:"guest-shutdown" () in
  Ok ()
