(** Workerpool: the daemon's concurrent task-execution engine.

    Reproduces libvirt's threadpool semantics:

    - {e ordinary workers} execute any job; their count floats between
      [min_workers] and [max_workers], growing on demand (a job arrives and
      no worker is free) and shrinking cooperatively when [max_workers] is
      lowered — each worker re-checks the limit when it wakes up and when
      it finishes a job, and exits if the pool is over target.  This is the
      deadlock-free design: no "termination job" is ever queued, so no lock
      ordering problem with the pool lock arises;
    - {e priority workers} are a constant-size set that only executes jobs
      flagged high-priority, guaranteeing that critical control operations
      make progress even when every ordinary worker is stuck on a hanging
      hypervisor call.

    All limits are runtime-adjustable ({!set_limits}), which is what the
    administration interface exposes. *)

type t

type stats = {
  min_workers : int;
  max_workers : int;
  n_workers : int;  (** current ordinary workers, busy + free *)
  free_workers : int;  (** ordinary workers waiting for a job *)
  prio_workers : int;  (** current priority workers *)
  job_queue_depth : int;  (** jobs waiting (both classes) *)
  jobs_completed : int;  (** total jobs finished since creation *)
}

exception Invalid_limits of string
(** Raised by {!create} and {!set_limits} on inconsistent limits
    (e.g. [max_workers < min_workers], negative counts). *)

val create :
  ?name:string -> min_workers:int -> max_workers:int -> prio_workers:int -> unit -> t
(** Start a pool with [min_workers] ordinary workers and [prio_workers]
    priority workers already running. *)

val push : t -> ?priority:bool -> (unit -> unit) -> unit
(** Enqueue a job.  [~priority:true] jobs are eligible for priority
    workers (and are preferred by ordinary workers).  Exceptions escaping
    the job are swallowed and counted ({!failed_jobs}).
    @raise Invalid_limits if the pool has been shut down. *)

val set_limits : t -> ?min_workers:int -> ?max_workers:int -> ?prio_workers:int -> unit -> unit
(** Adjust limits at runtime.  Raising [min_workers] spawns immediately;
    lowering [max_workers] retires surplus workers cooperatively; changing
    [prio_workers] grows or shrinks the priority set. *)

val stats : t -> stats

val failed_jobs : t -> int
(** Jobs whose function raised. *)

val drain : t -> unit
(** Block until the queue is empty and every live worker is idle.
    Intended for tests and benchmarks. *)

val shutdown : t -> unit
(** Ask all workers to exit and wait for them.  Pending jobs are
    discarded.  Subsequent {!push} raises {!Invalid_limits}. *)
