type job = { run : unit -> unit; priority : bool }

type stats = {
  min_workers : int;
  max_workers : int;
  n_workers : int;
  free_workers : int;
  prio_workers : int;
  job_queue_depth : int;
  jobs_completed : int;
}

type t = {
  name : string;
  mutex : Mutex.t;
  cond : Condition.t; (* workers wait here for jobs / limit changes *)
  idle_cond : Condition.t; (* drain/shutdown wait here *)
  normal_queue : job Queue.t;
  prio_queue : job Queue.t;
  mutable min_workers : int;
  mutable max_workers : int;
  mutable prio_target : int;
  mutable n_workers : int; (* live ordinary workers *)
  mutable free_workers : int; (* ordinary workers blocked on [cond] *)
  mutable n_prio : int; (* live priority workers *)
  mutable free_prio : int;
  mutable quit : bool;
  mutable jobs_completed : int;
  mutable jobs_failed : int;
}

exception Invalid_limits of string

let check_limits ~min_workers ~max_workers ~prio_workers =
  if min_workers < 0 then raise (Invalid_limits "min_workers must be >= 0");
  if prio_workers < 0 then raise (Invalid_limits "prio_workers must be >= 0");
  if max_workers < 1 then raise (Invalid_limits "max_workers must be >= 1");
  if max_workers < min_workers then
    raise (Invalid_limits "max_workers must be >= min_workers")

let with_lock pool f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

(* Execute one job outside the pool lock; the caller holds the lock on
   entry and regains it before returning. *)
let run_job pool job =
  Mutex.unlock pool.mutex;
  let failed = try job.run (); false with _ -> true in
  Mutex.lock pool.mutex;
  pool.jobs_completed <- pool.jobs_completed + 1;
  if failed then pool.jobs_failed <- pool.jobs_failed + 1

(* The quit-helper check from the thesis: performed after waking up and
   after finishing a job, never via a queued "poison" task. *)
let ordinary_should_quit pool = pool.quit || pool.n_workers > pool.max_workers
let priority_should_quit pool = pool.quit || pool.n_prio > pool.prio_target

let rec ordinary_loop pool =
  if ordinary_should_quit pool then begin
    pool.n_workers <- pool.n_workers - 1;
    Condition.broadcast pool.idle_cond
  end
  else if not (Queue.is_empty pool.prio_queue) then begin
    run_job pool (Queue.pop pool.prio_queue);
    ordinary_loop pool
  end
  else if not (Queue.is_empty pool.normal_queue) then begin
    run_job pool (Queue.pop pool.normal_queue);
    ordinary_loop pool
  end
  else begin
    pool.free_workers <- pool.free_workers + 1;
    Condition.broadcast pool.idle_cond;
    Condition.wait pool.cond pool.mutex;
    pool.free_workers <- pool.free_workers - 1;
    ordinary_loop pool
  end

let rec priority_loop pool =
  if priority_should_quit pool then begin
    pool.n_prio <- pool.n_prio - 1;
    Condition.broadcast pool.idle_cond
  end
  else if not (Queue.is_empty pool.prio_queue) then begin
    run_job pool (Queue.pop pool.prio_queue);
    priority_loop pool
  end
  else begin
    pool.free_prio <- pool.free_prio + 1;
    Condition.broadcast pool.idle_cond;
    Condition.wait pool.cond pool.mutex;
    pool.free_prio <- pool.free_prio - 1;
    priority_loop pool
  end

(* Spawn helpers: called with the pool lock held.  The worker increments
   were already done by the caller so the accounting is correct even
   before the thread is scheduled. *)
let spawn_ordinary pool =
  pool.n_workers <- pool.n_workers + 1;
  ignore
    (Thread.create
       (fun () ->
         Mutex.lock pool.mutex;
         ordinary_loop pool;
         Mutex.unlock pool.mutex)
       ())

let spawn_priority pool =
  pool.n_prio <- pool.n_prio + 1;
  ignore
    (Thread.create
       (fun () ->
         Mutex.lock pool.mutex;
         priority_loop pool;
         Mutex.unlock pool.mutex)
       ())

let create ?(name = "pool") ~min_workers ~max_workers ~prio_workers () =
  check_limits ~min_workers ~max_workers ~prio_workers;
  let pool =
    {
      name;
      mutex = Mutex.create ();
      cond = Condition.create ();
      idle_cond = Condition.create ();
      normal_queue = Queue.create ();
      prio_queue = Queue.create ();
      min_workers;
      max_workers;
      prio_target = prio_workers;
      n_workers = 0;
      free_workers = 0;
      n_prio = 0;
      free_prio = 0;
      quit = false;
      jobs_completed = 0;
      jobs_failed = 0;
    }
  in
  with_lock pool (fun () ->
      for _ = 1 to min_workers do
        spawn_ordinary pool
      done;
      for _ = 1 to prio_workers do
        spawn_priority pool
      done);
  pool

let push pool ?(priority = false) run =
  with_lock pool (fun () ->
      if pool.quit then
        raise (Invalid_limits (pool.name ^ ": pool has been shut down"));
      Queue.push { run; priority }
        (if priority then pool.prio_queue else pool.normal_queue);
      (* Grow on demand: a job just arrived with nobody free to take it. *)
      let nobody_free =
        if priority then pool.free_workers = 0 && pool.free_prio = 0
        else pool.free_workers = 0
      in
      if nobody_free && pool.n_workers < pool.max_workers then
        spawn_ordinary pool;
      Condition.broadcast pool.cond)

let set_limits pool ?min_workers ?max_workers ?prio_workers () =
  with_lock pool (fun () ->
      let min_workers = Option.value min_workers ~default:pool.min_workers in
      let max_workers = Option.value max_workers ~default:pool.max_workers in
      let prio_workers = Option.value prio_workers ~default:pool.prio_target in
      check_limits ~min_workers ~max_workers ~prio_workers;
      pool.min_workers <- min_workers;
      pool.max_workers <- max_workers;
      pool.prio_target <- prio_workers;
      while pool.n_workers < pool.min_workers do
        spawn_ordinary pool
      done;
      while pool.n_prio < pool.prio_target do
        spawn_priority pool
      done;
      (* Surplus workers (n > max) retire themselves on wakeup. *)
      Condition.broadcast pool.cond)

let stats pool =
  with_lock pool (fun () ->
      {
        min_workers = pool.min_workers;
        max_workers = pool.max_workers;
        n_workers = pool.n_workers;
        free_workers = pool.free_workers;
        prio_workers = pool.n_prio;
        job_queue_depth =
          Queue.length pool.normal_queue + Queue.length pool.prio_queue;
        jobs_completed = pool.jobs_completed;
      })

let failed_jobs pool = with_lock pool (fun () -> pool.jobs_failed)

let drain pool =
  with_lock pool (fun () ->
      while
        (not (Queue.is_empty pool.normal_queue))
        || (not (Queue.is_empty pool.prio_queue))
        || pool.free_workers < pool.n_workers
        || pool.free_prio < pool.n_prio
      do
        Condition.wait pool.idle_cond pool.mutex
      done)

let shutdown pool =
  with_lock pool (fun () ->
      pool.quit <- true;
      Queue.clear pool.normal_queue;
      Queue.clear pool.prio_queue;
      Condition.broadcast pool.cond;
      while pool.n_workers > 0 || pool.n_prio > 0 do
        Condition.broadcast pool.cond;
        Condition.wait pool.idle_cond pool.mutex
      done)
