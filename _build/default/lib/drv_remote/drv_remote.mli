(** Remote driver: the hypervisor-agnostic tunnel through the daemon.

    Selected when a connection URI carries a [+transport] suffix
    ([qemu+tls://node/system], [xen+unix:///]) — exactly libvirt's rule
    that the remote driver accepts what no client-side driver claimed.
    Supported transports: [unix] (default for local daemons), [tcp],
    [tls], and [ssh] (modelled as a tunnel terminating at the daemon's
    unix socket).

    The daemon to contact is named by the [?daemon=<name>] URI parameter
    (default ["ovirtd"]); the URI forwarded to the daemon keeps its
    scheme, host and path, so the daemon opens the matching direct driver
    in-process.

    Lifecycle events stream back as RPC event packets and feed the
    connection's local event bus transparently. *)

val register : unit -> unit
(** Register last: its probe accepts any transport-suffixed URI. *)
