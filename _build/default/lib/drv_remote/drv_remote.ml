open Ovirt_core
module Rp = Protocol.Remote_protocol
module Transport = Ovnet.Transport

let ( let* ) = Result.bind

let default_daemon = "ovirtd"

let kind_of_transport = function
  | "unix" | "ssh" | "libssh2" -> Ok Transport.Unix_sock
  | "tcp" -> Ok Transport.Tcp
  | "tls" -> Ok Transport.Tls
  | t -> Verror.error Verror.Invalid_arg "unsupported transport %S" t

(* The URI handed to the daemon: transport stripped, local parameters
   (daemon selection) removed. *)
let daemon_side_uri uri =
  {
    uri with
    Vuri.transport = None;
    params = List.filter (fun (k, _) -> k <> "daemon") uri.Vuri.params;
  }

type remote_conn = { rpc : Rpc_client.t; events : Events.bus }

let call conn proc body =
  Rpc_client.call conn.rpc ~procedure:(Rp.proc_to_int proc) ~body ()

let call_unit conn proc body =
  let* reply = call conn proc body in
  match Rp.dec_unit_body reply with
  | () -> Ok ()
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

let decode decoder reply =
  match decoder reply with
  | v -> Ok v
  | exception Xdr.Error msg -> Verror.error Verror.Rpc_failure "bad reply: %s" msg

let call_dec conn proc body decoder =
  let* reply = call conn proc body in
  decode decoder reply

(* ------------------------------------------------------------------ *)
(* Connection establishment                                            *)
(* ------------------------------------------------------------------ *)

let open_conn uri =
  let* transport =
    match uri.Vuri.transport with
    | Some t -> Ok t
    | None -> Verror.error Verror.Internal_error "remote driver probed without transport"
  in
  let* kind = kind_of_transport transport in
  let daemon = Option.value (Vuri.param uri "daemon") ~default:default_daemon in
  let events = Events.create_bus () in
  let on_event ~procedure body =
    if procedure = Rp.proc_to_int Rp.Proc_event_lifecycle then
      match Rp.dec_lifecycle_event body with
      | ev -> Events.emit events ~domain_name:ev.Events.domain_name ev.Events.lifecycle
      | exception Xdr.Error _ -> ()
  in
  let* rpc =
    Rpc_client.connect ~address:(daemon ^ "-sock") ~kind ~program:Rp.program
      ~version:Rp.version ~on_event ()
  in
  let conn = { rpc; events } in
  let forwarded = Vuri.to_string (daemon_side_uri uri) in
  let* () = call_unit conn Rp.Proc_open (Rp.enc_string_body forwarded) in
  let* () = call_unit conn Rp.Proc_event_register Rp.enc_unit_body in
  Ok conn

let close_conn conn =
  (* Best effort: the daemon also cleans up on disconnect. *)
  ignore (call conn Rp.Proc_close Rp.enc_unit_body);
  Rpc_client.close conn.rpc

(* ------------------------------------------------------------------ *)
(* Driver operations over the wire                                     *)
(* ------------------------------------------------------------------ *)

let get_capabilities conn () =
  match call_dec conn Rp.Proc_get_capabilities Rp.enc_unit_body Rp.dec_string_body with
  | Ok xml ->
    (match Capabilities.of_xml xml with
     | Ok caps -> caps
     | Error msg ->
       Verror.raise_err Verror.Rpc_failure "bad capabilities from daemon: %s" msg)
  | Error err -> raise (Verror.Virt_error err)

let get_hostname conn () =
  match call_dec conn Rp.Proc_get_hostname Rp.enc_unit_body Rp.dec_string_body with
  | Ok hostname -> hostname
  | Error err -> raise (Verror.Virt_error err)

let remote_net_ops conn =
  Driver.
    {
      net_define =
        (fun ~name ~bridge ~ip_range ->
          call_dec conn Rp.Proc_net_define
            (Rp.enc_net_define ~name ~bridge ~ip_range)
            Rp.dec_net_info);
      net_undefine =
        (fun name -> call_unit conn Rp.Proc_net_undefine (Rp.enc_string_body name));
      net_start =
        (fun name -> call_unit conn Rp.Proc_net_start (Rp.enc_string_body name));
      net_stop =
        (fun name -> call_unit conn Rp.Proc_net_stop (Rp.enc_string_body name));
      net_set_autostart =
        (fun name v ->
          call_unit conn Rp.Proc_net_set_autostart (Rp.enc_name_and_bool name v));
      net_lookup =
        (fun name ->
          call_dec conn Rp.Proc_net_lookup (Rp.enc_string_body name) Rp.dec_net_info);
      net_list =
        (fun () ->
          call_dec conn Rp.Proc_net_list Rp.enc_unit_body Rp.dec_net_info_list);
    }

let remote_storage_ops conn =
  Driver.
    {
      pool_define =
        (fun ~name ~target_path ~capacity_b ->
          call_dec conn Rp.Proc_pool_define
            (Rp.enc_pool_define ~name ~target_path ~capacity_b)
            Rp.dec_pool_info);
      pool_undefine =
        (fun name -> call_unit conn Rp.Proc_pool_undefine (Rp.enc_string_body name));
      pool_start =
        (fun name -> call_unit conn Rp.Proc_pool_start (Rp.enc_string_body name));
      pool_stop =
        (fun name -> call_unit conn Rp.Proc_pool_stop (Rp.enc_string_body name));
      pool_lookup =
        (fun name ->
          call_dec conn Rp.Proc_pool_lookup (Rp.enc_string_body name) Rp.dec_pool_info);
      pool_list =
        (fun () ->
          call_dec conn Rp.Proc_pool_list Rp.enc_unit_body Rp.dec_pool_info_list);
      vol_create =
        (fun ~pool ~name ~capacity_b ~format ->
          call_dec conn Rp.Proc_vol_create
            (Rp.enc_vol_create ~pool ~name ~capacity_b ~format)
            Rp.dec_vol_info);
      vol_delete =
        (fun ~pool ~name ->
          call_unit conn Rp.Proc_vol_delete (Rp.enc_vol_ref ~pool ~name));
      vol_list =
        (fun ~pool ->
          call_dec conn Rp.Proc_vol_list (Rp.enc_string_body pool)
            Rp.dec_vol_info_list);
      vol_by_path =
        (fun path ->
          (* Resolution is pool-local on the daemon; emulate with listing. *)
          let* pools =
            call_dec conn Rp.Proc_pool_list Rp.enc_unit_body Rp.dec_pool_info_list
          in
          let rec search = function
            | [] ->
              Verror.error Verror.No_storage_vol "no volume backs path %S" path
            | pool :: rest ->
              let* vols =
                call_dec conn Rp.Proc_vol_list
                  (Rp.enc_string_body pool.Storage_backend.pool_name)
                  Rp.dec_vol_info_list
              in
              (match
                 List.find_opt
                   (fun v -> v.Storage_backend.vol_key = path)
                   vols
               with
               | Some v -> Ok v
               | None -> search rest)
          in
          search pools);
    }

let make_ops uri conn =
  let name_call proc name = call_unit conn proc (Rp.enc_string_body name) in
  Driver.make_ops ~drv_name:"remote"
    ~get_capabilities:(get_capabilities conn)
    ~get_hostname:(get_hostname conn)
    ~close:(fun () -> close_conn conn)
    ~list_domains:(fun () ->
      call_dec conn Rp.Proc_list_domains Rp.enc_unit_body Rp.dec_domain_ref_list)
    ~list_defined:(fun () ->
      call_dec conn Rp.Proc_list_defined Rp.enc_unit_body Rp.dec_string_list)
    ~lookup_by_name:(fun name ->
      call_dec conn Rp.Proc_lookup_by_name (Rp.enc_string_body name) Rp.dec_domain_ref)
    ~lookup_by_uuid:(fun uuid ->
      call_dec conn Rp.Proc_lookup_by_uuid
        (Rp.enc_string_body (Vmm.Uuid.to_string uuid))
        Rp.dec_domain_ref)
    ~define_xml:(fun xml ->
      call_dec conn Rp.Proc_define_xml (Rp.enc_string_body xml) Rp.dec_domain_ref)
    ~undefine:(name_call Rp.Proc_undefine)
    ~dom_create:(name_call Rp.Proc_dom_create)
    ~dom_suspend:(name_call Rp.Proc_dom_suspend)
    ~dom_resume:(name_call Rp.Proc_dom_resume)
    ~dom_shutdown:(name_call Rp.Proc_dom_shutdown)
    ~dom_destroy:(name_call Rp.Proc_dom_destroy)
    ~dom_get_info:(fun name ->
      call_dec conn Rp.Proc_dom_get_info (Rp.enc_string_body name) Rp.dec_domain_info)
    ~dom_get_xml:(fun name ->
      call_dec conn Rp.Proc_dom_get_xml (Rp.enc_string_body name) Rp.dec_string_body)
    ~dom_set_memory:(fun name kib ->
      call_unit conn Rp.Proc_dom_set_memory (Rp.enc_name_and_kib name kib))
    ~dom_save:(name_call Rp.Proc_dom_save)
    ~dom_restore:(name_call Rp.Proc_dom_restore)
    ~dom_has_managed_save:(fun name ->
      call_dec conn Rp.Proc_dom_has_managed_save (Rp.enc_string_body name)
        Rp.dec_bool_body)
    ~net:(remote_net_ops conn) ~storage:(remote_storage_ops conn)
    ~events:conn.events ()
  |> fun ops -> { ops with Driver.drv_name = "remote(" ^ uri.Vuri.scheme ^ ")" }

let probe uri =
  uri.Vuri.transport <> None
  && uri.Vuri.scheme <> "esx" (* ESX manages its own remote protocol *)

let register () =
  Driver.register
    {
      Driver.reg_name = "remote";
      probe;
      open_conn =
        (fun uri ->
          let* conn = open_conn uri in
          Ok (make_ops uri conn));
    }
