lib/core/net_backend.ml: Fun Hashtbl List Mutex Result String Verror Vmm
