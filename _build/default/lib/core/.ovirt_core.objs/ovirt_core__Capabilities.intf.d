lib/core/capabilities.mli: Vmm
