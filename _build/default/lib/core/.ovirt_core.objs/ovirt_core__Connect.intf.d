lib/core/connect.mli: Capabilities Driver Events Verror Vuri
