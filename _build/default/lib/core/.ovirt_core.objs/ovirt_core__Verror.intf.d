lib/core/verror.mli: Format
