lib/core/net_backend.mli: Verror Vmm
