lib/core/events.ml: Fun List Mutex Printf Queue
