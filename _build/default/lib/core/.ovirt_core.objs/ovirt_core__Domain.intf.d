lib/core/domain.mli: Connect Driver Verror Vmm
