lib/core/domain.ml: Connect Driver Events Fun List Result String Verror Vmm
