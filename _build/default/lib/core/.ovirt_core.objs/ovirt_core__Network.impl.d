lib/core/network.ml: Connect Driver Result
