lib/core/vuri.mli: Verror
