lib/core/vuri.ml: Buffer Format List Option Printf Result String Verror
