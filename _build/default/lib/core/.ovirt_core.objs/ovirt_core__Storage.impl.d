lib/core/storage.ml: Connect Driver Result
