lib/core/capabilities.ml: List Mini_xml Result Vmm
