lib/core/storage_backend.mli: Verror Vmm
