lib/core/connect.ml: Driver Events List Result Verror Vuri
