lib/core/driver.ml: Capabilities Events Fun List Mutex Net_backend Option Storage_backend Verror Vmm Vuri
