lib/core/network.mli: Connect Net_backend Verror
