lib/core/driver.mli: Capabilities Events Net_backend Storage_backend Verror Vmm Vuri
