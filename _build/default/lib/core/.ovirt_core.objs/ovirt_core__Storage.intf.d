lib/core/storage.mli: Connect Storage_backend Verror
