lib/core/events.mli:
