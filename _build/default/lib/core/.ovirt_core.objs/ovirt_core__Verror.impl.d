lib/core/verror.ml: Format List Printf Stdlib
