type pool = { conn : Connect.t; p_name : string }

let ( let* ) = Result.bind

let pool_name p = p.p_name

let backend conn =
  let* ops = Connect.ops conn in
  match ops.Driver.storage with
  | Some backend -> Ok backend
  | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"storage pools"

let lookup_pool conn name =
  let* b = backend conn in
  let* _info = b.Driver.pool_lookup name in
  Ok { conn; p_name = name }

let define_pool conn ~name ~target_path ~capacity_b =
  let* b = backend conn in
  let* _info = b.Driver.pool_define ~name ~target_path ~capacity_b in
  Ok { conn; p_name = name }

let list_pools conn =
  let* b = backend conn in
  b.Driver.pool_list ()

let on_backend p f =
  let* b = backend p.conn in
  f b

let pool_info p = on_backend p (fun b -> b.Driver.pool_lookup p.p_name)
let start_pool p = on_backend p (fun b -> b.Driver.pool_start p.p_name)
let stop_pool p = on_backend p (fun b -> b.Driver.pool_stop p.p_name)
let undefine_pool p = on_backend p (fun b -> b.Driver.pool_undefine p.p_name)

let create_volume p ~name ~capacity_b ~format =
  on_backend p (fun b -> b.Driver.vol_create ~pool:p.p_name ~name ~capacity_b ~format)

let delete_volume p ~name =
  on_backend p (fun b -> b.Driver.vol_delete ~pool:p.p_name ~name)

let list_volumes p = on_backend p (fun b -> b.Driver.vol_list ~pool:p.p_name)

let volume_by_path conn path =
  let* b = backend conn in
  b.Driver.vol_by_path path
