(** Connection URIs.

    [driver[+transport]://[user@][host][:port]/path[?k=v&...]] — the
    grammar that selects both the hypervisor driver (scheme) and, when a
    transport suffix or remote host is present, the tunnel through the
    management daemon.  Examples:

    - [test:///default] — in-process mock driver
    - [qemu:///system] — QEMU via the local daemon
    - [qemu+tls://node07/system] — QEMU on a remote node over TLS
    - [esx://root@esx01/?no_verify=1] — stateless ESX driver *)

type t = {
  scheme : string;
  transport : string option;  (** the [+transport] suffix, if any *)
  user : string option;
  host : string option;
  port : int option;
  path : string;  (** always begins with '/'; "/" if empty *)
  params : (string * string) list;  (** query parameters, in order *)
}

val parse : string -> (t, Verror.t) result
(** Errors use code [Invalid_arg]. *)

val to_string : t -> string
(** Canonical form; [parse (to_string u)] = [Ok u] for parsed [u]. *)

val param : t -> string -> string option

val make :
  ?transport:string ->
  ?user:string ->
  ?host:string ->
  ?port:int ->
  ?path:string ->
  ?params:(string * string) list ->
  string ->
  t
(** [make scheme] with default path ["/"]. *)
