type t = { conn : Connect.t; net_name : string }

let ( let* ) = Result.bind

let name net = net.net_name

let backend conn =
  let* ops = Connect.ops conn in
  match ops.Driver.net with
  | Some backend -> Ok backend
  | None -> Driver.unsupported ~drv:ops.Driver.drv_name ~op:"networks"

let lookup conn name =
  let* b = backend conn in
  let* _info = b.Driver.net_lookup name in
  Ok { conn; net_name = name }

let define conn ~name ~bridge ~ip_range =
  let* b = backend conn in
  let* _info = b.Driver.net_define ~name ~bridge ~ip_range in
  Ok { conn; net_name = name }

let list conn =
  let* b = backend conn in
  b.Driver.net_list ()

let on_backend net f =
  let* b = backend net.conn in
  f b

let info net = on_backend net (fun b -> b.Driver.net_lookup net.net_name)
let start net = on_backend net (fun b -> b.Driver.net_start net.net_name)
let stop net = on_backend net (fun b -> b.Driver.net_stop net.net_name)
let undefine net = on_backend net (fun b -> b.Driver.net_undefine net.net_name)

let set_autostart net v =
  on_backend net (fun b -> b.Driver.net_set_autostart net.net_name v)
