(** Storage pool/volume management (public API over the per-driver
    {!Storage_backend}).  Drivers without storage support answer
    [Operation_unsupported]. *)

type pool

val pool_name : pool -> string

val lookup_pool : Connect.t -> string -> (pool, Verror.t) result
val define_pool :
  Connect.t -> name:string -> target_path:string -> capacity_b:int -> (pool, Verror.t) result
val list_pools : Connect.t -> (Storage_backend.pool_info list, Verror.t) result

val pool_info : pool -> (Storage_backend.pool_info, Verror.t) result
val start_pool : pool -> (unit, Verror.t) result
val stop_pool : pool -> (unit, Verror.t) result
val undefine_pool : pool -> (unit, Verror.t) result

val create_volume :
  pool -> name:string -> capacity_b:int -> format:string ->
  (Storage_backend.vol_info, Verror.t) result
val delete_volume : pool -> name:string -> (unit, Verror.t) result
val list_volumes : pool -> (Storage_backend.vol_info list, Verror.t) result
val volume_by_path : Connect.t -> string -> (Storage_backend.vol_info, Verror.t) result
