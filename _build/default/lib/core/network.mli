(** Virtual network management (public API over the per-driver
    {!Net_backend}).  Drivers without network support answer
    [Operation_unsupported]. *)

type t

val name : t -> string

val lookup : Connect.t -> string -> (t, Verror.t) result
val define : Connect.t -> name:string -> bridge:string -> ip_range:string -> (t, Verror.t) result
val list : Connect.t -> (Net_backend.info list, Verror.t) result

val info : t -> (Net_backend.info, Verror.t) result
val start : t -> (unit, Verror.t) result
val stop : t -> (unit, Verror.t) result
val undefine : t -> (unit, Verror.t) result
val set_autostart : t -> bool -> (unit, Verror.t) result
