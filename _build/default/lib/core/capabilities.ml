module X = Mini_xml

type feature =
  | Feat_define
  | Feat_start
  | Feat_suspend
  | Feat_resume
  | Feat_shutdown
  | Feat_destroy
  | Feat_migrate_live
  | Feat_managed_save
  | Feat_set_memory
  | Feat_freeze
  | Feat_console
  | Feat_remote_native
  | Feat_networks
  | Feat_storage_pools

let all_features =
  [
    Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
    Feat_destroy; Feat_migrate_live; Feat_managed_save; Feat_set_memory;
    Feat_freeze;
    Feat_console; Feat_remote_native; Feat_networks; Feat_storage_pools;
  ]

let feature_name = function
  | Feat_define -> "define"
  | Feat_start -> "start"
  | Feat_suspend -> "suspend"
  | Feat_resume -> "resume"
  | Feat_shutdown -> "shutdown"
  | Feat_destroy -> "destroy"
  | Feat_migrate_live -> "migrate-live"
  | Feat_managed_save -> "managed-save"
  | Feat_set_memory -> "set-memory"
  | Feat_freeze -> "freeze"
  | Feat_console -> "console"
  | Feat_remote_native -> "remote-native"
  | Feat_networks -> "networks"
  | Feat_storage_pools -> "storage-pools"

let feature_of_name name =
  List.find_opt (fun f -> feature_name f = name) all_features

type host_summary = {
  host_name : string;
  host_memory_kib : int;
  host_cpus : int;
  host_mhz : int;
  host_arch : string;
}

type t = {
  driver_name : string;
  virt_kind : string;
  stateful : bool;
  guest_os_kinds : Vmm.Vm_config.os_kind list;
  features : feature list;
  host : host_summary;
}

let supports caps feature = List.mem feature caps.features

let to_xml caps =
  let host = caps.host in
  X.to_string
    (X.elt "capabilities"
       [
         X.node
           (X.elt "host"
              [
                X.leaf "name" host.host_name;
                X.leaf "arch" host.host_arch;
                X.leaf "memory" ~attrs:[ ("unit", "KiB") ]
                  (string_of_int host.host_memory_kib);
                X.leaf "cpus" (string_of_int host.host_cpus);
                X.leaf "mhz" (string_of_int host.host_mhz);
              ]);
         X.node
           (X.elt "driver"
              ~attrs:
                [
                  ("name", caps.driver_name);
                  ("kind", caps.virt_kind);
                  ("stateful", if caps.stateful then "yes" else "no");
                ]
              [
                X.node
                  (X.elt "guests"
                     (List.map
                        (fun os -> X.leaf "os" (Vmm.Vm_config.os_kind_name os))
                        caps.guest_os_kinds));
                X.node
                  (X.elt "features"
                     (List.map
                        (fun f -> X.node (X.elt (feature_name f) []))
                        caps.features));
              ]);
       ])

let ( let* ) = Result.bind

let of_xml s =
  match X.of_string s with
  | exception X.Parse_error msg -> Error ("capabilities XML: " ^ msg)
  | root ->
    (try
       let host_elt = X.child_exn root "host" in
       let host =
         {
           host_name = X.text_content (X.child_exn host_elt "name");
           host_arch = X.text_content (X.child_exn host_elt "arch");
           host_memory_kib = X.int_content_exn (X.child_exn host_elt "memory");
           host_cpus = X.int_content_exn (X.child_exn host_elt "cpus");
           host_mhz = X.int_content_exn (X.child_exn host_elt "mhz");
         }
       in
       let drv = X.child_exn root "driver" in
       let* guest_os_kinds =
         X.children_named (X.child_exn drv "guests") "os"
         |> List.map (fun e -> Vmm.Vm_config.os_kind_of_name (X.text_content e))
         |> List.fold_left
              (fun acc r ->
                let* acc = acc in
                let* os = r in
                Ok (os :: acc))
              (Ok [])
         |> Result.map List.rev
       in
       let features =
         (X.child_exn drv "features").X.children
         |> List.filter_map (function
              | X.Element e -> feature_of_name e.X.tag
              | X.Text _ -> None)
       in
       Ok
         {
           driver_name = X.attr_exn drv "name";
           virt_kind = X.attr_exn drv "kind";
           stateful = X.attr_exn drv "stateful" = "yes";
           guest_os_kinds;
           features;
           host;
         }
     with X.Parse_error msg -> Error ("capabilities XML: " ^ msg))
