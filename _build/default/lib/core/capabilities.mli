(** Driver/host capabilities — what the feature-matrix experiment (E1)
    tabulates, and what management applications probe before relying on
    an operation. *)

type feature =
  | Feat_define  (** persistent definitions survive domain shutdown *)
  | Feat_start
  | Feat_suspend
  | Feat_resume
  | Feat_shutdown  (** guest-cooperative shutdown *)
  | Feat_destroy
  | Feat_migrate_live
  | Feat_managed_save  (** checkpoint to disk and resume later *)
  | Feat_set_memory  (** runtime memory balloon / cgroup resize *)
  | Feat_freeze  (** container freeze/thaw *)
  | Feat_console
  | Feat_remote_native  (** hypervisor ships its own remote endpoint *)
  | Feat_networks
  | Feat_storage_pools

val feature_name : feature -> string
val all_features : feature list

type host_summary = {
  host_name : string;
  host_memory_kib : int;
  host_cpus : int;
  host_mhz : int;
  host_arch : string;
}

type t = {
  driver_name : string;  (** "qemu", "xen", "esx", "lxc", "test" *)
  virt_kind : string;  (** "full-virt", "paravirt", "container", "mock" *)
  stateful : bool;  (** true = daemon-side driver keeping domain state *)
  guest_os_kinds : Vmm.Vm_config.os_kind list;
  features : feature list;
  host : host_summary;
}

val supports : t -> feature -> bool

val to_xml : t -> string
(** [<capabilities>] document, libvirt-style. *)

val of_xml : string -> (t, string) result
(** Inverse of {!to_xml} (used by the remote driver). *)
