type t = {
  scheme : string;
  transport : string option;
  user : string option;
  host : string option;
  port : int option;
  path : string;
  params : (string * string) list;
}

let make ?transport ?user ?host ?port ?(path = "/") ?(params = []) scheme =
  { scheme; transport; user; host; port; path; params }

let invalid fmt = Format.kasprintf (fun m -> Error (Verror.make Verror.Invalid_arg m)) fmt

let ( let* ) = Result.bind

let valid_scheme s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false)
       s

(* Split [s] at the first occurrence of [c]; None if absent. *)
let split_first c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_params query =
  let items = String.split_on_char '&' query |> List.filter (fun s -> s <> "") in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      (match split_first '=' item with
       | Some (k, v) when k <> "" -> build ((k, v) :: acc) rest
       | Some _ | None -> invalid "malformed query parameter %S" item)
  in
  build [] items

let parse_authority authority =
  let* user, hostport =
    match split_first '@' authority with
    | Some (user, rest) ->
      if user = "" then invalid "empty user in URI authority"
      else Ok (Some user, rest)
    | None -> Ok (None, authority)
  in
  let* host, port =
    match split_first ':' hostport with
    | Some (host, port_str) ->
      (match int_of_string_opt port_str with
       | Some port when port > 0 && port < 65536 -> Ok (host, Some port)
       | Some _ | None -> invalid "invalid port %S" port_str)
    | None -> Ok (hostport, None)
  in
  Ok (user, (if host = "" then None else Some host), port)

let parse s =
  match split_first ':' s with
  | None -> invalid "URI %S has no scheme" s
  | Some (scheme_part, rest) ->
    let scheme, transport =
      match split_first '+' scheme_part with
      | Some (scheme, transport) -> (scheme, Some transport)
      | None -> (scheme_part, None)
    in
    if not (valid_scheme scheme) then invalid "invalid scheme %S" scheme_part
    else if
      (match transport with Some t -> not (valid_scheme t) | None -> false)
    then invalid "invalid transport suffix in %S" scheme_part
    else if String.length rest < 2 || String.sub rest 0 2 <> "//" then
      invalid "URI %S lacks '//' after scheme" s
    else begin
      let rest = String.sub rest 2 (String.length rest - 2) in
      let before_query, query =
        match split_first '?' rest with
        | Some (b, q) -> (b, Some q)
        | None -> (rest, None)
      in
      let authority, path =
        match String.index_opt before_query '/' with
        | None -> (before_query, "/")
        | Some i ->
          ( String.sub before_query 0 i,
            String.sub before_query i (String.length before_query - i) )
      in
      let* user, host, port = parse_authority authority in
      let* params =
        match query with None -> Ok [] | Some q -> parse_params q
      in
      Ok { scheme; transport; user; host; port; path; params }
    end

let to_string u =
  let buf = Buffer.create 64 in
  Buffer.add_string buf u.scheme;
  Option.iter (fun t -> Buffer.add_char buf '+'; Buffer.add_string buf t) u.transport;
  Buffer.add_string buf "://";
  Option.iter (fun user -> Buffer.add_string buf user; Buffer.add_char buf '@') u.user;
  Option.iter (Buffer.add_string buf) u.host;
  Option.iter (fun p -> Buffer.add_string buf (Printf.sprintf ":%d" p)) u.port;
  Buffer.add_string buf u.path;
  if u.params <> [] then begin
    Buffer.add_char buf '?';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf '&';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v)
      u.params
  end;
  Buffer.contents buf

let param u key = List.assoc_opt key u.params
