module Transport = Ovnet.Transport
module Tp = Ovrpc.Typed_params
module Ap = Protocol.Admin_protocol

type t = {
  id : int64;
  conn : Transport.t;
  connected_since : float;
  send_mutex : Mutex.t;
  mutable authenticated : bool;
  mutable closed : bool;
  mutable last_activity : float;
}

let create ~id ~conn =
  {
    id;
    conn;
    connected_since = Unix.gettimeofday ();
    send_mutex = Mutex.create ();
    authenticated = false;
    closed = false;
    last_activity = Unix.gettimeofday ();
  }

let id c = c.id
let conn c = c.conn
let connected_since c = c.connected_since
let transport_kind c = Transport.kind c.conn

let transport_int c =
  match Transport.kind c.conn with
  | Transport.Unix_sock -> 0
  | Transport.Tcp -> 1
  | Transport.Tls -> 2

let peer c = Transport.peer c.conn
let is_authenticated c = c.authenticated
let mark_authenticated c = c.authenticated <- true
let touch c = c.last_activity <- Unix.gettimeofday ()
let last_activity c = c.last_activity
let is_closed c = c.closed || Transport.is_closed c.conn

let close c =
  c.closed <- true;
  Transport.close c.conn

let send_packet c packet =
  Mutex.lock c.send_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.send_mutex)
    (fun () ->
      if not c.closed then
        try Transport.send c.conn packet with Transport.Closed -> c.closed <- true)

let identity_params c =
  let base =
    [
      Tp.bool Ap.client_info_readonly false;
      ("last_activity", Tp.P_llong (Int64.of_float c.last_activity));
    ]
  in
  match Transport.peer c.conn with
  | Transport.Local unix_id ->
    base
    @ [
        Tp.int Ap.client_info_unix_user_id unix_id.Transport.uid;
        Tp.string Ap.client_info_unix_user_name unix_id.Transport.username;
        Tp.int Ap.client_info_unix_group_id unix_id.Transport.gid;
        Tp.string Ap.client_info_unix_group_name unix_id.Transport.groupname;
        Tp.int Ap.client_info_unix_process_id unix_id.Transport.pid;
      ]
  | Transport.Remote r ->
    base
    @ [ Tp.string Ap.client_info_sock_addr r.sock_addr ]
    @ (match r.x509_dname with
       | Some dn -> [ Tp.string Ap.client_info_x509_dname dn ]
       | None -> [])
