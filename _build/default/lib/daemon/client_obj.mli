(** Server-side client representation.

    One per accepted connection: identity gathered at accept time
    (transport, peer credentials/address), a connection timestamp, an
    authentication flag, and a serialized send path (multiple workers may
    answer one client concurrently; TLS records must not interleave). *)

type t

val create : id:int64 -> conn:Ovnet.Transport.t -> t

val id : t -> int64
val conn : t -> Ovnet.Transport.t
val connected_since : t -> float
(** Seconds since epoch. *)

val transport_kind : t -> Ovnet.Transport.kind
val transport_int : t -> int
(** Wire encoding: 0 unix, 1 tcp, 2 tls. *)

val peer : t -> Ovnet.Transport.peer

val is_authenticated : t -> bool
val mark_authenticated : t -> unit

val touch : t -> unit
(** Record activity (called by the dispatcher per processed call). *)

val last_activity : t -> float
(** Seconds since epoch of the last processed call (accept time until
    then) — the datum a monitoring policy uses to pick idle victims. *)

val is_closed : t -> bool
val close : t -> unit

val send_packet : t -> string -> unit
(** Mutex-serialized; silently drops if the client is gone (the reader
    loop will reap it). *)

val identity_params : t -> Ovrpc.Typed_params.t
(** The client-info typed-parameter set: transport-dependent fields
    (UNIX credentials or socket address / x509 DN) plus [readonly]. *)
