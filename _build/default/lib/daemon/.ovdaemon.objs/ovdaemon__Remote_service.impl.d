lib/daemon/remote_service.ml: Capabilities Client_obj Dispatch Driver Events Fun Hashtbl Mutex Ovirt_core Ovrpc Protocol Result Verror Vlog Vmm Vuri
