lib/daemon/admin_service.ml: Client_obj Dispatch Int64 List Ovirt_core Ovrpc Protocol Result Server_obj Threadpool Unix Vlog
