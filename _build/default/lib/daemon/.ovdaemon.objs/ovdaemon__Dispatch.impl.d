lib/daemon/dispatch.ml: Client_obj Fun List Ovirt_core Ovnet Ovrpc Printexc Protocol Result Server_obj String Threadpool Vlog Xdr
