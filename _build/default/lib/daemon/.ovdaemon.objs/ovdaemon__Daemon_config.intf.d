lib/daemon/daemon_config.mli: Vlog
