lib/daemon/server_obj.ml: Client_obj Fun Hashtbl Int64 List Mutex Option Ovirt_core Ovnet Threadpool Vlog
