lib/daemon/daemon.ml: Admin_service Daemon_config Dispatch List Ovnet Remote_service Server_obj Threadpool Unix Vlog
