lib/daemon/remote_service.mli: Dispatch Vlog
