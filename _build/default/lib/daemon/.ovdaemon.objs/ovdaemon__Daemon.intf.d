lib/daemon/daemon.mli: Daemon_config Server_obj Vlog
