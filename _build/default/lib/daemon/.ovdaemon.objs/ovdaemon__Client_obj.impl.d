lib/daemon/client_obj.ml: Fun Int64 Mutex Ovnet Ovrpc Protocol Unix
