lib/daemon/dispatch.mli: Client_obj Ovirt_core Ovnet Ovrpc Server_obj
