lib/daemon/client_obj.mli: Ovnet Ovrpc
