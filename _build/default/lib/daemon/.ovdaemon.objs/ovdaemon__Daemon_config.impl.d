lib/daemon/daemon_config.ml: Printf Result String Vlog
