lib/daemon/server_obj.mli: Client_obj Ovirt_core Ovnet Threadpool Vlog
