lib/daemon/admin_service.mli: Dispatch Server_obj Vlog
