exception Closed

type t = {
  mutex : Mutex.t;
  readable : Condition.t;
  writable : Condition.t;
  queue : string Queue.t;
  capacity : int; (* max_int = unbounded *)
  mutable closed : bool;
}

let create ?(capacity = max_int) () =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    readable = Condition.create ();
    writable = Condition.create ();
    queue = Queue.create ();
    capacity;
    closed = false;
  }

let with_lock c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let send c msg =
  with_lock c (fun () ->
      while (not c.closed) && Queue.length c.queue >= c.capacity do
        Condition.wait c.writable c.mutex
      done;
      if c.closed then raise Closed;
      Queue.push msg c.queue;
      Condition.signal c.readable)

let recv c =
  with_lock c (fun () ->
      while Queue.is_empty c.queue && not c.closed do
        Condition.wait c.readable c.mutex
      done;
      if Queue.is_empty c.queue then raise Closed;
      let msg = Queue.pop c.queue in
      Condition.signal c.writable;
      msg)

let recv_opt c ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  with_lock c (fun () ->
      let rec wait_for_data () =
        if not (Queue.is_empty c.queue) then begin
          let msg = Queue.pop c.queue in
          Condition.signal c.writable;
          Some msg
        end
        else if c.closed then raise Closed
        else if Unix.gettimeofday () >= deadline then None
        else begin
          (* Condition variables have no timed wait in the stdlib; poll at a
             granularity fine enough for the protocol timeouts in use. *)
          Mutex.unlock c.mutex;
          Thread.delay 0.001;
          Mutex.lock c.mutex;
          wait_for_data ()
        end
      in
      wait_for_data ())

let close c =
  with_lock c (fun () ->
      if not c.closed then begin
        c.closed <- true;
        Condition.broadcast c.readable;
        Condition.broadcast c.writable
      end)

let is_closed c = with_lock c (fun () -> c.closed)
let pending c = with_lock c (fun () -> Queue.length c.queue)

type endpoint = { incoming : t; outgoing : t }

let pipe () =
  let a = create () and b = create () in
  ({ incoming = a; outgoing = b }, { incoming = b; outgoing = a })

let close_endpoint ep =
  close ep.incoming;
  close ep.outgoing
