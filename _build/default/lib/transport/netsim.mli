(** Simulated network: a process-wide registry of named listeners.

    Daemon services bind addresses (e.g. ["ovirtd-admin-sock"]); clients
    connect by name, choosing a transport {!Transport.kind}.  Each accepted
    connection invokes the listener's handler in a fresh thread, exactly as
    an accept loop would. *)

type listener

exception Connection_refused of string
(** No listener bound at that address, or the listener was closed. *)

exception Address_in_use of string

val listen : string -> (Transport.t -> unit) -> listener
(** Bind [addr]; [handler] runs in its own thread per accepted connection.
    @raise Address_in_use if already bound. *)

val close_listener : listener -> unit
(** Unbind; established connections are unaffected. *)

val connect :
  ?identity:Transport.unix_identity ->
  ?sock_addr:string ->
  string ->
  Transport.kind ->
  Transport.t
(** Connect to a bound address.  For [Unix_sock] the presented peer is
    [identity] (default: root's); for [Tcp]/[Tls] it is [sock_addr]
    (default: a fresh synthetic address).
    @raise Connection_refused if nothing listens there. *)

val bound_addresses : unit -> string list

val reset : unit -> unit
(** Drop all listeners (test isolation). *)
