lib/transport/tlslike.ml: Atomic Bytes Char Format Int64 String Unix
