lib/transport/transport.ml: Chan Char Printf String Tlslike
