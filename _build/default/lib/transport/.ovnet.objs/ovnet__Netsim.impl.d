lib/transport/netsim.ml: Atomic Chan Fun Hashtbl List Mutex Option Printf Thread Transport
