lib/transport/transport.mli: Chan
