lib/transport/tlslike.mli:
