lib/transport/chan.mli:
