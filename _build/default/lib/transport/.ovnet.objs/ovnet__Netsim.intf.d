lib/transport/netsim.mli: Transport
