lib/transport/chan.ml: Condition Fun Mutex Queue Thread Unix
