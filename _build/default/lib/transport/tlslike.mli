(** Toy TLS-like record layer.

    Stand-in for the real TLS transport (see DESIGN.md): a nonce-mixing
    handshake derives a session key; every record is transformed with a
    keyed stream cipher and authenticated with a keyed 64-bit MAC.  The
    point is {e not} cryptographic strength — it is that encryption and
    authentication incur genuine per-byte CPU work and per-connection
    handshake work, so the transport-overhead experiments (E3/E4) measure
    a real cost of the same shape as TLS's. *)

type session

exception Auth_failure of string
(** Record MAC mismatch (tampering / key mismatch) or bad handshake. *)

(** {1 Handshake}

    Classic three-value flow: the client sends a hello carrying its nonce,
    the server answers with its own, both derive the same session key. *)

type hello

val client_hello : unit -> hello * string
(** Fresh client nonce and its wire form. *)

val server_accept : string -> session * string
(** [server_accept client_hello_wire] derives the server session and the
    wire reply.  @raise Auth_failure on a malformed hello. *)

val client_finish : hello -> string -> session
(** [client_finish hello server_reply_wire] derives the client session.
    @raise Auth_failure on a malformed reply. *)

val handshake_pair : unit -> session * session
(** Both ends at once (for in-process tests): client session, server
    session. *)

(** {1 Records} *)

val seal : session -> string -> string
(** Encrypt-and-MAC one record.  Sessions are stateful: records must be
    opened in the order they were sealed (sequence numbers are part of the
    keystream, as in TLS). *)

val open_ : session -> string -> string
(** Decrypt and verify.  @raise Auth_failure on MAC mismatch, truncation,
    or out-of-order delivery. *)

val rekey : session -> session -> unit
(** [rekey a b] rotates both directions' key material in lockstep; the
    sessions must be the two ends of one connection.  Used by the
    admin-interface ablation experiment. *)
