exception Connection_refused of string
exception Address_in_use of string

type listener = {
  addr : string;
  handler : Transport.t -> unit;
  mutable open_ : bool;
}

let registry : (string, listener) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let listen addr handler =
  with_registry (fun () ->
      (match Hashtbl.find_opt registry addr with
       | Some l when l.open_ -> raise (Address_in_use addr)
       | Some _ | None -> ());
      let l = { addr; handler; open_ = true } in
      Hashtbl.replace registry addr l;
      l)

let close_listener l =
  with_registry (fun () ->
      l.open_ <- false;
      match Hashtbl.find_opt registry l.addr with
      | Some current when current == l -> Hashtbl.remove registry l.addr
      | Some _ | None -> ())

let default_identity =
  Transport.{ uid = 0; gid = 0; pid = 1; username = "root"; groupname = "root" }

let addr_counter = Atomic.make 1

let fresh_sock_addr () =
  let n = Atomic.fetch_and_add addr_counter 1 in
  Printf.sprintf "192.168.%d.%d:%d" ((n lsr 8) land 0xff) (n land 0xff)
    (10000 + (n mod 50000))

let connect ?identity ?sock_addr addr kind =
  let l =
    with_registry (fun () ->
        match Hashtbl.find_opt registry addr with
        | Some l when l.open_ -> l
        | Some _ | None -> raise (Connection_refused addr))
  in
  let client_ep, server_ep = Chan.pipe () in
  (* The server half of the handshake runs in the per-connection thread,
     like an accept loop handing the socket to a worker. *)
  ignore
    (Thread.create
       (fun () ->
         match Transport.accept kind server_ep with
         | conn -> (try l.handler conn with _ -> Transport.close conn)
         | exception _ -> Chan.close_endpoint server_ep)
       ());
  let peer_sends =
    match kind with
    | Transport.Unix_sock ->
      Transport.Local (Option.value identity ~default:default_identity)
    | Transport.Tcp | Transport.Tls ->
      let sock_addr =
        match sock_addr with Some a -> a | None -> fresh_sock_addr ()
      in
      Transport.Remote { sock_addr; x509_dname = None }
  in
  Transport.initiate kind ~peer_sends client_ep

let bound_addresses () =
  with_registry (fun () ->
      Hashtbl.fold (fun addr _ acc -> addr :: acc) registry [] |> List.sort compare)

let reset () = with_registry (fun () -> Hashtbl.reset registry)
