type parsed_args = {
  positional : string list;
  flags : (string * string) list;
  switches : string list;
}

let is_flag token = String.length token > 2 && String.sub token 0 2 = "--"

let parse_args tokens =
  let rec go acc = function
    | [] ->
      Ok
        {
          positional = List.rev acc.positional;
          flags = List.rev acc.flags;
          switches = List.rev acc.switches;
        }
    | token :: rest when is_flag token ->
      let key = String.sub token 2 (String.length token - 2) in
      (match rest with
       | value :: rest' when not (is_flag value) ->
         go { acc with flags = (key, value) :: acc.flags } rest'
       | _ -> go { acc with switches = key :: acc.switches } rest)
    | "--" :: _ -> Error "bare '--' is not a valid flag"
    | token :: rest -> go { acc with positional = token :: acc.positional } rest
  in
  go { positional = []; flags = []; switches = [] } tokens

let flag args key = List.assoc_opt key args.flags

let int_flag args key =
  match flag args key with
  | None -> Ok None
  | Some v ->
    (match int_of_string_opt v with
     | Some n -> Ok (Some n)
     | None -> Error (Printf.sprintf "--%s expects an integer, got %S" key v))

let has_switch args key = List.mem key args.switches

type command = {
  name : string;
  group : string;
  args_help : string;
  summary : string;
  handler : parsed_args -> (string, string) result;
}

let help_text ~program commands =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s: grouped commands\n" program);
  let groups =
    List.fold_left
      (fun acc cmd -> if List.mem cmd.group acc then acc else acc @ [ cmd.group ])
      [] commands
  in
  List.iter
    (fun group ->
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" group);
      List.iter
        (fun cmd ->
          if cmd.group = group then
            Buffer.add_string buf
              (Printf.sprintf "  %-24s %s\n"
                 (String.trim (cmd.name ^ " " ^ cmd.args_help))
                 cmd.summary))
        commands)
    groups;
  Buffer.contents buf

let run_one ~commands ~program tokens =
  match tokens with
  | [] -> Error "no command given (try 'help')"
  | "help" :: _ -> Ok (help_text ~program commands)
  | name :: rest ->
    (match List.find_opt (fun cmd -> cmd.name = name) commands with
     | None -> Error (Printf.sprintf "unknown command %S (try 'help')" name)
     | Some cmd ->
       (match parse_args rest with
        | Error msg -> Error msg
        | Ok args -> cmd.handler args))

let split_words line =
  let buf = Buffer.create 16 in
  let words = ref [] in
  let in_quotes = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '"' -> in_quotes := not !in_quotes
      | ' ' | '\t' when not !in_quotes -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !words

let repl ~commands ~program ~prompt input output =
  let rec loop () =
    Printf.fprintf output "%s" prompt;
    flush output;
    match input_line input with
    | exception End_of_file -> ()
    | line ->
      (match split_words line with
       | [] -> loop ()
       | [ ("quit" | "exit") ] -> ()
       | tokens ->
         (match run_one ~commands ~program tokens with
          | Ok text ->
            Printf.fprintf output "%s\n" text;
            loop ()
          | Error msg ->
            Printf.fprintf output "error: %s\n" msg;
            loop ()))
  in
  loop ()
