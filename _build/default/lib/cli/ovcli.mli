(** Command-line framework shared by the [ovirsh] and [ovirt-admin]
    shells: grouped command tables, ["--flag value"] parsing, one-shot
    and interactive (REPL) execution. *)

type parsed_args = {
  positional : string list;  (** in order *)
  flags : (string * string) list;  (** [--key value] pairs *)
  switches : string list;  (** bare [--key] with no value *)
}

val parse_args : string list -> (parsed_args, string) result
(** Tokens after the command name.  A flag consumes the next token unless
    that token starts with [--] (then it is a switch). *)

val flag : parsed_args -> string -> string option
val int_flag : parsed_args -> string -> (int option, string) result
val has_switch : parsed_args -> string -> bool

type command = {
  name : string;
  group : string;  (** section header in help output *)
  args_help : string;  (** e.g. ["<domain>"] *)
  summary : string;
  handler : parsed_args -> (string, string) result;
      (** returns the text to print, or an error message *)
}

val help_text : program:string -> command list -> string

val run_one :
  commands:command list -> program:string -> string list -> (string, string) result
(** Execute one command line (first token = command name); unknown
    commands and [help] are handled here. *)

val repl :
  commands:command list -> program:string -> prompt:string ->
  in_channel -> out_channel -> unit
(** Interactive loop; [quit]/[exit] or EOF ends it.  Errors print as
    ["error: ..."] without ending the loop. *)

val split_words : string -> string list
(** Shell-ish tokenizer: whitespace-separated, double quotes group. *)
