(** Minimal XML codec.

    Domain, network and storage-pool descriptions use XML, as in libvirt.
    This codec supports the subset those documents need: elements with
    attributes, text content, comments (skipped), XML declarations
    (skipped), self-closing tags and the five predefined entities.
    It does not support DTDs, processing instructions or namespaces. *)

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

exception Parse_error of string
(** Raised on malformed input, with the byte offset in the message. *)

val of_string : string -> element
(** Parse a document to its root element. *)

val to_string : ?indent:bool -> element -> string
(** Serialize.  With [~indent:true] (default) children are placed on
    indented lines, whitespace-only text nodes are regenerated; with
    [~indent:false] the output is canonical-compact. *)

(** {1 Construction helpers} *)

val elt : ?attrs:(string * string) list -> string -> node list -> element
val text : string -> node
val leaf : ?attrs:(string * string) list -> string -> string -> node
(** [leaf tag content] is [<tag>content</tag>] as a child node. *)

val node : element -> node

(** {1 Query helpers}

    These follow libvirt's style of digging into a parsed document; the
    [_exn] versions raise {!Parse_error} with the path that was missing,
    so schema errors surface as readable messages. *)

val child : element -> string -> element option
(** First child element with the given tag. *)

val child_exn : element -> string -> element
val children_named : element -> string -> element list
val attr : element -> string -> string option
val attr_exn : element -> string -> string
val text_content : element -> string
(** Concatenated text of the element's direct text children, trimmed. *)

val int_attr_exn : element -> string -> int
val int_content_exn : element -> int
(** Text content parsed as an integer.
    @raise Parse_error if not an integer. *)
