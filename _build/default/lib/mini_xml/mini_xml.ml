type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

exception Parse_error of string

let fail_at pos fmt =
  Format.kasprintf
    (fun s -> raise (Parse_error (Printf.sprintf "%s at offset %d" s pos)))
    fmt

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

let elt ?(attrs = []) tag children = { tag; attrs; children }
let text s = Text s
let leaf ?attrs tag content = Element (elt ?attrs tag [ Text content ])
let node e = Element e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let rec print_element buf ~indent ~depth e =
  let pad n =
    if indent then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  pad depth;
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape_attr buf v;
      Buffer.add_char buf '"')
    e.attrs;
  let meaningful =
    List.filter (function Text s -> not (is_blank s) | Element _ -> true) e.children
  in
  match meaningful with
  | [] -> Buffer.add_string buf "/>"
  | [ Text s ] ->
    (* Single text child stays inline: <name>value</name>. *)
    Buffer.add_char buf '>';
    escape_text buf s;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_char buf '>'
  | children ->
    Buffer.add_char buf '>';
    List.iter
      (function
        | Element child -> print_element buf ~indent ~depth:(depth + 1) child
        | Text s ->
          pad (depth + 1);
          escape_text buf s)
      children;
    pad depth;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_char buf '>'

let to_string ?(indent = true) e =
  let buf = Buffer.create 256 in
  print_element buf ~indent ~depth:0 e;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None
let advance p = p.pos <- p.pos + 1

let looking_at p s =
  let n = String.length s in
  p.pos + n <= String.length p.src && String.sub p.src p.pos n = s

let skip_ws p =
  let rec loop () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      loop ()
    | _ -> ()
  in
  loop ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail_at p.pos "expected '%c', found '%c'" c c'
  | None -> fail_at p.pos "expected '%c', found end of input" c

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let is_name_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false

let parse_name p =
  (match peek p with
   | Some c when is_name_start c -> ()
   | Some c -> fail_at p.pos "name cannot start with '%c'" c
   | None -> fail_at p.pos "expected name");
  let start = p.pos in
  let rec loop () =
    match peek p with
    | Some c when is_name_char c ->
      advance p;
      loop ()
    | _ -> ()
  in
  loop ();
  if p.pos = start then fail_at p.pos "expected name";
  String.sub p.src start (p.pos - start)

let parse_entity p =
  (* Cursor is on '&'. *)
  let start = p.pos in
  advance p;
  let rec find_semi n =
    if n > 8 then fail_at start "unterminated entity"
    else
      match peek p with
      | Some ';' ->
        advance p;
        String.sub p.src (start + 1) (p.pos - start - 2)
      | Some _ ->
        advance p;
        find_semi (n + 1)
      | None -> fail_at start "unterminated entity"
  in
  match find_semi 0 with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | e when String.length e > 2 && e.[0] = '#' && e.[1] = 'x' ->
    (match int_of_string_opt ("0x" ^ String.sub e 2 (String.length e - 2)) with
     | Some cp when cp < 128 -> String.make 1 (Char.chr cp)
     | _ -> fail_at start "unsupported numeric entity &%s;" e)
  | e when String.length e > 1 && e.[0] = '#' ->
    (match int_of_string_opt (String.sub e 1 (String.length e - 1)) with
     | Some cp when cp < 128 -> String.make 1 (Char.chr cp)
     | _ -> fail_at start "unsupported numeric entity &%s;" e)
  | e -> fail_at start "unknown entity &%s;" e

let parse_attr_value p =
  let quote =
    match peek p with
    | Some ('"' as q) | Some ('\'' as q) ->
      advance p;
      q
    | _ -> fail_at p.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail_at p.pos "unterminated attribute value"
    | Some c when c = quote -> advance p
    | Some '&' ->
      Buffer.add_string buf (parse_entity p);
      loop ()
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let skip_comment p =
  (* Cursor is on "<!--". *)
  p.pos <- p.pos + 4;
  let rec loop () =
    if looking_at p "-->" then p.pos <- p.pos + 3
    else if p.pos >= String.length p.src then fail_at p.pos "unterminated comment"
    else begin
      advance p;
      loop ()
    end
  in
  loop ()

let skip_decl p =
  (* Cursor is on "<?". *)
  let rec loop () =
    if looking_at p "?>" then p.pos <- p.pos + 2
    else if p.pos >= String.length p.src then fail_at p.pos "unterminated declaration"
    else begin
      advance p;
      loop ()
    end
  in
  loop ()

let rec parse_element p =
  expect p '<';
  let tag = parse_name p in
  let rec parse_attrs acc =
    skip_ws p;
    match peek p with
    | Some '>' ->
      advance p;
      let children = parse_children p tag in
      { tag; attrs = List.rev acc; children }
    | Some '/' ->
      advance p;
      expect p '>';
      { tag; attrs = List.rev acc; children = [] }
    | Some c when is_name_char c ->
      let name = parse_name p in
      skip_ws p;
      expect p '=';
      skip_ws p;
      let value = parse_attr_value p in
      parse_attrs ((name, value) :: acc)
    | _ -> fail_at p.pos "malformed tag <%s ...>" tag
  in
  parse_attrs []

and parse_children p tag =
  let children = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if not (is_blank s) then children := Text s :: !children
    end
  in
  let rec loop () =
    match peek p with
    | None -> fail_at p.pos "unterminated element <%s>" tag
    | Some '<' when looking_at p "</" ->
      flush_text ();
      p.pos <- p.pos + 2;
      let close = parse_name p in
      skip_ws p;
      expect p '>';
      if close <> tag then
        fail_at p.pos "mismatched close tag </%s> for <%s>" close tag
    | Some '<' when looking_at p "<!--" ->
      flush_text ();
      skip_comment p;
      loop ()
    | Some '<' ->
      flush_text ();
      children := Element (parse_element p) :: !children;
      loop ()
    | Some '&' ->
      Buffer.add_string buf (parse_entity p);
      loop ()
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  List.rev !children

let of_string s =
  let p = { src = s; pos = 0 } in
  skip_ws p;
  while looking_at p "<?" || looking_at p "<!--" do
    if looking_at p "<?" then skip_decl p else skip_comment p;
    skip_ws p
  done;
  let root = parse_element p in
  skip_ws p;
  while looking_at p "<!--" do
    skip_comment p;
    skip_ws p
  done;
  if p.pos <> String.length s then fail_at p.pos "trailing garbage";
  root

(* ------------------------------------------------------------------ *)
(* Query helpers                                                       *)
(* ------------------------------------------------------------------ *)

let children_named e tag =
  List.filter_map
    (function Element c when c.tag = tag -> Some c | Element _ | Text _ -> None)
    e.children

let child e tag =
  match children_named e tag with [] -> None | c :: _ -> Some c

let child_exn e tag =
  match child e tag with
  | Some c -> c
  | None ->
    raise (Parse_error (Printf.sprintf "missing element <%s> under <%s>" tag e.tag))

let attr e name = List.assoc_opt name e.attrs

let attr_exn e name =
  match attr e name with
  | Some v -> v
  | None ->
    raise
      (Parse_error (Printf.sprintf "missing attribute %S on <%s>" name e.tag))

let text_content e =
  let buf = Buffer.create 16 in
  List.iter
    (function Text s -> Buffer.add_string buf s | Element _ -> ())
    e.children;
  String.trim (Buffer.contents buf)

let int_attr_exn e name =
  let v = attr_exn e name in
  match int_of_string_opt v with
  | Some n -> n
  | None ->
    raise
      (Parse_error
         (Printf.sprintf "attribute %S of <%s> is not an integer: %S" name e.tag v))

let int_content_exn e =
  let v = text_content e in
  match int_of_string_opt v with
  | Some n -> n
  | None ->
    raise (Parse_error (Printf.sprintf "<%s> content is not an integer: %S" e.tag v))
