type msg_type = Call | Reply | Event
type status = Status_ok | Status_error

type header = {
  program : int;
  version : int;
  procedure : int;
  msg_type : msg_type;
  serial : int;
  status : status;
}

exception Bad_packet of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_packet s)) fmt

let max_packet_size = 4 * 1024 * 1024

let msg_type_to_int = function Call -> 0 | Reply -> 1 | Event -> 2

let msg_type_of_int = function
  | 0 -> Call
  | 1 -> Reply
  | 2 -> Event
  | n -> fail "unknown message type %d" n

let status_to_int = function Status_ok -> 0 | Status_error -> 1

let status_of_int = function
  | 0 -> Status_ok
  | 1 -> Status_error
  | n -> fail "unknown status %d" n

let encode header body =
  let e = Xdr.encoder () in
  Xdr.enc_uint e header.program;
  Xdr.enc_uint e header.version;
  Xdr.enc_int e header.procedure;
  Xdr.enc_int e (msg_type_to_int header.msg_type);
  Xdr.enc_uint e header.serial;
  Xdr.enc_int e (status_to_int header.status);
  let header_wire = Xdr.to_string e in
  let total = String.length header_wire + String.length body in
  if total > max_packet_size then fail "packet of %d bytes exceeds maximum" total;
  let len = Xdr.encoder () in
  Xdr.enc_uint len total;
  Xdr.to_string len ^ header_wire ^ body

let decode wire =
  if String.length wire < 4 then fail "packet shorter than its length prefix";
  let d = Xdr.decoder wire in
  let total =
    try Xdr.dec_uint d with Xdr.Error msg -> fail "bad length prefix: %s" msg
  in
  if total > max_packet_size then fail "packet of %d bytes exceeds maximum" total;
  if String.length wire - 4 <> total then
    fail "length prefix says %d bytes, packet carries %d" total
      (String.length wire - 4);
  try
    let program = Xdr.dec_uint d in
    let version = Xdr.dec_uint d in
    let procedure = Xdr.dec_int d in
    let msg_type = msg_type_of_int (Xdr.dec_int d) in
    let serial = Xdr.dec_uint d in
    let status = status_of_int (Xdr.dec_int d) in
    let body = String.sub wire (Xdr.pos d) (String.length wire - Xdr.pos d) in
    ({ program; version; procedure; msg_type; serial; status }, body)
  with Xdr.Error msg -> fail "bad header: %s" msg

let call_header ~program ~version ~procedure ~serial =
  { program; version; procedure; msg_type = Call; serial; status = Status_ok }

let reply_ok header = { header with msg_type = Reply; status = Status_ok }
let reply_error header = { header with msg_type = Reply; status = Status_error }

let event_header ~program ~version ~procedure =
  { program; version; procedure; msg_type = Event; serial = 0; status = Status_ok }
