type value =
  | P_int of int
  | P_uint of int
  | P_llong of int64
  | P_ullong of int64
  | P_double of float
  | P_bool of bool
  | P_string of string

type t = (string * value) list

let max_field_length = 80

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let validate params =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (field, _) ->
      if field = "" then fail "empty parameter field name";
      if String.length field > max_field_length then
        fail "field %S exceeds %d characters" field max_field_length;
      if Hashtbl.mem seen field then fail "duplicate parameter field %S" field;
      Hashtbl.add seen field ())
    params

let tag = function
  | P_int _ -> 1
  | P_uint _ -> 2
  | P_llong _ -> 3
  | P_ullong _ -> 4
  | P_double _ -> 5
  | P_bool _ -> 6
  | P_string _ -> 7

let encode_one e (field, v) =
  Xdr.enc_string e field;
  Xdr.enc_int e (tag v);
  match v with
  | P_int n -> Xdr.enc_int e n
  | P_uint n -> Xdr.enc_uint e n
  | P_llong n -> Xdr.enc_hyper e n
  | P_ullong n -> Xdr.enc_uhyper e n
  | P_double f -> Xdr.enc_double e f
  | P_bool b -> Xdr.enc_bool e b
  | P_string s -> Xdr.enc_string e s

let encode e params =
  validate params;
  Xdr.enc_array e encode_one params

let decode_one d =
  let field = Xdr.dec_string d in
  let v =
    match Xdr.dec_int d with
    | 1 -> P_int (Xdr.dec_int d)
    | 2 -> P_uint (Xdr.dec_uint d)
    | 3 -> P_llong (Xdr.dec_hyper d)
    | 4 -> P_ullong (Xdr.dec_uhyper d)
    | 5 -> P_double (Xdr.dec_double d)
    | 6 -> P_bool (Xdr.dec_bool d)
    | 7 -> P_string (Xdr.dec_string d)
    | t -> fail "unknown typed-parameter tag %d for field %S" t field
  in
  (field, v)

let decode d =
  let params = Xdr.dec_array d decode_one in
  validate params;
  params

let type_error field expected =
  fail "field %S is present but not of type %s" field expected

let find_uint params field =
  match List.assoc_opt field params with
  | None -> None
  | Some (P_uint n) | Some (P_int n) when n >= 0 -> Some n
  | Some _ -> type_error field "unsigned int"

let find_int params field =
  match List.assoc_opt field params with
  | None -> None
  | Some (P_int n) | Some (P_uint n) -> Some n
  | Some _ -> type_error field "int"

let find_bool params field =
  match List.assoc_opt field params with
  | None -> None
  | Some (P_bool b) -> Some b
  | Some _ -> type_error field "bool"

let find_string params field =
  match List.assoc_opt field params with
  | None -> None
  | Some (P_string s) -> Some s
  | Some _ -> type_error field "string"

let uint field v =
  if v < 0 then fail "field %S: negative value for unsigned" field;
  (field, P_uint v)

let int field v = (field, P_int v)
let bool field v = (field, P_bool v)
let string field v = (field, P_string v)
