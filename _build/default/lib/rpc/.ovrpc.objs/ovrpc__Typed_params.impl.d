lib/rpc/typed_params.ml: Format Hashtbl List String Xdr
