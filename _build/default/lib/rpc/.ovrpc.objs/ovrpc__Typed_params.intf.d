lib/rpc/typed_params.mli: Xdr
