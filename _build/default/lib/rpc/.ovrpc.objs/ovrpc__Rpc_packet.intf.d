lib/rpc/rpc_packet.mli:
