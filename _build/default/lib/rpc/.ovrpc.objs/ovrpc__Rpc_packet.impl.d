lib/rpc/rpc_packet.ml: Format String Xdr
