(** Typed parameters: libvirt's [virTypedParameter].

    Extensible (field, scalar) lists used wherever an interface may grow
    new attributes without breaking the wire format — threadpool tuning,
    client limits, client identity.  Field names are bounded at
    {!max_field_length} as on the real wire. *)

type value =
  | P_int of int
  | P_uint of int
  | P_llong of int64
  | P_ullong of int64
  | P_double of float
  | P_bool of bool
  | P_string of string

type t = (string * value) list

val max_field_length : int
(** 80, matching [VIR_TYPED_PARAM_FIELD_LENGTH]. *)

exception Invalid of string
(** Raised on over-long or empty field names, or duplicate fields. *)

val validate : t -> unit
(** @raise Invalid as described above. *)

val encode : Xdr.encoder -> t -> unit
(** Validates, then encodes as an XDR array of (string, union). *)

val decode : Xdr.decoder -> t
(** @raise Xdr.Error on wire corruption, {!Invalid} on semantic issues. *)

(** {1 Typed accessors} — [None] when the field is absent; raise
    {!Invalid} when present with the wrong type (a caller error worth
    surfacing loudly, as libvirt does). *)

val find_uint : t -> string -> int option
val find_int : t -> string -> int option
val find_bool : t -> string -> bool option
val find_string : t -> string -> string option

val uint : string -> int -> string * value
(** Builders for the common cases: [uint field v]. *)

val int : string -> int -> string * value
val bool : string -> bool -> string * value
val string : string -> string -> string * value
