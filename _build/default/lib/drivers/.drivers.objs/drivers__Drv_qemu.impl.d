lib/drivers/drv_qemu.ml: Capabilities Domstore Driver Drvutil Events Fun Hashtbl Hvsim Int64 List Mutex Net_backend Option Ovirt_core Printf Result Storage_backend Verror Vmm Vuri
