lib/drivers/domstore.mli: Ovirt_core Vmm
