lib/drivers/drv_lxc.mli:
