lib/drivers/drv_esx.ml: Capabilities Driver Drvutil Fun Hashtbl Hvsim List Mini_xml Mutex Option Ovirt_core Result String Verror Vmm Vuri
