lib/drivers/drv_lxc.ml: Capabilities Domstore Driver Drvutil Events Fun Hashtbl Hvsim Int64 List Mutex Net_backend Ovirt_core Result Storage_backend Verror Vmm Vuri
