lib/drivers/drv_esx.mli: Hvsim
