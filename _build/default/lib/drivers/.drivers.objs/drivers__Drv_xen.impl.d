lib/drivers/drv_xen.ml: Capabilities Domstore Driver Drvutil Events Fun Hashtbl Hvsim List Mutex Net_backend Ovirt_core Printf Result Storage_backend Verror Vmm Vuri
