lib/drivers/drvutil.ml: Capabilities Hvsim List Ovirt_core Result Verror Vmm
