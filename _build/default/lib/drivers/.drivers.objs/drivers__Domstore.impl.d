lib/drivers/domstore.ml: Fun Hashtbl List Mutex Ovirt_core Vmm
