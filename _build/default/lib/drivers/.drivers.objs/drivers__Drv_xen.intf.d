lib/drivers/drv_xen.mli:
