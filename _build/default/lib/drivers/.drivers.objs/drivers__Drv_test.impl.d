lib/drivers/drv_test.ml: Capabilities Domstore Driver Events Fun Hashtbl Hvsim Int64 List Mutex Net_backend Ovirt_core Result Storage_backend String Thread Verror Vmm Vuri
