lib/drivers/drv_qemu.mli: Vmm
