lib/drivers/drvutil.mli: Hvsim Ovirt_core Vmm
