lib/drivers/drv_test.mli:
