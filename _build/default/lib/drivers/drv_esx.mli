(** ESX driver (stateless, client-side).

    The hypervisor ships its own remote management endpoint and keeps VM
    registrations itself, so this driver holds {e no} domain state: every
    call is an XML exchange with {!Hvsim.Esx_host}, authenticated by a
    session established at [open].  This is the representative of the
    "proprietary hypervisor with native remote API" class that motivates
    libvirt's stateless/stateful driver split.

    URIs: [esx://[user@]<host>/[?password=...]] — credentials default to
    root/"esx".  There is no daemon in this path regardless of transport. *)

val register : unit -> unit
val reset_hosts : unit -> unit

val get_host : string -> Hvsim.Esx_host.t
(** The simulated ESX server for a hostname (created on first use);
    exposed so tests can inspect the server side. *)
