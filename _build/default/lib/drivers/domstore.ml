module Vm_config = Vmm.Vm_config
module Verror = Ovirt_core.Verror

type t = { mutex : Mutex.t; configs : (string, Vm_config.t) Hashtbl.t }

let create () = { mutex = Mutex.create (); configs = Hashtbl.create 16 }

let with_lock store f =
  Mutex.lock store.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.mutex) f

let define store config =
  with_lock store (fun () ->
      let name = config.Vm_config.name in
      let uuid_clash =
        Hashtbl.fold
          (fun other_name cfg acc ->
            acc
            || (other_name <> name
               && Vmm.Uuid.equal cfg.Vm_config.uuid config.Vm_config.uuid))
          store.configs false
      in
      if uuid_clash then
        Verror.error Verror.Dup_name "UUID of %S already used by another domain" name
      else
        match Hashtbl.find_opt store.configs name with
        | Some existing
          when not (Vmm.Uuid.equal existing.Vm_config.uuid config.Vm_config.uuid) ->
          Verror.error Verror.Dup_name
            "domain %S already defined with a different UUID" name
        | Some _ | None ->
          Hashtbl.replace store.configs name config;
          Ok ())

let undefine store name =
  with_lock store (fun () ->
      if Hashtbl.mem store.configs name then begin
        Hashtbl.remove store.configs name;
        Ok ()
      end
      else Verror.error Verror.No_domain "no persistent domain named %S" name)

let get store name = with_lock store (fun () -> Hashtbl.find_opt store.configs name)

let by_uuid store uuid =
  with_lock store (fun () ->
      Hashtbl.fold
        (fun _ cfg acc ->
          if Vmm.Uuid.equal cfg.Vm_config.uuid uuid then Some cfg else acc)
        store.configs None)

let names store =
  with_lock store (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) store.configs []
      |> List.sort compare)

let mem store name = with_lock store (fun () -> Hashtbl.mem store.configs name)
