module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Qemu_proc = Hvsim.Qemu_proc
open Ovirt_core

type node = {
  node_name : string;
  host : Hvsim.Hostinfo.t;
  store : Domstore.t;
  mutex : Mutex.t;
  procs : (string, Qemu_proc.t) Hashtbl.t;
  balloon : (string, int) Hashtbl.t; (* current balloon targets, KiB *)
  agents : (string, Hvsim.Guest_agent.endpoint) Hashtbl.t;
  (* managed-save images: name -> serialized guest memory *)
  saved : (string, string) Hashtbl.t;
  net : Net_backend.t;
  storage : Storage_backend.t;
  events : Events.bus;
}

let nodes : (string, node) Hashtbl.t = Hashtbl.create 4
let nodes_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let ( let* ) = Result.bind

let get_node name =
  with_lock nodes_mutex (fun () ->
      match Hashtbl.find_opt nodes name with
      | Some node -> node
      | None ->
        let node =
          {
            node_name = name;
            host = Hvsim.Hostinfo.create ~hostname:name ();
            store = Domstore.create ();
            mutex = Mutex.create ();
            procs = Hashtbl.create 16;
            balloon = Hashtbl.create 16;
            agents = Hashtbl.create 16;
            saved = Hashtbl.create 4;
            net = Net_backend.create ();
            storage = Storage_backend.create ();
            events = Events.create_bus ();
          }
        in
        Hashtbl.add nodes name node;
        node)

let reset_nodes () = with_lock nodes_mutex (fun () -> Hashtbl.reset nodes)

(* ------------------------------------------------------------------ *)
(* Command-line formatting                                             *)
(* ------------------------------------------------------------------ *)

let proc_argv (cfg : Vm_config.t) =
  let base =
    [
      "qemu-system-" ^ cfg.arch;
      "-name"; cfg.name;
      "-uuid"; Vmm.Uuid.to_string cfg.uuid;
      "-m"; string_of_int (cfg.memory_kib / 1024);
      "-smp"; string_of_int cfg.vcpus;
      "-S";
      "-qmp"; "unix:/var/run/ovirt/qemu/" ^ cfg.name ^ ".monitor";
    ]
  in
  let disks =
    List.concat_map
      (fun (d : Vm_config.disk) ->
        [
          "-drive";
          Printf.sprintf "file=%s,format=%s,if=virtio%s" d.source_path d.disk_format
            (if d.readonly then ",readonly=on" else "");
        ])
      cfg.disks
  in
  let nics =
    List.concat_map
      (fun (n : Vm_config.nic) ->
        [
          "-netdev"; Printf.sprintf "bridge,id=%s" n.network;
          "-device"; Printf.sprintf "%s,netdev=%s,mac=%s" n.nic_model n.network n.mac;
        ])
      cfg.nics
  in
  base @ disks @ nics

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let require_config node name =
  match Domstore.get node.store name with
  | Some cfg -> Ok cfg
  | None -> Verror.error Verror.No_domain "no domain named %S" name

let live_proc node name =
  match Hashtbl.find_opt node.procs name with
  | Some proc when Qemu_proc.is_alive proc -> Some proc
  | Some _ | None -> None

let require_proc node name =
  match live_proc node name with
  | Some proc -> Ok proc
  | None ->
    if Domstore.mem node.store name then
      Verror.error Verror.Operation_invalid "domain %S is not running" name
    else Verror.error Verror.No_domain "no domain named %S" name

let domain_ref_of node name =
  let* cfg = require_config node name in
  let dom_id = Option.map Qemu_proc.pid (live_proc node name) in
  Ok Driver.{ dom_name = name; dom_uuid = cfg.Vm_config.uuid; dom_id }

let define_xml node xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Hvm ] xml in
  let* () = Domstore.define node.store cfg in
  Events.emit node.events ~domain_name:cfg.Vm_config.name Events.Ev_defined;
  with_lock node.mutex (fun () -> domain_ref_of node cfg.Vm_config.name)

let undefine node name =
  with_lock node.mutex (fun () ->
      match live_proc node name with
      | Some _ ->
        Verror.error Verror.Operation_invalid "cannot undefine running domain %S" name
      | None ->
        let* () = Domstore.undefine node.store name in
        Hashtbl.remove node.procs name;
        Hashtbl.remove node.saved name;
        Events.emit node.events ~domain_name:name Events.Ev_undefined;
        Ok ())

let qmp proc ~cmd = Qemu_proc.qmp proc ~cmd ()

let connect_nics node (cfg : Vm_config.t) =
  let rec attach attached = function
    | [] -> Ok attached
    | (n : Vm_config.nic) :: rest ->
      (match Net_backend.connect_iface node.net n.network with
       | Ok () -> attach (n :: attached) rest
       | Error e ->
         List.iter
           (fun (a : Vm_config.nic) -> Net_backend.disconnect_iface node.net a.network)
           attached;
         Error e)
  in
  attach [] cfg.nics |> Result.map (fun (_ : Vm_config.nic list) -> ())

let disconnect_nics node (cfg : Vm_config.t) =
  List.iter
    (fun (n : Vm_config.nic) -> Net_backend.disconnect_iface node.net n.network)
    cfg.nics

(* Spawn, negotiate QMP and leave the domain paused.  Shared by start and
   by the migration-destination prepare step. *)
let spawn_paused node cfg =
  if live_proc node cfg.Vm_config.name <> None then
    Verror.error Verror.Operation_invalid "domain %S is already running"
      cfg.Vm_config.name
  else
    let* () = connect_nics node cfg in
    match Qemu_proc.spawn node.host ~argv:(proc_argv cfg) cfg with
    | Error msg ->
      disconnect_nics node cfg;
      Error (Verror.make Verror.Resource_exhausted msg)
    | Ok proc ->
      (match qmp proc ~cmd:"qmp_capabilities" with
       | Error msg ->
         disconnect_nics node cfg;
         Error (Verror.make Verror.Operation_failed msg)
       | Ok _ ->
         Hashtbl.replace node.procs cfg.Vm_config.name proc;
         Hashtbl.replace node.balloon cfg.Vm_config.name cfg.Vm_config.memory_kib;
         (* The guest ships an (uninstalled) agent channel, like a
            virtio-serial port waiting for qemu-guest-agent. *)
         Hashtbl.replace node.agents cfg.Vm_config.name
           (Hvsim.Guest_agent.create ~image:(Qemu_proc.image proc)
              ~state:(fun () -> Qemu_proc.state proc)
              ~request_shutdown:(fun () ->
                ignore (qmp proc ~cmd:"system_powerdown")));
         Ok proc)

(* A process that exited needs its node-side bookkeeping cleared. *)
let reap node name =
  match require_config node name with
  | Error _ -> ()
  | Ok cfg ->
    Hashtbl.remove node.procs name;
    Hashtbl.remove node.balloon name;
    Hashtbl.remove node.agents name;
    disconnect_nics node cfg

let dom_create node name =
  with_lock node.mutex (fun () ->
      let* cfg = require_config node name in
      let* proc = spawn_paused node cfg in
      match qmp proc ~cmd:"cont" with
      | Error msg ->
        ignore (qmp proc ~cmd:"quit");
        reap node name;
        Error (Verror.make Verror.Operation_failed msg)
      | Ok _ ->
        Events.emit node.events ~domain_name:name Events.Ev_started;
        Ok ())

let monitor_op node name cmd event =
  with_lock node.mutex (fun () ->
      let* proc = require_proc node name in
      match qmp proc ~cmd with
      | Error msg -> Error (Verror.make Verror.Operation_invalid msg)
      | Ok _ ->
        if not (Qemu_proc.is_alive proc) then reap node name;
        Events.emit node.events ~domain_name:name event;
        Ok ())

let dom_suspend node name = monitor_op node name "stop" Events.Ev_suspended
let dom_resume node name = monitor_op node name "cont" Events.Ev_resumed
let dom_shutdown node name = monitor_op node name "system_powerdown" Events.Ev_shutdown
let dom_destroy node name = monitor_op node name "quit" Events.Ev_stopped

let dom_get_info node name =
  with_lock node.mutex (fun () ->
      let* cfg = require_config node name in
      let current_memory =
        Option.value
          (Hashtbl.find_opt node.balloon name)
          ~default:cfg.Vm_config.memory_kib
      in
      match live_proc node name with
      | Some proc ->
        Ok
          Driver.
            {
              di_state = Qemu_proc.state proc;
              di_max_mem_kib = cfg.Vm_config.memory_kib;
              di_memory_kib = current_memory;
              di_vcpus = cfg.Vm_config.vcpus;
              di_cpu_time_ns = Int64.of_int (Qemu_proc.pid proc * 1_000_000);
            }
      | None ->
        Ok
          Driver.
            {
              di_state = Vm_state.Shutoff;
              di_max_mem_kib = cfg.Vm_config.memory_kib;
              di_memory_kib = cfg.Vm_config.memory_kib;
              di_vcpus = cfg.Vm_config.vcpus;
              di_cpu_time_ns = 0L;
            })

let dom_get_xml node name =
  let* cfg = require_config node name in
  Ok (Vmm.Domxml.to_xml ~virt_type:"kvm" cfg)

let dom_set_memory node name kib =
  with_lock node.mutex (fun () ->
      let* cfg = require_config node name in
      if kib <= 0 then Verror.error Verror.Invalid_arg "memory must be positive"
      else if kib > cfg.Vm_config.memory_kib then
        Verror.error Verror.Invalid_arg "balloon target %d exceeds maximum %d" kib
          cfg.Vm_config.memory_kib
      else begin
        let* _proc = require_proc node name in
        Hashtbl.replace node.balloon name kib;
        Ok ()
      end)

let list_domains node =
  with_lock node.mutex (fun () ->
      Hashtbl.fold
        (fun name proc acc ->
          if Qemu_proc.is_alive proc then
            match domain_ref_of node name with Ok r -> r :: acc | Error _ -> acc
          else acc)
        node.procs []
      |> List.sort (fun a b -> compare a.Driver.dom_name b.Driver.dom_name)
      |> Result.ok)

let list_defined node =
  with_lock node.mutex (fun () ->
      Domstore.names node.store
      |> List.filter (fun name -> live_proc node name = None)
      |> Result.ok)

let lookup_by_name node name = with_lock node.mutex (fun () -> domain_ref_of node name)

let lookup_by_uuid node uuid =
  with_lock node.mutex (fun () ->
      match Domstore.by_uuid node.store uuid with
      | Some cfg -> domain_ref_of node cfg.Vm_config.name
      | None ->
        Verror.error Verror.No_domain "no domain with UUID %s" (Vmm.Uuid.to_string uuid))

(* ------------------------------------------------------------------ *)
(* Managed save                                                        *)
(* ------------------------------------------------------------------ *)

let dom_save node name =
  with_lock node.mutex (fun () ->
      let* proc = require_proc node name in
      match Qemu_proc.state proc with
      | Vmm.Vm_state.Running | Vmm.Vm_state.Paused ->
        Hashtbl.replace node.saved name
          (Vmm.Guest_image.snapshot (Qemu_proc.image proc));
        ignore (qmp proc ~cmd:"quit");
        reap node name;
        Events.emit node.events ~domain_name:name Events.Ev_stopped;
        Ok ()
      | other ->
        Verror.error Verror.Operation_invalid "cannot save domain in state %s"
          (Vm_state.state_name other))

let dom_restore node name =
  with_lock node.mutex (fun () ->
      let* cfg = require_config node name in
      match Hashtbl.find_opt node.saved name with
      | None ->
        Verror.error Verror.Operation_invalid "domain %S has no managed-save image"
          name
      | Some bytes ->
        let* proc = spawn_paused node cfg in
        Vmm.Guest_image.restore_from (Qemu_proc.image proc) bytes;
        (match qmp proc ~cmd:"cont" with
         | Error msg ->
           ignore (qmp proc ~cmd:"quit");
           reap node name;
           Error (Verror.make Verror.Operation_failed msg)
         | Ok _ ->
           Hashtbl.remove node.saved name;
           Events.emit node.events ~domain_name:name Events.Ev_started;
           Ok ()))

let dom_has_managed_save node name =
  with_lock node.mutex (fun () ->
      let* _cfg = require_config node name in
      Ok (Hashtbl.mem node.saved name))

(* ------------------------------------------------------------------ *)
(* Guest agent (intrusive baseline)                                    *)
(* ------------------------------------------------------------------ *)

let agent_endpoint node name =
  with_lock node.mutex (fun () ->
      let* _cfg = require_config node name in
      match Hashtbl.find_opt node.agents name with
      | Some ep when live_proc node name <> None -> Ok ep
      | Some _ | None ->
        Verror.error Verror.Operation_invalid
          "guest agent unreachable: domain %S is not running" name)

(* Exec runs outside the node lock: a guest-shutdown command re-enters
   the monitor path. *)
let guest_agent_install node name =
  let* ep = agent_endpoint node name in
  Result.map_error (Verror.make Verror.Operation_invalid)
    (Hvsim.Guest_agent.install ep)

let guest_agent_exec node name line =
  let* ep = agent_endpoint node name in
  Ok (Hvsim.Guest_agent.exec ep line)

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let migrate_begin node name =
  with_lock node.mutex (fun () ->
      let* proc = require_proc node name in
      if Qemu_proc.state proc <> Vm_state.Running then
        Verror.error Verror.Operation_invalid "domain %S is not running" name
      else
        let* cfg = require_config node name in
        Ok
          Driver.
            {
              mig_config_xml = Vmm.Domxml.to_xml ~virt_type:"kvm" cfg;
              mig_image = Qemu_proc.image proc;
              mig_enter_stopcopy = (fun () -> dom_suspend node name);
              mig_confirm =
                (fun () ->
                  with_lock node.mutex (fun () ->
                      ignore (qmp proc ~cmd:"quit");
                      reap node name;
                      Events.emit node.events ~domain_name:name Events.Ev_stopped;
                      Ok ()));
              mig_abort = (fun () -> ignore (dom_resume node name));
            })

let migrate_prepare node config_xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Hvm ] config_xml in
  let name = cfg.Vm_config.name in
  let* () = Domstore.define node.store cfg in
  with_lock node.mutex (fun () ->
      let* proc = spawn_paused node cfg in
      Ok
        Driver.
          {
            mig_dest_image = Qemu_proc.image proc;
            mig_finish =
              (fun () ->
                let* () = dom_resume node name in
                Events.emit node.events ~domain_name:name Events.Ev_started;
                Ok ());
            mig_cancel = (fun () -> ignore (dom_destroy node name));
          })

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let capabilities node =
  Capabilities.
    {
      driver_name = "qemu";
      virt_kind = "full-virt";
      stateful = true;
      guest_os_kinds = [ Vm_config.Hvm ];
      features =
        [
          Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
          Feat_destroy; Feat_migrate_live; Feat_managed_save; Feat_set_memory;
          Feat_console; Feat_networks; Feat_storage_pools;
        ];
      host = Drvutil.host_summary ~node_name:node.node_name node.host;
    }

let open_node node =
  Driver.make_ops ~drv_name:"qemu"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~dom_save:(dom_save node) ~dom_restore:(dom_restore node)
    ~dom_has_managed_save:(dom_has_managed_save node)
    ~migrate_begin:(migrate_begin node) ~migrate_prepare:(migrate_prepare node)
    ~guest_agent_install:(guest_agent_install node)
    ~guest_agent_exec:(guest_agent_exec node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events ()

let node_of_uri uri =
  match uri.Vuri.host with Some host -> host | None -> "localhost"

let register () =
  Driver.register
    {
      Driver.reg_name = "qemu";
      probe =
        (fun uri ->
          (uri.Vuri.scheme = "qemu" || uri.Vuri.scheme = "kvm")
          && uri.Vuri.transport = None);
      open_conn = (fun uri -> Ok (open_node (get_node (node_of_uri uri))));
    }
