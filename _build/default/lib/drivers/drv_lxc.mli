(** LXC (container) driver.

    No hypervisor: operations manipulate kernel facilities on
    {!Hvsim.Lxc_host} — cgroups for resource control (including live
    memory resize), the freezer cgroup for suspend/resume, namespace sets
    at start.  Shutdown and destroy both signal the init process, so both
    map to a container stop.  Migration is unsupported (containers share
    the host kernel).

    URIs: [lxc:///] / [lxc://<node>/] without [+transport]. *)

val register : unit -> unit
val reset_nodes : unit -> unit
