(** QEMU/KVM driver (stateful).

    The control path mirrors libvirt's QEMU driver: the driver keeps all
    persistent definitions itself ({!Domstore}), starting a domain means
    formatting a QEMU command line and spawning a {!Hvsim.Qemu_proc} with
    [-S], and every lifecycle operation afterwards is a QMP monitor
    exchange.  Live migration is supported through the generic precopy
    loop.

    URIs: [qemu:///system] (node "localhost") or [qemu://<node>/system]
    for a named node — no [+transport] suffix, which routes to the remote
    driver instead. *)

val register : unit -> unit
val reset_nodes : unit -> unit

val proc_argv : Vmm.Vm_config.t -> string list
(** The command line the driver formats (exposed for tests). *)
