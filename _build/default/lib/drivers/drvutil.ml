open Ovirt_core

let host_summary ~node_name host =
  let info = Hvsim.Hostinfo.node_info host in
  Capabilities.
    {
      host_name = node_name;
      host_memory_kib = info.Hvsim.Hostinfo.memory_kib;
      host_cpus = info.Hvsim.Hostinfo.cpus;
      host_mhz = info.Hvsim.Hostinfo.mhz;
      host_arch = info.Hvsim.Hostinfo.model;
    }

let as_verror code r = Result.map_error (Verror.make code) r

let parse_domain_xml ~expect_os xml =
  match Vmm.Domxml.of_xml xml with
  | Error msg -> Verror.error Verror.Invalid_arg "bad domain XML: %s" msg
  | Ok (cfg, _virt_type) ->
    if List.mem cfg.Vmm.Vm_config.os expect_os then Ok cfg
    else
      Verror.error Verror.Invalid_arg "OS type %S is not runnable by this driver"
        (Vmm.Vm_config.os_kind_name cfg.Vmm.Vm_config.os)
