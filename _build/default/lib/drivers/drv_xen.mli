(** Xen driver (stateful toolstack).

    Operations go through {!Hvsim.Xen_hv} hypercalls, with control data
    mirrored in xenstore by the hypervisor simulator.  The hypervisor only
    tracks active domains, so this driver pairs it with a {!Domstore} of
    persistent definitions — the split that makes the Xen driver stateful.
    Domain-0 shows up in active listings but refuses lifecycle changes.

    URIs: [xen:///] / [xen://<node>/] without [+transport]. *)

val register : unit -> unit
val reset_nodes : unit -> unit
