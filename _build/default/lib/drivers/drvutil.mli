(** Shared helpers for driver implementations. *)

val host_summary :
  node_name:string -> Hvsim.Hostinfo.t -> Ovirt_core.Capabilities.host_summary

val as_verror :
  Ovirt_core.Verror.code -> ('a, string) result -> ('a, Ovirt_core.Verror.t) result
(** Lift a substrate's [(_, string) result] into the library error type. *)

val parse_domain_xml :
  expect_os:Vmm.Vm_config.os_kind list ->
  string ->
  (Vmm.Vm_config.t, Ovirt_core.Verror.t) result
(** Parse and check that the OS kind is one the driver can run. *)
