(** Persistent-definition store shared by the stateful drivers.

    Stateful hypervisors (QEMU, Xen) forget domains the moment they stop;
    keeping the configuration so the domain can be started again is the
    driver's job.  This store holds those definitions, keyed by name, with
    the uniqueness rules libvirt enforces (unique name {e and} UUID). *)

type t

val create : unit -> t

val define : t -> Vmm.Vm_config.t -> (unit, Ovirt_core.Verror.t) result
(** Redefinition with the same name and UUID updates in place; a name or
    UUID collision with a different identity is [Dup_name]. *)

val undefine : t -> string -> (unit, Ovirt_core.Verror.t) result
val get : t -> string -> Vmm.Vm_config.t option
val by_uuid : t -> Vmm.Uuid.t -> Vmm.Vm_config.t option
val names : t -> string list
(** Sorted. *)

val mem : t -> string -> bool
