module Vm_config = Vmm.Vm_config
module Vm_state = Vmm.Vm_state
module Lxc_host = Hvsim.Lxc_host
open Ovirt_core

type node = {
  node_name : string;
  lxc : Lxc_host.t;
  mutex : Mutex.t;
  (* Container configs (for XML/uuid); live state lives in the host sim. *)
  store : Domstore.t;
  net : Net_backend.t;
  storage : Storage_backend.t;
  events : Events.bus;
}

let nodes : (string, node) Hashtbl.t = Hashtbl.create 4
let nodes_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let ( let* ) = Result.bind

let get_node name =
  with_lock nodes_mutex (fun () ->
      match Hashtbl.find_opt nodes name with
      | Some node -> node
      | None ->
        let node =
          {
            node_name = name;
            lxc = Lxc_host.create (Hvsim.Hostinfo.create ~hostname:name ());
            mutex = Mutex.create ();
            store = Domstore.create ();
            net = Net_backend.create ();
            storage = Storage_backend.create ();
            events = Events.create_bus ();
          }
        in
        Hashtbl.add nodes name node;
        node)

let reset_nodes () = with_lock nodes_mutex (fun () -> Hashtbl.reset nodes)

let require_config node name =
  match Domstore.get node.store name with
  | Some cfg -> Ok cfg
  | None -> Verror.error Verror.No_domain "no container named %S" name

let container_info node name =
  Result.map_error (Verror.make Verror.No_domain) (Lxc_host.info node.lxc name)

let state_of = function
  | Lxc_host.Stopped -> Vm_state.Shutoff
  | Lxc_host.Running -> Vm_state.Running
  | Lxc_host.Frozen -> Vm_state.Paused

let domain_ref_of node name =
  let* cfg = require_config node name in
  let* info = container_info node name in
  Ok
    Driver.
      {
        dom_name = name;
        dom_uuid = cfg.Vm_config.uuid;
        dom_id = info.Lxc_host.init_pid;
      }

let define_xml node xml =
  let* cfg = Drvutil.parse_domain_xml ~expect_os:[ Vm_config.Container_exe ] xml in
  let* () = Domstore.define node.store cfg in
  let* () =
    Result.map_error (Verror.make Verror.Operation_failed) (Lxc_host.define node.lxc cfg)
  in
  Events.emit node.events ~domain_name:cfg.Vm_config.name Events.Ev_defined;
  domain_ref_of node cfg.Vm_config.name

let host_op code node name call event =
  with_lock node.mutex (fun () ->
      let* _cfg = require_config node name in
      let* () = Result.map_error (Verror.make code) (call node.lxc name) in
      Events.emit node.events ~domain_name:name event;
      Ok ())

let undefine node name =
  with_lock node.mutex (fun () ->
      let* _cfg = require_config node name in
      let* () =
        Result.map_error (Verror.make Verror.Operation_invalid)
          (Lxc_host.undefine node.lxc name)
      in
      let* () = Domstore.undefine node.store name in
      Events.emit node.events ~domain_name:name Events.Ev_undefined;
      Ok ())

let dom_create node name =
  host_op Verror.Operation_invalid node name Lxc_host.start Events.Ev_started

let dom_suspend node name =
  host_op Verror.Operation_invalid node name Lxc_host.freeze Events.Ev_suspended

let dom_resume node name =
  host_op Verror.Operation_invalid node name Lxc_host.thaw Events.Ev_resumed

(* Containers have no ACPI: both shutdown and destroy signal init. *)
let dom_shutdown node name =
  host_op Verror.Operation_invalid node name Lxc_host.stop Events.Ev_shutdown

let dom_destroy node name =
  host_op Verror.Operation_invalid node name Lxc_host.stop Events.Ev_stopped

let dom_get_info node name =
  with_lock node.mutex (fun () ->
      let* cfg = require_config node name in
      let* info = container_info node name in
      Ok
        Driver.
          {
            di_state = state_of info.Lxc_host.info_state;
            di_max_mem_kib = cfg.Vm_config.memory_kib;
            di_memory_kib = info.Lxc_host.memory_limit_kib;
            di_vcpus = cfg.Vm_config.vcpus;
            di_cpu_time_ns =
              (match info.Lxc_host.init_pid with
               | Some pid -> Int64.of_int (pid * 100_000)
               | None -> 0L);
          })

let dom_get_xml node name =
  let* cfg = require_config node name in
  Ok (Vmm.Domxml.to_xml ~virt_type:"lxc" cfg)

(* Live resize through the cgroup: containers may grow past the definition
   (cgroups allow it), unlike a balloon. *)
let dom_set_memory node name kib =
  with_lock node.mutex (fun () ->
      let* _cfg = require_config node name in
      Result.map_error (Verror.make Verror.Invalid_arg)
        (Lxc_host.set_memory_limit node.lxc name kib))

let list_domains node =
  with_lock node.mutex (fun () ->
      Lxc_host.list node.lxc
      |> List.filter_map (fun name ->
             match Lxc_host.info node.lxc name with
             | Ok info when info.Lxc_host.info_state <> Lxc_host.Stopped ->
               (match domain_ref_of node name with Ok r -> Some r | Error _ -> None)
             | Ok _ | Error _ -> None)
      |> Result.ok)

let list_defined node =
  with_lock node.mutex (fun () ->
      Lxc_host.list node.lxc
      |> List.filter (fun name ->
             match Lxc_host.info node.lxc name with
             | Ok info -> info.Lxc_host.info_state = Lxc_host.Stopped
             | Error _ -> false)
      |> Result.ok)

let lookup_by_name node name = with_lock node.mutex (fun () -> domain_ref_of node name)

let lookup_by_uuid node uuid =
  with_lock node.mutex (fun () ->
      match Domstore.by_uuid node.store uuid with
      | Some cfg -> domain_ref_of node cfg.Vm_config.name
      | None ->
        Verror.error Verror.No_domain "no container with UUID %s"
          (Vmm.Uuid.to_string uuid))

let capabilities node =
  Capabilities.
    {
      driver_name = "lxc";
      virt_kind = "container";
      stateful = true;
      guest_os_kinds = [ Vm_config.Container_exe ];
      features =
        [
          Feat_define; Feat_start; Feat_suspend; Feat_resume; Feat_shutdown;
          Feat_destroy; Feat_set_memory; Feat_freeze; Feat_console;
          Feat_networks; Feat_storage_pools;
        ];
      host = Drvutil.host_summary ~node_name:node.node_name (Lxc_host.host node.lxc);
    }

let open_node node =
  Driver.make_ops ~drv_name:"lxc"
    ~get_capabilities:(fun () -> capabilities node)
    ~get_hostname:(fun () -> node.node_name)
    ~list_domains:(fun () -> list_domains node)
    ~list_defined:(fun () -> list_defined node)
    ~lookup_by_name:(lookup_by_name node) ~lookup_by_uuid:(lookup_by_uuid node)
    ~define_xml:(define_xml node) ~undefine:(undefine node)
    ~dom_create:(dom_create node) ~dom_suspend:(dom_suspend node)
    ~dom_resume:(dom_resume node) ~dom_shutdown:(dom_shutdown node)
    ~dom_destroy:(dom_destroy node) ~dom_get_info:(dom_get_info node)
    ~dom_get_xml:(dom_get_xml node) ~dom_set_memory:(dom_set_memory node)
    ~net:(Driver.net_ops_of_backend node.net)
    ~storage:(Driver.storage_ops_of_backend node.storage)
    ~events:node.events ()

let node_of_uri uri =
  match uri.Vuri.host with Some host -> host | None -> "localhost"

let register () =
  Driver.register
    {
      Driver.reg_name = "lxc";
      probe = (fun uri -> uri.Vuri.scheme = "lxc" && uri.Vuri.transport = None);
      open_conn = (fun uri -> Ok (open_node (get_node (node_of_uri uri))));
    }
