(** Mock ("test") driver.

    Libvirt's test driver reproduced: a complete in-memory hypervisor with
    no substrate, used by applications to exercise the API and by this
    repository as the reference implementation of driver semantics.
    [test:///default] opens a node pre-populated with one running domain
    named ["test"]; [test://<node>/...] opens (creating on first use) an
    independent named node. *)

val register : unit -> unit
(** Add the driver to the global registry (idempotent). *)

val reset_nodes : unit -> unit
(** Drop all test nodes (test isolation). *)
