(** Client-side RPC engine shared by the remote driver and the admin
    library.

    One receiver thread demultiplexes the connection: replies are matched
    to blocked callers by serial, event packets are handed to the
    [on_event] callback.  Multiple threads may issue {!call}s
    concurrently; sends are serialized by the transport layer. *)

type t

val connect :
  address:string ->
  kind:Ovnet.Transport.kind ->
  program:int ->
  version:int ->
  ?identity:Ovnet.Transport.unix_identity ->
  ?on_event:(procedure:int -> string -> unit) ->
  unit ->
  (t, Ovirt_core.Verror.t) result
(** Establish the transport and start the receiver.
    [Connection_refused] surfaces as a [Rpc_failure] error. *)

val call :
  t -> procedure:int -> ?body:string -> ?timeout_s:float -> unit ->
  (string, Ovirt_core.Verror.t) result
(** Send one call and block for its reply (no timeout unless given;
    the receiver fails all pending calls when the connection dies).
    [Status_error] replies come back as their decoded error; a dead
    connection or timeout is [Rpc_failure]. *)

val close : t -> unit
(** Idempotent; fails all in-flight calls. *)

val is_closed : t -> bool

val bytes_tx : t -> int
val bytes_rx : t -> int
