module Transport = Ovnet.Transport
module Netsim = Ovnet.Netsim
module Rpc_packet = Ovrpc.Rpc_packet
module Verror = Ovirt_core.Verror

type slot = {
  slot_mutex : Mutex.t;
  slot_cond : Condition.t;
  mutable outcome : (string, Verror.t) result option;
}

type t = {
  conn : Transport.t;
  program : int;
  version : int;
  on_event : procedure:int -> string -> unit;
  mutex : Mutex.t;
  pending : (int, slot) Hashtbl.t;
  mutable next_serial : int;
  mutable closed : bool;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let deliver slot outcome =
  with_lock slot.slot_mutex (fun () ->
      slot.outcome <- Some outcome;
      Condition.broadcast slot.slot_cond)

let fail_all_pending client err =
  let slots =
    with_lock client.mutex (fun () ->
        let slots = Hashtbl.fold (fun _ slot acc -> slot :: acc) client.pending [] in
        Hashtbl.reset client.pending;
        client.closed <- true;
        slots)
  in
  List.iter (fun slot -> deliver slot (Error err)) slots

let receiver_loop client =
  let rec loop () =
    match Transport.recv client.conn with
    | exception (Transport.Closed | Transport.Corrupt _) ->
      fail_all_pending client (Verror.make Verror.Rpc_failure "connection closed")
    | wire ->
      (match Rpc_packet.decode wire with
       | exception Rpc_packet.Bad_packet msg ->
         Transport.close client.conn;
         fail_all_pending client
           (Verror.make Verror.Rpc_failure ("bad packet from server: " ^ msg))
       | header, body ->
         (match header.Rpc_packet.msg_type with
          | Rpc_packet.Event ->
            (try client.on_event ~procedure:header.Rpc_packet.procedure body
             with _ -> ());
            loop ()
          | Rpc_packet.Reply ->
            let slot =
              with_lock client.mutex (fun () ->
                  let slot = Hashtbl.find_opt client.pending header.Rpc_packet.serial in
                  Hashtbl.remove client.pending header.Rpc_packet.serial;
                  slot)
            in
            (match slot with
             | None -> () (* reply to a timed-out call: drop *)
             | Some slot ->
               let outcome =
                 match header.Rpc_packet.status with
                 | Rpc_packet.Status_ok -> Ok body
                 | Rpc_packet.Status_error ->
                   (match Protocol.Remote_protocol.dec_error body with
                    | err -> Error err
                    | exception Xdr.Error msg ->
                      Error
                        (Verror.make Verror.Rpc_failure
                           ("undecodable error reply: " ^ msg)))
               in
               deliver slot outcome);
            loop ()
          | Rpc_packet.Call ->
            (* Servers do not call clients; ignore and carry on. *)
            loop ()))
  in
  loop ()

let connect ~address ~kind ~program ~version ?identity
    ?(on_event = fun ~procedure:_ _ -> ()) () =
  match Netsim.connect ?identity address kind with
  | exception Netsim.Connection_refused addr ->
    Verror.error Verror.Rpc_failure "connection refused at %S" addr
  | conn ->
    let client =
      {
        conn;
        program;
        version;
        on_event;
        mutex = Mutex.create ();
        pending = Hashtbl.create 8;
        next_serial = 1;
        closed = false;
      }
    in
    ignore (Thread.create (fun () -> receiver_loop client) ());
    Ok client

let call client ~procedure ?(body = "") ?timeout_s () =
  let slot_or_err =
    with_lock client.mutex (fun () ->
        if client.closed then
          Verror.error Verror.Rpc_failure "connection is closed"
        else begin
          let serial = client.next_serial in
          client.next_serial <- serial + 1;
          let slot =
            { slot_mutex = Mutex.create (); slot_cond = Condition.create (); outcome = None }
          in
          Hashtbl.replace client.pending serial slot;
          Ok (serial, slot)
        end)
  in
  match slot_or_err with
  | Error e -> Error e
  | Ok (serial, slot) ->
    let header =
      Rpc_packet.call_header ~program:client.program ~version:client.version
        ~procedure ~serial
    in
    (match Transport.send client.conn (Rpc_packet.encode header body) with
     | exception Transport.Closed ->
       with_lock client.mutex (fun () -> Hashtbl.remove client.pending serial);
       Verror.error Verror.Rpc_failure "connection is closed"
     | () ->
       (* The stdlib has no timed condition wait.  The receiver thread
          always delivers — a reply, or a failure when the connection
          dies — so the fast path is a plain wait.  When a timeout is
          requested, a watchdog thread delivers the timeout error if the
          slot is still pending at the deadline. *)
       (match timeout_s with
        | None -> ()
        | Some t ->
          ignore
            (Thread.create
               (fun () ->
                 Thread.delay t;
                 let still_pending =
                   with_lock client.mutex (fun () ->
                       if Hashtbl.mem client.pending serial then begin
                         Hashtbl.remove client.pending serial;
                         true
                       end
                       else false)
                 in
                 if still_pending then
                   deliver slot
                     (Error
                        (Verror.make Verror.Rpc_failure
                           (Printf.sprintf "call %d timed out after %.1fs" procedure
                              t))))
               ()));
       with_lock slot.slot_mutex (fun () ->
           let rec wait () =
             match slot.outcome with
             | Some outcome -> outcome
             | None ->
               Condition.wait slot.slot_cond slot.slot_mutex;
               wait ()
           in
           wait ()))

let close client =
  Transport.close client.conn;
  fail_all_pending client (Verror.make Verror.Rpc_failure "connection closed locally")

let is_closed client = client.closed
let bytes_tx client = Transport.bytes_tx client.conn
let bytes_rx client = Transport.bytes_rx client.conn
