lib/protocol/remote_protocol.mli: Ovirt_core
