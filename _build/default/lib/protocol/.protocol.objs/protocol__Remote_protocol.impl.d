lib/protocol/remote_protocol.ml: Driver Events Int64 List Net_backend Ovirt_core Printf Storage_backend Verror Vmm Xdr
