lib/protocol/admin_protocol.ml: List Ovrpc Printf Xdr
