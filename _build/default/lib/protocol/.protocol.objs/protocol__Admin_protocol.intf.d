lib/protocol/admin_protocol.mli: Ovrpc
