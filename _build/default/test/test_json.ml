(* Mini_json: parser/printer unit cases and roundtrip properties. *)

open Testutil
module J = Mini_json

let test_literals () =
  Alcotest.(check bool) "true" true (J.of_string "true" = J.Bool true);
  Alcotest.(check bool) "false" true (J.of_string "false" = J.Bool false);
  Alcotest.(check bool) "null" true (J.of_string "null" = J.Null);
  Alcotest.(check bool) "int" true (J.of_string "42" = J.Int 42);
  Alcotest.(check bool) "negative" true (J.of_string "-7" = J.Int (-7));
  Alcotest.(check bool) "float" true (J.of_string "1.5" = J.Float 1.5);
  Alcotest.(check bool) "exponent" true (J.of_string "2e3" = J.Float 2000.0)

let test_strings () =
  Alcotest.(check string) "plain" "hello" (J.get_string (J.of_string {|"hello"|}));
  Alcotest.(check string) "escapes" "a\"b\\c\nd"
    (J.get_string (J.of_string {|"a\"b\\c\nd"|}));
  Alcotest.(check string) "unicode bmp" "\xc3\xa9"
    (J.get_string (J.of_string {|"é"|}));
  Alcotest.(check string) "solidus escape" "/" (J.get_string (J.of_string {|"\/"|}))

let test_structures () =
  let v = J.of_string {|{"a": [1, 2, {"b": null}], "c": "x"}|} in
  Alcotest.(check int) "array head" 1 (J.get_int (List.hd (J.get_list (J.member "a" v))));
  Alcotest.(check string) "member c" "x" (J.get_string (J.member "c" v));
  Alcotest.(check bool) "nested null" true
    (J.member "b" (List.nth (J.get_list (J.member "a" v)) 2) = J.Null)

let test_whitespace_tolerance () =
  let v = J.of_string "  {\n\t\"k\" :\r [ ] }  " in
  Alcotest.(check bool) "empty list" true (J.member "k" v = J.List [])

let malformed =
  [
    ""; "{"; "[1,"; "{\"a\"}"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated";
    "{\"a\":1,}"; "[1 2]"; "nan"; "+1"; "\"\\q\""; "{'single': 1}"; "01x";
    "{\"a\":1} extra";
  ]

let test_malformed_rejected () =
  List.iter
    (fun s ->
      match J.of_string s with
      | exception J.Parse_error _ -> ()
      | v -> Alcotest.failf "accepted %S as %s" s (J.to_string v))
    malformed

let test_control_chars_rejected () =
  match J.of_string "\"a\nb\"" with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "raw newline inside string accepted"

let test_accessor_errors () =
  let v = J.of_string {|{"a": 1}|} in
  Alcotest.check_raises "missing member" (J.Parse_error "missing key \"b\"")
    (fun () -> ignore (J.member "b" v));
  (match J.get_string (J.member "a" v) with
   | exception J.Parse_error _ -> ()
   | _ -> Alcotest.fail "get_string on int succeeded");
  Alcotest.(check (option bool)) "member_opt absent" None
    (Option.map (fun _ -> true) (J.member_opt "b" v))

let test_print_escaping () =
  Alcotest.(check string) "control chars escape" {|"\u0001\t"|}
    (J.to_string (J.String "\001\t"));
  Alcotest.(check string) "object order preserved" {|{"b":1,"a":2}|}
    (J.to_string (J.Obj [ ("b", J.Int 1); ("a", J.Int 2) ]))

(* Generator of printable-string JSON values. *)
let gen_json =
  let open QCheck.Gen in
  let str = map J.(fun s -> String s) (small_string ~gen:printable) in
  let base =
    oneof
      [ return J.Null; map (fun b -> J.Bool b) bool; map (fun i -> J.Int i) small_int; str ]
  in
  let rec value depth =
    if depth = 0 then base
    else
      frequency
        [
          (3, base);
          (1, map (fun l -> J.List l) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* distinct keys: the printer/parser pair only roundtrips
                   objects without duplicates *)
                J.Obj (List.mapi (fun i (k, v) -> (Printf.sprintf "%d-%s" i k, v)) kvs))
              (list_size (int_bound 4)
                 (pair (small_string ~gen:printable) (value (depth - 1)))) );
        ]
  in
  value 3

let prop_roundtrip =
  qcheck_case "print/parse roundtrip" (QCheck.make gen_json)
    (fun v -> J.of_string (J.to_string v) = v)

let prop_double_print_stable =
  qcheck_case "printing is deterministic" (QCheck.make gen_json)
    (fun v -> J.to_string v = J.to_string (J.of_string (J.to_string v)))

let () =
  Alcotest.run "mini_json"
    [
      ( "parsing",
        [
          quick "literals" test_literals;
          quick "strings and escapes" test_strings;
          quick "nested structures" test_structures;
          quick "whitespace tolerance" test_whitespace_tolerance;
        ] );
      ( "errors",
        [
          quick "malformed documents rejected" test_malformed_rejected;
          quick "control characters rejected" test_control_chars_rejected;
          quick "accessor errors" test_accessor_errors;
        ] );
      ( "printing",
        [ quick "escaping and field order" test_print_escaping ] );
      ("properties", [ prop_roundtrip; prop_double_print_stable ]);
    ]
