(* Mini_xml: parser/printer unit cases and roundtrip properties. *)

open Testutil
module X = Mini_xml

let test_basic_parse () =
  let e = X.of_string "<a x=\"1\"><b>text</b><c/></a>" in
  Alcotest.(check string) "root tag" "a" e.X.tag;
  Alcotest.(check (option string)) "attr" (Some "1") (X.attr e "x");
  Alcotest.(check string) "child text" "text" (X.text_content (X.child_exn e "b"));
  Alcotest.(check bool) "self-closing child" true (X.child e "c" <> None)

let test_entities () =
  let e = X.of_string "<a t=\"&lt;&amp;&quot;\">&gt;&apos;&#65;&#x42;</a>" in
  Alcotest.(check (option string)) "attr entities" (Some "<&\"") (X.attr e "t");
  Alcotest.(check string) "text entities" ">'AB" (X.text_content e)

let test_comments_and_decl () =
  let e = X.of_string "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/></a><!-- post -->" in
  Alcotest.(check string) "root" "a" e.X.tag;
  Alcotest.(check int) "comment skipped" 1 (List.length e.X.children)

let test_mixed_content () =
  let e = X.of_string "<a>one<b/>two</a>" in
  Alcotest.(check int) "three children" 3 (List.length e.X.children)

let test_single_quotes () =
  let e = X.of_string "<a k='v'/>" in
  Alcotest.(check (option string)) "single-quoted attr" (Some "v") (X.attr e "k")

let malformed =
  [
    ""; "<a>"; "<a></b>"; "<a attr></a>"; "< a/>"; "<a 1bad=\"x\"/>";
    "<a k=\"v/>"; "<a/><b/>"; "text only"; "<a>&unknown;</a>"; "<a k=v/>";
    "<!-- unterminated"; "<a><b></a></b>";
  ]

let test_malformed_rejected () =
  List.iter
    (fun s ->
      match X.of_string s with
      | exception X.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    malformed

let test_query_helpers () =
  let e = X.of_string "<a><b n=\"1\"/><b n=\"2\"/><c>7</c></a>" in
  Alcotest.(check int) "children_named" 2 (List.length (X.children_named e "b"));
  Alcotest.(check int) "int_attr" 2 (X.int_attr_exn (List.nth (X.children_named e "b") 1) "n");
  Alcotest.(check int) "int_content" 7 (X.int_content_exn (X.child_exn e "c"));
  Alcotest.check_raises "missing child"
    (X.Parse_error "missing element <zz> under <a>") (fun () ->
      ignore (X.child_exn e "zz"));
  match X.int_content_exn (X.child_exn e "b") with
  | exception X.Parse_error _ -> ()
  | _ -> Alcotest.fail "empty content parsed as int"

let test_print_escaping () =
  let e = X.elt "a" ~attrs:[ ("k", "<\">") ] [ X.text "a<b&c" ] in
  let s = X.to_string ~indent:false e in
  Alcotest.(check string) "escaped output" "<a k=\"&lt;&quot;&gt;\">a&lt;b&amp;c</a>" s;
  Alcotest.(check bool) "reparses" true (X.of_string s = e)

let test_indent_output_reparses () =
  let e =
    X.elt "root"
      [ X.node (X.elt "x" ~attrs:[ ("a", "1") ] [ X.leaf "y" "v"; X.node (X.elt "z" []) ]) ]
  in
  let printed = X.to_string ~indent:true e in
  let reparsed = X.of_string printed in
  Alcotest.(check string) "structure preserved"
    (X.to_string ~indent:false e)
    (X.to_string ~indent:false reparsed)

(* Random element trees with safe names and printable content. *)
let gen_element =
  let open QCheck.Gen in
  let name = oneofl [ "alpha"; "beta"; "gamma"; "delta"; "k1"; "k2" ] in
  let content = small_string ~gen:(char_range 'a' 'z') in
  let rec element depth =
    let* tag = name in
    let* attrs = list_size (int_bound 2) (pair name content) in
    let attrs =
      (* unique attribute names *)
      List.mapi (fun i (k, v) -> (Printf.sprintf "%s%d" k i, v)) attrs
    in
    (* No mixed content: indentation does not preserve whitespace inside
       mixed text/element children (as in real XML pretty-printers). *)
    let* children =
      if depth = 0 then return []
      else
        frequency
          [
            (1, map (fun s -> [ X.Text ("t" ^ s) ]) content);
            (2, list_size (int_bound 3) (map X.node (element (depth - 1))));
          ]
    in
    return (X.elt tag ~attrs children)
  in
  element 3

let prop_roundtrip_compact =
  qcheck_case "compact print/parse roundtrip" (QCheck.make gen_element)
    (fun e ->
      let s = X.to_string ~indent:false e in
      X.to_string ~indent:false (X.of_string s) = s)

let prop_roundtrip_indented =
  qcheck_case "indented print reparses to same structure" (QCheck.make gen_element)
    (fun e ->
      let reparsed = X.of_string (X.to_string ~indent:true e) in
      X.to_string ~indent:false reparsed = X.to_string ~indent:false e)

let () =
  Alcotest.run "mini_xml"
    [
      ( "parsing",
        [
          quick "elements, attrs, text" test_basic_parse;
          quick "entities" test_entities;
          quick "comments and declaration" test_comments_and_decl;
          quick "mixed content" test_mixed_content;
          quick "single-quoted attributes" test_single_quotes;
        ] );
      ("errors", [ quick "malformed documents rejected" test_malformed_rejected ]);
      ( "queries",
        [ quick "child/attr/int helpers" test_query_helpers ] );
      ( "printing",
        [
          quick "escaping" test_print_escaping;
          quick "indentation roundtrip" test_indent_output_reparses;
        ] );
      ("properties", [ prop_roundtrip_compact; prop_roundtrip_indented ]);
    ]
